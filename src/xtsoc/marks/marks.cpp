#include "xtsoc/marks/marks.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "xtsoc/common/strings.hpp"

namespace xtsoc::marks {

namespace {
/// Element key used internally for domain-scope marks.
constexpr const char* kDomainScope = "";

const char* const kStandardClassKeys[] = {kIsHardware, kClockDomain, kBusId,
                                          kPriority, kMaxInstances, kIntWidth,
                                          kTileX, kTileY};
const char* const kStandardDomainKeys[] = {kBusLatency, kMeshWidth,
                                           kMeshHeight, kSwTileX, kSwTileY,
                                           kLinkLatency, kFlitBytes,
                                           kFifoDepth, kTopology, kRouting,
                                           kFaultSeed,
                                           kFaultWindow, kFaultWindowStart,
                                           kFaultRateFlitDrop,
                                           kFaultRateFlitCorrupt,
                                           kFaultRateLinkDown,
                                           kFaultRateBusError,
                                           kDramTile, kDramTRcd, kDramTCas,
                                           kDramTRp, kCacheSets, kCacheWays,
                                           kCacheLineBytes, kCacheHitLatency,
                                           kMemWriteFraction};

bool is_fault_rate_key(std::string_view key) {
  return key == kFaultRateFlitDrop || key == kFaultRateFlitCorrupt ||
         key == kFaultRateLinkDown || key == kFaultRateBusError;
}
}  // namespace

const char* to_string(Target t) {
  return t == Target::kHardware ? "hardware" : "software";
}

std::string MarkDiff::to_string() const {
  std::ostringstream os;
  for (const auto& c : changes) {
    os << (c.element.empty() ? "domain" : c.element) << '.' << c.key << ": ";
    os << (c.before ? xtuml::scalar_to_string(*c.before) : "<none>");
    os << " -> ";
    os << (c.after ? xtuml::scalar_to_string(*c.after) : "<none>");
    os << '\n';
  }
  return os.str();
}

void MarkSet::set_class_mark(std::string_view class_name, std::string_view key,
                             xtuml::ScalarValue value) {
  marks_[std::string(class_name)][std::string(key)] = std::move(value);
}

void MarkSet::set_domain_mark(std::string_view key, xtuml::ScalarValue value) {
  marks_[kDomainScope][std::string(key)] = std::move(value);
}

void MarkSet::clear_class_mark(std::string_view class_name,
                               std::string_view key) {
  auto it = marks_.find(class_name);
  if (it == marks_.end()) return;
  it->second.erase(std::string(key));
  if (it->second.empty()) marks_.erase(it);
}

void MarkSet::mark_hardware(std::string_view class_name, bool is_hw) {
  set_class_mark(class_name, kIsHardware, xtuml::ScalarValue(is_hw));
}

std::optional<xtuml::ScalarValue> MarkSet::class_mark(
    std::string_view class_name, std::string_view key) const {
  auto it = marks_.find(class_name);
  if (it == marks_.end()) return std::nullopt;
  auto kit = it->second.find(std::string(key));
  if (kit == it->second.end()) return std::nullopt;
  return kit->second;
}

std::optional<xtuml::ScalarValue> MarkSet::domain_mark(
    std::string_view key) const {
  return class_mark(kDomainScope, key);
}

std::int64_t MarkSet::class_mark_int(std::string_view class_name,
                                     std::string_view key,
                                     std::int64_t fallback) const {
  auto v = class_mark(class_name, key);
  if (!v || !std::holds_alternative<std::int64_t>(*v)) return fallback;
  return std::get<std::int64_t>(*v);
}

std::int64_t MarkSet::domain_mark_int(std::string_view key,
                                      std::int64_t fallback) const {
  return class_mark_int(kDomainScope, key, fallback);
}

Target MarkSet::target_of(std::string_view class_name) const {
  auto v = class_mark(class_name, kIsHardware);
  if (v && std::holds_alternative<bool>(*v) && std::get<bool>(*v)) {
    return Target::kHardware;
  }
  return Target::kSoftware;
}

std::size_t MarkSet::mark_count() const {
  std::size_t n = 0;
  for (const auto& [el, kv] : marks_) n += kv.size();
  return n;
}

MarkDiff MarkSet::diff(const MarkSet& before, const MarkSet& after) {
  MarkDiff d;
  // Removed or changed.
  for (const auto& [el, kv] : before.marks_) {
    for (const auto& [key, val] : kv) {
      auto now = after.class_mark(el, key);
      if (!now) {
        d.changes.push_back({el, key, val, std::nullopt});
      } else if (*now != val) {
        d.changes.push_back({el, key, val, *now});
      }
    }
  }
  // Added.
  for (const auto& [el, kv] : after.marks_) {
    for (const auto& [key, val] : kv) {
      if (!before.class_mark(el, key)) {
        d.changes.push_back({el, key, std::nullopt, val});
      }
    }
  }
  return d;
}

bool MarkSet::validate(const xtuml::Domain& domain,
                       DiagnosticSink& sink) const {
  const std::size_t before = sink.error_count();
  for (const auto& [element, kv] : marks_) {
    const bool domain_scope = element.empty();
    if (!domain_scope && domain.find_class(element) == nullptr) {
      sink.error("marks.unknown_class",
                 "mark on unknown class '" + element + "'");
      continue;
    }
    for (const auto& [key, value] : kv) {
      if (key == kIsHardware) {
        if (domain_scope) {
          sink.error("marks.scope", "isHardware is a class mark, not domain");
        } else if (!std::holds_alternative<bool>(value)) {
          sink.error("marks.type", element + ".isHardware must be a bool");
        }
      } else if (key == kClockDomain || key == kBusId || key == kPriority ||
                 key == kMaxInstances || key == kIntWidth || key == kTileX ||
                 key == kTileY) {
        if (domain_scope) {
          sink.error("marks.scope",
                     std::string(key) + " is a class mark, not domain");
        } else if (!std::holds_alternative<std::int64_t>(value)) {
          sink.error("marks.type", element + "." + key + " must be an int");
        }
      } else if (key == kBusLatency || key == kMeshWidth ||
                 key == kMeshHeight || key == kSwTileX || key == kSwTileY ||
                 key == kLinkLatency || key == kFlitBytes ||
                 key == kFifoDepth || key == kFaultSeed ||
                 key == kFaultWindow || key == kFaultWindowStart ||
                 key == kDramTile || key == kDramTRcd || key == kDramTCas ||
                 key == kDramTRp || key == kCacheSets || key == kCacheWays ||
                 key == kCacheLineBytes || key == kCacheHitLatency) {
        if (!domain_scope) {
          sink.error("marks.scope",
                     std::string(key) + " is a domain mark, not class");
        } else if (!std::holds_alternative<std::int64_t>(value)) {
          sink.error("marks.type",
                     "domain." + std::string(key) + " must be an int");
        }
      } else if (key == kTopology || key == kRouting) {
        if (!domain_scope) {
          sink.error("marks.scope",
                     std::string(key) + " is a domain mark, not class");
        } else if (!std::holds_alternative<std::string>(value)) {
          sink.error("marks.type",
                     "domain." + std::string(key) + " must be a string");
        }
      } else if (is_fault_rate_key(key) || key == kMemWriteFraction) {
        // Rates read naturally as reals but 0 and 1 parse as ints; accept
        // both so "faultRate.flitDrop = 0" round-trips.
        if (!domain_scope) {
          sink.error("marks.scope",
                     std::string(key) + " is a domain mark, not class");
        } else if (!std::holds_alternative<double>(value) &&
                   !std::holds_alternative<std::int64_t>(value)) {
          sink.error("marks.type",
                     "domain." + std::string(key) + " must be a number");
        }
      } else {
        // Unknown key: allowed, but warn on case/underscore near-misses.
        auto normalize = [](std::string_view k) {
          std::string out;
          for (char ch : k) {
            if (ch == '_') continue;
            out.push_back(
                static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
          }
          return out;
        };
        std::string lower = normalize(key);
        auto near = [&](const char* std_key) {
          return lower == normalize(std_key) && key != std_key;
        };
        bool near_miss = false;
        for (const char* k : kStandardClassKeys) near_miss |= near(k);
        for (const char* k : kStandardDomainKeys) near_miss |= near(k);
        if (near_miss) {
          sink.warning("marks.near_miss",
                       "mark key '" + key + "' looks like a misspelled "
                       "standard mark");
        }
      }
    }
  }
  // A positive intWidth must fit the 64-bit abstract integer.
  for (const auto& [element, kv] : marks_) {
    auto it = kv.find(kIntWidth);
    if (it != kv.end() && std::holds_alternative<std::int64_t>(it->second)) {
      std::int64_t w = std::get<std::int64_t>(it->second);
      if (w < 1 || w > 64) {
        sink.error("marks.int_width",
                   element + ".intWidth must be in [1, 64]");
      }
    }
  }

  // Interconnect latency marks are lookahead sources for the windowed
  // co-simulation scheduler (and wait counts in the generated VHDL), so
  // nonsensical values are rejected here rather than surfacing as a stuck
  // or time-traveling interconnect later. busLatency 0 is legal — it
  // degrades the scheduler to per-cycle lockstep — but negative is not;
  // linkLatency is a physical per-hop traversal time and must be >= 1.
  for (const auto& [element, kv] : marks_) {
    if (auto it = kv.find(kBusLatency);
        it != kv.end() && std::holds_alternative<std::int64_t>(it->second) &&
        std::get<std::int64_t>(it->second) < 0) {
      sink.error("marks.bus_latency",
                 "domain.busLatency must be >= 0 (got " +
                     std::to_string(std::get<std::int64_t>(it->second)) +
                     "); a bus cannot deliver into the past");
    }
    if (auto it = kv.find(kLinkLatency);
        it != kv.end() && std::holds_alternative<std::int64_t>(it->second) &&
        std::get<std::int64_t>(it->second) < 1) {
      sink.error("marks.link_latency",
                 "domain.linkLatency must be >= 1 (got " +
                     std::to_string(std::get<std::int64_t>(it->second)) +
                     "); every mesh hop takes at least one cycle");
    }
  }

  // Fault marks describe a reproducible failure scenario; out-of-range
  // values would make a campaign either meaningless (a probability above 1)
  // or irreproducible (a negative seed truncated who-knows-how), so they
  // are rejected here, at the same gate as every other platform mark.
  for (const auto& [element, kv] : marks_) {
    if (!element.empty()) continue;  // scope errors reported above
    for (const char* key : {kFaultSeed, kFaultWindow, kFaultWindowStart}) {
      if (auto it = kv.find(key);
          it != kv.end() && std::holds_alternative<std::int64_t>(it->second) &&
          std::get<std::int64_t>(it->second) < 0) {
        sink.error("marks.fault_range",
                   "domain." + std::string(key) + " must be >= 0 (got " +
                       std::to_string(std::get<std::int64_t>(it->second)) +
                       ")");
      }
    }
    for (const char* key :
         {kFaultRateFlitDrop, kFaultRateFlitCorrupt, kFaultRateLinkDown,
          kFaultRateBusError}) {
      auto it = kv.find(key);
      if (it == kv.end()) continue;
      double rate = 0.0;
      if (std::holds_alternative<double>(it->second)) {
        rate = std::get<double>(it->second);
      } else if (std::holds_alternative<std::int64_t>(it->second)) {
        rate = static_cast<double>(std::get<std::int64_t>(it->second));
      } else {
        continue;  // typed wrong; reported above
      }
      if (rate < 0.0 || rate > 1.0) {
        sink.error("marks.fault_range",
                   "domain." + std::string(key) +
                       " is a probability and must be in [0, 1]");
      }
    }
    // An inverted window would silently disarm every fault — reject it.
    auto wit = kv.find(kFaultWindow);
    auto sit = kv.find(kFaultWindowStart);
    if (wit != kv.end() && sit != kv.end() &&
        std::holds_alternative<std::int64_t>(wit->second) &&
        std::holds_alternative<std::int64_t>(sit->second)) {
      std::int64_t end = std::get<std::int64_t>(wit->second);
      std::int64_t start = std::get<std::int64_t>(sit->second);
      if (end > 0 && start >= end) {
        sink.error("marks.fault_range",
                   "domain.faultWindow.start (" + std::to_string(start) +
                       ") is after domain.faultWindow (" +
                       std::to_string(end) + "); the window is empty");
      }
    }
  }

  // NoC placement rules. Any tileX/tileY mark switches the mapping to the
  // mesh interconnect, so the placement must describe a buildable mesh.
  bool any_tiles = false;
  std::int64_t max_x = 0, max_y = 0;
  for (const auto& [element, kv] : marks_) {
    if (element.empty()) continue;
    auto tx = kv.find(kTileX);
    auto ty = kv.find(kTileY);
    const bool has_x = tx != kv.end();
    const bool has_y = ty != kv.end();
    if (!has_x && !has_y) continue;
    any_tiles = true;
    if (has_x != has_y) {
      sink.error("marks.tile_pair",
                 "class '" + element + "' has " +
                     (has_x ? "tileX without tileY" : "tileY without tileX") +
                     "; a placement needs both coordinates");
      continue;
    }
    if (!std::holds_alternative<std::int64_t>(tx->second) ||
        !std::holds_alternative<std::int64_t>(ty->second)) {
      continue;  // typed wrong; reported above
    }
    std::int64_t x = std::get<std::int64_t>(tx->second);
    std::int64_t y = std::get<std::int64_t>(ty->second);
    if (x < 0 || y < 0) {
      sink.error("marks.tile_range", "class '" + element +
                                         "' is placed at negative tile (" +
                                         std::to_string(x) + "," +
                                         std::to_string(y) + ")");
    }
    if (x > max_x) max_x = x;
    if (y > max_y) max_y = y;
    auto hw = kv.find(kIsHardware);
    const bool is_hw = hw != kv.end() &&
                       std::holds_alternative<bool>(hw->second) &&
                       std::get<bool>(hw->second);
    if (!is_hw) {
      sink.warning("marks.tile_sw",
                   "class '" + element + "' has tile marks but is not "
                   "isHardware; software classes live on the software tile "
                   "and the placement is ignored");
    }
  }
  if (any_tiles) {
    std::int64_t mesh_w = domain_mark_int(kMeshWidth, max_x + 1);
    std::int64_t mesh_h = domain_mark_int(kMeshHeight, max_y + 1);
    std::int64_t sw_x = domain_mark_int(kSwTileX, 0);
    std::int64_t sw_y = domain_mark_int(kSwTileY, 0);
    if (mesh_w < 1 || mesh_h < 1 || mesh_w > 64 || mesh_h > 64) {
      sink.error("marks.mesh_dims", "meshWidth/meshHeight must be in [1, 64]");
    } else {
      auto in_mesh = [&](std::int64_t x, std::int64_t y) {
        return x >= 0 && x < mesh_w && y >= 0 && y < mesh_h;
      };
      if (!in_mesh(sw_x, sw_y)) {
        sink.error("marks.tile_range",
                   "software tile (" + std::to_string(sw_x) + "," +
                       std::to_string(sw_y) + ") is outside the " +
                       std::to_string(mesh_w) + "x" + std::to_string(mesh_h) +
                       " mesh");
      }
      for (const auto& [element, kv] : marks_) {
        if (element.empty()) continue;
        auto tx = kv.find(kTileX);
        auto ty = kv.find(kTileY);
        if (tx == kv.end() || ty == kv.end() ||
            !std::holds_alternative<std::int64_t>(tx->second) ||
            !std::holds_alternative<std::int64_t>(ty->second)) {
          continue;
        }
        std::int64_t x = std::get<std::int64_t>(tx->second);
        std::int64_t y = std::get<std::int64_t>(ty->second);
        if (x < 0 || y < 0) continue;  // already reported
        if (!in_mesh(x, y)) {
          sink.error("marks.tile_range",
                     "class '" + element + "' is placed at tile (" +
                         std::to_string(x) + "," + std::to_string(y) +
                         "), outside the " + std::to_string(mesh_w) + "x" +
                         std::to_string(mesh_h) + " mesh");
        } else if (x == sw_x && y == sw_y) {
          sink.error("marks.tile_clash",
                     "class '" + element + "' is placed on tile (" +
                         std::to_string(x) + "," + std::to_string(y) +
                         "), which is the software tile");
        }
      }
    }
    // Placement must be total: every hardware class needs a tile once the
    // mesh is in play (an unplaced FSM bank has no router to sit behind).
    for (const auto& [element, kv] : marks_) {
      if (element.empty()) continue;
      auto hw = kv.find(kIsHardware);
      const bool is_hw = hw != kv.end() &&
                         std::holds_alternative<bool>(hw->second) &&
                         std::get<bool>(hw->second);
      if (is_hw && (!kv.contains(kTileX) || !kv.contains(kTileY))) {
        sink.error("marks.tile_missing",
                   "class '" + element + "' is isHardware but has no "
                   "tileX/tileY; every hardware class needs a tile once any "
                   "class is placed on the mesh");
      }
    }
  }

  // Topology and routing marks: legal values, and shapes that can actually
  // be wired. The platform is a marks decision, so an impossible platform
  // is a marks error — caught here, not as a FabricError at elaboration.
  {
    auto str_mark = [&](const char* key) -> std::optional<std::string> {
      auto v = domain_mark(key);
      if (!v || !std::holds_alternative<std::string>(*v)) return std::nullopt;
      return std::get<std::string>(*v);
    };
    const auto topo = str_mark(kTopology);
    const auto routing = str_mark(kRouting);
    if (topo && *topo != "mesh" && *topo != "torus" && *topo != "ring") {
      sink.error("marks.topology",
                 "domain.topology must be \"mesh\", \"torus\" or \"ring\" "
                 "(got \"" + *topo + "\")");
    }
    if (routing && *routing != "xy" && *routing != "yx" &&
        *routing != "adaptive") {
      sink.error("marks.routing",
                 "domain.routing must be \"xy\", \"yx\" or \"adaptive\" "
                 "(got \"" + *routing + "\")");
    }
    // Shape compatibility, judged against the same effective dimensions the
    // partition derives (explicit meshWidth/meshHeight, else the placement
    // bounding box). Only meaningful once the mesh is described at all.
    const bool mesh_described = any_tiles || domain_mark(kMeshWidth) ||
                                domain_mark(kMeshHeight);
    if (mesh_described) {
      const std::int64_t mesh_w =
          domain_mark_int(kMeshWidth, any_tiles ? max_x + 1 : 1);
      const std::int64_t mesh_h =
          domain_mark_int(kMeshHeight, any_tiles ? max_y + 1 : 1);
      if (topo && *topo == "ring" && mesh_h > 1) {
        sink.error("marks.topology",
                   "ring topology is one row, but the mesh is " +
                       std::to_string(mesh_w) + "x" + std::to_string(mesh_h) +
                       "; set meshHeight = 1 or use torus");
      }
      if (topo && *topo == "torus" && (mesh_w < 2 || mesh_h < 2)) {
        sink.error("marks.topology",
                   "torus wraparound needs both dimensions >= 2, but the "
                   "mesh is " + std::to_string(mesh_w) + "x" +
                       std::to_string(mesh_h) +
                       "; a single wrapped row is a ring");
      }
    }
    // Adaptive routing picks ports by live credit, so the retransmit
    // detour's primary/fallback dimension orders do not exist under it.
    if (routing && *routing == "adaptive") {
      for (const char* key :
           {kFaultRateFlitDrop, kFaultRateFlitCorrupt, kFaultRateLinkDown}) {
        auto v = domain_mark(key);
        if (!v) continue;
        double rate = 0.0;
        if (std::holds_alternative<double>(*v)) {
          rate = std::get<double>(*v);
        } else if (std::holds_alternative<std::int64_t>(*v)) {
          rate = static_cast<double>(std::get<std::int64_t>(*v));
        }
        if (rate > 0.0) {
          sink.error("marks.routing",
                     "domain.routing = \"adaptive\" cannot be combined with "
                     "domain." + std::string(key) +
                         " > 0: the fault retransmit path alternates "
                         "dimension orders, which adaptive routing replaces");
          break;
        }
      }
    }
  }

  // Memory-hierarchy marks. The DRAM edge is a fabric endpoint, so it needs
  // a mesh, a tile inside it, and no executor already on that tile; cache
  // indexing is bit-sliced, so the geometry must be powers of two. All of
  // this is a platform decision — rejected here, with the other marks.
  {
    auto int_mark = [&](const char* key) -> std::optional<std::int64_t> {
      auto v = domain_mark(key);
      if (!v || !std::holds_alternative<std::int64_t>(*v)) return std::nullopt;
      return std::get<std::int64_t>(*v);
    };
    const bool has_dram = domain_mark(kDramTile).has_value();
    const bool any_mem_mark =
        has_dram || domain_mark(kDramTRcd) || domain_mark(kDramTCas) ||
        domain_mark(kDramTRp) || domain_mark(kCacheSets) ||
        domain_mark(kCacheWays) || domain_mark(kCacheLineBytes) ||
        domain_mark(kCacheHitLatency);
    if (any_mem_mark && !has_dram) {
      sink.error("marks.dram.missing_tile",
                 "cache.*/dram.* marks need domain.dram.tile; without a DRAM "
                 "edge tile there is no memory hierarchy to configure");
    }
    if (has_dram && !any_tiles) {
      sink.error("marks.dram.requires_mesh",
                 "domain.dram.tile needs a mesh-mapped domain (tileX/tileY "
                 "placements); coherence messages are fabric frames");
    }
    auto pow2 = [](std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; };
    for (const char* key : {kCacheSets, kCacheWays, kCacheLineBytes}) {
      if (auto v = int_mark(key); v && !pow2(*v)) {
        sink.error("marks.cache.pow2",
                   "domain." + std::string(key) +
                       " must be a positive power of two (got " +
                       std::to_string(*v) + "); cache indexing is bit-sliced");
      }
    }
    if (auto v = int_mark(kCacheHitLatency); v && *v < 1) {
      sink.error("marks.cache.range",
                 "domain.cache.hitLatency must be >= 1 (got " +
                     std::to_string(*v) + "); even a hit takes a cycle");
    }
    for (const char* key : {kDramTRcd, kDramTCas, kDramTRp}) {
      if (auto v = int_mark(key); v && *v < 1) {
        sink.error("marks.dram.range",
                   "domain." + std::string(key) + " must be >= 1 (got " +
                       std::to_string(*v) + ")");
      }
    }
    if (auto v = domain_mark(kMemWriteFraction)) {
      double f = -1.0;
      if (std::holds_alternative<double>(*v)) {
        f = std::get<double>(*v);
      } else if (std::holds_alternative<std::int64_t>(*v)) {
        f = static_cast<double>(std::get<std::int64_t>(*v));
      }
      if (f < 0.0 || f > 1.0) {
        sink.error("marks.mem.write_fraction",
                   "domain.memTraffic.writeFraction is a probability and "
                   "must be in [0, 1]");
      }
    }
    if (auto dt = int_mark(kDramTile); dt && any_tiles) {
      const std::int64_t mesh_w = domain_mark_int(kMeshWidth, max_x + 1);
      const std::int64_t mesh_h = domain_mark_int(kMeshHeight, max_y + 1);
      if (*dt < 0 || *dt >= mesh_w * mesh_h) {
        sink.error("marks.dram.tile",
                   "domain.dram.tile " + std::to_string(*dt) +
                       " is outside the " + std::to_string(mesh_w) + "x" +
                       std::to_string(mesh_h) + " mesh");
      } else {
        const std::int64_t sw_tile =
            domain_mark_int(kSwTileY, 0) * mesh_w + domain_mark_int(kSwTileX, 0);
        if (*dt == sw_tile) {
          sink.error("marks.dram.tile_clash",
                     "domain.dram.tile " + std::to_string(*dt) +
                         " is the software tile; the DRAM edge needs an "
                         "unoccupied tile (its NIC is the directory)");
        }
        for (const auto& [element, kv] : marks_) {
          if (element.empty()) continue;
          auto tx = kv.find(kTileX);
          auto ty = kv.find(kTileY);
          if (tx == kv.end() || ty == kv.end() ||
              !std::holds_alternative<std::int64_t>(tx->second) ||
              !std::holds_alternative<std::int64_t>(ty->second)) {
            continue;
          }
          std::int64_t tile = std::get<std::int64_t>(ty->second) * mesh_w +
                              std::get<std::int64_t>(tx->second);
          if (tile == *dt) {
            sink.error("marks.dram.tile_clash",
                       "domain.dram.tile " + std::to_string(*dt) +
                           " collides with class '" + element +
                           "'; the DRAM edge needs an unoccupied tile");
          }
        }
      }
    }
  }
  return sink.error_count() == before;
}

std::string MarkSet::to_text() const {
  std::ostringstream os;
  for (const auto& [element, kv] : marks_) {
    for (const auto& [key, value] : kv) {
      os << (element.empty() ? "domain" : element) << '.' << key << " = "
         << xtuml::scalar_to_string(value) << '\n';
    }
  }
  return os.str();
}

MarkSet MarkSet::from_text(std::string_view text, DiagnosticSink& sink) {
  MarkSet out;
  int line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.starts_with("#")) continue;

    SourceLoc loc{line_no, 1};
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      sink.error("marks.parse", "expected 'element.key = value'", loc);
      continue;
    }
    std::string_view lhs = trim(line.substr(0, eq));
    std::string_view rhs = trim(line.substr(eq + 1));
    std::size_t dot = lhs.find('.');
    if (dot == std::string_view::npos) {
      sink.error("marks.parse", "expected 'element.key' before '='", loc);
      continue;
    }
    std::string element(trim(lhs.substr(0, dot)));
    std::string key(trim(lhs.substr(dot + 1)));
    if (element == "domain") element.clear();

    xtuml::ScalarValue value;
    if (rhs == "true") {
      value = true;
    } else if (rhs == "false") {
      value = false;
    } else if (!rhs.empty() && rhs.front() == '"') {
      if (rhs.size() < 2 || rhs.back() != '"') {
        sink.error("marks.parse", "unterminated string value", loc);
        continue;
      }
      value = std::string(rhs.substr(1, rhs.size() - 2));
    } else if (rhs.find('.') != std::string_view::npos) {
      try {
        value = std::stod(std::string(rhs));
      } catch (...) {
        sink.error("marks.parse", "bad real value '" + std::string(rhs) + "'",
                   loc);
        continue;
      }
    } else {
      std::int64_t iv = 0;
      auto [p, ec] = std::from_chars(rhs.data(), rhs.data() + rhs.size(), iv);
      if (ec != std::errc{} || p != rhs.data() + rhs.size()) {
        sink.error("marks.parse", "bad value '" + std::string(rhs) + "'", loc);
        continue;
      }
      value = iv;
    }
    if (element.empty()) {
      out.set_domain_mark(key, std::move(value));
    } else {
      out.set_class_mark(element, key, std::move(value));
    }
  }
  return out;
}

}  // namespace xtsoc::marks
