// Marks: lightweight, non-intrusive annotations held OUTSIDE the model
// (paper §3: "rather like sticky notes ... without polluting those models").
//
// A MarkSet maps model elements (addressed by class name, or the whole
// domain) to key/value marks. The partition is decided entirely by the
// `isHardware` mark; consequently "changing the partition is a matter of
// changing the placement of the marks" (§4) — operationally, a MarkSet diff.
//
// MarkSets serialize to a trivial line format so they can live in a file
// next to (but never inside) the model:
//
//   domain.busLatency = 4
//   Compressor.isHardware = true
//   Compressor.clockDomain = 1
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/xtuml/model.hpp"

namespace xtsoc::marks {

/// Implementation technology a class is mapped to. Software is the default
/// for unmarked classes.
enum class Target { kSoftware, kHardware };

const char* to_string(Target t);

/// Well-known mark keys. Unknown keys are permitted (mappings may define
/// their own) but validation warns about likely typos of these.
inline constexpr const char* kIsHardware = "isHardware";    // bool, class
inline constexpr const char* kClockDomain = "clockDomain";  // int, class
inline constexpr const char* kBusId = "busId";              // int, class
inline constexpr const char* kPriority = "priority";        // int, class
inline constexpr const char* kMaxInstances = "maxInstances";// int, class (hw pool size)
inline constexpr const char* kBusLatency = "busLatency";    // int, domain
inline constexpr const char* kIntWidth = "intWidth";        // int, class (wire bits)

// NoC placement marks. Placing ANY class on a tile switches the
// co-simulation interconnect from the point-to-point bus to the 2D-mesh
// fabric (src/xtsoc/noc); moving a class between tiles is then the same
// marks-only operation as moving it between hardware and software.
inline constexpr const char* kTileX = "tileX";              // int, class (mesh column)
inline constexpr const char* kTileY = "tileY";              // int, class (mesh row)
inline constexpr const char* kMeshWidth = "meshWidth";      // int, domain
inline constexpr const char* kMeshHeight = "meshHeight";    // int, domain
inline constexpr const char* kSwTileX = "swTileX";          // int, domain (CPU tile)
inline constexpr const char* kSwTileY = "swTileY";          // int, domain
inline constexpr const char* kLinkLatency = "linkLatency";  // int, domain (cycles/hop)
inline constexpr const char* kFlitBytes = "flitBytes";      // int, domain (link width)
inline constexpr const char* kFifoDepth = "fifoDepth";      // int, domain (router buffers)
// Network shape and routing policy (consumed by noc::Topology). Strings:
// topology is "mesh" (default), "torus", or "ring"; routing is "xy"
// (default), "yx", or "adaptive". Validation enforces shape compatibility
// (torus needs both mesh dimensions >= 2, ring needs meshHeight == 1) and
// rejects adaptive routing combined with NoC fault rates.
inline constexpr const char* kTopology = "topology";        // string, domain
inline constexpr const char* kRouting = "routing";          // string, domain

// Fault-injection marks (domain scope; consumed by src/xtsoc/fault). A
// failure scenario is itself a platform decision, so it lives in the marks
// like every other one. Rates are per-decision probabilities in [0, 1],
// written as reals (or the ints 0/1).
inline constexpr const char* kFaultSeed = "faultSeed";      // int, domain (PRNG root)
inline constexpr const char* kFaultWindow = "faultWindow";  // int, domain (last cycle; 0 = whole run)
inline constexpr const char* kFaultWindowStart = "faultWindow.start";  // int, domain (first cycle)
inline constexpr const char* kFaultRateFlitDrop = "faultRate.flitDrop";
inline constexpr const char* kFaultRateFlitCorrupt = "faultRate.flitCorrupt";
inline constexpr const char* kFaultRateLinkDown = "faultRate.linkDown";
inline constexpr const char* kFaultRateBusError = "faultRate.busError";

// Memory-hierarchy marks (domain scope; consumed by src/xtsoc/mem). Placing
// `dram.tile` on a mesh-mapped domain attaches a DRAM edge model at that
// (unoccupied) tile and gives every executor tile a private cache wired to a
// MESI directory riding the fabric; the cache geometry and DRAM timing are
// then marks-only platform decisions like everything else. Without
// `cache.sets` the hierarchy runs uncached (every access is a DRAM round
// trip) — the baseline the bench suite compares against.
inline constexpr const char* kDramTile = "dram.tile";        // int, domain (edge tile)
inline constexpr const char* kDramTRcd = "dram.tRCD";        // int, domain (activate cycles)
inline constexpr const char* kDramTCas = "dram.tCAS";        // int, domain (column cycles)
inline constexpr const char* kDramTRp = "dram.tRP";          // int, domain (precharge cycles)
inline constexpr const char* kCacheSets = "cache.sets";      // int, domain (power of two)
inline constexpr const char* kCacheWays = "cache.ways";      // int, domain (power of two)
inline constexpr const char* kCacheLineBytes = "cache.lineBytes";  // int, domain (power of two)
inline constexpr const char* kCacheHitLatency = "cache.hitLatency";  // int, domain (cycles)
/// Store fraction of the synthetic `memory` traffic pattern (real in [0,1]).
inline constexpr const char* kMemWriteFraction = "memTraffic.writeFraction";

/// One change between two MarkSets (the unit of "repartitioning cost").
struct MarkChange {
  std::string element;  ///< class name, or "domain"
  std::string key;
  std::optional<xtuml::ScalarValue> before;  ///< nullopt = mark added
  std::optional<xtuml::ScalarValue> after;   ///< nullopt = mark removed
};

struct MarkDiff {
  std::vector<MarkChange> changes;
  std::size_t size() const { return changes.size(); }
  bool empty() const { return changes.empty(); }
  std::string to_string() const;
};

class MarkSet {
public:
  MarkSet() = default;
  explicit MarkSet(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- writing ---------------------------------------------------------------
  void set_class_mark(std::string_view class_name, std::string_view key,
                      xtuml::ScalarValue value);
  void set_domain_mark(std::string_view key, xtuml::ScalarValue value);
  void clear_class_mark(std::string_view class_name, std::string_view key);

  /// Convenience for the one mark that decides the partition.
  void mark_hardware(std::string_view class_name, bool is_hw = true);

  // --- reading ---------------------------------------------------------------
  std::optional<xtuml::ScalarValue> class_mark(std::string_view class_name,
                                               std::string_view key) const;
  std::optional<xtuml::ScalarValue> domain_mark(std::string_view key) const;

  /// Int-valued mark with a default.
  std::int64_t class_mark_int(std::string_view class_name, std::string_view key,
                              std::int64_t fallback) const;
  std::int64_t domain_mark_int(std::string_view key, std::int64_t fallback) const;

  Target target_of(std::string_view class_name) const;
  bool is_hardware(std::string_view class_name) const {
    return target_of(class_name) == Target::kHardware;
  }

  std::size_t mark_count() const;

  // --- the paper's repartitioning operation -----------------------------------
  static MarkDiff diff(const MarkSet& before, const MarkSet& after);

  /// Check marks against a model: unknown class names, wrongly-typed
  /// standard marks, near-miss key spellings. Returns false on errors.
  bool validate(const xtuml::Domain& domain, DiagnosticSink& sink) const;

  // --- persistence (marks live outside the model) ------------------------------
  std::string to_text() const;
  static MarkSet from_text(std::string_view text, DiagnosticSink& sink);

  friend bool operator==(const MarkSet&, const MarkSet&) = default;

private:
  // map<element, map<key, value>>; element "" = domain scope. Ordered maps
  // keep to_text() and diff() deterministic.
  std::string name_;
  std::map<std::string, std::map<std::string, xtuml::ScalarValue>,
           std::less<>> marks_;
};

}  // namespace xtsoc::marks
