// A loaded jit model: dlopen'd shared object + validated entry table,
// exposed to the Executor through runtime::CompiledActions.
//
// Validation order on load (each failure returns a reason, never throws):
// dlopen -> entry symbol -> ABI version -> content digest. A stale cached
// .so (right file name, wrong exported digest) is rejected here and the
// caller falls back to the VM — it is never silently recompiled over,
// because a digest mismatch under a digest-keyed name means something is
// wrong with the cache itself.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "xtsoc/jit/abi.h"
#include "xtsoc/runtime/compiled_actions.hpp"

namespace xtsoc::jit {

class Module : public runtime::CompiledActions {
public:
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  ~Module() override;

  /// dlopen `so_path`, resolve xtsoc_jit_module(), validate ABI version
  /// and (when non-empty) `expected_digest`. Null + *err on any failure.
  static std::unique_ptr<Module> load(const std::string& so_path,
                                      const std::string& expected_digest,
                                      std::string* err);

  // --- CompiledActions -------------------------------------------------------
  bool has(ClassId cls, StateId state) const override;
  runtime::InterpResult run(ClassId cls, StateId state,
                            const runtime::InstanceHandle& self,
                            const std::vector<runtime::Value>& params,
                            runtime::Host& host,
                            std::uint64_t max_ops) const override;

  const std::string& digest() const { return digest_; }
  const std::string& path() const { return path_; }
  std::size_t entry_count() const { return entry_count_; }

private:
  Module() = default;

  void* dl_ = nullptr;
  std::string digest_;
  std::string path_;
  std::size_t entry_count_ = 0;
  /// Dense [class][state] function table (null = not compiled).
  std::vector<std::vector<XjActionFn>> fns_;
};

}  // namespace xtsoc::jit
