/* xtsoc::jit C ABI — the only contract between the host process and a
 * jit-compiled model shared object.
 *
 * This header is deliberately plain C: it is both #included by the host
 * (src/xtsoc/jit/module.cpp) and embedded verbatim at the top of every
 * generated translation unit (via the CMake-generated jit_abi_text.cpp), so
 * the .so never needs the repository's headers. Because the ABI text itself
 * is part of the module digest, any edit here retires every cached .so
 * automatically.
 *
 * Versioning follows xtsoc::snap: a monotonically bumped XTSOC_JIT_ABI_VERSION
 * plus a content digest exported by the module. The host refuses (and falls
 * back to the VM) on either mismatch.
 */
#ifndef XTSOC_JIT_ABI_H_
#define XTSOC_JIT_ABI_H_

#include <stdint.h>

#define XTSOC_JIT_ABI_VERSION 1u

/* Value tags. Numerically identical to runtime::Value's variant indexes so
 * host-side conversion is a table lookup, never a remap. */
#define XJ_TAG_UNSET 0u
#define XJ_TAG_BOOL 1u
#define XJ_TAG_INT 2u
#define XJ_TAG_REAL 3u
#define XJ_TAG_STR 4u
#define XJ_TAG_HANDLE 5u
#define XJ_TAG_SET 6u

/* runtime::ClassId::invalid().value() — a handle with this class is null. */
#define XJ_CLS_NULL 0xffffffffu

/* Conversion-failure kinds for XjHostOps::fail_conv (mirror runtime as_*). */
#define XJ_CONV_BOOL 1u
#define XJ_CONV_INT 2u
#define XJ_CONV_REAL 3u
#define XJ_CONV_HANDLE 4u
#define XJ_CONV_SET 5u

/* Model-error kinds for XjHostOps::fail (exact VM error strings host-side). */
#define XJ_ERR_DIV0 1u
#define XJ_ERR_MOD0 2u
#define XJ_ERR_UNSET_VAR 3u
#define XJ_ERR_NEG_DELAY 4u
#define XJ_ERR_GEN_NULL 5u
#define XJ_ERR_OP_LIMIT 6u

/* A runtime value flattened to 16 trivially copyable bytes.
 *   UNSET            tag only
 *   BOOL/INT         u.i (bool is 0/1)
 *   REAL             u.d
 *   STR/SET          aux = index into the host's per-invocation value arena
 *   HANDLE           u.h.cls/u.h.idx, aux = generation
 */
typedef struct XjValue {
  uint32_t tag;
  uint32_t aux;
  union {
    int64_t i;
    double d;
    struct {
      uint32_t cls;
      uint32_t idx;
    } h;
  } u;
} XjValue;

struct XjHost; /* opaque host context */
typedef struct XjHost XjHost;

/* Host services. Every model-database or heap-typed operation crosses this
 * table so generated code stays self-contained; scalar arithmetic and
 * control flow never do. `size` is sizeof(XjHostOps) on the host side —
 * future minor extensions append members and bump only the digest. */
typedef struct XjHostOps {
  uint32_t size;

  XjValue (*get_attr)(XjHost* h, XjValue obj, uint32_t attr);
  void (*set_attr)(XjHost* h, XjValue obj, uint32_t attr, XjValue v);
  XjValue (*create_inst)(XjHost* h, uint32_t cls);
  void (*delete_inst)(XjHost* h, XjValue obj);
  void (*relate)(XjHost* h, XjValue a, XjValue b, uint32_t assoc);
  void (*unrelate)(XjHost* h, XjValue a, XjValue b, uint32_t assoc);
  XjValue (*select_all)(XjHost* h, uint32_t cls);
  XjValue (*related)(XjHost* h, XjValue start, uint32_t assoc);
  int (*handle_alive)(XjHost* h, XjValue v);

  int64_t (*set_size)(XjHost* h, XjValue set);
  XjValue (*set_at)(XjHost* h, XjValue set, int64_t idx);
  XjValue (*set_first)(XjHost* h, XjValue set);
  XjValue (*set_new)(XjHost* h);
  void (*set_append)(XjHost* h, XjValue set, XjValue elem);

  XjValue (*str_const)(XjHost* h, const char* data, uint64_t len);
  XjValue (*str_concat)(XjHost* h, XjValue l, XjValue r);
  int (*str_compare)(XjHost* h, XjValue l, XjValue r);
  int (*values_equal)(XjHost* h, XjValue l, XjValue r);

  /* cls_event packs (target class << 16) | event, exactly like kGenerate. */
  void (*emit_ev)(XjHost* h, XjValue target, uint32_t cls_event,
                  const XjValue* args, uint32_t argc, int64_t delay);
  void (*log_vals)(XjHost* h, const XjValue* vals, uint32_t n);

  /* Both throw the engine-parity C++ exception and never return. */
  void (*fail)(XjHost* h, uint32_t err);
  void (*fail_conv)(XjHost* h, uint32_t conv, XjValue v);

  /* Platform memory port (`mem.read` / `mem.write`). Appended member —
   * the digest covers this text, so older cached .so files retire. */
  int64_t (*mem_read)(XjHost* h, int64_t addr);
  void (*mem_write)(XjHost* h, int64_t addr, int64_t value);
} XjHostOps;

/* One compiled state action. Returns executed op count (identical to the
 * VM's instruction count for the same dispatch); self-deletion is tracked
 * host-side. Model errors propagate as C++ exceptions raised by fail /
 * fail_conv inside host callbacks. */
typedef uint64_t (*XjActionFn)(XjHost* h, const XjHostOps* o, XjValue self,
                               const XjValue* params, uint64_t max_ops);

typedef struct XjEntry {
  uint32_t cls;
  uint32_t state;
  XjActionFn fn;
} XjEntry;

typedef struct XjModule {
  uint32_t abi_version; /* XTSOC_JIT_ABI_VERSION at generation time */
  uint32_t entry_count;
  const XjEntry* entries;
  const char* digest; /* content digest the host validates against */
} XjModule;

/* The module's single exported symbol:
 *   extern "C" const XjModule* xtsoc_jit_module(void);
 */
#define XTSOC_JIT_ENTRY_SYMBOL "xtsoc_jit_module"

#endif /* XTSOC_JIT_ABI_H_ */
