#include "xtsoc/jit/module.hpp"

#include <dlfcn.h>

#include <utility>

#include "xtsoc/runtime/database.hpp"

namespace xtsoc::jit {

namespace {

using runtime::Host;
using runtime::InstanceHandle;
using runtime::InstanceSet;
using runtime::ModelError;
using runtime::Value;

/// Per-invocation host context; XjHost* is a reinterpret_cast of this.
/// The arena holds every string/set value that crosses the ABI during one
/// action run — XjValue carries only an index, so values can be handed to
/// generated code without heap-typed payloads in the 16-byte struct.
struct HostCtx {
  Host* host;
  std::vector<Value>* arena;
  InstanceHandle self;
  bool self_deleted = false;
};

inline HostCtx* ctx(XjHost* h) { return reinterpret_cast<HostCtx*>(h); }

inline InstanceHandle to_handle(const XjValue& x) {
  InstanceHandle h;
  h.cls = ClassId(x.u.h.cls);  // XJ_CLS_NULL == ClassId::invalid().value()
  h.index = x.u.h.idx;
  h.generation = x.aux;
  return h;
}

inline XjValue from_handle(const InstanceHandle& h) {
  XjValue x;
  x.tag = XJ_TAG_HANDLE;
  x.aux = h.generation;
  x.u.h.cls = h.cls.value();
  x.u.h.idx = h.index;
  return x;
}

inline XjValue arena_put(HostCtx& c, Value v, std::uint32_t tag) {
  XjValue x;
  x.tag = tag;
  x.aux = static_cast<std::uint32_t>(c.arena->size());
  x.u.i = 0;
  c.arena->push_back(std::move(v));
  return x;
}

XjValue to_xj(const Value& v, HostCtx& c) {
  XjValue x;
  x.tag = static_cast<std::uint32_t>(v.index());
  x.aux = 0;
  x.u.i = 0;
  switch (v.index()) {
    case 0:
      break;
    case 1:
      x.u.i = std::get<bool>(v) ? 1 : 0;
      break;
    case 2:
      x.u.i = std::get<std::int64_t>(v);
      break;
    case 3:
      x.u.d = std::get<double>(v);
      break;
    case 4:
      return arena_put(c, v, XJ_TAG_STR);
    case 5:
      return from_handle(std::get<InstanceHandle>(v));
    case 6:
      return arena_put(c, v, XJ_TAG_SET);
  }
  return x;
}

/// Arena values may be aliased by several XjValues, so conversion back to
/// a Value always copies, never moves.
Value from_xj(const XjValue& x, HostCtx& c) {
  switch (x.tag) {
    case XJ_TAG_UNSET:
      return Value{};
    case XJ_TAG_BOOL:
      return Value(x.u.i != 0);
    case XJ_TAG_INT:
      return Value(x.u.i);
    case XJ_TAG_REAL:
      return Value(x.u.d);
    case XJ_TAG_HANDLE:
      return Value(to_handle(x));
    default:
      return (*c.arena)[x.aux];
  }
}

inline const InstanceSet& arena_set(HostCtx& c, const XjValue& x) {
  return std::get<InstanceSet>((*c.arena)[x.aux]);
}

inline const std::string& arena_str(HostCtx& c, const XjValue& x) {
  return std::get<std::string>((*c.arena)[x.aux]);
}

// --- XjHostOps implementations ----------------------------------------------

XjValue op_get_attr(XjHost* h, XjValue obj, std::uint32_t attr) {
  HostCtx& c = *ctx(h);
  return to_xj(c.host->database().get_attr(to_handle(obj), AttributeId(attr)),
               c);
}

void op_set_attr(XjHost* h, XjValue obj, std::uint32_t attr, XjValue v) {
  HostCtx& c = *ctx(h);
  const InstanceHandle ih = to_handle(obj);
  c.host->database().set_attr(ih, AttributeId(attr), from_xj(v, c));
  // Re-read like the VM so the traced value reflects any coercion.
  c.host->on_attr_write(ih, AttributeId(attr),
                        c.host->database().get_attr(ih, AttributeId(attr)));
}

XjValue op_create(XjHost* h, std::uint32_t cls) {
  HostCtx& c = *ctx(h);
  const InstanceHandle ih = c.host->database().create(ClassId(cls));
  c.host->on_create(ih);
  return from_handle(ih);
}

void op_delete(XjHost* h, XjValue obj) {
  HostCtx& c = *ctx(h);
  const InstanceHandle ih = to_handle(obj);
  c.host->on_delete(ih);
  c.host->database().destroy(ih);
  if (ih == c.self) c.self_deleted = true;
}

void op_relate(XjHost* h, XjValue a, XjValue b, std::uint32_t assoc) {
  HostCtx& c = *ctx(h);
  c.host->database().relate(to_handle(a), to_handle(b), AssociationId(assoc));
}

void op_unrelate(XjHost* h, XjValue a, XjValue b, std::uint32_t assoc) {
  HostCtx& c = *ctx(h);
  c.host->database().unrelate(to_handle(a), to_handle(b),
                              AssociationId(assoc));
}

XjValue op_select_all(XjHost* h, std::uint32_t cls) {
  HostCtx& c = *ctx(h);
  return arena_put(c, Value(c.host->database().all_of(ClassId(cls))),
                   XJ_TAG_SET);
}

XjValue op_related(XjHost* h, XjValue start, std::uint32_t assoc) {
  HostCtx& c = *ctx(h);
  return arena_put(
      c,
      Value(c.host->database().related(to_handle(start), AssociationId(assoc))),
      XJ_TAG_SET);
}

int op_handle_alive(XjHost* h, XjValue v) {
  HostCtx& c = *ctx(h);
  return c.host->database().is_alive(to_handle(v)) ? 1 : 0;
}

std::int64_t op_set_size(XjHost* h, XjValue set) {
  return static_cast<std::int64_t>(arena_set(*ctx(h), set).size());
}

XjValue op_set_at(XjHost* h, XjValue set, std::int64_t idx) {
  // vector::at, like the VM's kIndexSet — same std::out_of_range on a bad
  // index (negative wraps through size_t exactly like the VM's cast).
  return from_handle(
      arena_set(*ctx(h), set).at(static_cast<std::size_t>(idx)));
}

XjValue op_set_first(XjHost* h, XjValue set) {
  const InstanceSet& s = arena_set(*ctx(h), set);
  return from_handle(s.empty() ? InstanceHandle::null() : s.front());
}

XjValue op_set_new(XjHost* h) {
  return arena_put(*ctx(h), Value(InstanceSet{}), XJ_TAG_SET);
}

void op_set_append(XjHost* h, XjValue set, XjValue elem) {
  HostCtx& c = *ctx(h);
  std::get<InstanceSet>((*c.arena)[set.aux]).push_back(to_handle(elem));
}

XjValue op_str_const(XjHost* h, const char* data, std::uint64_t len) {
  return arena_put(*ctx(h),
                   Value(std::string(data, static_cast<std::size_t>(len))),
                   XJ_TAG_STR);
}

XjValue op_str_concat(XjHost* h, XjValue l, XjValue r) {
  HostCtx& c = *ctx(h);
  // Right side through std::get, like the VM: a non-string rhs throws the
  // same std::bad_variant_access.
  const Value rv = from_xj(r, c);
  return arena_put(c, Value(arena_str(c, l) + std::get<std::string>(rv)),
                   XJ_TAG_STR);
}

int op_str_compare(XjHost* h, XjValue l, XjValue r) {
  HostCtx& c = *ctx(h);
  const Value rv = from_xj(r, c);
  return arena_str(c, l).compare(std::get<std::string>(rv));
}

int op_values_equal(XjHost* h, XjValue l, XjValue r) {
  HostCtx& c = *ctx(h);
  return runtime::value_equals(from_xj(l, c), from_xj(r, c)) ? 1 : 0;
}

void op_emit_ev(XjHost* h, XjValue target, std::uint32_t cls_event,
                const XjValue* args, std::uint32_t argc, std::int64_t delay) {
  HostCtx& c = *ctx(h);
  std::vector<Value> payload = c.host->acquire_args(argc);
  for (std::uint32_t k = 0; k < argc; ++k) {
    payload[k] = from_xj(args[k], c);
  }
  c.host->emit(c.self, to_handle(target), EventId(cls_event & 0xffff),
               std::move(payload), static_cast<std::uint64_t>(delay));
}

void op_log_vals(XjHost* h, const XjValue* vals, std::uint32_t n) {
  HostCtx& c = *ctx(h);
  std::string text;
  for (std::uint32_t k = 0; k < n; ++k) {
    if (k > 0) text += ' ';
    text += runtime::to_string(from_xj(vals[k], c));
  }
  c.host->on_log(std::move(text));
}

void op_fail(XjHost* /*h*/, std::uint32_t err) {
  switch (err) {
    case XJ_ERR_DIV0:
      throw ModelError("integer division by zero");
    case XJ_ERR_MOD0:
      throw ModelError("modulo by zero");
    case XJ_ERR_UNSET_VAR:
      throw ModelError("read of unset variable");
    case XJ_ERR_NEG_DELAY:
      throw ModelError("negative delay in generate");
    case XJ_ERR_GEN_NULL:
      throw ModelError("generate to a null instance reference");
    case XJ_ERR_OP_LIMIT:
      throw ModelError("action exceeded op limit (runaway loop?)");
    default:
      throw ModelError("jit: unknown model error code");
  }
}

void op_fail_conv(XjHost* h, std::uint32_t conv, XjValue v) {
  // Reconstruct the Value and run the exact runtime conversion, so the
  // exception type and message are the VM's, character for character.
  const Value val = from_xj(v, *ctx(h));
  switch (conv) {
    case XJ_CONV_BOOL:
      (void)runtime::as_bool(val);
      break;
    case XJ_CONV_INT:
      (void)runtime::as_int(val);
      break;
    case XJ_CONV_REAL:
      (void)runtime::as_real(val);
      break;
    case XJ_CONV_HANDLE:
      (void)runtime::as_handle(val);
      break;
    case XJ_CONV_SET:
      (void)runtime::as_set(val);
      break;
    default:
      break;
  }
  throw ModelError("jit: conversion check failed to fail");
}

std::int64_t op_mem_read(XjHost* h, std::int64_t addr) {
  return ctx(h)->host->mem_read(addr);
}

void op_mem_write(XjHost* h, std::int64_t addr, std::int64_t value) {
  ctx(h)->host->mem_write(addr, value);
}

const XjHostOps kHostOps = {
    sizeof(XjHostOps),
    &op_get_attr,
    &op_set_attr,
    &op_create,
    &op_delete,
    &op_relate,
    &op_unrelate,
    &op_select_all,
    &op_related,
    &op_handle_alive,
    &op_set_size,
    &op_set_at,
    &op_set_first,
    &op_set_new,
    &op_set_append,
    &op_str_const,
    &op_str_concat,
    &op_str_compare,
    &op_values_equal,
    &op_emit_ev,
    &op_log_vals,
    &op_fail,
    &op_fail_conv,
    &op_mem_read,
    &op_mem_write,
};

}  // namespace

Module::~Module() {
  if (dl_ != nullptr) dlclose(dl_);
}

std::unique_ptr<Module> Module::load(const std::string& so_path,
                                     const std::string& expected_digest,
                                     std::string* err) {
  void* dl = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (dl == nullptr) {
    const char* e = dlerror();
    *err = std::string("dlopen failed: ") + (e != nullptr ? e : "unknown");
    return nullptr;
  }
  using GetModuleFn = const XjModule* (*)();
  auto get = reinterpret_cast<GetModuleFn>(dlsym(dl, XTSOC_JIT_ENTRY_SYMBOL));
  if (get == nullptr) {
    *err = "shared object exports no " XTSOC_JIT_ENTRY_SYMBOL " symbol";
    dlclose(dl);
    return nullptr;
  }
  const XjModule* m = get();
  if (m == nullptr || m->entries == nullptr) {
    *err = "module entry table is null";
    dlclose(dl);
    return nullptr;
  }
  if (m->abi_version != XTSOC_JIT_ABI_VERSION) {
    *err = "jit ABI version mismatch (module v" +
           std::to_string(m->abi_version) + ", host v" +
           std::to_string(XTSOC_JIT_ABI_VERSION) + ")";
    dlclose(dl);
    return nullptr;
  }
  const std::string mod_digest = m->digest != nullptr ? m->digest : "";
  if (!expected_digest.empty() && mod_digest != expected_digest) {
    *err = "interface digest mismatch (cached object is stale: module " +
           mod_digest + ", expected " + expected_digest + ")";
    dlclose(dl);
    return nullptr;
  }

  std::unique_ptr<Module> mod(new Module());
  mod->dl_ = dl;
  mod->digest_ = mod_digest;
  mod->path_ = so_path;
  mod->entry_count_ = m->entry_count;
  for (std::uint32_t k = 0; k < m->entry_count; ++k) {
    const XjEntry& e = m->entries[k];
    if (e.fn == nullptr) continue;
    if (e.cls >= mod->fns_.size()) mod->fns_.resize(e.cls + 1);
    auto& per_class = mod->fns_[e.cls];
    if (e.state >= per_class.size()) per_class.resize(e.state + 1, nullptr);
    per_class[e.state] = e.fn;
  }
  return mod;
}

bool Module::has(ClassId cls, StateId state) const {
  if (cls.value() >= fns_.size()) return false;
  const auto& per_class = fns_[cls.value()];
  return state.value() < per_class.size() &&
         per_class[state.value()] != nullptr;
}

runtime::InterpResult Module::run(ClassId cls, StateId state,
                                  const InstanceHandle& self,
                                  const std::vector<Value>& params, Host& host,
                                  std::uint64_t max_ops) const {
  // One arena per thread, reused across invocations: actions cannot
  // re-enter dispatch (signals only queue), so per-run clear() is safe,
  // and cosim's parallel window phase runs executors on distinct threads.
  thread_local std::vector<Value> arena;
  thread_local std::vector<XjValue> xparams;
  HostCtx c{&host, &arena, self, false};
  arena.clear();
  xparams.clear();
  xparams.reserve(params.size());
  for (const Value& p : params) xparams.push_back(to_xj(p, c));

  const XjActionFn fn = fns_[cls.value()][state.value()];
  const std::uint64_t ops =
      fn(reinterpret_cast<XjHost*>(&c), &kHostOps, from_handle(self),
         xparams.data(), max_ops);

  runtime::InterpResult r;
  r.ops = ops;
  r.self_deleted = c.self_deleted;
  return r;
}

}  // namespace xtsoc::jit
