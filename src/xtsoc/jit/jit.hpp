// xtsoc::jit — AOT compilation of mapped models to native shared objects.
//
// compile() lowers every state action of a CompiledDomain to C++ (emit.*),
// invokes the system compiler once per model, dlopens the result (module.*)
// and returns it as a runtime::CompiledActions the Executor dispatches
// through. The pipeline is content-addressed: a FNV-1a digest over the
// generated source, the ABI text, the compiler identity and the flags keys
// the on-disk cache (<cache>/xtsoc-<digest>.so), so an unchanged
// model+marks never recompiles, and any change retires stale objects by
// construction.
//
// Failure policy: compile() NEVER throws and never aborts a run. Every
// failure — no compiler, unwritable cache, compile error, dlopen error,
// ABI/digest mismatch — returns a null module with a human-readable
// reason, and the caller runs on the bytecode VM instead (surfaced in the
// report's "engines" section).
#pragma once

#include <memory>
#include <string>

#include "xtsoc/jit/module.hpp"
#include "xtsoc/oal/compiled.hpp"

namespace xtsoc::jit {

struct JitOptions {
  /// Cache directory for generated sources and shared objects. Empty means
  /// $XDG_CACHE_HOME/xtsoc/jit, else $HOME/.cache/xtsoc/jit, else a
  /// directory under the system temp path.
  std::string cache_dir;
  /// C++ compiler command. Empty means $XTSOC_JIT_CXX, else $CXX, else
  /// "c++". The string is passed to the shell verbatim, so it may carry
  /// flags of its own ("ccache g++").
  std::string compiler;
  /// Extra flags appended to the fixed "-O2 -fPIC -shared -std=c++17 -w".
  std::string extra_flags;
};

struct JitResult {
  /// The loaded module, or null if the jit is unavailable (see reason).
  std::unique_ptr<Module> module;
  /// Why the module is null; empty on success.
  std::string reason;
  std::string digest;
  std::string so_path;
  bool cache_hit = false;
  /// Actions left to the VM because their bytecode couldn't be lowered
  /// (0 in practice; the executor falls back per action).
  int skipped_actions = 0;
};

/// Default cache directory (see JitOptions::cache_dir).
std::string default_cache_dir();

/// The compiler command compile() would use for `opts`.
std::string resolve_compiler(const JitOptions& opts);

/// FNV-1a 64-bit content digest, hex-formatted (the snap/mapping idiom).
std::string content_digest(const std::string& text);

/// Lower, compile (or load from cache) and validate `dom`. Never throws.
JitResult compile(const oal::CompiledDomain& dom, const JitOptions& opts = {});

}  // namespace xtsoc::jit
