#include "xtsoc/jit/emit.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace xtsoc::jit {

namespace {

using oal::CodeBlock;
using oal::Instr;
using oal::Op;

// --- bytecode shape analysis -------------------------------------------------

/// Stack requirement (values consumed) and net effect of one instruction.
void stack_effect(const Instr& i, int* need, int* net) {
  switch (i.op) {
    case Op::kPushConst:
    case Op::kPushNull:
    case Op::kLoadLocal:
    case Op::kLoadParam:
    case Op::kLoadSelf:
    case Op::kLoadSelected:
    case Op::kCreate:
    case Op::kSelectAll:
      *need = 0;
      *net = 1;
      return;
    case Op::kStoreLocal:
    case Op::kPop:
    case Op::kDelete:
    case Op::kJumpIfFalse:
      *need = 1;
      *net = -1;
      return;
    case Op::kGetAttr:
    case Op::kNot:
    case Op::kNeg:
    case Op::kCard:
    case Op::kIsEmpty:
    case Op::kWiden:
    case Op::kRelated:
    case Op::kFilter:
    case Op::kSetToRef:
    case Op::kMemRead:
      *need = 1;
      *net = 0;
      return;
    case Op::kSetAttr:
    case Op::kRelate:
    case Op::kUnrelate:
    case Op::kMemWrite:
      *need = 2;
      *net = -2;
      return;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
    case Op::kIndexSet:
      *need = 2;
      *net = -1;
      return;
    case Op::kJump:
    case Op::kReturn:
      *need = 0;
      *net = 0;
      return;
    case Op::kGenerate: {
      const int argc = static_cast<int>(i.b >> 1);
      const int has_delay = static_cast<int>(i.b & 1u);
      *need = argc + 1 + has_delay;
      *net = -*need;
      return;
    }
    case Op::kLog:
      *need = static_cast<int>(i.a);
      *net = -*need;
      return;
  }
  *need = 0;
  *net = 0;
}

struct BlockShape {
  std::vector<int> depth;       ///< entry stack depth per pc, -1 unreachable
  std::vector<char> is_target;  ///< pc is a jump target
  int max_depth = 0;
};

/// Worklist stack-depth analysis. `is_sub` additionally requires every exit
/// (kReturn or falling off the end) to leave exactly the one predicate
/// result the filter loop consumes. Inconsistent depths at a merge point —
/// which structured compile_bytecode output never produces — fail the
/// analysis and the action stays on the VM.
bool analyze(const CodeBlock& b, bool is_sub, BlockShape* shape,
             std::string* err) {
  const std::size_t n = b.code.size();
  shape->depth.assign(n, -1);
  shape->is_target.assign(n, 0);
  shape->max_depth = 0;
  if (n == 0) {
    if (is_sub) {
      *err = "empty filter predicate block";
      return false;
    }
    return true;
  }
  std::vector<std::size_t> work;
  auto flow = [&](std::size_t pc, int d) -> bool {
    if (pc > n) {
      *err = "jump past end of block";
      return false;
    }
    if (pc == n) {
      // Falling off the end behaves like kReturn.
      if (is_sub && d != 1) {
        *err = "filter predicate exits at depth " + std::to_string(d);
        return false;
      }
      return true;
    }
    if (shape->depth[pc] == -1) {
      shape->depth[pc] = d;
      work.push_back(pc);
      return true;
    }
    if (shape->depth[pc] != d) {
      *err = "inconsistent stack depth at pc " + std::to_string(pc);
      return false;
    }
    return true;
  };
  if (!flow(0, 0)) return false;
  while (!work.empty()) {
    const std::size_t pc = work.back();
    work.pop_back();
    const Instr& i = b.code[pc];
    const int d = shape->depth[pc];
    int need = 0, net = 0;
    stack_effect(i, &need, &net);
    if (d < need) {
      *err = "stack underflow at pc " + std::to_string(pc);
      return false;
    }
    const int d2 = d + net;
    if (d2 > shape->max_depth) shape->max_depth = d2;
    switch (i.op) {
      case Op::kJump:
        shape->is_target[i.a] = 1;
        if (!flow(i.a, d2)) return false;
        break;
      case Op::kJumpIfFalse:
        shape->is_target[i.a] = 1;
        if (!flow(i.a, d2)) return false;
        if (!flow(pc + 1, d2)) return false;
        break;
      case Op::kReturn:
        if (is_sub && d != 1) {
          *err = "filter predicate returns at depth " + std::to_string(d);
          return false;
        }
        break;
      default:
        if (!flow(pc + 1, d2)) return false;
        break;
    }
  }
  return true;
}

int max_frame_size(const CodeBlock& b) {
  int f = b.frame_size;
  for (const CodeBlock& sub : b.subs) {
    const int s = max_frame_size(sub);
    if (s > f) f = s;
  }
  return f;
}

// --- literal rendering -------------------------------------------------------

std::string int_literal(std::int64_t v) {
  if (v == INT64_MIN) return "(-9223372036854775807LL - 1)";
  return std::to_string(v) + "LL";
}

/// Bit-exact double literal via hexfloat.
std::string real_literal(double v) {
  if (std::isnan(v)) return "__builtin_nan(\"\")";
  if (std::isinf(v)) return v < 0 ? "(-__builtin_inf())" : "__builtin_inf()";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// C string literal with 3-digit octal escapes for anything non-trivial
/// (octal, not hex: hex escapes are greedy and would swallow following
/// hex-digit characters).
std::string str_literal(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    const bool plain = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') ||
                       (c == ' ' || c == '_' || c == '.' || c == ',' ||
                        c == ':' || c == ';' || c == '!' || c == '+' ||
                        c == '-' || c == '*' || c == '/' || c == '=' ||
                        c == '(' || c == ')' || c == '[' || c == ']' ||
                        c == '<' || c == '>' || c == '{' || c == '}');
    if (plain) {
      out += ch;
    } else {
      char esc[8];
      std::snprintf(esc, sizeof esc, "\\%03o", c);
      out += esc;
    }
  }
  out += "\"";
  return out;
}

// --- function emitter --------------------------------------------------------

class FnEmitter {
public:
  explicit FnEmitter(std::string* err) : err_(err) {}

  bool emit(const CodeBlock& block, const std::string& fn_name,
            std::string* out) {
    decls_.clear();
    body_.clear();
    next_site_ = 0;
    const int frame = max_frame_size(block);
    for (int i = 0; i < frame; ++i) {
      // Built with += rather than operator+ to sidestep GCC 12's spurious
      // -Wrestrict on inlined literal-plus-rvalue string concatenation.
      std::string f = "f";
      f += std::to_string(i);
      decl("XjValue " + f + ";");
      stmt(f + " = xj_unset();");
    }
    if (!emit_block(block, "", "Lxj_done")) return false;
    *out += "static uint64_t " + fn_name +
            "(XjHost* h, const XjHostOps* o, XjValue self, const XjValue* p, "
            "uint64_t max_ops) {\n"
            "  (void)h; (void)o; (void)self; (void)p; (void)max_ops;\n"
            "  uint64_t ops = 0u;\n"
            "  XjValue xsel; xsel = xj_null();\n";
    *out += decls_;
    *out += body_;
    *out +=
        "Lxj_done: ;\n"
        "  return ops;\n"
        "Lxj_lim: ;\n"
        "  xj_raise(h, o, XJ_ERR_OP_LIMIT);\n"
        "}\n\n";
    return true;
  }

private:
  void decl(const std::string& s) { decls_ += "  " + s + "\n"; }
  void stmt(const std::string& s) { body_ += "  " + s + "\n"; }
  void label(const std::string& s) { body_ += s + ": ;\n"; }

  /// Emit one code block. `pfx` uniquifies labels and stack locals;
  /// `ret_label` is where kReturn lands (function epilogue for the
  /// top-level block, the predicate-result check for filter sub-blocks).
  bool emit_block(const CodeBlock& b, const std::string& pfx,
                  const std::string& ret_label) {
    BlockShape shape;
    if (!analyze(b, !pfx.empty(), &shape, err_)) return false;
    const std::size_t n = b.code.size();

    for (int i = 0; i < shape.max_depth; ++i) {
      decl("XjValue " + pfx + "s" + std::to_string(i) + ";");
    }
    auto S = [&](int d) { return pfx + "s" + std::to_string(d); };

    // Basic-block leaders: entry, jump targets, fall-throughs of branches.
    std::vector<char> leader(n, 0);
    if (n > 0) leader[0] = 1;
    for (std::size_t pc = 0; pc < n; ++pc) {
      const Instr& i = b.code[pc];
      if (i.op == Op::kJump || i.op == Op::kJumpIfFalse ||
          i.op == Op::kReturn) {
        if (pc + 1 < n) leader[pc + 1] = 1;
      }
      if (i.op == Op::kJump || i.op == Op::kJumpIfFalse) {
        leader[i.a] = 1;
      }
    }

    for (std::size_t pc = 0; pc < n; ++pc) {
      if (shape.depth[pc] < 0) continue;  // unreachable (e.g. after return)
      if (shape.is_target[pc]) label("L" + pfx + std::to_string(pc));
      if (leader[pc]) {
        // Per-block op accounting: every instruction of the block counts
        // exactly once (so totals match the VM on completion); the limit
        // check runs once per block, so a runaway loop still trips it —
        // at worst one basic block earlier than the VM's per-instruction
        // check would have (see docs/PERF.md).
        std::size_t k = 0;
        for (std::size_t q = pc; q < n && (q == pc || !leader[q]); ++q) {
          if (shape.depth[q] >= 0) ++k;
        }
        stmt("ops += " + std::to_string(k) +
             "u; if (ops > max_ops) goto Lxj_lim;");
      }
      if (!emit_instr(b, pfx, ret_label, pc, shape.depth[pc], S)) {
        return false;
      }
    }
    return true;
  }

  template <class SFn>
  bool emit_instr(const CodeBlock& b, const std::string& pfx,
                  const std::string& ret_label, std::size_t pc, int d,
                  SFn&& S) {
    const Instr& i = b.code[pc];
    const std::string a = std::to_string(i.a) + "u";
    switch (i.op) {
      case Op::kPushConst: {
        const xtuml::ScalarValue& c = b.constants[i.a];
        switch (c.index()) {
          case 0:
            stmt(S(d) + " = xj_b(" +
                 (std::get<bool>(c) ? std::string("1") : std::string("0")) +
                 ");");
            break;
          case 1:
            stmt(S(d) + " = xj_i(" + int_literal(std::get<std::int64_t>(c)) +
                 ");");
            break;
          case 2:
            stmt(S(d) + " = xj_r(" + real_literal(std::get<double>(c)) + ");");
            break;
          default: {
            const std::string& s = std::get<std::string>(c);
            stmt(S(d) + " = o->str_const(h, " + str_literal(s) + ", " +
                 std::to_string(s.size()) + "u);");
            break;
          }
        }
        break;
      }
      case Op::kPushNull:
        stmt(S(d) + " = xj_null();");
        break;
      case Op::kLoadLocal:
        stmt("if (f" + std::to_string(i.a) +
             ".tag == XJ_TAG_UNSET) xj_raise(h, o, XJ_ERR_UNSET_VAR);");
        stmt(S(d) + " = f" + std::to_string(i.a) + ";");
        break;
      case Op::kStoreLocal:
        stmt("f" + std::to_string(i.a) + " = " + S(d - 1) + ";");
        break;
      case Op::kLoadParam:
        stmt(S(d) + " = p[" + std::to_string(i.a) + "];");
        break;
      case Op::kLoadSelf:
        stmt(S(d) + " = self;");
        break;
      case Op::kLoadSelected:
        stmt(S(d) + " = xsel;");
        break;
      case Op::kPop:
        body_ += "  /* pop */\n";
        break;
      case Op::kGetAttr:
        stmt("xj_need_h(h, o, " + S(d - 1) + ");");
        stmt(S(d - 1) + " = o->get_attr(h, " + S(d - 1) + ", " + a + ");");
        break;
      case Op::kSetAttr:
        // VM conversion order: object first (top), then the value goes out.
        stmt("xj_need_h(h, o, " + S(d - 1) + ");");
        stmt("o->set_attr(h, " + S(d - 1) + ", " + a + ", " + S(d - 2) + ");");
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod: {
        static const char* const kFn[] = {"xj_add", "xj_sub", "xj_mul",
                                          "xj_div", "xj_mod"};
        const int idx =
            static_cast<int>(i.op) - static_cast<int>(Op::kAdd);
        stmt(std::string(kFn[idx]) + "(h, o, " + S(d - 2) + ", " + S(d - 1) +
             ");");
        break;
      }
      case Op::kEq:
        stmt(S(d - 2) + " = xj_b(xj_eq(h, o, " + S(d - 2) + ", " + S(d - 1) +
             "));");
        break;
      case Op::kNe:
        stmt(S(d - 2) + " = xj_b(!xj_eq(h, o, " + S(d - 2) + ", " + S(d - 1) +
             "));");
        break;
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        static const char* const kRel[] = {"< 0", "<= 0", "> 0", ">= 0"};
        const int idx = static_cast<int>(i.op) - static_cast<int>(Op::kLt);
        stmt(S(d - 2) + " = xj_b(xj_cmp(h, o, " + S(d - 2) + ", " + S(d - 1) +
             ") " + kRel[idx] + ");");
        break;
      }
      case Op::kNot:
        stmt(S(d - 1) + " = xj_b(!xj_as_bool(h, o, " + S(d - 1) + "));");
        break;
      case Op::kNeg:
        stmt("if (" + S(d - 1) + ".tag == XJ_TAG_INT) { " + S(d - 1) +
             ".u.i = -" + S(d - 1) + ".u.i; } else { double t = "
             "xj_as_real(h, o, " + S(d - 1) + "); " + S(d - 1) +
             ".tag = XJ_TAG_REAL; " + S(d - 1) + ".u.d = -t; }");
        break;
      case Op::kCard:
        stmt("if (" + S(d - 1) + ".tag == XJ_TAG_SET) { " + S(d - 1) +
             " = xj_i(o->set_size(h, " + S(d - 1) + ")); } else { "
             "xj_need_h(h, o, " + S(d - 1) + "); " + S(d - 1) + " = xj_i(" +
             S(d - 1) + ".u.h.cls == XJ_CLS_NULL ? 0 : 1); }");
        break;
      case Op::kIsEmpty:
        stmt("if (" + S(d - 1) + ".tag == XJ_TAG_SET) { " + S(d - 1) +
             " = xj_b(o->set_size(h, " + S(d - 1) + ") == 0); } else { "
             "xj_need_h(h, o, " + S(d - 1) + "); " + S(d - 1) + " = xj_b(" +
             S(d - 1) + ".u.h.cls == XJ_CLS_NULL || !o->handle_alive(h, " +
             S(d - 1) + ")); }");
        break;
      case Op::kIndexSet: {
        const std::string u = site();
        decl("int64_t gi" + u + ";");
        stmt("gi" + u + " = xj_as_int(h, o, " + S(d - 1) + ");");
        stmt("xj_need_set(h, o, " + S(d - 2) + ");");
        stmt(S(d - 2) + " = o->set_at(h, " + S(d - 2) + ", gi" + u + ");");
        break;
      }
      case Op::kWiden:
        stmt("if (" + S(d - 1) + ".tag == XJ_TAG_INT) { double t = (double)" +
             S(d - 1) + ".u.i; " + S(d - 1) + ".tag = XJ_TAG_REAL; " +
             S(d - 1) + ".u.d = t; }");
        break;
      case Op::kJump:
        stmt("goto L" + pfx + std::to_string(i.a) + ";");
        break;
      case Op::kJumpIfFalse:
        stmt("if (!xj_as_bool(h, o, " + S(d - 1) + ")) goto L" + pfx +
             std::to_string(i.a) + ";");
        break;
      case Op::kReturn:
        stmt("goto " + ret_label + ";");
        break;
      case Op::kCreate:
        stmt(S(d) + " = o->create_inst(h, " + a + ");");
        break;
      case Op::kDelete:
        stmt("xj_need_h(h, o, " + S(d - 1) + ");");
        stmt("o->delete_inst(h, " + S(d - 1) + ");");
        break;
      case Op::kRelate:
      case Op::kUnrelate:
        // VM conversion order: the b-side handle (top of stack) first.
        stmt("xj_need_h(h, o, " + S(d - 1) + ");");
        stmt("xj_need_h(h, o, " + S(d - 2) + ");");
        stmt(std::string("o->") +
             (i.op == Op::kRelate ? "relate" : "unrelate") + "(h, " +
             S(d - 2) + ", " + S(d - 1) + ", " + a + ");");
        break;
      case Op::kSelectAll:
        stmt(S(d) + " = o->select_all(h, " + a + ");");
        break;
      case Op::kRelated:
        stmt("xj_need_h(h, o, " + S(d - 1) + ");");
        stmt(S(d - 1) + " = o->related(h, " + S(d - 1) + ", " + a + ");");
        break;
      case Op::kFilter: {
        const std::string u = site();
        const std::string sub_pfx = pfx + "f" + u + "_";
        decl("XjValue fin" + u + "; XjValue fout" + u + "; XjValue fsv" + u +
             ";");
        decl("int64_t fn" + u + "; int64_t fi" + u + ";");
        stmt("xj_need_set(h, o, " + S(d - 1) + ");");
        stmt("fin" + u + " = " + S(d - 1) + ";");
        stmt("fout" + u + " = o->set_new(h);");
        stmt("fsv" + u + " = xsel;");
        stmt("fn" + u + " = o->set_size(h, fin" + u + ");");
        stmt("fi" + u + " = 0;");
        label("Lfh" + u);
        stmt("if (fi" + u + " >= fn" + u + ") goto Lfe" + u + ";");
        stmt("xsel = o->set_at(h, fin" + u + ", fi" + u + ");");
        if (!emit_block(b.subs[i.a], sub_pfx, "Lfr" + u)) return false;
        label("Lfr" + u);
        stmt("if (xj_as_bool(h, o, " + sub_pfx + "s0)) { o->set_append(h, "
             "fout" + u + ", xsel);" +
             (i.b != 0 ? " goto Lfe" + u + ";" : "") + " }");
        stmt("fi" + u + " += 1; goto Lfh" + u + ";");
        label("Lfe" + u);
        stmt("xsel = fsv" + u + ";");
        stmt(S(d - 1) + " = fout" + u + ";");
        break;
      }
      case Op::kSetToRef:
        stmt("xj_need_set(h, o, " + S(d - 1) + ");");
        stmt(S(d - 1) + " = o->set_first(h, " + S(d - 1) + ");");
        break;
      case Op::kGenerate: {
        const std::string u = site();
        const int argc = static_cast<int>(i.b >> 1);
        const int has_delay = static_cast<int>(i.b & 1u);
        const int t_idx = d - 1 - has_delay;
        const int arg_base = t_idx - argc;
        decl("int64_t gd" + u + ";");
        if (argc > 0) {
          decl("XjValue ga" + u + "[" + std::to_string(argc) + "];");
        }
        stmt("gd" + u + " = 0;");
        if (has_delay != 0) {
          stmt("gd" + u + " = xj_as_int(h, o, " + S(d - 1) + ");");
          stmt("if (gd" + u + " < 0) xj_raise(h, o, XJ_ERR_NEG_DELAY);");
        }
        stmt("xj_need_h(h, o, " + S(t_idx) + ");");
        stmt("if (" + S(t_idx) +
             ".u.h.cls == XJ_CLS_NULL) xj_raise(h, o, XJ_ERR_GEN_NULL);");
        for (int k = 0; k < argc; ++k) {
          stmt("ga" + u + "[" + std::to_string(k) + "] = " + S(arg_base + k) +
               ";");
        }
        stmt("o->emit_ev(h, " + S(t_idx) + ", " + a + ", " +
             (argc > 0 ? "ga" + u : std::string("(const XjValue*)0")) + ", " +
             std::to_string(argc) + "u, gd" + u + ");");
        break;
      }
      case Op::kLog: {
        const std::string u = site();
        const int argc = static_cast<int>(i.a);
        if (argc > 0) {
          decl("XjValue gl" + u + "[" + std::to_string(argc) + "];");
          for (int k = 0; k < argc; ++k) {
            stmt("gl" + u + "[" + std::to_string(k) + "] = " +
                 S(d - argc + k) + ";");
          }
        }
        stmt("o->log_vals(h, " +
             (argc > 0 ? "gl" + u : std::string("(const XjValue*)0")) + ", " +
             std::to_string(argc) + "u);");
        break;
      }
      case Op::kMemRead:
        stmt(S(d - 1) + " = xj_i(o->mem_read(h, xj_as_int(h, o, " + S(d - 1) +
             ")));");
        break;
      case Op::kMemWrite: {
        // VM conversion order: value (top of stack) first, then address.
        const std::string u = site();
        decl("int64_t mv" + u + "; int64_t ma" + u + ";");
        stmt("mv" + u + " = xj_as_int(h, o, " + S(d - 1) + ");");
        stmt("ma" + u + " = xj_as_int(h, o, " + S(d - 2) + ");");
        stmt("o->mem_write(h, ma" + u + ", mv" + u + ");");
        break;
      }
    }
    return true;
  }

  std::string site() { return std::to_string(next_site_++); }

  std::string decls_;
  std::string body_;
  int next_site_ = 0;
  std::string* err_;
};

/// Inline helpers prepended to every generated translation unit. Each
/// mirrors one VM fast path bit for bit, including the order conversions
/// happen in (and therefore which operand's error fires first).
const char* const kPrelude = R"XJP(
namespace {

static inline XjValue xj_unset() {
  XjValue v; v.tag = XJ_TAG_UNSET; v.aux = 0u; v.u.i = 0; return v;
}
static inline XjValue xj_b(int x) {
  XjValue v; v.tag = XJ_TAG_BOOL; v.aux = 0u; v.u.i = x ? 1 : 0; return v;
}
static inline XjValue xj_i(int64_t x) {
  XjValue v; v.tag = XJ_TAG_INT; v.aux = 0u; v.u.i = x; return v;
}
static inline XjValue xj_r(double x) {
  XjValue v; v.tag = XJ_TAG_REAL; v.aux = 0u; v.u.d = x; return v;
}
static inline XjValue xj_null() {
  XjValue v; v.tag = XJ_TAG_HANDLE; v.aux = 0u;
  v.u.h.cls = XJ_CLS_NULL; v.u.h.idx = 0u; return v;
}

#if defined(__GNUC__)
#define XJ_UNREACHABLE() __builtin_trap()
#else
#define XJ_UNREACHABLE() for (;;) {}
#endif

[[noreturn]] static void xj_raise(XjHost* h, const XjHostOps* o, uint32_t e) {
  o->fail(h, e);
  XJ_UNREACHABLE();
}
[[noreturn]] static void xj_conv(XjHost* h, const XjHostOps* o, uint32_t c,
                                 XjValue v) {
  o->fail_conv(h, c, v);
  XJ_UNREACHABLE();
}

static inline int xj_as_bool(XjHost* h, const XjHostOps* o, XjValue v) {
  if (v.tag == XJ_TAG_BOOL) return (int)v.u.i;
  xj_conv(h, o, XJ_CONV_BOOL, v);
}
static inline int64_t xj_as_int(XjHost* h, const XjHostOps* o, XjValue v) {
  if (v.tag == XJ_TAG_INT) return v.u.i;
  xj_conv(h, o, XJ_CONV_INT, v);
}
static inline double xj_as_real(XjHost* h, const XjHostOps* o, XjValue v) {
  if (v.tag == XJ_TAG_REAL) return v.u.d;
  if (v.tag == XJ_TAG_INT) return (double)v.u.i;
  xj_conv(h, o, XJ_CONV_REAL, v);
}
static inline void xj_need_h(XjHost* h, const XjHostOps* o, XjValue v) {
  if (v.tag != XJ_TAG_HANDLE) xj_conv(h, o, XJ_CONV_HANDLE, v);
}
static inline void xj_need_set(XjHost* h, const XjHostOps* o, XjValue v) {
  if (v.tag != XJ_TAG_SET) xj_conv(h, o, XJ_CONV_SET, v);
}

static inline void xj_add(XjHost* h, const XjHostOps* o, XjValue& l,
                          XjValue r) {
  if (l.tag == XJ_TAG_INT && r.tag == XJ_TAG_INT) { l.u.i += r.u.i; return; }
  if (l.tag == XJ_TAG_STR) { l = o->str_concat(h, l, r); return; }
  double a = xj_as_real(h, o, l);
  double b = xj_as_real(h, o, r);
  l.tag = XJ_TAG_REAL; l.aux = 0u; l.u.d = a + b;
}
static inline void xj_sub(XjHost* h, const XjHostOps* o, XjValue& l,
                          XjValue r) {
  if (l.tag == XJ_TAG_INT && r.tag == XJ_TAG_INT) { l.u.i -= r.u.i; return; }
  double a = xj_as_real(h, o, l);
  double b = xj_as_real(h, o, r);
  l.tag = XJ_TAG_REAL; l.aux = 0u; l.u.d = a - b;
}
static inline void xj_mul(XjHost* h, const XjHostOps* o, XjValue& l,
                          XjValue r) {
  if (l.tag == XJ_TAG_INT && r.tag == XJ_TAG_INT) { l.u.i *= r.u.i; return; }
  double a = xj_as_real(h, o, l);
  double b = xj_as_real(h, o, r);
  l.tag = XJ_TAG_REAL; l.aux = 0u; l.u.d = a * b;
}
static inline void xj_div(XjHost* h, const XjHostOps* o, XjValue& l,
                          XjValue r) {
  if (l.tag == XJ_TAG_INT && r.tag == XJ_TAG_INT) {
    if (r.u.i == 0) xj_raise(h, o, XJ_ERR_DIV0);
    l.u.i /= r.u.i;
    return;
  }
  double a = xj_as_real(h, o, l);
  double b = xj_as_real(h, o, r);
  /* the real-division path deliberately has no zero check, like the VM */
  l.tag = XJ_TAG_REAL; l.aux = 0u; l.u.d = a / b;
}
static inline void xj_mod(XjHost* h, const XjHostOps* o, XjValue& l,
                          XjValue r) {
  if (l.tag == XJ_TAG_INT && r.tag == XJ_TAG_INT) {
    if (r.u.i == 0) xj_raise(h, o, XJ_ERR_MOD0);
    l.u.i %= r.u.i;
    return;
  }
  int64_t a = xj_as_int(h, o, l);
  int64_t b = xj_as_int(h, o, r);
  if (b == 0) xj_raise(h, o, XJ_ERR_MOD0);
  l.tag = XJ_TAG_INT; l.aux = 0u; l.u.i = a % b;
}

static inline int xj_eq(XjHost* h, const XjHostOps* o, XjValue l, XjValue r) {
  const int ln = l.tag == XJ_TAG_INT || l.tag == XJ_TAG_REAL;
  const int rn = r.tag == XJ_TAG_INT || r.tag == XJ_TAG_REAL;
  if (ln && rn) {
    /* numeric cross-type equality through double, like value_equals() */
    double a = l.tag == XJ_TAG_INT ? (double)l.u.i : l.u.d;
    double b = r.tag == XJ_TAG_INT ? (double)r.u.i : r.u.d;
    return a == b;
  }
  if (l.tag != r.tag) return 0;
  switch (l.tag) {
    case XJ_TAG_UNSET: return 1;
    case XJ_TAG_BOOL: return l.u.i == r.u.i;
    case XJ_TAG_HANDLE:
      return l.u.h.cls == r.u.h.cls && l.u.h.idx == r.u.h.idx &&
             l.aux == r.aux;
    default: return o->values_equal(h, l, r);
  }
}
static inline int xj_cmp(XjHost* h, const XjHostOps* o, XjValue l, XjValue r) {
  if (l.tag == XJ_TAG_STR) return o->str_compare(h, l, r);
  /* ordering goes through as_real exactly like both interpreters */
  double a = xj_as_real(h, o, l);
  double b = xj_as_real(h, o, r);
  return a < b ? -1 : (a > b ? 1 : 0);
}

}  // namespace
)XJP";

}  // namespace

bool emit_action(const oal::CodeBlock& block, const std::string& fn_name,
                 std::string* out, std::string* err) {
  std::string text;
  FnEmitter em(err);
  if (!em.emit(block, fn_name, &text)) return false;
  *out += text;
  return true;
}

std::string emit_module_source(const oal::CompiledDomain& dom,
                               const std::string& digest, int* skipped) {
  std::string src;
  src += "/* generated by xtsoc::jit for domain '" + dom.domain().name() +
         "' — do not edit */\n";
  src += kAbiHeaderText;
  src += kPrelude;
  src += "namespace {\n\n";
  int skip = 0;
  struct Entry {
    std::uint32_t cls;
    std::uint32_t state;
    std::string fn;
  };
  std::vector<Entry> entries;
  for (const oal::CompiledClass& cc : dom.classes()) {
    for (std::size_t s = 0; s < cc.state_actions.size(); ++s) {
      const oal::CodeBlock bc = oal::compile_bytecode(cc.state_actions[s]);
      const std::string fn = "xj_act_" + std::to_string(cc.id.value()) + "_" +
                             std::to_string(s);
      std::string err;
      if (emit_action(bc, fn, &src, &err)) {
        entries.push_back({cc.id.value(), static_cast<std::uint32_t>(s), fn});
      } else {
        src += "/* " + fn + " skipped: " + err + " */\n\n";
        ++skip;
      }
    }
  }
  src += "static const XjEntry kEntries[] = {\n";
  for (const Entry& e : entries) {
    src += "  {" + std::to_string(e.cls) + "u, " + std::to_string(e.state) +
           "u, &" + e.fn + "},\n";
  }
  // A dummy terminator keeps the array non-empty for action-less domains.
  src += "  {0xffffffffu, 0xffffffffu, (XjActionFn)0},\n";
  src += "};\n\n";
  src += "static const XjModule kModule = {\n"
         "  XTSOC_JIT_ABI_VERSION,\n"
         "  " + std::to_string(entries.size()) + "u,\n"
         "  kEntries,\n"
         "  \"" + digest + "\",\n"
         "};\n\n"
         "}  // namespace\n\n"
         "extern \"C\" const XjModule* xtsoc_jit_module(void) {\n"
         "  return &kModule;\n"
         "}\n";
  if (skipped != nullptr) *skipped = skip;
  return src;
}

}  // namespace xtsoc::jit
