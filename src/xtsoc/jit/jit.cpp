#include "xtsoc/jit/jit.hpp"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "xtsoc/jit/emit.hpp"

namespace xtsoc::jit {

namespace fs = std::filesystem;

namespace {

/// Token baked into the generated source where the digest will go; the
/// digest is computed over the placeholder form (deterministic), then
/// substituted, so the hash never depends on itself.
constexpr const char* kDigestPlaceholder = "XJ-DIGEST-PLACEHOLDER-4af1";

constexpr const char* kBaseFlags = "-O2 -fPIC -shared -std=c++17 -w";

std::string env_or_empty(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string();
}

/// Read up to `limit` bytes of a file (for compiler error excerpts).
std::string read_head(const fs::path& p, std::size_t limit) {
  std::ifstream in(p);
  if (!in) return {};
  std::string text(limit, '\0');
  in.read(text.data(), static_cast<std::streamsize>(limit));
  text.resize(static_cast<std::size_t>(in.gcount()));
  // Compress newlines so the reason stays a one-liner in reports.
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

bool shell_safe(const std::string& path) {
  return path.find('\'') == std::string::npos;
}

std::string quoted(const std::string& path) { return "'" + path + "'"; }

}  // namespace

std::string content_digest(const std::string& text) {
  // FNV-1a, the same construction InterfaceSpec::digest uses.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

std::string default_cache_dir() {
  const std::string xdg = env_or_empty("XDG_CACHE_HOME");
  if (!xdg.empty()) return xdg + "/xtsoc/jit";
  const std::string home = env_or_empty("HOME");
  if (!home.empty()) return home + "/.cache/xtsoc/jit";
  std::error_code ec;
  const fs::path tmp = fs::temp_directory_path(ec);
  return (ec ? fs::path("/tmp") : tmp).string() + "/xtsoc-jit";
}

std::string resolve_compiler(const JitOptions& opts) {
  if (!opts.compiler.empty()) return opts.compiler;
  const std::string jit_cxx = env_or_empty("XTSOC_JIT_CXX");
  if (!jit_cxx.empty()) return jit_cxx;
  const std::string cxx = env_or_empty("CXX");
  if (!cxx.empty()) return cxx;
  return "c++";
}

JitResult compile(const oal::CompiledDomain& dom, const JitOptions& opts) {
  JitResult res;
  try {
    const std::string compiler = resolve_compiler(opts);
    std::string flags = kBaseFlags;
    if (!opts.extra_flags.empty()) flags += " " + opts.extra_flags;

    // Generate with the placeholder digest, hash, then substitute.
    std::string src =
        emit_module_source(dom, kDigestPlaceholder, &res.skipped_actions);
    res.digest =
        content_digest(src + "\n|" + compiler + "|" + flags + "|v" +
                       std::to_string(XTSOC_JIT_ABI_VERSION));
    const std::size_t at = src.rfind(kDigestPlaceholder);
    if (at != std::string::npos) {
      src.replace(at, std::string(kDigestPlaceholder).size(), res.digest);
    }

    const std::string dir =
        opts.cache_dir.empty() ? default_cache_dir() : opts.cache_dir;
    if (!shell_safe(dir)) {
      res.reason = "cache directory path contains a quote: " + dir;
      return res;
    }
    std::error_code ec;
    fs::create_directories(dir, ec);
    // create_directories is fine with an existing dir; writability is
    // probed by the source write below.

    const fs::path so_path = fs::path(dir) / ("xtsoc-" + res.digest + ".so");
    res.so_path = so_path.string();

    if (fs::exists(so_path, ec) && !ec) {
      std::string err;
      res.module = Module::load(res.so_path, res.digest, &err);
      if (res.module != nullptr) {
        res.cache_hit = true;
      } else {
        // A digest-keyed file that fails validation means the cache is
        // corrupt or stale — report and fall back, never recompile over it.
        res.reason = "cached object rejected: " + err;
      }
      return res;
    }

    const fs::path src_path = fs::path(dir) / ("xtsoc-" + res.digest + ".cpp");
    {
      std::ofstream out(src_path, std::ios::trunc);
      out << src;
      if (!out) {
        res.reason = "cache directory not writable: " + dir;
        std::error_code rm;
        fs::remove(src_path, rm);
        return res;
      }
    }

    const std::string tag = std::to_string(
        static_cast<unsigned long long>(::getpid()));
    const fs::path tmp_so =
        fs::path(dir) / ("xtsoc-" + res.digest + "." + tag + ".so.tmp");
    const fs::path log_path =
        fs::path(dir) / ("xtsoc-" + res.digest + "." + tag + ".log");

    const std::string cmd = compiler + " " + flags + " -o " +
                            quoted(tmp_so.string()) + " " +
                            quoted(src_path.string()) + " > " +
                            quoted(log_path.string()) + " 2>&1";
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::string excerpt = read_head(log_path, 300);
      res.reason = "compile failed (" + compiler + ", status " +
                   std::to_string(rc) + ")" +
                   (excerpt.empty() ? "" : ": " + excerpt);
      std::error_code rm;
      fs::remove(tmp_so, rm);
      fs::remove(log_path, rm);
      return res;
    }
    std::error_code rm;
    fs::remove(log_path, rm);

    fs::rename(tmp_so, so_path, ec);
    if (ec) {
      res.reason = "cache install failed: " + ec.message();
      fs::remove(tmp_so, rm);
      return res;
    }

    std::string err;
    res.module = Module::load(res.so_path, res.digest, &err);
    if (res.module == nullptr) {
      res.reason = "freshly built object rejected: " + err;
    }
    return res;
  } catch (const std::exception& e) {
    res.module = nullptr;
    res.reason = std::string("jit unavailable: ") + e.what();
    return res;
  }
}

}  // namespace xtsoc::jit
