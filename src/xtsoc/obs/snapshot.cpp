#include "xtsoc/obs/snapshot.hpp"

namespace xtsoc::obs {

void Snapshot::write(std::ostream& os) const { os << to_json(2) << '\n'; }

}  // namespace xtsoc::obs
