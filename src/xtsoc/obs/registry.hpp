// obs::Registry — the one observability surface of the toolchain.
//
// A Registry owns three kinds of instrument:
//
//   * counters  — named monotonic uint64s (atomic adds; safe from the
//     parallel phase-A workers and the kernel's worker pool);
//   * spans     — wall-clock duration events on named tracks, recorded via
//     the RAII ScopedSpan / OBS_SPAN macro, exported as Chrome trace-event
//     JSON (chrome://tracing, Perfetto) for timeline inspection;
//   * snapshot sections — named adapters that render a subsystem's stats
//     struct (SimStats, BusStats, FabricStats, ...) as a JsonValue when a
//     Snapshot is taken, so every stats report serializes through one path.
//
// Cost model (this is instrumentation for a determinism-obsessed
// simulator, so the contract is strict):
//
//   * registry absent (the default — every config's `obs` pointer is
//     null): instrumented code performs one null-pointer test per probe
//     and touches nothing else. Simulation output is byte-identical to an
//     uninstrumented build; bench_cosim gates the residue at <= 2%.
//   * registry attached, tracing off: counters count (atomic adds), spans
//     check one relaxed atomic and skip.
//   * tracing on: spans take a steady_clock sample on entry/exit and
//     append to a bounded in-memory buffer (drops are counted, never
//     blocking). Timestamps are wall-clock, so the timeline shows where
//     real time went — the tuning view; logical cycles ride along as an
//     event argument.
//
// Instrumentation NEVER changes simulation behaviour: probes only read
// simulation state. Traces, VCD, and stats stay byte-identical whether a
// registry is attached or not (tested in obs_test.cpp).
//
// Compile-time kill switch: building with -DXTSOC_OBS_OFF turns the
// OBS_* macros into nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "xtsoc/obs/json.hpp"
#include "xtsoc/obs/snapshot.hpp"

namespace xtsoc::snap {
class Writer;
class Reader;
}  // namespace xtsoc::snap

namespace xtsoc::obs {

/// A track is one horizontal lane of the exported timeline ("kernel",
/// "executor/hw0", "noc", ...). Value 0 is reserved as "no track".
struct TrackId {
  std::uint32_t value = 0;
  bool is_valid() const { return value != 0; }
};

/// One named monotonic counter. Addresses are stable for the lifetime of
/// the owning Registry, so instrumented code holds a `Counter*` and pays
/// exactly one null test + one relaxed atomic add per increment.
class Counter {
public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void add(std::uint64_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Overwrite the count. Checkpoint restore only — instrumented code must
  /// stick to add() so concurrent increments never lose updates.
  void set(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

private:
  std::string name_;
  std::atomic<std::uint64_t> v_{0};
};

class Registry {
public:
  /// No cycle argument on a trace event.
  static constexpr std::uint64_t kNoCycle = ~std::uint64_t{0};

  Registry();

  // --- identity ---------------------------------------------------------------

  /// Find-or-create the track named `name`. Call during setup (construction
  /// of the instrumented object), not from worker threads.
  TrackId track(std::string_view name);
  const std::string& track_name(TrackId t) const;
  std::size_t track_count() const;

  /// Find-or-create a counter. The returned pointer stays valid for the
  /// registry's lifetime. Setup-time only, like track().
  Counter* counter(std::string_view name);
  /// All counters as (name, value), sorted by name — the stable order every
  /// report uses.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;

  // --- tracing ----------------------------------------------------------------

  void enable_tracing(bool on = true) {
    tracing_.store(on, std::memory_order_relaxed);
  }
  bool tracing() const { return tracing_.load(std::memory_order_relaxed); }

  /// Nanoseconds since this registry was constructed (steady clock).
  std::uint64_t now_ns() const;

  /// Record a completed span [start_ns, end_ns) on `track`. `cycle` rides
  /// along as an event argument when not kNoCycle. Thread-safe.
  void record_span(TrackId track, std::string name, std::uint64_t start_ns,
                   std::uint64_t end_ns, std::uint64_t cycle = kNoCycle);
  /// Record an instant event. Thread-safe.
  void record_instant(TrackId track, std::string name, std::uint64_t ts_ns,
                      std::uint64_t cycle = kNoCycle);
  /// Record a counter-series sample (a Chrome "C" event: a stepped graph
  /// named `series` on `track`). Thread-safe.
  void record_value(TrackId track, std::string series, std::uint64_t ts_ns,
                    double value);

  std::size_t event_count() const;
  std::uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Cap on buffered trace events (default 1 << 20). Events past the cap
  /// are counted in dropped_events() and discarded.
  void set_event_capacity(std::size_t cap);

  // --- snapshot sections -------------------------------------------------------

  /// Register a named snapshot section; `fn` runs at snapshot() time.
  /// Re-registering a name replaces the previous adapter.
  void add_section(std::string name, std::function<JsonValue()> fn);
  void remove_section(std::string_view name);

  /// Assemble a Snapshot: every registered section (registration order),
  /// then a "counters" object (name-sorted).
  Snapshot snapshot() const;

  // --- checkpointing -----------------------------------------------------------

  /// Serialize every counter as (name, value), name-sorted. Tracks, trace
  /// events and sections are observation-side state and not checkpointed.
  void save_counters(snap::Writer& w) const;
  /// Restore counter values; names not present yet are created, so the
  /// restored report shows the same counter set as the uninterrupted run.
  void load_counters(snap::Reader& r);

  // --- export ------------------------------------------------------------------

  /// The collected trace as Chrome trace-event JSON: one "thread" per
  /// track (metadata is emitted for every track, even eventless ones),
  /// spans as "X" events, instants as "i", counter series as "C".
  /// Timestamps are microseconds.
  std::string chrome_trace() const;
  void write_chrome_trace(std::ostream& os) const;

private:
  struct Event {
    TrackId track;
    char phase;  // 'X', 'i', 'C'
    std::string name;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint64_t cycle = kNoCycle;
    double value = 0.0;  // 'C' only
  };
  struct Section {
    std::string name;
    std::function<JsonValue()> fn;
  };

  void push_event(Event e);

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> tracing_{false};
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex mutex_;
  std::vector<std::string> tracks_;                 // [TrackId - 1]
  std::vector<std::unique_ptr<Counter>> counters_;  // stable addresses
  std::vector<Event> events_;
  std::size_t event_capacity_ = std::size_t{1} << 20;
  std::vector<Section> sections_;
};

/// RAII span: times the enclosing scope onto a track. Inactive (and
/// cost-free beyond one test) when `reg` is null or tracing is off.
class ScopedSpan {
public:
  ScopedSpan() = default;
  ScopedSpan(Registry* reg, TrackId track, const char* name,
             std::uint64_t cycle = Registry::kNoCycle) {
    if (reg != nullptr && reg->tracing()) begin(reg, track, name, cycle);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { finish(); }

  /// Arm an inactive span (for labels that are costly to build: construct
  /// the label only after checking reg->tracing()).
  void begin(Registry* reg, TrackId track, std::string name,
             std::uint64_t cycle = Registry::kNoCycle) {
    reg_ = reg;
    track_ = track;
    name_ = std::move(name);
    cycle_ = cycle;
    start_ = reg->now_ns();
  }
  bool active() const { return reg_ != nullptr; }

  void finish() {
    if (reg_ == nullptr) return;
    reg_->record_span(track_, std::move(name_), start_, reg_->now_ns(), cycle_);
    reg_ = nullptr;
  }

private:
  Registry* reg_ = nullptr;
  TrackId track_;
  std::string name_;
  std::uint64_t start_ = 0;
  std::uint64_t cycle_ = Registry::kNoCycle;
};

// The probe macros. `reg` is an obs::Registry* (may be null), `counter` an
// obs::Counter* (may be null). With -DXTSOC_OBS_OFF they expand to nothing.
#if !defined(XTSOC_OBS_OFF)
#define XTSOC_OBS_CONCAT2(a, b) a##b
#define XTSOC_OBS_CONCAT(a, b) XTSOC_OBS_CONCAT2(a, b)
/// Time the enclosing scope as a span named `name` on `track`.
#define OBS_SPAN(reg, track, name) \
  ::xtsoc::obs::ScopedSpan XTSOC_OBS_CONCAT(obs_span_, __COUNTER__)(  \
      (reg), (track), (name))
/// Same, with a logical-cycle argument attached to the event.
#define OBS_SPAN_AT(reg, track, name, cycle) \
  ::xtsoc::obs::ScopedSpan XTSOC_OBS_CONCAT(obs_span_, __COUNTER__)(  \
      (reg), (track), (name), (cycle))
/// Increment a counter by 1 / by n.
#define OBS_COUNT(counter)                    \
  do {                                        \
    if ((counter) != nullptr) (counter)->add(); \
  } while (0)
#define OBS_COUNT_N(counter, n)                  \
  do {                                           \
    if ((counter) != nullptr) (counter)->add(n); \
  } while (0)
#else
#define OBS_SPAN(reg, track, name) \
  do {                             \
  } while (0)
#define OBS_SPAN_AT(reg, track, name, cycle) \
  do {                                       \
  } while (0)
#define OBS_COUNT(counter) \
  do {                     \
  } while (0)
#define OBS_COUNT_N(counter, n) \
  do {                          \
  } while (0)
#endif

}  // namespace xtsoc::obs
