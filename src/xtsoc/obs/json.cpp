#include "xtsoc/obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace xtsoc::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, end);
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_.push_back('\n');
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_elems) out_.push_back(',');
    stack_.back().has_elems = true;
    newline_indent();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back({'o'});
  out_.push_back('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  bool had = !stack_.empty() && stack_.back().has_elems;
  stack_.pop_back();
  if (had) newline_indent();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back({'a'});
  out_.push_back('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  bool had = !stack_.empty() && stack_.back().has_elems;
  stack_.pop_back();
  if (had) newline_indent();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!stack_.empty()) {
    if (stack_.back().has_elems) out_.push_back(',');
    stack_.back().has_elems = true;
    newline_indent();
  }
  out_.push_back('"');
  out_ += json_escape(k);
  out_ += indent_ > 0 ? "\": " : "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_.push_back('"');
  out_ += json_escape(v);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

// --- JsonValue ---------------------------------------------------------------

JsonValue& JsonValue::operator[](std::string_view key) {
  if (is_null()) v_ = Object{};
  Object& o = std::get<Object>(v_);
  for (Member& m : o) {
    if (m.first == key) return m.second;
  }
  o.emplace_back(std::string(key), JsonValue());
  return o.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const Object* o = std::get_if<Object>(&v_);
  if (o == nullptr) return nullptr;
  for (const Member& m : *o) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("JsonValue: no member '" + std::string(key) + "'");
  }
  return *v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (is_null()) v_ = Array{};
  Array& a = std::get<Array>(v_);
  a.push_back(std::move(v));
  return a.back();
}

std::size_t JsonValue::size() const {
  if (const Array* a = std::get_if<Array>(&v_)) return a->size();
  if (const Object* o = std::get_if<Object>(&v_)) return o->size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  return std::get<Array>(v_).at(i);
}

bool JsonValue::as_bool() const { return std::get<bool>(v_); }

std::int64_t JsonValue::as_int() const {
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    return static_cast<std::int64_t>(*u);
  }
  return std::get<std::int64_t>(v_);
}

std::uint64_t JsonValue::as_uint() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<std::uint64_t>(*i);
  }
  return std::get<std::uint64_t>(v_);
}

double JsonValue::as_double() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    return static_cast<double>(*u);
  }
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  return std::get<std::string>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  return std::get<Object>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  return std::get<Array>(v_);
}

void JsonValue::write(JsonWriter& w) const {
  if (std::holds_alternative<std::nullptr_t>(v_)) {
    w.null();
  } else if (const bool* b = std::get_if<bool>(&v_)) {
    w.value(*b);
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    w.value(*i);
  } else if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    w.value(*u);
  } else if (const double* d = std::get_if<double>(&v_)) {
    w.value(*d);
  } else if (const std::string* s = std::get_if<std::string>(&v_)) {
    w.value(*s);
  } else if (const Array* a = std::get_if<Array>(&v_)) {
    w.begin_array();
    for (const JsonValue& v : *a) v.write(w);
    w.end_array();
  } else {
    w.begin_object();
    for (const Member& m : std::get<Object>(v_)) {
      w.key(m.first);
      m.second.write(w);
    }
    w.end_object();
  }
}

std::string JsonValue::dump(int indent) const {
  JsonWriter w(indent);
  write(w);
  return w.take();
}

}  // namespace xtsoc::obs
