#include "xtsoc/obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace xtsoc::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, end);
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_.push_back('\n');
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_elems) out_.push_back(',');
    stack_.back().has_elems = true;
    newline_indent();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back({'o'});
  out_.push_back('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  bool had = !stack_.empty() && stack_.back().has_elems;
  stack_.pop_back();
  if (had) newline_indent();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back({'a'});
  out_.push_back('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  bool had = !stack_.empty() && stack_.back().has_elems;
  stack_.pop_back();
  if (had) newline_indent();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!stack_.empty()) {
    if (stack_.back().has_elems) out_.push_back(',');
    stack_.back().has_elems = true;
    newline_indent();
  }
  out_.push_back('"');
  out_ += json_escape(k);
  out_ += indent_ > 0 ? "\": " : "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_.push_back('"');
  out_ += json_escape(v);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

// --- JsonValue ---------------------------------------------------------------

JsonValue& JsonValue::operator[](std::string_view key) {
  if (is_null()) v_ = Object{};
  Object& o = std::get<Object>(v_);
  for (Member& m : o) {
    if (m.first == key) return m.second;
  }
  o.emplace_back(std::string(key), JsonValue());
  return o.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const Object* o = std::get_if<Object>(&v_);
  if (o == nullptr) return nullptr;
  for (const Member& m : *o) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("JsonValue: no member '" + std::string(key) + "'");
  }
  return *v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (is_null()) v_ = Array{};
  Array& a = std::get<Array>(v_);
  a.push_back(std::move(v));
  return a.back();
}

std::size_t JsonValue::size() const {
  if (const Array* a = std::get_if<Array>(&v_)) return a->size();
  if (const Object* o = std::get_if<Object>(&v_)) return o->size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  return std::get<Array>(v_).at(i);
}

bool JsonValue::as_bool() const { return std::get<bool>(v_); }

std::int64_t JsonValue::as_int() const {
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    return static_cast<std::int64_t>(*u);
  }
  return std::get<std::int64_t>(v_);
}

std::uint64_t JsonValue::as_uint() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<std::uint64_t>(*i);
  }
  return std::get<std::uint64_t>(v_);
}

double JsonValue::as_double() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    return static_cast<double>(*u);
  }
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  return std::get<std::string>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  return std::get<Object>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  return std::get<Array>(v_);
}

void JsonValue::write(JsonWriter& w) const {
  if (std::holds_alternative<std::nullptr_t>(v_)) {
    w.null();
  } else if (const bool* b = std::get_if<bool>(&v_)) {
    w.value(*b);
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    w.value(*i);
  } else if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    w.value(*u);
  } else if (const double* d = std::get_if<double>(&v_)) {
    w.value(*d);
  } else if (const std::string* s = std::get_if<std::string>(&v_)) {
    w.value(*s);
  } else if (const Array* a = std::get_if<Array>(&v_)) {
    w.begin_array();
    for (const JsonValue& v : *a) v.write(w);
    w.end_array();
  } else {
    w.begin_object();
    for (const Member& m : std::get<Object>(v_)) {
      w.key(m.first);
      m.second.write(w);
    }
    w.end_object();
  }
}

std::string JsonValue::dump(int indent) const {
  JsonWriter w(indent);
  write(w);
  return w.take();
}

namespace {

/// Strict recursive-descent JSON parser (the json_parse contract).
class Parser {
public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    try {
      skip_ws();
      JsonValue v = parse_value(0);
      skip_ws();
      if (pos_ != s_.size()) fail("trailing characters after document");
      return v;
    } catch (const std::runtime_error& e) {
      if (error != nullptr) *error = e.what();
      return std::nullopt;
    }
  }

private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(std::string_view w) {
    if (s_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_word("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_word("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_word("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v[key] = parse_value(depth + 1);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp < 0xDC00) {  // high surrogate
            if (pos_ + 1 < s_.size() && s_[pos_] == '\\' &&
                s_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::uint32_t lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              fail("unpaired surrogate");
            }
          } else if (cp >= 0xDC00 && cp < 0xE000) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
      fail("invalid number");
    }
    bool integral = true;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
        fail("invalid number");
      }
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
        fail("invalid number");
      }
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    const std::string_view tok = s_.substr(start, pos_ - start);
    if (integral) {
      if (tok[0] == '-') {
        std::int64_t i = 0;
        const auto [p, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), i);
        if (ec == std::errc() && p == tok.data() + tok.size()) {
          return JsonValue(i);
        }
      } else {
        std::uint64_t u = 0;
        const auto [p, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), u);
        if (ec == std::errc() && p == tok.data() + tok.size()) {
          if (u <= static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max())) {
            return JsonValue(static_cast<std::int64_t>(u));
          }
          return JsonValue(u);
        }
      }
      // Out-of-range integer: fall through to double.
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      fail("invalid number");
    }
    return JsonValue(d);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  return Parser(text).run(error);
}

}  // namespace xtsoc::obs
