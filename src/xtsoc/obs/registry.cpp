#include "xtsoc/obs/registry.hpp"

#include <algorithm>

#include "xtsoc/snap/io.hpp"

namespace xtsoc::obs {

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}

TrackId Registry::track(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return TrackId{static_cast<std::uint32_t>(i + 1)};
  }
  tracks_.emplace_back(name);
  return TrackId{static_cast<std::uint32_t>(tracks_.size())};
}

const std::string& Registry::track_name(TrackId t) const {
  std::lock_guard<std::mutex> lock(mutex_);
  static const std::string kUnknown = "?";
  if (!t.is_valid() || t.value > tracks_.size()) return kUnknown;
  return tracks_[t.value - 1];
}

std::size_t Registry::track_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tracks_.size();
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) {
    if (c->name() == name) return c.get();
  }
  counters_.push_back(std::make_unique<Counter>(std::string(name)));
  return counters_.back().get();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(counters_.size());
    for (const auto& c : counters_) out.emplace_back(c->name(), c->value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Registry::save_counters(snap::Writer& w) const {
  const auto all = counters();
  w.u64(all.size());
  for (const auto& [name, value] : all) {
    w.str(name);
    w.u64(value);
  }
}

void Registry::load_counters(snap::Reader& r) {
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string name = r.str();
    counter(name)->set(r.u64());
  }
}

std::uint64_t Registry::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Registry::push_event(Event e) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= event_capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(e));
}

void Registry::record_span(TrackId track, std::string name,
                           std::uint64_t start_ns, std::uint64_t end_ns,
                           std::uint64_t cycle) {
  Event e;
  e.track = track;
  e.phase = 'X';
  e.name = std::move(name);
  e.ts_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.cycle = cycle;
  push_event(std::move(e));
}

void Registry::record_instant(TrackId track, std::string name,
                              std::uint64_t ts_ns, std::uint64_t cycle) {
  Event e;
  e.track = track;
  e.phase = 'i';
  e.name = std::move(name);
  e.ts_ns = ts_ns;
  e.cycle = cycle;
  push_event(std::move(e));
}

void Registry::record_value(TrackId track, std::string series,
                            std::uint64_t ts_ns, double value) {
  Event e;
  e.track = track;
  e.phase = 'C';
  e.name = std::move(series);
  e.ts_ns = ts_ns;
  e.value = value;
  push_event(std::move(e));
}

std::size_t Registry::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Registry::set_event_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  event_capacity_ = cap;
}

void Registry::add_section(std::string name, std::function<JsonValue()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Section& s : sections_) {
    if (s.name == name) {
      s.fn = std::move(fn);
      return;
    }
  }
  sections_.push_back({std::move(name), std::move(fn)});
}

void Registry::remove_section(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  sections_.erase(
      std::remove_if(sections_.begin(), sections_.end(),
                     [&](const Section& s) { return s.name == name; }),
      sections_.end());
}

Snapshot Registry::snapshot() const {
  // Copy the section list out first: section adapters call back into
  // subsystems which may themselves query this registry.
  std::vector<Section> sections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sections = sections_;
  }
  Snapshot snap;
  for (const Section& s : sections) {
    snap[s.name] = s.fn ? s.fn() : JsonValue();
  }
  JsonValue& cs = snap["counters"];
  cs = JsonValue::object();
  for (const auto& [name, value] : counters()) cs[name] = value;
  return snap;
}

namespace {

// One Chrome "thread" per track, all inside one process. Perfetto and
// chrome://tracing sort threads by tid, so tids follow track creation
// order and the timeline reads top-to-bottom: cosim, kernel, executors,
// noc.
constexpr int kPid = 1;

void write_event_common(JsonWriter& w, char phase, std::uint32_t tid,
                        std::string_view name, std::uint64_t ts_ns) {
  w.field("name", name);
  w.field("ph", std::string_view(&phase, 1));
  // Trace-event timestamps are microseconds; keep sub-µs precision as a
  // fraction (viewers accept fractional ts).
  w.field("ts", static_cast<double>(ts_ns) / 1000.0);
  w.field("pid", kPid);
  w.field("tid", tid);
}

}  // namespace

std::string Registry::chrome_trace() const {
  std::vector<std::string> tracks;
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracks = tracks_;
    events = events_;
  }
  // Stable timeline: workers interleave event recording, so sort by
  // timestamp (then track) before emitting.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.track.value < b.track.value;
                   });

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  w.begin_object()
      .field("name", "process_name")
      .field("ph", "M")
      .field("pid", kPid)
      .key("args")
      .begin_object()
      .field("name", "xtsoc")
      .end_object()
      .end_object();
  // Metadata for every track, eventful or not — a run with tracing on but
  // no activity still shows its lanes.
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    w.begin_object()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", kPid)
        .field("tid", static_cast<std::uint64_t>(i + 1))
        .key("args")
        .begin_object()
        .field("name", tracks[i])
        .end_object()
        .end_object();
  }
  for (const Event& e : events) {
    w.begin_object();
    write_event_common(w, e.phase, e.track.value, e.name, e.ts_ns);
    if (e.phase == 'X') {
      w.field("dur", static_cast<double>(e.dur_ns) / 1000.0);
    }
    if (e.phase == 'i') {
      w.field("s", "t");  // thread-scoped instant
    }
    if (e.phase == 'C') {
      w.key("args").begin_object().field("value", e.value).end_object();
    } else if (e.cycle != kNoCycle) {
      w.key("args").begin_object().field("cycle", e.cycle).end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  return w.take();
}

void Registry::write_chrome_trace(std::ostream& os) const {
  os << chrome_trace() << '\n';
}

}  // namespace xtsoc::obs
