// obs::Snapshot — a point-in-time stats report assembled from every
// section registered with a Registry (sim stats, interconnect stats,
// per-domain executor stats, raw counters). The Snapshot is the single
// serialization path for stats: subsystems contribute JsonValue adapters,
// and everything downstream (xtsocc --obs=snapshot, CoSimulation::report(),
// tests) consumes this one document instead of N bespoke printers.
#pragma once

#include <ostream>
#include <string>

#include "xtsoc/obs/json.hpp"

namespace xtsoc::obs {

class Snapshot {
public:
  Snapshot() : root_(JsonValue::object()) {}
  explicit Snapshot(JsonValue root) : root_(std::move(root)) {}

  JsonValue& root() { return root_; }
  const JsonValue& root() const { return root_; }

  /// Section access: snapshot["sim"]["delta_cycles"].as_uint().
  JsonValue& operator[](std::string_view key) { return root_[key]; }
  const JsonValue& at(std::string_view key) const { return root_.at(key); }
  const JsonValue* find(std::string_view key) const { return root_.find(key); }

  /// Render as JSON. indent=0 gives the compact single-line form; indent>0
  /// pretty-prints (2 is what xtsocc uses for --obs=snapshot).
  std::string to_json(int indent = 0) const { return root_.dump(indent); }
  void write(std::ostream& os) const;

private:
  JsonValue root_;
};

}  // namespace xtsoc::obs
