// obs::json — THE one JSON emission path of the toolchain.
//
// Before the obs subsystem existed, three independent serializers had grown
// side by side (perf/traceexport.cpp, bench/bench_json.hpp, and the NoC
// stats printer), each with its own escaping rules and its own idea of key
// order. Everything JSON-shaped now goes through the two types below:
//
//   * JsonWriter — a streaming writer (objects/arrays/values) with escaping
//     handled once and key order fixed by emission order. Optional pretty
//     printing for files meant to be diffed (BENCH_*.json, snapshots).
//   * JsonValue  — an owned JSON tree for code that assembles a document
//     before serializing it (obs::Snapshot, stats adapters). Object keys
//     preserve insertion order, so serialization is stable run to run.
//
// Deliberately small: no SAX, no allocator knobs. json_parse() is the one
// reader — a strict recursive-descent parser into JsonValue, added for the
// xtsocd request protocol so the daemon speaks the same dialect this
// writer emits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace xtsoc::obs {

/// Escape `s` for inclusion inside a JSON string literal (no surrounding
/// quotes). Handles quotes, backslashes, and all control characters.
std::string json_escape(std::string_view s);

/// Render a double the way every xtsoc JSON document does: shortest
/// round-trip form via std::to_chars ("1", "0.25", "3.3333333333333335"),
/// with non-finite values mapped to null (JSON has no inf/nan).
std::string json_number(double v);

/// Streaming JSON writer. Usage:
///
///   JsonWriter w;
///   w.begin_object().key("name").value("trace").key("n").value(3)
///    .end_object();
///   std::string doc = w.take();
///
/// Commas and (in pretty mode) indentation are managed automatically; keys
/// appear in exactly the order they are written.
class JsonWriter {
public:
  /// `indent` > 0 selects pretty printing with that many spaces per level.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& null();
  /// Splice pre-rendered JSON (e.g. a nested document) as one value.
  JsonWriter& raw(std::string_view json);

  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

private:
  void before_value();
  void newline_indent();

  std::string out_;
  int indent_ = 0;
  /// One frame per open container: 'o'/'a', plus whether it has elements
  /// and (for objects) whether a key was just written.
  struct Frame {
    char kind;
    bool has_elems = false;
  };
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

/// An owned JSON document. Objects keep keys in insertion order.
class JsonValue {
public:
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(std::int64_t n) : v_(n) {}
  JsonValue(std::uint64_t n) : v_(n) {}
  JsonValue(int n) : v_(static_cast<std::int64_t>(n)) {}
  JsonValue(unsigned n) : v_(static_cast<std::uint64_t>(n)) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(std::string_view s) : v_(std::string(s)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}

  static JsonValue object() { JsonValue v; v.v_ = Object{}; return v; }
  static JsonValue array() { JsonValue v; v.v_ = Array{}; return v; }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_number() const {
    return std::holds_alternative<std::int64_t>(v_) ||
           std::holds_alternative<std::uint64_t>(v_) ||
           std::holds_alternative<double>(v_);
  }

  /// Object access: find-or-insert (mutable) / lookup (const, throws on
  /// missing key). Calling on a null value turns it into an object.
  JsonValue& operator[](std::string_view key);
  const JsonValue& at(std::string_view key) const;
  /// Lookup without throwing; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Array access. Calling push_back on a null value turns it into an array.
  JsonValue& push_back(JsonValue v);
  std::size_t size() const;
  const JsonValue& at(std::size_t i) const;

  // Typed getters (throw std::runtime_error on kind mismatch).
  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const;
  const Object& as_object() const;
  const Array& as_array() const;

  /// Serialize through JsonWriter (the single emission path).
  void write(JsonWriter& w) const;
  std::string dump(int indent = 0) const;

private:
  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      v_;
};

/// Parse one JSON document (strict: no comments, no trailing commas, no
/// trailing garbage). Integers without fraction/exponent parse as
/// int64/uint64, everything else numeric as double. Returns nullopt on
/// malformed input, with a position-bearing message in `*error` when
/// `error` is non-null.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace xtsoc::obs
