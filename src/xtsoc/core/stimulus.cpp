#include "xtsoc/core/stimulus.hpp"

#include <charconv>
#include <map>
#include <sstream>

#include "xtsoc/common/strings.hpp"

namespace xtsoc::core {

using runtime::InstanceHandle;
using runtime::Value;

namespace {

/// What a stimulus script drives: the abstract executor or a cosim.
class Driver {
public:
  virtual ~Driver() = default;
  virtual InstanceHandle create(const std::string& cls) = 0;
  virtual runtime::Database& db_of(const InstanceHandle& h) = 0;
  virtual void inject(const InstanceHandle& h, const std::string& event,
                      std::vector<Value> args, std::uint64_t delay) = 0;
  virtual void run(std::size_t limit) = 0;
  virtual std::string summary() const = 0;
  virtual std::string trace_text() const = 0;
};

class AbstractDriver : public Driver {
public:
  explicit AbstractDriver(const Project& project)
      : exec_(project.make_abstract_executor()) {}

  InstanceHandle create(const std::string& cls) override {
    return exec_->create(cls);
  }
  runtime::Database& db_of(const InstanceHandle&) override {
    return exec_->database();
  }
  void inject(const InstanceHandle& h, const std::string& event,
              std::vector<Value> args, std::uint64_t delay) override {
    exec_->inject(h, event, std::move(args), delay);
  }
  void run(std::size_t limit) override { exec_->run_all(limit); }
  std::string summary() const override {
    std::ostringstream os;
    os << exec_->dispatch_count() << " dispatches, t=" << exec_->now();
    return os.str();
  }
  std::string trace_text() const override {
    return exec_->trace().to_string();
  }

private:
  std::unique_ptr<runtime::Executor> exec_;
};

class CosimDriver : public Driver {
public:
  CosimDriver(const Project& project, cosim::CoSimConfig config)
      : cosim_(project.make_cosim(config)) {}

  InstanceHandle create(const std::string& cls) override {
    return cosim_->create(cls);
  }
  runtime::Database& db_of(const InstanceHandle& h) override {
    return cosim_->executor_of(h.cls).database();
  }
  void inject(const InstanceHandle& h, const std::string& event,
              std::vector<Value> args, std::uint64_t delay) override {
    cosim_->inject(h, event, std::move(args), delay);
  }
  void run(std::size_t limit) override { cosim_->run(limit); }
  std::string summary() const override {
    std::uint64_t hw = 0;
    for (const auto& d : cosim_->hw_domains()) hw += d->dispatches();
    std::ostringstream os;
    os << hw << " hw + " << cosim_->sw_executor().dispatch_count()
       << " sw dispatches, " << cosim_->cycles() << " cycles";
    return os.str();
  }
  std::string trace_text() const override {
    std::string text;
    for (std::size_t i = 0; i < cosim_->hw_domains().size(); ++i) {
      text += "--- hardware partition";
      if (cosim_->hw_domains().size() > 1) {
        text += " (domain " + std::to_string(i) + ")";
      }
      text += " ---\n";
      text += cosim_->hw_domains()[i]->executor().trace().to_string();
    }
    text += "--- software partition ---\n";
    text += cosim_->sw_executor().trace().to_string();
    return text;
  }

  const cosim::CoSimulation& cosim() const { return *cosim_; }

private:
  std::unique_ptr<cosim::CoSimulation> cosim_;
};

class Script {
public:
  Script(const Project& project, Driver& driver, std::ostream& out)
      : project_(project), driver_(driver), out_(out) {}

  StimulusResult run(std::string_view text) {
    int line_no = 0;
    for (const std::string& raw : split(text, '\n')) {
      ++line_no;
      std::string line(trim(raw));
      std::size_t hash = line.find('#');
      if (hash != std::string::npos) line = std::string(trim(line.substr(0, hash)));
      if (line.empty()) continue;
      ++result_.commands;
      if (!command(line)) {
        out_ << "stimulus:" << line_no << ": error in '" << line << "'\n";
        result_.ok = false;
        return result_;
      }
    }
    result_.ok = result_.ok && result_.failed_expectations == 0;
    return result_;
  }

private:
  std::vector<std::string> words(const std::string& line) {
    std::vector<std::string> out;
    std::string cur;
    bool in_str = false;
    for (char c : line) {
      if (c == '"') in_str = !in_str;
      if (!in_str && std::isspace(static_cast<unsigned char>(c))) {
        if (!cur.empty()) {
          out.push_back(cur);
          cur.clear();
        }
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
  }

  bool parse_value(const std::string& text, Value* out) {
    if (text == "true") {
      *out = true;
    } else if (text == "false") {
      *out = false;
    } else if (!text.empty() && text.front() == '@') {
      auto it = byname_.find(text.substr(1));
      if (it == byname_.end()) return false;
      *out = it->second;
    } else if (!text.empty() && text.front() == '"') {
      if (text.size() < 2 || text.back() != '"') return false;
      *out = text.substr(1, text.size() - 2);
    } else if (text.find('.') != std::string::npos) {
      try {
        *out = std::stod(text);
      } catch (...) {
        return false;
      }
    } else {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc{} || p != text.data() + text.size()) return false;
      *out = v;
    }
    return true;
  }

  const InstanceHandle* resolve(const std::string& name) {
    auto it = byname_.find(name);
    return it == byname_.end() ? nullptr : &it->second;
  }

  bool command(const std::string& line) {
    std::vector<std::string> w = words(line);
    try {
      if (w[0] == "create") return cmd_create(w);
      if (w[0] == "inject") return cmd_inject(w);
      if (w[0] == "run") {
        // `run [N]` — at most N dispatches/cycles (models may self-tick
        // forever by design; the default bound keeps scripts terminating).
        std::size_t limit = 100000;
        if (w.size() >= 2) {
          Value v;
          if (!parse_value(w[1], &v)) return false;
          limit = static_cast<std::size_t>(std::get<std::int64_t>(v));
        }
        driver_.run(limit);
        return true;
      }
      if (w[0] == "expect") return cmd_expect(w);
      if (w[0] == "expect_state") return cmd_expect_state(w);
      if (w[0] == "print") return cmd_print(w);
    } catch (const std::exception& e) {
      out_ << "stimulus: " << e.what() << '\n';
      return false;
    }
    return false;
  }

  bool cmd_create(const std::vector<std::string>& w) {
    if (w.size() < 3) return false;
    const std::string& name = w[1];
    if (byname_.contains(name)) return false;
    InstanceHandle h = driver_.create(w[2]);
    byname_[name] = h;
    const xtuml::ClassDef* cls = project_.domain().find_class(w[2]);
    for (std::size_t i = 3; i < w.size(); ++i) {
      std::size_t eq = w[i].find('=');
      if (eq == std::string::npos) return false;
      const xtuml::AttributeDef* attr =
          cls->find_attribute(w[i].substr(0, eq));
      Value v;
      if (attr == nullptr || !parse_value(w[i].substr(eq + 1), &v)) {
        return false;
      }
      driver_.db_of(h).set_attr(h, attr->id, std::move(v));
    }
    return true;
  }

  bool cmd_inject(const std::vector<std::string>& w) {
    if (w.size() < 3) return false;
    const InstanceHandle* h = resolve(w[1]);
    if (h == nullptr) return false;
    const xtuml::ClassDef& cls = project_.domain().cls(h->cls);
    const xtuml::EventDef* ev = cls.find_event(w[2]);
    if (ev == nullptr) return false;

    std::vector<Value> args(ev->params.size());
    std::vector<bool> covered(ev->params.size(), false);
    std::uint64_t delay = 0;
    for (std::size_t i = 3; i < w.size(); ++i) {
      std::size_t eq = w[i].find('=');
      if (eq == std::string::npos) return false;
      std::string key = w[i].substr(0, eq);
      Value v;
      if (!parse_value(w[i].substr(eq + 1), &v)) return false;
      if (key == "delay") {
        delay = static_cast<std::uint64_t>(std::get<std::int64_t>(v));
        continue;
      }
      bool found = false;
      for (std::size_t p = 0; p < ev->params.size(); ++p) {
        if (ev->params[p].name == key) {
          args[p] = std::move(v);
          covered[p] = true;
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    for (std::size_t p = 0; p < ev->params.size(); ++p) {
      if (!covered[p]) {
        args[p] = runtime::default_value(ev->params[p].type);
      }
    }
    driver_.inject(*h, w[2], std::move(args), delay);
    return true;
  }

  bool cmd_expect(const std::vector<std::string>& w) {
    // expect <name>.<attr> == <value>
    if (w.size() != 4 || w[2] != "==") return false;
    std::size_t dot = w[1].find('.');
    if (dot == std::string::npos) return false;
    const InstanceHandle* h = resolve(w[1].substr(0, dot));
    if (h == nullptr) return false;
    const xtuml::ClassDef& cls = project_.domain().cls(h->cls);
    const xtuml::AttributeDef* attr = cls.find_attribute(w[1].substr(dot + 1));
    Value want;
    if (attr == nullptr || !parse_value(w[3], &want)) return false;
    Value got = driver_.db_of(*h).get_attr(*h, attr->id);
    if (!runtime::value_equals(got, want)) {
      out_ << "EXPECT FAILED: " << w[1] << " == " << runtime::to_string(want)
           << ", got " << runtime::to_string(got) << '\n';
      ++result_.failed_expectations;
    } else {
      out_ << "expect ok: " << w[1] << " == " << runtime::to_string(want)
           << '\n';
    }
    return true;
  }

  bool cmd_expect_state(const std::vector<std::string>& w) {
    if (w.size() != 3) return false;
    const InstanceHandle* h = resolve(w[1]);
    if (h == nullptr) return false;
    const xtuml::ClassDef& cls = project_.domain().cls(h->cls);
    const xtuml::StateDef* want = cls.find_state(w[2]);
    if (want == nullptr) return false;
    runtime::Database& db = driver_.db_of(*h);
    if (!db.is_alive(*h) || db.current_state(*h) != want->id) {
      out_ << "EXPECT FAILED: " << w[1] << " in state " << w[2] << ", got "
           << (db.is_alive(*h) ? cls.state(db.current_state(*h)).name
                               : std::string("<deleted>"))
           << '\n';
      ++result_.failed_expectations;
    } else {
      out_ << "expect ok: " << w[1] << " in state " << w[2] << '\n';
    }
    return true;
  }

  bool cmd_print(const std::vector<std::string>& w) {
    if (w.size() != 2) return false;
    if (w[1] == "summary") {
      out_ << driver_.summary() << '\n';
      return true;
    }
    if (w[1] == "trace") {
      out_ << driver_.trace_text();
      return true;
    }
    return false;
  }

  const Project& project_;
  Driver& driver_;
  std::ostream& out_;
  std::map<std::string, InstanceHandle> byname_;
  StimulusResult result_;
};

}  // namespace

std::string StimulusResult::to_string() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAILED") << " (" << commands << " commands, "
     << failed_expectations << " failed expectations)";
  return os.str();
}

StimulusResult run_stimulus(const Project& project, std::string_view script,
                            std::ostream& out) {
  AbstractDriver driver(project);
  return Script(project, driver, out).run(script);
}

StimulusResult run_stimulus_cosim(
    const Project& project, std::string_view script, std::ostream& out,
    cosim::CoSimConfig config,
    const std::function<void(const cosim::CoSimulation&)>& on_finish) {
  CosimDriver driver(project, config);
  StimulusResult result = Script(project, driver, out).run(script);
  if (on_finish) on_finish(driver.cosim());
  return result;
}

}  // namespace xtsoc::core
