#include "xtsoc/core/project.hpp"

#include <sstream>

#include "xtsoc/codegen/cgen.hpp"
#include "xtsoc/codegen/vhdlgen.hpp"
#include "xtsoc/text/xtm.hpp"

namespace xtsoc::core {

std::unique_ptr<Project> Project::from_xtm(std::string_view xtm_text,
                                           std::string_view marks_text,
                                           DiagnosticSink& sink) {
  std::unique_ptr<xtuml::Domain> domain = text::parse_xtm(xtm_text, sink);
  if (domain == nullptr) return nullptr;
  marks::MarkSet marks = marks::MarkSet::from_text(marks_text, sink);
  if (sink.has_errors()) return nullptr;
  return from_domain(std::move(domain), std::move(marks), sink);
}

std::unique_ptr<Project> Project::from_domain(
    std::unique_ptr<xtuml::Domain> domain, marks::MarkSet marks,
    DiagnosticSink& sink) {
  auto project = std::unique_ptr<Project>(new Project);
  project->domain_ = std::move(domain);
  project->marks_ = std::move(marks);
  project->compiled_ = oal::compile_domain(*project->domain_, sink);
  if (project->compiled_ == nullptr) return nullptr;
  if (!project->map(sink)) return nullptr;
  return project;
}

bool Project::map(DiagnosticSink& sink) {
  auto mapped = mapping::map_system(*compiled_, marks_, sink);
  if (mapped == nullptr) return false;
  system_ = std::move(mapped);
  return true;
}

std::optional<marks::MarkDiff> Project::repartition(marks::MarkSet new_marks,
                                                    DiagnosticSink& sink) {
  auto mapped = mapping::map_system(*compiled_, new_marks, sink);
  if (mapped == nullptr) return std::nullopt;  // keep the old mapping
  marks::MarkDiff diff = marks::MarkSet::diff(marks_, new_marks);
  marks_ = std::move(new_marks);
  system_ = std::move(mapped);
  return diff;
}

std::unique_ptr<runtime::Executor> Project::make_abstract_executor(
    runtime::ExecutorConfig config) const {
  return std::make_unique<runtime::Executor>(*compiled_, config);
}

std::unique_ptr<cosim::CoSimulation> Project::make_cosim(
    cosim::CoSimConfig config) const {
  return std::make_unique<cosim::CoSimulation>(*system_, config);
}

verify::RunReport Project::run_model_test(const verify::TestCase& test) const {
  verify::AbstractRunner runner(*compiled_);
  return runner.run(test);
}

verify::ConformanceReport Project::run_conformance(
    const verify::TestCase& test) const {
  return verify::run_conformance(*compiled_, *system_, test);
}

codegen::Output Project::generate_c(DiagnosticSink& sink) const {
  return codegen::generate_c(*system_, sink);
}

codegen::Output Project::generate_vhdl(DiagnosticSink& sink) const {
  return codegen::generate_vhdl(*system_, sink);
}

codegen::Output Project::generate_all(DiagnosticSink& sink) const {
  codegen::Output out = codegen::generate_c(*system_, sink);
  codegen::Output hw = codegen::generate_vhdl(*system_, sink);
  for (auto& f : hw.files) out.files.push_back(std::move(f));
  return out;
}

std::string Project::summary() const {
  std::ostringstream os;
  os << "domain '" << domain_->name() << "': " << domain_->class_count()
     << " classes, " << domain_->state_count() << " states, "
     << domain_->transition_count() << " transitions, "
     << domain_->associations().size() << " associations\n";
  os << "partition: " << system_->partition().to_string(*domain_) << '\n';
  os << "interface: " << system_->interface().message_count()
     << " boundary messages (digest "
     << system_->interface().digest(*domain_) << "), bus latency "
     << system_->bus_latency() << " cycles\n";
  return os.str();
}

}  // namespace xtsoc::core
