// Project: the top-level API of the toolchain — everything the paper
// describes, end to end:
//
//   model (.xtm or built in C++)  ->  compile (validate + analyze actions)
//   + marks (.marks text)         ->  map (partition, interface synthesis)
//                                 ->  execute abstractly | co-simulate
//                                 ->  verify (formal test cases, both ways)
//                                 ->  generate C + VHDL
//                                 ->  measure, move a mark, repeat
//
// Examples and benchmarks program against this facade.
#pragma once

#include <memory>
#include <string_view>

#include "xtsoc/codegen/output.hpp"
#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/marks/marks.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"
#include "xtsoc/perf/perf.hpp"
#include "xtsoc/verify/testcase.hpp"

namespace xtsoc::core {

class Project {
public:
  /// Build from .xtm model text and .marks text (either may come from a
  /// file). Returns nullptr with diagnostics on any error.
  static std::unique_ptr<Project> from_xtm(std::string_view xtm_text,
                                           std::string_view marks_text,
                                           DiagnosticSink& sink);

  /// Build from an in-memory Domain (takes ownership).
  static std::unique_ptr<Project> from_domain(
      std::unique_ptr<xtuml::Domain> domain, marks::MarkSet marks,
      DiagnosticSink& sink);

  // --- accessors -------------------------------------------------------------
  const xtuml::Domain& domain() const { return *domain_; }
  const oal::CompiledDomain& compiled() const { return *compiled_; }
  const marks::MarkSet& marks() const { return marks_; }
  const mapping::MappedSystem& system() const { return *system_; }

  // --- the paper's repartitioning operation -----------------------------------
  /// Replace the mark set and re-map. The MODEL IS NOT TOUCHED — only the
  /// mapping artifacts are rebuilt. Returns the mark diff (the entire cost
  /// of the repartition) or nullopt if the new marks are invalid (the old
  /// mapping stays in effect).
  std::optional<marks::MarkDiff> repartition(marks::MarkSet new_marks,
                                             DiagnosticSink& sink);

  // --- execution ---------------------------------------------------------------
  std::unique_ptr<runtime::Executor> make_abstract_executor(
      runtime::ExecutorConfig config = {}) const;
  std::unique_ptr<cosim::CoSimulation> make_cosim(
      cosim::CoSimConfig config = {}) const;

  // --- verification --------------------------------------------------------------
  verify::RunReport run_model_test(const verify::TestCase& test) const;
  verify::ConformanceReport run_conformance(
      const verify::TestCase& test) const;

  // --- code generation ------------------------------------------------------------
  codegen::Output generate_c(DiagnosticSink& sink) const;
  codegen::Output generate_vhdl(DiagnosticSink& sink) const;
  /// Both halves at once.
  codegen::Output generate_all(DiagnosticSink& sink) const;

  // --- reporting -------------------------------------------------------------------
  /// One-paragraph description: classes, partition, interface size.
  std::string summary() const;

private:
  Project() = default;
  bool map(DiagnosticSink& sink);

  std::unique_ptr<xtuml::Domain> domain_;
  std::unique_ptr<oal::CompiledDomain> compiled_;
  marks::MarkSet marks_;
  std::unique_ptr<mapping::MappedSystem> system_;
};

}  // namespace xtsoc::core
