// Stimulus scripts: drive a model from text, so the whole paper workflow —
// model + marks + test — runs from the command line with no C++ written.
//
// Format (one command per line, `#` comments):
//
//   create <name> <Class> [attr=value ...]     # @other references a prior
//                                              # instance (for ref attrs)
//   inject <name> <event> [param=value ...] [delay=N]
//   run [N]                                    # run to quiescence, at most
//                                              # N dispatches/cycles (default 100000)
//   expect <name>.<attr> == <value>
//   expect_state <name> <State>
//   print summary|trace
//
// Values: true/false, integers, reals, "strings", @instance.
//
// Scripts execute against the abstract executor (the model, no
// implementation — paper §2) via run_stimulus(), or against a partitioned
// co-simulation via run_stimulus_cosim(); expectations behave identically,
// which is the point.
#pragma once

#include <functional>
#include <ostream>
#include <string_view>

#include "xtsoc/core/project.hpp"

namespace xtsoc::core {

struct StimulusResult {
  bool ok = true;
  int commands = 0;
  int failed_expectations = 0;
  std::string to_string() const;
};

/// Run `script` against the abstract model. Human-readable output (prints,
/// expectation failures, script errors) goes to `out`.
StimulusResult run_stimulus(const Project& project, std::string_view script,
                            std::ostream& out);

/// Same script, but against the partitioned co-simulation. When set,
/// `on_finish` observes the finished co-simulation before it is destroyed
/// (e.g. to print NoC statistics or export a perf report).
StimulusResult run_stimulus_cosim(
    const Project& project, std::string_view script, std::ostream& out,
    cosim::CoSimConfig config = {},
    const std::function<void(const cosim::CoSimulation&)>& on_finish = {});

}  // namespace xtsoc::core
