#include "xtsoc/perf/perf.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace xtsoc::perf {

PerfReport measure(const cosim::CoSimulation& cosim) {
  PerfReport r;
  const mapping::MappedSystem& sys = cosim.system();
  const xtuml::Domain& domain = sys.domain();

  r.cycles = cosim.cycles();
  for (const auto& hw : cosim.hw_domains()) {
    r.hw_dispatches += hw->dispatches();
    r.hw_queue_high_water =
        std::max(r.hw_queue_high_water, hw->executor().queue_high_water());
  }
  r.sw_dispatches = cosim.sw_executor().dispatch_count();
  if (cosim.has_fabric()) {
    const noc::FabricStats& fs = cosim.fabric().stats();
    r.bus_frames = fs.frames_delivered;
    r.bus_bytes = fs.payload_bytes;
    r.has_noc = true;
    r.noc = fs;
  } else {
    r.bus_frames =
        cosim.bus().stats().frames_to_hw + cosim.bus().stats().frames_to_sw;
    r.bus_bytes =
        cosim.bus().stats().bytes_to_hw + cosim.bus().stats().bytes_to_sw;
  }
  r.hw_delta_cycles = cosim.hw_sim().stats().delta_cycles;
  r.sw_task_steps = cosim.scheduler().total_steps();
  r.sw_queue_high_water = cosim.sw_executor().queue_high_water();

  for (const auto& c : domain.classes()) {
    ClassPerf cp;
    cp.cls = c.id;
    cp.name = c.name;
    cp.target = sys.partition().target_of(c.id);
    const runtime::Executor& owner = cosim.executor_of(c.id);
    cp.dispatches = owner.dispatch_count(c.id);
    cp.ops = owner.ops_executed(c.id);
    cp.live_instances = owner.database().live_count(c.id);
    r.classes.push_back(std::move(cp));
  }
  return r;
}

std::string PerfReport::to_table() const {
  std::ostringstream os;
  os << "cycles=" << cycles << " hw_dispatches=" << hw_dispatches
     << " sw_dispatches=" << sw_dispatches << " bus_frames=" << bus_frames
     << " bus_bytes=" << bus_bytes << " sw_load=" << std::fixed
     << std::setprecision(3) << sw_load() << " queue_hiwater(hw/sw)="
     << hw_queue_high_water << '/' << sw_queue_high_water << '\n';
  os << std::left << std::setw(20) << "class" << std::setw(10) << "target"
     << std::right << std::setw(12) << "dispatches" << std::setw(12)
     << "work(ops)" << std::setw(10) << "alive" << '\n';
  for (const auto& c : classes) {
    os << std::left << std::setw(20) << c.name << std::setw(10)
       << marks::to_string(c.target) << std::right << std::setw(12)
       << c.dispatches << std::setw(12) << c.ops << std::setw(10)
       << c.live_instances << '\n';
  }
  if (has_noc) os << noc.to_table();
  return os.str();
}

RepartitionAdvice suggest_repartition(const PerfReport& report) {
  RepartitionAdvice advice;

  // Software class doing the most action work: the hardware candidate.
  const ClassPerf* busiest_sw = nullptr;
  std::uint64_t sw_ops = 0;
  for (const auto& c : report.classes) {
    if (c.target != marks::Target::kSoftware) continue;
    sw_ops += c.ops;
    if (busiest_sw == nullptr || c.ops > busiest_sw->ops) {
      busiest_sw = &c;
    }
  }
  if (busiest_sw != nullptr && busiest_sw->ops > 0) {
    advice.has_suggestion = true;
    advice.class_name = busiest_sw->name;
    advice.move_to = marks::Target::kHardware;
    std::ostringstream os;
    os << "'" << busiest_sw->name << "' accounts for " << busiest_sw->ops
       << " of " << sw_ops
       << " software action ops; mark it isHardware and regenerate";
    advice.rationale = os.str();
    return advice;
  }

  // Otherwise: an idle hardware class can come back to software.
  for (const auto& c : report.classes) {
    if (c.target == marks::Target::kHardware && c.dispatches == 0) {
      advice.has_suggestion = true;
      advice.class_name = c.name;
      advice.move_to = marks::Target::kSoftware;
      advice.rationale = "'" + c.name +
                         "' saw no hardware traffic; reclaim its fabric by "
                         "clearing isHardware";
      return advice;
    }
  }
  return advice;
}

}  // namespace xtsoc::perf
