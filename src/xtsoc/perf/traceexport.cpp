#include "xtsoc/perf/traceexport.hpp"

#include <map>

#include "xtsoc/cosim/report.hpp"
#include "xtsoc/obs/json.hpp"

namespace xtsoc::perf {

using obs::JsonWriter;
using runtime::InstanceHandle;
using runtime::TraceEvent;
using runtime::TraceKind;

std::string export_chrome_trace(const runtime::Trace& trace,
                                const xtuml::Domain& domain,
                                const std::string& process_name, int pid) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Process metadata.
  w.begin_object()
      .field("name", "process_name")
      .field("ph", "M")
      .field("pid", pid)
      .key("args")
      .begin_object()
      .field("name", process_name)
      .end_object()
      .end_object();

  // Thread (= instance) metadata, assigned on first appearance.
  std::map<InstanceHandle, int> tids;
  auto tid_of = [&](const InstanceHandle& h) {
    auto it = tids.find(h);
    if (it != tids.end()) return it->second;
    int tid = static_cast<int>(tids.size()) + 1;
    tids[h] = tid;
    std::string name = h.is_null()
                           ? std::string("<external>")
                           : domain.cls(h.cls).name + "#" +
                                 std::to_string(h.index);
    w.begin_object()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", pid)
        .field("tid", tid)
        .key("args")
        .begin_object()
        .field("name", name)
        .end_object()
        .end_object();
    return tid;
  };

  for (const TraceEvent& ev : trace.events()) {
    switch (ev.kind) {
      case TraceKind::kDispatch: {
        const xtuml::ClassDef& cls = domain.cls(ev.subject.cls);
        w.begin_object()
            .field("name", cls.event(ev.event).name)
            .field("cat", "dispatch")
            .field("ph", "X")
            .field("pid", pid)
            .field("tid", tid_of(ev.subject))
            .field("ts", ev.tick)
            .field("dur", 1)
            .key("args")
            .begin_object()
            .field("to_state", cls.state(ev.to_state).name)
            .end_object()
            .end_object();
        break;
      }
      case TraceKind::kSend: {
        const xtuml::ClassDef& cls = domain.cls(ev.subject.cls);
        w.begin_object()
            .field("name", "send " + cls.event(ev.event).name)
            .field("cat", "signal")
            .field("ph", "i")
            .field("s", "t")
            .field("pid", pid)
            .field("tid", tid_of(ev.peer))
            .field("ts", ev.tick)
            .end_object();
        break;
      }
      case TraceKind::kCreate:
      case TraceKind::kDelete: {
        w.begin_object()
            .field("name", to_string(ev.kind))
            .field("cat", "lifecycle")
            .field("ph", "i")
            .field("s", "t")
            .field("pid", pid)
            .field("tid", tid_of(ev.subject))
            .field("ts", ev.tick)
            .end_object();
        break;
      }
      case TraceKind::kLog: {
        w.begin_object()
            .field("name", ev.text)
            .field("cat", "log")
            .field("ph", "i")
            .field("s", "t")
            .field("pid", pid)
            .field("tid", tid_of(ev.subject))
            .field("ts", ev.tick)
            .end_object();
        break;
      }
      default:
        break;  // attr writes and ignored events stay out of the viewer
    }
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string export_noc_stats_json(const noc::FabricStats& stats) {
  // The stats document is assembled by the one cosim adapter; this function
  // is now only the string-returning convenience around it.
  return cosim::to_json(stats).dump();
}

}  // namespace xtsoc::perf
