#include "xtsoc/perf/traceexport.hpp"

#include <map>
#include <sstream>

namespace xtsoc::perf {

using runtime::InstanceHandle;
using runtime::TraceEvent;
using runtime::TraceKind;

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string export_chrome_trace(const runtime::Trace& trace,
                                const xtuml::Domain& domain,
                                const std::string& process_name, int pid) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (!first) os << ',';
    first = false;
    os << body;
  };

  // Process metadata.
  {
    std::ostringstream e;
    e << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"args\":{\"name\":\"" << json_escape(process_name) << "\"}}";
    emit(e.str());
  }

  // Thread (= instance) metadata, assigned on first appearance.
  std::map<InstanceHandle, int> tids;
  auto tid_of = [&](const InstanceHandle& h) {
    auto it = tids.find(h);
    if (it != tids.end()) return it->second;
    int tid = static_cast<int>(tids.size()) + 1;
    tids[h] = tid;
    std::string name = h.is_null()
                           ? std::string("<external>")
                           : domain.cls(h.cls).name + "#" +
                                 std::to_string(h.index);
    std::ostringstream e;
    e << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << json_escape(name)
      << "\"}}";
    emit(e.str());
    return tid;
  };

  for (const TraceEvent& ev : trace.events()) {
    switch (ev.kind) {
      case TraceKind::kDispatch: {
        const xtuml::ClassDef& cls = domain.cls(ev.subject.cls);
        std::ostringstream e;
        e << "{\"name\":\"" << json_escape(cls.event(ev.event).name)
          << "\",\"cat\":\"dispatch\",\"ph\":\"X\",\"pid\":" << pid
          << ",\"tid\":" << tid_of(ev.subject) << ",\"ts\":" << ev.tick
          << ",\"dur\":1,\"args\":{\"to_state\":\""
          << json_escape(cls.state(ev.to_state).name) << "\"}}";
        emit(e.str());
        break;
      }
      case TraceKind::kSend: {
        const xtuml::ClassDef& cls = domain.cls(ev.subject.cls);
        std::ostringstream e;
        e << "{\"name\":\"send " << json_escape(cls.event(ev.event).name)
          << "\",\"cat\":\"signal\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
          << ",\"tid\":" << tid_of(ev.peer) << ",\"ts\":" << ev.tick << "}";
        emit(e.str());
        break;
      }
      case TraceKind::kCreate:
      case TraceKind::kDelete: {
        std::ostringstream e;
        e << "{\"name\":\"" << to_string(ev.kind)
          << "\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
          << pid << ",\"tid\":" << tid_of(ev.subject) << ",\"ts\":" << ev.tick
          << "}";
        emit(e.str());
        break;
      }
      case TraceKind::kLog: {
        std::ostringstream e;
        e << "{\"name\":\"" << json_escape(ev.text)
          << "\",\"cat\":\"log\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
          << ",\"tid\":" << tid_of(ev.subject) << ",\"ts\":" << ev.tick << "}";
        emit(e.str());
        break;
      }
      default:
        break;  // attr writes and ignored events stay out of the viewer
    }
  }
  os << "]}";
  return os.str();
}

std::string export_noc_stats_json(const noc::FabricStats& stats) {
  std::ostringstream os;
  os << "{\"mesh\":{\"width\":" << stats.width << ",\"height\":" << stats.height
     << "},\"cycles\":" << stats.cycles
     << ",\"frames_sent\":" << stats.frames_sent
     << ",\"frames_delivered\":" << stats.frames_delivered
     << ",\"flits_injected\":" << stats.flits_injected
     << ",\"payload_bytes\":" << stats.payload_bytes;

  os << ",\"routers\":[";
  for (std::size_t i = 0; i < stats.routers.size(); ++i) {
    const noc::RouterStats& r = stats.routers[i];
    if (i != 0) os << ',';
    os << "{\"tile\":" << i << ",\"x\":" << (stats.width == 0 ? 0 : static_cast<int>(i) % stats.width)
       << ",\"y\":" << (stats.width == 0 ? 0 : static_cast<int>(i) / stats.width)
       << ",\"flits_routed\":" << r.flits_routed
       << ",\"flits_ejected\":" << r.flits_ejected
       << ",\"buffer_high_water\":" << r.buffer_high_water << '}';
  }
  os << ']';

  os << ",\"links\":[";
  bool first_link = true;
  for (const noc::LinkStats& l : stats.links) {
    if (!first_link) os << ',';
    first_link = false;
    os << "{\"from_tile\":" << l.from_tile << ",\"dir\":\""
       << noc::to_string(l.dir) << "\",\"flits\":" << l.flits
       << ",\"utilization\":" << stats.link_utilization(l) << '}';
  }
  os << ']';

  os << ",\"latency\":{\"count\":" << stats.latency.count
     << ",\"mean\":" << stats.latency.mean() << ",\"min\":" << stats.latency.min
     << ",\"max\":" << stats.latency.max << ",\"buckets\":[";
  bool first_bucket = true;
  for (int b = 0; b < noc::LatencyHistogram::kBuckets; ++b) {
    if (stats.latency.buckets[static_cast<std::size_t>(b)] == 0) continue;
    if (!first_bucket) os << ',';
    first_bucket = false;
    os << "{\"lo\":" << (1ULL << b) << ",\"count\":"
       << stats.latency.buckets[static_cast<std::size_t>(b)] << '}';
  }
  os << "]}}";
  return os.str();
}

}  // namespace xtsoc::perf
