// Performance measurement over executions.
//
// The paper's §1 motivation: "Once the prototype runs, it is possible to
// measure the performance, which may require changing the partition."
// PerfReport is that measurement; suggest_repartition() closes the loop by
// proposing which mark to move next.
#pragma once

#include <string>
#include <vector>

#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/noc/fabric.hpp"
#include "xtsoc/runtime/executor.hpp"

namespace xtsoc::perf {

struct ClassPerf {
  ClassId cls;
  std::string name;
  marks::Target target = marks::Target::kSoftware;
  std::uint64_t dispatches = 0;
  std::uint64_t ops = 0;  ///< action work (interpreter ops) in this class
  std::uint64_t live_instances = 0;
};

struct PerfReport {
  std::uint64_t cycles = 0;
  std::uint64_t hw_dispatches = 0;  ///< summed over all hardware tiles
  std::uint64_t sw_dispatches = 0;
  std::uint64_t bus_frames = 0;  ///< interconnect frames (bus or NoC)
  std::uint64_t bus_bytes = 0;   ///< interconnect payload bytes
  std::uint64_t hw_delta_cycles = 0;
  std::uint64_t sw_task_steps = 0;
  std::size_t hw_queue_high_water = 0;  ///< fabric FIFO sizing number
  std::size_t sw_queue_high_water = 0;  ///< software mailbox sizing number
  std::vector<ClassPerf> classes;
  /// Present only in mesh mode: per-router/per-link NoC measurements.
  bool has_noc = false;
  noc::FabricStats noc;

  /// Dispatches per hardware cycle on the software side — the software
  /// saturation signal that motivates moving work into hardware.
  double sw_load() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(sw_dispatches) /
                             static_cast<double>(cycles);
  }

  /// Fixed-width table for terminals and EXPERIMENTS.md.
  std::string to_table() const;
};

/// Snapshot measurements from a finished (or paused) co-simulation.
PerfReport measure(const cosim::CoSimulation& cosim);

struct RepartitionAdvice {
  bool has_suggestion = false;
  std::string class_name;        ///< class whose mark should move
  marks::Target move_to = marks::Target::kHardware;
  std::string rationale;
};

/// Heuristic advisor: the busiest software class is the hardware candidate
/// (and a hardware class with negligible traffic could return to software).
RepartitionAdvice suggest_repartition(const PerfReport& report);

}  // namespace xtsoc::perf
