// Trace export to the Chrome trace-event JSON format (chrome://tracing,
// Perfetto): every instance becomes a "thread", dispatches become duration
// events, sends become flow-style instant events. Drop the output in a
// .json file and load it in any trace viewer.
#pragma once

#include <string>

#include "xtsoc/noc/fabric.hpp"
#include "xtsoc/runtime/trace.hpp"
#include "xtsoc/xtuml/model.hpp"

namespace xtsoc::perf {

/// Render `trace` as Chrome trace-event JSON. `process_name` labels the
/// trace's "process" (e.g. "abstract", "hw", "sw"); `pid` separates several
/// exports merged into one file (concatenate the `traceEvents` arrays).
std::string export_chrome_trace(const runtime::Trace& trace,
                                const xtuml::Domain& domain,
                                const std::string& process_name, int pid = 1);

/// Render NoC fabric statistics as a standalone JSON document: mesh shape,
/// aggregate counters, per-router flit counts and buffer high-water marks,
/// per-link flit counts with utilization, and the end-to-end frame latency
/// histogram (only buckets with samples are listed).
std::string export_noc_stats_json(const noc::FabricStats& stats);

}  // namespace xtsoc::perf
