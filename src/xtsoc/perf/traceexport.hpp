// Trace export to the Chrome trace-event JSON format (chrome://tracing,
// Perfetto): every instance becomes a "thread", dispatches become duration
// events, sends become flow-style instant events. Drop the output in a
// .json file and load it in any trace viewer.
#pragma once

#include <string>

#include "xtsoc/runtime/trace.hpp"
#include "xtsoc/xtuml/model.hpp"

namespace xtsoc::perf {

/// Render `trace` as Chrome trace-event JSON. `process_name` labels the
/// trace's "process" (e.g. "abstract", "hw", "sw"); `pid` separates several
/// exports merged into one file (concatenate the `traceEvents` arrays).
std::string export_chrome_trace(const runtime::Trace& trace,
                                const xtuml::Domain& domain,
                                const std::string& process_name, int pid = 1);

}  // namespace xtsoc::perf
