// Wire format of coherence frames on the noc::Fabric.
//
// Header-only on purpose: noc::TrafficGen's `memory` pattern emits frames in
// this format to stress the directory without linking against xtsoc_mem, and
// the cosim channel layer demuxes on is_coherence() without knowing anything
// else about the protocol.
//
// Opcodes occupy the top of the 32-bit space (upper 10 bits set) so they can
// never collide with model signal opcodes (small event indices) or synthetic
// traffic opcodes ((src << 16) | seq with src < 0x3FF mesh tiles).
//
// Payload layout (little-endian):
//   [0]      message type (Msg)
//   [1]      aux — granted MESI state for kData, downgrade flag for
//            kInv/kInvAck/kPutM, 0 otherwise
//   [2..3]   source tile (u16)
//   [4..11]  line address (i64)
//   [12..]   deterministic filler up to the data size for line-carrying
//            messages (kData, kPutM), so flit segmentation sees real
//            line-sized payloads.
#pragma once

#include <cstdint>
#include <vector>

namespace xtsoc::mem::wire {

inline constexpr std::uint32_t kOpcodeMask = 0xFFC00000u;
inline constexpr std::uint32_t kOpcodeBase = 0xFFC00000u;
inline constexpr std::size_t kHeaderBytes = 12;

enum Msg : std::uint8_t {
  kGetS = 1,    ///< cache -> directory: read miss
  kGetM = 2,    ///< cache -> directory: write miss / upgrade
  kPutM = 3,    ///< cache -> directory: dirty writeback (line-sized)
  kInv = 4,     ///< directory -> cache: invalidate (aux 1: downgrade to S)
  kInvAck = 5,  ///< cache -> directory: acknowledged (aux 1: kept an S copy)
  kData = 6,    ///< directory -> cache: fill response (line-sized)
};

inline bool is_coherence(std::uint32_t opcode) {
  return (opcode & kOpcodeMask) == kOpcodeBase;
}

inline std::uint32_t opcode(Msg type) {
  return kOpcodeBase | static_cast<std::uint32_t>(type);
}

inline std::vector<std::uint8_t> encode(Msg type, std::uint8_t aux,
                                        int src_tile, std::int64_t line,
                                        std::size_t pad_to = 0) {
  std::size_t size = kHeaderBytes < pad_to ? pad_to : kHeaderBytes;
  std::vector<std::uint8_t> p(size, 0);
  p[0] = static_cast<std::uint8_t>(type);
  p[1] = aux;
  p[2] = static_cast<std::uint8_t>(src_tile & 0xFF);
  p[3] = static_cast<std::uint8_t>((src_tile >> 8) & 0xFF);
  std::uint64_t u = static_cast<std::uint64_t>(line);
  for (int i = 0; i < 8; ++i) {
    p[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((u >> (8 * i)) & 0xFF);
  }
  for (std::size_t i = kHeaderBytes; i < size; ++i) {
    p[i] = static_cast<std::uint8_t>((u + i * 37) & 0xFF);
  }
  return p;
}

struct Decoded {
  Msg type = kGetS;
  std::uint8_t aux = 0;
  int src_tile = 0;
  std::int64_t line = 0;
};

inline Decoded decode(const std::vector<std::uint8_t>& p) {
  Decoded d;
  if (p.size() < kHeaderBytes) return d;
  d.type = static_cast<Msg>(p[0]);
  d.aux = p[1];
  d.src_tile = static_cast<int>(p[2]) | (static_cast<int>(p[3]) << 8);
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u |= static_cast<std::uint64_t>(p[4 + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  d.line = static_cast<std::int64_t>(u);
  return d;
}

}  // namespace xtsoc::mem::wire
