#include "xtsoc/mem/mem.hpp"

#include <algorithm>

#include "xtsoc/noc/fabric.hpp"
#include "xtsoc/snap/io.hpp"

namespace xtsoc::mem {

namespace {

int log2_floor(int v) {
  int s = 0;
  while ((1 << (s + 1)) <= v) ++s;
  return s;
}

}  // namespace

System::System(const MemConfig& config, noc::Fabric* fabric)
    : config_(config), fabric_(fabric) {
  line_shift_ = log2_floor(config_.line_bytes < 1 ? 1 : config_.line_bytes);
}

System::~System() = default;

int System::add_domain(int tile, const runtime::Executor* exec) {
  int tag = static_cast<int>(domains_.size());
  Domain d;
  d.tile = tile;
  d.exec = exec;
  domains_.push_back(std::move(d));
  ports_.push_back(std::make_unique<Port>(this, tag, exec));
  tag_of_tile_[tile] = tag;
  // Every executor tile owns a (possibly degenerate) private cache.
  TileCache& c = caches_[tile];
  if (cached()) {
    c.lines.assign(static_cast<std::size_t>(config_.sets) *
                       static_cast<std::size_t>(config_.ways),
                   CacheLine{});
  }
  return tag;
}

runtime::MemoryPort* System::port(int tag) {
  return ports_.at(static_cast<std::size_t>(tag)).get();
}

// --- functional layer --------------------------------------------------------

std::int64_t System::read(int tag, std::uint64_t cycle, std::int64_t addr) {
  Domain& d = domains_.at(static_cast<std::size_t>(tag));
  d.accesses.push_back(AccessRec{cycle, addr, 0});
  // Own buffered stores win (store-to-load forwarding).
  for (auto it = d.store_buf.rbegin(); it != d.store_buf.rend(); ++it) {
    if (it->addr == addr) return it->value;
  }
  auto li = log_.find(addr);
  if (li != log_.end()) {
    // Newest-first: the first version that is globally visible at `cycle`,
    // or that this domain wrote itself (its own stores never un-happen).
    for (auto it = li->second.rbegin(); it != li->second.rend(); ++it) {
      if (it->vis <= cycle || it->tag == tag) return it->value;
    }
  }
  return 0;
}

void System::write(int tag, std::uint64_t cycle, std::int64_t addr,
                   std::int64_t value) {
  Domain& d = domains_.at(static_cast<std::size_t>(tag));
  d.accesses.push_back(AccessRec{cycle, addr, 1});
  d.store_buf.push_back(
      StoreRec{addr, value, cycle + config_.lookahead, d.seq++});
}

void System::append_visible(std::uint64_t horizon) {
  // Collect every buffered store that becomes visible within the horizon,
  // across all domains, and append them to the log in the one global order
  // that every threads x window configuration agrees on.
  std::vector<std::pair<int, StoreRec>> batch;
  for (int tag = 0; tag < static_cast<int>(domains_.size()); ++tag) {
    auto& buf = domains_[static_cast<std::size_t>(tag)].store_buf;
    std::size_t n = 0;
    while (n < buf.size() && buf[n].vis <= horizon) ++n;
    for (std::size_t i = 0; i < n; ++i) batch.emplace_back(tag, buf[i]);
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  std::stable_sort(batch.begin(), batch.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second.vis != b.second.vis)
                       return a.second.vis < b.second.vis;
                     if (a.first != b.first) return a.first < b.first;
                     return a.second.seq < b.second.seq;
                   });
  for (const auto& [tag, s] : batch) {
    log_[s.addr].push_back(Version{s.value, s.vis, tag, s.seq});
  }
}

// --- timing layer ------------------------------------------------------------

std::int64_t System::line_of(std::int64_t addr) const {
  return addr >> line_shift_;
}

void System::send(int src, int dst, wire::Msg type, std::uint8_t aux,
                  std::int64_t line, bool data_sized, std::uint64_t cycle,
                  std::uint64_t extra) {
  std::size_t pad =
      data_sized ? static_cast<std::size_t>(config_.line_bytes) : 0;
  std::vector<std::uint8_t> payload = wire::encode(type, aux, src, line, pad);
  ++stats_.coh_frames;
  stats_.coh_payload_bytes += payload.size();
  std::size_t chunk = static_cast<std::size_t>(
      config_.flit_bytes < 1 ? 1 : config_.flit_bytes);
  stats_.coh_flits +=
      payload.empty() ? 1 : (payload.size() + chunk - 1) / chunk;
  fabric_->send_frame(src, dst, wire::opcode(type), std::move(payload), cycle,
                      extra);
}

std::uint64_t System::dram_access(std::uint64_t cycle, std::int64_t line,
                                  bool is_write) {
  std::uint64_t u = static_cast<std::uint64_t>(line);
  DramBank& bank = banks_[u & 7];
  std::int64_t row = static_cast<std::int64_t>(u >> 3 >> 6);
  std::uint64_t start = cycle > bank.busy_until ? cycle : bank.busy_until;
  std::uint64_t lat;
  if (bank.open_row == row) {
    lat = static_cast<std::uint64_t>(config_.t_cas);
    ++stats_.dram_row_hits;
  } else if (bank.open_row < 0) {
    lat = static_cast<std::uint64_t>(config_.t_rcd + config_.t_cas);
  } else {
    lat = static_cast<std::uint64_t>(config_.t_rp + config_.t_rcd +
                                     config_.t_cas);
    ++stats_.dram_row_conflicts;
  }
  bank.open_row = row;
  bank.busy_until = start + lat;
  if (is_write) {
    ++stats_.dram_writes;
  } else {
    ++stats_.dram_reads;
  }
  return start + lat - cycle;
}

int System::find_way(TileCache& c, std::int64_t line) const {
  std::size_t set = static_cast<std::size_t>(
      static_cast<std::uint64_t>(line) &
      static_cast<std::uint64_t>(config_.sets - 1));
  std::size_t base = set * static_cast<std::size_t>(config_.ways);
  for (int w = 0; w < config_.ways; ++w) {
    const CacheLine& cl = c.lines[base + static_cast<std::size_t>(w)];
    if (cl.state != kI && cl.line == line)
      return static_cast<int>(base) + w;
  }
  return -1;
}

int System::pick_victim(int tile, TileCache& c, std::int64_t line,
                        std::uint64_t cycle) {
  std::size_t set = static_cast<std::size_t>(
      static_cast<std::uint64_t>(line) &
      static_cast<std::uint64_t>(config_.sets - 1));
  std::size_t base = set * static_cast<std::size_t>(config_.ways);
  int victim = static_cast<int>(base);
  for (int w = 0; w < config_.ways; ++w) {
    CacheLine& cl = c.lines[base + static_cast<std::size_t>(w)];
    if (cl.state == kI) return static_cast<int>(base) + w;
    if (cl.lru < c.lines[static_cast<std::size_t>(victim)].lru)
      victim = static_cast<int>(base) + w;
  }
  CacheLine& v = c.lines[static_cast<std::size_t>(victim)];
  ++stats_.evictions;
  if (v.state == kM) {
    ++stats_.writebacks;
    send(tile, config_.dram_tile, wire::kPutM, 0, v.line, true, cycle, 0);
  }
  // E and S lines drop silently; the directory resyncs on the next request.
  v.state = kI;
  v.line = -1;
  return victim;
}

void System::process_access(int tile, const AccessRec& rec,
                            std::uint64_t cycle) {
  TileCache& c = caches_[tile];
  std::int64_t line = line_of(rec.addr);
  int way = cached() ? find_way(c, line) : -1;
  if (way >= 0) {
    CacheLine& cl = c.lines[static_cast<std::size_t>(way)];
    bool hit = rec.is_write == 0 || cl.state == kM || cl.state == kE;
    if (hit) {
      if (rec.is_write != 0) cl.state = kM;  // E -> M is a silent upgrade
      cl.lru = ++c.lru_tick;
      ++stats_.hits;
      stats_.load_use_sum +=
          (cycle - rec.cycle) + static_cast<std::uint64_t>(config_.hit_latency);
      ++stats_.load_use_count;
      return;
    }
  }
  // Miss (including a store to a Shared line: upgrade). One MSHR per tile:
  // anything behind an outstanding miss waits in issue order.
  if (c.mshr.valid) {
    c.blocked.push_back(rec);
    return;
  }
  ++stats_.misses;
  c.mshr.valid = true;
  c.mshr.line = line;
  c.mshr.want = rec.is_write != 0 ? kM : kS;
  c.mshr.is_write = rec.is_write;
  c.mshr.issue = rec.cycle;
  c.mshr.way = way >= 0 ? way : (cached() ? pick_victim(tile, c, line, cycle)
                                          : -1);
  send(tile, config_.dram_tile,
       rec.is_write != 0 ? wire::kGetM : wire::kGetS, 0, line, false, cycle,
       0);
}

void System::drain_blocked(int tile, std::uint64_t cycle) {
  TileCache& c = caches_[tile];
  while (!c.mshr.valid && !c.blocked.empty()) {
    AccessRec rec = c.blocked.front();
    c.blocked.pop_front();
    process_access(tile, rec, cycle);
  }
}

void System::cache_handle(int tile, const wire::Decoded& msg,
                          std::uint64_t cycle) {
  TileCache& c = caches_[tile];
  switch (msg.type) {
  case wire::kData: {
    if (!c.mshr.valid || c.mshr.line != msg.line) return;  // stale
    if (cached() && c.mshr.way >= 0) {
      CacheLine& cl = c.lines[static_cast<std::size_t>(c.mshr.way)];
      cl.line = msg.line;
      cl.state =
          c.mshr.is_write != 0 ? static_cast<std::uint8_t>(kM) : msg.aux;
      cl.lru = ++c.lru_tick;
    }
    stats_.load_use_sum += (cycle - c.mshr.issue) +
                           static_cast<std::uint64_t>(config_.hit_latency);
    ++stats_.load_use_count;
    c.mshr.valid = false;
    drain_blocked(tile, cycle);
    return;
  }
  case wire::kInv: {
    // aux 0: invalidate (another tile wants Modified). aux 1: downgrade to
    // Shared (another tile wants to read) — the copy survives, and the ack
    // carries aux 1 so the directory keeps this tile in the sharer list.
    int way = cached() ? find_way(c, msg.line) : -1;
    const bool down = msg.aux == 1;
    if (way >= 0) {
      CacheLine& cl = c.lines[static_cast<std::size_t>(way)];
      if (!down) ++stats_.invalidations;
      if (cl.state == kM) {
        ++stats_.writebacks;
        send(tile, config_.dram_tile, wire::kPutM, msg.aux, msg.line, true,
             cycle, 0);
      } else {
        send(tile, config_.dram_tile, wire::kInvAck, msg.aux, msg.line, false,
             cycle, 0);
      }
      cl.state = down ? kS : kI;
      if (!down) cl.line = -1;
    } else {
      // Already silently evicted (or uncached): acknowledge with aux 0 so
      // the directory stops tracking a copy that no longer exists.
      send(tile, config_.dram_tile, wire::kInvAck, 0, msg.line, false, cycle,
           0);
    }
    return;
  }
  default:
    return;  // directory-side message misrouted to a cache: drop
  }
}

void System::dir_grant(int req_tile, std::uint8_t granted, std::int64_t line,
                       std::uint64_t cycle) {
  DirLine& d = dir_[line];
  std::uint64_t extra = dram_access(cycle, line, false);
  if (granted == kS) {
    d.state = 1;
    auto it = std::lower_bound(d.sharers.begin(), d.sharers.end(), req_tile);
    if (it == d.sharers.end() || *it != req_tile) d.sharers.insert(it, req_tile);
  } else {
    d.state = 2;
    d.sharers.assign(1, req_tile);
  }
  send(config_.dram_tile, req_tile, wire::kData, granted, line, true, cycle,
       extra);
}

void System::dir_request(int req_tile, std::uint8_t type, std::int64_t line,
                         std::uint64_t cycle) {
  DirLine& d = dir_[line];
  if (d.busy) {
    d.queue.push_back(DirPending{req_tile, type, 0});
    return;
  }
  bool want_m = type == wire::kGetM;
  if (d.state == 0) {
    // No cached copy anywhere: a load gets Exclusive, a store Modified.
    dir_grant(req_tile, want_m ? kM : kE, line, cycle);
    return;
  }
  if (d.state == 1) {
    if (!want_m) {
      dir_grant(req_tile, kS, line, cycle);
      return;
    }
    // Upgrade: invalidate every other sharer, then grant M.
    std::vector<int> others;
    for (int s : d.sharers) {
      if (s != req_tile) others.push_back(s);
    }
    if (others.empty()) {
      dir_grant(req_tile, kM, line, cycle);
      return;
    }
    for (int s : others) {
      send(config_.dram_tile, s, wire::kInv, 0, line, false, cycle, 0);
    }
    d.busy = true;
    d.pending = DirPending{req_tile, type, static_cast<int>(others.size())};
    return;
  }
  // Exclusive/Modified at some owner.
  int owner = d.sharers.empty() ? req_tile : d.sharers.front();
  if (owner == req_tile) {
    // The owner silently dropped an E line and is asking again.
    dir_grant(req_tile, want_m ? kM : kE, line, cycle);
    return;
  }
  // A writer evicts the owner (aux 0); a reader downgrades it to Shared
  // (aux 1), flushing any dirty data, and both end up with S copies.
  send(config_.dram_tile, owner, wire::kInv, want_m ? 0 : 1, line, false,
       cycle, 0);
  d.busy = true;
  d.pending = DirPending{req_tile, type, 1};
}

void System::dir_complete(std::int64_t line, std::uint64_t cycle) {
  DirLine& d = dir_[line];
  DirPending p = d.pending;
  d.busy = false;
  if (p.type == wire::kGetM) {
    // Every other copy was invalidated; the requester is the sole holder.
    d.state = 0;
    d.sharers.clear();
    dir_grant(p.req_tile, kM, line, cycle);
  } else {
    // Downgrade path: sharers that acked with aux 1 kept S copies (they
    // were not erased), so the requester joins them in Shared.
    dir_grant(p.req_tile, d.sharers.empty() ? kE : kS, line, cycle);
  }
  while (!d.busy && !d.queue.empty()) {
    DirPending next = d.queue.front();
    d.queue.pop_front();
    dir_request(next.req_tile, next.type, line, cycle);
  }
}

void System::dir_handle(const wire::Decoded& msg, std::uint64_t cycle) {
  switch (msg.type) {
  case wire::kGetS:
  case wire::kGetM:
    dir_request(msg.src_tile, msg.type, msg.line, cycle);
    return;
  case wire::kPutM: {
    DirLine& d = dir_[msg.line];
    dram_access(cycle, msg.line, true);
    if (d.busy) {
      // The owner's flush doubles as its invalidation (or downgrade) ack;
      // aux 1 means it kept a Shared copy, so it stays a sharer.
      if (msg.aux != 1) {
        d.sharers.erase(
            std::remove(d.sharers.begin(), d.sharers.end(), msg.src_tile),
            d.sharers.end());
      }
      if (--d.pending.acks_left <= 0) dir_complete(msg.line, cycle);
      return;
    }
    // Voluntary eviction writeback.
    if (d.state == 2 && !d.sharers.empty() &&
        d.sharers.front() == msg.src_tile) {
      d.state = 0;
      d.sharers.clear();
    }
    return;
  }
  case wire::kInvAck: {
    DirLine& d = dir_[msg.line];
    if (!d.busy) return;  // late ack for an already-resolved transaction
    if (msg.aux != 1) {
      d.sharers.erase(
          std::remove(d.sharers.begin(), d.sharers.end(), msg.src_tile),
          d.sharers.end());
    }
    if (--d.pending.acks_left <= 0) dir_complete(msg.line, cycle);
    return;
  }
  default:
    return;  // cache-side message at the directory: drop
  }
}

void System::tick(std::uint64_t cycle, const std::vector<Incoming>& delivered) {
  // 1. Cache-side frames the channels drained this cycle, in tag order.
  for (const Incoming& in : delivered) {
    cache_handle(in.dst_tile, wire::decode(in.payload), cycle);
  }
  // 2. The directory tile has no executor, so the directory is its NIC.
  for (noc::Delivery& del : fabric_->pop_due(config_.dram_tile, cycle)) {
    if (!wire::is_coherence(del.opcode)) continue;
    dir_handle(wire::decode(del.payload), cycle);
  }
  // 3. Consume access records stamped at or before `cycle`, merged across
  // domains in (stamp, tag, issue order) — the same serial order at any
  // threads x window setting.
  for (;;) {
    std::uint64_t best = 0;
    int best_tag = -1;
    for (int t = 0; t < static_cast<int>(domains_.size()); ++t) {
      auto& q = domains_[static_cast<std::size_t>(t)].accesses;
      if (q.empty() || q.front().cycle > cycle) continue;
      if (best_tag < 0 || q.front().cycle < best) {
        best = q.front().cycle;
        best_tag = t;
      }
    }
    if (best_tag < 0) break;
    Domain& d = domains_[static_cast<std::size_t>(best_tag)];
    AccessRec rec = d.accesses.front();
    d.accesses.pop_front();
    if (rec.is_write != 0) {
      ++stats_.stores;
    } else {
      ++stats_.loads;
    }
    process_access(d.tile, rec, cycle);
  }
}

bool System::idle() const {
  for (const auto& [tile, c] : caches_) {
    if (c.mshr.valid || !c.blocked.empty()) return false;
  }
  for (const auto& [line, d] : dir_) {
    if (d.busy || !d.queue.empty()) return false;
  }
  for (const Domain& d : domains_) {
    if (!d.accesses.empty()) return false;
  }
  return true;
}

// --- checkpointing -----------------------------------------------------------

void System::save_state(snap::Writer& w) const {
  w.u64(domains_.size());
  for (const Domain& d : domains_) {
    w.u64(static_cast<std::uint64_t>(d.tile));
    w.u64(d.seq);
    w.u64(d.store_buf.size());
    for (const StoreRec& s : d.store_buf) {
      w.i64(s.addr);
      w.i64(s.value);
      w.u64(s.vis);
      w.u64(s.seq);
    }
    w.u64(d.accesses.size());
    for (const AccessRec& a : d.accesses) {
      w.u64(a.cycle);
      w.i64(a.addr);
      w.u8(a.is_write);
    }
  }
  w.u64(log_.size());
  for (const auto& [addr, versions] : log_) {
    w.i64(addr);
    w.u64(versions.size());
    for (const Version& v : versions) {
      w.i64(v.value);
      w.u64(v.vis);
      w.u64(static_cast<std::uint64_t>(v.tag));
      w.u64(v.seq);
    }
  }
  w.u64(caches_.size());
  for (const auto& [tile, c] : caches_) {
    w.u64(static_cast<std::uint64_t>(tile));
    w.u64(c.lru_tick);
    w.u64(c.lines.size());
    for (const CacheLine& cl : c.lines) {
      w.i64(cl.line);
      w.u8(cl.state);
      w.u64(cl.lru);
    }
    w.u8(c.mshr.valid ? 1 : 0);
    w.i64(c.mshr.line);
    w.u8(c.mshr.want);
    w.u8(c.mshr.is_write);
    w.u64(c.mshr.issue);
    w.i64(c.mshr.way);
    w.u64(c.blocked.size());
    for (const AccessRec& a : c.blocked) {
      w.u64(a.cycle);
      w.i64(a.addr);
      w.u8(a.is_write);
    }
  }
  w.u64(dir_.size());
  for (const auto& [line, d] : dir_) {
    w.i64(line);
    w.u8(d.state);
    w.u64(d.sharers.size());
    for (int s : d.sharers) w.u64(static_cast<std::uint64_t>(s));
    w.u8(d.busy ? 1 : 0);
    w.u64(static_cast<std::uint64_t>(d.pending.req_tile));
    w.u8(d.pending.type);
    w.i64(d.pending.acks_left);
    w.u64(d.queue.size());
    for (const DirPending& q : d.queue) {
      w.u64(static_cast<std::uint64_t>(q.req_tile));
      w.u8(q.type);
    }
  }
  for (const DramBank& b : banks_) {
    w.i64(b.open_row);
    w.u64(b.busy_until);
  }
  const std::uint64_t counters[] = {
      stats_.loads,          stats_.stores,        stats_.hits,
      stats_.misses,         stats_.evictions,     stats_.writebacks,
      stats_.invalidations,  stats_.dram_reads,    stats_.dram_writes,
      stats_.dram_row_hits,  stats_.dram_row_conflicts,
      stats_.coh_frames,     stats_.coh_flits,     stats_.coh_payload_bytes,
      stats_.load_use_sum,   stats_.load_use_count,
  };
  for (std::uint64_t c : counters) w.u64(c);
}

void System::load_state(snap::Reader& r) {
  std::uint64_t ndom = r.u64();
  if (ndom != domains_.size()) {
    throw snap::SnapError("memory snapshot domain count mismatch");
  }
  for (Domain& d : domains_) {
    d.tile = static_cast<int>(r.u64());
    d.seq = r.u64();
    d.store_buf.clear();
    std::uint64_t nbuf = r.u64();
    for (std::uint64_t i = 0; i < nbuf; ++i) {
      StoreRec s;
      s.addr = r.i64();
      s.value = r.i64();
      s.vis = r.u64();
      s.seq = r.u64();
      d.store_buf.push_back(s);
    }
    d.accesses.clear();
    std::uint64_t nacc = r.u64();
    for (std::uint64_t i = 0; i < nacc; ++i) {
      AccessRec a;
      a.cycle = r.u64();
      a.addr = r.i64();
      a.is_write = r.u8();
      d.accesses.push_back(a);
    }
  }
  log_.clear();
  std::uint64_t nlog = r.u64();
  for (std::uint64_t i = 0; i < nlog; ++i) {
    std::int64_t addr = r.i64();
    std::uint64_t nver = r.u64();
    auto& versions = log_[addr];
    for (std::uint64_t j = 0; j < nver; ++j) {
      Version v;
      v.value = r.i64();
      v.vis = r.u64();
      v.tag = static_cast<int>(r.u64());
      v.seq = r.u64();
      versions.push_back(v);
    }
  }
  caches_.clear();
  std::uint64_t ncache = r.u64();
  for (std::uint64_t i = 0; i < ncache; ++i) {
    int tile = static_cast<int>(r.u64());
    TileCache& c = caches_[tile];
    c.lru_tick = r.u64();
    std::uint64_t nlines = r.u64();
    c.lines.assign(nlines, CacheLine{});
    for (CacheLine& cl : c.lines) {
      cl.line = r.i64();
      cl.state = r.u8();
      cl.lru = r.u64();
    }
    c.mshr.valid = r.u8() != 0;
    c.mshr.line = r.i64();
    c.mshr.want = r.u8();
    c.mshr.is_write = r.u8();
    c.mshr.issue = r.u64();
    c.mshr.way = static_cast<int>(r.i64());
    std::uint64_t nblk = r.u64();
    c.blocked.clear();
    for (std::uint64_t j = 0; j < nblk; ++j) {
      AccessRec a;
      a.cycle = r.u64();
      a.addr = r.i64();
      a.is_write = r.u8();
      c.blocked.push_back(a);
    }
  }
  dir_.clear();
  std::uint64_t ndir = r.u64();
  for (std::uint64_t i = 0; i < ndir; ++i) {
    std::int64_t line = r.i64();
    DirLine& d = dir_[line];
    d.state = r.u8();
    std::uint64_t nsh = r.u64();
    d.sharers.clear();
    for (std::uint64_t j = 0; j < nsh; ++j) {
      d.sharers.push_back(static_cast<int>(r.u64()));
    }
    d.busy = r.u8() != 0;
    d.pending.req_tile = static_cast<int>(r.u64());
    d.pending.type = r.u8();
    d.pending.acks_left = static_cast<int>(r.i64());
    std::uint64_t nq = r.u64();
    d.queue.clear();
    for (std::uint64_t j = 0; j < nq; ++j) {
      DirPending q;
      q.req_tile = static_cast<int>(r.u64());
      q.type = r.u8();
      d.queue.push_back(q);
    }
  }
  for (DramBank& b : banks_) {
    b.open_row = r.i64();
    b.busy_until = r.u64();
  }
  std::uint64_t* counters[] = {
      &stats_.loads,          &stats_.stores,        &stats_.hits,
      &stats_.misses,         &stats_.evictions,     &stats_.writebacks,
      &stats_.invalidations,  &stats_.dram_reads,    &stats_.dram_writes,
      &stats_.dram_row_hits,  &stats_.dram_row_conflicts,
      &stats_.coh_frames,     &stats_.coh_flits,     &stats_.coh_payload_bytes,
      &stats_.load_use_sum,   &stats_.load_use_count,
  };
  for (std::uint64_t* c : counters) *c = r.u64();
}

}  // namespace xtsoc::mem
