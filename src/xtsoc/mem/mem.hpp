// xtsoc::mem — the mark-driven memory hierarchy.
//
// Marks choose the platform's storage exactly the way they choose its
// interconnect: `cache.*` domain marks pick per-tile private cache geometry,
// `dram.*` marks place and time a DRAM edge model, and no model text changes
// when they do. Mapped actions reach memory through the OAL `mem.read` /
// `mem.write` port; the hierarchy decides what that access *costs*, never
// what it *returns*.
//
// The subsystem is split into two layers with very different obligations:
//
//   * The FUNCTIONAL layer decides values. A store issued by domain `tag`
//     at cycle c becomes globally visible at c + L, where L is the mapped
//     system's lookahead (a pure function of the marks). Until then it
//     lives in the issuing domain's store buffer, where the domain's own
//     reads see it immediately (store-to-load forwarding). At every serial
//     point the cosim loop calls append_visible(horizon); stores whose
//     visibility cycle is within the horizon migrate into the global
//     version log, ordered by (visibility cycle, domain tag, sequence).
//     Reads scan the log newest-first for the first version that is either
//     visible at the reading cycle or the reader's own. Because L >= any
//     legal window and the log only changes at serial points, results are
//     byte-identical at any threads x window x faults setting.
//
//   * The TIMING layer decides costs, and only costs. Every access is also
//     recorded (cycle-stamped, per domain); System::tick(cycle) — called
//     once per cycle from the serial spine in both lockstep and windowed
//     modes — replays those records through per-tile MESI caches, a
//     directory at the DRAM tile, and a bank/row-aware DRAM model.
//     Coherence messages are real frames on the noc::Fabric (opcodes in
//     the reserved kCohOpcodeBase range), so they share flit segmentation,
//     credit flow and fault injection with model traffic. A dropped
//     coherence frame can starve the timing pipeline — counters stop
//     moving — but can never change a loaded value.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "xtsoc/mem/wire.hpp"
#include "xtsoc/runtime/executor.hpp"

namespace xtsoc::noc {
class Fabric;
}
namespace xtsoc::snap {
class Writer;
class Reader;
}  // namespace xtsoc::snap

namespace xtsoc::mem {

/// Mark-derived configuration (see mapping::MemSpec). `sets == 0` selects
/// uncached mode: every access is a miss serviced by the DRAM tile.
struct MemConfig {
  int dram_tile = 0;
  int sets = 0;        ///< cache sets per tile (power of two; 0 = uncached)
  int ways = 2;        ///< associativity (power of two)
  int line_bytes = 64; ///< cache line / DRAM burst size (power of two)
  int hit_latency = 1; ///< cycles for a cache hit
  int t_rcd = 2;       ///< DRAM activate-to-column delay
  int t_cas = 2;       ///< DRAM column access latency
  int t_rp = 2;        ///< DRAM precharge latency
  int flit_bytes = 4;  ///< fabric flit payload width (for flit accounting)
  std::uint64_t lookahead = 1;  ///< store visibility delay L
};

struct MemStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_row_hits = 0;
  std::uint64_t dram_row_conflicts = 0;
  std::uint64_t coh_frames = 0;
  std::uint64_t coh_flits = 0;
  std::uint64_t coh_payload_bytes = 0;
  std::uint64_t load_use_sum = 0;    ///< completed-access latency total
  std::uint64_t load_use_count = 0;  ///< completed accesses

  double mean_load_use() const {
    return load_use_count == 0
               ? 0.0
               : static_cast<double>(load_use_sum) /
                     static_cast<double>(load_use_count);
  }
};

class System {
public:
  System(const MemConfig& config, noc::Fabric* fabric);
  ~System();

  /// Register an executor domain living on `tile`. Tags are assigned in
  /// call order and must match the cosim serial schedule (hw domains
  /// ascending, then sw). `exec` supplies the cycle stamp for accesses.
  int add_domain(int tile, const runtime::Executor* exec);

  /// The runtime::MemoryPort to attach to domain `tag`'s executor.
  runtime::MemoryPort* port(int tag);

  // --- functional layer ------------------------------------------------------

  /// Value visible to `tag` at `cycle` (own buffer first, then the log,
  /// unwritten addresses read 0). Also records the access for the timing
  /// layer. Touches only domain-local state plus the read-only log, so
  /// parallel window phases may call it concurrently from distinct tags.
  std::int64_t read(int tag, std::uint64_t cycle, std::int64_t addr);

  /// Buffer a store; it becomes globally visible at cycle + L.
  void write(int tag, std::uint64_t cycle, std::int64_t addr,
             std::int64_t value);

  /// Serial point: migrate every buffered store with visibility <= horizon
  /// into the global log, ordered by (visibility, tag, sequence). Call with
  /// the last cycle about to be simulated before the next serial point.
  void append_visible(std::uint64_t horizon);

  // --- timing layer ----------------------------------------------------------

  /// One coherence frame delivered to an executor tile this cycle (the
  /// cosim loop drains these from the per-tile channels in tag order).
  struct Incoming {
    int dst_tile = 0;
    std::uint32_t opcode = 0;
    std::vector<std::uint8_t> payload;
  };

  /// Advance the observational model to `cycle`: apply delivered cache-side
  /// frames, drain the directory's own NIC, then consume access records
  /// stamped at or before `cycle` in (cycle, tag) order. Serial-spine only.
  void tick(std::uint64_t cycle, const std::vector<Incoming>& delivered);

  /// True when no miss is outstanding and no record is queued. Faults may
  /// keep this false forever (a lost response starves an MSHR); quiescence
  /// decisions must not depend on it.
  bool idle() const;

  const MemStats& stats() const { return stats_; }
  const MemConfig& config() const { return config_; }
  bool cached() const { return config_.sets > 0; }

  // --- checkpointing ---------------------------------------------------------
  /// Everything cycle-dependent: store buffers, the version log, cache
  /// arrays, MSHRs, directory state, DRAM timers, counters. The config is
  /// construction-owned (it comes from the marks).
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  struct StoreRec {
    std::int64_t addr = 0;
    std::int64_t value = 0;
    std::uint64_t vis = 0;  ///< cycle the store becomes globally visible
    std::uint64_t seq = 0;  ///< per-domain issue order
  };
  struct AccessRec {
    std::uint64_t cycle = 0;
    std::int64_t addr = 0;
    std::uint8_t is_write = 0;
  };
  struct Version {
    std::int64_t value = 0;
    std::uint64_t vis = 0;
    int tag = 0;
    std::uint64_t seq = 0;
  };

  class Port : public runtime::MemoryPort {
  public:
    Port(System* sys, int tag, const runtime::Executor* exec)
        : sys_(sys), tag_(tag), exec_(exec) {}
    std::int64_t read(std::int64_t addr) override {
      return sys_->read(tag_, exec_->now(), addr);
    }
    void write(std::int64_t addr, std::int64_t value) override {
      sys_->write(tag_, exec_->now(), addr, value);
    }

  private:
    System* sys_;
    int tag_;
    const runtime::Executor* exec_;
  };

  struct Domain {
    int tile = 0;
    const runtime::Executor* exec = nullptr;
    std::uint64_t seq = 0;
    std::vector<StoreRec> store_buf;  ///< ascending (vis, seq)
    std::deque<AccessRec> accesses;   ///< ascending cycle
  };

  // MESI line states.
  enum : std::uint8_t { kI = 0, kS = 1, kE = 2, kM = 3 };

  struct CacheLine {
    std::int64_t line = -1;  ///< line address (addr >> line bits), -1 invalid
    std::uint8_t state = kI;
    std::uint64_t lru = 0;
  };
  struct Mshr {
    bool valid = false;
    std::int64_t line = 0;
    std::uint8_t want = kS;  ///< kS for loads, kM for stores
    std::uint8_t is_write = 0;
    std::uint64_t issue = 0;
    int way = 0;  ///< reserved victim way (cached mode)
  };
  struct TileCache {
    std::vector<CacheLine> lines;  ///< sets * ways (empty when uncached)
    Mshr mshr;
    std::deque<AccessRec> blocked;  ///< accesses waiting behind the miss
    std::uint64_t lru_tick = 0;
  };

  struct DirPending {
    int req_tile = 0;
    std::uint8_t type = wire::kGetS;
    int acks_left = 0;
  };
  struct DirLine {
    std::uint8_t state = 0;    ///< 0 uncached, 1 shared, 2 modified
    std::vector<int> sharers;  ///< sorted sharer tiles / [owner] if modified
    bool busy = false;
    DirPending pending;
    std::deque<DirPending> queue;  ///< deferred requests (acks_left unused)
  };

  struct DramBank {
    std::int64_t open_row = -1;
    std::uint64_t busy_until = 0;
  };

  std::int64_t line_of(std::int64_t addr) const;
  void send(int src, int dst, wire::Msg type, std::uint8_t aux,
            std::int64_t line, bool data_sized, std::uint64_t cycle,
            std::uint64_t extra);
  std::uint64_t dram_access(std::uint64_t cycle, std::int64_t line,
                            bool is_write);
  void process_access(int tile, const AccessRec& rec, std::uint64_t cycle);
  void cache_handle(int tile, const wire::Decoded& msg, std::uint64_t cycle);
  void dir_handle(const wire::Decoded& msg, std::uint64_t cycle);
  void dir_request(int req_tile, std::uint8_t type, std::int64_t line,
                   std::uint64_t cycle);
  void dir_grant(int req_tile, std::uint8_t granted, std::int64_t line,
                 std::uint64_t cycle);
  void dir_complete(std::int64_t line, std::uint64_t cycle);
  void drain_blocked(int tile, std::uint64_t cycle);
  int find_way(TileCache& c, std::int64_t line) const;
  int pick_victim(int tile, TileCache& c, std::int64_t line,
                  std::uint64_t cycle);

  MemConfig config_;
  noc::Fabric* fabric_;
  int line_shift_ = 6;

  std::vector<Domain> domains_;              // by tag
  std::vector<std::unique_ptr<Port>> ports_; // by tag
  std::map<int, int> tag_of_tile_;

  std::map<std::int64_t, std::vector<Version>> log_;  ///< addr -> versions
  std::map<int, TileCache> caches_;                   ///< tile -> cache
  std::map<std::int64_t, DirLine> dir_;               ///< line -> directory
  DramBank banks_[8];
  MemStats stats_;
};

}  // namespace xtsoc::mem
