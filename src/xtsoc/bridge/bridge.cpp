#include "xtsoc/bridge/bridge.hpp"

#include <set>
#include <stdexcept>

#include "xtsoc/fault/fault.hpp"
#include "xtsoc/snap/io.hpp"

namespace xtsoc::bridge {

using runtime::EventMessage;
using runtime::Executor;
using runtime::InstanceHandle;
using runtime::ModelError;

void SystemDef::add_domain(const oal::CompiledDomain& domain) {
  domains_.push_back(&domain);
}

void SystemDef::add_wire(Wire wire) { wires_.push_back(std::move(wire)); }

const oal::CompiledDomain* SystemDef::find_domain(std::string_view name) const {
  for (const auto* d : domains_) {
    if (d->domain().name() == name) return d;
  }
  return nullptr;
}

bool SystemDef::validate(DiagnosticSink& sink) const {
  const std::size_t before = sink.error_count();
  std::set<std::string> names;
  for (const auto* d : domains_) {
    if (!names.insert(d->domain().name()).second) {
      sink.error("bridge.domain.dup",
                 "duplicate domain '" + d->domain().name() + "'");
    }
  }

  std::set<std::tuple<std::string, std::string, std::string>> sources;
  for (const Wire& w : wires_) {
    const oal::CompiledDomain* from = find_domain(w.from_domain);
    const oal::CompiledDomain* to = find_domain(w.to_domain);
    if (from == nullptr || to == nullptr) {
      sink.error("bridge.wire.domain",
                 "wire references unknown domain '" +
                     (from == nullptr ? w.from_domain : w.to_domain) + "'");
      continue;
    }
    const xtuml::ClassDef* proxy = from->domain().find_class(w.proxy_class);
    const xtuml::ClassDef* target = to->domain().find_class(w.target_class);
    if (proxy == nullptr || target == nullptr) {
      sink.error("bridge.wire.class",
                 "wire references unknown class '" +
                     (proxy == nullptr ? w.proxy_class : w.target_class) + "'");
      continue;
    }
    const xtuml::EventDef* fe = proxy->find_event(w.from_event);
    const xtuml::EventDef* te = target->find_event(w.to_event);
    if (fe == nullptr || te == nullptr) {
      sink.error("bridge.wire.event",
                 "wire references unknown event '" +
                     (fe == nullptr ? w.from_event : w.to_event) + "'");
      continue;
    }
    if (!sources.insert({w.from_domain, w.proxy_class, w.from_event}).second) {
      sink.error("bridge.wire.dup",
                 "two wires forward " + w.from_domain + "." + w.proxy_class +
                     "." + w.from_event);
    }
    if (fe->params.size() != te->params.size()) {
      sink.error("bridge.wire.arity",
                 "wire " + w.proxy_class + "." + w.from_event + " -> " +
                     w.target_class + "." + w.to_event +
                     ": parameter counts differ");
      continue;
    }
    for (std::size_t i = 0; i < fe->params.size(); ++i) {
      xtuml::DataType a = fe->params[i].type;
      xtuml::DataType b = te->params[i].type;
      bool ok = a == b || (a == xtuml::DataType::kInt &&
                           b == xtuml::DataType::kReal);
      if (!ok) {
        sink.error("bridge.wire.type",
                   "wire " + w.proxy_class + "." + w.from_event +
                       ": parameter " + std::to_string(i) + " maps " +
                       xtuml::to_string(a) + " to " + xtuml::to_string(b));
      }
    }
    if (proxy->has_state_machine()) {
      sink.warning("bridge.proxy.states",
                   "proxy class '" + w.proxy_class +
                       "' has a state machine, but every signal sent to a "
                       "proxy leaves its domain and the machine never runs");
    }
  }
  return sink.error_count() == before;
}

SystemExecutor::SystemExecutor(const SystemDef& def,
                               runtime::ExecutorConfig config,
                               fault::Plan* fault)
    : wires_(def.wires()), fault_(fault) {
  DiagnosticSink sink;
  if (!def.validate(sink)) {
    throw std::invalid_argument("invalid system: " + sink.to_string());
  }

  // Collect proxy class ids per domain (any class at the sending end of a
  // wire): signals to them route out of the domain.
  std::map<std::string, std::set<ClassId>> proxies;
  for (const Wire& w : wires_) {
    const oal::CompiledDomain* from = def.find_domain(w.from_domain);
    proxies[w.from_domain].insert(from->domain().find_class_id(w.proxy_class));
  }

  domains_.reserve(def.domains().size());
  for (std::size_t i = 0; i < def.domains().size(); ++i) {
    const oal::CompiledDomain* compiled = def.domains()[i];
    DomainRt d;
    d.name = compiled->domain().name();
    d.compiled = compiled;
    std::set<ClassId> local_proxies = proxies[d.name];
    if (local_proxies.empty()) {
      d.exec = std::make_unique<Executor>(*compiled, config);
    } else {
      d.exec = std::make_unique<Executor>(
          *compiled, config,
          [local_proxies](ClassId cls) { return !local_proxies.contains(cls); },
          [this, i](EventMessage m) {
            if (!route(i, m)) {
              throw ModelError(
                  "signal to proxy instance " + m.target.to_string() +
                  " has no wire for event #" + std::to_string(m.event.value()));
            }
          });
    }
    domains_.push_back(std::move(d));
  }
}

SystemExecutor::DomainRt& SystemExecutor::rt(std::string_view name) {
  for (DomainRt& d : domains_) {
    if (d.name == name) return d;
  }
  throw std::invalid_argument("unknown domain '" + std::string(name) + "'");
}

Executor& SystemExecutor::domain(std::string_view name) {
  return *rt(name).exec;
}

void SystemExecutor::bind(const InstanceHandle& proxy,
                          std::string_view proxy_domain,
                          const InstanceHandle& target,
                          std::string_view target_domain) {
  std::size_t from_idx = static_cast<std::size_t>(&rt(proxy_domain) -
                                                  domains_.data());
  std::size_t to_idx = static_cast<std::size_t>(&rt(target_domain) -
                                                domains_.data());
  bindings_[{from_idx, proxy}] = {to_idx, target};
}

bool SystemExecutor::route(std::size_t from_domain, const EventMessage& m) {
  const DomainRt& from = domains_[from_domain];
  const xtuml::ClassDef& proxy_cls = from.compiled->domain().cls(m.target.cls);
  const std::string& from_event = proxy_cls.event(m.event).name;

  for (std::size_t wi = 0; wi < wires_.size(); ++wi) {
    const Wire& w = wires_[wi];
    if (w.from_domain != from.name || w.proxy_class != proxy_cls.name ||
        w.from_event != from_event) {
      continue;
    }
    auto binding = bindings_.find({from_domain, m.target});
    if (binding == bindings_.end()) {
      throw ModelError("proxy instance " + m.target.to_string() + " in '" +
                       from.name + "' is not bound to a target instance");
    }
    auto [to_idx, target] = binding->second;
    const DomainRt& to = domains_[to_idx];
    const xtuml::ClassDef& target_cls =
        to.compiled->domain().cls(target.cls);
    if (target_cls.name != w.target_class) {
      throw ModelError("binding of proxy " + m.target.to_string() +
                       " points at class '" + target_cls.name +
                       "' but the wire targets '" + w.target_class + "'");
    }
    EventMessage out;
    out.target = target;
    out.event = target_cls.find_event(w.to_event)->id;
    out.args = m.args;  // positional, validated at system build
    out.sender = InstanceHandle::null();
    out.deliver_at = 0;  // bridges are immediate; delay does not cross
    PendingForward pf;
    pf.to_domain = to_idx;
    pf.message = std::move(out);
    pf.wire = static_cast<std::uint32_t>(wi);
    pending_.push_back(std::move(pf));
    ++forwarded_;
    return true;
  }
  return false;
}

bool SystemExecutor::drained() const {
  if (!pending_.empty()) return false;
  for (const DomainRt& d : domains_) {
    if (!d.exec->drained()) return false;
  }
  return true;
}

std::size_t SystemExecutor::run_all(std::size_t max_rounds) {
  std::size_t dispatched = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    // Run every domain to quiescence (this fills pending_ via routing).
    for (DomainRt& d : domains_) {
      dispatched += d.exec->run_all();
    }
    if (pending_.empty()) {
      if (drained()) return dispatched;
      continue;
    }
    // Carry bridged signals across, preserving FIFO order. With a fault
    // plan attached each carry can fail; failures reschedule the signal a
    // few rounds out (exponential backoff) until the retry budget runs
    // out, at which point the forward is dropped and counted — the round
    // loop itself always makes progress.
    std::vector<PendingForward> batch;
    batch.swap(pending_);
    for (PendingForward& p : batch) {
      if (p.not_before_round > round) {  // still backing off
        pending_.push_back(std::move(p));
        continue;
      }
      // Rounds are 0-indexed; the window convention is 1-indexed cycles
      // (faultWindow.start is an exclusive lower bound), so shift by one.
      if (fault_ != nullptr &&
          fault_->bridge_error(p.wire, static_cast<std::uint64_t>(round) + 1)) {
        ++p.attempts;
        if (p.attempts > fault_->spec().retry_budget) {
          ++dropped_forwards_;
          continue;
        }
        ++retried_forwards_;
        p.not_before_round = round + (1ULL << p.attempts);
        pending_.push_back(std::move(p));
        continue;
      }
      EventMessage m = std::move(p.message);
      m.deliver_at = domains_[p.to_domain].exec->now();
      domains_[p.to_domain].exec->deliver_remote(std::move(m));
    }
  }
  throw ModelError("multi-domain system did not drain within the round limit");
}

void SystemExecutor::save_state(snap::Writer& w) const {
  w.u64(domains_.size());
  for (const DomainRt& d : domains_) {
    w.str(d.name);
    d.exec->save_state(w);
  }
  w.u64(bindings_.size());
  w.u64(pending_.size());
  for (const PendingForward& p : pending_) {
    w.u64(p.to_domain);
    save_message(w, p.message);
    w.u32(p.wire);
    w.i64(p.attempts);
    w.u64(p.not_before_round);
  }
  w.u64(forwarded_);
  w.u64(retried_forwards_);
  w.u64(dropped_forwards_);
}

void SystemExecutor::load_state(snap::Reader& r) {
  if (r.u64() != domains_.size()) {
    throw snap::SnapError("bridge snapshot domain count mismatch");
  }
  for (DomainRt& d : domains_) {
    const std::string name = r.str();
    if (name != d.name) {
      throw snap::SnapError("bridge snapshot domain order mismatch: expected " +
                            d.name + ", found " + name);
    }
    d.exec->load_state(r);
  }
  if (r.u64() != bindings_.size()) {
    throw snap::SnapError(
        "bridge snapshot binding count mismatch (re-bind the same proxies "
        "before restoring)");
  }
  pending_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    PendingForward p;
    p.to_domain = static_cast<std::size_t>(r.u64());
    if (p.to_domain >= domains_.size()) {
      throw snap::SnapError("bridge snapshot forward targets unknown domain");
    }
    p.message = runtime::load_message(r);
    p.wire = r.u32();
    p.attempts = static_cast<int>(r.i64());
    p.not_before_round = static_cast<std::size_t>(r.u64());
    pending_.push_back(std::move(p));
  }
  forwarded_ = r.u64();
  retried_forwards_ = r.u64();
  dropped_forwards_ = r.u64();
}

}  // namespace xtsoc::bridge
