// Multi-domain systems and bridges.
//
// A real system is several domains — application, device drivers, UI —
// each modelled independently and joined by bridges (the "integration
// problem" of the paper's reference [2], MDA Distilled). The executable
// bridge mechanism here follows xtUML practice:
//
//   * a domain that needs a service models a PROXY class for it (an
//     ordinary class, often stateless, standing in for the other domain);
//   * a Wire declares that signals of a given event received by proxy
//     instances are forwarded into another domain as a different event,
//     parameters mapped positionally (types checked at system build time);
//   * each proxy INSTANCE is bound to a counterpart instance in the target
//     domain, so routing is per-object, not per-class.
//
// SystemExecutor runs one runtime::Executor per domain and carries
// forwarded signals across, preserving run-to-completion within each
// domain and FIFO order per wire.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/runtime/executor.hpp"

namespace xtsoc::bridge {

/// A directed event forwarding rule between two domains.
struct Wire {
  std::string from_domain;
  std::string proxy_class;  ///< class in from_domain receiving the signal
  std::string from_event;
  std::string to_domain;
  std::string target_class;  ///< class in to_domain
  std::string to_event;
};

/// A multi-domain system: named compiled domains plus wires.
class SystemDef {
public:
  /// Register a domain under its model name. The CompiledDomain must
  /// outlive the SystemDef.
  void add_domain(const oal::CompiledDomain& domain);
  void add_wire(Wire wire);

  const oal::CompiledDomain* find_domain(std::string_view name) const;
  const std::vector<const oal::CompiledDomain*>& domains() const {
    return domains_;
  }
  const std::vector<Wire>& wires() const { return wires_; }
  std::size_t domain_count() const { return domains_.size(); }

  /// Check every wire: domains exist, classes and events exist, and the
  /// parameter signatures are positionally compatible (same count; same
  /// types, with int-to-real widening allowed).
  bool validate(DiagnosticSink& sink) const;

private:
  std::vector<const oal::CompiledDomain*> domains_;
  std::vector<Wire> wires_;
};

/// Executes a validated multi-domain system.
class SystemExecutor {
public:
  /// Throws std::invalid_argument if `def` does not validate.
  explicit SystemExecutor(const SystemDef& def,
                          runtime::ExecutorConfig config = {});

  runtime::Executor& domain(std::string_view name);

  /// Pair a proxy instance with its counterpart in the target domain.
  /// Every wired signal the proxy receives is forwarded to `target`.
  void bind(const runtime::InstanceHandle& proxy,
            std::string_view proxy_domain,
            const runtime::InstanceHandle& target,
            std::string_view target_domain);

  /// Run every domain to quiescence, carrying bridged signals across,
  /// until the whole system is drained. Returns total dispatches.
  std::size_t run_all(std::size_t max_rounds = 10'000);

  bool drained() const;
  std::uint64_t forwarded_count() const { return forwarded_; }

private:
  struct DomainRt {
    std::string name;
    const oal::CompiledDomain* compiled;
    std::unique_ptr<runtime::Executor> exec;
  };
  struct PendingForward {
    std::size_t to_domain;
    runtime::EventMessage message;
  };

  DomainRt& rt(std::string_view name);
  /// Route a signal emitted to a proxy instance, or return false if the
  /// (instance, event) pair has no wire (the signal stays local).
  bool route(std::size_t from_domain, const runtime::EventMessage& m);

  std::vector<DomainRt> domains_;
  std::vector<Wire> wires_;
  /// (domain idx, proxy handle) -> (target domain idx, target handle)
  std::map<std::pair<std::size_t, runtime::InstanceHandle>,
           std::pair<std::size_t, runtime::InstanceHandle>> bindings_;
  std::vector<PendingForward> pending_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace xtsoc::bridge
