// Multi-domain systems and bridges.
//
// A real system is several domains — application, device drivers, UI —
// each modelled independently and joined by bridges (the "integration
// problem" of the paper's reference [2], MDA Distilled). The executable
// bridge mechanism here follows xtUML practice:
//
//   * a domain that needs a service models a PROXY class for it (an
//     ordinary class, often stateless, standing in for the other domain);
//   * a Wire declares that signals of a given event received by proxy
//     instances are forwarded into another domain as a different event,
//     parameters mapped positionally (types checked at system build time);
//   * each proxy INSTANCE is bound to a counterpart instance in the target
//     domain, so routing is per-object, not per-class.
//
// SystemExecutor runs one runtime::Executor per domain and carries
// forwarded signals across, preserving run-to-completion within each
// domain and FIFO order per wire.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/runtime/executor.hpp"

namespace xtsoc::fault {
class Plan;
}

namespace xtsoc::bridge {

/// A directed event forwarding rule between two domains.
struct Wire {
  std::string from_domain;
  std::string proxy_class;  ///< class in from_domain receiving the signal
  std::string from_event;
  std::string to_domain;
  std::string target_class;  ///< class in to_domain
  std::string to_event;
};

/// A multi-domain system: named compiled domains plus wires.
class SystemDef {
public:
  /// Register a domain under its model name. The CompiledDomain must
  /// outlive the SystemDef.
  void add_domain(const oal::CompiledDomain& domain);
  void add_wire(Wire wire);

  const oal::CompiledDomain* find_domain(std::string_view name) const;
  const std::vector<const oal::CompiledDomain*>& domains() const {
    return domains_;
  }
  const std::vector<Wire>& wires() const { return wires_; }
  std::size_t domain_count() const { return domains_.size(); }

  /// Check every wire: domains exist, classes and events exist, and the
  /// parameter signatures are positionally compatible (same count; same
  /// types, with int-to-real widening allowed).
  bool validate(DiagnosticSink& sink) const;

private:
  std::vector<const oal::CompiledDomain*> domains_;
  std::vector<Wire> wires_;
};

/// Executes a validated multi-domain system.
class SystemExecutor {
public:
  /// Throws std::invalid_argument if `def` does not validate. An optional
  /// fault plan (src/xtsoc/fault) makes each carry attempt fallible at the
  /// plan's busError rate; a failed carry is retried on a later round with
  /// exponential backoff until the plan's retry budget runs out, then
  /// counted in dropped_forward_count() — delivery degrades, run_all never
  /// wedges.
  explicit SystemExecutor(const SystemDef& def,
                          runtime::ExecutorConfig config = {},
                          fault::Plan* fault = nullptr);

  runtime::Executor& domain(std::string_view name);

  /// Pair a proxy instance with its counterpart in the target domain.
  /// Every wired signal the proxy receives is forwarded to `target`.
  void bind(const runtime::InstanceHandle& proxy,
            std::string_view proxy_domain,
            const runtime::InstanceHandle& target,
            std::string_view target_domain);

  /// Run every domain to quiescence, carrying bridged signals across,
  /// until the whole system is drained. Returns total dispatches.
  std::size_t run_all(std::size_t max_rounds = 10'000);

  bool drained() const;
  std::uint64_t forwarded_count() const { return forwarded_; }
  /// Carries that failed once and were rescheduled with backoff.
  std::uint64_t retried_forward_count() const { return retried_forwards_; }
  /// Carries abandoned after the retry budget — the bridge's reported,
  /// bounded failure mode.
  std::uint64_t dropped_forward_count() const { return dropped_forwards_; }

  // --- checkpointing ---------------------------------------------------------
  /// Serialize every domain executor, the in-flight forwards and the bridge
  /// counters. Wires, bindings and the attached fault plan are
  /// elaboration-owned; the binding count is checked on load.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  struct DomainRt {
    std::string name;
    const oal::CompiledDomain* compiled;
    std::unique_ptr<runtime::Executor> exec;
  };
  struct PendingForward {
    std::size_t to_domain;
    runtime::EventMessage message;
    std::uint32_t wire = 0;              ///< index into wires_ (fault site)
    int attempts = 0;                    ///< failed carry attempts so far
    std::size_t not_before_round = 0;    ///< backoff: earliest retry round
  };

  DomainRt& rt(std::string_view name);
  /// Route a signal emitted to a proxy instance, or return false if the
  /// (instance, event) pair has no wire (the signal stays local).
  bool route(std::size_t from_domain, const runtime::EventMessage& m);

  std::vector<DomainRt> domains_;
  std::vector<Wire> wires_;
  /// (domain idx, proxy handle) -> (target domain idx, target handle)
  std::map<std::pair<std::size_t, runtime::InstanceHandle>,
           std::pair<std::size_t, runtime::InstanceHandle>> bindings_;
  std::vector<PendingForward> pending_;
  std::uint64_t forwarded_ = 0;
  fault::Plan* fault_ = nullptr;
  std::uint64_t retried_forwards_ = 0;
  std::uint64_t dropped_forwards_ = 0;
};

}  // namespace xtsoc::bridge
