// The abstract model executor.
//
// Implements the paper's §2 execution semantics directly on the compiled
// model: concurrently executing state machines communicate only by signals;
// on receipt of a signal the destination state's actions run to completion
// before the next signal is processed; the receiver's actions execute after
// the sender's (cause precedes effect, guaranteed by queueing).
//
// Queue discipline (xtUML): events an instance sends to itself are consumed
// before other pending events — two FIFO queues, self-directed drained
// first. A plain-FIFO policy is available as the ablation studied in
// bench_equivalence.
//
// Time is logical: `generate ... delay N` schedules N ticks ahead; run_all()
// advances time to the next deadline whenever the ready queues drain.
//
// Partitioned operation (used by cosim): construct with a locality filter
// and a remote-out callback. Signals to non-local classes are handed to the
// callback instead of the local queues; signals arriving from the bus enter
// via deliver_remote().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <string>

#include "xtsoc/oal/bytecode.hpp"
#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/obs/registry.hpp"
#include "xtsoc/runtime/compiled_actions.hpp"
#include "xtsoc/runtime/database.hpp"
#include "xtsoc/runtime/interp.hpp"
#include "xtsoc/runtime/trace.hpp"
#include "xtsoc/runtime/vm.hpp"

namespace xtsoc::runtime {

/// One queued signal.
struct EventMessage {
  InstanceHandle target;
  EventId event = EventId::invalid();
  std::vector<Value> args;
  InstanceHandle sender;       ///< null for external stimuli
  std::uint64_t deliver_at = 0;
  std::uint64_t seq = 0;       ///< FIFO tiebreak for the timer heap

  bool self_directed() const { return sender == target && !sender.is_null(); }
};

/// Message byte encoding, shared by every checkpointed structure that queues
/// signals (executor queues, the bridge's pending forwards).
void save_message(snap::Writer& w, const EventMessage& m);
EventMessage load_message(snap::Reader& r);

/// Pluggable backing store for `mem.read` / `mem.write`. The cosim layer
/// installs a port per domain that routes into the xtsoc::mem hierarchy;
/// standalone executors fall back to a private flat map.
class MemoryPort {
public:
  virtual ~MemoryPort() = default;
  virtual std::int64_t read(std::int64_t addr) = 0;
  virtual void write(std::int64_t addr, std::int64_t value) = 0;
};

enum class QueuePolicy {
  kXtuml,     ///< self-directed events outrank external events
  kFifoOnly,  ///< single FIFO (ablation)
};

/// Which of the (behaviourally identical) action engines runs actions.
enum class ActionEngine {
  kAstWalk,   ///< tree-walking interpreter (runtime/interp.*)
  kBytecode,  ///< compile-once stack VM (oal/bytecode.* + runtime/vm.*)
  kJit,       ///< AOT-compiled native code (xtsoc::jit), VM per-action fallback
};

struct ExecutorConfig {
  QueuePolicy policy = QueuePolicy::kXtuml;
  ActionEngine engine = ActionEngine::kAstWalk;
  /// Native actions for the kJit engine. Not owned; must outlive the
  /// executor. Null (or an action the module doesn't cover) makes kJit
  /// behave exactly like kBytecode for that dispatch.
  const CompiledActions* compiled = nullptr;
  bool trace_enabled = true;
  std::uint64_t max_ops_per_action = 10'000'000;
  /// Optional observability sink. Dispatch spans ("Class.event", one per
  /// run-to-completion block) land on `obs_track`; when the track is left
  /// invalid a track named "executor" is created. Counters are named after
  /// the track ("<track>.dispatches", "<track>.emits").
  obs::Registry* obs = nullptr;
  obs::TrackId obs_track;
};

class Executor : public Host {
public:
  explicit Executor(const oal::CompiledDomain& compiled,
                    ExecutorConfig config = {});

  /// Partitioned construction: only classes for which `is_local` returns
  /// true live here; signals to other classes go to `remote_out`.
  Executor(const oal::CompiledDomain& compiled, ExecutorConfig config,
           std::function<bool(ClassId)> is_local,
           std::function<void(EventMessage)> remote_out);

  // --- population -----------------------------------------------------------

  /// Create an instance (initial state, default attributes). Recorded in
  /// the trace. The initial state's action does NOT run (xtUML: actions run
  /// on transition, not on creation).
  InstanceHandle create(ClassId cls);
  InstanceHandle create(std::string_view class_name);
  /// Create and overwrite selected attributes by name.
  InstanceHandle create_with(
      std::string_view class_name,
      const std::vector<std::pair<std::string, Value>>& attrs);
  void destroy(const InstanceHandle& h);

  // --- stimuli ---------------------------------------------------------------

  /// Inject an external signal (sender = null).
  void inject(const InstanceHandle& target, EventId event,
              std::vector<Value> args = {}, std::uint64_t delay = 0);
  void inject(const InstanceHandle& target, std::string_view event_name,
              std::vector<Value> args = {}, std::uint64_t delay = 0);

  /// Deliver a signal that crossed the partition boundary (cosim only).
  void deliver_remote(EventMessage m);

  // --- execution -------------------------------------------------------------

  /// Dispatch exactly one ready signal. Returns false if nothing is ready
  /// at the current time (there may still be delayed events pending).
  bool step();

  /// Dispatch the oldest ready signal whose message satisfies `pred`,
  /// leaving other queued signals untouched and in order. Used by the
  /// hardware lowering to enforce one-event-per-instance-per-clock.
  /// Returns false if no ready signal satisfies the predicate.
  bool step_if(const std::function<bool(const EventMessage&)>& pred);

  /// Copies of every ready signal, self queue first then external, each in
  /// queue order. Used by the state-space explorer to enumerate legal
  /// scheduler choices.
  std::vector<EventMessage> ready_snapshot() const;

  /// Dispatch the `index`-th ready signal of ready_snapshot()'s ordering.
  /// Returns false if out of range.
  bool dispatch_ready(std::size_t index);

  /// Drain all ready signals at the current time. Returns dispatch count.
  std::size_t run_to_quiescence(std::size_t max_dispatches = kNoLimit);

  /// Run until no signals remain anywhere, advancing time across delays.
  std::size_t run_all(std::size_t max_dispatches = kNoLimit);

  /// Move logical time forward, releasing due delayed events into the
  /// ready queues. Does not dispatch.
  void advance_time(std::uint64_t ticks);

  /// Next timer deadline, if any delayed event is pending.
  std::optional<std::uint64_t> next_deadline() const;

  bool idle() const;  ///< no ready events (delayed may remain)
  bool drained() const;  ///< no events at all

  // --- Host interface (called by the interpreter) ----------------------------

  Database& database() override { return db_; }
  const Database& database() const { return db_; }
  std::uint64_t now() const override { return now_; }
  void emit(const InstanceHandle& sender, const InstanceHandle& target,
            EventId event, std::vector<Value> args,
            std::uint64_t delay) override;
  /// Signal payload vectors come from a recycling pool: dispatch() returns
  /// each consumed vector's storage to it, so a steady-state signal loop
  /// (generate -> dispatch -> generate) performs no payload allocation.
  std::vector<Value> acquire_args(std::size_t n) override;
  /// Return a spent payload vector's storage to the pool. Public so the
  /// cosim domains can recycle messages they serialized onto the wire.
  void recycle_args(std::vector<Value>&& args);
  void on_create(const InstanceHandle& h) override;
  void on_delete(const InstanceHandle& h) override;
  void on_attr_write(const InstanceHandle& h, AttributeId attr,
                     const Value& v) override;
  void on_log(std::string text) override;
  std::int64_t mem_read(std::int64_t addr) override {
    if (mem_port_) return mem_port_->read(addr);
    auto it = flat_mem_.find(addr);
    return it == flat_mem_.end() ? 0 : it->second;
  }
  void mem_write(std::int64_t addr, std::int64_t value) override {
    if (mem_port_) mem_port_->write(addr, value);
    else flat_mem_[addr] = value;
  }
  /// Route `mem.*` through an external memory model instead of the flat
  /// map. Not owned; pass nullptr to detach. The flat map is only used
  /// (and only checkpointed) while no port is attached.
  void set_memory_port(MemoryPort* port) { mem_port_ = port; }

  // --- observability ----------------------------------------------------------

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }
  const oal::CompiledDomain& compiled() const { return *compiled_; }
  const xtuml::Domain& domain() const { return compiled_->domain(); }
  std::uint64_t dispatch_count() const { return dispatches_; }
  std::uint64_t dispatch_count(ClassId cls) const;
  /// Largest number of signals simultaneously pending (ready + delayed)
  /// over the whole run — the queue-sizing number for the mapped system.
  std::size_t queue_high_water() const { return high_water_; }
  std::uint64_t ops_executed() const { return ops_; }
  /// Interpreter ops spent in actions of `cls` — the per-class work
  /// estimate that drives repartitioning advice.
  std::uint64_t ops_executed(ClassId cls) const;

  static constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

  // --- checkpointing ----------------------------------------------------------
  /// Serialize the full execution state: population, trace, both ready
  /// queues, the timer heap, logical time, sequence/dispatch/op counters.
  /// Caches (compiled bytecode, VM scratch, the arg pool) are rebuilt on
  /// demand and deliberately not carried. load_state requires an executor
  /// over the same compiled domain; not legal mid-dispatch.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  void dispatch(EventMessage m);
  void enqueue_ready(EventMessage m);
  void release_due_timers();
  ClassId class_of(std::string_view name) const;

  /// A compiled action ready to execute: the bytecode plus its constant
  /// pools pre-converted to runtime Values (see PreparedBlock).
  struct Program {
    oal::CodeBlock code;
    PreparedBlock prepared;
  };
  /// Program for (cls, state), compiled and prepared on first use.
  const Program& bytecode_for(ClassId cls, StateId state);

  /// transition_on() through a dense per-class [state × event] table,
  /// built on first dispatch into the class. Every dispatch pays one
  /// lookup where it used to pay a linear scan of the transition list —
  /// shared overhead on the hot path of all three engines.
  const xtuml::TransitionDef* transition_for(const xtuml::ClassDef& def,
                                             StateId from, EventId event);

  const oal::CompiledDomain* compiled_;
  ExecutorConfig config_;
  Database db_;
  Trace trace_;

  std::deque<EventMessage> self_queue_;
  std::deque<EventMessage> ext_queue_;

  struct TimerOrder {
    bool operator()(const EventMessage& a, const EventMessage& b) const {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<EventMessage, std::vector<EventMessage>, TimerOrder>
      timers_;

  std::function<bool(ClassId)> is_local_;          // null = everything local
  std::function<void(EventMessage)> remote_out_;

  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatches_ = 0;
  std::vector<std::uint64_t> dispatches_by_class_;
  std::vector<std::uint64_t> ops_by_class_;
  /// Lazily compiled programs per [class][state] (kBytecode engine only).
  std::vector<std::vector<std::optional<Program>>> bytecode_;
  /// Dense transition lookup per class: [state * event_count + event].
  /// Pointers into the domain's ClassDef::transitions (stable, outlives us).
  std::vector<std::vector<const xtuml::TransitionDef*>> transitions_;
  /// Reused VM evaluation buffers (kBytecode engine only).
  VmScratch vm_scratch_;
  /// Recycled signal-payload vectors, capped at kMaxPooledArgs entries.
  std::vector<std::vector<Value>> arg_pool_;
  static constexpr std::size_t kMaxPooledArgs = 256;
  std::uint64_t ops_ = 0;
  std::size_t high_water_ = 0;
  /// `mem.*` backing: external port when attached, flat map otherwise.
  /// Ordered map so checkpoints serialize in a deterministic order.
  MemoryPort* mem_port_ = nullptr;
  std::map<std::int64_t, std::int64_t> flat_mem_;
  /// Instance whose action is currently running (stamps `log` trace events).
  InstanceHandle current_;

  // Observability (null members when no registry is attached).
  obs::Registry* obs_ = nullptr;
  obs::TrackId obs_track_;
  obs::Counter* c_dispatches_ = nullptr;
  obs::Counter* c_emits_ = nullptr;
};

}  // namespace xtsoc::runtime
