#include "xtsoc/runtime/database.hpp"

#include <algorithm>

#include "xtsoc/snap/io.hpp"

namespace xtsoc::runtime {

Database::Database(const xtuml::Domain& domain) : domain_(&domain) {
  slots_.resize(domain.class_count());
  free_list_.resize(domain.class_count());
  links_.resize(domain.associations().size());
}

InstanceHandle Database::create(ClassId cls) {
  const xtuml::ClassDef& def = domain_->cls(cls);
  auto& pool = slots_[cls.value()];
  auto& free = free_list_[cls.value()];

  std::uint32_t index;
  if (!free.empty()) {
    index = free.back();
    free.pop_back();
  } else {
    index = static_cast<std::uint32_t>(pool.size());
    pool.emplace_back();
  }
  InstanceSlot& slot = pool[index];
  slot.alive = true;
  slot.state = def.initial_state;
  slot.attrs.clear();
  slot.attrs.reserve(def.attributes.size());
  for (const auto& a : def.attributes) {
    slot.attrs.push_back(a.default_value ? from_scalar(*a.default_value)
                                         : default_value(a.type));
  }
  return {cls, index, slot.generation};
}

void Database::destroy(const InstanceHandle& h) {
  InstanceSlot& slot = deref(h);
  slot.alive = false;
  ++slot.generation;
  slot.attrs.clear();
  free_list_[h.cls.value()].push_back(h.index);

  // Drop all links touching the deleted instance.
  for (auto& bucket : links_) {
    std::erase_if(bucket, [&](const Link& l) { return l.a == h || l.b == h; });
  }
}

bool Database::is_alive(const InstanceHandle& h) const {
  return try_deref(h) != nullptr;
}

InstanceSlot* Database::try_deref(const InstanceHandle& h) {
  if (h.is_null() || h.cls.value() >= slots_.size()) return nullptr;
  auto& pool = slots_[h.cls.value()];
  if (h.index >= pool.size()) return nullptr;
  InstanceSlot& slot = pool[h.index];
  if (!slot.alive || slot.generation != h.generation) return nullptr;
  return &slot;
}

const InstanceSlot* Database::try_deref(const InstanceHandle& h) const {
  return const_cast<Database*>(this)->try_deref(h);
}

InstanceSlot& Database::deref(const InstanceHandle& h) {
  InstanceSlot* s = try_deref(h);
  if (s == nullptr) {
    throw ModelError("dereference of null, stale or foreign handle " +
                     h.to_string());
  }
  return *s;
}

const InstanceSlot& Database::deref(const InstanceHandle& h) const {
  return const_cast<Database*>(this)->deref(h);
}

Value Database::get_attr(const InstanceHandle& h, AttributeId attr) const {
  const InstanceSlot& slot = deref(h);
  if (attr.value() >= slot.attrs.size()) {
    throw ModelError("attribute index out of range on " + h.to_string());
  }
  return slot.attrs[attr.value()];
}

void Database::set_attr(const InstanceHandle& h, AttributeId attr, Value v) {
  InstanceSlot& slot = deref(h);
  if (attr.value() >= slot.attrs.size()) {
    throw ModelError("attribute index out of range on " + h.to_string());
  }
  // int widens to real when the attribute is real
  const xtuml::AttributeDef& def = domain_->cls(h.cls).attribute(attr);
  if (def.type == xtuml::DataType::kReal &&
      std::holds_alternative<std::int64_t>(v)) {
    v = static_cast<double>(std::get<std::int64_t>(v));
  }
  slot.attrs[attr.value()] = std::move(v);
}

StateId Database::current_state(const InstanceHandle& h) const {
  return deref(h).state;
}

void Database::set_state(const InstanceHandle& h, StateId s) {
  deref(h).state = s;
}

InstanceSet Database::all_of(ClassId cls) const {
  InstanceSet out;
  if (cls.value() >= slots_.size()) return out;
  const auto& pool = slots_[cls.value()];
  for (std::uint32_t i = 0; i < pool.size(); ++i) {
    if (pool[i].alive) out.push_back({cls, i, pool[i].generation});
  }
  return out;
}

std::size_t Database::live_count(ClassId cls) const {
  if (cls.value() >= slots_.size()) return 0;
  const auto& pool = slots_[cls.value()];
  return static_cast<std::size_t>(
      std::count_if(pool.begin(), pool.end(),
                    [](const InstanceSlot& s) { return s.alive; }));
}

std::size_t Database::live_count() const {
  std::size_t n = 0;
  for (std::size_t c = 0; c < slots_.size(); ++c) {
    n += live_count(ClassId(static_cast<ClassId::underlying_type>(c)));
  }
  return n;
}

void Database::check_multiplicity(const xtuml::AssociationDef& def,
                                  const InstanceHandle& inst,
                                  bool inst_is_end_a) const {
  // `inst` sits at one end; the *other* end's multiplicity bounds how many
  // links `inst` may participate in.
  const xtuml::AssociationEnd& other = inst_is_end_a ? def.b : def.a;
  if (xtuml::is_many(other.mult)) return;
  const auto& bucket = links_[def.id.value()];
  for (const Link& l : bucket) {
    const InstanceHandle& at_end = inst_is_end_a ? l.a : l.b;
    if (at_end == inst) {
      throw ModelError("relate across " + def.name + ": instance " +
                       inst.to_string() +
                       " already linked and the far end multiplicity is " +
                       xtuml::to_string(other.mult));
    }
  }
}

void Database::relate(const InstanceHandle& a, const InstanceHandle& b,
                      AssociationId assoc) {
  const xtuml::AssociationDef& def = domain_->association(assoc);
  deref(a);
  deref(b);

  InstanceHandle ea = a;
  InstanceHandle eb = b;
  if (def.a.cls != a.cls || def.b.cls != b.cls) {
    // Caller gave (b, a) order; canonicalize. Reflexive associations always
    // take the caller's order.
    if (def.a.cls == b.cls && def.b.cls == a.cls && def.a.cls != def.b.cls) {
      std::swap(ea, eb);
    } else if (def.a.cls != a.cls || def.b.cls != b.cls) {
      throw ModelError("relate across " + def.name +
                       ": instance classes do not match association ends");
    }
  }

  auto& bucket = links_[assoc.value()];
  for (const Link& l : bucket) {
    if (l.a == ea && l.b == eb) {
      throw ModelError("relate across " + def.name + ": already related");
    }
  }
  check_multiplicity(def, ea, /*inst_is_end_a=*/true);
  check_multiplicity(def, eb, /*inst_is_end_a=*/false);
  bucket.push_back({ea, eb});
}

void Database::unrelate(const InstanceHandle& a, const InstanceHandle& b,
                        AssociationId assoc) {
  const xtuml::AssociationDef& def = domain_->association(assoc);
  auto& bucket = links_[assoc.value()];
  auto match = [&](const Link& l) {
    return (l.a == a && l.b == b) || (l.a == b && l.b == a);
  };
  auto it = std::find_if(bucket.begin(), bucket.end(), match);
  if (it == bucket.end()) {
    throw ModelError("unrelate across " + def.name + ": not related");
  }
  bucket.erase(it);
}

InstanceSet Database::related(const InstanceHandle& from,
                              AssociationId assoc) const {
  InstanceSet out;
  const auto& bucket = links_[assoc.value()];
  for (const Link& l : bucket) {
    if (l.a == from) out.push_back(l.b);
    if (l.b == from && !(l.a == from)) out.push_back(l.a);
  }
  return out;
}

std::size_t Database::link_count(AssociationId assoc) const {
  return links_[assoc.value()].size();
}

void Database::save_state(snap::Writer& w) const {
  w.u64(slots_.size());
  for (const auto& cls_slots : slots_) {
    w.u64(cls_slots.size());
    for (const InstanceSlot& s : cls_slots) {
      w.boolean(s.alive);
      w.u32(s.generation);
      w.u32(s.state.value());
      w.u64(s.attrs.size());
      for (const Value& v : s.attrs) save_value(w, v);
    }
  }
  w.u64(free_list_.size());
  for (const auto& fl : free_list_) {
    w.u64(fl.size());
    for (std::uint32_t idx : fl) w.u32(idx);
  }
  w.u64(links_.size());
  for (const auto& ll : links_) {
    w.u64(ll.size());
    for (const Link& l : ll) {
      save_handle(w, l.a);
      save_handle(w, l.b);
    }
  }
}

void Database::load_state(snap::Reader& r) {
  if (r.u64() != slots_.size()) {
    throw snap::SnapError("database snapshot class count mismatch");
  }
  for (auto& cls_slots : slots_) {
    cls_slots.resize(r.u64());
    for (InstanceSlot& s : cls_slots) {
      s.alive = r.boolean();
      s.generation = r.u32();
      s.state = StateId(r.u32());
      s.attrs.resize(r.u64());
      for (Value& v : s.attrs) v = load_value(r);
    }
  }
  if (r.u64() != free_list_.size()) {
    throw snap::SnapError("database snapshot class count mismatch");
  }
  for (auto& fl : free_list_) {
    fl.resize(r.u64());
    for (std::uint32_t& idx : fl) idx = r.u32();
  }
  if (r.u64() != links_.size()) {
    throw snap::SnapError("database snapshot association count mismatch");
  }
  for (auto& ll : links_) {
    ll.resize(r.u64());
    for (Link& l : ll) {
      l.a = load_handle(r);
      l.b = load_handle(r);
    }
  }
}

}  // namespace xtsoc::runtime
