// The instance database: object populations, attribute storage, and
// association links for one executing (sub)system.
//
// Slots are reused after deletion with a bumped generation counter, so stale
// handles are detected rather than silently aliasing a new instance.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "xtsoc/runtime/value.hpp"
#include "xtsoc/xtuml/model.hpp"

namespace xtsoc::runtime {

/// Thrown for model-level runtime errors: dangling handle, division by zero,
/// multiplicity violation, "can't happen" event, step-limit overrun.
class ModelError : public std::runtime_error {
public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

/// Storage for one live instance.
struct InstanceSlot {
  bool alive = false;
  std::uint32_t generation = 0;
  StateId state = StateId::invalid();
  std::vector<Value> attrs;
};

class Database {
public:
  explicit Database(const xtuml::Domain& domain);

  const xtuml::Domain& domain() const { return *domain_; }

  /// Create an instance with default attribute values, in the class's
  /// initial state (callers run the initial state's action separately).
  InstanceHandle create(ClassId cls);

  /// Delete an instance and drop every link that touches it.
  void destroy(const InstanceHandle& h);

  bool is_alive(const InstanceHandle& h) const;

  /// Dereference or throw ModelError on null/stale handles.
  InstanceSlot& deref(const InstanceHandle& h);
  const InstanceSlot& deref(const InstanceHandle& h) const;

  Value get_attr(const InstanceHandle& h, AttributeId attr) const;
  void set_attr(const InstanceHandle& h, AttributeId attr, Value v);

  StateId current_state(const InstanceHandle& h) const;
  void set_state(const InstanceHandle& h, StateId s);

  /// All live instances of `cls`, in creation order.
  InstanceSet all_of(ClassId cls) const;
  std::size_t live_count(ClassId cls) const;
  std::size_t live_count() const;

  // --- association links ----------------------------------------------------

  /// Link two instances across an association. Enforces the multiplicity of
  /// both ends (a "1" or "0..1" end may carry at most one link per instance).
  void relate(const InstanceHandle& a, const InstanceHandle& b,
              AssociationId assoc);
  void unrelate(const InstanceHandle& a, const InstanceHandle& b,
                AssociationId assoc);

  /// Instances reachable from `from` across `assoc` (either direction),
  /// in link-creation order.
  InstanceSet related(const InstanceHandle& from, AssociationId assoc) const;

  std::size_t link_count(AssociationId assoc) const;

  // --- checkpointing ---------------------------------------------------------
  /// Serialize the whole population: slots (with generations and free
  /// lists, so handle staleness survives a restore), attributes, links.
  /// load_state requires a database built from the same domain (class and
  /// association counts are checked) and replaces its population.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  struct Link {
    InstanceHandle a;
    InstanceHandle b;
  };

  InstanceSlot* try_deref(const InstanceHandle& h);
  const InstanceSlot* try_deref(const InstanceHandle& h) const;
  void check_multiplicity(const xtuml::AssociationDef& def,
                          const InstanceHandle& inst, bool inst_is_end_a) const;

  const xtuml::Domain* domain_;
  std::vector<std::vector<InstanceSlot>> slots_;      // [class][index]
  std::vector<std::vector<std::uint32_t>> free_list_; // [class]
  std::vector<std::vector<Link>> links_;              // [association]
};

}  // namespace xtsoc::runtime
