#include "xtsoc/runtime/interp.hpp"

#include <cmath>

#include "xtsoc/oal/ast.hpp"

namespace xtsoc::runtime {

namespace {

using namespace oal;

enum class Flow { kNormal, kBreak, kContinue, kReturn };

class Interp {
public:
  Interp(const AnalyzedAction& action, const InstanceHandle& self,
         const std::vector<Value>& params, Host& host, std::uint64_t max_ops)
      : action_(action), self_(self), params_(params), host_(host),
        max_ops_(max_ops) {
    frame_.resize(static_cast<std::size_t>(action.frame_size));
  }

  InterpResult run() {
    exec_block(action_.ast);
    InterpResult r;
    r.ops = ops_;
    r.self_deleted = self_deleted_;
    return r;
  }

private:
  void tick_op() {
    if (++ops_ > max_ops_) {
      throw ModelError("action exceeded op limit (runaway loop?)");
    }
  }

  Value& slot(int i) { return frame_.at(static_cast<std::size_t>(i)); }

  // --- expressions ---------------------------------------------------------

  Value eval(const Expr& e) {
    tick_op();
    switch (e.kind) {
      case ExprKind::kLiteral:
        return from_scalar(static_cast<const LiteralExpr&>(e).value);
      case ExprKind::kVarRef: {
        const auto& v = static_cast<const VarRefExpr&>(e);
        Value& val = slot(v.slot);
        if (std::holds_alternative<std::monostate>(val)) {
          throw ModelError("read of unset variable '" + v.name + "'");
        }
        return val;
      }
      case ExprKind::kSelfRef:
        return self_;
      case ExprKind::kParamRef: {
        const auto& p = static_cast<const ParamRefExpr&>(e);
        return params_.at(static_cast<std::size_t>(p.param_index));
      }
      case ExprKind::kSelectedRef:
        return selected_;
      case ExprKind::kAttrAccess: {
        const auto& a = static_cast<const AttrAccessExpr&>(e);
        InstanceHandle obj = as_handle(eval(*a.object));
        return host_.database().get_attr(obj, a.attr);
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        Value v = eval(*u.operand);
        if (u.op == UnaryOp::kNot) return !as_bool(v);
        if (std::holds_alternative<std::int64_t>(v)) {
          return -std::get<std::int64_t>(v);
        }
        return -as_real(v);
      }
      case ExprKind::kBinary:
        return eval_binary(static_cast<const BinaryExpr&>(e));
      case ExprKind::kCardinality: {
        const auto& c = static_cast<const CardinalityExpr&>(e);
        Value v = eval(*c.operand);
        if (const auto* set = std::get_if<InstanceSet>(&v)) {
          return static_cast<std::int64_t>(set->size());
        }
        return std::int64_t{as_handle(v).is_null() ? 0 : 1};
      }
      case ExprKind::kEmpty:
      case ExprKind::kNotEmpty: {
        const auto& em = static_cast<const EmptyExpr&>(e);
        Value v = eval(*em.operand);
        bool empty;
        if (const auto* set = std::get_if<InstanceSet>(&v)) {
          empty = set->empty();
        } else {
          const InstanceHandle& h = as_handle(v);
          empty = h.is_null() || !host_.database().is_alive(h);
        }
        return e.kind == ExprKind::kEmpty ? empty : !empty;
      }
      case ExprKind::kMemRead: {
        const auto& m = static_cast<const MemReadExpr&>(e);
        Value a = eval(*m.addr);
        return host_.mem_read(as_int(a));
      }
    }
    throw ModelError("unreachable expression kind");
  }

  Value eval_binary(const BinaryExpr& b) {
    // Short-circuit logic first.
    if (b.op == BinaryOp::kAnd) {
      return as_bool(eval(*b.lhs)) ? Value(as_bool(eval(*b.rhs))) : Value(false);
    }
    if (b.op == BinaryOp::kOr) {
      return as_bool(eval(*b.lhs)) ? Value(true) : Value(as_bool(eval(*b.rhs)));
    }

    Value lv = eval(*b.lhs);
    Value rv = eval(*b.rhs);

    switch (b.op) {
      case BinaryOp::kAdd:
        if (std::holds_alternative<std::string>(lv)) {
          return std::get<std::string>(lv) + std::get<std::string>(rv);
        }
        [[fallthrough]];
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv: {
        const bool both_int = std::holds_alternative<std::int64_t>(lv) &&
                              std::holds_alternative<std::int64_t>(rv);
        if (both_int) {
          std::int64_t a = std::get<std::int64_t>(lv);
          std::int64_t c = std::get<std::int64_t>(rv);
          switch (b.op) {
            case BinaryOp::kAdd: return a + c;
            case BinaryOp::kSub: return a - c;
            case BinaryOp::kMul: return a * c;
            default:
              if (c == 0) throw ModelError("integer division by zero");
              return a / c;
          }
        }
        double a = as_real(lv);
        double c = as_real(rv);
        switch (b.op) {
          case BinaryOp::kAdd: return a + c;
          case BinaryOp::kSub: return a - c;
          case BinaryOp::kMul: return a * c;
          default: return a / c;  // IEEE semantics for real division
        }
      }
      case BinaryOp::kMod: {
        std::int64_t a = as_int(lv);
        std::int64_t c = as_int(rv);
        if (c == 0) throw ModelError("modulo by zero");
        return a % c;
      }
      case BinaryOp::kEq:
        return value_equals(lv, rv);
      case BinaryOp::kNe:
        return !value_equals(lv, rv);
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        int cmp;
        if (std::holds_alternative<std::string>(lv)) {
          cmp = std::get<std::string>(lv).compare(std::get<std::string>(rv));
        } else {
          double a = as_real(lv);
          double c = as_real(rv);
          cmp = a < c ? -1 : (a > c ? 1 : 0);
        }
        switch (b.op) {
          case BinaryOp::kLt: return cmp < 0;
          case BinaryOp::kLe: return cmp <= 0;
          case BinaryOp::kGt: return cmp > 0;
          default: return cmp >= 0;
        }
      }
      default:
        throw ModelError("unreachable binary op");
    }
  }

  // --- statements ----------------------------------------------------------

  Flow exec_block(const Block& b) {
    for (const auto& s : b.stmts) {
      Flow f = exec_stmt(*s);
      if (f != Flow::kNormal) return f;
    }
    return Flow::kNormal;
  }

  Flow exec_stmt(const Stmt& s) {
    tick_op();
    switch (s.kind) {
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        Value v = eval(*a.rvalue);
        if (a.lvalue->kind == ExprKind::kVarRef) {
          const auto& var = static_cast<const VarRefExpr&>(*a.lvalue);
          // int widens to real if the variable's declared type is real
          if (var.type.base == xtuml::DataType::kReal &&
              std::holds_alternative<std::int64_t>(v)) {
            v = static_cast<double>(std::get<std::int64_t>(v));
          }
          slot(var.slot) = std::move(v);
        } else {
          const auto& acc = static_cast<const AttrAccessExpr&>(*a.lvalue);
          InstanceHandle obj = as_handle(eval(*acc.object));
          host_.database().set_attr(obj, acc.attr, v);
          host_.on_attr_write(obj, acc.attr,
                              host_.database().get_attr(obj, acc.attr));
        }
        return Flow::kNormal;
      }
      case StmtKind::kCreate: {
        const auto& c = static_cast<const CreateStmt&>(s);
        InstanceHandle h = host_.database().create(c.cls);
        host_.on_create(h);
        slot(c.slot) = h;
        return Flow::kNormal;
      }
      case StmtKind::kDelete: {
        const auto& d = static_cast<const DeleteStmt&>(s);
        InstanceHandle h = as_handle(eval(*d.object));
        host_.on_delete(h);
        host_.database().destroy(h);
        if (h == self_) self_deleted_ = true;
        return Flow::kNormal;
      }
      case StmtKind::kGenerate: {
        const auto& g = static_cast<const GenerateStmt&>(s);
        InstanceHandle target = as_handle(eval(*g.target));
        if (target.is_null()) {
          throw ModelError("generate to a null instance reference");
        }
        std::vector<Value> args = host_.acquire_args(g.args.size());
        for (const auto& arg : g.args) {
          args[static_cast<std::size_t>(arg.param_index)] = eval(*arg.value);
        }
        std::uint64_t delay = 0;
        if (g.delay) {
          std::int64_t d = as_int(eval(*g.delay));
          if (d < 0) throw ModelError("negative delay in generate");
          delay = static_cast<std::uint64_t>(d);
        }
        host_.emit(self_, target, g.event, std::move(args), delay);
        return Flow::kNormal;
      }
      case StmtKind::kSelectFrom: {
        const auto& sel = static_cast<const SelectFromStmt&>(s);
        InstanceSet all = host_.database().all_of(sel.cls);
        InstanceSet chosen = filter(all, sel.where.get());
        if (sel.many) {
          slot(sel.slot) = std::move(chosen);
        } else {
          slot(sel.slot) = chosen.empty() ? InstanceHandle::null() : chosen.front();
        }
        return Flow::kNormal;
      }
      case StmtKind::kSelectRelated: {
        const auto& sel = static_cast<const SelectRelatedStmt&>(s);
        InstanceHandle start = as_handle(eval(*sel.start));
        InstanceSet rel = host_.database().related(start, sel.assoc);
        InstanceSet chosen = filter(rel, sel.where.get());
        if (sel.many) {
          slot(sel.slot) = std::move(chosen);
        } else {
          slot(sel.slot) = chosen.empty() ? InstanceHandle::null() : chosen.front();
        }
        return Flow::kNormal;
      }
      case StmtKind::kRelate: {
        const auto& r = static_cast<const RelateStmt&>(s);
        InstanceHandle a = as_handle(eval(*r.a));
        InstanceHandle b = as_handle(eval(*r.b));
        host_.database().relate(a, b, r.assoc);
        return Flow::kNormal;
      }
      case StmtKind::kUnrelate: {
        const auto& r = static_cast<const RelateStmt&>(s);
        InstanceHandle a = as_handle(eval(*r.a));
        InstanceHandle b = as_handle(eval(*r.b));
        host_.database().unrelate(a, b, r.assoc);
        return Flow::kNormal;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        for (const auto& br : i.branches) {
          if (as_bool(eval(*br.cond))) return exec_block(br.body);
        }
        if (i.else_body) return exec_block(*i.else_body);
        return Flow::kNormal;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        while (as_bool(eval(*w.cond))) {
          Flow f = exec_block(w.body);
          if (f == Flow::kBreak) break;
          if (f == Flow::kReturn) return f;
        }
        return Flow::kNormal;
      }
      case StmtKind::kForEach: {
        const auto& fe = static_cast<const ForEachStmt&>(s);
        InstanceSet set = as_set(eval(*fe.set));  // copy: body may mutate DB
        for (const InstanceHandle& h : set) {
          slot(fe.slot) = h;
          Flow f = exec_block(fe.body);
          if (f == Flow::kBreak) break;
          if (f == Flow::kReturn) return f;
        }
        return Flow::kNormal;
      }
      case StmtKind::kBreak:
        return Flow::kBreak;
      case StmtKind::kContinue:
        return Flow::kContinue;
      case StmtKind::kReturn:
        return Flow::kReturn;
      case StmtKind::kLog: {
        const auto& l = static_cast<const LogStmt&>(s);
        std::string text;
        for (std::size_t i = 0; i < l.args.size(); ++i) {
          if (i > 0) text += ' ';
          text += runtime::to_string(eval(*l.args[i]));
        }
        host_.on_log(std::move(text));
        return Flow::kNormal;
      }
      case StmtKind::kMemWrite: {
        const auto& m = static_cast<const MemWriteStmt&>(s);
        Value av = eval(*m.addr);
        Value vv = eval(*m.value);
        // Engine parity with the VM/jit lowering: the value operand is
        // converted before the address.
        std::int64_t v = as_int(vv);
        std::int64_t a = as_int(av);
        host_.mem_write(a, v);
        return Flow::kNormal;
      }
    }
    throw ModelError("unreachable statement kind");
  }

  InstanceSet filter(const InstanceSet& candidates, const Expr* where) {
    if (where == nullptr) return candidates;
    InstanceSet out;
    Value saved = selected_;
    for (const InstanceHandle& h : candidates) {
      selected_ = h;
      if (as_bool(eval(*where))) out.push_back(h);
    }
    selected_ = std::move(saved);
    return out;
  }

  const AnalyzedAction& action_;
  InstanceHandle self_;
  const std::vector<Value>& params_;
  Host& host_;
  std::uint64_t max_ops_;
  std::vector<Value> frame_;
  Value selected_ = InstanceHandle::null();
  std::uint64_t ops_ = 0;
  bool self_deleted_ = false;
};

}  // namespace

InterpResult run_action(const oal::AnalyzedAction& action,
                        const InstanceHandle& self,
                        const std::vector<Value>& params, Host& host,
                        std::uint64_t max_ops) {
  return Interp(action, self, params, host, max_ops).run();
}

}  // namespace xtsoc::runtime
