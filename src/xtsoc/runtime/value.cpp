#include "xtsoc/runtime/value.hpp"

#include <sstream>
#include <stdexcept>

#include "xtsoc/snap/io.hpp"

namespace xtsoc::runtime {

std::string InstanceHandle::to_string() const {
  if (is_null()) return "<null>";
  std::ostringstream os;
  os << "<inst c" << cls.value() << ":" << index << "g" << generation << ">";
  return os.str();
}

Value default_value(xtuml::DataType type) {
  using xtuml::DataType;
  switch (type) {
    case DataType::kBool:
      return false;
    case DataType::kInt:
      return std::int64_t{0};
    case DataType::kReal:
      return 0.0;
    case DataType::kString:
      return std::string{};
    case DataType::kInstRef:
      return InstanceHandle::null();
    case DataType::kVoid:
      return std::monostate{};
  }
  return std::monostate{};
}

Value from_scalar(const xtuml::ScalarValue& v) {
  switch (v.index()) {
    case 0:
      return std::get<bool>(v);
    case 1:
      return std::get<std::int64_t>(v);
    case 2:
      return std::get<double>(v);
    default:
      return std::get<std::string>(v);
  }
}

std::string to_string(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "<void>"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const {
      std::ostringstream os;
      os << d;
      return os.str();
    }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const InstanceHandle& h) const {
      return h.to_string();
    }
    std::string operator()(const InstanceSet& set) const {
      std::ostringstream os;
      os << "{";
      for (std::size_t i = 0; i < set.size(); ++i) {
        if (i > 0) os << ", ";
        os << set[i].to_string();
      }
      os << "}";
      return os.str();
    }
  };
  return std::visit(Visitor{}, v);
}

bool as_bool(const Value& v) {
  if (const bool* b = std::get_if<bool>(&v)) return *b;
  throw std::runtime_error("value is not a bool: " + to_string(v));
}

std::int64_t as_int(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  throw std::runtime_error("value is not an int: " + to_string(v));
}

double as_real(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  throw std::runtime_error("value is not numeric: " + to_string(v));
}

const InstanceHandle& as_handle(const Value& v) {
  if (const auto* h = std::get_if<InstanceHandle>(&v)) return *h;
  throw std::runtime_error("value is not an instance: " + to_string(v));
}

const InstanceSet& as_set(const Value& v) {
  if (const auto* s = std::get_if<InstanceSet>(&v)) return *s;
  throw std::runtime_error("value is not an instance set: " + to_string(v));
}

bool value_equals(const Value& a, const Value& b) {
  // Numeric cross-type comparison.
  const bool a_num = std::holds_alternative<std::int64_t>(a) ||
                     std::holds_alternative<double>(a);
  const bool b_num = std::holds_alternative<std::int64_t>(b) ||
                     std::holds_alternative<double>(b);
  if (a_num && b_num) return as_real(a) == as_real(b);
  return a == b;
}

void save_handle(snap::Writer& w, const InstanceHandle& h) {
  w.u32(h.cls.value());
  w.u32(h.index);
  w.u32(h.generation);
}

InstanceHandle load_handle(snap::Reader& r) {
  InstanceHandle h;
  h.cls = ClassId(r.u32());
  h.index = r.u32();
  h.generation = r.u32();
  return h;
}

void save_value(snap::Writer& w, const Value& v) {
  w.u8(static_cast<std::uint8_t>(v.index()));
  switch (v.index()) {
    case 0:
      break;
    case 1:
      w.boolean(std::get<bool>(v));
      break;
    case 2:
      w.i64(std::get<std::int64_t>(v));
      break;
    case 3:
      w.f64(std::get<double>(v));
      break;
    case 4:
      w.str(std::get<std::string>(v));
      break;
    case 5:
      save_handle(w, std::get<InstanceHandle>(v));
      break;
    case 6: {
      const InstanceSet& set = std::get<InstanceSet>(v);
      w.u64(set.size());
      for (const InstanceHandle& h : set) save_handle(w, h);
      break;
    }
  }
}

Value load_value(snap::Reader& r) {
  switch (r.u8()) {
    case 0:
      return Value{};
    case 1:
      return Value(r.boolean());
    case 2:
      return Value(r.i64());
    case 3:
      return Value(r.f64());
    case 4:
      return Value(r.str());
    case 5:
      return Value(load_handle(r));
    case 6: {
      InstanceSet set(r.u64());
      for (InstanceHandle& h : set) h = load_handle(r);
      return Value(std::move(set));
    }
    default:
      throw snap::SnapError("unknown Value variant tag in snapshot");
  }
}

}  // namespace xtsoc::runtime
