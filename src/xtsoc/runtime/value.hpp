// Runtime values of the abstract xtUML machine.
//
// A Value is what an OAL expression evaluates to: a scalar, an instance
// handle, or an instance set. Handles are *global* — (class, index,
// generation) — so the same handle is meaningful in every partition of a
// mapped system; only dereferencing requires the instance to live in the
// local database. This is what lets signals carry instance references across
// the hardware/software boundary.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "xtsoc/common/ids.hpp"
#include "xtsoc/xtuml/types.hpp"

namespace xtsoc::snap {
class Writer;
class Reader;
}  // namespace xtsoc::snap

namespace xtsoc::runtime {

/// Reference to a model instance. Invalid cls/idx means "empty reference".
struct InstanceHandle {
  ClassId cls = ClassId::invalid();
  std::uint32_t index = 0;
  std::uint32_t generation = 0;

  bool is_null() const { return !cls.is_valid(); }
  static InstanceHandle null() { return {}; }

  friend bool operator==(const InstanceHandle&, const InstanceHandle&) = default;
  friend bool operator<(const InstanceHandle& a, const InstanceHandle& b) {
    if (a.cls != b.cls) return a.cls < b.cls;
    if (a.index != b.index) return a.index < b.index;
    return a.generation < b.generation;
  }
  std::string to_string() const;
};

/// Result of `select many`: an ordered set of handles (selection order is
/// creation order, which keeps execution deterministic).
using InstanceSet = std::vector<InstanceHandle>;

/// monostate = "no value" (uninitialized / void).
using Value = std::variant<std::monostate, bool, std::int64_t, double,
                           std::string, InstanceHandle, InstanceSet>;

/// Zero-value for a declared data type (what attributes default to).
Value default_value(xtuml::DataType type);

/// Convert a metamodel scalar default into a runtime value.
Value from_scalar(const xtuml::ScalarValue& v);

/// Human-readable rendering, used by `log` and traces.
std::string to_string(const Value& v);

/// Truthiness: only defined for bool values.
bool as_bool(const Value& v);
std::int64_t as_int(const Value& v);
double as_real(const Value& v);  ///< accepts int or real
const InstanceHandle& as_handle(const Value& v);
const InstanceSet& as_set(const Value& v);

/// Structural equality following OAL semantics (int/real compare numerically).
bool value_equals(const Value& a, const Value& b);

// --- checkpointing -----------------------------------------------------------
// Values appear in every serialized runtime structure (attributes, queued
// signal payloads, trace events), so the byte encoding lives here, next to
// the type: a one-byte variant tag followed by the alternative's payload.
void save_handle(snap::Writer& w, const InstanceHandle& h);
InstanceHandle load_handle(snap::Reader& r);
void save_value(snap::Writer& w, const Value& v);
Value load_value(snap::Reader& r);

}  // namespace xtsoc::runtime
