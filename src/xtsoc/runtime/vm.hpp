// Stack-machine VM: the second execution engine for OAL actions.
//
// Runs the bytecode produced by oal::compile_bytecode against the same Host
// interface as the tree-walking interpreter, with byte-for-byte identical
// observable behaviour (traces, errors, run-to-completion). Selected per
// Executor via ExecutorConfig::engine; cross-checked in tests and
// bench_engines.
#pragma once

#include "xtsoc/oal/bytecode.hpp"
#include "xtsoc/runtime/interp.hpp"

namespace xtsoc::runtime {

/// Reusable evaluation buffers for run_bytecode. A caller that dispatches
/// many actions (the Executor) keeps one of these alive so the VM's value
/// stack and frame reach steady-state capacity once and are never
/// reallocated again — zero heap traffic per action after warm-up.
struct VmScratch {
  std::vector<Value> stack;
  std::vector<Value> frame;
};

/// A CodeBlock's constant pools pre-converted to runtime Values, mirroring
/// the block's sub-block tree. CodeBlock stores xtuml::ScalarValue (oal
/// sits below the runtime layer), so without this every kPushConst pays a
/// ScalarValue -> Value conversion — a fresh std::string allocation for
/// string literals — on every execution. Prepare once at compile time,
/// then kPushConst is a plain Value copy.
struct PreparedBlock {
  std::vector<Value> constants;
  std::vector<PreparedBlock> subs;
};

/// Build the PreparedBlock tree for `block` (recursing into sub-blocks).
PreparedBlock prepare_block(const oal::CodeBlock& block);

/// Execute `block` for instance `self` with event payload `params`.
/// Semantics and error behaviour mirror run_action(); `max_ops` counts
/// executed instructions. Pass `scratch` to reuse evaluation buffers
/// across calls (single-threaded use only); null allocates fresh ones.
InterpResult run_bytecode(const oal::CodeBlock& block,
                          const InstanceHandle& self,
                          const std::vector<Value>& params, Host& host,
                          std::uint64_t max_ops = 10'000'000,
                          VmScratch* scratch = nullptr);

/// As above, with `prepared` (from prepare_block(block)) supplying the
/// Value-typed constant pools — the form the Executor's dispatch loop uses.
InterpResult run_bytecode(const oal::CodeBlock& block,
                          const PreparedBlock& prepared,
                          const InstanceHandle& self,
                          const std::vector<Value>& params, Host& host,
                          std::uint64_t max_ops = 10'000'000,
                          VmScratch* scratch = nullptr);

}  // namespace xtsoc::runtime
