#include "xtsoc/runtime/trace.hpp"

#include <algorithm>
#include <sstream>

namespace xtsoc::runtime {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kCreate: return "create";
    case TraceKind::kDelete: return "delete";
    case TraceKind::kSend: return "send";
    case TraceKind::kDispatch: return "dispatch";
    case TraceKind::kAttrWrite: return "attr";
    case TraceKind::kIgnored: return "ignored";
    case TraceKind::kLog: return "log";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::ostringstream os;
  os << "[t" << tick << "] " << runtime::to_string(kind) << ' '
     << subject.to_string();
  if (event.is_valid()) os << " ev#" << event.value();
  if (from_state.is_valid() || to_state.is_valid()) {
    os << " s#" << (from_state.is_valid() ? std::to_string(from_state.value()) : "-")
       << "->s#" << (to_state.is_valid() ? std::to_string(to_state.value()) : "-");
  }
  if (attr.is_valid()) os << " a#" << attr.value();
  if (value) os << " = " << runtime::to_string(*value);
  if (!args.empty()) {
    os << " (";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i > 0) os << ", ";
      os << runtime::to_string(args[i]);
    }
    os << ')';
  }
  if (!text.empty()) os << " \"" << text << '"';
  return os.str();
}

std::vector<TraceEvent> Trace::projection(const InstanceHandle& inst) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.subject == inst) out.push_back(e);
  }
  return out;
}

std::vector<InstanceHandle> Trace::subjects() const {
  std::vector<InstanceHandle> out;
  for (const auto& e : events_) {
    if (e.subject.is_null()) continue;
    if (std::find(out.begin(), out.end(), e.subject) == out.end()) {
      out.push_back(e.subject);
    }
  }
  return out;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const auto& e : events_) os << e.to_string() << '\n';
  return os.str();
}

}  // namespace xtsoc::runtime
