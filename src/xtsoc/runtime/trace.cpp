#include "xtsoc/runtime/trace.hpp"

#include <algorithm>
#include <sstream>

#include "xtsoc/snap/io.hpp"

namespace xtsoc::runtime {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kCreate: return "create";
    case TraceKind::kDelete: return "delete";
    case TraceKind::kSend: return "send";
    case TraceKind::kDispatch: return "dispatch";
    case TraceKind::kAttrWrite: return "attr";
    case TraceKind::kIgnored: return "ignored";
    case TraceKind::kLog: return "log";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::ostringstream os;
  os << "[t" << tick << "] " << runtime::to_string(kind) << ' '
     << subject.to_string();
  if (event.is_valid()) os << " ev#" << event.value();
  if (from_state.is_valid() || to_state.is_valid()) {
    os << " s#" << (from_state.is_valid() ? std::to_string(from_state.value()) : "-")
       << "->s#" << (to_state.is_valid() ? std::to_string(to_state.value()) : "-");
  }
  if (attr.is_valid()) os << " a#" << attr.value();
  if (value) os << " = " << runtime::to_string(*value);
  if (!args.empty()) {
    os << " (";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i > 0) os << ", ";
      os << runtime::to_string(args[i]);
    }
    os << ')';
  }
  if (!text.empty()) os << " \"" << text << '"';
  return os.str();
}

std::vector<TraceEvent> Trace::projection(const InstanceHandle& inst) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.subject == inst) out.push_back(e);
  }
  return out;
}

std::vector<InstanceHandle> Trace::subjects() const {
  std::vector<InstanceHandle> out;
  for (const auto& e : events_) {
    if (e.subject.is_null()) continue;
    if (std::find(out.begin(), out.end(), e.subject) == out.end()) {
      out.push_back(e.subject);
    }
  }
  return out;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const auto& e : events_) os << e.to_string() << '\n';
  return os.str();
}

void Trace::save_state(snap::Writer& w) const {
  w.boolean(enabled_);
  w.u64(events_.size());
  for (const TraceEvent& e : events_) {
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u64(e.tick);
    save_handle(w, e.subject);
    save_handle(w, e.peer);
    w.u32(e.event.value());
    w.u32(e.from_state.value());
    w.u32(e.to_state.value());
    w.u32(e.attr.value());
    w.boolean(e.value.has_value());
    if (e.value) save_value(w, *e.value);
    w.u64(e.args.size());
    for (const Value& v : e.args) save_value(w, v);
    w.str(e.text);
  }
}

void Trace::load_state(snap::Reader& r) {
  enabled_ = r.boolean();
  events_.clear();
  events_.resize(r.u64());
  for (TraceEvent& e : events_) {
    e.kind = static_cast<TraceKind>(r.u8());
    e.tick = r.u64();
    e.subject = load_handle(r);
    e.peer = load_handle(r);
    e.event = EventId(r.u32());
    e.from_state = StateId(r.u32());
    e.to_state = StateId(r.u32());
    e.attr = AttributeId(r.u32());
    if (r.boolean()) e.value = load_value(r);
    e.args.resize(r.u64());
    for (Value& v : e.args) v = load_value(r);
    e.text = r.str();
  }
}

}  // namespace xtsoc::runtime
