// Execution traces.
//
// Every observable step of an execution — creation, deletion, signal send,
// dispatch (state transition), attribute write, log output — is recorded as
// a TraceEvent. Traces serve three masters:
//   * examples print them so users can watch a model run,
//   * the verify module compares *per-instance projections* of traces to
//     prove that a partitioned execution preserves the abstract semantics,
//   * the perf module aggregates them into the measurements that drive
//     repartitioning decisions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "xtsoc/runtime/value.hpp"

namespace xtsoc::runtime {

enum class TraceKind {
  kCreate,     ///< instance created
  kDelete,     ///< instance deleted
  kSend,       ///< signal generated (sender may be null for external inject)
  kDispatch,   ///< signal delivered: state transition + action ran
  kAttrWrite,  ///< attribute assigned by an action
  kIgnored,    ///< signal dropped (no transition, fallback = ignore)
  kLog,        ///< `log` statement output
};

const char* to_string(TraceKind k);

struct TraceEvent {
  TraceKind kind = TraceKind::kLog;
  std::uint64_t tick = 0;  ///< logical time at which this happened
  InstanceHandle subject;  ///< the instance this event is about
  InstanceHandle peer;     ///< kSend: the sender
  EventId event = EventId::invalid();
  StateId from_state = StateId::invalid();
  StateId to_state = StateId::invalid();
  AttributeId attr = AttributeId::invalid();
  std::optional<Value> value;  ///< kAttrWrite: the written value
  std::vector<Value> args;     ///< kSend/kDispatch: signal payload
  std::string text;            ///< kLog: rendered message

  std::string to_string() const;
};

/// An append-only trace. Recording can be disabled for throughput runs.
class Trace {
public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(TraceEvent e) {
    if (enabled_) events_.push_back(std::move(e));
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Events about one instance (kSend events project onto the *receiver*).
  std::vector<TraceEvent> projection(const InstanceHandle& inst) const;

  /// All distinct instances appearing as subjects in this trace.
  std::vector<InstanceHandle> subjects() const;

  std::string to_string() const;

  // --- checkpointing ---------------------------------------------------------
  /// Serialize the recorded events and the enabled flag; load replaces the
  /// current contents. Carrying the full history is what makes a restored
  /// run's complete trace byte-identical to an uninterrupted one.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  std::vector<TraceEvent> events_;
  bool enabled_ = true;
};

}  // namespace xtsoc::runtime
