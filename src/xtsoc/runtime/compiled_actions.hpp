// CompiledActions: the executor-facing face of an AOT-compiled model.
//
// The jit engine (xtsoc::jit) lowers every state action of a compiled
// domain to native code in a dlopen'd shared object. The Executor neither
// knows nor cares how: it sees this interface, asks whether a (class,
// state) action was compiled, and runs it against the same Host it would
// hand the interpreter or the bytecode VM. Actions the module does not
// cover (or a null module) fall back to the bytecode VM per dispatch, so a
// partially compiled model is still byte-identical, just slower.
//
// Contract (enforced by the EnginesJit tests): run() must produce exactly
// the observable behaviour of run_bytecode() on the same action — same
// Host calls in the same order, same error strings, and the same op count
// in InterpResult (op totals feed cosim's sw_ops_per_cycle budgeting, so
// they are trace-visible).
#pragma once

#include <cstdint>
#include <vector>

#include "xtsoc/common/ids.hpp"
#include "xtsoc/runtime/interp.hpp"
#include "xtsoc/runtime/value.hpp"

namespace xtsoc::runtime {

class CompiledActions {
public:
  virtual ~CompiledActions() = default;

  /// True if the action of `cls` entering `state` was compiled.
  virtual bool has(ClassId cls, StateId state) const = 0;

  /// Execute the compiled action. Same semantics as run_bytecode():
  /// throws ModelError / std::runtime_error on model faults, counts every
  /// logical instruction in InterpResult::ops.
  virtual InterpResult run(ClassId cls, StateId state,
                           const InstanceHandle& self,
                           const std::vector<Value>& params, Host& host,
                           std::uint64_t max_ops) const = 0;
};

}  // namespace xtsoc::runtime
