// Tree-walking interpreter for analyzed OAL action bodies.
//
// The interpreter is deliberately host-agnostic: everything with a side
// effect outside the action frame (instance lifecycle, signal generation,
// logging) goes through the Host interface. The abstract Executor, the
// software-runtime task and the hardware FSM process all implement Host, so
// a single action semantics serves every mapping — which is exactly the
// property the paper's "model compiler preserves defined behavior" argument
// depends on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "xtsoc/oal/sema.hpp"
#include "xtsoc/runtime/database.hpp"
#include "xtsoc/runtime/value.hpp"

namespace xtsoc::runtime {

/// Services an action body needs from its execution environment.
class Host {
public:
  virtual ~Host() = default;

  virtual Database& database() = 0;
  virtual std::uint64_t now() const = 0;

  /// Queue a signal. `delay` is in logical ticks (0 = as soon as possible,
  /// after already-queued events, per run-to-completion).
  virtual void emit(const InstanceHandle& sender, const InstanceHandle& target,
                    EventId event, std::vector<Value> args,
                    std::uint64_t delay) = 0;

  /// Obtain a payload vector of `n` default (monostate) Values for emit().
  /// Hosts that dispatch signals in a loop override this to recycle the
  /// consumed vectors' storage, so steady-state signalling allocates
  /// nothing; the default just allocates.
  virtual std::vector<Value> acquire_args(std::size_t n) {
    return std::vector<Value>(n);
  }

  /// Lifecycle + observability hooks (default: no-op).
  virtual void on_create(const InstanceHandle&) {}
  virtual void on_delete(const InstanceHandle&) {}
  virtual void on_attr_write(const InstanceHandle&, AttributeId,
                             const Value&) {}
  virtual void on_log(std::string /*text*/) {}

  /// Platform memory port (`mem.read` / `mem.write`). The default is a
  /// degenerate memory where every load returns 0 and stores vanish — hosts
  /// with a real model (the Executor's flat map, the xtsoc::mem hierarchy)
  /// override.
  virtual std::int64_t mem_read(std::int64_t /*addr*/) { return 0; }
  virtual void mem_write(std::int64_t /*addr*/, std::int64_t /*value*/) {}
};

/// Interpreter statistics for one action run.
struct InterpResult {
  std::uint64_t ops = 0;          ///< AST nodes executed
  bool self_deleted = false;      ///< the action deleted `self`
};

/// Execute `action` for instance `self` with event payload `params`.
/// Throws ModelError on model-level faults (null deref, div by zero, ...)
/// and when more than `max_ops` AST nodes execute (runaway-loop guard).
InterpResult run_action(const oal::AnalyzedAction& action,
                        const InstanceHandle& self,
                        const std::vector<Value>& params, Host& host,
                        std::uint64_t max_ops = 10'000'000);

}  // namespace xtsoc::runtime
