#include "xtsoc/runtime/executor.hpp"

#include <algorithm>

#include "xtsoc/snap/io.hpp"

namespace xtsoc::runtime {

Executor::Executor(const oal::CompiledDomain& compiled, ExecutorConfig config)
    : compiled_(&compiled), config_(config), db_(compiled.domain()),
      dispatches_by_class_(compiled.domain().class_count(), 0),
      ops_by_class_(compiled.domain().class_count(), 0) {
  trace_.set_enabled(config_.trace_enabled);
  obs_ = config_.obs;
  if (obs_ != nullptr) {
    obs_track_ = config_.obs_track.is_valid() ? config_.obs_track
                                              : obs_->track("executor");
    const std::string& tn = obs_->track_name(obs_track_);
    c_dispatches_ = obs_->counter(tn + ".dispatches");
    c_emits_ = obs_->counter(tn + ".emits");
  }
}

std::uint64_t Executor::dispatch_count(ClassId cls) const {
  if (cls.value() >= dispatches_by_class_.size()) return 0;
  return dispatches_by_class_[cls.value()];
}

std::uint64_t Executor::ops_executed(ClassId cls) const {
  if (cls.value() >= ops_by_class_.size()) return 0;
  return ops_by_class_[cls.value()];
}

Executor::Executor(const oal::CompiledDomain& compiled, ExecutorConfig config,
                   std::function<bool(ClassId)> is_local,
                   std::function<void(EventMessage)> remote_out)
    : Executor(compiled, config) {
  is_local_ = std::move(is_local);
  remote_out_ = std::move(remote_out);
}

ClassId Executor::class_of(std::string_view name) const {
  ClassId id = domain().find_class_id(name);
  if (!id.is_valid()) {
    throw ModelError("unknown class '" + std::string(name) + "'");
  }
  return id;
}

InstanceHandle Executor::create(ClassId cls) {
  InstanceHandle h = db_.create(cls);
  on_create(h);
  return h;
}

InstanceHandle Executor::create(std::string_view class_name) {
  return create(class_of(class_name));
}

InstanceHandle Executor::create_with(
    std::string_view class_name,
    const std::vector<std::pair<std::string, Value>>& attrs) {
  ClassId cls = class_of(class_name);
  InstanceHandle h = create(cls);
  const xtuml::ClassDef& def = domain().cls(cls);
  for (const auto& [name, value] : attrs) {
    const xtuml::AttributeDef* a = def.find_attribute(name);
    if (a == nullptr) {
      throw ModelError("create_with: class '" + def.name +
                       "' has no attribute '" + name + "'");
    }
    db_.set_attr(h, a->id, value);
  }
  return h;
}

void Executor::destroy(const InstanceHandle& h) {
  on_delete(h);
  db_.destroy(h);
}

void Executor::inject(const InstanceHandle& target, EventId event,
                      std::vector<Value> args, std::uint64_t delay) {
  emit(InstanceHandle::null(), target, event, std::move(args), delay);
}

void Executor::inject(const InstanceHandle& target, std::string_view event_name,
                      std::vector<Value> args, std::uint64_t delay) {
  const xtuml::ClassDef& def = domain().cls(target.cls);
  const xtuml::EventDef* ev = def.find_event(event_name);
  if (ev == nullptr) {
    throw ModelError("inject: class '" + def.name + "' has no event '" +
                     std::string(event_name) + "'");
  }
  inject(target, ev->id, std::move(args), delay);
}

void Executor::emit(const InstanceHandle& sender, const InstanceHandle& target,
                    EventId event, std::vector<Value> args,
                    std::uint64_t delay) {
  EventMessage m;
  m.sender = sender;
  m.target = target;
  m.event = event;
  m.args = std::move(args);
  m.deliver_at = now_ + delay;
  m.seq = seq_++;
  OBS_COUNT(c_emits_);

  if (trace_.enabled()) {
    TraceEvent te;
    te.kind = TraceKind::kSend;
    te.tick = now_;
    te.subject = target;
    te.peer = sender;
    te.event = event;
    te.args = m.args;
    trace_.record(std::move(te));
  }

  if (is_local_ && !is_local_(target.cls)) {
    if (!remote_out_) {
      throw ModelError("signal to non-local class but no remote route");
    }
    remote_out_(std::move(m));
    return;
  }

  if (delay > 0) {
    timers_.push(std::move(m));
  } else {
    enqueue_ready(std::move(m));
  }
  high_water_ = std::max(
      high_water_, self_queue_.size() + ext_queue_.size() + timers_.size());
}

void Executor::deliver_remote(EventMessage m) {
  // The signal was already traced at the sending side; deliver_at is
  // re-based to local time by the bus model before this call.
  if (m.deliver_at > now_) {
    m.seq = seq_++;
    timers_.push(std::move(m));
  } else {
    enqueue_ready(std::move(m));
  }
}

void Executor::enqueue_ready(EventMessage m) {
  if (config_.policy == QueuePolicy::kXtuml && m.self_directed()) {
    self_queue_.push_back(std::move(m));
  } else {
    ext_queue_.push_back(std::move(m));
  }
}

void Executor::release_due_timers() {
  while (!timers_.empty() && timers_.top().deliver_at <= now_) {
    enqueue_ready(timers_.top());
    timers_.pop();
  }
}

void Executor::advance_time(std::uint64_t ticks) {
  now_ += ticks;
  release_due_timers();
}

std::optional<std::uint64_t> Executor::next_deadline() const {
  if (timers_.empty()) return std::nullopt;
  return timers_.top().deliver_at;
}

bool Executor::idle() const { return self_queue_.empty() && ext_queue_.empty(); }

bool Executor::drained() const { return idle() && timers_.empty(); }

bool Executor::step() {
  release_due_timers();
  EventMessage m;
  if (!self_queue_.empty()) {
    m = std::move(self_queue_.front());
    self_queue_.pop_front();
  } else if (!ext_queue_.empty()) {
    m = std::move(ext_queue_.front());
    ext_queue_.pop_front();
  } else {
    return false;
  }
  dispatch(std::move(m));
  return true;
}

bool Executor::step_if(const std::function<bool(const EventMessage&)>& pred) {
  release_due_timers();
  for (std::deque<EventMessage>* q : {&self_queue_, &ext_queue_}) {
    for (auto it = q->begin(); it != q->end(); ++it) {
      if (pred(*it)) {
        EventMessage m = std::move(*it);
        q->erase(it);
        dispatch(std::move(m));
        return true;
      }
    }
  }
  return false;
}

std::vector<EventMessage> Executor::ready_snapshot() const {
  std::vector<EventMessage> out;
  out.reserve(self_queue_.size() + ext_queue_.size());
  for (const EventMessage& m : self_queue_) out.push_back(m);
  for (const EventMessage& m : ext_queue_) out.push_back(m);
  return out;
}

bool Executor::dispatch_ready(std::size_t index) {
  release_due_timers();
  if (index < self_queue_.size()) {
    EventMessage m = std::move(self_queue_[index]);
    self_queue_.erase(self_queue_.begin() + static_cast<std::ptrdiff_t>(index));
    dispatch(std::move(m));
    return true;
  }
  index -= self_queue_.size();
  if (index < ext_queue_.size()) {
    EventMessage m = std::move(ext_queue_[index]);
    ext_queue_.erase(ext_queue_.begin() + static_cast<std::ptrdiff_t>(index));
    dispatch(std::move(m));
    return true;
  }
  return false;
}

std::size_t Executor::run_to_quiescence(std::size_t max_dispatches) {
  std::size_t n = 0;
  while (n < max_dispatches && step()) ++n;
  return n;
}

std::size_t Executor::run_all(std::size_t max_dispatches) {
  std::size_t n = 0;
  while (n < max_dispatches) {
    n += run_to_quiescence(max_dispatches - n);
    if (timers_.empty()) break;
    // Jump to the next deadline.
    now_ = timers_.top().deliver_at;
    release_due_timers();
  }
  return n;
}

void Executor::dispatch(EventMessage m) {
  // Signals to instances deleted after the send are discarded (xtUML).
  if (!db_.is_alive(m.target)) {
    if (trace_.enabled()) {
      TraceEvent te;
      te.kind = TraceKind::kIgnored;
      te.tick = now_;
      te.subject = m.target;
      te.event = m.event;
      trace_.record(std::move(te));
    }
    recycle_args(std::move(m.args));
    return;
  }

  const xtuml::ClassDef& def = domain().cls(m.target.cls);
  StateId from = db_.current_state(m.target);
  const xtuml::TransitionDef* t = transition_for(def, from, m.event);
  if (t == nullptr) {
    if (def.fallback == xtuml::EventFallback::kCantHappen) {
      throw ModelError("can't-happen: event '" + def.event(m.event).name +
                       "' in state '" + def.state(from).name + "' of " +
                       m.target.to_string());
    }
    if (trace_.enabled()) {
      TraceEvent te;
      te.kind = TraceKind::kIgnored;
      te.tick = now_;
      te.subject = m.target;
      te.event = m.event;
      te.from_state = from;
      trace_.record(std::move(te));
    }
    recycle_args(std::move(m.args));
    return;
  }

  db_.set_state(m.target, t->to);
  ++dispatches_;
  ++dispatches_by_class_[m.target.cls.value()];
  OBS_COUNT(c_dispatches_);

  // Span over the whole run-to-completion block (transition + action).
  // The "Class.event" label is only assembled once tracing is known to be
  // on, keeping the disabled path to a pointer test.
  obs::ScopedSpan obs_span;
#if !defined(XTSOC_OBS_OFF)
  if (obs_ != nullptr && obs_->tracing()) {
    obs_span.begin(obs_, obs_track_, def.name + "." + def.event(m.event).name,
                   now_);
  }
#endif

  if (trace_.enabled()) {
    TraceEvent te;
    te.kind = TraceKind::kDispatch;
    te.tick = now_;
    te.subject = m.target;
    te.event = m.event;
    te.from_state = from;
    te.to_state = t->to;
    te.args = m.args;
    trace_.record(std::move(te));
  }

  current_ = m.target;
  InterpResult r;
  if (config_.engine == ActionEngine::kAstWalk) {
    const oal::AnalyzedAction& action =
        compiled_->action(m.target.cls, t->to);
    r = run_action(action, m.target, m.args, *this,
                   config_.max_ops_per_action);
  } else if (config_.engine == ActionEngine::kJit &&
             config_.compiled != nullptr &&
             config_.compiled->has(m.target.cls, t->to)) {
    r = config_.compiled->run(m.target.cls, t->to, m.target, m.args, *this,
                              config_.max_ops_per_action);
  } else {
    // kBytecode, and the per-action fallback for kJit actions the module
    // does not cover — identical observable behaviour either way.
    const Program& prog = bytecode_for(m.target.cls, t->to);
    r = run_bytecode(prog.code, prog.prepared, m.target, m.args, *this,
                     config_.max_ops_per_action, &vm_scratch_);
  }
  current_ = InstanceHandle::null();
  ops_ += r.ops;
  ops_by_class_[m.target.cls.value()] += r.ops;
  recycle_args(std::move(m.args));

  // Entering a final state deletes the instance after its action completes.
  if (def.state(t->to).is_final && !r.self_deleted &&
      db_.is_alive(m.target)) {
    destroy(m.target);
  }
}

const xtuml::TransitionDef* Executor::transition_for(
    const xtuml::ClassDef& def, StateId from, EventId event) {
  const std::size_t ns = def.states.size();
  const std::size_t ne = def.events.size();
  if (ns == 0 || ne == 0) return def.transition_on(from, event);
  if (transitions_.empty()) transitions_.resize(domain().class_count());
  auto& tab = transitions_[def.id.value()];
  if (tab.empty()) {
    tab.assign(ns * ne, nullptr);
    for (const xtuml::TransitionDef& t : def.transitions) {
      auto& slot = tab[t.from.value() * ne + t.event.value()];
      // First declaration wins, matching transition_on()'s scan order.
      if (slot == nullptr) slot = &t;
    }
  }
  if (from.value() >= ns || event.value() >= ne) return nullptr;
  return tab[from.value() * ne + event.value()];
}

const Executor::Program& Executor::bytecode_for(ClassId cls, StateId state) {
  if (bytecode_.empty()) bytecode_.resize(domain().class_count());
  auto& per_class = bytecode_[cls.value()];
  if (per_class.empty()) {
    per_class.resize(domain().cls(cls).states.size());
  }
  auto& slot = per_class[state.value()];
  if (!slot) {
    Program p;
    p.code = oal::compile_bytecode(compiled_->action(cls, state));
    p.prepared = prepare_block(p.code);
    slot = std::move(p);
  }
  return *slot;
}

std::vector<Value> Executor::acquire_args(std::size_t n) {
  if (arg_pool_.empty()) return std::vector<Value>(n);
  std::vector<Value> v = std::move(arg_pool_.back());
  arg_pool_.pop_back();
  // Recycled vectors arrive empty, so resize value-initialises every slot
  // (monostate) — indistinguishable from a freshly allocated vector.
  v.resize(n);
  return v;
}

void Executor::recycle_args(std::vector<Value>&& args) {
  if (arg_pool_.size() >= kMaxPooledArgs) return;
  args.clear();
  if (args.capacity() > 0) arg_pool_.push_back(std::move(args));
}

void Executor::on_create(const InstanceHandle& h) {
  if (!trace_.enabled()) return;
  TraceEvent te;
  te.kind = TraceKind::kCreate;
  te.tick = now_;
  te.subject = h;
  trace_.record(std::move(te));
}

void Executor::on_delete(const InstanceHandle& h) {
  if (!trace_.enabled()) return;
  TraceEvent te;
  te.kind = TraceKind::kDelete;
  te.tick = now_;
  te.subject = h;
  trace_.record(std::move(te));
}

void Executor::on_attr_write(const InstanceHandle& h, AttributeId attr,
                             const Value& v) {
  if (!trace_.enabled()) return;
  TraceEvent te;
  te.kind = TraceKind::kAttrWrite;
  te.tick = now_;
  te.subject = h;
  te.attr = attr;
  te.value = v;
  trace_.record(std::move(te));
}

void Executor::on_log(std::string text) {
  if (!trace_.enabled()) return;
  TraceEvent te;
  te.kind = TraceKind::kLog;
  te.tick = now_;
  te.subject = current_;
  te.text = std::move(text);
  trace_.record(std::move(te));
}

void save_message(snap::Writer& w, const EventMessage& m) {
  save_handle(w, m.target);
  w.u32(m.event.value());
  w.u64(m.args.size());
  for (const Value& v : m.args) save_value(w, v);
  save_handle(w, m.sender);
  w.u64(m.deliver_at);
  w.u64(m.seq);
}

EventMessage load_message(snap::Reader& r) {
  EventMessage m;
  m.target = load_handle(r);
  m.event = EventId(r.u32());
  m.args.resize(r.u64());
  for (Value& v : m.args) v = load_value(r);
  m.sender = load_handle(r);
  m.deliver_at = r.u64();
  m.seq = r.u64();
  return m;
}

void Executor::save_state(snap::Writer& w) const {
  db_.save_state(w);
  trace_.save_state(w);
  w.u64(self_queue_.size());
  for (const EventMessage& m : self_queue_) save_message(w, m);
  w.u64(ext_queue_.size());
  for (const EventMessage& m : ext_queue_) save_message(w, m);
  // The timer heap: copy-and-pop enumerates it in deadline order; reloading
  // by push rebuilds an equivalent heap (pop order is a pure function of
  // the contents), so the byte stream is canonical.
  auto timers = timers_;
  w.u64(timers.size());
  while (!timers.empty()) {
    save_message(w, timers.top());
    timers.pop();
  }
  w.u64(now_);
  w.u64(seq_);
  w.u64(dispatches_);
  w.u64(dispatches_by_class_.size());
  for (std::uint64_t d : dispatches_by_class_) w.u64(d);
  w.u64(ops_by_class_.size());
  for (std::uint64_t o : ops_by_class_) w.u64(o);
  w.u64(ops_);
  w.u64(high_water_);
  // Flat `mem.*` backing store. Empty (and ignored on load) whenever an
  // external memory port is attached — the port's owner checkpoints it.
  w.u64(flat_mem_.size());
  for (const auto& [addr, value] : flat_mem_) {
    w.i64(addr);
    w.i64(value);
  }
}

void Executor::load_state(snap::Reader& r) {
  db_.load_state(r);
  trace_.load_state(r);
  self_queue_.clear();
  std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) self_queue_.push_back(load_message(r));
  ext_queue_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) ext_queue_.push_back(load_message(r));
  timers_ = {};
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) timers_.push(load_message(r));
  now_ = r.u64();
  seq_ = r.u64();
  dispatches_ = r.u64();
  if (r.u64() != dispatches_by_class_.size()) {
    throw snap::SnapError("executor snapshot class count mismatch");
  }
  for (std::uint64_t& d : dispatches_by_class_) d = r.u64();
  if (r.u64() != ops_by_class_.size()) {
    throw snap::SnapError("executor snapshot class count mismatch");
  }
  for (std::uint64_t& o : ops_by_class_) o = r.u64();
  ops_ = r.u64();
  high_water_ = r.u64();
  flat_mem_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t addr = r.i64();
    flat_mem_[addr] = r.i64();
  }
  current_ = InstanceHandle::null();
}

}  // namespace xtsoc::runtime
