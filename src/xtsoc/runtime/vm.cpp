#include "xtsoc/runtime/vm.hpp"

#include <cmath>

namespace xtsoc::runtime {

namespace {

using oal::CodeBlock;
using oal::Instr;
using oal::Op;

class Vm {
public:
  Vm(const CodeBlock& block, const PreparedBlock* prepared,
     const InstanceHandle& self, const std::vector<Value>& params, Host& host,
     std::uint64_t max_ops, VmScratch& scratch)
      : block_(block), prepared_(prepared), self_(self), params_(params),
        host_(host), max_ops_(max_ops), frame_(scratch.frame),
        stack_(scratch.stack) {
    frame_.assign(static_cast<std::size_t>(block.frame_size), Value{});
    stack_.clear();
    if (stack_.capacity() < 32) stack_.reserve(32);
  }

  InterpResult run() {
    exec(block_, prepared_, frame_);
    InterpResult r;
    r.ops = ops_;
    r.self_deleted = self_deleted_;
    return r;
  }

private:
  void tick() {
    if (++ops_ > max_ops_) {
      throw ModelError("action exceeded op limit (runaway loop?)");
    }
  }

  Value pop() {
    if (stack_.empty()) throw ModelError("vm: stack underflow");
    Value v = std::move(stack_.back());
    stack_.pop_back();
    return v;
  }

  /// Top-of-stack without moving it out (for ops that consume in place).
  Value& top() {
    if (stack_.empty()) throw ModelError("vm: stack underflow");
    return stack_.back();
  }

  /// Forwarding push: Value is constructed directly in the stack slot, so
  /// pushing an int64/bool/handle never materializes a temporary variant.
  template <class T>
  void push(T&& v) {
    stack_.emplace_back(std::forward<T>(v));
  }

  static bool both_int(const Value& a, const Value& b) {
    return std::holds_alternative<std::int64_t>(a) &&
           std::holds_alternative<std::int64_t>(b);
  }

  /// Binary arithmetic in place: the result replaces the left operand's
  /// stack slot and only the right operand is popped — one variant write
  /// instead of two pops and a push. The int/int case (the hot one: loop
  /// counters, attribute math) is dispatched first.
  void binary_arith(Op op) {
    if (stack_.size() < 2) throw ModelError("vm: stack underflow");
    Value& lv = stack_[stack_.size() - 2];
    Value& rv = stack_.back();
    if (both_int(lv, rv)) {
      std::int64_t a = std::get<std::int64_t>(lv);
      std::int64_t b = std::get<std::int64_t>(rv);
      stack_.pop_back();
      switch (op) {
        case Op::kAdd: lv = a + b; return;
        case Op::kSub: lv = a - b; return;
        case Op::kMul: lv = a * b; return;
        case Op::kDiv:
          if (b == 0) throw ModelError("integer division by zero");
          lv = a / b;
          return;
        default:
          if (b == 0) throw ModelError("modulo by zero");
          lv = a % b;
          return;
      }
    }
    if (op == Op::kAdd && std::holds_alternative<std::string>(lv)) {
      lv = std::get<std::string>(lv) + std::get<std::string>(rv);
      stack_.pop_back();
      return;
    }
    if (op == Op::kMod) {
      std::int64_t a = as_int(lv);
      std::int64_t b = as_int(rv);
      if (b == 0) throw ModelError("modulo by zero");
      lv = a % b;
      stack_.pop_back();
      return;
    }
    double a = as_real(lv);
    double b = as_real(rv);
    stack_.pop_back();
    switch (op) {
      case Op::kAdd: lv = a + b; return;
      case Op::kSub: lv = a - b; return;
      case Op::kMul: lv = a * b; return;
      case Op::kDiv: lv = a / b; return;
      default: return;
    }
  }

  /// Comparisons in place, same layout as binary_arith.
  void compare(Op op) {
    if (stack_.size() < 2) throw ModelError("vm: stack underflow");
    Value& lv = stack_[stack_.size() - 2];
    Value& rv = stack_.back();
    if (op == Op::kEq || op == Op::kNe) {
      bool eq = value_equals(lv, rv);
      stack_.pop_back();
      lv = op == Op::kEq ? eq : !eq;
      return;
    }
    // Ordering goes through as_real exactly like the interpreter (interp.cpp)
    // — an int/int fast path here could order huge ints differently and
    // break engine parity.
    int cmp;
    if (std::holds_alternative<std::string>(lv)) {
      cmp = std::get<std::string>(lv).compare(std::get<std::string>(rv));
    } else {
      double a = as_real(lv);
      double b = as_real(rv);
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    }
    stack_.pop_back();
    switch (op) {
      case Op::kLt: lv = cmp < 0; return;
      case Op::kLe: lv = cmp <= 0; return;
      case Op::kGt: lv = cmp > 0; return;
      default: lv = cmp >= 0; return;
    }
  }

  /// Execute one block to its kReturn against `frame` (sub-blocks share the
  /// caller's frame). `prepared` mirrors `block`'s sub tree, or is null
  /// when the caller didn't prepare constants (conversion fallback).
  void exec(const CodeBlock& block, const PreparedBlock* prepared,
            std::vector<Value>& frame) {
    const Instr* const code = block.code.data();
    const std::size_t code_size = block.code.size();
    std::size_t pc = 0;
    while (pc < code_size) {
      tick();
      const Instr& i = code[pc];
      switch (i.op) {
        case Op::kPushConst:
          if (prepared != nullptr) {
            push(prepared->constants[i.a]);
          } else {
            push(from_scalar(block.constants[i.a]));
          }
          break;
        case Op::kPushNull:
          push(InstanceHandle::null());
          break;
        case Op::kLoadLocal: {
          Value& v = frame[i.a];
          if (std::holds_alternative<std::monostate>(v)) {
            throw ModelError("read of unset variable");
          }
          push(v);
          break;
        }
        case Op::kStoreLocal:
          frame[i.a] = std::move(top());
          stack_.pop_back();
          break;
        case Op::kLoadParam:
          push(params_[i.a]);
          break;
        case Op::kLoadSelf:
          push(self_);
          break;
        case Op::kLoadSelected:
          push(selected_);
          break;
        case Op::kPop:
          pop();
          break;
        case Op::kGetAttr: {
          InstanceHandle obj = as_handle(top());
          top() = host_.database().get_attr(obj, AttributeId(i.a));
          break;
        }
        case Op::kSetAttr: {
          InstanceHandle obj = as_handle(pop());
          Value v = pop();
          host_.database().set_attr(obj, AttributeId(i.a), v);
          host_.on_attr_write(
              obj, AttributeId(i.a),
              host_.database().get_attr(obj, AttributeId(i.a)));
          break;
        }
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kDiv:
        case Op::kMod:
          binary_arith(i.op);
          break;
        case Op::kEq:
        case Op::kNe:
        case Op::kLt:
        case Op::kLe:
        case Op::kGt:
        case Op::kGe:
          compare(i.op);
          break;
        case Op::kNot:
          top() = !as_bool(top());
          break;
        case Op::kNeg: {
          Value& v = top();
          if (std::holds_alternative<std::int64_t>(v)) {
            v = -std::get<std::int64_t>(v);
          } else {
            v = -as_real(v);
          }
          break;
        }
        case Op::kCard: {
          Value& v = top();
          if (const auto* set = std::get_if<InstanceSet>(&v)) {
            v = static_cast<std::int64_t>(set->size());
          } else {
            v = std::int64_t{as_handle(v).is_null() ? 0 : 1};
          }
          break;
        }
        case Op::kIsEmpty: {
          Value& v = top();
          if (const auto* set = std::get_if<InstanceSet>(&v)) {
            v = set->empty();
          } else {
            const InstanceHandle& h = as_handle(v);
            v = h.is_null() || !host_.database().is_alive(h);
          }
          break;
        }
        case Op::kIndexSet: {
          std::int64_t idx = as_int(pop());
          Value set = pop();
          const InstanceSet& s = as_set(set);
          push(s.at(static_cast<std::size_t>(idx)));
          break;
        }
        case Op::kWiden: {
          Value& v = top();
          if (std::holds_alternative<std::int64_t>(v)) {
            v = static_cast<double>(std::get<std::int64_t>(v));
          }
          break;
        }
        case Op::kJump:
          pc = i.a;
          continue;
        case Op::kJumpIfFalse: {
          bool taken = !as_bool(top());
          stack_.pop_back();
          if (taken) {
            pc = i.a;
            continue;
          }
          break;
        }
        case Op::kReturn:
          return;
        case Op::kCreate: {
          InstanceHandle h = host_.database().create(ClassId(i.a));
          host_.on_create(h);
          push(h);
          break;
        }
        case Op::kDelete: {
          InstanceHandle h = as_handle(pop());
          host_.on_delete(h);
          host_.database().destroy(h);
          if (h == self_) self_deleted_ = true;
          break;
        }
        case Op::kRelate: {
          InstanceHandle b = as_handle(pop());
          InstanceHandle a = as_handle(pop());
          host_.database().relate(a, b, AssociationId(i.a));
          break;
        }
        case Op::kUnrelate: {
          InstanceHandle b = as_handle(pop());
          InstanceHandle a = as_handle(pop());
          host_.database().unrelate(a, b, AssociationId(i.a));
          break;
        }
        case Op::kSelectAll:
          push(host_.database().all_of(ClassId(i.a)));
          break;
        case Op::kRelated: {
          InstanceHandle start = as_handle(pop());
          push(host_.database().related(start, AssociationId(i.a)));
          break;
        }
        case Op::kFilter: {
          InstanceSet in = as_set(pop());
          const CodeBlock& sub = block.subs[i.a];
          const PreparedBlock* psub =
              prepared != nullptr ? &prepared->subs[i.a] : nullptr;
          const bool first_only = i.b != 0;
          InstanceSet out;
          Value saved = selected_;
          for (const InstanceHandle& h : in) {
            selected_ = h;
            exec(sub, psub, frame);
            if (as_bool(pop())) {
              out.push_back(h);
              if (first_only) break;
            }
          }
          selected_ = std::move(saved);
          push(std::move(out));
          break;
        }
        case Op::kSetToRef: {
          Value v = pop();
          const InstanceSet& s = as_set(v);
          push(s.empty() ? InstanceHandle::null() : s.front());
          break;
        }
        case Op::kGenerate: {
          ClassId target_cls(i.a >> 16);
          EventId event(i.a & 0xffff);
          std::uint32_t argc = i.b >> 1;
          const bool has_delay = (i.b & 1) != 0;
          std::uint64_t delay = 0;
          if (has_delay) {
            std::int64_t d = as_int(pop());
            if (d < 0) throw ModelError("negative delay in generate");
            delay = static_cast<std::uint64_t>(d);
          }
          InstanceHandle target = as_handle(pop());
          if (target.is_null()) {
            throw ModelError("generate to a null instance reference");
          }
          // The payload vector comes from the host's recycling pool: it
          // becomes EventMessage::args and returns to the pool after the
          // receiving action completes.
          std::vector<Value> args = host_.acquire_args(argc);
          for (std::uint32_t k = argc; k > 0; --k) {
            args[k - 1] = pop();
          }
          (void)target_cls;
          host_.emit(self_, target, event, std::move(args), delay);
          break;
        }
        case Op::kLog: {
          std::vector<Value> vals(i.a);
          for (std::uint32_t k = i.a; k > 0; --k) vals[k - 1] = pop();
          std::string text;
          for (std::size_t k = 0; k < vals.size(); ++k) {
            if (k > 0) text += ' ';
            text += to_string(vals[k]);
          }
          host_.on_log(std::move(text));
          break;
        }
      }
      ++pc;
    }
  }

  const CodeBlock& block_;
  const PreparedBlock* prepared_;
  InstanceHandle self_;
  const std::vector<Value>& params_;
  Host& host_;
  std::uint64_t max_ops_;
  std::vector<Value>& frame_;
  std::vector<Value>& stack_;
  Value selected_ = InstanceHandle::null();
  std::uint64_t ops_ = 0;
  bool self_deleted_ = false;
};

}  // namespace

PreparedBlock prepare_block(const oal::CodeBlock& block) {
  PreparedBlock p;
  p.constants.reserve(block.constants.size());
  for (const xtuml::ScalarValue& c : block.constants) {
    p.constants.push_back(from_scalar(c));
  }
  p.subs.reserve(block.subs.size());
  for (const oal::CodeBlock& sub : block.subs) {
    p.subs.push_back(prepare_block(sub));
  }
  return p;
}

InterpResult run_bytecode(const oal::CodeBlock& block,
                          const InstanceHandle& self,
                          const std::vector<Value>& params, Host& host,
                          std::uint64_t max_ops, VmScratch* scratch) {
  if (scratch != nullptr) {
    return Vm(block, nullptr, self, params, host, max_ops, *scratch).run();
  }
  VmScratch local;
  return Vm(block, nullptr, self, params, host, max_ops, local).run();
}

InterpResult run_bytecode(const oal::CodeBlock& block,
                          const PreparedBlock& prepared,
                          const InstanceHandle& self,
                          const std::vector<Value>& params, Host& host,
                          std::uint64_t max_ops, VmScratch* scratch) {
  if (scratch != nullptr) {
    return Vm(block, &prepared, self, params, host, max_ops, *scratch).run();
  }
  VmScratch local;
  return Vm(block, &prepared, self, params, host, max_ops, local).run();
}

}  // namespace xtsoc::runtime
