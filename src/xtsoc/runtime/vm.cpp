#include "xtsoc/runtime/vm.hpp"

#include <cmath>

// Dispatch strategy: on GNU-compatible compilers the VM threads execution
// with computed goto — every op body ends in its own indirect branch, so
// the branch predictor learns per-op successor patterns instead of funneling
// every transition through one switch branch. Elsewhere (and under
// -DXTSOC_VM_NO_COMPUTED_GOTO for A/B measurement) the portable switch loop
// is used. Both forms share the same op bodies via the VM_CASE/VM_NEXT/
// VM_JUMP macros, so the semantics cannot drift apart.
#if defined(__GNUC__) && !defined(XTSOC_VM_NO_COMPUTED_GOTO)
#define XTSOC_VM_USE_COMPUTED_GOTO 1
#else
#define XTSOC_VM_USE_COMPUTED_GOTO 0
#endif

namespace xtsoc::runtime {

namespace {

using oal::CodeBlock;
using oal::Instr;
using oal::Op;

class Vm {
public:
  Vm(const CodeBlock& block, const PreparedBlock* prepared,
     const InstanceHandle& self, const std::vector<Value>& params, Host& host,
     std::uint64_t max_ops, VmScratch& scratch)
      : block_(block), prepared_(prepared), self_(self), params_(params),
        host_(host), max_ops_(max_ops), frame_(scratch.frame),
        stack_(scratch.stack) {
    frame_.assign(static_cast<std::size_t>(block.frame_size), Value{});
    stack_.clear();
    if (stack_.capacity() < 32) stack_.reserve(32);
  }

  InterpResult run() {
    exec(block_, prepared_, frame_);
    InterpResult r;
    r.ops = ops_;
    r.self_deleted = self_deleted_;
    return r;
  }

private:
  void tick() {
    if (++ops_ > max_ops_) {
      throw ModelError("action exceeded op limit (runaway loop?)");
    }
  }

  Value pop() {
    if (stack_.empty()) throw ModelError("vm: stack underflow");
    Value v = std::move(stack_.back());
    stack_.pop_back();
    return v;
  }

  /// Top-of-stack without moving it out (for ops that consume in place).
  Value& top() {
    if (stack_.empty()) throw ModelError("vm: stack underflow");
    return stack_.back();
  }

  /// Forwarding push: Value is constructed directly in the stack slot, so
  /// pushing an int64/bool/handle never materializes a temporary variant.
  template <class T>
  void push(T&& v) {
    stack_.emplace_back(std::forward<T>(v));
  }

  static bool both_int(const Value& a, const Value& b) {
    return std::holds_alternative<std::int64_t>(a) &&
           std::holds_alternative<std::int64_t>(b);
  }

  /// Binary arithmetic in place: the result replaces the left operand's
  /// stack slot and only the right operand is popped — one variant write
  /// instead of two pops and a push. The int/int case (the hot one: loop
  /// counters, attribute math) is dispatched first.
  void binary_arith(Op op) {
    if (stack_.size() < 2) throw ModelError("vm: stack underflow");
    Value& lv = stack_[stack_.size() - 2];
    Value& rv = stack_.back();
    if (both_int(lv, rv)) {
      std::int64_t a = std::get<std::int64_t>(lv);
      std::int64_t b = std::get<std::int64_t>(rv);
      stack_.pop_back();
      switch (op) {
        case Op::kAdd: lv = a + b; return;
        case Op::kSub: lv = a - b; return;
        case Op::kMul: lv = a * b; return;
        case Op::kDiv:
          if (b == 0) throw ModelError("integer division by zero");
          lv = a / b;
          return;
        default:
          if (b == 0) throw ModelError("modulo by zero");
          lv = a % b;
          return;
      }
    }
    if (op == Op::kAdd && std::holds_alternative<std::string>(lv)) {
      lv = std::get<std::string>(lv) + std::get<std::string>(rv);
      stack_.pop_back();
      return;
    }
    if (op == Op::kMod) {
      std::int64_t a = as_int(lv);
      std::int64_t b = as_int(rv);
      if (b == 0) throw ModelError("modulo by zero");
      lv = a % b;
      stack_.pop_back();
      return;
    }
    double a = as_real(lv);
    double b = as_real(rv);
    stack_.pop_back();
    switch (op) {
      case Op::kAdd: lv = a + b; return;
      case Op::kSub: lv = a - b; return;
      case Op::kMul: lv = a * b; return;
      case Op::kDiv: lv = a / b; return;
      default: return;
    }
  }

  /// Comparisons in place, same layout as binary_arith.
  void compare(Op op) {
    if (stack_.size() < 2) throw ModelError("vm: stack underflow");
    Value& lv = stack_[stack_.size() - 2];
    Value& rv = stack_.back();
    if (op == Op::kEq || op == Op::kNe) {
      bool eq = value_equals(lv, rv);
      stack_.pop_back();
      lv = op == Op::kEq ? eq : !eq;
      return;
    }
    // Ordering goes through as_real exactly like the interpreter (interp.cpp)
    // — an int/int fast path here could order huge ints differently and
    // break engine parity.
    int cmp;
    if (std::holds_alternative<std::string>(lv)) {
      cmp = std::get<std::string>(lv).compare(std::get<std::string>(rv));
    } else {
      double a = as_real(lv);
      double b = as_real(rv);
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    }
    stack_.pop_back();
    switch (op) {
      case Op::kLt: lv = cmp < 0; return;
      case Op::kLe: lv = cmp <= 0; return;
      case Op::kGt: lv = cmp > 0; return;
      default: lv = cmp >= 0; return;
    }
  }

  /// Execute one block to its kReturn against `frame` (sub-blocks share the
  /// caller's frame). `prepared` mirrors `block`'s sub tree, or is null
  /// when the caller didn't prepare constants (conversion fallback).
  void exec(const CodeBlock& block, const PreparedBlock* prepared,
            std::vector<Value>& frame) {
    const Instr* const code = block.code.data();
    const std::size_t code_size = block.code.size();
    std::size_t pc = 0;

#if XTSOC_VM_USE_COMPUTED_GOTO
    // Indexed by Op's underlying value — order must match the enum in
    // oal/bytecode.hpp exactly (static_assert guards the count).
    static const void* const kTargets[] = {
        &&vm_kPushConst, &&vm_kPushNull,  &&vm_kLoadLocal, &&vm_kStoreLocal,
        &&vm_kLoadParam, &&vm_kLoadSelf,  &&vm_kLoadSelected, &&vm_kPop,
        &&vm_kGetAttr,   &&vm_kSetAttr,   &&vm_kAdd,       &&vm_kSub,
        &&vm_kMul,       &&vm_kDiv,       &&vm_kMod,       &&vm_kEq,
        &&vm_kNe,        &&vm_kLt,        &&vm_kLe,        &&vm_kGt,
        &&vm_kGe,        &&vm_kNot,       &&vm_kNeg,       &&vm_kCard,
        &&vm_kIsEmpty,   &&vm_kIndexSet,  &&vm_kWiden,     &&vm_kJump,
        &&vm_kJumpIfFalse, &&vm_kReturn,  &&vm_kCreate,    &&vm_kDelete,
        &&vm_kRelate,    &&vm_kUnrelate,  &&vm_kSelectAll, &&vm_kRelated,
        &&vm_kFilter,    &&vm_kSetToRef,  &&vm_kGenerate,  &&vm_kLog,
        &&vm_kMemRead,   &&vm_kMemWrite};
    static_assert(sizeof(kTargets) / sizeof(kTargets[0]) ==
                      static_cast<std::size_t>(Op::kMemWrite) + 1,
                  "kTargets must cover every oal::Op");
#define VM_CASE(name) vm_##name:
#define VM_DISPATCH()                                      \
  do {                                                     \
    if (pc >= code_size) return;                           \
    tick();                                                \
    goto* kTargets[static_cast<unsigned>(code[pc].op)];    \
  } while (0)
#define VM_NEXT()            \
  do {                       \
    ++pc;                    \
    VM_DISPATCH();           \
  } while (0)
#define VM_JUMP(target)      \
  do {                       \
    pc = (target);           \
    VM_DISPATCH();           \
  } while (0)
    VM_DISPATCH();
#else
#define VM_CASE(name) case Op::name:
// break leaves the switch; the enclosing loop re-checks pc and ticks.
#define VM_NEXT() \
  {               \
    ++pc;         \
    break;        \
  }
#define VM_JUMP(target) \
  {                     \
    pc = (target);      \
    break;              \
  }
    while (pc < code_size) {
      tick();
      switch (code[pc].op) {
#endif

    VM_CASE(kPushConst) {
      const Instr& i = code[pc];
      if (prepared != nullptr) {
        push(prepared->constants[i.a]);
      } else {
        push(from_scalar(block.constants[i.a]));
      }
      VM_NEXT();
    }
    VM_CASE(kPushNull) {
      push(InstanceHandle::null());
      VM_NEXT();
    }
    VM_CASE(kLoadLocal) {
      Value& v = frame[code[pc].a];
      if (std::holds_alternative<std::monostate>(v)) {
        throw ModelError("read of unset variable");
      }
      push(v);
      VM_NEXT();
    }
    VM_CASE(kStoreLocal) {
      frame[code[pc].a] = std::move(top());
      stack_.pop_back();
      VM_NEXT();
    }
    VM_CASE(kLoadParam) {
      push(params_[code[pc].a]);
      VM_NEXT();
    }
    VM_CASE(kLoadSelf) {
      push(self_);
      VM_NEXT();
    }
    VM_CASE(kLoadSelected) {
      push(selected_);
      VM_NEXT();
    }
    VM_CASE(kPop) {
      pop();
      VM_NEXT();
    }
    VM_CASE(kGetAttr) {
      InstanceHandle obj = as_handle(top());
      top() = host_.database().get_attr(obj, AttributeId(code[pc].a));
      VM_NEXT();
    }
    VM_CASE(kSetAttr) {
      const Instr& i = code[pc];
      InstanceHandle obj = as_handle(pop());
      Value v = pop();
      host_.database().set_attr(obj, AttributeId(i.a), v);
      host_.on_attr_write(obj, AttributeId(i.a),
                          host_.database().get_attr(obj, AttributeId(i.a)));
      VM_NEXT();
    }
    VM_CASE(kAdd)
    VM_CASE(kSub)
    VM_CASE(kMul)
    VM_CASE(kDiv)
    VM_CASE(kMod) {
      binary_arith(code[pc].op);
      VM_NEXT();
    }
    VM_CASE(kEq)
    VM_CASE(kNe)
    VM_CASE(kLt)
    VM_CASE(kLe)
    VM_CASE(kGt)
    VM_CASE(kGe) {
      compare(code[pc].op);
      VM_NEXT();
    }
    VM_CASE(kNot) {
      top() = !as_bool(top());
      VM_NEXT();
    }
    VM_CASE(kNeg) {
      Value& v = top();
      if (std::holds_alternative<std::int64_t>(v)) {
        v = -std::get<std::int64_t>(v);
      } else {
        v = -as_real(v);
      }
      VM_NEXT();
    }
    VM_CASE(kCard) {
      Value& v = top();
      if (const auto* set = std::get_if<InstanceSet>(&v)) {
        v = static_cast<std::int64_t>(set->size());
      } else {
        v = std::int64_t{as_handle(v).is_null() ? 0 : 1};
      }
      VM_NEXT();
    }
    VM_CASE(kIsEmpty) {
      Value& v = top();
      if (const auto* set = std::get_if<InstanceSet>(&v)) {
        v = set->empty();
      } else {
        const InstanceHandle& h = as_handle(v);
        v = h.is_null() || !host_.database().is_alive(h);
      }
      VM_NEXT();
    }
    VM_CASE(kIndexSet) {
      std::int64_t idx = as_int(pop());
      Value set = pop();
      const InstanceSet& s = as_set(set);
      push(s.at(static_cast<std::size_t>(idx)));
      VM_NEXT();
    }
    VM_CASE(kWiden) {
      Value& v = top();
      if (std::holds_alternative<std::int64_t>(v)) {
        v = static_cast<double>(std::get<std::int64_t>(v));
      }
      VM_NEXT();
    }
    VM_CASE(kJump) {
      VM_JUMP(code[pc].a);
    }
    VM_CASE(kJumpIfFalse) {
      bool taken = !as_bool(top());
      stack_.pop_back();
      if (taken) {
        VM_JUMP(code[pc].a);
      }
      VM_NEXT();
    }
    VM_CASE(kReturn) { return; }
    VM_CASE(kCreate) {
      InstanceHandle h = host_.database().create(ClassId(code[pc].a));
      host_.on_create(h);
      push(h);
      VM_NEXT();
    }
    VM_CASE(kDelete) {
      InstanceHandle h = as_handle(pop());
      host_.on_delete(h);
      host_.database().destroy(h);
      if (h == self_) self_deleted_ = true;
      VM_NEXT();
    }
    VM_CASE(kRelate) {
      InstanceHandle b = as_handle(pop());
      InstanceHandle a = as_handle(pop());
      host_.database().relate(a, b, AssociationId(code[pc].a));
      VM_NEXT();
    }
    VM_CASE(kUnrelate) {
      InstanceHandle b = as_handle(pop());
      InstanceHandle a = as_handle(pop());
      host_.database().unrelate(a, b, AssociationId(code[pc].a));
      VM_NEXT();
    }
    VM_CASE(kSelectAll) {
      push(host_.database().all_of(ClassId(code[pc].a)));
      VM_NEXT();
    }
    VM_CASE(kRelated) {
      InstanceHandle start = as_handle(pop());
      push(host_.database().related(start, AssociationId(code[pc].a)));
      VM_NEXT();
    }
    VM_CASE(kFilter) {
      const Instr& i = code[pc];
      InstanceSet in = as_set(pop());
      const CodeBlock& sub = block.subs[i.a];
      const PreparedBlock* psub =
          prepared != nullptr ? &prepared->subs[i.a] : nullptr;
      const bool first_only = i.b != 0;
      InstanceSet out;
      Value saved = selected_;
      for (const InstanceHandle& h : in) {
        selected_ = h;
        exec(sub, psub, frame);
        if (as_bool(pop())) {
          out.push_back(h);
          if (first_only) break;
        }
      }
      selected_ = std::move(saved);
      push(std::move(out));
      VM_NEXT();
    }
    VM_CASE(kSetToRef) {
      Value v = pop();
      const InstanceSet& s = as_set(v);
      push(s.empty() ? InstanceHandle::null() : s.front());
      VM_NEXT();
    }
    VM_CASE(kGenerate) {
      const Instr& i = code[pc];
      ClassId target_cls(i.a >> 16);
      EventId event(i.a & 0xffff);
      std::uint32_t argc = i.b >> 1;
      const bool has_delay = (i.b & 1) != 0;
      std::uint64_t delay = 0;
      if (has_delay) {
        std::int64_t d = as_int(pop());
        if (d < 0) throw ModelError("negative delay in generate");
        delay = static_cast<std::uint64_t>(d);
      }
      InstanceHandle target = as_handle(pop());
      if (target.is_null()) {
        throw ModelError("generate to a null instance reference");
      }
      // The payload vector comes from the host's recycling pool: it
      // becomes EventMessage::args and returns to the pool after the
      // receiving action completes.
      std::vector<Value> args = host_.acquire_args(argc);
      for (std::uint32_t k = argc; k > 0; --k) {
        args[k - 1] = pop();
      }
      (void)target_cls;
      host_.emit(self_, target, event, std::move(args), delay);
      VM_NEXT();
    }
    VM_CASE(kLog) {
      const Instr& i = code[pc];
      std::vector<Value> vals(i.a);
      for (std::uint32_t k = i.a; k > 0; --k) vals[k - 1] = pop();
      std::string text;
      for (std::size_t k = 0; k < vals.size(); ++k) {
        if (k > 0) text += ' ';
        text += to_string(vals[k]);
      }
      host_.on_log(std::move(text));
      VM_NEXT();
    }
    VM_CASE(kMemRead) {
      Value& v = top();
      v = host_.mem_read(as_int(v));
      VM_NEXT();
    }
    VM_CASE(kMemWrite) {
      // Stack is [addr, value]; value converted first, matching the
      // interpreter and the jit lowering.
      std::int64_t v = as_int(pop());
      std::int64_t a = as_int(pop());
      host_.mem_write(a, v);
      VM_NEXT();
    }

#if !XTSOC_VM_USE_COMPUTED_GOTO
      }
    }
#endif
#undef VM_CASE
#undef VM_NEXT
#undef VM_JUMP
#if XTSOC_VM_USE_COMPUTED_GOTO
#undef VM_DISPATCH
#endif
  }

  const CodeBlock& block_;
  const PreparedBlock* prepared_;
  InstanceHandle self_;
  const std::vector<Value>& params_;
  Host& host_;
  std::uint64_t max_ops_;
  std::vector<Value>& frame_;
  std::vector<Value>& stack_;
  Value selected_ = InstanceHandle::null();
  std::uint64_t ops_ = 0;
  bool self_deleted_ = false;
};

}  // namespace

PreparedBlock prepare_block(const oal::CodeBlock& block) {
  PreparedBlock p;
  p.constants.reserve(block.constants.size());
  for (const xtuml::ScalarValue& c : block.constants) {
    p.constants.push_back(from_scalar(c));
  }
  p.subs.reserve(block.subs.size());
  for (const oal::CodeBlock& sub : block.subs) {
    p.subs.push_back(prepare_block(sub));
  }
  return p;
}

InterpResult run_bytecode(const oal::CodeBlock& block,
                          const InstanceHandle& self,
                          const std::vector<Value>& params, Host& host,
                          std::uint64_t max_ops, VmScratch* scratch) {
  if (scratch != nullptr) {
    return Vm(block, nullptr, self, params, host, max_ops, *scratch).run();
  }
  VmScratch local;
  return Vm(block, nullptr, self, params, host, max_ops, local).run();
}

InterpResult run_bytecode(const oal::CodeBlock& block,
                          const PreparedBlock& prepared,
                          const InstanceHandle& self,
                          const std::vector<Value>& params, Host& host,
                          std::uint64_t max_ops, VmScratch* scratch) {
  if (scratch != nullptr) {
    return Vm(block, &prepared, self, params, host, max_ops, *scratch).run();
  }
  VmScratch local;
  return Vm(block, &prepared, self, params, host, max_ops, local).run();
}

}  // namespace xtsoc::runtime
