// xtsoc::fault — mark-driven deterministic fault injection.
//
// The paper's thesis is that every platform decision lives in the marks,
// not the model; fault behaviour is no exception. A FaultSpec is read
// straight from domain-scope marks (faultSeed, faultRate.*, faultWindow —
// the sticky notes of a failure scenario) and compiled into a Plan: one
// xorshift64* PRNG stream per injection site (a mesh link, a bus
// endpoint, a bridge wire), all derived from the single seed. Because
// every transport consults its stream at a point that executes in the
// same serial order at every `threads`/`window` setting (the fabric tick,
// the serial outbox flush, the bridge carry loop), an identical plan and
// seed reproduce the exact same faults cycle for cycle — the same
// determinism contract the windowed scheduler already honours (PRs 2-3).
//
// The Plan only *decides*; the transports (noc::Fabric, cosim::Bus,
// bridge::SystemExecutor) inject and count. A null Plan pointer leaves
// every hook a dead null-test, so the fault-free path stays byte-identical
// to a build that never heard of faults (CI gates the overhead at <= 2%,
// same as the obs probes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

#include "xtsoc/marks/marks.hpp"

namespace xtsoc::snap {
class Writer;
class Reader;
}  // namespace xtsoc::snap

namespace xtsoc::fault {

/// Mark keys (domain scope; the canonical definitions live with the other
/// platform keys in marks.hpp, where marks::validate checks them). Rates
/// are per-decision-point probabilities in [0, 1]: flitDrop/flitCorrupt
/// per flit per link traversal, linkDown per link per cycle, busError per
/// bus transfer attempt.
inline constexpr const char* kFaultSeed = marks::kFaultSeed;
inline constexpr const char* kFaultWindow = marks::kFaultWindow;
inline constexpr const char* kFaultWindowStart = marks::kFaultWindowStart;
inline constexpr const char* kFaultRateFlitDrop = marks::kFaultRateFlitDrop;
inline constexpr const char* kFaultRateFlitCorrupt =
    marks::kFaultRateFlitCorrupt;
inline constexpr const char* kFaultRateLinkDown = marks::kFaultRateLinkDown;
inline constexpr const char* kFaultRateBusError = marks::kFaultRateBusError;

/// The raw fault scenario, as read from the marks.
struct FaultSpec {
  std::uint64_t seed = 1;      ///< faultSeed: the single reproducibility root
  double flit_drop = 0.0;      ///< faultRate.flitDrop
  double flit_corrupt = 0.0;   ///< faultRate.flitCorrupt
  double link_down = 0.0;      ///< faultRate.linkDown
  double bus_error = 0.0;      ///< faultRate.busError
  /// faultWindow: inject only during cycles (window_start, window];
  /// window 0 = no upper bound.
  std::uint64_t window = 0;
  /// faultWindow.start: no faults during the first `window_start` cycles
  /// (default 0 = from the beginning). The bound is exclusive — cycles are
  /// 1-indexed, so a start of N masks exactly cycles 1..N — which is what
  /// makes warm-start campaigns exact: a checkpoint taken after
  /// `window_start` cycles has consulted no stream at all, so restoring
  /// and attaching a fresh per-seed Plan replays the cold run.
  std::uint64_t window_start = 0;
  /// Transmission attempts a resilient transport makes before reporting a
  /// message as dropped (never a hang). Code-settable, not a mark.
  int retry_budget = 4;

  /// Read the fault marks out of `marks` (missing keys keep defaults).
  /// Values outside their range are rejected by marks::validate; this
  /// reader clamps defensively rather than re-diagnosing.
  static FaultSpec from_marks(const marks::MarkSet& marks);

  /// True when any rate is positive — a zero-rate spec injects nothing.
  bool any() const {
    return flit_drop > 0.0 || flit_corrupt > 0.0 || link_down > 0.0 ||
           bus_error > 0.0;
  }
};

/// Where a PRNG stream is anchored. Each (kind, site) pair owns an
/// independent stream, so adding traffic on one link never perturbs the
/// fault sequence of another.
enum class Site : std::uint32_t {
  kFlitDrop = 1,
  kFlitCorrupt = 2,
  kLinkDown = 3,
  kBusError = 4,
  kBridge = 5,
};

/// The compiled fault plan: spec + per-site xorshift64* streams. One Plan
/// drives one run; it is NOT thread-safe (all transports that consult it
/// already execute serially — see the header comment).
class Plan {
public:
  Plan() = default;
  explicit Plan(FaultSpec spec) : spec_(spec) {}

  const FaultSpec& spec() const { return spec_; }

  /// True when `cycle` is inside the injection window (window_start
  /// exclusive, window inclusive).
  bool active(std::uint64_t cycle) const {
    return cycle > spec_.window_start &&
           (spec_.window == 0 || cycle <= spec_.window);
  }

  // --- decision points (each advances the site's stream iff its rate is
  // --- positive and `cycle` is inside the window) ----------------------------
  bool flit_drop(std::uint32_t link, std::uint64_t cycle) {
    return roll(Site::kFlitDrop, link, spec_.flit_drop, cycle);
  }
  bool flit_corrupt(std::uint32_t link, std::uint64_t cycle) {
    return roll(Site::kFlitCorrupt, link, spec_.flit_corrupt, cycle);
  }
  /// 0 = the link stays up this cycle; otherwise the outage length in
  /// cycles (4..11, drawn from the link's stream).
  std::uint32_t link_outage(std::uint32_t link, std::uint64_t cycle) {
    if (!roll(Site::kLinkDown, link, spec_.link_down, cycle)) return 0;
    return 4 + static_cast<std::uint32_t>(next(Site::kLinkDown, link) & 7);
  }
  bool bus_error(std::uint32_t endpoint, std::uint64_t cycle) {
    return roll(Site::kBusError, endpoint, spec_.bus_error, cycle);
  }
  /// Bridges are untimed; the carry round stands in for the cycle.
  bool bridge_error(std::uint32_t wire, std::uint64_t round) {
    return roll(Site::kBusError, 0x10000u + wire, spec_.bus_error, round);
  }
  /// Uniform pick in [0, bound) from `site`'s corrupt stream — which
  /// payload bit an injected corruption flips.
  std::uint32_t pick(std::uint32_t link, std::uint32_t bound) {
    return bound == 0
               ? 0
               : static_cast<std::uint32_t>(next(Site::kFlitCorrupt, link) %
                                            bound);
  }

  // --- checkpointing ---------------------------------------------------------
  /// Persist / resume the per-site stream positions. The spec itself is
  /// not carried (a restored run may attach a different plan — that is the
  /// whole warm-campaign trick); only the consumed-randomness positions
  /// are, so a same-spec restore replays the exact fault sequence.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  /// Advance the (kind, site) stream and return the next raw 64-bit draw.
  std::uint64_t next(Site kind, std::uint32_t site);
  /// One Bernoulli trial against `rate`. Rates <= 0 return false WITHOUT
  /// touching the stream, so a zero-rate plan never draws — the attached
  /// worst case the bench overhead gate measures.
  bool roll(Site kind, std::uint32_t site, double rate, std::uint64_t cycle);

  FaultSpec spec_;
  /// (kind << 32 | site) -> xorshift64* state. Ordered map: iteration
  /// order never matters (lookup only), but determinism costs nothing.
  std::map<std::uint64_t, std::uint64_t> streams_;
};

/// CRC-32 (IEEE 802.3, reflected) over a byte span — the end-to-end
/// payload check the resilient NIC applies at reassembly. Bitwise, no
/// table: frame payloads here are tens of bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

}  // namespace xtsoc::fault
