// fault::Campaign — a parallel fault-injection campaign.
//
// One campaign = N runs of the same workload, each under a Plan derived
// from seed_for(base_seed, i). The runs fan out across the existing
// hwsim::WorkerPool (the same pool the windowed scheduler uses) and the
// per-seed outcomes aggregate into one obs::Snapshot. Outcomes are stored
// by run index, so the snapshot is byte-identical at every campaign
// thread count — scheduling decides only who computes a row, never where
// it lands.
//
// The Campaign itself is workload-agnostic: the caller supplies a functor
// that builds + drives one run for a given seed (a CoSimulation under
// xtsocc, anything in tests). That keeps this library free of a
// dependency on cosim; cosim::outcome_of() (cosim/report.hpp) is the
// ready-made extractor for co-simulation runs.
#pragma once

#include <functional>
#include <vector>

#include "xtsoc/fault/fault.hpp"
#include "xtsoc/obs/snapshot.hpp"

namespace xtsoc::hwsim {
class WorkerPool;
}

namespace xtsoc::fault {

/// What one campaign run produced. `survived` is the per-run verdict: the
/// workload completed with nothing lost (transports may have retried —
/// resilience working is still survival).
struct RunOutcome {
  std::uint64_t seed = 0;
  std::uint64_t cycles = 0;
  std::uint64_t delivered = 0;  ///< messages that reached their destination
  std::uint64_t dropped = 0;    ///< messages lost after the retry budget
  std::uint64_t retried = 0;    ///< retransmissions + bus/bridge retries
  std::uint64_t injected = 0;   ///< faults the plan injected (all kinds)
  bool survived = false;
};

struct CampaignResult {
  std::uint64_t base_seed = 0;
  std::vector<RunOutcome> runs;  ///< indexed by run, NOT completion order

  std::size_t survivors() const;
  /// {"campaign": {runs, seed, survivors, survival_rate, totals},
  ///  "runs": [{seed, cycles, delivered, dropped, retried, injected,
  ///            survived}, ...]} — see docs/FAULTS.md.
  obs::Snapshot to_snapshot() const;
};

class Campaign {
public:
  /// `runs` seeds derived from `base.seed`; `threads` concurrent runs
  /// (1 = serial; every thread count produces the identical snapshot).
  Campaign(FaultSpec base, int runs, int threads = 1);

  /// The i-th run's seed: a splitmix64 hop from the base seed, so
  /// neighbouring runs share no stream state.
  static std::uint64_t seed_for(std::uint64_t base_seed, int index);

  /// Execute the campaign: `one(index, seed)` builds, drives and
  /// summarizes one run (it typically constructs a Plan{spec with this
  /// seed} and a fresh workload around it — runs share nothing, which is
  /// what makes the fan-out safe). Exceptions propagate; like the
  /// windowed scheduler, the lowest-index run's error wins.
  CampaignResult run(
      const std::function<RunOutcome(int index, std::uint64_t seed)>& one) const;

  /// Same, but fan out over a caller-owned pool instead of spawning a
  /// fresh one per call. This is how a long-lived server (xtsocd) shares
  /// one hwsim::WorkerPool across every session's campaigns: pool spin-up
  /// cost is paid once at daemon start, and concurrency is bounded by the
  /// pool's size rather than each request's `threads`. A null pool falls
  /// back to run(one).
  CampaignResult run(
      const std::function<RunOutcome(int index, std::uint64_t seed)>& one,
      hwsim::WorkerPool* pool) const;

  FaultSpec spec_for(int index) const {
    FaultSpec s = base_;
    s.seed = seed_for(base_.seed, index);
    return s;
  }

private:
  FaultSpec base_;
  int runs_;
  int threads_;
};

}  // namespace xtsoc::fault
