#include "xtsoc/fault/campaign.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>

#include "xtsoc/common/rng.hpp"
#include "xtsoc/hwsim/pool.hpp"

namespace xtsoc::fault {

std::size_t CampaignResult::survivors() const {
  std::size_t n = 0;
  for (const RunOutcome& r : runs) n += r.survived ? 1 : 0;
  return n;
}

obs::Snapshot CampaignResult::to_snapshot() const {
  obs::JsonValue root = obs::JsonValue::object();
  std::uint64_t delivered = 0, dropped = 0, retried = 0, injected = 0,
                cycles = 0;
  obs::JsonValue rows = obs::JsonValue::array();
  for (const RunOutcome& r : runs) {
    delivered += r.delivered;
    dropped += r.dropped;
    retried += r.retried;
    injected += r.injected;
    cycles += r.cycles;
    obs::JsonValue row = obs::JsonValue::object();
    row["seed"] = r.seed;
    row["cycles"] = r.cycles;
    row["delivered"] = r.delivered;
    row["dropped"] = r.dropped;
    row["retried"] = r.retried;
    row["injected"] = r.injected;
    row["survived"] = r.survived;
    rows.push_back(std::move(row));
  }
  obs::JsonValue& c = root["campaign"];
  c["runs"] = static_cast<std::uint64_t>(runs.size());
  c["base_seed"] = base_seed;
  c["survivors"] = static_cast<std::uint64_t>(survivors());
  c["survival_rate"] =
      runs.empty() ? 1.0
                   : static_cast<double>(survivors()) /
                         static_cast<double>(runs.size());
  obs::JsonValue& t = c["totals"];
  t["delivered"] = delivered;
  t["dropped"] = dropped;
  t["retried"] = retried;
  t["injected"] = injected;
  t["cycles"] = cycles;
  root["runs"] = std::move(rows);
  return obs::Snapshot(std::move(root));
}

Campaign::Campaign(FaultSpec base, int runs, int threads)
    : base_(base), runs_(runs > 0 ? runs : 0),
      threads_(threads > 0 ? threads : 1) {}

std::uint64_t Campaign::seed_for(std::uint64_t base_seed, int index) {
  // Hash, don't increment: faultSeed N and N+1 must not share run seeds.
  std::uint64_t s =
      splitmix64(base_seed ^
                 (0xc2b2ae3d27d4eb4fULL * (static_cast<std::uint64_t>(index) + 1)));
  return s == 0 ? 1 : s;
}

CampaignResult Campaign::run(
    const std::function<RunOutcome(int index, std::uint64_t seed)>& one) const {
  return run(one, nullptr);
}

CampaignResult Campaign::run(
    const std::function<RunOutcome(int index, std::uint64_t seed)>& one,
    hwsim::WorkerPool* pool) const {
  CampaignResult result;
  result.base_seed = base_.seed;
  result.runs.resize(static_cast<std::size_t>(runs_));
  if (runs_ == 0) return result;

  // Same fan-out idiom as the windowed scheduler's phase A: a shared
  // atomic cursor hands out run indices, outcomes land at their index (so
  // aggregation order is fixed regardless of who ran what), and the
  // lowest-index failure wins when runs throw.
  std::vector<std::exception_ptr> errors(result.runs.size());
  std::atomic<int> cursor{0};
  const int total = runs_;
  auto job = [&] {
    for (;;) {
      const int i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      try {
        result.runs[static_cast<std::size_t>(i)] =
            one(i, seed_for(base_.seed, i));
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    }
  };
  if (pool != nullptr) {
    pool->run(job);
  } else if (threads_ == 1) {
    job();
  } else {
    hwsim::WorkerPool local(threads_);
    local.run(job);
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return result;
}

}  // namespace xtsoc::fault
