#include "xtsoc/fault/fault.hpp"

#include <algorithm>
#include <variant>

#include "xtsoc/common/rng.hpp"
#include "xtsoc/snap/io.hpp"

namespace xtsoc::fault {

namespace {

double read_rate(const marks::MarkSet& marks, const char* key) {
  auto v = marks.domain_mark(key);
  if (!v) return 0.0;
  double rate = 0.0;
  if (std::holds_alternative<double>(*v)) {
    rate = std::get<double>(*v);
  } else if (std::holds_alternative<std::int64_t>(*v)) {
    rate = static_cast<double>(std::get<std::int64_t>(*v));
  }
  return std::clamp(rate, 0.0, 1.0);
}

}  // namespace

FaultSpec FaultSpec::from_marks(const marks::MarkSet& marks) {
  FaultSpec s;
  std::int64_t seed = marks.domain_mark_int(kFaultSeed, 1);
  s.seed = seed < 0 ? 1 : static_cast<std::uint64_t>(seed);
  std::int64_t window = marks.domain_mark_int(kFaultWindow, 0);
  s.window = window < 0 ? 0 : static_cast<std::uint64_t>(window);
  std::int64_t start = marks.domain_mark_int(kFaultWindowStart, 0);
  s.window_start = start < 0 ? 0 : static_cast<std::uint64_t>(start);
  s.flit_drop = read_rate(marks, kFaultRateFlitDrop);
  s.flit_corrupt = read_rate(marks, kFaultRateFlitCorrupt);
  s.link_down = read_rate(marks, kFaultRateLinkDown);
  s.bus_error = read_rate(marks, kFaultRateBusError);
  return s;
}

std::uint64_t Plan::next(Site kind, std::uint32_t site) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(kind) << 32) | static_cast<std::uint64_t>(site);
  auto [it, inserted] = streams_.try_emplace(key, 0);
  if (inserted) {
    // Never zero: xorshift's one fixed point.
    it->second = splitmix64(spec_.seed ^ splitmix64(key)) | 1;
  }
  Xorshift64Star s;
  s.set_state(it->second);
  const std::uint64_t draw = s.next();
  it->second = s.state();
  return draw;
}

void Plan::save_state(snap::Writer& w) const {
  w.u64(streams_.size());
  for (const auto& [key, state] : streams_) {
    w.u64(key);
    w.u64(state);
  }
}

void Plan::load_state(snap::Reader& r) {
  streams_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.u64();
    streams_[key] = r.u64();
  }
}

bool Plan::roll(Site kind, std::uint32_t site, double rate,
                std::uint64_t cycle) {
  if (rate <= 0.0 || !active(cycle)) return false;
  if (rate >= 1.0) return true;
  const double u =
      static_cast<double>(next(kind, site) >> 11) * 0x1.0p-53;  // [0, 1)
  return u < rate;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xedb88320u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

}  // namespace xtsoc::fault
