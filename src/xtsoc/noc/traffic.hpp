// Deterministic synthetic traffic for the NoC fabric.
//
// Two engines drive a Fabric without a model on top:
//
//   * TrafficGen — seed-deterministic synthetic load. Each source tile owns
//     a lazily-seeded xorshift64* stream derived exactly like fault::Plan's
//     per-site streams (splitmix64(seed ^ splitmix64(tile)) | 1), and every
//     cycle consumes draws in a fixed order, so the injected workload is a
//     pure function of (spec, topology shape) — byte-identical at any
//     threads x window setting and unaffected by how the fabric responds.
//
//   * TraceReplay — replays a recorded (or hand-written) injection trace.
//     TrafficGen can record what it injects; a replayed recording drives
//     the fabric identically to the generator that produced it, which is
//     what makes saturation sweeps comparable across topologies: the same
//     offered sequence hits every network shape.
//
// Payload bytes are derived from the event header (not from the RNG), so a
// trace line fully determines the frame — text traces round-trip.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xtsoc::noc {

class Fabric;
class Topology;

/// Spatial injection pattern, selected per run (bench sweeps) rather than
/// by a mark — synthetic traffic has no model to annotate.
enum class TrafficPattern : std::uint8_t {
  kUniform = 0,    ///< every frame picks a uniform-random non-self tile
  kHotspot = 1,    ///< a fraction of frames converge on one hot tile
  kTranspose = 2,  ///< (x, y) -> (y, x) on square grids (opposite tile
                   ///< otherwise) — the adversarial pattern for XY routing
  kBursty = 3,     ///< on/off: idle, then a back-to-back burst to one tile
  kMemory = 4,     ///< coherence-shaped load/store mix: xtsoc::mem wire
                   ///< GetS/GetM frames converge on `hotspot_tile` (the
                   ///< directory), `write_fraction` picks the store share
};

const char* to_string(TrafficPattern p);
std::optional<TrafficPattern> pattern_from_string(std::string_view s);

/// Everything that determines a synthetic workload. Two TrafficGens built
/// from equal specs over equal-shaped topologies inject equal sequences.
struct TrafficSpec {
  TrafficPattern pattern = TrafficPattern::kUniform;
  std::uint64_t seed = 1;
  /// Offered load: per-tile injection probability per cycle (kBursty
  /// spends the same budget in bursts: rate/burst_len starts per cycle).
  double offered_load = 0.1;
  int payload_bytes = 8;       ///< frame payload length
  int hotspot_tile = 0;        ///< kHotspot: the hot destination;
                               ///< kMemory: the directory tile
  double hotspot_fraction = 0.5;  ///< kHotspot: share aimed at the hot tile
  int burst_len = 8;           ///< kBursty: frames per burst
  double write_fraction = 0.2; ///< kMemory: GetM share of requests
  bool record = false;         ///< keep the injected trace for replay
};

/// One injected frame — both the generator's trace record and the replay
/// input. The payload is derived from this header (traffic_payload), so
/// the event is the complete description of the frame.
struct TrafficEvent {
  std::uint64_t cycle = 0;
  int src = 0;
  int dst = 0;
  std::uint32_t opcode = 0;  ///< (src << 16) | per-source sequence number
  int payload_bytes = 0;
};

/// The deterministic payload for `e`: byte i is a mix of src/opcode/i.
/// Shared by TrafficGen and TraceReplay so recorded traces replay
/// byte-identically.
std::vector<std::uint8_t> traffic_payload(const TrafficEvent& e);

class TrafficGen {
public:
  /// `topo` supplies the tile count and coordinates; only its shape is
  /// read, so the generator may outlive the fabric it drives.
  TrafficGen(TrafficSpec spec, const Topology& topo);

  /// Inject this cycle's frames into `fabric` (call once per cycle, before
  /// fabric.tick(cycle + 1)). Returns the number of frames injected.
  int tick(Fabric& fabric, std::uint64_t cycle);

  std::uint64_t frames_sent() const { return frames_sent_; }
  /// The injected trace (empty unless spec.record).
  const std::vector<TrafficEvent>& trace() const { return trace_; }
  const TrafficSpec& spec() const { return spec_; }

private:
  std::uint64_t draw(int tile);
  double uniform01(int tile);
  int pick_uniform_dst(int tile);
  int transpose_dst(int tile) const;

  TrafficSpec spec_;
  int width_ = 1;
  int height_ = 1;
  int tiles_ = 1;
  std::uint64_t frames_sent_ = 0;
  std::vector<TrafficEvent> trace_;
  std::unordered_map<int, std::uint64_t> streams_;  ///< tile -> RNG state
  std::vector<std::uint32_t> next_seq_;             ///< per-source opcode seq
  struct Burst {
    int remaining = 0;
    int dst = 0;
  };
  std::vector<Burst> bursts_;  ///< kBursty per-tile on/off state
};

/// Replays a cycle-ordered injection trace. Build one from a TrafficGen
/// recording (events are already ordered) or parse a text trace.
class TraceReplay {
public:
  explicit TraceReplay(std::vector<TrafficEvent> events);

  /// Parse the text form: one `cycle src dst opcode payload_bytes` line
  /// per event, '#' comments and blank lines ignored. Returns nullopt and
  /// fills `error` (line-numbered) on malformed input.
  static std::optional<TraceReplay> parse(std::string_view text,
                                          std::string* error = nullptr);

  /// Serialize to the text form parse() accepts (round-trips exactly).
  std::string to_text() const;

  /// Inject every event stamped `cycle` (call once per cycle, ascending).
  int tick(Fabric& fabric, std::uint64_t cycle);

  bool done() const { return next_ >= events_.size(); }
  void reset() { next_ = 0; }
  const std::vector<TrafficEvent>& events() const { return events_; }

private:
  std::vector<TrafficEvent> events_;  ///< sorted by cycle (stable)
  std::size_t next_ = 0;
};

}  // namespace xtsoc::noc
