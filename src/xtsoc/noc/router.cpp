#include "xtsoc/noc/router.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "xtsoc/noc/topology.hpp"
#include "xtsoc/snap/io.hpp"

namespace xtsoc::noc {

const char* to_string(FlitKind k) {
  switch (k) {
    case FlitKind::kHead: return "head";
    case FlitKind::kBody: return "body";
    case FlitKind::kTail: return "tail";
    case FlitKind::kHeadTail: return "head+tail";
  }
  return "?";
}

const char* to_string(Port p) {
  switch (p) {
    case kLocal: return "local";
    case kNorth: return "north";
    case kEast: return "east";
    case kSouth: return "south";
    case kWest: return "west";
    default: return "?";
  }
}

Port opposite(Port p) {
  switch (p) {
    case kNorth: return kSouth;
    case kSouth: return kNorth;
    case kEast: return kWest;
    case kWest: return kEast;
    default: return kLocal;
  }
}

Port Router::route(const Flit& f) const {
  const int dst =
      topo_->index(static_cast<int>(f.dst_x), static_cast<int>(f.dst_y));
  if (policy_ == RoutePolicy::kAdaptive) {
    // Minimal-adaptive: both dimension orders lead to minimal paths, so ask
    // the topology for each order's next port and take the one with more
    // credit downstream — the frame sidesteps the backpressured dimension.
    // Ties go to the XY port, so an uncongested adaptive fabric routes
    // exactly like an XY one. The choice is made on the head flit and
    // pinned until the tail passes (frame_forwarded), keeping every flit of
    // a frame on one path — reassembly's in-order requirement.
    const Port px =
        topo_->route(RoutePolicy::kXY, tile_, dst, RouteMode::kPrimary);
    if (px == kLocal) return kLocal;
    if (f.kind == FlitKind::kBody || f.kind == FlitKind::kTail) {
      auto it = adaptive_port_.find(frame_key(f));
      if (it != adaptive_port_.end()) return it->second;
      // No pin: the head ejected here or was a single-flit attempt that
      // left no state — fall through and decide like a head would.
    }
    const Port py =
        topo_->route(RoutePolicy::kYX, tile_, dst, RouteMode::kPrimary);
    Port chosen = px;
    if (py != px) chosen = credits_[py] > credits_[px] ? py : px;
    // Pin multi-flit frames so the body/tail follow; repeated speculative
    // route() queries within one arbitration pass also hit the pin, so the
    // head cannot flip ports as credits drain mid-cycle.
    if (f.kind == FlitKind::kHead || f.kind == FlitKind::kBody ||
        f.kind == FlitKind::kTail) {
      auto [it, inserted] = adaptive_port_.try_emplace(frame_key(f), chosen);
      if (!inserted) chosen = it->second;
    }
    return chosen;
  }
  // Dimension order (X first under XY, Y first under YX; a fallback-mode
  // flit flips the order — the detour a retransmission takes so it does not
  // march straight back into the link that ate the previous attempt).
  // Deadlock-free on the edge-clipped mesh because the turn from the second
  // dimension back into the first never happens; see topology.hpp for the
  // wraparound caveat. Mixing primary and fallback traffic is where mesh
  // deadlock folklore lives; the resilient NIC's retry deadline bounds any
  // such episode — a stuck attempt is re-sent or reported lost, never
  // waited on forever.
  return topo_->route(policy_, tile_, dst, f.route_mode);
}

bool Router::buffers_empty() const {
  for (const auto& q : in_) {
    if (!q.empty()) return false;
  }
  return true;
}

std::size_t Router::buffered() const {
  std::size_t n = 0;
  for (const auto& q : in_) n += q.size();
  return n;
}

int Router::arbitrate(Port out, unsigned served_mask) const {
  for (int i = 0; i < kPortCount; ++i) {
    int p = (rr_[out] + i) % kPortCount;
    if (served_mask & (1u << p)) continue;
    const std::deque<Flit>& q = in_[p];
    if (!q.empty() && route(q.front()) == out) return p;
  }
  return -1;
}

void Router::note_occupancy() {
  std::size_t n = buffered();
  if (n > stats_.buffer_high_water) stats_.buffer_high_water = n;
}

void Router::save_state(snap::Writer& w) const {
  for (int p = 0; p < kPortCount; ++p) {
    w.u64(in_[p].size());
    for (const Flit& f : in_[p]) save_flit(w, f);
  }
  for (int p = 0; p < kPortCount; ++p) w.u32(static_cast<std::uint32_t>(credits_[p]));
  for (int p = 0; p < kPortCount; ++p) w.u32(static_cast<std::uint32_t>(rr_[p]));
  // Adaptive route pins, key-sorted: the map's iteration order must not
  // leak into the checkpoint bytes.
  std::vector<std::pair<std::uint64_t, Port>> pins(adaptive_port_.begin(),
                                                   adaptive_port_.end());
  std::sort(pins.begin(), pins.end());
  w.u64(pins.size());
  for (const auto& [key, port] : pins) {
    w.u64(key);
    w.u8(static_cast<std::uint8_t>(port));
  }
  w.u64(stats_.flits_routed);
  w.u64(stats_.flits_ejected);
  w.u64(stats_.credit_stalls);
  w.u64(stats_.buffer_high_water);
}

void Router::load_state(snap::Reader& r) {
  for (int p = 0; p < kPortCount; ++p) {
    in_[p].clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) in_[p].push_back(load_flit(r));
  }
  for (int p = 0; p < kPortCount; ++p) credits_[p] = static_cast<int>(r.u32());
  for (int p = 0; p < kPortCount; ++p) rr_[p] = static_cast<int>(r.u32());
  adaptive_port_.clear();
  const std::uint64_t npins = r.u64();
  for (std::uint64_t i = 0; i < npins; ++i) {
    const std::uint64_t key = r.u64();
    adaptive_port_[key] = static_cast<Port>(r.u8());
  }
  stats_.flits_routed = r.u64();
  stats_.flits_ejected = r.u64();
  stats_.credit_stalls = r.u64();
  stats_.buffer_high_water = r.u64();
}

}  // namespace xtsoc::noc
