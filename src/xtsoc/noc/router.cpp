#include "xtsoc/noc/router.hpp"

#include "xtsoc/snap/io.hpp"

namespace xtsoc::noc {

const char* to_string(FlitKind k) {
  switch (k) {
    case FlitKind::kHead: return "head";
    case FlitKind::kBody: return "body";
    case FlitKind::kTail: return "tail";
    case FlitKind::kHeadTail: return "head+tail";
  }
  return "?";
}

const char* to_string(Port p) {
  switch (p) {
    case kLocal: return "local";
    case kNorth: return "north";
    case kEast: return "east";
    case kSouth: return "south";
    case kWest: return "west";
    default: return "?";
  }
}

Port opposite(Port p) {
  switch (p) {
    case kNorth: return kSouth;
    case kSouth: return kNorth;
    case kEast: return kWest;
    case kWest: return kEast;
    default: return kLocal;
  }
}

Port Router::route(const Flit& f) const {
  if (f.route_mode == 1) {
    // YX dimension order: the detour a retransmission takes so it does not
    // march straight back into the link that ate the previous attempt.
    // (Mixing XY and YX traffic is where mesh deadlock folklore lives; the
    // resilient NIC's retry deadline bounds any such episode — a stuck
    // attempt is re-sent or reported lost, never waited on forever.)
    if (f.dst_y > y_) return kSouth;
    if (f.dst_y < y_) return kNorth;
    if (f.dst_x > x_) return kEast;
    if (f.dst_x < x_) return kWest;
    return kLocal;
  }
  // Dimension order: X first, then Y. Deadlock-free on a mesh because the
  // turn from Y back to X never happens.
  if (f.dst_x > x_) return kEast;
  if (f.dst_x < x_) return kWest;
  if (f.dst_y > y_) return kSouth;  // y grows downward (row-major tiles)
  if (f.dst_y < y_) return kNorth;
  return kLocal;
}

bool Router::buffers_empty() const {
  for (const auto& q : in_) {
    if (!q.empty()) return false;
  }
  return true;
}

std::size_t Router::buffered() const {
  std::size_t n = 0;
  for (const auto& q : in_) n += q.size();
  return n;
}

int Router::arbitrate(Port out, unsigned served_mask) const {
  for (int i = 0; i < kPortCount; ++i) {
    int p = (rr_[out] + i) % kPortCount;
    if (served_mask & (1u << p)) continue;
    const std::deque<Flit>& q = in_[p];
    if (!q.empty() && route(q.front()) == out) return p;
  }
  return -1;
}

void Router::note_occupancy() {
  std::size_t n = buffered();
  if (n > stats_.buffer_high_water) stats_.buffer_high_water = n;
}

void Router::save_state(snap::Writer& w) const {
  for (int p = 0; p < kPortCount; ++p) {
    w.u64(in_[p].size());
    for (const Flit& f : in_[p]) save_flit(w, f);
  }
  for (int p = 0; p < kPortCount; ++p) w.u32(static_cast<std::uint32_t>(credits_[p]));
  for (int p = 0; p < kPortCount; ++p) w.u32(static_cast<std::uint32_t>(rr_[p]));
  w.u64(stats_.flits_routed);
  w.u64(stats_.flits_ejected);
  w.u64(stats_.credit_stalls);
  w.u64(stats_.buffer_high_water);
}

void Router::load_state(snap::Reader& r) {
  for (int p = 0; p < kPortCount; ++p) {
    in_[p].clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) in_[p].push_back(load_flit(r));
  }
  for (int p = 0; p < kPortCount; ++p) credits_[p] = static_cast<int>(r.u32());
  for (int p = 0; p < kPortCount; ++p) rr_[p] = static_cast<int>(r.u32());
  stats_.flits_routed = r.u64();
  stats_.flits_ejected = r.u64();
  stats_.credit_stalls = r.u64();
  stats_.buffer_high_water = r.u64();
}

}  // namespace xtsoc::noc
