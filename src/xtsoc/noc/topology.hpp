// Topology: the exchangeable shape of the on-chip network.
//
// The paper's claim is that the platform is a modeling decision you change
// by moving marks, not by rewriting the model. The fabric honours that by
// asking a Topology three questions it used to hard-code for a 2D mesh:
// which links exist (neighbors), which output port a flit takes next
// (route), and how far apart two tiles are (min_hops, which times acks and
// retry deadlines). Mesh, torus and ring answer them differently; Fabric,
// Router, the fault-reroute path and the checkpoint format are shape-blind.
//
// Routing stays dimension-ordered everywhere: correct one coordinate, then
// the other, then eject. That keeps flits of one (source, destination) pair
// in order — the property frame reassembly relies on — and makes the
// fallback mode (flip the dimension order) meaningful on every shape. On
// wrapped shapes each dimension additionally picks its direction by minimal
// distance, ties broken toward kEast/kSouth so routing stays deterministic.
//
// Deadlock note: dimension order is provably deadlock-free on the
// edge-clipped mesh. Wraparound links reintroduce cyclic channel
// dependencies (real designs break them with virtual channels, which this
// model does not have); the resilient transport's bounded retry deadlines
// keep faulty runs from hanging, and saturation measurements on wrapped
// shapes should stay below the collapse point (see docs/NOC.md).
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "xtsoc/noc/router.hpp"

namespace xtsoc::noc {

/// Parse a `topology` mark value ("mesh", "torus", "ring").
std::optional<TopologyKind> topology_from_string(std::string_view s);
/// Parse a `routing` mark value ("xy", "yx", "adaptive").
std::optional<RoutePolicy> routing_from_string(std::string_view s);

class Topology {
public:
  Topology(TopologyKind kind, int width, int height)
      : kind_(kind), width_(width), height_(height) {}
  virtual ~Topology() = default;

  TopologyKind kind() const { return kind_; }
  int width() const { return width_; }
  int height() const { return height_; }
  int tiles() const { return width_ * height_; }
  int index(int x, int y) const { return y * width_ + x; }

  /// The tile one hop out of `tile` through `dir`, or -1 when no link
  /// exists there (mesh edge, or a wrap that would loop a size-1 dimension
  /// back onto itself — the fabric never builds self-links).
  virtual int neighbors(int tile, Port dir) const = 0;

  /// Dimension-order route decision for a flit sitting at `src` bound for
  /// `dst`: the output port of its next hop, kLocal when src == dst.
  /// kFallback flips the dimension order of `policy`. kAdaptive is resolved
  /// by the Router (the choice needs live credit state); a Topology treats
  /// it as kXY, its deterministic core.
  virtual Port route(RoutePolicy policy, int src, int dst,
                     RouteMode mode) const = 0;

  /// Hops on a minimal path between two tiles (both dimension orders tie).
  /// Times sideband acks and retransmission deadlines.
  virtual int min_hops(int a, int b) const = 0;

  /// Number of directed router-to-router links this shape wires up.
  virtual int link_count() const = 0;

protected:
  int x_of(int tile) const { return tile % width_; }
  int y_of(int tile) const { return tile / width_; }

private:
  TopologyKind kind_;
  int width_;
  int height_;
};

/// Construct the named shape. Throws std::invalid_argument for shapes that
/// cannot exist (torus with a dimension under 2, ring taller than one row);
/// Fabric and marks::validate reject those earlier with friendlier errors.
std::unique_ptr<Topology> make_topology(TopologyKind kind, int width,
                                        int height);

}  // namespace xtsoc::noc
