// Fabric: a cycle-accurate network-on-chip over a pluggable Topology
// (2D mesh by default; torus and ring ride the same machinery).
//
// Endpoints are tiles; each tile has a Router and a NIC. A frame
// (opcode + payload bytes) handed to send_frame() is segmented by the
// source NIC into link-width flits, injected at one flit per cycle,
// routed dimension-ordered hop by hop under credit-based flow control, and
// reassembled by the destination NIC; pop_due() hands back completed
// frames. The whole network advances exactly one cycle per tick(), and
// every decision
// (routing, arbitration, injection) is a deterministic function of the
// state at the start of the tick — two runs of the same traffic produce
// identical cycle-by-cycle behaviour, which is what lets NoC-mapped
// co-simulations be compared against the abstract executor.
//
// Everything is instrumented: per-router flit counts and buffer
// high-water marks, per-link utilization, and an end-to-end frame latency
// histogram — the numbers that make the cost of a bad placement visible.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "xtsoc/noc/router.hpp"
#include "xtsoc/noc/topology.hpp"
#include "xtsoc/obs/registry.hpp"

namespace xtsoc::fault {
class Plan;
}

namespace xtsoc::noc {

/// Thrown on malformed fabric configuration or misuse (bad tile index,
/// send to self): programming errors of the layer above, not model errors.
class FabricError : public std::runtime_error {
public:
  explicit FabricError(const std::string& what) : std::runtime_error(what) {}
};

struct FabricConfig {
  int width = 2;            ///< tile columns
  int height = 2;           ///< tile rows
  /// Network shape (`topology` mark). Torus needs both dimensions >= 2;
  /// ring needs height == 1.
  TopologyKind topology = TopologyKind::kMesh;
  /// Routing policy (`routing` mark). Adaptive cannot be combined with NoC
  /// fault injection (the retransmit detour presumes dimension-order
  /// primary/fallback paths).
  RoutePolicy routing = RoutePolicy::kXY;
  int link_latency = 1;     ///< cycles a flit spends on a router-to-router link
  int flit_payload_bytes = 4;  ///< link width: payload bytes per flit
  int fifo_depth = 4;       ///< per-input-port buffer depth (= credits)
  obs::Registry* obs = nullptr;  ///< optional observability sink ("noc" track)
  /// Optional fault plan (src/xtsoc/fault). When any NoC fault rate is
  /// positive the NICs arm a CRC + ack/retransmit layer; with no plan (or
  /// all rates zero) every hook is a dead null-test and behaviour is
  /// byte-identical to a fault-free fabric.
  fault::Plan* fault = nullptr;
};

/// One reassembled frame, ready at a destination NIC.
struct Delivery {
  std::uint32_t opcode = 0;
  std::vector<std::uint8_t> payload;
  int src_tile = 0;
  std::uint64_t send_cycle = 0;    ///< cycle the frame entered the source NIC
  std::uint64_t arrive_cycle = 0;  ///< cycle the tail flit reached the NIC
  std::uint64_t due_cycle = 0;     ///< max(arrive, send + extra delay)
};

/// One directed router-to-router link, for utilization reporting.
struct LinkStats {
  int from_tile = 0;
  Port dir = kEast;
  std::uint64_t flits = 0;  ///< flits that traversed this link
};

/// Power-of-two-bucketed end-to-end frame latency (send_frame to tail
/// arrival, in cycles).
struct LatencyHistogram {
  static constexpr int kBuckets = 24;
  std::array<std::uint64_t, kBuckets> buckets{};  ///< [2^i, 2^(i+1))
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  void add(std::uint64_t latency);
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total) / static_cast<double>(count);
  }
};

/// Snapshot of every fabric counter, assembled by Fabric::stats().
struct FabricStats {
  int width = 0, height = 0;
  TopologyKind topology = TopologyKind::kMesh;
  RoutePolicy routing = RoutePolicy::kXY;
  std::uint64_t cycles = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t flits_injected = 0;
  std::uint64_t payload_bytes = 0;
  std::vector<RouterStats> routers;  ///< indexed by tile (row-major)
  std::vector<LinkStats> links;
  LatencyHistogram latency;

  double link_utilization(const LinkStats& l) const {
    return cycles == 0
               ? 0.0
               : static_cast<double>(l.flits) / static_cast<double>(cycles);
  }
  /// Fixed-width table for terminals (xtsocc --obs=noc).
  std::string to_table() const;
};

/// What the fault injector did to the fabric and how the resilient NICs
/// answered. All-zero unless a fault::Plan with a positive NoC rate is
/// attached; reported in the snapshot's "faults" section, never in the
/// fault-free FabricStats document.
struct FabricFaultStats {
  std::uint64_t flits_dropped = 0;     ///< injected in-transit drops
  std::uint64_t flits_corrupted = 0;   ///< injected payload bit flips
  std::uint64_t link_down_events = 0;  ///< outages the plan opened
  std::uint64_t link_down_drops = 0;   ///< flits that died on a downed link
  std::uint64_t crc_rejects = 0;       ///< frames discarded at reassembly
  std::uint64_t orphan_flits = 0;      ///< flits of a purged/unopened frame
  std::uint64_t retransmissions = 0;   ///< retry attempts the NICs issued
  std::uint64_t duplicates_dropped = 0;///< late retries deduplicated at dst
  std::uint64_t acks_delivered = 0;    ///< sideband acks back at the source
  std::uint64_t frames_lost = 0;       ///< retry budget exhausted (reported, not hung)
  std::uint64_t tainted_delivered = 0; ///< corrupted frames the CRC missed (must stay 0)
};

class Fabric {
public:
  explicit Fabric(FabricConfig config);

  int width() const { return config_.width; }
  int height() const { return config_.height; }
  int tiles() const { return config_.width * config_.height; }
  int tile_index(int x, int y) const { return y * config_.width + x; }

  /// Segment `payload` into flits and queue them at tile `src`'s NIC.
  /// The frame becomes deliverable at `dst` once its tail flit arrives,
  /// but never before `current_cycle + extra_delay` (generate-statement
  /// delays ride along, exactly as on the point-to-point Bus).
  void send_frame(int src, int dst, std::uint32_t opcode,
                  std::vector<std::uint8_t> payload,
                  std::uint64_t current_cycle, std::uint64_t extra_delay = 0);

  /// Advance the whole network by one cycle (cycle number `cycle`).
  void tick(std::uint64_t cycle);

  /// Remove and return every completed frame at `tile` due at or before
  /// `cycle`, in arrival order.
  std::vector<Delivery> pop_due(int tile, std::uint64_t cycle);

  /// True when nothing is buffered, in flight, or awaiting delivery.
  bool idle() const;

  const Router& router(int tile) const { return routers_.at(tile); }
  const Topology& topology() const { return *topo_; }
  FabricStats stats() const;
  const FabricFaultStats& fault_stats() const { return fstats_; }

  // --- checkpointing ---------------------------------------------------------
  /// Serialize the complete dynamic network state: router buffers/credits/
  /// arbitration, NIC injection queues, reassemblies, retry schedules and
  /// dedup sets, link-borne flits, sideband acks, outage timers, and every
  /// counter. The topology (dimensions, latencies, depths) is
  /// construction-owned; load_state refuses a different shape.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  struct Reassembly {
    std::uint32_t opcode = 0;
    std::uint32_t frame_bytes = 0;
    std::uint32_t frame_id = 0;
    std::uint32_t crc = 0;
    bool tainted = false;
    std::vector<std::uint8_t> payload;
  };

  /// One logical frame the resilient source NIC still owes an ack for.
  /// Keyed by frame_id; re-sent (new seq, flipped route mode) when the
  /// deadline passes, reported lost when the retry budget runs out.
  struct PendingTx {
    int dst = 0;
    std::uint32_t frame_id = 0;
    std::uint32_t opcode = 0;
    std::uint32_t crc = 0;
    std::vector<std::uint8_t> payload;
    std::uint64_t send_cycle = 0;  ///< original send (latency is end-to-end)
    std::uint64_t min_due = 0;
    std::uint64_t deadline = 0;
    int attempts = 1;
  };

  struct Nic {
    std::deque<Flit> tx;    ///< segmented flits awaiting injection
    int inject_credits = 0; ///< free slots in the router's local input FIFO
    /// In-progress reassemblies, keyed by (source tile, attempt seq).
    std::map<std::pair<int, std::uint32_t>, Reassembly> partial;
    std::vector<Delivery> ready;  ///< completed frames awaiting pop_due
    std::uint32_t next_seq = 0;
    // --- resilient-transport state (used only when fault_armed_) ---------
    std::map<std::uint32_t, PendingTx> pending;  ///< frame_id -> unacked frame
    /// Deadline-ordered retry schedule over `pending`, lazily invalidated:
    /// an entry whose frame was acked (or rescheduled to a later deadline)
    /// no longer matches and is discarded when popped. Without this index
    /// the per-cycle deadline check would walk every in-flight frame — on
    /// an oversubscribed mesh that backlog grows without bound, turning a
    /// linear run quadratic.
    std::multimap<std::uint64_t, std::uint32_t> retry_at;
    std::set<std::pair<int, std::uint32_t>> delivered;  ///< dedup (src, frame_id)
    std::uint32_t next_frame_id = 0;
  };

  /// A sideband acknowledgement riding back to the source NIC. Modeled as
  /// reliable (a real design would piggyback it on a protected VC); it
  /// still takes hop-distance time, so retransmission timing is honest.
  struct Ack {
    std::uint64_t due = 0;
    int to_tile = 0;
    std::uint32_t frame_id = 0;
  };

  /// A flit in flight on a link, due to enter `router`'s `port` FIFO.
  struct Arrival {
    std::uint64_t cycle;
    int router;
    Port port;
    Flit flit;
  };

  /// The topology's neighbors(): -1 where no link exists.
  int neighbor_of(int tile, Port dir) const;
  void eject(int tile, Flit flit, std::uint64_t cycle);
  void check_tile(int tile, const char* what) const;

  // --- fault machinery (no-ops unless a plan with NoC rates is attached) ---
  /// Segment one transmission attempt of a frame into link flits.
  void enqueue_attempt(int src, int dst, const PendingTx& tx,
                       RouteMode route_mode);
  /// A completed reassembly: CRC check, dedup, ack, then delivery.
  void complete_frame(int tile, int src_tile, std::uint32_t frame_id,
                      std::uint32_t crc, bool tainted, std::uint32_t opcode,
                      std::vector<std::uint8_t> payload,
                      std::uint64_t send_cycle, std::uint64_t min_due,
                      std::uint64_t cycle);
  /// Acks, retry deadlines, and link-outage draws for this cycle.
  void fault_cycle(std::uint64_t cycle);
  /// The topology's min_hops() (both dimension orders tie).
  int hop_distance(int a, int b) const;
  /// Retry deadline: generous round-trip bound including the current
  /// injection backlog, doubled per attempt — tight enough to recover,
  /// loose enough that an undisturbed frame never retries spuriously.
  std::uint64_t retry_deadline(std::uint64_t cycle, int hops,
                               std::size_t nflits, std::size_t backlog,
                               int attempts) const;

  FabricConfig config_;
  std::unique_ptr<Topology> topo_;
  std::vector<Router> routers_;
  std::vector<Nic> nics_;
  std::deque<Arrival> in_flight_;
  /// Directed links, plus (tile, dir) -> index into links_.
  std::vector<LinkStats> links_;
  std::vector<int> link_index_;  ///< [tile * kPortCount + dir], -1 if edge

  // Fault state. fault_armed_ is the one test the hot path pays when no
  // NoC fault rate is configured.
  fault::Plan* fault_ = nullptr;
  bool fault_armed_ = false;       ///< any of the three NoC rates positive
  std::vector<Ack> acks_;          ///< sideband acks in flight
  std::vector<std::uint64_t> link_down_until_;  ///< per link: down before this cycle
  FabricFaultStats fstats_;

  std::uint64_t cycles_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t flits_injected_ = 0;
  std::uint64_t payload_bytes_ = 0;
  LatencyHistogram latency_;

  // Observability (null members when no registry is attached).
  obs::Registry* obs_ = nullptr;
  obs::TrackId obs_track_;
  obs::Counter* c_frames_sent_ = nullptr;
  obs::Counter* c_frames_delivered_ = nullptr;
  obs::Counter* c_flits_injected_ = nullptr;
  obs::Counter* c_credit_stalls_ = nullptr;
  std::size_t last_in_flight_ = 0;  ///< last sampled in-flight flit count
};

}  // namespace xtsoc::noc
