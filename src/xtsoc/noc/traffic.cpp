#include "xtsoc/noc/traffic.hpp"

#include <algorithm>
#include <sstream>

#include "xtsoc/common/rng.hpp"
#include "xtsoc/mem/wire.hpp"
#include "xtsoc/noc/fabric.hpp"
#include "xtsoc/noc/topology.hpp"

namespace xtsoc::noc {

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform: return "uniform";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kBursty: return "bursty";
    case TrafficPattern::kMemory: return "memory";
  }
  return "?";
}

std::optional<TrafficPattern> pattern_from_string(std::string_view s) {
  if (s == "uniform") return TrafficPattern::kUniform;
  if (s == "hotspot") return TrafficPattern::kHotspot;
  if (s == "transpose") return TrafficPattern::kTranspose;
  if (s == "bursty") return TrafficPattern::kBursty;
  if (s == "memory") return TrafficPattern::kMemory;
  return std::nullopt;
}

std::vector<std::uint8_t> traffic_payload(const TrafficEvent& e) {
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(std::max(e.payload_bytes, 0)));
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(
        static_cast<std::uint32_t>(e.src) * 31u + e.opcode * 7u +
        static_cast<std::uint32_t>(i) * 13u + 5u);
  }
  return payload;
}

TrafficGen::TrafficGen(TrafficSpec spec, const Topology& topo)
    : spec_(std::move(spec)),
      width_(topo.width()),
      height_(topo.height()),
      tiles_(topo.tiles()),
      next_seq_(static_cast<std::size_t>(tiles_), 0),
      bursts_(static_cast<std::size_t>(tiles_)) {}

// Per-tile stream, lazily seeded the way fault::Plan derives its per-site
// streams: the draw sequence a tile sees depends only on (seed, tile), so
// adding tiles or patterns never perturbs existing streams.
std::uint64_t TrafficGen::draw(int tile) {
  auto [it, inserted] = streams_.try_emplace(tile, 0);
  if (inserted) {
    // Never zero: xorshift's one fixed point.
    it->second =
        splitmix64(spec_.seed ^ splitmix64(static_cast<std::uint64_t>(
                                    static_cast<std::uint32_t>(tile)))) |
        1;
  }
  Xorshift64Star s;
  s.set_state(it->second);
  const std::uint64_t d = s.next();
  it->second = s.state();
  return d;
}

double TrafficGen::uniform01(int tile) {
  return static_cast<double>(draw(tile) >> 11) * 0x1.0p-53;  // [0, 1)
}

int TrafficGen::pick_uniform_dst(int tile) {
  // Uniform over the other tiles-1 tiles (never self).
  int dst = static_cast<int>(draw(tile) %
                             static_cast<std::uint64_t>(tiles_ - 1));
  if (dst >= tile) ++dst;
  return dst;
}

int TrafficGen::transpose_dst(int tile) const {
  if (width_ == height_) {
    const int x = tile % width_;
    const int y = tile / width_;
    return x * width_ + y;  // (x, y) -> (y, x)
  }
  // Non-square grids (rings, rectangles) have no transpose; fall back to
  // the opposite tile, the equivalent all-routes-cross-the-center stress.
  return tiles_ - 1 - tile;
}

int TrafficGen::tick(Fabric& fabric, std::uint64_t cycle) {
  if (tiles_ < 2) return 0;
  int injected = 0;
  // Fixed per-tile draw order each cycle (gate draw first, then any
  // destination draws) — the property that makes the workload a pure
  // function of the spec.
  for (int t = 0; t < tiles_; ++t) {
    int dst = -1;
    if (spec_.pattern == TrafficPattern::kMemory) {
      // Coherence-shaped requests: GetS/GetM in xtsoc::mem wire format
      // aimed at the directory tile. Replaying a recorded memory trace
      // reproduces routing and load exactly; only the replayed payload
      // bytes differ (traffic_payload, not wire::encode), which no
      // fabric-level measurement reads.
      const int dir = spec_.hotspot_tile;
      if (uniform01(t) >= spec_.offered_load) continue;
      if (dir < 0 || dir >= tiles_ || dir == t) continue;
      const bool is_write = uniform01(t) < spec_.write_fraction;
      // 256 hot lines: small enough that tiles re-request each other's
      // lines within a short run, which is what exercises the directory's
      // invalidate/downgrade machinery rather than an endless cold stream.
      const std::int64_t line = static_cast<std::int64_t>(draw(t) & 0xffu);
      const mem::wire::Msg msg =
          is_write ? mem::wire::kGetM : mem::wire::kGetS;
      std::vector<std::uint8_t> payload = mem::wire::encode(msg, 0, t, line);
      TrafficEvent e;
      e.cycle = cycle;
      e.src = t;
      e.dst = dir;
      e.opcode = mem::wire::opcode(msg);
      e.payload_bytes = static_cast<int>(payload.size());
      fabric.send_frame(e.src, e.dst, e.opcode, std::move(payload), cycle);
      ++frames_sent_;
      ++injected;
      if (spec_.record) trace_.push_back(e);
      continue;
    }
    if (spec_.pattern == TrafficPattern::kBursty) {
      Burst& b = bursts_[static_cast<std::size_t>(t)];
      if (b.remaining == 0) {
        const double start_rate =
            spec_.burst_len > 0 ? spec_.offered_load / spec_.burst_len : 0.0;
        if (uniform01(t) < start_rate) {
          b.dst = pick_uniform_dst(t);
          b.remaining = std::max(spec_.burst_len, 1);
        }
      }
      if (b.remaining > 0) {
        dst = b.dst;
        --b.remaining;
      }
    } else {
      if (uniform01(t) >= spec_.offered_load) continue;
      switch (spec_.pattern) {
        case TrafficPattern::kUniform:
          dst = pick_uniform_dst(t);
          break;
        case TrafficPattern::kHotspot:
          // Gate draw consumed unconditionally so the hot tile's own
          // stream stays aligned with everyone else's.
          if (uniform01(t) < spec_.hotspot_fraction &&
              spec_.hotspot_tile != t && spec_.hotspot_tile >= 0 &&
              spec_.hotspot_tile < tiles_) {
            dst = spec_.hotspot_tile;
          } else {
            dst = pick_uniform_dst(t);
          }
          break;
        case TrafficPattern::kTranspose:
          dst = transpose_dst(t);
          break;
        case TrafficPattern::kBursty:
        case TrafficPattern::kMemory:
          break;  // handled above
      }
    }
    if (dst < 0 || dst == t) continue;  // transpose fixed point: no frame
    TrafficEvent e;
    e.cycle = cycle;
    e.src = t;
    e.dst = dst;
    e.opcode = (static_cast<std::uint32_t>(t) << 16) |
               (next_seq_[static_cast<std::size_t>(t)]++ & 0xffffu);
    e.payload_bytes = spec_.payload_bytes;
    fabric.send_frame(e.src, e.dst, e.opcode, traffic_payload(e), cycle);
    ++frames_sent_;
    ++injected;
    if (spec_.record) trace_.push_back(e);
  }
  return injected;
}

TraceReplay::TraceReplay(std::vector<TrafficEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TrafficEvent& a, const TrafficEvent& b) {
                     return a.cycle < b.cycle;
                   });
}

std::optional<TraceReplay> TraceReplay::parse(std::string_view text,
                                              std::string* error) {
  std::vector<TrafficEvent> events;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) -> std::optional<TraceReplay> {
    if (error != nullptr) {
      *error = "trace line " + std::to_string(lineno) + ": " + why;
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    TrafficEvent e;
    if (!(ls >> e.cycle)) {
      std::string word;
      std::istringstream(line) >> word;
      if (word.empty()) continue;  // blank / comment-only line
      return fail("expected 'cycle src dst opcode payload_bytes'");
    }
    if (!(ls >> e.src >> e.dst >> e.opcode >> e.payload_bytes)) {
      return fail("expected 'cycle src dst opcode payload_bytes'");
    }
    std::string extra;
    if (ls >> extra) return fail("trailing field '" + extra + "'");
    if (e.src < 0 || e.dst < 0 || e.payload_bytes < 0) {
      return fail("negative field");
    }
    events.push_back(e);
  }
  return TraceReplay(std::move(events));
}

std::string TraceReplay::to_text() const {
  std::ostringstream os;
  os << "# cycle src dst opcode payload_bytes\n";
  for (const TrafficEvent& e : events_) {
    os << e.cycle << ' ' << e.src << ' ' << e.dst << ' ' << e.opcode << ' '
       << e.payload_bytes << '\n';
  }
  return os.str();
}

int TraceReplay::tick(Fabric& fabric, std::uint64_t cycle) {
  int injected = 0;
  while (next_ < events_.size() && events_[next_].cycle <= cycle) {
    const TrafficEvent& e = events_[next_++];
    fabric.send_frame(e.src, e.dst, e.opcode, traffic_payload(e), cycle);
    ++injected;
  }
  return injected;
}

}  // namespace xtsoc::noc
