#include "xtsoc/noc/fabric.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace xtsoc::noc {

void LatencyHistogram::add(std::uint64_t latency) {
  int bucket = 0;
  for (std::uint64_t v = latency; v > 1 && bucket < kBuckets - 1; v >>= 1) {
    ++bucket;
  }
  ++buckets[bucket];
  total += latency;
  if (count == 0 || latency < min) min = latency;
  if (latency > max) max = latency;
  ++count;
}

Fabric::Fabric(FabricConfig config) : config_(config), obs_(config.obs) {
  if (obs_ != nullptr) {
    obs_track_ = obs_->track("noc");
    c_frames_sent_ = obs_->counter("noc.frames_sent");
    c_frames_delivered_ = obs_->counter("noc.frames_delivered");
    c_flits_injected_ = obs_->counter("noc.flits_injected");
    c_credit_stalls_ = obs_->counter("noc.credit_stalls");
  }
  if (config_.width < 1 || config_.height < 1) {
    throw FabricError("mesh dimensions must be at least 1x1");
  }
  if (config_.width > 64 || config_.height > 64) {
    throw FabricError("mesh dimensions capped at 64x64");
  }
  if (config_.link_latency < 1) {
    throw FabricError("link latency must be at least 1 cycle");
  }
  if (config_.flit_payload_bytes < 1) {
    throw FabricError("flit payload width must be at least 1 byte");
  }
  if (config_.fifo_depth < 1) {
    throw FabricError("input FIFO depth must be at least 1");
  }

  const int n = tiles();
  routers_.reserve(static_cast<std::size_t>(n));
  nics_.resize(static_cast<std::size_t>(n));
  link_index_.assign(static_cast<std::size_t>(n) * kPortCount, -1);
  for (int t = 0; t < n; ++t) {
    routers_.emplace_back(t % config_.width, t / config_.width,
                          config_.fifo_depth);
    nics_[static_cast<std::size_t>(t)].inject_credits = config_.fifo_depth;
  }
  for (int t = 0; t < n; ++t) {
    for (Port d : {kNorth, kEast, kSouth, kWest}) {
      if (neighbor_of(t, d) < 0) continue;
      // Credits toward the neighbour's input FIFO on the far side.
      routers_[static_cast<std::size_t>(t)].set_credits(d, config_.fifo_depth);
      link_index_[static_cast<std::size_t>(t) * kPortCount + d] =
          static_cast<int>(links_.size());
      links_.push_back(LinkStats{t, d, 0});
    }
  }
}

int Fabric::neighbor_of(int tile, Port dir) const {
  int x = tile % config_.width;
  int y = tile / config_.width;
  switch (dir) {
    case kNorth: y -= 1; break;
    case kSouth: y += 1; break;
    case kEast: x += 1; break;
    case kWest: x -= 1; break;
    default: return -1;
  }
  if (x < 0 || x >= config_.width || y < 0 || y >= config_.height) return -1;
  return tile_index(x, y);
}

void Fabric::check_tile(int tile, const char* what) const {
  if (tile < 0 || tile >= tiles()) {
    throw FabricError(std::string(what) + " tile " + std::to_string(tile) +
                      " outside the " + std::to_string(config_.width) + "x" +
                      std::to_string(config_.height) + " mesh");
  }
}

void Fabric::send_frame(int src, int dst, std::uint32_t opcode,
                        std::vector<std::uint8_t> payload,
                        std::uint64_t current_cycle,
                        std::uint64_t extra_delay) {
  check_tile(src, "source");
  check_tile(dst, "destination");
  if (src == dst) {
    throw FabricError("same-tile send: tile " + std::to_string(src) +
                      " talking to itself must not use the network");
  }

  Nic& nic = nics_[static_cast<std::size_t>(src)];
  const std::size_t chunk =
      static_cast<std::size_t>(config_.flit_payload_bytes);
  const std::size_t nflits =
      payload.empty() ? 1 : (payload.size() + chunk - 1) / chunk;

  Flit proto;
  proto.src_x = static_cast<std::uint8_t>(src % config_.width);
  proto.src_y = static_cast<std::uint8_t>(src / config_.width);
  proto.dst_x = static_cast<std::uint8_t>(dst % config_.width);
  proto.dst_y = static_cast<std::uint8_t>(dst / config_.width);
  proto.seq = nic.next_seq++;
  proto.opcode = opcode;
  proto.frame_bytes = static_cast<std::uint32_t>(payload.size());
  proto.send_cycle = current_cycle;
  proto.min_due = current_cycle + extra_delay;

  for (std::size_t i = 0; i < nflits; ++i) {
    Flit f = proto;
    if (nflits == 1) {
      f.kind = FlitKind::kHeadTail;
    } else if (i == 0) {
      f.kind = FlitKind::kHead;
    } else if (i + 1 == nflits) {
      f.kind = FlitKind::kTail;
    } else {
      f.kind = FlitKind::kBody;
    }
    const std::size_t off = i * chunk;
    const std::size_t len = std::min(chunk, payload.size() - off);
    if (!payload.empty()) {
      f.payload.assign(payload.begin() + static_cast<std::ptrdiff_t>(off),
                       payload.begin() + static_cast<std::ptrdiff_t>(off + len));
    }
    nic.tx.push_back(std::move(f));
  }
  ++frames_sent_;
  payload_bytes_ += payload.size();
  OBS_COUNT(c_frames_sent_);
}

void Fabric::eject(int tile, Flit flit, std::uint64_t cycle) {
  Nic& nic = nics_[static_cast<std::size_t>(tile)];
  const int src_tile =
      tile_index(static_cast<int>(flit.src_x), static_cast<int>(flit.src_y));
  const auto key = std::make_pair(src_tile, flit.seq);

  if (flit.kind == FlitKind::kHeadTail) {
    Delivery d;
    d.opcode = flit.opcode;
    d.payload = std::move(flit.payload);
    d.src_tile = src_tile;
    d.send_cycle = flit.send_cycle;
    d.arrive_cycle = cycle;
    d.due_cycle = std::max(cycle, flit.min_due);
    latency_.add(cycle - flit.send_cycle);
    ++frames_delivered_;
    OBS_COUNT(c_frames_delivered_);
    if (obs_ != nullptr && obs_->tracing()) {
      obs_->record_instant(obs_track_, "deliver", obs_->now_ns(), cycle);
    }
    nic.ready.push_back(std::move(d));
    return;
  }

  if (flit.opens_frame()) {
    Reassembly& r = nic.partial[key];
    r.opcode = flit.opcode;
    r.frame_bytes = flit.frame_bytes;
    r.payload = std::move(flit.payload);
    return;
  }

  auto it = nic.partial.find(key);
  if (it == nic.partial.end()) {
    throw FabricError("flit of an unopened frame reached tile " +
                      std::to_string(tile));
  }
  Reassembly& r = it->second;
  r.payload.insert(r.payload.end(), flit.payload.begin(), flit.payload.end());
  if (flit.closes_frame()) {
    if (r.payload.size() != r.frame_bytes) {
      throw FabricError("frame reassembly size mismatch at tile " +
                        std::to_string(tile));
    }
    Delivery d;
    d.opcode = r.opcode;
    d.payload = std::move(r.payload);
    d.src_tile = src_tile;
    d.send_cycle = flit.send_cycle;
    d.arrive_cycle = cycle;
    d.due_cycle = std::max(cycle, flit.min_due);
    latency_.add(cycle - flit.send_cycle);
    ++frames_delivered_;
    OBS_COUNT(c_frames_delivered_);
    if (obs_ != nullptr && obs_->tracing()) {
      obs_->record_instant(obs_track_, "deliver", obs_->now_ns(), cycle);
    }
    nic.ready.push_back(std::move(d));
    nic.partial.erase(it);
  }
}

void Fabric::tick(std::uint64_t cycle) {
  ++cycles_;

  // 1. Link arrivals land in their reserved input-FIFO slots.
  while (!in_flight_.empty() && in_flight_.front().cycle <= cycle) {
    Arrival a = std::move(in_flight_.front());
    in_flight_.pop_front();
    routers_[static_cast<std::size_t>(a.router)].input(a.port).push_back(
        std::move(a.flit));
  }

  // 2. NIC injection: one flit per cycle onto the local port, credit
  //    permitting (this serialization is the injection bottleneck that
  //    makes hot tiles measurable).
  for (int t = 0; t < tiles(); ++t) {
    Nic& nic = nics_[static_cast<std::size_t>(t)];
    if (nic.tx.empty() || nic.inject_credits <= 0) continue;
    routers_[static_cast<std::size_t>(t)].input(kLocal).push_back(
        std::move(nic.tx.front()));
    nic.tx.pop_front();
    --nic.inject_credits;
    ++flits_injected_;
    OBS_COUNT(c_flits_injected_);
  }

  for (Router& r : routers_) r.note_occupancy();

  // 3. Route and arbitrate. Decisions read only cycle-start state (own
  //    FIFOs and credit counters); freed buffer slots are returned as
  //    credits only after every router has moved, so the order routers are
  //    visited in cannot change the outcome.
  struct CreditReturn {
    int router;
    Port input;  ///< the input FIFO a flit left
  };
  std::vector<CreditReturn> returns;
  for (int t = 0; t < tiles(); ++t) {
    Router& r = routers_[static_cast<std::size_t>(t)];
    unsigned served = 0;  // inputs that already forwarded a flit this cycle
    for (Port out : {kLocal, kNorth, kEast, kSouth, kWest}) {
      const int winner = r.arbitrate(out, served);
      if (winner < 0) continue;
      if (out == kLocal) {
        Flit f = std::move(r.input(static_cast<Port>(winner)).front());
        r.input(static_cast<Port>(winner)).pop_front();
        r.advance_rr(out, winner);
        served |= 1u << winner;
        ++r.stats().flits_ejected;
        returns.push_back({t, static_cast<Port>(winner)});
        eject(t, std::move(f), cycle);
        continue;
      }
      if (r.credits(out) <= 0) {  // backpressure: stall, keep order
        ++r.stats().credit_stalls;
        OBS_COUNT(c_credit_stalls_);
        continue;
      }
      const int next = neighbor_of(t, out);
      // XY routing on validated destinations never points off the mesh.
      Flit f = std::move(r.input(static_cast<Port>(winner)).front());
      r.input(static_cast<Port>(winner)).pop_front();
      r.take_credit(out);
      r.advance_rr(out, winner);
      served |= 1u << winner;
      ++r.stats().flits_routed;
      ++links_[static_cast<std::size_t>(
                   link_index_[static_cast<std::size_t>(t) * kPortCount + out])]
            .flits;
      returns.push_back({t, static_cast<Port>(winner)});
      in_flight_.push_back(
          Arrival{cycle + static_cast<std::uint64_t>(config_.link_latency),
                  next, opposite(out), std::move(f)});
    }
  }

  // 4. Freed slots become credits: at the upstream router for mesh ports,
  //    at the NIC for the local injection port.
  for (const CreditReturn& cr : returns) {
    if (cr.input == kLocal) {
      ++nics_[static_cast<std::size_t>(cr.router)].inject_credits;
    } else {
      const int upstream = neighbor_of(cr.router, cr.input);
      routers_[static_cast<std::size_t>(upstream)].return_credit(
          opposite(cr.input));
    }
  }

  // Sample link occupancy (flits on the wire) as a counter series — only
  // on change, so an idle network adds no events.
  if (obs_ != nullptr && obs_->tracing() && in_flight_.size() != last_in_flight_) {
    last_in_flight_ = in_flight_.size();
    obs_->record_value(obs_track_, "flits_in_flight", obs_->now_ns(),
                       static_cast<double>(last_in_flight_));
  }
}

std::vector<Delivery> Fabric::pop_due(int tile, std::uint64_t cycle) {
  check_tile(tile, "pop_due");
  Nic& nic = nics_[static_cast<std::size_t>(tile)];
  // Deliveries may carry heterogeneous generate-delays, so scan everything
  // but keep the survivors' relative order (same contract as Bus::pop_due).
  std::vector<Delivery> due;
  std::vector<Delivery> keep;
  for (Delivery& d : nic.ready) {
    if (d.due_cycle <= cycle) {
      due.push_back(std::move(d));
    } else {
      keep.push_back(std::move(d));
    }
  }
  nic.ready.swap(keep);
  return due;
}

bool Fabric::idle() const {
  if (!in_flight_.empty()) return false;
  for (const Router& r : routers_) {
    if (!r.buffers_empty()) return false;
  }
  for (const Nic& n : nics_) {
    if (!n.tx.empty() || !n.ready.empty() || !n.partial.empty()) return false;
  }
  return true;
}

FabricStats Fabric::stats() const {
  FabricStats s;
  s.width = config_.width;
  s.height = config_.height;
  s.cycles = cycles_;
  s.frames_sent = frames_sent_;
  s.frames_delivered = frames_delivered_;
  s.flits_injected = flits_injected_;
  s.payload_bytes = payload_bytes_;
  s.routers.reserve(routers_.size());
  for (const Router& r : routers_) s.routers.push_back(r.stats());
  s.links = links_;
  s.latency = latency_;
  return s;
}

std::string FabricStats::to_table() const {
  std::ostringstream os;
  os << "noc: " << width << "x" << height << " mesh, cycles=" << cycles
     << " frames=" << frames_sent << "/" << frames_delivered
     << " (sent/delivered) flits=" << flits_injected
     << " payload_bytes=" << payload_bytes << '\n';
  os << "frame latency (cycles): count=" << latency.count << " mean="
     << std::fixed << std::setprecision(2) << latency.mean()
     << " min=" << latency.min << " max=" << latency.max << '\n';
  if (latency.count > 0) {
    os << "  histogram:";
    std::uint64_t lo = 1;
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i, lo <<= 1) {
      if (latency.buckets[static_cast<std::size_t>(i)] == 0) continue;
      os << " [" << lo << "," << (lo << 1)
         << "):" << latency.buckets[static_cast<std::size_t>(i)];
    }
    os << '\n';
  }
  os << std::left << std::setw(12) << "router" << std::right << std::setw(10)
     << "routed" << std::setw(10) << "ejected" << std::setw(10) << "stalls"
     << std::setw(12) << "buf_peak" << '\n';
  for (std::size_t t = 0; t < routers.size(); ++t) {
    std::ostringstream tile;
    tile << "(" << (t % static_cast<std::size_t>(width)) << ","
         << (t / static_cast<std::size_t>(width)) << ")";
    os << std::left << std::setw(12) << tile.str() << std::right
       << std::setw(10) << routers[t].flits_routed << std::setw(10)
       << routers[t].flits_ejected << std::setw(10)
       << routers[t].credit_stalls << std::setw(12)
       << routers[t].buffer_high_water << '\n';
  }
  bool any_link = false;
  for (const LinkStats& l : links) {
    if (l.flits == 0) continue;
    if (!any_link) {
      os << std::left << std::setw(16) << "link" << std::right << std::setw(10)
         << "flits" << std::setw(12) << "util" << '\n';
      any_link = true;
    }
    std::ostringstream name;
    name << "(" << l.from_tile % width << "," << l.from_tile / width << ")->"
         << to_string(l.dir);
    os << std::left << std::setw(16) << name.str() << std::right
       << std::setw(10) << l.flits << std::setw(12) << std::fixed
       << std::setprecision(3) << link_utilization(l) << '\n';
  }
  return os.str();
}

}  // namespace xtsoc::noc
