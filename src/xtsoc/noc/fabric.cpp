#include "xtsoc/noc/fabric.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "xtsoc/fault/fault.hpp"
#include "xtsoc/snap/io.hpp"

namespace xtsoc::noc {

void LatencyHistogram::add(std::uint64_t latency) {
  int bucket = 0;
  for (std::uint64_t v = latency; v > 1 && bucket < kBuckets - 1; v >>= 1) {
    ++bucket;
  }
  ++buckets[bucket];
  total += latency;
  if (count == 0 || latency < min) min = latency;
  if (latency > max) max = latency;
  ++count;
}

Fabric::Fabric(FabricConfig config) : config_(config), obs_(config.obs) {
  if (obs_ != nullptr) {
    obs_track_ = obs_->track("noc");
    c_frames_sent_ = obs_->counter("noc.frames_sent");
    c_frames_delivered_ = obs_->counter("noc.frames_delivered");
    c_flits_injected_ = obs_->counter("noc.flits_injected");
    c_credit_stalls_ = obs_->counter("noc.credit_stalls");
  }
  if (config_.width < 1 || config_.height < 1) {
    throw FabricError("mesh dimensions must be at least 1x1");
  }
  if (config_.width > 64 || config_.height > 64) {
    throw FabricError("mesh dimensions capped at 64x64");
  }
  if (config_.topology == TopologyKind::kTorus &&
      (config_.width < 2 || config_.height < 2)) {
    throw FabricError("torus topology needs both dimensions >= 2 (got " +
                      std::to_string(config_.width) + "x" +
                      std::to_string(config_.height) +
                      "); a single wrapped row is a ring");
  }
  if (config_.topology == TopologyKind::kRing && config_.height != 1) {
    throw FabricError("ring topology is one row: height must be 1 (got " +
                      std::to_string(config_.height) + ")");
  }
  if (config_.link_latency < 1) {
    throw FabricError("link latency must be at least 1 cycle");
  }
  if (config_.flit_payload_bytes < 1) {
    throw FabricError("flit payload width must be at least 1 byte");
  }
  if (config_.fifo_depth < 1) {
    throw FabricError("input FIFO depth must be at least 1");
  }
  if (config_.routing == RoutePolicy::kAdaptive && config_.fault != nullptr) {
    const fault::FaultSpec& fs = config_.fault->spec();
    if (fs.flit_drop > 0.0 || fs.flit_corrupt > 0.0 || fs.link_down > 0.0) {
      throw FabricError(
          "adaptive routing cannot be combined with NoC fault injection: "
          "the retransmit detour presumes dimension-order primary/fallback "
          "paths");
    }
  }
  topo_ = make_topology(config_.topology, config_.width, config_.height);

  const int n = tiles();
  routers_.reserve(static_cast<std::size_t>(n));
  nics_.resize(static_cast<std::size_t>(n));
  link_index_.assign(static_cast<std::size_t>(n) * kPortCount, -1);
  for (int t = 0; t < n; ++t) {
    routers_.emplace_back(t % config_.width, t / config_.width,
                          config_.fifo_depth, topo_.get(), t, config_.routing);
    nics_[static_cast<std::size_t>(t)].inject_credits = config_.fifo_depth;
  }
  for (int t = 0; t < n; ++t) {
    for (Port d : {kNorth, kEast, kSouth, kWest}) {
      if (neighbor_of(t, d) < 0) continue;
      // Credits toward the neighbour's input FIFO on the far side.
      routers_[static_cast<std::size_t>(t)].set_credits(d, config_.fifo_depth);
      link_index_[static_cast<std::size_t>(t) * kPortCount + d] =
          static_cast<int>(links_.size());
      links_.push_back(LinkStats{t, d, 0});
    }
  }

  fault_ = config_.fault;
  if (fault_ != nullptr) {
    const fault::FaultSpec& fs = fault_->spec();
    // The resilient transport arms only when a NoC fault can actually
    // happen; a zero-rate plan (or a bus-only one) leaves the fabric
    // byte-identical to a fault-free build.
    fault_armed_ =
        fs.flit_drop > 0.0 || fs.flit_corrupt > 0.0 || fs.link_down > 0.0;
  }
  // Sized whether or not a plan is attached, so the fabric's snapshot
  // layout is the same either way (a faulty snapshot restores into a
  // fault-free fabric and vice versa); only fault_armed_ paths read it.
  link_down_until_.assign(links_.size(), 0);
}

int Fabric::hop_distance(int a, int b) const { return topo_->min_hops(a, b); }

std::uint64_t Fabric::retry_deadline(std::uint64_t cycle, int hops,
                                     std::size_t nflits, std::size_t backlog,
                                     int attempts) const {
  // Round trip (flits out, ack back) at 4x slack, plus the flits already
  // queued ahead of this attempt at the NIC, plus a flat margin. Doubled
  // per attempt so a congested network gets exponential breathing room.
  // The flat margin matters more than it looks: a spurious retransmission
  // is logically harmless (the receiver dedups by frame id) but it ADDS
  // traffic to the congestion that delayed the ack in the first place —
  // an undersized margin can feed that loop into congestion collapse on
  // busy meshes. 64 cycles absorbs realistic queueing; short test runs
  // must simply run long enough for first deadlines to pass.
  const std::uint64_t base =
      4ULL * (static_cast<std::uint64_t>(hops) *
                  static_cast<std::uint64_t>(config_.link_latency) +
              nflits + backlog) +
      64;
  return cycle + (base << (attempts > 6 ? 6 : attempts));
}

int Fabric::neighbor_of(int tile, Port dir) const {
  return topo_->neighbors(tile, dir);
}

void Fabric::check_tile(int tile, const char* what) const {
  if (tile < 0 || tile >= tiles()) {
    throw FabricError(std::string(what) + " tile " + std::to_string(tile) +
                      " outside the " + std::to_string(config_.width) + "x" +
                      std::to_string(config_.height) + " mesh");
  }
}

void Fabric::send_frame(int src, int dst, std::uint32_t opcode,
                        std::vector<std::uint8_t> payload,
                        std::uint64_t current_cycle,
                        std::uint64_t extra_delay) {
  check_tile(src, "source");
  check_tile(dst, "destination");
  if (src == dst) {
    throw FabricError("same-tile send: tile " + std::to_string(src) +
                      " talking to itself must not use the network");
  }

  Nic& nic = nics_[static_cast<std::size_t>(src)];
  ++frames_sent_;
  payload_bytes_ += payload.size();
  OBS_COUNT(c_frames_sent_);

  PendingTx tx;
  tx.dst = dst;
  tx.opcode = opcode;
  tx.payload = std::move(payload);
  tx.send_cycle = current_cycle;
  tx.min_due = current_cycle + extra_delay;

  if (!fault_armed_) {
    // Fault-free path: one attempt, no transport header, fire and forget.
    enqueue_attempt(src, dst, tx, RouteMode::kPrimary);
    return;
  }

  tx.frame_id = nic.next_frame_id++;
  tx.crc = fault::crc32(tx.payload.data(), tx.payload.size());
  tx.attempts = 1;
  const std::size_t chunk =
      static_cast<std::size_t>(config_.flit_payload_bytes);
  const std::size_t nflits =
      tx.payload.empty() ? 1 : (tx.payload.size() + chunk - 1) / chunk;
  tx.deadline = retry_deadline(current_cycle, hop_distance(src, dst), nflits,
                               nic.tx.size(), 0);
  enqueue_attempt(src, dst, tx, RouteMode::kPrimary);
  nic.retry_at.emplace(tx.deadline, tx.frame_id);
  nic.pending.emplace(tx.frame_id, std::move(tx));
}

void Fabric::enqueue_attempt(int src, int dst, const PendingTx& tx,
                             RouteMode route_mode) {
  Nic& nic = nics_[static_cast<std::size_t>(src)];
  const std::size_t chunk =
      static_cast<std::size_t>(config_.flit_payload_bytes);
  const std::size_t nflits =
      tx.payload.empty() ? 1 : (tx.payload.size() + chunk - 1) / chunk;

  Flit proto;
  proto.src_x = static_cast<std::uint8_t>(src % config_.width);
  proto.src_y = static_cast<std::uint8_t>(src / config_.width);
  proto.dst_x = static_cast<std::uint8_t>(dst % config_.width);
  proto.dst_y = static_cast<std::uint8_t>(dst / config_.width);
  proto.seq = nic.next_seq++;
  proto.opcode = tx.opcode;
  proto.frame_bytes = static_cast<std::uint32_t>(tx.payload.size());
  proto.frame_id = tx.frame_id;
  proto.crc = tx.crc;
  proto.route_mode = route_mode;
  proto.send_cycle = tx.send_cycle;
  proto.min_due = tx.min_due;

  for (std::size_t i = 0; i < nflits; ++i) {
    Flit f = proto;
    if (nflits == 1) {
      f.kind = FlitKind::kHeadTail;
    } else if (i == 0) {
      f.kind = FlitKind::kHead;
    } else if (i + 1 == nflits) {
      f.kind = FlitKind::kTail;
    } else {
      f.kind = FlitKind::kBody;
    }
    const std::size_t off = i * chunk;
    const std::size_t len = std::min(chunk, tx.payload.size() - off);
    if (!tx.payload.empty()) {
      f.payload.assign(
          tx.payload.begin() + static_cast<std::ptrdiff_t>(off),
          tx.payload.begin() + static_cast<std::ptrdiff_t>(off + len));
    }
    nic.tx.push_back(std::move(f));
  }
}

void Fabric::complete_frame(int tile, int src_tile, std::uint32_t frame_id,
                            std::uint32_t crc, bool tainted,
                            std::uint32_t opcode,
                            std::vector<std::uint8_t> payload,
                            std::uint64_t send_cycle, std::uint64_t min_due,
                            std::uint64_t cycle) {
  Nic& nic = nics_[static_cast<std::size_t>(tile)];
  if (fault_armed_) {
    if (fault::crc32(payload.data(), payload.size()) != crc) {
      // Corrupted in transit: discard silently. No ack goes back, so the
      // source's retry deadline re-sends the frame.
      ++fstats_.crc_rejects;
      return;
    }
    if (tainted) ++fstats_.tainted_delivered;  // CRC blind spot; tests pin 0
    // Ack every intact arrival — a duplicate means the first ack was still
    // in flight when the source's deadline fired, so it needs another.
    acks_.push_back(
        Ack{cycle +
                static_cast<std::uint64_t>(hop_distance(tile, src_tile)) *
                    static_cast<std::uint64_t>(config_.link_latency) +
                1,
            src_tile, frame_id});
    if (!nic.delivered.insert({src_tile, frame_id}).second) {
      ++fstats_.duplicates_dropped;
      return;
    }
  }
  Delivery d;
  d.opcode = opcode;
  d.payload = std::move(payload);
  d.src_tile = src_tile;
  d.send_cycle = send_cycle;
  d.arrive_cycle = cycle;
  d.due_cycle = std::max(cycle, min_due);
  latency_.add(cycle - send_cycle);
  ++frames_delivered_;
  OBS_COUNT(c_frames_delivered_);
  if (obs_ != nullptr && obs_->tracing()) {
    obs_->record_instant(obs_track_, "deliver", obs_->now_ns(), cycle);
  }
  nic.ready.push_back(std::move(d));
}

void Fabric::eject(int tile, Flit flit, std::uint64_t cycle) {
  Nic& nic = nics_[static_cast<std::size_t>(tile)];
  const int src_tile =
      tile_index(static_cast<int>(flit.src_x), static_cast<int>(flit.src_y));
  const auto key = std::make_pair(src_tile, flit.seq);

  if (flit.kind == FlitKind::kHeadTail) {
    complete_frame(tile, src_tile, flit.frame_id, flit.crc, flit.tainted,
                   flit.opcode, std::move(flit.payload), flit.send_cycle,
                   flit.min_due, cycle);
    return;
  }

  if (flit.opens_frame()) {
    Reassembly& r = nic.partial[key];
    r.opcode = flit.opcode;
    r.frame_bytes = flit.frame_bytes;
    r.frame_id = flit.frame_id;
    r.crc = flit.crc;
    r.tainted = flit.tainted;
    r.payload = std::move(flit.payload);
    return;
  }

  auto it = nic.partial.find(key);
  if (it == nic.partial.end()) {
    if (fault_armed_) {
      // The rest of this attempt died on a link and its reassembly was
      // purged; stragglers are expected, not a protocol violation.
      ++fstats_.orphan_flits;
      return;
    }
    throw FabricError("flit of an unopened frame reached tile " +
                      std::to_string(tile));
  }
  Reassembly& r = it->second;
  r.payload.insert(r.payload.end(), flit.payload.begin(), flit.payload.end());
  r.tainted = r.tainted || flit.tainted;
  if (flit.closes_frame()) {
    if (r.payload.size() != r.frame_bytes) {
      if (fault_armed_) {
        ++fstats_.crc_rejects;
        nic.partial.erase(it);
        return;
      }
      throw FabricError("frame reassembly size mismatch at tile " +
                        std::to_string(tile));
    }
    complete_frame(tile, src_tile, r.frame_id, r.crc, r.tainted, r.opcode,
                   std::move(r.payload), flit.send_cycle, flit.min_due, cycle);
    nic.partial.erase(it);
  }
}

void Fabric::fault_cycle(std::uint64_t cycle) {
  // Acks land: each one retires its frame at the source NIC. Late acks
  // (frame already re-sent or reported lost) are counted and ignored.
  if (!acks_.empty()) {
    std::vector<Ack> keep;
    keep.reserve(acks_.size());
    for (const Ack& a : acks_) {
      if (a.due > cycle) {
        keep.push_back(a);
        continue;
      }
      ++fstats_.acks_delivered;
      nics_[static_cast<std::size_t>(a.to_tile)].pending.erase(a.frame_id);
    }
    acks_.swap(keep);
  }

  // Retry deadlines, popped from each NIC's deadline-ordered schedule in
  // tile then (deadline, frame_id) order — a serial scan, so the
  // retransmission schedule is a pure function of simulation state. The
  // schedule is lazily invalidated: a popped entry whose frame was acked,
  // or whose deadline moved, no longer matches `pending` and is discarded.
  // This keeps a cycle's cost proportional to the frames actually due,
  // not to every unacked frame in flight.
  const int budget = fault_->spec().retry_budget;
  for (int t = 0; t < tiles(); ++t) {
    Nic& nic = nics_[static_cast<std::size_t>(t)];
    while (!nic.retry_at.empty() && nic.retry_at.begin()->first <= cycle) {
      const std::uint64_t scheduled = nic.retry_at.begin()->first;
      const std::uint32_t frame_id = nic.retry_at.begin()->second;
      nic.retry_at.erase(nic.retry_at.begin());
      auto it = nic.pending.find(frame_id);
      if (it == nic.pending.end() || it->second.deadline != scheduled) {
        continue;  // stale: acked or rescheduled since this entry was queued
      }
      PendingTx& tx = it->second;
      if (tx.attempts > budget) {
        // Budget exhausted: report the loss and stop waiting. The campaign
        // sees a dropped message; nothing ever blocks on it.
        ++fstats_.frames_lost;
        nic.pending.erase(it);
        continue;
      }
      // Alternate primary and fallback dimension orders per attempt, so a
      // retry does not march straight back into a downed link on the
      // primary path.
      const RouteMode mode =
          (tx.attempts & 1) ? RouteMode::kFallback : RouteMode::kPrimary;
      ++fstats_.retransmissions;
      const std::size_t chunk =
          static_cast<std::size_t>(config_.flit_payload_bytes);
      const std::size_t nflits =
          tx.payload.empty() ? 1 : (tx.payload.size() + chunk - 1) / chunk;
      tx.deadline = retry_deadline(cycle, hop_distance(t, tx.dst), nflits,
                                   nic.tx.size(), tx.attempts);
      nic.retry_at.emplace(tx.deadline, frame_id);
      enqueue_attempt(t, tx.dst, tx, mode);
      ++tx.attempts;
    }
  }

  // Link outages: one draw per up link per cycle (rate-gated inside roll).
  if (fault_->spec().link_down > 0.0) {
    for (std::size_t li = 0; li < links_.size(); ++li) {
      if (link_down_until_[li] > cycle) continue;
      const std::uint32_t n =
          fault_->link_outage(static_cast<std::uint32_t>(li), cycle);
      if (n > 0) {
        link_down_until_[li] = cycle + n;
        ++fstats_.link_down_events;
      }
    }
  }
}

void Fabric::tick(std::uint64_t cycle) {
  ++cycles_;

  // 0. Fault bookkeeping (acks, retry deadlines, link outages). tick() is
  //    called serially at every threads/window setting, so every PRNG draw
  //    below happens in the same order in every configuration.
  if (fault_armed_) fault_cycle(cycle);

  // 1. Link arrivals land in their reserved input-FIFO slots.
  while (!in_flight_.empty() && in_flight_.front().cycle <= cycle) {
    Arrival a = std::move(in_flight_.front());
    in_flight_.pop_front();
    routers_[static_cast<std::size_t>(a.router)].input(a.port).push_back(
        std::move(a.flit));
  }

  // 2. NIC injection: one flit per cycle onto the local port, credit
  //    permitting (this serialization is the injection bottleneck that
  //    makes hot tiles measurable).
  for (int t = 0; t < tiles(); ++t) {
    Nic& nic = nics_[static_cast<std::size_t>(t)];
    if (nic.tx.empty() || nic.inject_credits <= 0) continue;
    routers_[static_cast<std::size_t>(t)].input(kLocal).push_back(
        std::move(nic.tx.front()));
    nic.tx.pop_front();
    --nic.inject_credits;
    ++flits_injected_;
    OBS_COUNT(c_flits_injected_);
  }

  // 3. Route and arbitrate. Decisions read only cycle-start state (own
  //    FIFOs and credit counters); freed buffer slots are returned as
  //    credits only after every router has moved, so the order routers are
  //    visited in cannot change the outcome.
  struct CreditReturn {
    int router;
    Port input;  ///< the input FIFO a flit left
  };
  std::vector<CreditReturn> returns;
  for (int t = 0; t < tiles(); ++t) {
    Router& r = routers_[static_cast<std::size_t>(t)];
    // Idle-router fast path. On a big mesh most routers hold no flits on
    // most cycles, yet arbitration scanned all five output ports of every
    // router every cycle — the dominant cost of the serial phase-B spine.
    // With every input FIFO empty, arbitrate() can only return -1, no
    // stall is possible, and note_occupancy() is a no-op (occupancy 0
    // never raises a high-water mark), so skipping is behavior-identical.
    // A router's FIFOs are mutated only by its own iteration of this loop
    // (arrivals land in step 1, credits return in step 4), so noting the
    // occupancy here, before our own pops, reads the same cycle-start
    // state the former pre-pass saw.
    if (r.buffers_empty()) continue;
    r.note_occupancy();
    unsigned served = 0;  // inputs that already forwarded a flit this cycle
    for (Port out : {kLocal, kNorth, kEast, kSouth, kWest}) {
      const int winner = r.arbitrate(out, served);
      if (winner < 0) continue;
      if (out == kLocal) {
        Flit f = std::move(r.input(static_cast<Port>(winner)).front());
        r.input(static_cast<Port>(winner)).pop_front();
        r.advance_rr(out, winner);
        served |= 1u << winner;
        ++r.stats().flits_ejected;
        returns.push_back({t, static_cast<Port>(winner)});
        eject(t, std::move(f), cycle);
        continue;
      }
      if (r.credits(out) <= 0) {  // backpressure: stall, keep order
        ++r.stats().credit_stalls;
        OBS_COUNT(c_credit_stalls_);
        continue;
      }
      const int next = neighbor_of(t, out);
      const int li =
          link_index_[static_cast<std::size_t>(t) * kPortCount + out];
      if (fault_armed_) {
        const bool down =
            link_down_until_[static_cast<std::size_t>(li)] > cycle;
        if (down ||
            fault_->flit_drop(static_cast<std::uint32_t>(li), cycle)) {
          // The flit dies entering the link: its input slot frees (credit
          // back upstream) but nothing is charged downstream — the credit
          // books stay balanced. Any reassembly of this attempt at the
          // destination is purged; stragglers become counted orphans and
          // the source's retry deadline takes it from here.
          Flit f = std::move(r.input(static_cast<Port>(winner)).front());
          r.input(static_cast<Port>(winner)).pop_front();
          r.advance_rr(out, winner);
          served |= 1u << winner;
          returns.push_back({t, static_cast<Port>(winner)});
          if (down) {
            ++fstats_.link_down_drops;
          } else {
            ++fstats_.flits_dropped;
          }
          const int dst = tile_index(static_cast<int>(f.dst_x),
                                     static_cast<int>(f.dst_y));
          const int src_tile = tile_index(static_cast<int>(f.src_x),
                                          static_cast<int>(f.src_y));
          nics_[static_cast<std::size_t>(dst)].partial.erase(
              {src_tile, f.seq});
          continue;
        }
      }
      // Dimension-order routing on validated destinations never picks a
      // port without a link (the topology returned it as productive).
      Flit f = std::move(r.input(static_cast<Port>(winner)).front());
      r.input(static_cast<Port>(winner)).pop_front();
      r.frame_forwarded(f);  // retires the adaptive pin on the tail
      r.take_credit(out);
      r.advance_rr(out, winner);
      served |= 1u << winner;
      ++r.stats().flits_routed;
      ++links_[static_cast<std::size_t>(li)].flits;
      returns.push_back({t, static_cast<Port>(winner)});
      if (fault_armed_ && !f.payload.empty() &&
          fault_->flit_corrupt(static_cast<std::uint32_t>(li), cycle)) {
        // Flip one payload bit; headers are modeled as ECC-protected. The
        // taint flag is simulation metadata proving the CRC catches this.
        const std::uint32_t bit = fault_->pick(
            static_cast<std::uint32_t>(li),
            static_cast<std::uint32_t>(f.payload.size() * 8));
        f.payload[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
        f.tainted = true;
        ++fstats_.flits_corrupted;
      }
      in_flight_.push_back(
          Arrival{cycle + static_cast<std::uint64_t>(config_.link_latency),
                  next, opposite(out), std::move(f)});
    }
  }

  // 4. Freed slots become credits: at the upstream router for mesh ports,
  //    at the NIC for the local injection port.
  for (const CreditReturn& cr : returns) {
    if (cr.input == kLocal) {
      ++nics_[static_cast<std::size_t>(cr.router)].inject_credits;
    } else {
      const int upstream = neighbor_of(cr.router, cr.input);
      routers_[static_cast<std::size_t>(upstream)].return_credit(
          opposite(cr.input));
    }
  }

  // Sample link occupancy (flits on the wire) as a counter series — only
  // on change, so an idle network adds no events.
  if (obs_ != nullptr && obs_->tracing() && in_flight_.size() != last_in_flight_) {
    last_in_flight_ = in_flight_.size();
    obs_->record_value(obs_track_, "flits_in_flight", obs_->now_ns(),
                       static_cast<double>(last_in_flight_));
  }
}

std::vector<Delivery> Fabric::pop_due(int tile, std::uint64_t cycle) {
  check_tile(tile, "pop_due");
  Nic& nic = nics_[static_cast<std::size_t>(tile)];
  // Deliveries may carry heterogeneous generate-delays, so scan everything
  // but keep the survivors' relative order (same contract as Bus::pop_due).
  std::vector<Delivery> due;
  std::vector<Delivery> keep;
  for (Delivery& d : nic.ready) {
    if (d.due_cycle <= cycle) {
      due.push_back(std::move(d));
    } else {
      keep.push_back(std::move(d));
    }
  }
  nic.ready.swap(keep);
  return due;
}

bool Fabric::idle() const {
  if (!in_flight_.empty()) return false;
  for (const Router& r : routers_) {
    if (!r.buffers_empty()) return false;
  }
  for (const Nic& n : nics_) {
    if (!n.tx.empty() || !n.ready.empty() || !n.partial.empty()) return false;
  }
  if (fault_armed_) {
    // Unacked frames and in-flight acks keep the fabric awake: either an
    // ack retires them or the retry budget reports them lost — bounded
    // both ways, so quiescence is still guaranteed.
    if (!acks_.empty()) return false;
    for (const Nic& n : nics_) {
      if (!n.pending.empty()) return false;
    }
  }
  return true;
}

FabricStats Fabric::stats() const {
  FabricStats s;
  s.width = config_.width;
  s.height = config_.height;
  s.topology = config_.topology;
  s.routing = config_.routing;
  s.cycles = cycles_;
  s.frames_sent = frames_sent_;
  s.frames_delivered = frames_delivered_;
  s.flits_injected = flits_injected_;
  s.payload_bytes = payload_bytes_;
  s.routers.reserve(routers_.size());
  for (const Router& r : routers_) s.routers.push_back(r.stats());
  s.links = links_;
  s.latency = latency_;
  return s;
}

std::string FabricStats::to_table() const {
  std::ostringstream os;
  os << "noc: " << width << "x" << height << " " << to_string(topology);
  // The non-default policy is named; the mesh+XY default keeps the exact
  // pre-topology wording (reports are byte-compared across versions).
  if (routing != RoutePolicy::kXY) os << " [" << to_string(routing) << "]";
  os << ", cycles=" << cycles
     << " frames=" << frames_sent << "/" << frames_delivered
     << " (sent/delivered) flits=" << flits_injected
     << " payload_bytes=" << payload_bytes << '\n';
  os << "frame latency (cycles): count=" << latency.count << " mean="
     << std::fixed << std::setprecision(2) << latency.mean()
     << " min=" << latency.min << " max=" << latency.max << '\n';
  if (latency.count > 0) {
    os << "  histogram:";
    std::uint64_t lo = 1;
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i, lo <<= 1) {
      if (latency.buckets[static_cast<std::size_t>(i)] == 0) continue;
      os << " [" << lo << "," << (lo << 1)
         << "):" << latency.buckets[static_cast<std::size_t>(i)];
    }
    os << '\n';
  }
  os << std::left << std::setw(12) << "router" << std::right << std::setw(10)
     << "routed" << std::setw(10) << "ejected" << std::setw(10) << "stalls"
     << std::setw(12) << "buf_peak" << '\n';
  for (std::size_t t = 0; t < routers.size(); ++t) {
    std::ostringstream tile;
    tile << "(" << (t % static_cast<std::size_t>(width)) << ","
         << (t / static_cast<std::size_t>(width)) << ")";
    os << std::left << std::setw(12) << tile.str() << std::right
       << std::setw(10) << routers[t].flits_routed << std::setw(10)
       << routers[t].flits_ejected << std::setw(10)
       << routers[t].credit_stalls << std::setw(12)
       << routers[t].buffer_high_water << '\n';
  }
  bool any_link = false;
  for (const LinkStats& l : links) {
    if (l.flits == 0) continue;
    if (!any_link) {
      os << std::left << std::setw(16) << "link" << std::right << std::setw(10)
         << "flits" << std::setw(12) << "util" << '\n';
      any_link = true;
    }
    std::ostringstream name;
    name << "(" << l.from_tile % width << "," << l.from_tile / width << ")->"
         << to_string(l.dir);
    os << std::left << std::setw(16) << name.str() << std::right
       << std::setw(10) << l.flits << std::setw(12) << std::fixed
       << std::setprecision(3) << link_utilization(l) << '\n';
  }
  return os.str();
}

void save_flit(snap::Writer& w, const Flit& f) {
  w.u8(static_cast<std::uint8_t>(f.kind));
  w.u8(f.src_x);
  w.u8(f.src_y);
  w.u8(f.dst_x);
  w.u8(f.dst_y);
  w.u32(f.seq);
  w.u32(f.opcode);
  w.u32(f.frame_bytes);
  w.u32(f.frame_id);
  w.u32(f.crc);
  w.u8(static_cast<std::uint8_t>(f.route_mode));
  w.u64(f.payload.size());
  w.bytes(f.payload.data(), f.payload.size());
  w.u64(f.send_cycle);
  w.u64(f.min_due);
  w.boolean(f.tainted);
}

Flit load_flit(snap::Reader& r) {
  Flit f;
  f.kind = static_cast<FlitKind>(r.u8());
  f.src_x = r.u8();
  f.src_y = r.u8();
  f.dst_x = r.u8();
  f.dst_y = r.u8();
  f.seq = r.u32();
  f.opcode = r.u32();
  f.frame_bytes = r.u32();
  f.frame_id = r.u32();
  f.crc = r.u32();
  f.route_mode = static_cast<RouteMode>(r.u8());
  f.payload.resize(r.u64());
  for (std::uint8_t& b : f.payload) b = r.u8();
  f.send_cycle = r.u64();
  f.min_due = r.u64();
  f.tainted = r.boolean();
  return f;
}

namespace {

void save_bytes(snap::Writer& w, const std::vector<std::uint8_t>& v) {
  w.u64(v.size());
  w.bytes(v.data(), v.size());
}

std::vector<std::uint8_t> load_bytes(snap::Reader& r) {
  std::vector<std::uint8_t> v(r.u64());
  for (std::uint8_t& b : v) b = r.u8();
  return v;
}

void save_delivery(snap::Writer& w, const Delivery& d) {
  w.u32(d.opcode);
  save_bytes(w, d.payload);
  w.u32(static_cast<std::uint32_t>(d.src_tile));
  w.u64(d.send_cycle);
  w.u64(d.arrive_cycle);
  w.u64(d.due_cycle);
}

Delivery load_delivery(snap::Reader& r) {
  Delivery d;
  d.opcode = r.u32();
  d.payload = load_bytes(r);
  d.src_tile = static_cast<int>(r.u32());
  d.send_cycle = r.u64();
  d.arrive_cycle = r.u64();
  d.due_cycle = r.u64();
  return d;
}

}  // namespace

void Fabric::save_state(snap::Writer& w) const {
  // Structural shape guard (snapshot v2): the topology kind and routing
  // policy a checkpoint was taken under. Restoring into a fabric of a
  // different shape would misread every buffered route decision.
  w.u8(static_cast<std::uint8_t>(config_.topology));
  w.u8(static_cast<std::uint8_t>(config_.routing));
  w.u64(routers_.size());
  for (const Router& rt : routers_) rt.save_state(w);
  w.u64(nics_.size());
  for (const Nic& n : nics_) {
    w.u64(n.tx.size());
    for (const Flit& f : n.tx) save_flit(w, f);
    w.u32(static_cast<std::uint32_t>(n.inject_credits));
    w.u64(n.partial.size());
    for (const auto& [key, re] : n.partial) {
      w.u32(static_cast<std::uint32_t>(key.first));
      w.u32(key.second);
      w.u32(re.opcode);
      w.u32(re.frame_bytes);
      w.u32(re.frame_id);
      w.u32(re.crc);
      w.boolean(re.tainted);
      save_bytes(w, re.payload);
    }
    w.u64(n.ready.size());
    for (const Delivery& d : n.ready) save_delivery(w, d);
    w.u32(n.next_seq);
    w.u64(n.pending.size());
    for (const auto& [id, tx] : n.pending) {
      w.u32(id);
      w.u32(static_cast<std::uint32_t>(tx.dst));
      w.u32(tx.frame_id);
      w.u32(tx.opcode);
      w.u32(tx.crc);
      save_bytes(w, tx.payload);
      w.u64(tx.send_cycle);
      w.u64(tx.min_due);
      w.u64(tx.deadline);
      w.u32(static_cast<std::uint32_t>(tx.attempts));
    }
    w.u64(n.retry_at.size());
    for (const auto& [deadline, id] : n.retry_at) {
      w.u64(deadline);
      w.u32(id);
    }
    w.u64(n.delivered.size());
    for (const auto& [src, id] : n.delivered) {
      w.u32(static_cast<std::uint32_t>(src));
      w.u32(id);
    }
    w.u32(n.next_frame_id);
  }
  w.u64(in_flight_.size());
  for (const Arrival& a : in_flight_) {
    w.u64(a.cycle);
    w.u32(static_cast<std::uint32_t>(a.router));
    w.u8(static_cast<std::uint8_t>(a.port));
    save_flit(w, a.flit);
  }
  w.u64(links_.size());
  for (const LinkStats& l : links_) w.u64(l.flits);
  w.u64(acks_.size());
  for (const Ack& a : acks_) {
    w.u64(a.due);
    w.u32(static_cast<std::uint32_t>(a.to_tile));
    w.u32(a.frame_id);
  }
  w.u64(link_down_until_.size());
  for (std::uint64_t until : link_down_until_) w.u64(until);
  w.u64(fstats_.flits_dropped);
  w.u64(fstats_.flits_corrupted);
  w.u64(fstats_.link_down_events);
  w.u64(fstats_.link_down_drops);
  w.u64(fstats_.crc_rejects);
  w.u64(fstats_.orphan_flits);
  w.u64(fstats_.retransmissions);
  w.u64(fstats_.duplicates_dropped);
  w.u64(fstats_.acks_delivered);
  w.u64(fstats_.frames_lost);
  w.u64(fstats_.tainted_delivered);
  w.u64(cycles_);
  w.u64(frames_sent_);
  w.u64(frames_delivered_);
  w.u64(flits_injected_);
  w.u64(payload_bytes_);
  for (std::uint64_t b : latency_.buckets) w.u64(b);
  w.u64(latency_.count);
  w.u64(latency_.total);
  w.u64(latency_.min);
  w.u64(latency_.max);
}

void Fabric::load_state(snap::Reader& r) {
  if (static_cast<TopologyKind>(r.u8()) != config_.topology) {
    throw snap::SnapError("fabric snapshot topology kind mismatch");
  }
  if (static_cast<RoutePolicy>(r.u8()) != config_.routing) {
    throw snap::SnapError("fabric snapshot routing policy mismatch");
  }
  if (r.u64() != routers_.size()) {
    throw snap::SnapError("fabric snapshot router count mismatch");
  }
  for (Router& rt : routers_) rt.load_state(r);
  if (r.u64() != nics_.size()) {
    throw snap::SnapError("fabric snapshot NIC count mismatch");
  }
  for (Nic& n : nics_) {
    n.tx.clear();
    std::uint64_t cnt = r.u64();
    for (std::uint64_t i = 0; i < cnt; ++i) n.tx.push_back(load_flit(r));
    n.inject_credits = static_cast<int>(r.u32());
    n.partial.clear();
    cnt = r.u64();
    for (std::uint64_t i = 0; i < cnt; ++i) {
      const int src = static_cast<int>(r.u32());
      const std::uint32_t seq = r.u32();
      Reassembly re;
      re.opcode = r.u32();
      re.frame_bytes = r.u32();
      re.frame_id = r.u32();
      re.crc = r.u32();
      re.tainted = r.boolean();
      re.payload = load_bytes(r);
      n.partial.emplace(std::make_pair(src, seq), std::move(re));
    }
    n.ready.clear();
    cnt = r.u64();
    for (std::uint64_t i = 0; i < cnt; ++i) n.ready.push_back(load_delivery(r));
    n.next_seq = r.u32();
    n.pending.clear();
    cnt = r.u64();
    for (std::uint64_t i = 0; i < cnt; ++i) {
      const std::uint32_t id = r.u32();
      PendingTx tx;
      tx.dst = static_cast<int>(r.u32());
      tx.frame_id = r.u32();
      tx.opcode = r.u32();
      tx.crc = r.u32();
      tx.payload = load_bytes(r);
      tx.send_cycle = r.u64();
      tx.min_due = r.u64();
      tx.deadline = r.u64();
      tx.attempts = static_cast<int>(r.u32());
      n.pending.emplace(id, std::move(tx));
    }
    n.retry_at.clear();
    cnt = r.u64();
    for (std::uint64_t i = 0; i < cnt; ++i) {
      const std::uint64_t deadline = r.u64();
      n.retry_at.emplace(deadline, r.u32());
    }
    n.delivered.clear();
    cnt = r.u64();
    for (std::uint64_t i = 0; i < cnt; ++i) {
      const int src = static_cast<int>(r.u32());
      const std::uint32_t id = r.u32();
      n.delivered.emplace(src, id);
    }
    n.next_frame_id = r.u32();
  }
  in_flight_.clear();
  std::uint64_t cnt = r.u64();
  for (std::uint64_t i = 0; i < cnt; ++i) {
    Arrival a;
    a.cycle = r.u64();
    a.router = static_cast<int>(r.u32());
    a.port = static_cast<Port>(r.u8());
    a.flit = load_flit(r);
    in_flight_.push_back(std::move(a));
  }
  if (r.u64() != links_.size()) {
    throw snap::SnapError("fabric snapshot link count mismatch");
  }
  for (LinkStats& l : links_) l.flits = r.u64();
  acks_.clear();
  cnt = r.u64();
  for (std::uint64_t i = 0; i < cnt; ++i) {
    Ack a;
    a.due = r.u64();
    a.to_tile = static_cast<int>(r.u32());
    a.frame_id = r.u32();
    acks_.push_back(a);
  }
  if (r.u64() != link_down_until_.size()) {
    throw snap::SnapError("fabric snapshot link count mismatch");
  }
  for (std::uint64_t& until : link_down_until_) until = r.u64();
  fstats_.flits_dropped = r.u64();
  fstats_.flits_corrupted = r.u64();
  fstats_.link_down_events = r.u64();
  fstats_.link_down_drops = r.u64();
  fstats_.crc_rejects = r.u64();
  fstats_.orphan_flits = r.u64();
  fstats_.retransmissions = r.u64();
  fstats_.duplicates_dropped = r.u64();
  fstats_.acks_delivered = r.u64();
  fstats_.frames_lost = r.u64();
  fstats_.tainted_delivered = r.u64();
  cycles_ = r.u64();
  frames_sent_ = r.u64();
  frames_delivered_ = r.u64();
  flits_injected_ = r.u64();
  payload_bytes_ = r.u64();
  for (std::uint64_t& b : latency_.buckets) b = r.u64();
  latency_.count = r.u64();
  latency_.total = r.u64();
  latency_.min = r.u64();
  latency_.max = r.u64();
  last_in_flight_ = in_flight_.size();
}

}  // namespace xtsoc::noc
