#include "xtsoc/noc/topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace xtsoc::noc {

const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kRing: return "ring";
  }
  return "?";
}

const char* to_string(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kXY: return "xy";
    case RoutePolicy::kYX: return "yx";
    case RoutePolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

const char* to_string(RouteMode m) {
  switch (m) {
    case RouteMode::kPrimary: return "primary";
    case RouteMode::kFallback: return "fallback";
  }
  return "?";
}

std::optional<TopologyKind> topology_from_string(std::string_view s) {
  if (s == "mesh") return TopologyKind::kMesh;
  if (s == "torus") return TopologyKind::kTorus;
  if (s == "ring") return TopologyKind::kRing;
  return std::nullopt;
}

std::optional<RoutePolicy> routing_from_string(std::string_view s) {
  if (s == "xy") return RoutePolicy::kXY;
  if (s == "yx") return RoutePolicy::kYX;
  if (s == "adaptive") return RoutePolicy::kAdaptive;
  return std::nullopt;
}

namespace {

/// Whether the effective dimension order corrects X before Y. kAdaptive
/// resolves to its deterministic XY core here; the Router layers the
/// credit-based choice on top.
bool x_first(RoutePolicy policy, RouteMode mode) {
  const bool xf = policy != RoutePolicy::kYX;
  return mode == RouteMode::kFallback ? !xf : xf;
}

class MeshTopology final : public Topology {
public:
  MeshTopology(int width, int height)
      : Topology(TopologyKind::kMesh, width, height) {}

  int neighbors(int tile, Port dir) const override {
    int x = x_of(tile), y = y_of(tile);
    switch (dir) {
      case kNorth: y -= 1; break;
      case kSouth: y += 1; break;
      case kEast: x += 1; break;
      case kWest: x -= 1; break;
      default: return -1;
    }
    if (x < 0 || x >= width() || y < 0 || y >= height()) return -1;
    return index(x, y);
  }

  Port route(RoutePolicy policy, int src, int dst,
             RouteMode mode) const override {
    const int x = x_of(src), y = y_of(src);
    const int dx = x_of(dst), dy = y_of(dst);
    if (x_first(policy, mode)) {
      if (dx > x) return kEast;
      if (dx < x) return kWest;
      if (dy > y) return kSouth;  // y grows downward (row-major tiles)
      if (dy < y) return kNorth;
      return kLocal;
    }
    if (dy > y) return kSouth;
    if (dy < y) return kNorth;
    if (dx > x) return kEast;
    if (dx < x) return kWest;
    return kLocal;
  }

  int min_hops(int a, int b) const override {
    const int ax = x_of(a), ay = y_of(a);
    const int bx = x_of(b), by = y_of(b);
    return (ax > bx ? ax - bx : bx - ax) + (ay > by ? ay - by : by - ay);
  }

  int link_count() const override {
    // Two directed links per adjacent pair.
    return 2 * ((width() - 1) * height() + width() * (height() - 1));
  }
};

/// Shared by torus and ring: one wrapped dimension of size `n`. Distance
/// forward (toward kEast / kSouth) from `from` to `to`; the minimal
/// direction is forward when fwd*2 <= n (ties wrap forward, keeping the
/// decision deterministic).
int wrap_fwd(int from, int to, int n) { return (to - from + n) % n; }

class TorusTopology final : public Topology {
public:
  TorusTopology(int width, int height)
      : Topology(TopologyKind::kTorus, width, height) {}

  int neighbors(int tile, Port dir) const override {
    const int x = x_of(tile), y = y_of(tile);
    switch (dir) {
      case kNorth:
        return height() < 2 ? -1 : index(x, (y - 1 + height()) % height());
      case kSouth:
        return height() < 2 ? -1 : index(x, (y + 1) % height());
      case kEast:
        return width() < 2 ? -1 : index((x + 1) % width(), y);
      case kWest:
        return width() < 2 ? -1 : index((x - 1 + width()) % width(), y);
      default:
        return -1;
    }
  }

  Port route(RoutePolicy policy, int src, int dst,
             RouteMode mode) const override {
    const Port xs = x_step(x_of(src), x_of(dst));
    const Port ys = y_step(y_of(src), y_of(dst));
    if (x_first(policy, mode)) {
      if (xs != kLocal) return xs;
      return ys;
    }
    if (ys != kLocal) return ys;
    return xs;
  }

  int min_hops(int a, int b) const override {
    const int fx = wrap_fwd(x_of(a), x_of(b), width());
    const int fy = wrap_fwd(y_of(a), y_of(b), height());
    return std::min(fx, width() - fx) + std::min(fy, height() - fy);
  }

  int link_count() const override {
    return (width() > 1 ? 2 * tiles() : 0) + (height() > 1 ? 2 * tiles() : 0);
  }

private:
  Port x_step(int x, int dx) const {
    const int fwd = wrap_fwd(x, dx, width());
    if (fwd == 0) return kLocal;
    return 2 * fwd <= width() ? kEast : kWest;
  }
  Port y_step(int y, int dy) const {
    const int fwd = wrap_fwd(y, dy, height());
    if (fwd == 0) return kLocal;
    return 2 * fwd <= height() ? kSouth : kNorth;
  }
};

class RingTopology final : public Topology {
public:
  explicit RingTopology(int width)
      : Topology(TopologyKind::kRing, width, /*height=*/1) {}

  int neighbors(int tile, Port dir) const override {
    const int x = x_of(tile);
    switch (dir) {
      case kEast: return width() < 2 ? -1 : index((x + 1) % width(), 0);
      case kWest:
        return width() < 2 ? -1 : index((x - 1 + width()) % width(), 0);
      default: return -1;  // one row: no vertical links
    }
  }

  Port route(RoutePolicy, int src, int dst, RouteMode) const override {
    // One dimension: policy and fallback order are indistinguishable (a
    // retransmission retraces the ring, there is no second path).
    const int fwd = wrap_fwd(x_of(src), x_of(dst), width());
    if (fwd == 0) return kLocal;
    return 2 * fwd <= width() ? kEast : kWest;
  }

  int min_hops(int a, int b) const override {
    const int fwd = wrap_fwd(x_of(a), x_of(b), width());
    return std::min(fwd, width() - fwd);
  }

  int link_count() const override { return width() > 1 ? 2 * width() : 0; }
};

}  // namespace

std::unique_ptr<Topology> make_topology(TopologyKind kind, int width,
                                        int height) {
  switch (kind) {
    case TopologyKind::kMesh:
      return std::make_unique<MeshTopology>(width, height);
    case TopologyKind::kTorus:
      if (width < 2 || height < 2) {
        throw std::invalid_argument(
            "torus needs both dimensions >= 2 (got " + std::to_string(width) +
            "x" + std::to_string(height) + ")");
      }
      return std::make_unique<TorusTopology>(width, height);
    case TopologyKind::kRing:
      if (height != 1) {
        throw std::invalid_argument("ring topology is one row (got height " +
                                    std::to_string(height) + ")");
      }
      return std::make_unique<RingTopology>(width);
  }
  throw std::invalid_argument("unknown topology kind");
}

}  // namespace xtsoc::noc
