// One router: five ports (local + the four compass directions), a per-port
// input FIFO, dimension-ordered routing delegated to the fabric's Topology,
// and credit-based flow control toward each neighbour.
//
// The cycle contract (driven by Fabric::tick):
//   * each output port forwards at most one flit per cycle (the link is
//     one flit wide);
//   * an input FIFO holds at most `fifo_depth` flits — the matching credit
//     counter lives in the upstream router, so a full buffer stalls the
//     sender instead of dropping flits;
//   * arbitration between input ports competing for one output is
//     round-robin, which keeps the network deterministic AND starvation-free;
//   * routing is dimension-ordered (correct one coordinate, then the other,
//     then eject), so flits of one (source, destination) pair never reorder
//     — the property frame reassembly relies on. Under the adaptive policy
//     the router picks which dimension to correct first, comparing its own
//     credit counters toward the two productive ports (ties take the XY
//     port). The decision is made once, on the frame's head flit, and
//     pinned until the tail passes (wormhole-style): body flits that chose
//     their own dimension could overtake the head on the other path and
//     reach the destination before reassembly opened. The fabric advances
//     routers in tile order every configuration, so the credit comparison
//     is as deterministic as the XY default.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "xtsoc/noc/flit.hpp"

namespace xtsoc::noc {

class Topology;

/// Port indices. kLocal is the NIC side; the rest are fabric links.
enum Port : int { kLocal = 0, kNorth, kEast, kSouth, kWest, kPortCount };

const char* to_string(Port p);

/// The port on the neighbouring router that a flit sent out of `p` arrives
/// on (east link feeds the neighbour's west port, and so on).
Port opposite(Port p);

struct RouterStats {
  std::uint64_t flits_routed = 0;     ///< flits forwarded through this router
  std::uint64_t flits_ejected = 0;    ///< flits delivered to the local NIC
  std::uint64_t credit_stalls = 0;    ///< arbitration wins lost to empty credit
  std::size_t buffer_high_water = 0;  ///< max flits buffered at once (all ports)
};

class Router {
public:
  Router(int x, int y, int fifo_depth, const Topology* topo, int tile,
         RoutePolicy policy)
      : x_(x), y_(y), depth_(fifo_depth), topo_(topo), tile_(tile),
        policy_(policy) {
    credits_.fill(0);
    rr_.fill(0);
  }

  int x() const { return x_; }
  int y() const { return y_; }
  int fifo_depth() const { return depth_; }

  /// Route decision for a flit seen at this router, under the fabric's
  /// topology and routing policy (honouring the flit's route mode). Under
  /// the adaptive policy this memoizes per open frame (see frame_forwarded).
  Port route(const Flit& f) const;

  /// Fabric calls this as it forwards `f` out of this router, so the
  /// adaptive policy can retire its pinned route when the tail passes.
  void frame_forwarded(const Flit& f) {
    if (policy_ == RoutePolicy::kAdaptive && f.kind == FlitKind::kTail) {
      adaptive_port_.erase(frame_key(f));
    }
  }

  // --- buffers (Fabric moves flits between routers) ---------------------------
  std::deque<Flit>& input(Port p) { return in_[p]; }
  const std::deque<Flit>& input(Port p) const { return in_[p]; }
  bool buffers_empty() const;
  std::size_t buffered() const;

  // --- credits toward each downstream neighbour --------------------------------
  int credits(Port p) const { return credits_[p]; }
  void set_credits(Port p, int n) { credits_[p] = n; }
  void take_credit(Port p) { --credits_[p]; }
  void return_credit(Port p) { ++credits_[p]; }

  // --- round-robin arbitration state -------------------------------------------
  /// Pick the next input port requesting `out`, starting after the last
  /// winner. Ports whose bit is set in `served_mask` already forwarded a
  /// flit this cycle (one flit per input per cycle) and are skipped.
  /// Returns -1 if no eligible input's head flit routes to `out`.
  int arbitrate(Port out, unsigned served_mask = 0) const;
  void advance_rr(Port out, int winner) {
    rr_[out] = (winner + 1) % kPortCount;
  }

  RouterStats& stats() { return stats_; }
  const RouterStats& stats() const { return stats_; }
  void note_occupancy();

  // --- checkpointing ---------------------------------------------------------
  /// Serialize buffered flits, credit counters, round-robin pointers and
  /// stats. Position and depth are construction-owned.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  /// Frame identity for the adaptive route pin: source tile + per-source
  /// sequence number (the same key reassembly uses).
  static std::uint64_t frame_key(const Flit& f) {
    return (static_cast<std::uint64_t>(f.src_x) << 48) |
           (static_cast<std::uint64_t>(f.src_y) << 40) |
           static_cast<std::uint64_t>(f.seq);
  }

  int x_, y_;
  int depth_;
  const Topology* topo_;  ///< owned by the Fabric, outlives every router
  int tile_;
  RoutePolicy policy_;
  std::array<std::deque<Flit>, kPortCount> in_;
  std::array<int, kPortCount> credits_;  ///< free slots downstream of each output
  std::array<int, kPortCount> rr_;       ///< next input to consider per output
  /// Adaptive policy only: output port pinned for each frame whose head
  /// this router has routed but whose tail has not yet passed. Mutable
  /// because the pin is established inside the (speculative, repeated)
  /// route() queries arbitration makes.
  mutable std::unordered_map<std::uint64_t, Port> adaptive_port_;
  RouterStats stats_;
};

}  // namespace xtsoc::noc
