// Flits: the unit of transfer on the on-chip network.
//
// A boundary frame (opcode + bit-packed payload, see cosim::Frame) is
// segmented by the sending NIC into link-width chunks. The first flit
// carries the routing header and opcode; the last one closes the frame so
// the receiving NIC knows when reassembly is complete. A frame that fits
// in one link transfer travels as a single kHeadTail flit — the common
// case for the narrow synthesized interfaces this repo generates.
#pragma once

#include <cstdint>
#include <vector>

namespace xtsoc::snap {
class Writer;
class Reader;
}  // namespace xtsoc::snap

namespace xtsoc::noc {

enum class FlitKind : std::uint8_t {
  kHead,      ///< first flit of a multi-flit frame (carries the header)
  kBody,      ///< middle payload chunk
  kTail,      ///< last payload chunk (completes reassembly)
  kHeadTail,  ///< single-flit frame (header + whole payload)
};

const char* to_string(FlitKind k);

/// Network shape, selected by the `topology` domain mark. Every kind routes
/// dimension-ordered over the same (x, y) tile coordinates; they differ in
/// which links exist (edge-clipped, wrapped, or one wrapped row).
enum class TopologyKind : std::uint8_t {
  kMesh = 0,   ///< W×H grid, links clipped at the edges (the default)
  kTorus = 1,  ///< W×H grid with wraparound links in both dimensions
  kRing = 2,   ///< W×1 row with wraparound links (one dimension only)
};

/// Routing policy, selected by the `routing` domain mark.
enum class RoutePolicy : std::uint8_t {
  kXY = 0,        ///< dimension order: correct X first, then Y (the default)
  kYX = 1,        ///< dimension order: correct Y first, then X
  kAdaptive = 2,  ///< minimal-adaptive: pick the less-backpressured
                  ///< productive dimension per hop (credit-based)
};

/// Which path one transmission attempt takes. kPrimary follows the fabric's
/// routing policy; kFallback flips the dimension order (XY attempts detour
/// YX and vice versa) so a retransmission does not march straight back into
/// the link that ate the previous attempt.
enum class RouteMode : std::uint8_t { kPrimary = 0, kFallback = 1 };

const char* to_string(TopologyKind k);
const char* to_string(RoutePolicy p);
const char* to_string(RouteMode m);

struct Flit {
  FlitKind kind = FlitKind::kHeadTail;
  // Routing header (meaningful on every flit: the mesh routes flits, not
  // frames — two frames may interleave on a link, reassembly is keyed by
  // (source, seq)).
  std::uint8_t src_x = 0, src_y = 0;
  std::uint8_t dst_x = 0, dst_y = 0;
  std::uint32_t seq = 0;  ///< per-source frame sequence number

  // Frame header (valid on kHead / kHeadTail).
  std::uint32_t opcode = 0;
  std::uint32_t frame_bytes = 0;  ///< total frame payload length

  // Resilient-transport header (populated only when fault injection arms
  // the NIC CRC/ack layer; all-zero otherwise). frame_id names the logical
  // frame across retransmission attempts — seq names one attempt, so
  // reassembly stays per-attempt while dedup and acks are per-frame.
  std::uint32_t frame_id = 0;
  std::uint32_t crc = 0;          ///< CRC-32 over the whole frame payload
  /// Route this attempt primary or fallback (retransmission detour).
  RouteMode route_mode = RouteMode::kPrimary;

  /// This flit's payload chunk (at most the configured link width).
  std::vector<std::uint8_t> payload;

  // Bookkeeping carried alongside the wire bits (simulation metadata).
  std::uint64_t send_cycle = 0;  ///< cycle the frame entered the source NIC
  std::uint64_t min_due = 0;     ///< earliest delivery (generate-delay)
  /// Simulation-only taint: set when an injected fault flipped a payload
  /// bit. Real hardware has no such flag — it exists to *verify* the CRC
  /// catches what the injector did (a tainted frame must never deliver).
  bool tainted = false;

  bool opens_frame() const {
    return kind == FlitKind::kHead || kind == FlitKind::kHeadTail;
  }
  bool closes_frame() const {
    return kind == FlitKind::kTail || kind == FlitKind::kHeadTail;
  }
};

/// Flit byte encoding for checkpoints (implemented with the fabric's other
/// serialization in fabric.cpp).
void save_flit(snap::Writer& w, const Flit& f);
Flit load_flit(snap::Reader& r);

}  // namespace xtsoc::noc
