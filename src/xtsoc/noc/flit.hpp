// Flits: the unit of transfer on the on-chip network.
//
// A boundary frame (opcode + bit-packed payload, see cosim::Frame) is
// segmented by the sending NIC into link-width chunks. The first flit
// carries the routing header and opcode; the last one closes the frame so
// the receiving NIC knows when reassembly is complete. A frame that fits
// in one link transfer travels as a single kHeadTail flit — the common
// case for the narrow synthesized interfaces this repo generates.
#pragma once

#include <cstdint>
#include <vector>

namespace xtsoc::snap {
class Writer;
class Reader;
}  // namespace xtsoc::snap

namespace xtsoc::noc {

enum class FlitKind : std::uint8_t {
  kHead,      ///< first flit of a multi-flit frame (carries the header)
  kBody,      ///< middle payload chunk
  kTail,      ///< last payload chunk (completes reassembly)
  kHeadTail,  ///< single-flit frame (header + whole payload)
};

const char* to_string(FlitKind k);

struct Flit {
  FlitKind kind = FlitKind::kHeadTail;
  // Routing header (meaningful on every flit: the mesh routes flits, not
  // frames — two frames may interleave on a link, reassembly is keyed by
  // (source, seq)).
  std::uint8_t src_x = 0, src_y = 0;
  std::uint8_t dst_x = 0, dst_y = 0;
  std::uint32_t seq = 0;  ///< per-source frame sequence number

  // Frame header (valid on kHead / kHeadTail).
  std::uint32_t opcode = 0;
  std::uint32_t frame_bytes = 0;  ///< total frame payload length

  // Resilient-transport header (populated only when fault injection arms
  // the NIC CRC/ack layer; all-zero otherwise). frame_id names the logical
  // frame across retransmission attempts — seq names one attempt, so
  // reassembly stays per-attempt while dedup and acks are per-frame.
  std::uint32_t frame_id = 0;
  std::uint32_t crc = 0;          ///< CRC-32 over the whole frame payload
  std::uint8_t route_mode = 0;    ///< 0 = XY, 1 = YX (retransmission detour)

  /// This flit's payload chunk (at most the configured link width).
  std::vector<std::uint8_t> payload;

  // Bookkeeping carried alongside the wire bits (simulation metadata).
  std::uint64_t send_cycle = 0;  ///< cycle the frame entered the source NIC
  std::uint64_t min_due = 0;     ///< earliest delivery (generate-delay)
  /// Simulation-only taint: set when an injected fault flipped a payload
  /// bit. Real hardware has no such flag — it exists to *verify* the CRC
  /// catches what the injector did (a tainted frame must never deliver).
  bool tainted = false;

  bool opens_frame() const {
    return kind == FlitKind::kHead || kind == FlitKind::kHeadTail;
  }
  bool closes_frame() const {
    return kind == FlitKind::kTail || kind == FlitKind::kHeadTail;
  }
};

/// Flit byte encoding for checkpoints (implemented with the fabric's other
/// serialization in fabric.cpp).
void save_flit(snap::Writer& w, const Flit& f);
Flit load_flit(snap::Reader& r);

}  // namespace xtsoc::noc
