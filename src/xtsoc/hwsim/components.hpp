// Reusable RTL building blocks on top of the hwsim kernel: register,
// counter, synchronous FIFO. The FIFO is the hardware half of the cosim
// bus; the others are exercised by tests and the hwsim benchmark.
#pragma once

#include <deque>
#include <vector>

#include "xtsoc/hwsim/kernel.hpp"

namespace xtsoc::hwsim {

/// D-type register: q <= d on each rising edge of clk while en is high.
class Register {
public:
  Register(Simulator& sim, HwSignalId clk, int width, std::string name = "reg");

  HwSignalId d() const { return d_; }
  HwSignalId q() const { return q_; }
  HwSignalId en() const { return en_; }

private:
  HwSignalId d_;
  HwSignalId q_;
  HwSignalId en_;
};

/// Up-counter with synchronous clear.
class Counter {
public:
  Counter(Simulator& sim, HwSignalId clk, int width,
          std::string name = "counter");

  HwSignalId value() const { return value_; }
  HwSignalId clear() const { return clear_; }
  HwSignalId enable() const { return enable_; }

private:
  HwSignalId value_;
  HwSignalId clear_;
  HwSignalId enable_;
};

/// Round-robin arbiter over N request lines: exactly one grant per cycle,
/// rotating priority so no requester starves. grant_index reads the granted
/// line (or N when nothing is requesting).
class RoundRobinArbiter {
public:
  RoundRobinArbiter(Simulator& sim, HwSignalId clk, int n_requesters,
                    std::string name = "arb");

  HwSignalId request(int i) const { return requests_.at(static_cast<std::size_t>(i)); }
  HwSignalId grant(int i) const { return grants_.at(static_cast<std::size_t>(i)); }
  /// Granted line index this cycle; equals requester count when idle.
  HwSignalId grant_index() const { return grant_index_; }
  int size() const { return static_cast<int>(requests_.size()); }

private:
  std::vector<HwSignalId> requests_;
  std::vector<HwSignalId> grants_;
  HwSignalId grant_index_;
  int last_ = -1;  ///< most recently granted line (rotates priority)
};

/// Synchronous FIFO of 64-bit words with valid/ready handshakes on both
/// sides. Push: drive in_valid+in_data before an edge; accepted when
/// in_ready was high. Pop: out_valid/out_data are registered; assert
/// out_ready to consume.
class SyncFifo {
public:
  SyncFifo(Simulator& sim, HwSignalId clk, std::size_t depth,
           std::string name = "fifo");

  HwSignalId in_data() const { return in_data_; }
  HwSignalId in_valid() const { return in_valid_; }
  HwSignalId in_ready() const { return in_ready_; }
  HwSignalId out_data() const { return out_data_; }
  HwSignalId out_valid() const { return out_valid_; }
  HwSignalId out_ready() const { return out_ready_; }

  std::size_t size() const { return buf_.size(); }
  std::size_t depth() const { return depth_; }

private:
  std::size_t depth_;
  std::deque<std::uint64_t> buf_;
  HwSignalId in_data_, in_valid_, in_ready_;
  HwSignalId out_data_, out_valid_, out_ready_;
};

}  // namespace xtsoc::hwsim
