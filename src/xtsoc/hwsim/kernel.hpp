// hwsim: a discrete-event, delta-cycle hardware simulator.
//
// This is the substrate that stands in for the FPGA/ASIC the paper's VHDL
// output would target. Semantics follow event-driven RTL simulation:
//
//   * a Wire carries an unsigned value of a declared bit width;
//   * combinational processes re-evaluate when a wire in their sensitivity
//     list changes; their writes are non-blocking (visible next delta);
//   * clocked processes run once per rising edge of their clock wire;
//   * within one simulation instant, deltas repeat until no wire changes
//     (with an oscillation guard for unstable combinational loops);
//   * simulation time advances in integer ticks; clocks are scheduled
//     toggles.
//
// The xtUML hardware mapping (src/xtsoc/cosim/hwdomain.*) lowers each
// hardware-marked class onto a clocked process of this kernel: one queued
// signal consumed per clock edge per instance — which is what makes
// hardware latency observable and distinct from software in experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "xtsoc/common/ids.hpp"

namespace xtsoc::hwsim {

/// Thrown on kernel-level faults: unstable combinational loop, bad wire id.
class SimError : public std::runtime_error {
public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

struct SimStats {
  std::uint64_t delta_cycles = 0;
  std::uint64_t process_activations = 0;
  std::uint64_t wire_commits = 0;
};

class Simulator {
public:
  using ProcessFn = std::function<void(Simulator&)>;

  /// Deltas allowed within one instant before declaring oscillation.
  static constexpr int kDeltaLimit = 1000;

  // --- netlist construction --------------------------------------------------

  /// Create a wire of `width` bits (1..64) holding `init`.
  HwSignalId wire(int width, std::uint64_t init = 0, std::string name = {});

  /// Combinational process: runs whenever any wire in `sensitivity` changes
  /// (and once at time 0 to settle initial values).
  ProcessId combinational(std::vector<HwSignalId> sensitivity, ProcessFn fn);

  /// Clocked process: runs on each rising edge of `clock`.
  ProcessId on_posedge(HwSignalId clock, ProcessFn fn);

  /// Auto-toggle `w` every `half_period` ticks (a clock generator).
  void add_clock(HwSignalId w, std::uint64_t half_period);

  // --- wire access -------------------------------------------------------------

  std::uint64_t read(HwSignalId w) const;

  /// Non-blocking write: takes effect at the end of the current delta.
  /// This is the only write processes may use.
  void nba_write(HwSignalId w, std::uint64_t value);

  /// Immediate testbench write (outside process evaluation). Triggers
  /// sensitive processes on the next settle().
  void poke(HwSignalId w, std::uint64_t value);

  const std::string& name_of(HwSignalId w) const;
  int width_of(HwSignalId w) const;

  // --- execution ---------------------------------------------------------------

  /// Run delta cycles at the current instant until no wire changes.
  void settle();

  /// Advance time by `ticks`, firing scheduled clock toggles and settling
  /// after each instant with activity.
  void advance(std::uint64_t ticks);

  /// Advance until `clock` has produced `cycles` rising edges.
  void run_cycles(HwSignalId clock, std::uint64_t cycles);

  std::uint64_t now() const { return now_; }
  std::uint64_t posedge_count(HwSignalId clock) const;
  const SimStats& stats() const { return stats_; }
  std::size_t wire_count() const { return wires_.size(); }

private:
  struct WireState {
    std::uint64_t value = 0;
    std::uint64_t next = 0;
    bool has_next = false;
    int width = 1;
    std::uint64_t mask = 1;
    std::string name;
    std::vector<ProcessId> sensitive;  ///< combinational listeners
    std::uint64_t posedges = 0;        ///< rising-edge counter
  };

  struct Process {
    ProcessFn fn;
    bool clocked = false;
    HwSignalId clock;
  };

  struct ClockGen {
    HwSignalId w;
    std::uint64_t half_period;
    std::uint64_t next_toggle;
  };

  WireState& state(HwSignalId w);
  const WireState& state(HwSignalId w) const;
  void mark_changed(HwSignalId w, std::uint64_t old_value);

  std::vector<WireState> wires_;
  std::vector<Process> processes_;
  std::vector<ClockGen> clocks_;
  std::vector<ProcessId> runnable_;
  std::vector<HwSignalId> nba_pending_;
  std::uint64_t now_ = 0;
  bool initial_settle_done_ = false;
  SimStats stats_;
};

}  // namespace xtsoc::hwsim
