// hwsim: a discrete-event, delta-cycle hardware simulator.
//
// This is the substrate that stands in for the FPGA/ASIC the paper's VHDL
// output would target. Semantics follow event-driven RTL simulation:
//
//   * a Wire carries an unsigned value of a declared bit width;
//   * combinational processes re-evaluate when a wire in their sensitivity
//     list changes; their writes are non-blocking (visible next delta);
//   * clocked processes run once per rising edge of their clock wire;
//   * within one simulation instant, deltas repeat until no wire changes
//     (with an oscillation guard for unstable combinational loops);
//   * simulation time advances in integer ticks; clocks are scheduled
//     toggles.
//
// The xtUML hardware mapping (src/xtsoc/cosim/hwdomain.*) lowers each
// hardware-marked class onto a clocked process of this kernel: one queued
// signal consumed per clock edge per instance — which is what makes
// hardware latency observable and distinct from software in experiments.
//
// Parallel evaluation (SimConfig::threads > 1): within one delta cycle
// every process in the runnable batch sees only the committed wire values
// of the previous delta and emits non-blocking writes, so the batch is
// evaluated concurrently on a persistent worker pool. Writes are staged
// per batch slot and replayed in the batch order the serial kernel would
// have used, making any thread count byte-identical to threads = 1:
// same traces, same VCD, same SimStats, same oscillation behaviour.
// The contract processes must honour in parallel mode: read wires,
// nba_write, and touch only state no other process shares (no poke, no
// netlist mutation, no cross-process shared mutable state).
//
// Sharded window replay (set_replay_shards + run_cycles_sharded): the
// second, coarser level of parallelism, used by the windowed co-simulation.
// When the netlist partitions cleanly — every process clocked on one
// clock, every written wire owned by exactly one shard, no listeners on
// the owned wires — all shards evaluate their W edges concurrently on a
// worker pool, each against a private window-boundary snapshot of the
// wire values, and a serial spine then merges the per-edge commits in
// (edge, shard index, intra-shard order). That is the same total order
// the serial kernel produces, so stats, posedge counters, wire history
// and checkpoints stay byte-identical at any shard/thread count.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "xtsoc/common/ids.hpp"
#include "xtsoc/obs/registry.hpp"

namespace xtsoc::snap {
class Writer;
class Reader;
}  // namespace xtsoc::snap

namespace xtsoc::hwsim {

class WorkerPool;  // pool.hpp — shared with the cosim window scheduler

/// Thrown on kernel-level faults: unstable combinational loop, bad wire id.
class SimError : public std::runtime_error {
public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

struct SimStats {
  std::uint64_t delta_cycles = 0;
  std::uint64_t process_activations = 0;
  std::uint64_t wire_commits = 0;
};

/// One shard of a sharded window replay: a slice of the netlist owned by
/// one worker. `processes` are clocked processes of the replay clock,
/// evaluated in this order every edge; `wires` are the wires those
/// processes write — exclusive property of this shard for the whole
/// window, and required to have no combinational or clocked listeners
/// (so a commit can never schedule work outside the shard).
struct ShardPlan {
  std::vector<ProcessId> processes;
  std::vector<HwSignalId> wires;
};

struct SimConfig {
  /// Worker threads evaluating each delta's runnable batch. 1 (default)
  /// is the exact serial kernel; N > 1 runs the batch on a persistent
  /// pool of N workers (the calling thread counts as one) with a
  /// deterministic commit that is byte-identical to the serial kernel.
  int threads = 1;
  /// Optional observability sink: settle/batch spans land on the "kernel"
  /// track, delta/activation counters on "kernel.*". Never perturbs
  /// simulation behaviour.
  obs::Registry* obs = nullptr;
};

class Simulator {
public:
  using ProcessFn = std::function<void(Simulator&)>;

  /// Deltas allowed within one instant before declaring oscillation.
  static constexpr int kDeltaLimit = 1000;

  Simulator();
  explicit Simulator(SimConfig config);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  int threads() const { return config_.threads; }

  // --- netlist construction --------------------------------------------------

  /// Create a wire of `width` bits (1..64) holding `init`.
  HwSignalId wire(int width, std::uint64_t init = 0, std::string name = {});

  /// Combinational process: runs whenever any wire in `sensitivity` changes
  /// (and once at time 0 to settle initial values).
  ProcessId combinational(std::vector<HwSignalId> sensitivity, ProcessFn fn);

  /// Clocked process: runs on each rising edge of `clock`.
  ProcessId on_posedge(HwSignalId clock, ProcessFn fn);

  /// Auto-toggle `w` every `half_period` ticks (a clock generator).
  void add_clock(HwSignalId w, std::uint64_t half_period);

  // --- wire access -------------------------------------------------------------

  std::uint64_t read(HwSignalId w) const;

  /// Non-blocking write: takes effect at the end of the current delta.
  /// This is the only write processes may use.
  void nba_write(HwSignalId w, std::uint64_t value);

  /// Immediate testbench write (outside process evaluation). Triggers
  /// sensitive processes on the next settle().
  void poke(HwSignalId w, std::uint64_t value);

  const std::string& name_of(HwSignalId w) const;
  int width_of(HwSignalId w) const;

  // --- execution ---------------------------------------------------------------

  /// Run delta cycles at the current instant until no wire changes.
  void settle();

  /// Advance time by `ticks`, firing scheduled clock toggles and settling
  /// after each instant with activity.
  void advance(std::uint64_t ticks);

  /// Advance until `clock` has produced `cycles` rising edges.
  void run_cycles(HwSignalId clock, std::uint64_t cycles);

  /// Run-N-cycles entry point with per-edge callbacks: `before_edge(k)` runs
  /// just before the k-th rising toggle, `after_edge(k)` right after its
  /// settle (k is 0-based). The toggle/settle sequence — and therefore every
  /// stat, trace and waveform byte — is identical to calling
  /// run_cycles(clock, 1) `cycles` times with the callback bodies in
  /// between; this form enters the kernel once per window instead of once
  /// per cycle. Either callback may be null.
  void run_cycles(HwSignalId clock, std::uint64_t cycles,
                  const std::function<void(std::uint64_t)>& before_edge,
                  const std::function<void(std::uint64_t)>& after_edge);

  /// Install (or, with an empty vector, remove) the shard partition for
  /// run_cycles_sharded. Validates the structural preconditions and throws
  /// SimError on any violation: every process must be clocked on `clock`
  /// and belong to exactly one shard; shard wires must be pairwise
  /// disjoint, must not be the clock, and must have no sensitive or
  /// clocked listeners; exactly one clock generator may exist and it must
  /// drive `clock`. Call after the netlist is fully elaborated.
  void set_replay_shards(HwSignalId clock, std::vector<ShardPlan> shards);
  bool has_replay_shards() const { return !shards_.empty(); }

  /// Sharded form of the windowed run_cycles: evaluates every shard's
  /// processes for all `cycles` edges concurrently on `pool`, then merges
  /// the per-edge commits serially in (edge, shard index, intra-shard
  /// first-write order) while running `before_edge`/`after_edge` around
  /// each edge. During shard evaluation a process reads its own shard's
  /// wires as of the previous edge and every other wire as of the window
  /// boundary — the conservative-lookahead legality argument is the
  /// caller's (a window never exceeds the interconnect lookahead L), the
  /// byte-identity to run_cycles(clock, cycles, before, after) is this
  /// kernel's. A write to a wire the process's shard does not own throws
  /// SimError. Falls back to the serial form when no shards are installed
  /// or the kernel is not at a quiet point.
  void run_cycles_sharded(HwSignalId clock, std::uint64_t cycles,
                          WorkerPool& pool,
                          const std::function<void(std::uint64_t)>& before_edge,
                          const std::function<void(std::uint64_t)>& after_edge);

  std::uint64_t now() const { return now_; }
  std::uint64_t posedge_count(HwSignalId clock) const;
  const SimStats& stats() const { return stats_; }
  std::size_t wire_count() const { return wires_.size(); }

  // --- checkpointing ---------------------------------------------------------
  /// Serialize the dynamic kernel state: wire values/latches/edge counters,
  /// clock schedules, time, settle flag, stats. The NETLIST (wires, widths,
  /// processes, sensitivities) is not serialized — a restore re-elaborates
  /// the same netlist from the model and load_state refuses a snapshot
  /// whose shape (wire count/widths, clock count) disagrees. Only legal at
  /// a quiet point: no queued runnables, no pending non-blocking writes
  /// (between run_cycles calls); throws SnapError otherwise.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  struct WireState {
    std::uint64_t value = 0;
    std::uint64_t next = 0;
    bool has_next = false;
    int width = 1;
    std::uint64_t mask = 1;
    std::string name;
    std::vector<ProcessId> sensitive;  ///< combinational listeners
    std::vector<ProcessId> clocked;    ///< posedge listeners (this is a clock)
    std::uint64_t posedges = 0;        ///< rising-edge counter
  };

  struct Process {
    ProcessFn fn;
    bool clocked = false;
    HwSignalId clock;
  };

  struct ClockGen {
    HwSignalId w;
    std::uint64_t half_period;
    std::uint64_t next_toggle;
  };

  /// One batch slot's staged non-blocking writes (parallel mode). Slots are
  /// indexed by position in the deduplicated batch, so replaying them in
  /// slot order reproduces the serial kernel's write order exactly.
  struct StagedWrite {
    HwSignalId w;
    std::uint64_t value;
  };
  struct EvalSlot {
    std::vector<StagedWrite> writes;
    std::exception_ptr error;
  };

  /// One folded commit of a sharded window replay: wire + final (last
  /// write wins) value, recorded in first-write order per edge.
  struct ShardChange {
    HwSignalId w;
    std::uint64_t value;
  };

  /// Runtime state of one replay shard. The worker that evaluates the
  /// shard owns everything here for the duration of run_cycles_sharded's
  /// parallel stage; the serial spine reads it afterwards (the pool's
  /// fork/join handshake provides the happens-before edges both ways).
  struct ReplayShard {
    int index = 0;
    ShardPlan plan;
    obs::TrackId track;  ///< per-shard span attribution ("kernel/shardN")
    /// Private window-boundary snapshot of every wire value; entries for
    /// shard-owned wires advance as the shard commits its own edges, all
    /// others stay frozen for the whole window.
    std::vector<std::uint64_t> values;
    std::vector<StagedWrite> staged;    ///< current edge's raw writes
    std::vector<ShardChange> changes;   ///< folded commits, all edges flat
    std::vector<std::size_t> edge_end;  ///< changes.size() after edge k
    std::vector<std::uint64_t> seen;    ///< per-wire fold stamps
    std::uint64_t fold_epoch = 0;
    std::vector<std::uint64_t> pending;  ///< per-wire last staged value
    std::exception_ptr error;
    std::uint64_t error_edge = 0;
  };

  WireState& state(HwSignalId w);
  const WireState& state(HwSignalId w) const;
  void mark_changed(HwSignalId w, std::uint64_t old_value);
  /// The serial nba_write body: stage into the wire's next-value latch and
  /// the commit list. Also the replay step of the parallel merge.
  void apply_nba(HwSignalId w, std::uint64_t value);
  void eval_batch_parallel();
  /// Evaluate one shard's processes for `cycles` edges against its private
  /// snapshot, folding each edge's writes into a commit list (worker side
  /// of run_cycles_sharded).
  void run_shard(ReplayShard& shard, std::uint64_t cycles);

  SimConfig config_;
  std::unique_ptr<WorkerPool> pool_;

  std::vector<WireState> wires_;
  std::vector<Process> processes_;
  std::vector<ClockGen> clocks_;
  std::vector<ProcessId> runnable_;
  std::vector<HwSignalId> nba_pending_;
  std::uint64_t now_ = 0;
  bool initial_settle_done_ = false;
  SimStats stats_;

  // Observability (null members when no registry is attached).
  obs::Registry* obs_ = nullptr;
  obs::TrackId obs_track_;
  obs::Counter* c_delta_cycles_ = nullptr;
  obs::Counter* c_activations_ = nullptr;
  obs::Counter* c_parallel_batches_ = nullptr;

  // Reused per-delta scratch (no steady-state allocation).
  std::vector<ProcessId> batch_;           ///< deduplicated runnable batch
  std::vector<std::uint64_t> seen_epoch_;  ///< runnable dedup stamps
  std::uint64_t epoch_ = 0;
  std::vector<HwSignalId> commit_buf_;     ///< pending writes being committed
  std::vector<EvalSlot> slots_;            ///< parallel staging, per batch slot

  // Sharded window replay (empty/invalid unless set_replay_shards ran).
  HwSignalId replay_clock_ = HwSignalId::invalid();
  std::vector<ReplayShard> shards_;
  std::vector<int> shard_of_wire_;  ///< wire index -> owning shard, -1 none

  /// Set while THIS simulator evaluates a batch in parallel on the current
  /// thread; routes nba_write into the active slot.
  static thread_local Simulator* tls_sim_;
  static thread_local EvalSlot* tls_slot_;
  /// Set while THIS simulator evaluates a replay shard on the current
  /// thread; routes nba_write into the shard's staging buffer and read()
  /// onto the shard's snapshot.
  static thread_local Simulator* tls_shard_sim_;
  static thread_local ReplayShard* tls_shard_;
};

}  // namespace xtsoc::hwsim
