#include "xtsoc/hwsim/kernel.hpp"

#include <algorithm>
#include <atomic>

#include "xtsoc/hwsim/pool.hpp"
#include "xtsoc/snap/io.hpp"

namespace xtsoc::hwsim {

thread_local Simulator* Simulator::tls_sim_ = nullptr;
thread_local Simulator::EvalSlot* Simulator::tls_slot_ = nullptr;

Simulator::Simulator() = default;

Simulator::Simulator(SimConfig config) : config_(config), obs_(config.obs) {
  if (config_.threads < 1) config_.threads = 1;
  if (config_.threads > 1) {
    pool_ = std::make_unique<WorkerPool>(config_.threads);
  }
  if (obs_ != nullptr) {
    obs_track_ = obs_->track("kernel");
    c_delta_cycles_ = obs_->counter("kernel.delta_cycles");
    c_activations_ = obs_->counter("kernel.process_activations");
    c_parallel_batches_ = obs_->counter("kernel.parallel_batches");
  }
}

Simulator::~Simulator() = default;

HwSignalId Simulator::wire(int width, std::uint64_t init, std::string name) {
  if (width < 1 || width > 64) {
    throw SimError("wire width must be in [1, 64]");
  }
  WireState w;
  w.width = width;
  w.mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  w.value = init & w.mask;
  w.name = std::move(name);
  wires_.push_back(std::move(w));
  return HwSignalId(static_cast<HwSignalId::underlying_type>(wires_.size() - 1));
}

Simulator::WireState& Simulator::state(HwSignalId w) {
  if (!w.is_valid() || w.value() >= wires_.size()) {
    throw SimError("invalid wire id");
  }
  return wires_[w.value()];
}

const Simulator::WireState& Simulator::state(HwSignalId w) const {
  return const_cast<Simulator*>(this)->state(w);
}

ProcessId Simulator::combinational(std::vector<HwSignalId> sensitivity,
                                   ProcessFn fn) {
  ProcessId id(static_cast<ProcessId::underlying_type>(processes_.size()));
  processes_.push_back({std::move(fn), false, HwSignalId::invalid()});
  for (HwSignalId w : sensitivity) {
    state(w).sensitive.push_back(id);
  }
  runnable_.push_back(id);  // settle initial outputs at time 0
  return id;
}

ProcessId Simulator::on_posedge(HwSignalId clock, ProcessFn fn) {
  ProcessId id(static_cast<ProcessId::underlying_type>(processes_.size()));
  // Per-clock posedge list, built at registration time: a rising edge
  // triggers exactly this list instead of a scan over every process.
  state(clock).clocked.push_back(id);
  processes_.push_back({std::move(fn), true, clock});
  return id;
}

void Simulator::add_clock(HwSignalId w, std::uint64_t half_period) {
  if (half_period == 0) throw SimError("clock half period must be nonzero");
  state(w);
  clocks_.push_back({w, half_period, now_ + half_period});
}

std::uint64_t Simulator::read(HwSignalId w) const { return state(w).value; }

void Simulator::apply_nba(HwSignalId w, std::uint64_t value) {
  WireState& s = state(w);
  s.next = value & s.mask;
  if (!s.has_next) {
    s.has_next = true;
    nba_pending_.push_back(w);
  }
}

void Simulator::nba_write(HwSignalId w, std::uint64_t value) {
  if (tls_sim_ == this) {
    // Parallel batch evaluation in flight on this thread: stage into the
    // process's slot; the caller merges slots in batch order afterwards.
    const WireState& s = state(w);
    tls_slot_->writes.push_back({w, value & s.mask});
    return;
  }
  apply_nba(w, value);
}

void Simulator::poke(HwSignalId w, std::uint64_t value) {
  WireState& s = state(w);
  std::uint64_t old = s.value;
  s.value = value & s.mask;
  mark_changed(w, old);
}

void Simulator::mark_changed(HwSignalId w, std::uint64_t old_value) {
  WireState& s = state(w);
  if (s.value == old_value) return;
  ++stats_.wire_commits;
  // Rising edge?
  if (s.width == 1 && old_value == 0 && s.value == 1) {
    ++s.posedges;
    for (ProcessId p : s.clocked) runnable_.push_back(p);
  }
  for (ProcessId p : s.sensitive) runnable_.push_back(p);
}

void Simulator::eval_batch_parallel() {
  if (slots_.size() < batch_.size()) slots_.resize(batch_.size());
  std::atomic<std::size_t> cursor{0};
  const std::size_t n = batch_.size();
  auto job = [this, &cursor, n] {
    tls_sim_ = this;
    for (;;) {
      std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      EvalSlot& slot = slots_[i];
      tls_slot_ = &slot;
      try {
        processes_[batch_[i].value()].fn(*this);
      } catch (...) {
        slot.error = std::current_exception();
      }
    }
    tls_slot_ = nullptr;
    tls_sim_ = nullptr;
  };
  pool_->run(job);

  // Deterministic merge. Batch order is exactly the order the serial kernel
  // would have evaluated these processes in, so replaying each slot's writes
  // in slot order reproduces the serial commit list byte for byte (first
  // write of a wire fixes its commit position; the last write wins).
  // On a process fault, mirror serial behaviour: writes of processes that
  // ran before the faulting one are staged, the rest are discarded.
  std::size_t stop = n;
  std::exception_ptr error;
  for (std::size_t i = 0; i < n; ++i) {
    if (slots_[i].error) {
      error = slots_[i].error;
      stop = i;
      break;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EvalSlot& slot = slots_[i];
    if (i < stop) {
      for (const StagedWrite& sw : slot.writes) apply_nba(sw.w, sw.value);
    }
    slot.writes.clear();
    slot.error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void Simulator::settle() {
  if (runnable_.empty()) return;  // quiet instant: nothing to do, no span
  OBS_SPAN(obs_, obs_track_, "settle");
  int deltas = 0;
  while (!runnable_.empty()) {
    if (++deltas > kDeltaLimit) {
      throw SimError("combinational loop did not stabilize within " +
                     std::to_string(kDeltaLimit) + " deltas");
    }
    ++stats_.delta_cycles;
    OBS_COUNT(c_delta_cycles_);

    // Run each triggered process once per delta. Dedup preserves trigger
    // order via epoch stamps — no per-delta allocation, unlike a fresh set.
    if (seen_epoch_.size() < processes_.size()) {
      seen_epoch_.resize(processes_.size(), 0);
    }
    ++epoch_;
    batch_.clear();
    for (ProcessId p : runnable_) {
      if (seen_epoch_[p.value()] == epoch_) continue;
      seen_epoch_[p.value()] = epoch_;
      batch_.push_back(p);
    }
    runnable_.clear();

    if (pool_ && batch_.size() > 1) {
      stats_.process_activations += batch_.size();
      OBS_COUNT_N(c_activations_, batch_.size());
      OBS_COUNT(c_parallel_batches_);
      OBS_SPAN(obs_, obs_track_, "parallel_batch");
      eval_batch_parallel();
    } else {
      OBS_COUNT_N(c_activations_, batch_.size());
      for (ProcessId p : batch_) {
        ++stats_.process_activations;
        processes_[p.value()].fn(*this);
      }
    }

    // Commit non-blocking writes; changed wires trigger the next delta.
    commit_buf_.clear();
    commit_buf_.swap(nba_pending_);
    for (HwSignalId w : commit_buf_) {
      WireState& s = state(w);
      s.has_next = false;
      std::uint64_t old = s.value;
      s.value = s.next;
      mark_changed(w, old);
    }
  }
}

void Simulator::advance(std::uint64_t ticks) {
  if (!initial_settle_done_) {
    settle();
    initial_settle_done_ = true;
  }
  std::uint64_t target = now_ + ticks;
  while (true) {
    // Next clock toggle at or before target?
    std::uint64_t next_time = target;
    bool has_toggle = false;
    for (const ClockGen& c : clocks_) {
      if (c.next_toggle <= target && (!has_toggle || c.next_toggle < next_time)) {
        next_time = c.next_toggle;
        has_toggle = true;
      }
    }
    if (!has_toggle) {
      now_ = target;
      return;
    }
    now_ = next_time;
    for (ClockGen& c : clocks_) {
      if (c.next_toggle == now_) {
        poke(c.w, read(c.w) ^ 1u);
        c.next_toggle = now_ + c.half_period;
      }
    }
    settle();
  }
}

void Simulator::run_cycles(HwSignalId clock, std::uint64_t cycles) {
  std::uint64_t start = posedge_count(clock);
  // Find the generator driving this clock to step efficiently.
  std::uint64_t half = 1;
  for (const ClockGen& c : clocks_) {
    if (c.w == clock) half = c.half_period;
  }
  while (posedge_count(clock) < start + cycles) {
    advance(half);
  }
}

void Simulator::run_cycles(HwSignalId clock, std::uint64_t cycles,
                           const std::function<void(std::uint64_t)>& before_edge,
                           const std::function<void(std::uint64_t)>& after_edge) {
  std::uint64_t half = 1;
  for (const ClockGen& c : clocks_) {
    if (c.w == clock) half = c.half_period;
  }
  // One kernel entry for the whole run: the generator lookup above happens
  // once, not once per cycle, and the edge-by-edge toggle/settle sequence is
  // exactly `cycles` consecutive run_cycles(clock, 1) calls.
  for (std::uint64_t k = 0; k < cycles; ++k) {
    if (before_edge) before_edge(k);
    const std::uint64_t start = posedge_count(clock);
    while (posedge_count(clock) < start + 1) advance(half);
    if (after_edge) after_edge(k);
  }
}

std::uint64_t Simulator::posedge_count(HwSignalId clock) const {
  return state(clock).posedges;
}

const std::string& Simulator::name_of(HwSignalId w) const {
  return state(w).name;
}

int Simulator::width_of(HwSignalId w) const { return state(w).width; }

void Simulator::save_state(snap::Writer& w) const {
  if (!runnable_.empty() || !nba_pending_.empty()) {
    throw snap::SnapError(
        "kernel checkpoint requires a quiet point: processes are runnable "
        "or non-blocking writes are pending");
  }
  w.u64(wires_.size());
  for (const WireState& ws : wires_) {
    w.u8(static_cast<std::uint8_t>(ws.width));  // shape check on load
    w.u64(ws.value);
    w.u64(ws.posedges);
  }
  w.u64(clocks_.size());
  for (const ClockGen& c : clocks_) {
    w.u64(c.half_period);  // shape check on load
    w.u64(c.next_toggle);
  }
  w.u64(now_);
  w.boolean(initial_settle_done_);
  w.u64(stats_.delta_cycles);
  w.u64(stats_.process_activations);
  w.u64(stats_.wire_commits);
}

void Simulator::load_state(snap::Reader& r) {
  const std::uint64_t nwires = r.u64();
  if (nwires != wires_.size()) {
    throw snap::SnapError("kernel snapshot has " + std::to_string(nwires) +
                          " wires, netlist has " +
                          std::to_string(wires_.size()));
  }
  for (WireState& ws : wires_) {
    const int width = r.u8();
    if (width != ws.width) {
      throw snap::SnapError("kernel snapshot wire width mismatch on '" +
                            ws.name + "'");
    }
    ws.value = r.u64();
    ws.next = 0;
    ws.has_next = false;
    ws.posedges = r.u64();
  }
  const std::uint64_t nclocks = r.u64();
  if (nclocks != clocks_.size()) {
    throw snap::SnapError("kernel snapshot clock count mismatch");
  }
  for (ClockGen& c : clocks_) {
    const std::uint64_t half = r.u64();
    if (half != c.half_period) {
      throw snap::SnapError("kernel snapshot clock period mismatch");
    }
    c.next_toggle = r.u64();
  }
  now_ = r.u64();
  initial_settle_done_ = r.boolean();
  stats_.delta_cycles = r.u64();
  stats_.process_activations = r.u64();
  stats_.wire_commits = r.u64();
  // A freshly elaborated netlist queues every combinational process for the
  // time-0 settle; the snapshot already carries the settled wire values, so
  // that pending work must be discarded, not replayed.
  runnable_.clear();
  nba_pending_.clear();
}

}  // namespace xtsoc::hwsim
