#include "xtsoc/hwsim/kernel.hpp"

#include <algorithm>
#include <atomic>

#include "xtsoc/hwsim/pool.hpp"
#include "xtsoc/snap/io.hpp"

namespace xtsoc::hwsim {

thread_local Simulator* Simulator::tls_sim_ = nullptr;
thread_local Simulator::EvalSlot* Simulator::tls_slot_ = nullptr;
thread_local Simulator* Simulator::tls_shard_sim_ = nullptr;
thread_local Simulator::ReplayShard* Simulator::tls_shard_ = nullptr;

Simulator::Simulator() = default;

Simulator::Simulator(SimConfig config) : config_(config), obs_(config.obs) {
  if (config_.threads < 1) config_.threads = 1;
  if (config_.threads > 1) {
    pool_ = std::make_unique<WorkerPool>(config_.threads);
  }
  if (obs_ != nullptr) {
    obs_track_ = obs_->track("kernel");
    c_delta_cycles_ = obs_->counter("kernel.delta_cycles");
    c_activations_ = obs_->counter("kernel.process_activations");
    c_parallel_batches_ = obs_->counter("kernel.parallel_batches");
  }
}

Simulator::~Simulator() = default;

HwSignalId Simulator::wire(int width, std::uint64_t init, std::string name) {
  if (width < 1 || width > 64) {
    throw SimError("wire width must be in [1, 64]");
  }
  WireState w;
  w.width = width;
  w.mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  w.value = init & w.mask;
  w.name = std::move(name);
  wires_.push_back(std::move(w));
  return HwSignalId(static_cast<HwSignalId::underlying_type>(wires_.size() - 1));
}

Simulator::WireState& Simulator::state(HwSignalId w) {
  if (!w.is_valid() || w.value() >= wires_.size()) {
    throw SimError("invalid wire id");
  }
  return wires_[w.value()];
}

const Simulator::WireState& Simulator::state(HwSignalId w) const {
  return const_cast<Simulator*>(this)->state(w);
}

ProcessId Simulator::combinational(std::vector<HwSignalId> sensitivity,
                                   ProcessFn fn) {
  ProcessId id(static_cast<ProcessId::underlying_type>(processes_.size()));
  processes_.push_back({std::move(fn), false, HwSignalId::invalid()});
  for (HwSignalId w : sensitivity) {
    state(w).sensitive.push_back(id);
  }
  runnable_.push_back(id);  // settle initial outputs at time 0
  return id;
}

ProcessId Simulator::on_posedge(HwSignalId clock, ProcessFn fn) {
  ProcessId id(static_cast<ProcessId::underlying_type>(processes_.size()));
  // Per-clock posedge list, built at registration time: a rising edge
  // triggers exactly this list instead of a scan over every process.
  state(clock).clocked.push_back(id);
  processes_.push_back({std::move(fn), true, clock});
  return id;
}

void Simulator::add_clock(HwSignalId w, std::uint64_t half_period) {
  if (half_period == 0) throw SimError("clock half period must be nonzero");
  state(w);
  clocks_.push_back({w, half_period, now_ + half_period});
}

std::uint64_t Simulator::read(HwSignalId w) const {
  if (tls_shard_sim_ == this) {
    // Sharded replay on a worker: the shard's own wires reflect its
    // committed edges, every other wire is frozen at the window-boundary
    // snapshot (legal within the lookahead bound — see run_cycles_sharded).
    state(w);  // keep the invalid-id diagnostic of the serial path
    return tls_shard_->values[w.value()];
  }
  return state(w).value;
}

void Simulator::apply_nba(HwSignalId w, std::uint64_t value) {
  WireState& s = state(w);
  s.next = value & s.mask;
  if (!s.has_next) {
    s.has_next = true;
    nba_pending_.push_back(w);
  }
}

void Simulator::nba_write(HwSignalId w, std::uint64_t value) {
  if (tls_shard_sim_ == this) {
    // Sharded replay in flight on this thread: stage into the shard's
    // buffer. Writing a wire another shard owns would race with that
    // shard's snapshot, so it is a hard error, not a merge case.
    const WireState& s = state(w);
    ReplayShard& sh = *tls_shard_;
    if (shard_of_wire_[w.value()] != sh.index) {
      throw SimError("sharded replay: process of shard " +
                     std::to_string(sh.index) + " wrote wire '" + s.name +
                     "' it does not own");
    }
    sh.staged.push_back({w, value & s.mask});
    return;
  }
  if (tls_sim_ == this) {
    // Parallel batch evaluation in flight on this thread: stage into the
    // process's slot; the caller merges slots in batch order afterwards.
    const WireState& s = state(w);
    tls_slot_->writes.push_back({w, value & s.mask});
    return;
  }
  apply_nba(w, value);
}

void Simulator::poke(HwSignalId w, std::uint64_t value) {
  WireState& s = state(w);
  std::uint64_t old = s.value;
  s.value = value & s.mask;
  mark_changed(w, old);
}

void Simulator::mark_changed(HwSignalId w, std::uint64_t old_value) {
  WireState& s = state(w);
  if (s.value == old_value) return;
  ++stats_.wire_commits;
  // Rising edge?
  if (s.width == 1 && old_value == 0 && s.value == 1) {
    ++s.posedges;
    for (ProcessId p : s.clocked) runnable_.push_back(p);
  }
  for (ProcessId p : s.sensitive) runnable_.push_back(p);
}

void Simulator::eval_batch_parallel() {
  if (slots_.size() < batch_.size()) slots_.resize(batch_.size());
  std::atomic<std::size_t> cursor{0};
  const std::size_t n = batch_.size();
  auto job = [this, &cursor, n] {
    tls_sim_ = this;
    for (;;) {
      std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      EvalSlot& slot = slots_[i];
      tls_slot_ = &slot;
      try {
        processes_[batch_[i].value()].fn(*this);
      } catch (...) {
        slot.error = std::current_exception();
      }
    }
    tls_slot_ = nullptr;
    tls_sim_ = nullptr;
  };
  pool_->run(job);

  // Deterministic merge. Batch order is exactly the order the serial kernel
  // would have evaluated these processes in, so replaying each slot's writes
  // in slot order reproduces the serial commit list byte for byte (first
  // write of a wire fixes its commit position; the last write wins).
  // On a process fault, mirror serial behaviour: writes of processes that
  // ran before the faulting one are staged, the rest are discarded.
  std::size_t stop = n;
  std::exception_ptr error;
  for (std::size_t i = 0; i < n; ++i) {
    if (slots_[i].error) {
      error = slots_[i].error;
      stop = i;
      break;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EvalSlot& slot = slots_[i];
    if (i < stop) {
      for (const StagedWrite& sw : slot.writes) apply_nba(sw.w, sw.value);
    }
    slot.writes.clear();
    slot.error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void Simulator::settle() {
  if (runnable_.empty()) return;  // quiet instant: nothing to do, no span
  OBS_SPAN(obs_, obs_track_, "settle");
  int deltas = 0;
  while (!runnable_.empty()) {
    if (++deltas > kDeltaLimit) {
      throw SimError("combinational loop did not stabilize within " +
                     std::to_string(kDeltaLimit) + " deltas");
    }
    ++stats_.delta_cycles;
    OBS_COUNT(c_delta_cycles_);

    // Run each triggered process once per delta. Dedup preserves trigger
    // order via epoch stamps — no per-delta allocation, unlike a fresh set.
    if (seen_epoch_.size() < processes_.size()) {
      seen_epoch_.resize(processes_.size(), 0);
    }
    ++epoch_;
    batch_.clear();
    for (ProcessId p : runnable_) {
      if (seen_epoch_[p.value()] == epoch_) continue;
      seen_epoch_[p.value()] = epoch_;
      batch_.push_back(p);
    }
    runnable_.clear();

    if (pool_ && batch_.size() > 1) {
      stats_.process_activations += batch_.size();
      OBS_COUNT_N(c_activations_, batch_.size());
      OBS_COUNT(c_parallel_batches_);
      OBS_SPAN(obs_, obs_track_, "parallel_batch");
      eval_batch_parallel();
    } else {
      OBS_COUNT_N(c_activations_, batch_.size());
      for (ProcessId p : batch_) {
        ++stats_.process_activations;
        processes_[p.value()].fn(*this);
      }
    }

    // Commit non-blocking writes; changed wires trigger the next delta.
    commit_buf_.clear();
    commit_buf_.swap(nba_pending_);
    for (HwSignalId w : commit_buf_) {
      WireState& s = state(w);
      s.has_next = false;
      std::uint64_t old = s.value;
      s.value = s.next;
      mark_changed(w, old);
    }
  }
}

void Simulator::advance(std::uint64_t ticks) {
  if (!initial_settle_done_) {
    settle();
    initial_settle_done_ = true;
  }
  std::uint64_t target = now_ + ticks;
  while (true) {
    // Next clock toggle at or before target?
    std::uint64_t next_time = target;
    bool has_toggle = false;
    for (const ClockGen& c : clocks_) {
      if (c.next_toggle <= target && (!has_toggle || c.next_toggle < next_time)) {
        next_time = c.next_toggle;
        has_toggle = true;
      }
    }
    if (!has_toggle) {
      now_ = target;
      return;
    }
    now_ = next_time;
    for (ClockGen& c : clocks_) {
      if (c.next_toggle == now_) {
        poke(c.w, read(c.w) ^ 1u);
        c.next_toggle = now_ + c.half_period;
      }
    }
    settle();
  }
}

void Simulator::run_cycles(HwSignalId clock, std::uint64_t cycles) {
  std::uint64_t start = posedge_count(clock);
  // Find the generator driving this clock to step efficiently.
  std::uint64_t half = 1;
  for (const ClockGen& c : clocks_) {
    if (c.w == clock) half = c.half_period;
  }
  while (posedge_count(clock) < start + cycles) {
    advance(half);
  }
}

void Simulator::run_cycles(HwSignalId clock, std::uint64_t cycles,
                           const std::function<void(std::uint64_t)>& before_edge,
                           const std::function<void(std::uint64_t)>& after_edge) {
  std::uint64_t half = 1;
  for (const ClockGen& c : clocks_) {
    if (c.w == clock) half = c.half_period;
  }
  // One kernel entry for the whole run: the generator lookup above happens
  // once, not once per cycle, and the edge-by-edge toggle/settle sequence is
  // exactly `cycles` consecutive run_cycles(clock, 1) calls.
  for (std::uint64_t k = 0; k < cycles; ++k) {
    if (before_edge) before_edge(k);
    const std::uint64_t start = posedge_count(clock);
    while (posedge_count(clock) < start + 1) advance(half);
    if (after_edge) after_edge(k);
  }
}

void Simulator::set_replay_shards(HwSignalId clock,
                                  std::vector<ShardPlan> shards) {
  shards_.clear();
  shard_of_wire_.assign(wires_.size(), -1);
  replay_clock_ = HwSignalId::invalid();
  if (shards.empty()) return;
  const WireState& ck = state(clock);
  if (!ck.sensitive.empty()) {
    throw SimError("sharded replay: the clock has combinational listeners");
  }
  if (clocks_.size() != 1 || clocks_.front().w != clock) {
    throw SimError(
        "sharded replay requires exactly one clock generator, driving the "
        "replay clock");
  }
  std::vector<char> covered(processes_.size(), 0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (ProcessId p : shards[s].processes) {
      if (!p.is_valid() || p.value() >= processes_.size()) {
        throw SimError("sharded replay: invalid process id in shard plan");
      }
      const Process& proc = processes_[p.value()];
      if (!proc.clocked || proc.clock != clock) {
        throw SimError(
            "sharded replay: shard process is not clocked on the replay "
            "clock");
      }
      if (covered[p.value()] != 0) {
        throw SimError("sharded replay: process assigned to two shards");
      }
      covered[p.value()] = 1;
    }
    for (HwSignalId w : shards[s].wires) {
      const WireState& ws = state(w);
      if (w == clock) {
        throw SimError("sharded replay: the clock cannot be shard-owned");
      }
      if (!ws.sensitive.empty() || !ws.clocked.empty()) {
        throw SimError("sharded replay: shard wire '" + ws.name +
                       "' has listeners — a commit could leave the shard");
      }
      if (shard_of_wire_[w.value()] != -1) {
        throw SimError("sharded replay: wire '" + ws.name +
                       "' owned by two shards");
      }
      shard_of_wire_[w.value()] = static_cast<int>(s);
    }
  }
  // Exact cover: replay runs ONLY shard processes, so a stray process
  // (combinational, or clocked on another wire) would silently never run.
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (covered[i] == 0) {
      throw SimError("sharded replay: process not assigned to any shard");
    }
  }
  shards_.reserve(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    ReplayShard sh;
    sh.index = static_cast<int>(s);
    sh.plan = std::move(shards[s]);
    if (obs_ != nullptr) {
      sh.track = obs_->track("kernel/shard" + std::to_string(s));
    }
    shards_.push_back(std::move(sh));
  }
  replay_clock_ = clock;
}

void Simulator::run_shard(ReplayShard& sh, std::uint64_t cycles) {
  OBS_SPAN(obs_, sh.track, "replay");
  // Window-boundary snapshot. Reading wires_[i].value here is race-free:
  // every write to it happens on the spine, before the pool dispatched
  // this job or after it joined.
  sh.values.resize(wires_.size());
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    sh.values[i] = wires_[i].value;
  }
  if (sh.seen.size() < wires_.size()) {
    sh.seen.resize(wires_.size(), 0);
    sh.pending.resize(wires_.size(), 0);
  }
  sh.changes.clear();
  sh.edge_end.clear();
  sh.error = nullptr;
  tls_shard_sim_ = this;
  tls_shard_ = &sh;
  for (std::uint64_t k = 0; k < cycles; ++k) {
    sh.staged.clear();
    for (ProcessId p : sh.plan.processes) {
      try {
        processes_[p.value()].fn(*this);
      } catch (...) {
        // Keep the writes staged so far: like the serial batch, processes
        // ahead of the faulting one have made their progress.
        sh.error = std::current_exception();
        sh.error_edge = k;
        break;
      }
    }
    // Fold the edge: first write of a wire fixes its commit position, the
    // last write wins — the same outcome the serial commit list produces.
    ++sh.fold_epoch;
    const std::size_t first = sh.changes.size();
    for (const StagedWrite& sw : sh.staged) {
      const std::size_t idx = sw.w.value();
      if (sh.seen[idx] != sh.fold_epoch) {
        sh.seen[idx] = sh.fold_epoch;
        sh.changes.push_back({sw.w, sw.value});
      }
      sh.pending[idx] = sw.value;
    }
    for (std::size_t i = first; i < sh.changes.size(); ++i) {
      const std::size_t idx = sh.changes[i].w.value();
      sh.changes[i].value = sh.pending[idx];
      sh.values[idx] = sh.pending[idx];
    }
    sh.edge_end.push_back(sh.changes.size());
    if (sh.error) break;
  }
  tls_shard_ = nullptr;
  tls_shard_sim_ = nullptr;
}

void Simulator::run_cycles_sharded(
    HwSignalId clock, std::uint64_t cycles, WorkerPool& pool,
    const std::function<void(std::uint64_t)>& before_edge,
    const std::function<void(std::uint64_t)>& after_edge) {
  if (shards_.empty() || clock != replay_clock_ || !runnable_.empty() ||
      !nba_pending_.empty()) {
    // Not at a shardable quiet point (or not sharded at all): the serial
    // form is byte-identical by contract, just slower.
    run_cycles(clock, cycles, before_edge, after_edge);
    return;
  }
  if (cycles == 0) return;
  // The serial path's first advance() would run the initial settle; with
  // nothing runnable that is a no-op, but the flag is checkpointed state
  // and must flip exactly like the serial kernel's.
  initial_settle_done_ = true;

  // Parallel stage: all shards replay all edges concurrently. Each shard
  // touches only its own ReplayShard state and its private snapshot; the
  // pool's fork/join handshake publishes the results to the spine.
  {
    OBS_SPAN(obs_, obs_track_, "sharded_replay");
    std::atomic<std::size_t> cursor{0};
    const std::size_t n = shards_.size();
    pool.run([this, &cursor, n, cycles] {
      for (;;) {
        std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        run_shard(shards_[i], cycles);
      }
    });
  }

  // Serial spine: replay the clock toggles and merge each edge's commits
  // in (shard index, intra-shard first-write order) — shard s's process
  // registered before shard s+1's, so this is exactly the commit order the
  // serial batch would have produced. Every stat/counter mutation below
  // mirrors one the serial advance()/settle() pair performs for the same
  // edge; the wire ownership rules make any interleaving difference
  // unobservable (disjoint wires, no listeners).
  ClockGen& gen = clocks_.front();
  WireState& ck = state(clock);
  const std::size_t nprocs = ck.clocked.size();
  for (std::uint64_t k = 0; k < cycles; ++k) {
    if (before_edge) before_edge(k);
    if (ck.value == 1) {  // falling toggle (steady state enters clock-high)
      now_ = gen.next_toggle;
      ck.value = 0;
      ++stats_.wire_commits;
      gen.next_toggle = now_ + gen.half_period;
    }
    now_ = gen.next_toggle;  // rising toggle
    ck.value = 1;
    ++stats_.wire_commits;
    ++ck.posedges;
    gen.next_toggle = now_ + gen.half_period;
    bool edge_failed = false;
    if (nprocs > 0) {
      // The one delta the serial settle() runs for this edge.
      ++stats_.delta_cycles;
      OBS_COUNT(c_delta_cycles_);
      stats_.process_activations += nprocs;
      OBS_COUNT_N(c_activations_, nprocs);
      for (ReplayShard& sh : shards_) {
        if (k >= sh.edge_end.size()) continue;  // shard stopped on error
        const std::size_t begin = k == 0 ? 0 : sh.edge_end[k - 1];
        for (std::size_t i = begin; i < sh.edge_end[k]; ++i) {
          WireState& ws = state(sh.changes[i].w);
          const std::uint64_t old = ws.value;
          ws.value = sh.changes[i].value;
          if (ws.value != old) {
            ++stats_.wire_commits;
            if (ws.width == 1 && old == 0 && ws.value == 1) ++ws.posedges;
          }
        }
        if (sh.error && sh.error_edge == k) {
          // Mirror the parallel batch's fault behaviour: commits of shards
          // ahead of the faulting one stand, later shards' are discarded.
          edge_failed = true;
          break;
        }
      }
    }
    if (edge_failed) {
      for (ReplayShard& sh : shards_) {
        if (sh.error && sh.error_edge <= k) std::rethrow_exception(sh.error);
      }
    }
    if (after_edge) after_edge(k);
  }
}

std::uint64_t Simulator::posedge_count(HwSignalId clock) const {
  return state(clock).posedges;
}

const std::string& Simulator::name_of(HwSignalId w) const {
  return state(w).name;
}

int Simulator::width_of(HwSignalId w) const { return state(w).width; }

void Simulator::save_state(snap::Writer& w) const {
  if (!runnable_.empty() || !nba_pending_.empty()) {
    throw snap::SnapError(
        "kernel checkpoint requires a quiet point: processes are runnable "
        "or non-blocking writes are pending");
  }
  w.u64(wires_.size());
  for (const WireState& ws : wires_) {
    w.u8(static_cast<std::uint8_t>(ws.width));  // shape check on load
    w.u64(ws.value);
    w.u64(ws.posedges);
  }
  w.u64(clocks_.size());
  for (const ClockGen& c : clocks_) {
    w.u64(c.half_period);  // shape check on load
    w.u64(c.next_toggle);
  }
  w.u64(now_);
  w.boolean(initial_settle_done_);
  w.u64(stats_.delta_cycles);
  w.u64(stats_.process_activations);
  w.u64(stats_.wire_commits);
}

void Simulator::load_state(snap::Reader& r) {
  const std::uint64_t nwires = r.u64();
  if (nwires != wires_.size()) {
    throw snap::SnapError("kernel snapshot has " + std::to_string(nwires) +
                          " wires, netlist has " +
                          std::to_string(wires_.size()));
  }
  for (WireState& ws : wires_) {
    const int width = r.u8();
    if (width != ws.width) {
      throw snap::SnapError("kernel snapshot wire width mismatch on '" +
                            ws.name + "'");
    }
    ws.value = r.u64();
    ws.next = 0;
    ws.has_next = false;
    ws.posedges = r.u64();
  }
  const std::uint64_t nclocks = r.u64();
  if (nclocks != clocks_.size()) {
    throw snap::SnapError("kernel snapshot clock count mismatch");
  }
  for (ClockGen& c : clocks_) {
    const std::uint64_t half = r.u64();
    if (half != c.half_period) {
      throw snap::SnapError("kernel snapshot clock period mismatch");
    }
    c.next_toggle = r.u64();
  }
  now_ = r.u64();
  initial_settle_done_ = r.boolean();
  stats_.delta_cycles = r.u64();
  stats_.process_activations = r.u64();
  stats_.wire_commits = r.u64();
  // A freshly elaborated netlist queues every combinational process for the
  // time-0 settle; the snapshot already carries the settled wire values, so
  // that pending work must be discarded, not replayed.
  runnable_.clear();
  nba_pending_.clear();
}

}  // namespace xtsoc::hwsim
