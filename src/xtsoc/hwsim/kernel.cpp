#include "xtsoc/hwsim/kernel.hpp"

#include <algorithm>

namespace xtsoc::hwsim {

HwSignalId Simulator::wire(int width, std::uint64_t init, std::string name) {
  if (width < 1 || width > 64) {
    throw SimError("wire width must be in [1, 64]");
  }
  WireState w;
  w.width = width;
  w.mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  w.value = init & w.mask;
  w.name = std::move(name);
  wires_.push_back(std::move(w));
  return HwSignalId(static_cast<HwSignalId::underlying_type>(wires_.size() - 1));
}

Simulator::WireState& Simulator::state(HwSignalId w) {
  if (!w.is_valid() || w.value() >= wires_.size()) {
    throw SimError("invalid wire id");
  }
  return wires_[w.value()];
}

const Simulator::WireState& Simulator::state(HwSignalId w) const {
  return const_cast<Simulator*>(this)->state(w);
}

ProcessId Simulator::combinational(std::vector<HwSignalId> sensitivity,
                                   ProcessFn fn) {
  ProcessId id(static_cast<ProcessId::underlying_type>(processes_.size()));
  processes_.push_back({std::move(fn), false, HwSignalId::invalid()});
  for (HwSignalId w : sensitivity) {
    state(w).sensitive.push_back(id);
  }
  runnable_.push_back(id);  // settle initial outputs at time 0
  return id;
}

ProcessId Simulator::on_posedge(HwSignalId clock, ProcessFn fn) {
  state(clock);  // validate
  ProcessId id(static_cast<ProcessId::underlying_type>(processes_.size()));
  processes_.push_back({std::move(fn), true, clock});
  return id;
}

void Simulator::add_clock(HwSignalId w, std::uint64_t half_period) {
  if (half_period == 0) throw SimError("clock half period must be nonzero");
  state(w);
  clocks_.push_back({w, half_period, now_ + half_period});
}

std::uint64_t Simulator::read(HwSignalId w) const { return state(w).value; }

void Simulator::nba_write(HwSignalId w, std::uint64_t value) {
  WireState& s = state(w);
  s.next = value & s.mask;
  if (!s.has_next) {
    s.has_next = true;
    nba_pending_.push_back(w);
  }
}

void Simulator::poke(HwSignalId w, std::uint64_t value) {
  WireState& s = state(w);
  std::uint64_t old = s.value;
  s.value = value & s.mask;
  mark_changed(w, old);
}

void Simulator::mark_changed(HwSignalId w, std::uint64_t old_value) {
  WireState& s = state(w);
  if (s.value == old_value) return;
  ++stats_.wire_commits;
  // Rising edge?
  if (s.width == 1 && old_value == 0 && s.value == 1) {
    ++s.posedges;
    for (std::size_t p = 0; p < processes_.size(); ++p) {
      if (processes_[p].clocked && processes_[p].clock.value() == w.value()) {
        runnable_.push_back(ProcessId(static_cast<ProcessId::underlying_type>(p)));
      }
    }
  }
  for (ProcessId p : s.sensitive) runnable_.push_back(p);
}

void Simulator::settle() {
  int deltas = 0;
  while (!runnable_.empty()) {
    if (++deltas > kDeltaLimit) {
      throw SimError("combinational loop did not stabilize within " +
                     std::to_string(kDeltaLimit) + " deltas");
    }
    ++stats_.delta_cycles;

    // Run each triggered process once per delta (dedup preserves order).
    std::vector<ProcessId> batch;
    batch.swap(runnable_);
    std::vector<bool> seen(processes_.size(), false);
    for (ProcessId p : batch) {
      if (seen[p.value()]) continue;
      seen[p.value()] = true;
      ++stats_.process_activations;
      processes_[p.value()].fn(*this);
    }

    // Commit non-blocking writes; changed wires trigger the next delta.
    std::vector<HwSignalId> pending;
    pending.swap(nba_pending_);
    for (HwSignalId w : pending) {
      WireState& s = state(w);
      s.has_next = false;
      std::uint64_t old = s.value;
      s.value = s.next;
      mark_changed(w, old);
    }
  }
}

void Simulator::advance(std::uint64_t ticks) {
  if (!initial_settle_done_) {
    settle();
    initial_settle_done_ = true;
  }
  std::uint64_t target = now_ + ticks;
  while (true) {
    // Next clock toggle at or before target?
    std::uint64_t next_time = target;
    bool has_toggle = false;
    for (const ClockGen& c : clocks_) {
      if (c.next_toggle <= target && (!has_toggle || c.next_toggle < next_time)) {
        next_time = c.next_toggle;
        has_toggle = true;
      }
    }
    if (!has_toggle) {
      now_ = target;
      return;
    }
    now_ = next_time;
    for (ClockGen& c : clocks_) {
      if (c.next_toggle == now_) {
        poke(c.w, read(c.w) ^ 1u);
        c.next_toggle = now_ + c.half_period;
      }
    }
    settle();
  }
}

void Simulator::run_cycles(HwSignalId clock, std::uint64_t cycles) {
  std::uint64_t start = posedge_count(clock);
  // Find the generator driving this clock to step efficiently.
  std::uint64_t half = 1;
  for (const ClockGen& c : clocks_) {
    if (c.w == clock) half = c.half_period;
  }
  while (posedge_count(clock) < start + cycles) {
    advance(half);
  }
}

std::uint64_t Simulator::posedge_count(HwSignalId clock) const {
  return state(clock).posedges;
}

const std::string& Simulator::name_of(HwSignalId w) const {
  return state(w).name;
}

int Simulator::width_of(HwSignalId w) const { return state(w).width; }

}  // namespace xtsoc::hwsim
