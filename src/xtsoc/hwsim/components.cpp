#include "xtsoc/hwsim/components.hpp"

namespace xtsoc::hwsim {

Register::Register(Simulator& sim, HwSignalId clk, int width,
                   std::string name) {
  d_ = sim.wire(width, 0, name + ".d");
  q_ = sim.wire(width, 0, name + ".q");
  en_ = sim.wire(1, 1, name + ".en");
  HwSignalId d = d_;
  HwSignalId q = q_;
  HwSignalId en = en_;
  sim.on_posedge(clk, [d, q, en](Simulator& s) {
    if (s.read(en)) s.nba_write(q, s.read(d));
  });
}

Counter::Counter(Simulator& sim, HwSignalId clk, int width, std::string name) {
  value_ = sim.wire(width, 0, name + ".value");
  clear_ = sim.wire(1, 0, name + ".clear");
  enable_ = sim.wire(1, 1, name + ".enable");
  HwSignalId v = value_;
  HwSignalId c = clear_;
  HwSignalId e = enable_;
  sim.on_posedge(clk, [v, c, e](Simulator& s) {
    if (s.read(c)) {
      s.nba_write(v, 0);
    } else if (s.read(e)) {
      s.nba_write(v, s.read(v) + 1);
    }
  });
}

RoundRobinArbiter::RoundRobinArbiter(Simulator& sim, HwSignalId clk,
                                     int n_requesters, std::string name) {
  for (int i = 0; i < n_requesters; ++i) {
    requests_.push_back(
        sim.wire(1, 0, name + ".req" + std::to_string(i)));
    grants_.push_back(sim.wire(1, 0, name + ".gnt" + std::to_string(i)));
  }
  // Wide enough for indices 0..n (n = idle marker).
  int width = 1;
  while ((1 << width) <= n_requesters) ++width;
  grant_index_ = sim.wire(width, static_cast<std::uint64_t>(n_requesters),
                          name + ".index");

  sim.on_posedge(clk, [this, n_requesters](Simulator& s) {
    int granted = -1;
    for (int k = 1; k <= n_requesters && granted < 0; ++k) {
      int i = (last_ + k) % n_requesters;
      if (s.read(requests_[static_cast<std::size_t>(i)])) granted = i;
    }
    for (int i = 0; i < n_requesters; ++i) {
      s.nba_write(grants_[static_cast<std::size_t>(i)], i == granted ? 1 : 0);
    }
    s.nba_write(grant_index_,
                static_cast<std::uint64_t>(granted < 0 ? n_requesters
                                                       : granted));
    if (granted >= 0) last_ = granted;
  });
}

SyncFifo::SyncFifo(Simulator& sim, HwSignalId clk, std::size_t depth,
                   std::string name)
    : depth_(depth) {
  in_data_ = sim.wire(64, 0, name + ".in_data");
  in_valid_ = sim.wire(1, 0, name + ".in_valid");
  in_ready_ = sim.wire(1, 1, name + ".in_ready");
  out_data_ = sim.wire(64, 0, name + ".out_data");
  out_valid_ = sim.wire(1, 0, name + ".out_valid");
  out_ready_ = sim.wire(1, 0, name + ".out_ready");

  sim.on_posedge(clk, [this](Simulator& s) {
    // Accept a push when there is room.
    if (s.read(in_valid_) && buf_.size() < depth_) {
      buf_.push_back(s.read(in_data_));
    }
    // Retire the presented word when the consumer took it.
    if (s.read(out_valid_) && s.read(out_ready_)) {
      if (!buf_.empty()) buf_.pop_front();
    }
    // Present head-of-queue for the next cycle.
    if (buf_.empty()) {
      s.nba_write(out_valid_, 0);
    } else {
      s.nba_write(out_valid_, 1);
      s.nba_write(out_data_, buf_.front());
    }
    s.nba_write(in_ready_, buf_.size() < depth_ ? 1 : 0);
  });
}

}  // namespace xtsoc::hwsim
