// VCD (Value Change Dump) writer: waveform capture for hwsim runs, viewable
// in GTKWave or any IEEE-1364 VCD consumer. Sampling is poll-based: call
// sample() after each advance; only changed wires are dumped.
#pragma once

#include <string>
#include <vector>

#include "xtsoc/hwsim/kernel.hpp"

namespace xtsoc::hwsim {

class VcdWriter {
public:
  /// Watch the given wires (empty = every wire that exists at construction
  /// time). Names come from the simulator; anonymous wires get "wireN".
  VcdWriter(const Simulator& sim, std::vector<HwSignalId> watch = {},
            std::string timescale = "1ns");

  /// Record changes since the last sample at the simulator's current time.
  /// The first call dumps every watched wire ($dumpvars section).
  void sample();

  /// The complete VCD document accumulated so far.
  std::string render() const;

  std::size_t watched_count() const { return watch_.size(); }
  std::size_t change_count() const { return changes_; }

private:
  static std::string id_code(std::size_t index);
  std::string value_text(HwSignalId w, std::uint64_t value) const;

  const Simulator* sim_;
  std::vector<HwSignalId> watch_;
  std::vector<std::uint64_t> last_;
  std::vector<bool> dumped_once_;
  std::string header_;
  std::string body_;
  bool first_sample_ = true;
  std::uint64_t last_time_ = 0;
  bool time_emitted_ = false;
  std::size_t changes_ = 0;
};

}  // namespace xtsoc::hwsim
