// WorkerPool: a persistent fork/join pool shared by the parallel layers.
//
// One pool serves two very different grain sizes:
//
//   * hwsim::Simulator (SimConfig::threads > 1) runs each delta cycle's
//     runnable batch on it — fine-grained, one handshake per delta;
//   * cosim::CoSimulation (window > 1) runs each execution window's
//     per-domain jobs on it — coarse-grained, one handshake per window
//     of L cycles, which is what makes the conservative-lookahead scheme
//     amortize the synchronization the per-delta scheme could not.
//
// N-1 threads are spawned once and kept; the caller participates as the
// Nth worker. One generation = one run(). All hand-offs go through the
// mutex, which gives the happens-before edges both users need: state
// written by the caller before run() is visible to workers, and state
// written by workers inside the job is visible to the caller after run()
// returns.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xtsoc::hwsim {

class WorkerPool {
public:
  explicit WorkerPool(int workers) {
    threads_.reserve(static_cast<std::size_t>(workers > 1 ? workers - 1 : 0));
    for (int i = 1; i < workers; ++i) {
      threads_.emplace_back([this] { thread_main(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Workers the pool runs jobs on, counting the calling thread.
  int size() const { return static_cast<int>(threads_.size()) + 1; }

  /// Run `job` on every worker (including the calling thread) and wait for
  /// all of them to finish it. The job must partition its own work (e.g.
  /// by pulling indices off a shared atomic cursor).
  void run(const std::function<void()>& job) {
    {
      std::lock_guard<std::mutex> lk(m_);
      job_ = &job;
      running_ = static_cast<int>(threads_.size());
      ++generation_;
    }
    start_.notify_all();
    job();
    std::unique_lock<std::mutex> lk(m_);
    done_.wait(lk, [this] { return running_ == 0; });
    job_ = nullptr;
  }

private:
  void thread_main() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void()>* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(m_);
        start_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      (*job)();
      {
        std::lock_guard<std::mutex> lk(m_);
        --running_;
      }
      done_.notify_one();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable start_;
  std::condition_variable done_;
  const std::function<void()>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int running_ = 0;
  bool stop_ = false;
};

}  // namespace xtsoc::hwsim
