#include "xtsoc/hwsim/vcd.hpp"

#include <sstream>

namespace xtsoc::hwsim {

namespace {
/// Identifier characters permitted by the VCD spec: '!' (33) .. '~' (126).
constexpr int kIdBase = 94;
constexpr char kIdFirst = '!';
}  // namespace

std::string VcdWriter::id_code(std::size_t index) {
  std::string out;
  do {
    out.push_back(static_cast<char>(kIdFirst + index % kIdBase));
    index /= kIdBase;
  } while (index > 0);
  return out;
}

VcdWriter::VcdWriter(const Simulator& sim, std::vector<HwSignalId> watch,
                     std::string timescale)
    : sim_(&sim), watch_(std::move(watch)) {
  if (watch_.empty()) {
    for (std::size_t i = 0; i < sim.wire_count(); ++i) {
      watch_.push_back(HwSignalId(static_cast<HwSignalId::underlying_type>(i)));
    }
  }
  last_.resize(watch_.size(), 0);
  dumped_once_.resize(watch_.size(), false);

  std::ostringstream os;
  os << "$timescale " << timescale << " $end\n";
  os << "$scope module top $end\n";
  for (std::size_t i = 0; i < watch_.size(); ++i) {
    std::string name = sim_->name_of(watch_[i]);
    if (name.empty()) name = "wire" + std::to_string(watch_[i].value());
    // VCD identifiers may not contain spaces; dots are fine.
    for (char& c : name) {
      if (c == ' ') c = '_';
    }
    os << "$var wire " << sim_->width_of(watch_[i]) << ' ' << id_code(i)
       << ' ' << name << " $end\n";
  }
  os << "$upscope $end\n";
  os << "$enddefinitions $end\n";
  header_ = os.str();
}

std::string VcdWriter::value_text(HwSignalId w, std::uint64_t value) const {
  int width = sim_->width_of(w);
  if (width == 1) return value ? "1" : "0";
  std::string bits = "b";
  bool started = false;
  for (int i = width - 1; i >= 0; --i) {
    bool bit = (value >> i) & 1u;
    if (bit) started = true;
    if (started || i == 0) bits.push_back(bit ? '1' : '0');
  }
  bits.push_back(' ');
  return bits;
}

void VcdWriter::sample() {
  std::ostringstream os;
  bool emitted_time = false;
  auto ensure_time = [&] {
    if (!emitted_time) {
      os << '#' << sim_->now() << '\n';
      emitted_time = true;
    }
  };

  if (first_sample_) {
    ensure_time();
    os << "$dumpvars\n";
    for (std::size_t i = 0; i < watch_.size(); ++i) {
      std::uint64_t v = sim_->read(watch_[i]);
      os << value_text(watch_[i], v) << id_code(i) << '\n';
      last_[i] = v;
      ++changes_;
    }
    os << "$end\n";
    first_sample_ = false;
  } else {
    for (std::size_t i = 0; i < watch_.size(); ++i) {
      std::uint64_t v = sim_->read(watch_[i]);
      if (v == last_[i]) continue;
      ensure_time();
      os << value_text(watch_[i], v) << id_code(i) << '\n';
      last_[i] = v;
      ++changes_;
    }
  }
  body_ += os.str();
}

std::string VcdWriter::render() const { return header_ + body_; }

}  // namespace xtsoc::hwsim
