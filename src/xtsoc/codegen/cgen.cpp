#include "xtsoc/codegen/cgen.hpp"

#include <sstream>

#include "xtsoc/oal/ast.hpp"
#include "xtsoc/oal/printer.hpp"
#include "xtsoc/oal/sema.hpp"

namespace xtsoc::codegen {

namespace {

using namespace oal;
using mapping::MappedSystem;
using xtuml::ClassDef;
using xtuml::DataType;
using xtuml::Domain;

std::string lower(const std::string& name) { return to_snake_case(name); }
std::string upper(const std::string& name) { return to_upper_snake(name); }

/// C storage type for an abstract data type. Wire widths only matter at the
/// boundary; in-memory software uses full-width types.
const char* c_type(DataType t) {
  switch (t) {
    case DataType::kBool: return "bool";
    case DataType::kInt: return "int64_t";
    case DataType::kReal: return "double";
    case DataType::kString: return "xt_str_t";
    case DataType::kInstRef: return "xt_handle_t";
    default: return "void";
  }
}

std::string c_type_of(const OalType& t, const Domain& domain) {
  if (t.is_set) return lower(domain.cls(t.cls).name) + "_set_t";
  return c_type(t.base);
}

/// Default value literal for a C field.
std::string c_default(const xtuml::AttributeDef& a) {
  if (!a.default_value) {
    switch (a.type) {
      case DataType::kBool: return "false";
      case DataType::kInt: return "0";
      case DataType::kReal: return "0.0";
      case DataType::kString: return "xt_str(\"\")";
      case DataType::kInstRef: return "xt_null_handle()";
      default: return "0";
    }
  }
  switch (a.default_value->index()) {
    case 0: return std::get<bool>(*a.default_value) ? "true" : "false";
    case 1: return std::to_string(std::get<std::int64_t>(*a.default_value));
    case 2: {
      std::ostringstream os;
      os << std::get<double>(*a.default_value);
      std::string s = os.str();
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    default:
      return "xt_str(\"" + std::get<std::string>(*a.default_value) + "\")";
  }
}

std::string escape_c_string(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Indented text sink.
class Writer {
public:
  Writer& line(const std::string& text = {}) {
    if (!text.empty()) {
      for (int i = 0; i < indent_; ++i) os_ << "  ";
      os_ << text;
    }
    os_ << '\n';
    return *this;
  }
  Writer& open(const std::string& text) {
    line(text);
    ++indent_;
    return *this;
  }
  Writer& close(const std::string& text = "}") {
    --indent_;
    if (!text.empty()) line(text);
    return *this;
  }
  std::string str() const { return os_.str(); }

private:
  std::ostringstream os_;
  int indent_ = 0;
};

/// Name of the args-union member for the event entering `state` (all
/// entering events share a signature; the first one names the member).
std::string entry_member(const ClassDef& cls, StateId state) {
  for (const auto& t : cls.transitions) {
    if (t.to == state) return lower(cls.event(t.event).name);
  }
  return {};
}

bool event_has_params(const xtuml::EventDef& e) { return !e.params.empty(); }

bool class_has_params(const ClassDef& c) {
  for (const auto& e : c.events) {
    if (event_has_params(e)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// OAL -> C expression/statement translation
// ---------------------------------------------------------------------------

class CTranslator {
public:
  CTranslator(const MappedSystem& sys, const ClassDef& cls,
              const AnalyzedAction& action, const std::string& args_member)
      : sys_(sys), domain_(sys.domain()), cls_(cls), action_(action),
        args_member_(args_member) {}

  void emit_body(Writer& w) {
    // Locals, with types inferred by sema.
    for (const auto& local : action_.locals) {
      std::string ty = c_type_of(local.type, domain_);
      std::string init;
      if (local.type.is_set) {
        init = " = {{xt_null_handle()}, 0}";
      } else if (local.type.base == DataType::kInstRef) {
        init = " = xt_null_handle()";
      } else if (local.type.base == DataType::kString) {
        init = " = xt_str(\"\")";
      } else {
        init = " = 0";
      }
      w.line(ty + " " + local.name + init + ";");
    }
    for (const auto& local : action_.locals) {
      w.line("(void)" + local.name + ";");
    }
    emit_block(w, action_.ast);
  }

private:
  std::string prefix(ClassId cls) const { return lower(domain_.cls(cls).name); }

  std::string deref(ClassId cls, const std::string& handle_expr) const {
    return prefix(cls) + "_get(" + handle_expr + ")";
  }

  // --- expressions ---------------------------------------------------------

  std::string expr(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kLiteral: {
        const auto& lit = static_cast<const LiteralExpr&>(e);
        switch (lit.value.index()) {
          case 0: return std::get<bool>(lit.value) ? "true" : "false";
          case 1: return std::to_string(std::get<std::int64_t>(lit.value));
          case 2: {
            std::ostringstream os;
            os << std::get<double>(lit.value);
            std::string s = os.str();
            if (s.find('.') == std::string::npos &&
                s.find('e') == std::string::npos) {
              s += ".0";
            }
            return s;
          }
          default:
            return "xt_str(\"" +
                   escape_c_string(std::get<std::string>(lit.value)) + "\")";
        }
      }
      case ExprKind::kVarRef:
        return static_cast<const VarRefExpr&>(e).name;
      case ExprKind::kSelfRef:
        return "self";
      case ExprKind::kSelectedRef:
        return "_sel";
      case ExprKind::kParamRef: {
        const auto& p = static_cast<const ParamRefExpr&>(e);
        return "args->" + args_member_ + "." + p.name;
      }
      case ExprKind::kAttrAccess: {
        const auto& a = static_cast<const AttrAccessExpr&>(e);
        return deref(a.cls, expr(*a.object)) + "->" + a.attr_name;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        const char* op = u.op == UnaryOp::kNeg ? "-" : "!";
        return std::string(op) + "(" + expr(*u.operand) + ")";
      }
      case ExprKind::kBinary:
        return binary(static_cast<const BinaryExpr&>(e));
      case ExprKind::kCardinality: {
        const auto& c = static_cast<const CardinalityExpr&>(e);
        if (c.operand->type.is_set) {
          return "((int64_t)(" + expr(*c.operand) + ").n)";
        }
        return "(" + alive(c.operand->type.cls, expr(*c.operand)) +
               " ? (int64_t)1 : (int64_t)0)";
      }
      case ExprKind::kEmpty:
      case ExprKind::kNotEmpty: {
        const auto& em = static_cast<const EmptyExpr&>(e);
        std::string inner;
        if (em.operand->type.is_set) {
          inner = "((" + expr(*em.operand) + ").n == 0)";
        } else {
          inner = "(!" + alive(em.operand->type.cls, expr(*em.operand)) + ")";
        }
        return e.kind == ExprKind::kEmpty ? inner : ("(!" + inner + ")");
      }
      case ExprKind::kMemRead:
        return "((int64_t)0 /* mem.read: no memory model in generated C */)";
    }
    return "0";
  }

  std::string alive(ClassId cls, const std::string& handle) const {
    return prefix(cls) + "_alive(" + handle + ")";
  }

  std::string binary(const BinaryExpr& b) const {
    const OalType& lt = b.lhs->type;
    const OalType& rt = b.rhs->type;
    const bool strings =
        lt.base == DataType::kString && rt.base == DataType::kString;
    const bool handles =
        lt.base == DataType::kInstRef && rt.base == DataType::kInstRef &&
        !lt.is_set && !rt.is_set;
    std::string l = expr(*b.lhs);
    std::string r = expr(*b.rhs);
    switch (b.op) {
      case BinaryOp::kAdd:
        if (strings) return "xt_str_cat(" + l + ", " + r + ")";
        return "(" + l + " + " + r + ")";
      case BinaryOp::kSub: return "(" + l + " - " + r + ")";
      case BinaryOp::kMul: return "(" + l + " * " + r + ")";
      case BinaryOp::kDiv: return "(" + l + " / " + r + ")";
      case BinaryOp::kMod: return "(" + l + " % " + r + ")";
      case BinaryOp::kAnd: return "(" + l + " && " + r + ")";
      case BinaryOp::kOr: return "(" + l + " || " + r + ")";
      case BinaryOp::kEq:
        if (strings) return "(xt_str_cmp(" + l + ", " + r + ") == 0)";
        if (handles) return "xt_handle_eq(" + l + ", " + r + ")";
        return "(" + l + " == " + r + ")";
      case BinaryOp::kNe:
        if (strings) return "(xt_str_cmp(" + l + ", " + r + ") != 0)";
        if (handles) return "(!xt_handle_eq(" + l + ", " + r + "))";
        return "(" + l + " != " + r + ")";
      case BinaryOp::kLt:
        if (strings) return "(xt_str_cmp(" + l + ", " + r + ") < 0)";
        return "(" + l + " < " + r + ")";
      case BinaryOp::kLe:
        if (strings) return "(xt_str_cmp(" + l + ", " + r + ") <= 0)";
        return "(" + l + " <= " + r + ")";
      case BinaryOp::kGt:
        if (strings) return "(xt_str_cmp(" + l + ", " + r + ") > 0)";
        return "(" + l + " > " + r + ")";
      case BinaryOp::kGe:
        if (strings) return "(xt_str_cmp(" + l + ", " + r + ") >= 0)";
        return "(" + l + " >= " + r + ")";
    }
    return "0";
  }

  // --- statements ----------------------------------------------------------

  void emit_block(Writer& w, const Block& b) {
    for (const auto& s : b.stmts) emit_stmt(w, *s);
  }

  void emit_stmt(Writer& w, const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        w.line(expr(*a.lvalue) + " = " + expr(*a.rvalue) + ";");
        break;
      }
      case StmtKind::kCreate: {
        const auto& c = static_cast<const CreateStmt&>(s);
        w.line(c.var + " = " + prefix(c.cls) + "_create();");
        break;
      }
      case StmtKind::kDelete: {
        const auto& d = static_cast<const DeleteStmt&>(s);
        w.line(prefix(d.object->type.cls) + "_delete(" + expr(*d.object) +
               ");");
        break;
      }
      case StmtKind::kGenerate:
        emit_generate(w, static_cast<const GenerateStmt&>(s));
        break;
      case StmtKind::kSelectFrom:
        emit_select_from(w, static_cast<const SelectFromStmt&>(s));
        break;
      case StmtKind::kSelectRelated:
        emit_select_related(w, static_cast<const SelectRelatedStmt&>(s));
        break;
      case StmtKind::kRelate:
      case StmtKind::kUnrelate: {
        const auto& r = static_cast<const RelateStmt&>(s);
        const xtuml::AssociationDef& assoc = domain_.association(r.assoc);
        const char* fn = s.kind == StmtKind::kRelate ? "_relate(" : "_unrelate(";
        // Canonicalize argument order to (end a, end b).
        std::string a = expr(*r.a);
        std::string b = expr(*r.b);
        if (assoc.a.cls != assoc.b.cls && r.a->type.cls == assoc.b.cls) {
          std::swap(a, b);
        }
        w.line(lower(assoc.name) + fn + a + ", " + b + ");");
        break;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        for (std::size_t k = 0; k < i.branches.size(); ++k) {
          const char* kw = k == 0 ? "if (" : "} else if (";
          w.open(std::string(kw) + expr(*i.branches[k].cond) + ") {");
          emit_block(w, i.branches[k].body);
          w.close("");
        }
        if (i.else_body) {
          w.open("} else {");
          emit_block(w, *i.else_body);
          w.close("");
        }
        w.line("}");
        break;
      }
      case StmtKind::kWhile: {
        const auto& wh = static_cast<const WhileStmt&>(s);
        w.open("while (" + expr(*wh.cond) + ") {");
        emit_block(w, wh.body);
        w.close();
        break;
      }
      case StmtKind::kForEach: {
        const auto& f = static_cast<const ForEachStmt&>(s);
        std::string set_ty = c_type_of(f.set->type, domain_);
        w.open("{");
        w.line(set_ty + " _fe = " + expr(*f.set) + ";");
        w.open("for (int32_t _i = 0; _i < _fe.n; ++_i) {");
        w.line(f.var + " = _fe.items[_i];");
        emit_block(w, f.body);
        w.close();
        w.close();
        break;
      }
      case StmtKind::kBreak:
        w.line("break;");
        break;
      case StmtKind::kContinue:
        w.line("continue;");
        break;
      case StmtKind::kReturn:
        w.line("return;");
        break;
      case StmtKind::kLog:
        emit_log(w, static_cast<const LogStmt&>(s));
        break;
      case StmtKind::kMemWrite:
        w.line("/* mem.write: no memory model in generated C */");
        break;
    }
  }

  void emit_generate(Writer& w, const GenerateStmt& g) {
    const ClassDef& target = domain_.cls(g.target_class);
    const xtuml::EventDef& ev = target.event(g.event);
    std::string tgt = expr(*g.target);
    std::string delay = g.delay ? expr(*g.delay) : "0";

    // Order argument expressions by parameter index.
    std::vector<std::string> arg_exprs(ev.params.size());
    for (const auto& a : g.args) {
      arg_exprs[static_cast<std::size_t>(a.param_index)] = expr(*a.value);
    }

    const bool cross = sys_.partition().crosses_interconnect(cls_.id, target.id);
    if (cross) {
      // Boundary: per-message helper from the synthesized interface.
      std::string call = "xt_bus_send_" + lower(target.name) + "_" +
                         lower(ev.name) + "(" + tgt;
      for (const auto& a : arg_exprs) call += ", " + a;
      call += ", (uint64_t)(" + delay + "));";
      w.line(call);
      return;
    }

    std::string args_lit = "NULL";
    if (event_has_params(ev)) {
      std::string init = "{." + lower(target.name) + ".e_" + lower(ev.name) +
                         " = {";
      for (std::size_t i = 0; i < ev.params.size(); ++i) {
        if (i > 0) init += ", ";
        init += "." + ev.params[i].name + " = " + arg_exprs[i];
      }
      init += "}}";
      args_lit = "&(xt_any_args_t)" + init;
    }
    w.line("xt_send(XT_CLS_" + upper(target.name) + ", (uint8_t)" +
           upper(target.name) + "_EV_" + upper(ev.name) + ", " + tgt +
           ", xt_handle_eq(" + tgt + ", self), (uint64_t)(" + delay + "), " +
           args_lit + ");");
  }

  void emit_select_from(Writer& w, const SelectFromStmt& s) {
    std::string p = prefix(s.cls);
    w.open("{");
    w.line(p + "_set_t _tmp; _tmp.n = 0;");
    w.open("for (int32_t _i = 0; _i < (int32_t)" + upper(domain_.cls(s.cls).name)
           + "_POOL; ++_i) {");
    w.line("if (!g_" + p + "_pool[_i]._alive) continue;");
    w.line("xt_handle_t _sel = " + p + "_handle_at(_i);");
    w.line("(void)_sel;");
    if (s.where) w.line("if (!(" + expr(*s.where) + ")) continue;");
    w.line("_tmp.items[_tmp.n++] = _sel;");
    if (!s.many) w.line("break;");
    w.close();
    if (s.many) {
      w.line(s.var + " = _tmp;");
    } else {
      w.line(s.var + " = _tmp.n ? _tmp.items[0] : xt_null_handle();");
    }
    w.close();
  }

  void emit_select_related(Writer& w, const SelectRelatedStmt& s) {
    const xtuml::AssociationDef& assoc = domain_.association(s.assoc);
    std::string p = prefix(s.cls);
    w.open("{");
    w.line("xt_handle_t _rel[XT_LINK_MAX];");
    w.line("int32_t _rn = " + lower(assoc.name) + "_related(" +
           expr(*s.start) + ", _rel, XT_LINK_MAX);");
    w.line(p + "_set_t _tmp; _tmp.n = 0;");
    w.open("for (int32_t _i = 0; _i < _rn; ++_i) {");
    w.line("xt_handle_t _sel = _rel[_i];");
    w.line("(void)_sel;");
    if (s.where) w.line("if (!(" + expr(*s.where) + ")) continue;");
    w.line("_tmp.items[_tmp.n++] = _sel;");
    if (!s.many) w.line("break;");
    w.close();
    if (s.many) {
      w.line(s.var + " = _tmp;");
    } else {
      w.line(s.var + " = _tmp.n ? _tmp.items[0] : xt_null_handle();");
    }
    w.close();
  }

  void emit_log(Writer& w, const LogStmt& l) {
    std::string fmt;
    std::string args;
    for (std::size_t i = 0; i < l.args.size(); ++i) {
      if (i > 0) fmt += " ";
      const OalType& t = l.args[i]->type;
      std::string ex = expr(*l.args[i]);
      if (t.is_set) {
        fmt += "{set:%d}";
        args += ", (int)(" + ex + ").n";
      } else {
        switch (t.base) {
          case DataType::kBool:
            fmt += "%d";
            args += ", (int)(" + ex + ")";
            break;
          case DataType::kInt:
            fmt += "%lld";
            args += ", (long long)(" + ex + ")";
            break;
          case DataType::kReal:
            fmt += "%g";
            args += ", (" + ex + ")";
            break;
          case DataType::kString:
            fmt += "%s";
            args += ", (" + ex + ").s";
            break;
          case DataType::kInstRef:
            fmt += "inst(%u)";
            args += ", (unsigned)(" + ex + ").index";
            break;
          default:
            break;
        }
      }
    }
    w.line("printf(\"" + escape_c_string(fmt) + "\\n\"" + args + ");");
  }

  const MappedSystem& sys_;
  const Domain& domain_;
  const ClassDef& cls_;
  const AnalyzedAction& action_;
  std::string args_member_;
};

}  // namespace

// ---------------------------------------------------------------------------
// File generators
// ---------------------------------------------------------------------------

namespace {

std::string banner(const std::string& what, const Domain& domain) {
  return "/* " + what + " for domain '" + domain.name() +
         "' — generated by the xtsoc model compiler. DO NOT EDIT. */\n";
}

std::string gen_iface_header(const MappedSystem& sys) {
  const Domain& domain = sys.domain();
  Writer w;
  w.line(banner("Hardware/software boundary interface", domain));
  std::string guard = upper(domain.name()) + "_IFACE_H";
  w.line("#ifndef " + guard);
  w.line("#define " + guard);
  w.line();
  w.line("#include <stdint.h>");
  w.line();
  w.line("/* Interface digest: both sides must present the same value. */");
  w.line("#define XT_IFACE_DIGEST \"" + sys.interface().digest(domain) + "\"");
  w.line();
  for (const auto& m : sys.interface().messages()) {
    std::string name = upper(domain.cls(m.target_class).name) + "_" +
                       upper(domain.cls(m.target_class).event(m.event).name);
    w.line("/* " + m.name + " (" + mapping::to_string(m.direction) + ") */");
    w.line("#define MSG_" + name + "_OPCODE " + std::to_string(m.opcode) + "u");
    w.line("#define MSG_" + name + "_BITS " + std::to_string(m.payload_bits));
    w.line("#define MSG_" + name + "_BYTES " +
           std::to_string(m.payload_bytes()));
    for (const auto& f : m.fields) {
      std::string fname = f.name == "_target" ? "TARGET" : upper(f.name);
      w.line("#define MSG_" + name + "_F_" + fname + "_OFF " +
             std::to_string(f.offset_bits));
      w.line("#define MSG_" + name + "_F_" + fname + "_W " +
             std::to_string(f.width_bits));
    }
    w.line();
  }
  w.line("/* Bit-level payload packing (LSB-first within the payload). */");
  w.open("static inline void xt_pack(uint8_t* buf, int off, int width, "
         "uint64_t value) {");
  w.open("for (int i = 0; i < width; ++i) {");
  w.line("if ((value >> i) & 1u) buf[(off + i) / 8] |= "
         "(uint8_t)(1u << ((off + i) % 8));");
  w.close();
  w.close();
  w.open("static inline uint64_t xt_unpack(const uint8_t* buf, int off, "
         "int width) {");
  w.line("uint64_t v = 0;");
  w.open("for (int i = 0; i < width; ++i) {");
  w.line("if (buf[(off + i) / 8] & (1u << ((off + i) % 8))) v |= "
         "(1ull << i);");
  w.close();
  w.line("return v;");
  w.close();
  w.line();
  w.line("#endif /* " + guard + " */");
  return w.str();
}

struct ClassNames {
  std::string low;   // consumer
  std::string up;    // CONSUMER
};

ClassNames names_of(const ClassDef& c) { return {lower(c.name), upper(c.name)}; }

/// Declarations shared by model.c and main.c.
std::string gen_model_header(const MappedSystem& sys) {
  const Domain& domain = sys.domain();
  Writer w;
  w.line(banner("Software partition model", domain));
  std::string guard = upper(domain.name()) + "_MODEL_H";
  w.line("#ifndef " + guard);
  w.line("#define " + guard);
  w.line();
  w.line("#include <stdbool.h>");
  w.line("#include <stdint.h>");
  w.line("#include <stdio.h>");
  w.line("#include <string.h>");
  w.line();
  w.line("#include \"" + lower(domain.name()) + "_iface.h\"");
  w.line();
  w.line("/* ---- core runtime types ---- */");
  w.line("typedef struct { uint8_t cls; uint32_t index; uint16_t gen; "
         "bool valid; } xt_handle_t;");
  w.line("typedef struct { char s[128]; } xt_str_t;");
  w.line();
  w.open("static inline xt_handle_t xt_null_handle(void) {");
  w.line("xt_handle_t h; h.cls = 0; h.index = 0; h.gen = 0; h.valid = false; "
         "return h;");
  w.close();
  w.open("static inline bool xt_handle_eq(xt_handle_t a, xt_handle_t b) {");
  w.line("if (!a.valid && !b.valid) return true;");
  w.line("return a.valid == b.valid && a.cls == b.cls && a.index == b.index "
         "&& a.gen == b.gen;");
  w.close();
  w.open("static inline uint64_t xt_handle_bits(xt_handle_t h) {");
  w.line("if (!h.valid) return (uint64_t)0xffu << 40;");
  w.line("return ((uint64_t)(h.cls & 0xffu) << 40) | "
         "((uint64_t)(h.index & 0xffffffu) << 16) | (h.gen & 0xffffu);");
  w.close();
  w.open("static inline xt_handle_t xt_handle_from_bits(uint64_t bits) {");
  w.line("xt_handle_t h;");
  w.line("uint64_t cls = (bits >> 40) & 0xffu;");
  w.line("if (cls == 0xffu) return xt_null_handle();");
  w.line("h.cls = (uint8_t)cls; h.index = (uint32_t)((bits >> 16) & "
         "0xffffffu); h.gen = (uint16_t)(bits & 0xffffu); h.valid = true;");
  w.line("return h;");
  w.close();
  w.open("static inline xt_str_t xt_str(const char* s) {");
  w.line("xt_str_t out;");
  w.line("strncpy(out.s, s, sizeof(out.s) - 1);");
  w.line("out.s[sizeof(out.s) - 1] = '\\0';");
  w.line("return out;");
  w.close();
  w.open("static inline xt_str_t xt_str_cat(xt_str_t a, xt_str_t b) {");
  w.line("xt_str_t out = a;");
  w.line("strncat(out.s, b.s, sizeof(out.s) - strlen(out.s) - 1);");
  w.line("return out;");
  w.close();
  w.open("static inline int xt_str_cmp(xt_str_t a, xt_str_t b) {");
  w.line("return strcmp(a.s, b.s);");
  w.close();
  w.line();
  w.line("enum { XT_LINK_MAX = 256, XT_QUEUE_MAX = 1024 };");
  w.line();

  // Class ids (all classes, so handles can name hardware peers too).
  w.line("/* ---- class ids ---- */");
  for (const auto& c : domain.classes()) {
    w.line("#define XT_CLS_" + upper(c.name) + " " +
           std::to_string(c.id.value()));
  }
  w.line();

  // Per software class: struct, enums, set type, API.
  for (const auto& c : domain.classes()) {
    if (sys.partition().is_hardware(c.id)) continue;
    ClassNames n = names_of(c);
    int pool = sys.mapping_of(c.id).max_instances;
    w.line("/* ---- class " + c.name + " (software) ---- */");
    w.line("#define " + n.up + "_POOL " + std::to_string(pool));
    w.open("typedef struct {");
    w.line("bool _alive;");
    w.line("uint16_t _gen;");
    w.line("uint8_t _state;");
    for (const auto& a : c.attributes) {
      w.line(std::string(c_type(a.type)) + " " + a.name + ";");
    }
    w.close("} " + n.low + "_t;");
    w.line("typedef struct { xt_handle_t items[" + n.up +
           "_POOL]; int32_t n; } " + n.low + "_set_t;");
    if (!c.states.empty()) {
      std::string states = "typedef enum { ";
      for (std::size_t i = 0; i < c.states.size(); ++i) {
        if (i > 0) states += ", ";
        states += n.up + "_ST_" + upper(c.states[i].name);
      }
      states += " } " + n.low + "_state_t;";
      w.line(states);
    }
    if (!c.events.empty()) {
      std::string events = "typedef enum { ";
      for (std::size_t i = 0; i < c.events.size(); ++i) {
        if (i > 0) events += ", ";
        events += n.up + "_EV_" + upper(c.events[i].name);
      }
      events += " } " + n.low + "_event_t;";
      w.line(events);
    }
    if (class_has_params(c)) {
      w.open("typedef union {");
      for (const auto& e : c.events) {
        if (!event_has_params(e)) continue;
        std::string fields;
        for (const auto& p : e.params) {
          fields += std::string(c_type(p.type)) + " " + p.name + "; ";
        }
        w.line("struct { " + fields + "} e_" + lower(e.name) + ";");
      }
      w.close("} " + n.low + "_args_t;");
    }
    w.line("extern " + n.low + "_t g_" + n.low + "_pool[" + n.up + "_POOL];");
    w.line("xt_handle_t " + n.low + "_create(void);");
    w.line("void " + n.low + "_delete(xt_handle_t h);");
    w.line("bool " + n.low + "_alive(xt_handle_t h);");
    w.line(n.low + "_t* " + n.low + "_get(xt_handle_t h);");
    w.line("xt_handle_t " + n.low + "_handle_at(int32_t index);");
    w.line();
  }

  // The any-args union over software classes with parameters.
  w.line("/* ---- queued-signal payload ---- */");
  bool any_params = false;
  for (const auto& c : domain.classes()) {
    if (!sys.partition().is_hardware(c.id) && class_has_params(c)) {
      any_params = true;
    }
  }
  if (any_params) {
    w.open("typedef union {");
    for (const auto& c : domain.classes()) {
      if (sys.partition().is_hardware(c.id) || !class_has_params(c)) continue;
      ClassNames n = names_of(c);
      w.line(n.low + "_args_t " + n.low + ";");
    }
    w.close("} xt_any_args_t;");
  } else {
    w.line("typedef struct { int _unused; } xt_any_args_t;");
  }
  w.line();
  w.line("/* ---- signal queue (xtUML: self-directed first) ---- */");
  w.line("void xt_send(uint8_t cls, uint8_t ev, xt_handle_t target, "
         "bool self_directed, uint64_t delay, const xt_any_args_t* args);");
  w.line("bool xt_pump_one(void);");
  w.line("void xt_run(void);");
  w.line("uint64_t xt_now(void);");
  w.line();
  w.line("/* ---- bus (filled in by the platform glue) ---- */");
  w.line("typedef void (*xt_bus_tx_fn)(uint32_t opcode, const uint8_t* "
         "payload, uint32_t nbytes);");
  w.line("void xt_bus_set_tx(xt_bus_tx_fn fn);");
  w.line("void xt_bus_rx(uint32_t opcode, const uint8_t* payload);");
  w.line();

  // Association API.
  for (const auto& a : domain.associations()) {
    if (sys.partition().is_hardware(a.a.cls)) continue;  // hw assoc lives in vhdl
    std::string an = lower(a.name);
    w.line("/* association " + a.name + ": " + domain.cls(a.a.cls).name +
           " -- " + domain.cls(a.b.cls).name + " */");
    w.line("void " + an + "_relate(xt_handle_t a, xt_handle_t b);");
    w.line("void " + an + "_unrelate(xt_handle_t a, xt_handle_t b);");
    w.line("int32_t " + an + "_related(xt_handle_t from, xt_handle_t* out, "
           "int32_t cap);");
  }
  w.line();

  // Dispatch prototypes.
  for (const auto& c : domain.classes()) {
    if (sys.partition().is_hardware(c.id) || c.states.empty()) continue;
    ClassNames n = names_of(c);
    w.line("void " + n.low + "_dispatch(xt_handle_t self, " + n.low +
           "_event_t ev, const xt_any_args_t* args);");
  }
  w.line();
  w.line("#endif /* " + guard + " */");
  return w.str();
}

}  // namespace

Output generate_c(const MappedSystem& sys, DiagnosticSink& sink) {
  const Domain& domain = sys.domain();
  Output out;
  std::string dn = lower(domain.name());

  out.files.push_back({"sw/" + dn + "_iface.h", gen_iface_header(sys)});
  out.files.push_back({"sw/" + dn + "_model.h", gen_model_header(sys)});

  // ---- model.c ----
  Writer w;
  w.line(banner("Software partition implementation", domain));
  w.line("#include \"" + dn + "_model.h\"");
  w.line();

  // Pools + per-class lifecycle.
  for (const auto& c : domain.classes()) {
    if (sys.partition().is_hardware(c.id)) continue;
    ClassNames n = names_of(c);
    w.line(n.low + "_t g_" + n.low + "_pool[" + n.up + "_POOL];");
    w.open("xt_handle_t " + n.low + "_handle_at(int32_t index) {");
    w.line("xt_handle_t h;");
    w.line("h.cls = XT_CLS_" + n.up + "; h.index = (uint32_t)index;");
    w.line("h.gen = g_" + n.low + "_pool[index]._gen; h.valid = true;");
    w.line("return h;");
    w.close();
    w.open("bool " + n.low + "_alive(xt_handle_t h) {");
    w.line("return h.valid && h.cls == XT_CLS_" + n.up + " && h.index < " +
           n.up + "_POOL && g_" + n.low + "_pool[h.index]._alive && g_" +
           n.low + "_pool[h.index]._gen == h.gen;");
    w.close();
    w.open(n.low + "_t* " + n.low + "_get(xt_handle_t h) {");
    w.line("return " + n.low + "_alive(h) ? &g_" + n.low +
           "_pool[h.index] : (" + n.low + "_t*)0;");
    w.close();
    w.open("xt_handle_t " + n.low + "_create(void) {");
    w.open("for (int32_t i = 0; i < (int32_t)" + n.up + "_POOL; ++i) {");
    w.line("if (g_" + n.low + "_pool[i]._alive) continue;");
    w.line(n.low + "_t* p = &g_" + n.low + "_pool[i];");
    w.line("p->_alive = true;");
    if (!c.states.empty()) {
      w.line("p->_state = (uint8_t)" + n.up + "_ST_" +
             upper(c.states[c.initial_state.value()].name) + ";");
    } else {
      w.line("p->_state = 0;");
    }
    for (const auto& a : c.attributes) {
      w.line("p->" + a.name + " = " + c_default(a) + ";");
    }
    w.line("return " + n.low + "_handle_at(i);");
    w.close();
    w.line("return xt_null_handle(); /* pool exhausted */");
    w.close();
    w.open("void " + n.low + "_delete(xt_handle_t h) {");
    w.line(n.low + "_t* p = " + n.low + "_get(h);");
    w.line("if (!p) return;");
    w.line("p->_alive = false;");
    w.line("p->_gen++;");
    w.close();
    w.line();
  }

  // Associations.
  for (const auto& a : domain.associations()) {
    if (sys.partition().is_hardware(a.a.cls)) continue;
    std::string an = lower(a.name);
    w.line("typedef struct { xt_handle_t a, b; bool used; } " + an +
           "_link_t;");
    w.line("static " + an + "_link_t g_" + an + "_links[XT_LINK_MAX];");
    w.open("void " + an + "_relate(xt_handle_t a, xt_handle_t b) {");
    w.open("for (int32_t i = 0; i < XT_LINK_MAX; ++i) {");
    w.line("if (g_" + an + "_links[i].used) continue;");
    w.line("g_" + an + "_links[i].used = true;");
    w.line("g_" + an + "_links[i].a = a;");
    w.line("g_" + an + "_links[i].b = b;");
    w.line("return;");
    w.close();
    w.close();
    w.open("void " + an + "_unrelate(xt_handle_t a, xt_handle_t b) {");
    w.open("for (int32_t i = 0; i < XT_LINK_MAX; ++i) {");
    w.line("if (!g_" + an + "_links[i].used) continue;");
    w.line("bool fwd = xt_handle_eq(g_" + an + "_links[i].a, a) && "
           "xt_handle_eq(g_" + an + "_links[i].b, b);");
    w.line("bool rev = xt_handle_eq(g_" + an + "_links[i].a, b) && "
           "xt_handle_eq(g_" + an + "_links[i].b, a);");
    w.line("if (fwd || rev) { g_" + an + "_links[i].used = false; return; }");
    w.close();
    w.close();
    w.open("int32_t " + an + "_related(xt_handle_t from, xt_handle_t* out, "
           "int32_t cap) {");
    w.line("int32_t n = 0;");
    w.open("for (int32_t i = 0; i < XT_LINK_MAX && n < cap; ++i) {");
    w.line("if (!g_" + an + "_links[i].used) continue;");
    w.line("if (xt_handle_eq(g_" + an + "_links[i].a, from)) out[n++] = g_" +
           an + "_links[i].b;");
    w.line("else if (xt_handle_eq(g_" + an + "_links[i].b, from)) out[n++] = "
           "g_" + an + "_links[i].a;");
    w.close();
    w.line("return n;");
    w.close();
    w.line();
  }

  // Queue runtime.
  w.line("/* ---- signal queue ---- */");
  w.line("typedef struct { bool used; uint8_t cls; uint8_t ev; bool self_dir;");
  w.line("                 uint64_t due; uint64_t seq; xt_handle_t target;");
  w.line("                 xt_any_args_t args; } xt_event_t;");
  w.line("static xt_event_t g_queue[XT_QUEUE_MAX];");
  w.line("static uint64_t g_now, g_seq;");
  w.line("uint64_t xt_now(void) { return g_now; }");
  w.open("void xt_send(uint8_t cls, uint8_t ev, xt_handle_t target, "
         "bool self_directed, uint64_t delay, const xt_any_args_t* args) {");
  w.open("for (int32_t i = 0; i < XT_QUEUE_MAX; ++i) {");
  w.line("if (g_queue[i].used) continue;");
  w.line("g_queue[i].used = true;");
  w.line("g_queue[i].cls = cls; g_queue[i].ev = ev; g_queue[i].target = "
         "target;");
  w.line("g_queue[i].self_dir = self_directed;");
  w.line("g_queue[i].due = g_now + delay; g_queue[i].seq = g_seq++;");
  w.line("if (args) g_queue[i].args = *args;");
  w.line("else memset(&g_queue[i].args, 0, sizeof(g_queue[i].args));");
  w.line("return;");
  w.close();
  w.close();
  w.line();
  w.line("static void xt_dispatch(const xt_event_t* e);");
  w.open("bool xt_pump_one(void) {");
  w.line("/* xtUML discipline: oldest due self-directed event first, then");
  w.line("   oldest due external event. */");
  w.line("int32_t best = -1;");
  w.open("for (int pass = 0; pass < 2 && best < 0; ++pass) {");
  w.open("for (int32_t i = 0; i < XT_QUEUE_MAX; ++i) {");
  w.line("if (!g_queue[i].used || g_queue[i].due > g_now) continue;");
  w.line("if ((pass == 0) != g_queue[i].self_dir) continue;");
  w.line("if (best < 0 || g_queue[i].seq < g_queue[best].seq) best = i;");
  w.close();
  w.close();
  w.line("if (best < 0) return false;");
  w.line("xt_event_t e = g_queue[best];");
  w.line("g_queue[best].used = false;");
  w.line("xt_dispatch(&e);");
  w.line("return true;");
  w.close();
  w.open("void xt_run(void) {");
  w.open("for (;;) {");
  w.line("while (xt_pump_one()) { }");
  w.line("/* advance to the next timer deadline, if any */");
  w.line("uint64_t next = 0; bool have = false;");
  w.open("for (int32_t i = 0; i < XT_QUEUE_MAX; ++i) {");
  w.line("if (!g_queue[i].used) continue;");
  w.line("if (!have || g_queue[i].due < next) { next = g_queue[i].due; "
         "have = true; }");
  w.close();
  w.line("if (!have) return;");
  w.line("g_now = next;");
  w.close();
  w.close();
  w.line();

  // Bus plumbing.
  w.line("/* ---- bus ---- */");
  w.line("static xt_bus_tx_fn g_bus_tx;");
  w.line("void xt_bus_set_tx(xt_bus_tx_fn fn) { g_bus_tx = fn; }");
  for (const auto& m : sys.interface().messages()) {
    if (m.direction != mapping::Direction::kToHardware) continue;
    const ClassDef& target = domain.cls(m.target_class);
    const xtuml::EventDef& ev = target.event(m.event);
    std::string mname = upper(target.name) + "_" + upper(ev.name);
    std::string fn = "void xt_bus_send_" + lower(target.name) + "_" +
                     lower(ev.name) + "(xt_handle_t target";
    for (const auto& p : ev.params) {
      fn += std::string(", ") + c_type(p.type) + " " + p.name;
    }
    fn += ", uint64_t delay) {";
    w.open(fn);
    w.line("(void)delay; /* carried by the platform glue if supported */");
    w.line("uint8_t buf[MSG_" + mname + "_BYTES];");
    w.line("memset(buf, 0, sizeof(buf));");
    w.line("xt_pack(buf, MSG_" + mname + "_F_TARGET_OFF, MSG_" + mname +
           "_F_TARGET_W, xt_handle_bits(target));");
    for (const auto& p : ev.params) {
      std::string pf = "MSG_" + mname + "_F_" + upper(p.name);
      std::string raw;
      switch (p.type) {
        case DataType::kBool:
          raw = p.name + " ? 1u : 0u";
          break;
        case DataType::kInt:
          raw = "(uint64_t)" + p.name;
          break;
        case DataType::kReal: {
          raw = "xt_real_bits(" + p.name + ")";
          break;
        }
        case DataType::kInstRef:
          raw = "xt_handle_bits(" + p.name + ")";
          break;
        default:
          raw = "0";
      }
      w.line("xt_pack(buf, " + pf + "_OFF, " + pf + "_W, " + raw + ");");
    }
    w.line("if (g_bus_tx) g_bus_tx(MSG_" + mname + "_OPCODE, buf, "
           "sizeof(buf));");
    w.close();
  }
  w.line();
  w.open("void xt_bus_rx(uint32_t opcode, const uint8_t* payload) {");
  w.open("switch (opcode) {");
  for (const auto& m : sys.interface().messages()) {
    if (m.direction != mapping::Direction::kToSoftware) continue;
    const ClassDef& target = domain.cls(m.target_class);
    const xtuml::EventDef& ev = target.event(m.event);
    ClassNames n = names_of(target);
    std::string mname = n.up + "_" + upper(ev.name);
    w.open("case MSG_" + mname + "_OPCODE: {");
    w.line("xt_handle_t tgt = xt_handle_from_bits(xt_unpack(payload, MSG_" +
           mname + "_F_TARGET_OFF, MSG_" + mname + "_F_TARGET_W));");
    std::string args_lit = "NULL";
    if (event_has_params(ev)) {
      w.line("xt_any_args_t a;");
      w.line("memset(&a, 0, sizeof(a));");
      for (const auto& p : ev.params) {
        std::string pf = "MSG_" + mname + "_F_" + upper(p.name);
        std::string dst = "a." + n.low + ".e_" + lower(ev.name) + "." + p.name;
        std::string raw = "xt_unpack(payload, " + pf + "_OFF, " + pf + "_W)";
        switch (p.type) {
          case DataType::kBool:
            w.line(dst + " = " + raw + " != 0;");
            break;
          case DataType::kInt:
            w.line(dst + " = xt_sext(" + raw + ", " + pf + "_W);");
            break;
          case DataType::kReal:
            w.line(dst + " = xt_real_from_bits(" + raw + ");");
            break;
          case DataType::kInstRef:
            w.line(dst + " = xt_handle_from_bits(" + raw + ");");
            break;
          default:
            break;
        }
      }
      args_lit = "&a";
    }
    w.line("xt_send(XT_CLS_" + n.up + ", (uint8_t)" + n.up + "_EV_" +
           upper(ev.name) + ", tgt, false, 0, " + args_lit + ");");
    w.line("break;");
    w.close();
  }
  w.line("default: break;");
  w.close();
  w.close();
  w.line();

  // Per-class dispatch + actions.
  for (const auto& c : domain.classes()) {
    if (sys.partition().is_hardware(c.id) || c.states.empty()) continue;
    ClassNames n = names_of(c);
    const oal::CompiledClass& cc = sys.compiled().cls(c.id);

    // Action functions.
    for (const auto& st : c.states) {
      const AnalyzedAction& action = cc.state_actions[st.id.value()];
      std::string member = entry_member(c, st.id);
      w.open("static void " + n.low + "_act_" + lower(st.name) +
             "(xt_handle_t self, const xt_any_args_t* args) {");
      w.line("(void)self; (void)args;");
      if (!c.state(st.id).action_source.empty()) {
        w.line("/* OAL:");
        for (const auto& src_line :
             split(trim(c.state(st.id).action_source), '\n')) {
          w.line("     " + std::string(trim(src_line)));
        }
        w.line("*/");
      }
      CTranslator tr(sys, c, action,
                     member.empty() ? std::string("_none")
                                    : (n.low + ".e_" + member));
      tr.emit_body(w);
      w.close();
    }

    // Transition table + dispatch.
    w.open("void " + n.low + "_dispatch(xt_handle_t self, " + n.low +
           "_event_t ev, const xt_any_args_t* args) {");
    w.line(n.low + "_t* me = " + n.low + "_get(self);");
    w.line("if (!me) return; /* signal to a deleted instance: dropped */");
    w.line("static const uint8_t next_state[" +
           std::to_string(c.states.size()) + "][" +
           std::to_string(c.events.size() == 0 ? 1 : c.events.size()) + "] = {");
    for (const auto& st : c.states) {
      std::string row = "  { ";
      for (std::size_t e = 0; e < std::max<std::size_t>(c.events.size(), 1);
           ++e) {
        if (e > 0) row += ", ";
        const xtuml::TransitionDef* t =
            e < c.events.size()
                ? c.transition_on(st.id,
                                  EventId(static_cast<EventId::underlying_type>(e)))
                : nullptr;
        row += t ? std::to_string(t->to.value()) : "0xFFu";
      }
      row += " }, /* " + st.name + " */";
      w.line(row);
    }
    w.line("};");
    w.line("uint8_t to = next_state[me->_state][(int)ev];");
    if (c.fallback == xtuml::EventFallback::kCantHappen) {
      w.line("if (to == 0xFFu) { fprintf(stderr, \"can't happen\\n\"); "
             "return; }");
    } else {
      w.line("if (to == 0xFFu) return; /* event ignored */");
    }
    w.line("me->_state = to;");
    w.open("switch (to) {");
    for (const auto& st : c.states) {
      w.line("case " + std::to_string(st.id.value()) + ": " + n.low + "_act_" +
             lower(st.name) + "(self, args); break;");
    }
    w.line("default: break;");
    w.close();
    for (const auto& st : c.states) {
      if (st.is_final) {
        w.line("if (me->_state == " + std::to_string(st.id.value()) + " && " +
               n.low + "_alive(self)) " + n.low + "_delete(self);");
        break;
      }
    }
    w.close();
    w.line();
  }

  // Cross-class pump dispatch.
  w.open("static void xt_dispatch(const xt_event_t* e) {");
  w.open("switch (e->cls) {");
  for (const auto& c : domain.classes()) {
    if (sys.partition().is_hardware(c.id) || c.states.empty()) continue;
    ClassNames n = names_of(c);
    w.line("case XT_CLS_" + n.up + ": " + n.low + "_dispatch(e->target, (" +
           n.low + "_event_t)e->ev, &e->args); break;");
  }
  w.line("default: break;");
  w.close();
  w.close();

  std::string model_c = w.str();

  // Helpers referenced by bus code; prepend after includes.
  std::string helpers =
      "\nstatic inline uint64_t xt_real_bits(double d) {\n"
      "  uint64_t u; memcpy(&u, &d, sizeof(u)); return u;\n"
      "}\n"
      "static inline double xt_real_from_bits(uint64_t u) {\n"
      "  double d; memcpy(&d, &u, sizeof(d)); return d;\n"
      "}\n"
      "static inline int64_t xt_sext(uint64_t v, int width) {\n"
      "  if (width < 64 && (v & (1ull << (width - 1))))\n"
      "    v |= ~((1ull << width) - 1);\n"
      "  return (int64_t)v;\n"
      "}\n\n";
  const std::string include_line = "#include \"" + dn + "_model.h\"\n";
  std::size_t insert_at = model_c.find(include_line);
  if (insert_at != std::string::npos) {
    model_c.insert(insert_at + include_line.size(), helpers);
  } else {
    model_c += helpers;
  }
  out.files.push_back({"sw/" + dn + "_model.c", std::move(model_c)});

  // ---- main.c ----
  Writer m;
  m.line(banner("Entry point skeleton", domain));
  m.line("#include \"" + dn + "_model.h\"");
  m.line();
  m.open("int main(void) {");
  m.line("/* Create the initial population here, e.g.: */");
  for (const auto& c : domain.classes()) {
    if (sys.partition().is_hardware(c.id)) continue;
    m.line("/*   xt_handle_t " + lower(c.name) + "0 = " + lower(c.name) +
           "_create(); */");
  }
  m.line("/* Inject initial signals with xt_send(...), then: */");
  m.line("xt_run();");
  m.line("return 0;");
  m.close();
  out.files.push_back({"sw/" + dn + "_main.c", m.str()});

  (void)sink;
  return out;
}

}  // namespace xtsoc::codegen
