// C backend: maps the software partition to compilable C99 (paper §4:
// "Repeatable mappings are defined that produce compilable text (e.g., C,
// VHDL) according to a single consistent set of architectural rules").
//
// Architectural rules of this mapping:
//   * each class -> a static instance pool + typed struct, state/event
//     enums, a transition table, and one action function per state;
//   * signals -> a single bounded event queue with the xtUML self-directed
//     priority, pumped by xt_run();
//   * associations -> a static link table per association;
//   * boundary signals -> per-message pack/unpack helpers whose opcodes,
//     offsets and widths come from the SAME InterfaceSpec the VHDL backend
//     and the cosim bus use — interface consistency by construction.
//
// The emitted sources are self-contained C99 (no external runtime) and are
// verified to compile in the test suite.
#pragma once

#include "xtsoc/codegen/output.hpp"
#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"

namespace xtsoc::codegen {

/// Generate the software partition. Files:
///   sw/<domain>_iface.h   — boundary interface constants + pack helpers
///   sw/<domain>_model.h   — types and prototypes
///   sw/<domain>_model.c   — pools, queue runtime, dispatch, actions
///   sw/<domain>_main.c    — entry-point skeleton
Output generate_c(const mapping::MappedSystem& system, DiagnosticSink& sink);

}  // namespace xtsoc::codegen
