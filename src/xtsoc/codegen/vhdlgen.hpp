// VHDL backend: maps the hardware partition to VHDL-93 text.
//
// Architectural rules of this mapping (the hardware twin of cgen.hpp):
//   * each hardware class -> one entity with clk/rst and rx/tx message
//     ports, an instance-pool of parallel FSMs realized as arrays indexed
//     by the instance field of the incoming message;
//   * one signal consumed per instance per clock edge;
//   * attributes -> per-instance variable arrays inside the FSM process;
//   * boundary signals -> tx port writes using opcode/field constants from
//     the generated package — the same numbers the C header carries,
//     because both backends read the same InterfaceSpec.
//
// Files:
//   hw/<domain>_pkg.vhd   — interface constants package (+ digest)
//   hw/<class>.vhd        — one entity per hardware class
#pragma once

#include "xtsoc/codegen/output.hpp"
#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"

namespace xtsoc::codegen {

Output generate_vhdl(const mapping::MappedSystem& system,
                     DiagnosticSink& sink);

}  // namespace xtsoc::codegen
