#include "xtsoc/codegen/vhdlgen.hpp"

#include <algorithm>
#include <sstream>

#include "xtsoc/oal/ast.hpp"
#include "xtsoc/oal/sema.hpp"

namespace xtsoc::codegen {

namespace {

using namespace oal;
using mapping::MappedSystem;
using xtuml::ClassDef;
using xtuml::DataType;
using xtuml::Domain;

std::string lower(const std::string& n) { return to_snake_case(n); }
std::string upper(const std::string& n) { return to_upper_snake(n); }

/// VHDL value type for an abstract data type inside the FSM process.
/// Abstract 64-bit ints narrow to VHDL `integer`; the wire format keeps the
/// declared width, so only in-fabric arithmetic narrows (documented in the
/// generated header comment).
const char* vhdl_type(DataType t) {
  switch (t) {
    case DataType::kBool: return "boolean";
    case DataType::kInt: return "integer";
    case DataType::kReal: return "real";
    case DataType::kInstRef: return "unsigned(47 downto 0)";
    default: return "integer";
  }
}

std::string vhdl_zero(DataType t) {
  switch (t) {
    case DataType::kBool: return "false";
    case DataType::kInt: return "0";
    case DataType::kReal: return "0.0";
    case DataType::kInstRef: return "(others => '1')";  // null handle
    default: return "0";
  }
}

class Writer {
public:
  Writer& line(const std::string& text = {}) {
    if (!text.empty()) {
      for (int i = 0; i < indent_; ++i) os_ << "  ";
      os_ << text;
    }
    os_ << '\n';
    return *this;
  }
  Writer& open(const std::string& text) {
    line(text);
    ++indent_;
    return *this;
  }
  Writer& close(const std::string& text) {
    --indent_;
    if (!text.empty()) line(text);
    return *this;
  }
  Writer& dedent() {
    --indent_;
    return *this;
  }
  std::string str() const { return os_.str(); }

private:
  std::ostringstream os_;
  int indent_ = 0;
};

std::string msg_const(const Domain& domain, const mapping::MessageLayout& m) {
  return "MSG_" + upper(domain.cls(m.target_class).name) + "_" +
         upper(domain.cls(m.target_class).event(m.event).name);
}

/// Translate an analyzed OAL action into VHDL sequential statements.
class VhdlTranslator {
public:
  VhdlTranslator(const MappedSystem& sys, const ClassDef& cls,
                 const AnalyzedAction& action, const std::string& state_name,
                 const mapping::MessageLayout* rx_layout)
      : sys_(sys), domain_(sys.domain()), cls_(cls), action_(action),
        state_prefix_("v_" + lower(state_name) + "_"), rx_(rx_layout) {}

  /// Per-action local variable declarations (unique-prefixed per state so
  /// every state's locals can live in the single FSM process).
  void declare_locals(Writer& w) const {
    for (const auto& local : action_.locals) {
      if (local.type.is_set) {
        w.line("variable " + state_prefix_ + local.name +
               " : t_handle_set; -- set of " +
               domain_.cls(local.type.cls).name);
        w.line("variable " + state_prefix_ + local.name + "_n : natural;");
      } else {
        w.line("variable " + state_prefix_ + local.name + " : " +
               vhdl_type(local.type.base) + ";");
      }
    }
  }

  void emit_body(Writer& w) { emit_block(w, action_.ast); }

private:
  std::string var(const std::string& name) const {
    return state_prefix_ + name;
  }

  std::string field_slice(const mapping::FieldLayout& f) const {
    return "rx_payload(" + std::to_string(f.offset_bits + f.width_bits - 1) +
           " downto " + std::to_string(f.offset_bits) + ")";
  }

  const mapping::FieldLayout* rx_field(const std::string& name) const {
    if (rx_ == nullptr) return nullptr;
    for (const auto& f : rx_->fields) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }

  std::string expr(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kLiteral: {
        const auto& lit = static_cast<const LiteralExpr&>(e);
        switch (lit.value.index()) {
          case 0: return std::get<bool>(lit.value) ? "true" : "false";
          case 1: return std::to_string(std::get<std::int64_t>(lit.value));
          case 2: {
            std::ostringstream os;
            os << std::get<double>(lit.value);
            std::string s = os.str();
            if (s.find('.') == std::string::npos) s += ".0";
            return s;
          }
          default:
            return "\"<string>\"";  // unreachable: strings banned in hw
        }
      }
      case ExprKind::kVarRef:
        return var(static_cast<const VarRefExpr&>(e).name);
      case ExprKind::kSelfRef:
        return "self_handle(idx)";
      case ExprKind::kSelectedRef:
        return "sel_h";
      case ExprKind::kParamRef: {
        const auto& p = static_cast<const ParamRefExpr&>(e);
        const mapping::FieldLayout* f = rx_field(p.name);
        if (f == nullptr) return "0 -- param." + p.name;
        switch (f->type) {
          case DataType::kBool:
            return "(" + field_slice(*f) + " = \"1\")";
          case DataType::kInt:
            return "to_integer(signed(" + field_slice(*f) + "))";
          case DataType::kReal:
            return "to_real_bits(" + field_slice(*f) + ")";
          case DataType::kInstRef:
            return "unsigned(" + field_slice(*f) + ")";
          default:
            return "0";
        }
      }
      case ExprKind::kAttrAccess: {
        const auto& a = static_cast<const AttrAccessExpr&>(e);
        // Only same-class (pooled) access survives partition validation.
        return "v_" + a.attr_name + "(to_index(" + expr(*a.object) + "))";
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        const char* op = u.op == UnaryOp::kNeg ? "-" : "not ";
        return std::string(op) + "(" + expr(*u.operand) + ")";
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        std::string l = expr(*b.lhs);
        std::string r = expr(*b.rhs);
        const char* op = nullptr;
        switch (b.op) {
          case BinaryOp::kAdd: op = "+"; break;
          case BinaryOp::kSub: op = "-"; break;
          case BinaryOp::kMul: op = "*"; break;
          case BinaryOp::kDiv: op = "/"; break;
          case BinaryOp::kMod: op = "mod"; break;
          case BinaryOp::kEq: op = "="; break;
          case BinaryOp::kNe: op = "/="; break;
          case BinaryOp::kLt: op = "<"; break;
          case BinaryOp::kLe: op = "<="; break;
          case BinaryOp::kGt: op = ">"; break;
          case BinaryOp::kGe: op = ">="; break;
          case BinaryOp::kAnd: op = "and"; break;
          case BinaryOp::kOr: op = "or"; break;
        }
        return "(" + l + " " + op + " " + r + ")";
      }
      case ExprKind::kCardinality: {
        const auto& c = static_cast<const CardinalityExpr&>(e);
        if (c.operand->type.is_set) {
          if (c.operand->kind == ExprKind::kVarRef) {
            return var(static_cast<const VarRefExpr&>(*c.operand).name) + "_n";
          }
          return "0 -- cardinality of non-variable set";
        }
        return "bool_to_int(is_live(" + expr(*c.operand) + "))";
      }
      case ExprKind::kEmpty:
      case ExprKind::kNotEmpty: {
        const auto& em = static_cast<const EmptyExpr&>(e);
        std::string inner;
        if (em.operand->type.is_set &&
            em.operand->kind == ExprKind::kVarRef) {
          inner = "(" +
                  var(static_cast<const VarRefExpr&>(*em.operand).name) +
                  "_n = 0)";
        } else {
          inner = "(not is_live(" + expr(*em.operand) + "))";
        }
        return e.kind == ExprKind::kEmpty ? inner : ("(not " + inner + ")");
      }
      case ExprKind::kMemRead:
        return "0 -- mem.read: no memory model in generated VHDL";
    }
    return "0";
  }

  void emit_block(Writer& w, const Block& b) {
    for (const auto& s : b.stmts) emit_stmt(w, *s);
  }

  void emit_stmt(Writer& w, const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        w.line(expr(*a.lvalue) + " := " + expr(*a.rvalue) + ";");
        break;
      }
      case StmtKind::kCreate: {
        const auto& c = static_cast<const CreateStmt&>(s);
        w.line("-- create instance in the " + domain_.cls(c.cls).name +
               " pool");
        w.line(var(c.var) + " := pool_alloc_" + lower(domain_.cls(c.cls).name) +
               ";");
        break;
      }
      case StmtKind::kDelete: {
        const auto& d = static_cast<const DeleteStmt&>(s);
        w.line("pool_free(" + expr(*d.object) + ");");
        break;
      }
      case StmtKind::kGenerate:
        emit_generate(w, static_cast<const GenerateStmt&>(s));
        break;
      case StmtKind::kSelectFrom: {
        const auto& sel = static_cast<const SelectFromStmt&>(s);
        std::string pool = upper(domain_.cls(sel.cls).name) + "_POOL";
        if (sel.many) w.line(var(sel.var) + "_n := 0;");
        w.open("for i in 0 to " + pool + " - 1 loop");
        w.line("if not pool_live(i) then next; end if;");
        w.line("sel_h := handle_of(i);");
        if (sel.where) {
          w.line("if not (" + expr(*sel.where) + ") then next; end if;");
        }
        if (sel.many) {
          w.line(var(sel.var) + "(" + var(sel.var) + "_n) := sel_h;");
          w.line(var(sel.var) + "_n := " + var(sel.var) + "_n + 1;");
        } else {
          w.line(var(sel.var) + " := sel_h;");
          w.line("exit;");
        }
        w.close("end loop;");
        break;
      }
      case StmtKind::kSelectRelated: {
        const auto& sel = static_cast<const SelectRelatedStmt&>(s);
        w.line("-- navigate " + sel.assoc_name + " from " +
               expr(*sel.start));
        w.line(var(sel.var) + (sel.many ? "_n := link_scan_" : " := link_one_") +
               lower(sel.assoc_name) + "(" + expr(*sel.start) + ");");
        break;
      }
      case StmtKind::kRelate:
      case StmtKind::kUnrelate: {
        const auto& r = static_cast<const RelateStmt&>(s);
        const char* fn = s.kind == StmtKind::kRelate ? "link_set_" : "link_clr_";
        w.line(std::string(fn) + lower(r.assoc_name) + "(" + expr(*r.a) +
               ", " + expr(*r.b) + ");");
        break;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        for (std::size_t k = 0; k < i.branches.size(); ++k) {
          std::string kw = k == 0 ? "if " : "elsif ";
          w.open(kw + expr(*i.branches[k].cond) + " then");
          emit_block(w, i.branches[k].body);
          w.close("");
        }
        if (i.else_body) {
          w.open("else");
          emit_block(w, *i.else_body);
          w.close("");
        }
        w.line("end if;");
        break;
      }
      case StmtKind::kWhile: {
        const auto& wh = static_cast<const WhileStmt&>(s);
        w.open("while " + expr(*wh.cond) + " loop");
        emit_block(w, wh.body);
        w.close("end loop;");
        break;
      }
      case StmtKind::kForEach: {
        const auto& f = static_cast<const ForEachStmt&>(s);
        std::string set_name =
            f.set->kind == ExprKind::kVarRef
                ? var(static_cast<const VarRefExpr&>(*f.set).name)
                : "set";
        w.open("for i in 0 to " + set_name + "_n - 1 loop");
        w.line(var(f.var) + " := " + set_name + "(i);");
        emit_block(w, f.body);
        w.close("end loop;");
        break;
      }
      case StmtKind::kBreak:
        w.line("exit;");
        break;
      case StmtKind::kContinue:
        w.line("next;");
        break;
      case StmtKind::kReturn:
        w.line("return;");
        break;
      case StmtKind::kLog: {
        const auto& l = static_cast<const LogStmt&>(s);
        std::string rep = "report \"log\"";
        for (const auto& a : l.args) {
          const OalType& t = a->type;
          if (t.is_set) continue;
          switch (t.base) {
            case DataType::kInt:
              rep += " & \" \" & integer'image(" + expr(*a) + ")";
              break;
            case DataType::kBool:
              rep += " & \" \" & boolean'image(" + expr(*a) + ")";
              break;
            case DataType::kReal:
              rep += " & \" \" & real'image(" + expr(*a) + ")";
              break;
            default:
              break;
          }
        }
        w.line(rep + " severity note;");
        break;
      }
      case StmtKind::kMemWrite:
        w.line("-- mem.write: no memory model in generated VHDL");
        break;
    }
  }

  void emit_generate(Writer& w, const GenerateStmt& g) {
    const ClassDef& target = domain_.cls(g.target_class);
    const xtuml::EventDef& ev = target.event(g.event);
    const bool cross = sys_.partition().crosses_interconnect(cls_.id, target.id);

    std::vector<const Expr*> arg_exprs(ev.params.size(), nullptr);
    for (const auto& a : g.args) {
      arg_exprs[static_cast<std::size_t>(a.param_index)] = a.value.get();
    }

    if (!cross) {
      // Intra-fabric signal: delivered by the integration-level router.
      std::string call = "fab_send_" + lower(target.name) + "_" +
                         lower(ev.name) + "(" + expr(*g.target);
      for (const Expr* a : arg_exprs) call += ", " + expr(*a);
      call += ");";
      w.line(call);
      return;
    }

    const mapping::MessageLayout* m =
        sys_.interface().find(target.id, ev.id);
    if (m == nullptr) {
      w.line("-- ERROR: no boundary message for " + target.name + "." +
             ev.name);
      return;
    }
    std::string mc = msg_const(domain_, *m);
    w.line("-- boundary signal " + m->name + " -> software");
    w.line("tx_valid <= '1';");
    w.line("tx_opcode <= to_unsigned(" + mc + "_OPCODE, 16);");
    // Target handle field.
    const auto& tf = m->fields[0];
    w.line("tx_payload(" + std::to_string(tf.offset_bits + tf.width_bits - 1) +
           " downto " + std::to_string(tf.offset_bits) +
           ") <= std_logic_vector(" + expr(*g.target) + ");");
    for (std::size_t i = 1; i < m->fields.size(); ++i) {
      const auto& f = m->fields[i];
      const Expr* a = arg_exprs[i - 1];
      std::string slice = "tx_payload(" +
                          std::to_string(f.offset_bits + f.width_bits - 1) +
                          " downto " + std::to_string(f.offset_bits) + ")";
      switch (f.type) {
        case DataType::kBool:
          w.line(slice + " <= \"1\" when (" + expr(*a) +
                 ") else \"0\";");
          break;
        case DataType::kInt:
          w.line(slice + " <= std_logic_vector(to_signed(" + expr(*a) + ", " +
                 std::to_string(f.width_bits) + "));");
          break;
        case DataType::kReal:
          w.line(slice + " <= real_to_bits(" + expr(*a) + ");");
          break;
        case DataType::kInstRef:
          w.line(slice + " <= std_logic_vector(" + expr(*a) + ");");
          break;
        default:
          break;
      }
    }
  }

  const MappedSystem& sys_;
  const Domain& domain_;
  const ClassDef& cls_;
  const AnalyzedAction& action_;
  std::string state_prefix_;
  const mapping::MessageLayout* rx_;
};

std::string gen_package(const MappedSystem& sys) {
  const Domain& domain = sys.domain();
  Writer w;
  w.line("-- Boundary interface package for domain '" + domain.name() +
         "' — generated by the xtsoc model compiler. DO NOT EDIT.");
  w.line("-- The C header sw/" + lower(domain.name()) +
         "_iface.h carries the same constants: both are rendered from one");
  w.line("-- InterfaceSpec, so the two halves fit together by construction.");
  w.line("library ieee;");
  w.line("use ieee.std_logic_1164.all;");
  w.line("use ieee.numeric_std.all;");
  w.line();
  w.open("package " + lower(domain.name()) + "_pkg is");
  w.line("constant XT_IFACE_DIGEST : string := \"" +
         sys.interface().digest(domain) + "\";");
  int max_bits = 1;
  for (const auto& m : sys.interface().messages()) {
    max_bits = std::max(max_bits, m.payload_bits);
  }
  w.line("constant MSG_MAX_BITS : natural := " + std::to_string(max_bits) +
         ";");
  for (const auto& m : sys.interface().messages()) {
    std::string mc = msg_const(domain, m);
    w.line("-- " + m.name + " (" + mapping::to_string(m.direction) + ")");
    w.line("constant " + mc + "_OPCODE : natural := " +
           std::to_string(m.opcode) + ";");
    w.line("constant " + mc + "_BITS : natural := " +
           std::to_string(m.payload_bits) + ";");
    for (const auto& f : m.fields) {
      std::string fname = f.name == "_target" ? "TARGET" : upper(f.name);
      w.line("constant " + mc + "_F_" + fname + "_OFF : natural := " +
             std::to_string(f.offset_bits) + ";");
      w.line("constant " + mc + "_F_" + fname + "_W : natural := " +
             std::to_string(f.width_bits) + ";");
    }
  }
  w.line("subtype t_handle is unsigned(47 downto 0);");
  w.line("type t_handle_set is array (0 to 255) of t_handle;");
  w.close("end package;");
  return w.str();
}

std::string gen_entity(const MappedSystem& sys, const ClassDef& cls) {
  const Domain& domain = sys.domain();
  const mapping::ClassMapping& cm = sys.mapping_of(cls.id);
  Writer w;
  w.line("-- Entity for hardware class '" + cls.name +
         "' — generated by the xtsoc model compiler. DO NOT EDIT.");
  w.line("-- Mapping: pool of " + std::to_string(cm.max_instances) +
         " parallel FSM instances, clock domain " +
         std::to_string(cm.clock_domain) +
         ", one signal consumed per instance per clock.");
  w.line("library ieee;");
  w.line("use ieee.std_logic_1164.all;");
  w.line("use ieee.numeric_std.all;");
  w.line("use work." + lower(domain.name()) + "_pkg.all;");
  w.line();
  w.open("entity " + lower(cls.name) + " is");
  w.open("port (");
  w.line("clk        : in  std_logic;");
  w.line("rst        : in  std_logic;");
  w.line("rx_valid   : in  std_logic;");
  w.line("rx_opcode  : in  unsigned(15 downto 0);");
  w.line("rx_payload : in  std_logic_vector(MSG_MAX_BITS - 1 downto 0);");
  w.line("tx_valid   : out std_logic;");
  w.line("tx_opcode  : out unsigned(15 downto 0);");
  w.line("tx_payload : out std_logic_vector(MSG_MAX_BITS - 1 downto 0)");
  w.close(");");
  w.close("end entity;");
  w.line();
  w.open("architecture rtl of " + lower(cls.name) + " is");
  w.line("constant " + upper(cls.name) + "_POOL : natural := " +
         std::to_string(cm.max_instances) + ";");
  if (!cls.states.empty()) {
    std::string st = "type state_t is (";
    for (std::size_t i = 0; i < cls.states.size(); ++i) {
      if (i > 0) st += ", ";
      st += "ST_" + upper(cls.states[i].name);
    }
    st += ");";
    w.line(st);
    w.line("type t_state_arr is array (0 to " + upper(cls.name) +
           "_POOL - 1) of state_t;");
  }
  for (const auto& a : cls.attributes) {
    w.line("type t_" + a.name + "_arr is array (0 to " + upper(cls.name) +
           "_POOL - 1) of " + vhdl_type(a.type) + ";");
  }
  w.close("begin");
  w.line();
  w.open("fsm : process(clk)");
  if (!cls.states.empty()) {
    w.line("variable v_state : t_state_arr := (others => ST_" +
           upper(cls.states[cls.initial_state.value()].name) + ");");
  }
  for (const auto& a : cls.attributes) {
    w.line("variable v_" + a.name + " : t_" + a.name + "_arr := (others => " +
           vhdl_zero(a.type) + ");");
  }
  w.line("variable idx : natural;");
  w.line("variable sel_h : t_handle;");

  // Per-state local variables (unique-prefixed).
  const oal::CompiledClass& cc = sys.compiled().cls(cls.id);
  std::vector<std::unique_ptr<VhdlTranslator>> translators;
  for (const auto& st : cls.states) {
    // Which boundary message (if any) enters this state? The rx layout
    // provides the param fields.
    const mapping::MessageLayout* rx = nullptr;
    for (const auto& t : cls.transitions) {
      if (t.to == st.id) {
        rx = sys.interface().find(cls.id, t.event);
        if (rx != nullptr) break;
      }
    }
    translators.push_back(std::make_unique<VhdlTranslator>(
        sys, cls, cc.state_actions[st.id.value()], st.name, rx));
    translators.back()->declare_locals(w);
  }

  w.dedent();  // close the declarative part: "begin" re-opens the body
  w.open("begin");
  w.open("if rising_edge(clk) then");
  w.open("if rst = '1' then");
  if (!cls.states.empty()) {
    w.line("v_state := (others => ST_" +
           upper(cls.states[cls.initial_state.value()].name) + ");");
  }
  for (const auto& a : cls.attributes) {
    w.line("v_" + a.name + " := (others => " + vhdl_zero(a.type) + ");");
  }
  w.line("tx_valid <= '0';");
  w.dedent();
  w.open("else");
  w.line("tx_valid <= '0';");
  w.open("if rx_valid = '1' then");
  w.line("-- instance index: bits 16..39 of the target-handle field");
  w.line("idx := to_integer(unsigned(rx_payload(39 downto 16)));");
  w.open("case to_integer(rx_opcode) is");

  for (const auto& m : sys.interface().messages()) {
    if (m.target_class != cls.id) continue;
    const xtuml::EventDef& ev = cls.event(m.event);
    std::string mc = msg_const(domain, m);
    w.open("when " + mc + "_OPCODE =>  -- " + m.name);
    w.open("case v_state(idx) is");
    bool any = false;
    for (const auto& t : cls.transitions) {
      if (t.event != ev.id) continue;
      any = true;
      w.open("when ST_" + upper(cls.state(t.from).name) + " =>");
      w.line("v_state(idx) := ST_" + upper(cls.state(t.to).name) + ";");
      w.line("-- actions of state " + cls.state(t.to).name);
      translators[t.to.value()]->emit_body(w);
      w.dedent();
    }
    if (!any) w.line("-- no transitions on this event");
    w.line("when others => null;  -- event ignored in other states");
    w.close("end case;");
    w.dedent();
  }
  w.line("when others => null;  -- unknown opcode");
  w.close("end case;");
  w.close("end if;");
  w.close("end if;");
  w.close("end if;");
  w.close("end process;");
  w.line();
  w.line("end architecture;");
  return w.str();
}

}  // namespace

Output generate_vhdl(const MappedSystem& sys, DiagnosticSink& sink) {
  (void)sink;
  Output out;
  const Domain& domain = sys.domain();
  out.files.push_back(
      {"hw/" + lower(domain.name()) + "_pkg.vhd", gen_package(sys)});
  for (const auto& c : domain.classes()) {
    if (!sys.partition().is_hardware(c.id)) continue;
    out.files.push_back({"hw/" + lower(c.name) + ".vhd", gen_entity(sys, c)});
  }
  return out;
}

}  // namespace xtsoc::codegen
