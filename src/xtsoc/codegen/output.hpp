// Generated-text containers shared by both backends.
#pragma once

#include <string>
#include <vector>

#include "xtsoc/common/strings.hpp"

namespace xtsoc::codegen {

struct GeneratedFile {
  std::string path;     ///< suggested relative path, e.g. "sw/consumer.c"
  std::string content;
};

struct Output {
  std::vector<GeneratedFile> files;

  const GeneratedFile* find(std::string_view path) const {
    for (const auto& f : files) {
      if (f.path == path) return &f;
    }
    return nullptr;
  }

  std::size_t total_lines() const {
    std::size_t n = 0;
    for (const auto& f : files) n += count_lines(f.content);
    return n;
  }

  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& f : files) n += f.content.size();
    return n;
  }
};

}  // namespace xtsoc::codegen
