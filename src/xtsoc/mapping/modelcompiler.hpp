// The model compiler front half: marks + compiled model -> MappedSystem.
//
// "At system construction time, the conceptual objects are mapped to
// hardware and software" (paper §4). A MappedSystem is everything
// downstream consumers need: the partition, the synthesized boundary
// interface, and per-class mapping attributes (clock domain, pool size).
// The text backends (src/xtsoc/codegen) and the executable backends
// (src/xtsoc/cosim) both start from a MappedSystem, which is how the
// "single consistent set of architectural rules" stays single.
#pragma once

#include <memory>

#include "xtsoc/mapping/interface.hpp"
#include "xtsoc/mapping/partition.hpp"

namespace xtsoc::mapping {

/// Mapping attributes of one class, resolved from marks with defaults.
struct ClassMapping {
  ClassId cls;
  marks::Target target = marks::Target::kSoftware;
  int clock_domain = 0;    ///< hardware classes: which clock drives the FSM
  int priority = 0;        ///< software classes: task priority
  int max_instances = 64;  ///< hardware classes: instance pool capacity
  int int_width = 32;      ///< wire width of int fields
};

class MappedSystem {
public:
  MappedSystem(const oal::CompiledDomain& compiled, Partition partition,
               InterfaceSpec interface, std::vector<ClassMapping> class_maps,
               int bus_latency)
      : compiled_(&compiled), partition_(std::move(partition)),
        interface_(std::move(interface)), class_maps_(std::move(class_maps)),
        bus_latency_(bus_latency) {}

  const oal::CompiledDomain& compiled() const { return *compiled_; }
  const xtuml::Domain& domain() const { return compiled_->domain(); }
  const Partition& partition() const { return partition_; }
  const InterfaceSpec& interface() const { return interface_; }
  const ClassMapping& mapping_of(ClassId cls) const {
    return class_maps_.at(cls.value());
  }
  const std::vector<ClassMapping>& class_mappings() const {
    return class_maps_;
  }
  /// Cross-boundary signal latency in hardware clock ticks.
  int bus_latency() const { return bus_latency_; }

  /// Conservative lookahead of the mapped interconnect, in hardware clock
  /// cycles: no frame sent at cycle c can become deliverable before
  /// c + lookahead(). On the mesh this is the NIC-egress link traversal
  /// (link_latency; the full path is at least one hop more); on the bus it
  /// is the busLatency mark, floored at 1 so a zero-latency bus degrades
  /// to per-cycle lockstep rather than an illegal window. This is the
  /// static bound the windowed co-simulation scheduler builds on
  /// (src/xtsoc/cosim/cosim.hpp).
  int lookahead() const {
    if (partition_.mesh().enabled) return partition_.mesh().link_latency;
    return bus_latency_ > 1 ? bus_latency_ : 1;
  }

private:
  const oal::CompiledDomain* compiled_;
  Partition partition_;
  InterfaceSpec interface_;
  std::vector<ClassMapping> class_maps_;
  int bus_latency_;
};

/// Run the whole mapping pipeline:
///   validate marks -> compute partition -> validate partition ->
///   synthesize interface -> resolve class mappings.
/// Returns nullptr (with diagnostics in `sink`) if any stage fails.
std::unique_ptr<MappedSystem> map_system(const oal::CompiledDomain& compiled,
                                         const marks::MarkSet& marks,
                                         DiagnosticSink& sink);

}  // namespace xtsoc::mapping
