// Archetype templates: the textual mapping rules a model compiler
// interprets (paper §4: "Repeatable mappings are defined that produce
// compilable text ... according to a single consistent set of architectural
// rules").
//
// An archetype is a text skeleton with three constructs:
//   ${name}                  — substitute a scalar binding
//   %for item in list% ... %end%
//                            — repeat the body once per element, binding
//                              ${item} (and ${item.key} for record lists)
//   %if name% ... %end%      — include body when the binding is truthy
//                              ("": false, anything else: true)
// Nesting is supported. Unknown ${names} render as-is, so generated code
// containing literal "$" is safe.
#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "xtsoc/common/diagnostics.hpp"

namespace xtsoc::mapping {

class Bindings;

/// A list element: either a plain string (bound to ${item}) or a record
/// (fields bound to ${item.field}).
using Record = std::map<std::string, std::string>;
using ListItem = std::variant<std::string, Record>;

class Bindings {
public:
  Bindings& set(std::string name, std::string value);
  Bindings& set_list(std::string name, std::vector<ListItem> items);

  const std::string* scalar(const std::string& name) const;
  const std::vector<ListItem>* list(const std::string& name) const;

private:
  std::map<std::string, std::string> scalars_;
  std::map<std::string, std::vector<ListItem>> lists_;
};

/// Render `archetype` with `bindings`. Structural errors (unclosed %for%,
/// unknown list) are reported to `sink`; rendering continues best-effort.
std::string render_archetype(std::string_view archetype,
                             const Bindings& bindings, DiagnosticSink& sink);

}  // namespace xtsoc::mapping
