#include "xtsoc/mapping/modelcompiler.hpp"

namespace xtsoc::mapping {

std::unique_ptr<MappedSystem> map_system(const oal::CompiledDomain& compiled,
                                         const marks::MarkSet& marks,
                                         DiagnosticSink& sink) {
  const xtuml::Domain& domain = compiled.domain();

  if (!marks.validate(domain, sink)) return nullptr;

  Partition partition = Partition::from_marks(domain, marks);
  if (!validate_partition(compiled, partition, sink)) return nullptr;

  const std::size_t before = sink.error_count();
  InterfaceSpec interface =
      synthesize_interface(compiled, partition, marks, sink);
  if (sink.error_count() != before) return nullptr;

  std::vector<ClassMapping> maps;
  maps.reserve(domain.class_count());
  for (const auto& c : domain.classes()) {
    ClassMapping m;
    m.cls = c.id;
    m.target = partition.target_of(c.id);
    m.clock_domain =
        static_cast<int>(marks.class_mark_int(c.name, marks::kClockDomain, 0));
    m.priority =
        static_cast<int>(marks.class_mark_int(c.name, marks::kPriority, 0));
    m.max_instances = static_cast<int>(
        marks.class_mark_int(c.name, marks::kMaxInstances, 64));
    m.int_width =
        static_cast<int>(marks.class_mark_int(c.name, marks::kIntWidth, 32));
    maps.push_back(m);
  }

  int bus_latency =
      static_cast<int>(marks.domain_mark_int(marks::kBusLatency, 4));

  return std::make_unique<MappedSystem>(compiled, std::move(partition),
                                        std::move(interface), std::move(maps),
                                        bus_latency);
}

}  // namespace xtsoc::mapping
