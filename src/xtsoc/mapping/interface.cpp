#include "xtsoc/mapping/interface.hpp"

#include <bit>
#include <sstream>

#include "xtsoc/mapping/classrefs.hpp"

namespace xtsoc::mapping {

const char* to_string(Direction d) {
  return d == Direction::kToHardware ? "sw->hw" : "hw->sw";
}

const MessageLayout* InterfaceSpec::find(ClassId target_class,
                                         EventId event) const {
  for (const auto& m : messages_) {
    if (m.target_class == target_class && m.event == event) return &m;
  }
  return nullptr;
}

const MessageLayout* InterfaceSpec::find_opcode(std::uint32_t opcode) const {
  for (const auto& m : messages_) {
    if (m.opcode == opcode) return &m;
  }
  return nullptr;
}

std::size_t InterfaceSpec::count(Direction d) const {
  std::size_t n = 0;
  for (const auto& m : messages_) {
    if (m.direction == d) ++n;
  }
  return n;
}

std::string InterfaceSpec::canonical_text(const xtuml::Domain& domain) const {
  std::ostringstream os;
  for (const auto& m : messages_) {
    os << "msg " << m.opcode << ' ' << to_string(m.direction) << ' '
       << domain.cls(m.target_class).name << '.'
       << domain.cls(m.target_class).event(m.event).name << " bits="
       << m.payload_bits;
    for (const auto& f : m.fields) {
      os << ' ' << f.name << ':' << xtuml::to_string(f.type) << '@'
         << f.offset_bits << '+' << f.width_bits;
    }
    os << '\n';
  }
  return os.str();
}

std::string InterfaceSpec::digest(const xtuml::Domain& domain) const {
  std::string text = canonical_text(domain);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

namespace {

int width_of(xtuml::DataType type, int int_width) {
  switch (type) {
    case xtuml::DataType::kBool:
      return 1;
    case xtuml::DataType::kInt:
      return int_width;
    case xtuml::DataType::kReal:
      return 64;
    case xtuml::DataType::kInstRef:
      return kHandleBits;
    default:
      return 0;  // string / void are rejected before this is used
  }
}

}  // namespace

InterfaceSpec synthesize_interface(const oal::CompiledDomain& compiled,
                                   const Partition& partition,
                                   const marks::MarkSet& marks,
                                   DiagnosticSink& sink) {
  const xtuml::Domain& domain = compiled.domain();
  InterfaceSpec spec;

  // Collect boundary (target class, event) pairs. Iterating classes and
  // events in id order keeps opcode assignment deterministic, which keeps
  // digests stable — the property the cosim handshake relies on.
  std::vector<std::vector<bool>> boundary(domain.class_count());
  for (const auto& c : domain.classes()) {
    boundary[c.id.value()].resize(c.events.size(), false);
  }
  for (const auto& sender : domain.classes()) {
    ClassRefs refs = collect_class_refs(compiled, sender.id);
    for (const auto& [target, event] : refs.generates) {
      // Mesh-placed classes on different tiles need a wire message even
      // when both are hardware: tiles share no memory, only the network.
      if (partition.crosses_interconnect(sender.id, target)) {
        boundary[target.value()][event.value()] = true;
      }
    }
  }

  std::uint32_t next_opcode = 0;
  for (const auto& c : domain.classes()) {
    const int int_width = static_cast<int>(
        marks.class_mark_int(c.name, marks::kIntWidth, 32));
    for (const auto& ev : c.events) {
      if (!boundary[c.id.value()][ev.id.value()]) continue;

      MessageLayout m;
      m.opcode = next_opcode++;
      m.target_class = c.id;
      m.event = ev.id;
      m.direction = partition.is_hardware(c.id) ? Direction::kToHardware
                                                : Direction::kToSoftware;
      m.name = c.name + "." + ev.name;

      int offset = 0;
      FieldLayout target_field;
      target_field.name = "_target";
      target_field.type = xtuml::DataType::kInstRef;
      target_field.offset_bits = offset;
      target_field.width_bits = kHandleBits;
      offset += kHandleBits;
      m.fields.push_back(target_field);

      for (const auto& p : ev.params) {
        if (p.type == xtuml::DataType::kString) {
          sink.error("mapping.iface.string",
                     "boundary message " + m.name + ": parameter '" + p.name +
                         "' is a string and cannot cross the hardware/"
                         "software boundary");
          continue;
        }
        FieldLayout f;
        f.name = p.name;
        f.type = p.type;
        f.offset_bits = offset;
        f.width_bits = width_of(p.type, int_width);
        offset += f.width_bits;
        m.fields.push_back(f);
      }
      m.payload_bits = offset;
      spec.messages_.push_back(std::move(m));
    }
  }
  return spec;
}

// --- bit-level serialization ---------------------------------------------------

namespace {

class BitWriter {
public:
  explicit BitWriter(int total_bits)
      : bytes_(static_cast<std::size_t>((total_bits + 7) / 8), 0) {}

  void put(int offset, int width, std::uint64_t value) {
    for (int i = 0; i < width; ++i) {
      if ((value >> i) & 1u) {
        int bit = offset + i;
        bytes_[static_cast<std::size_t>(bit / 8)] |=
            static_cast<std::uint8_t>(1u << (bit % 8));
      }
    }
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

private:
  std::vector<std::uint8_t> bytes_;
};

class BitReader {
public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint64_t get(int offset, int width) const {
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      int bit = offset + i;
      if (bytes_[static_cast<std::size_t>(bit / 8)] & (1u << (bit % 8))) {
        v |= (1ULL << i);
      }
    }
    return v;
  }

private:
  const std::vector<std::uint8_t>& bytes_;
};

std::uint64_t handle_to_bits(const runtime::InstanceHandle& h) {
  if (h.is_null()) return (0xffULL << 40);  // class=0xff marks null
  std::uint64_t cls = h.cls.value() & 0xffULL;
  std::uint64_t idx = h.index & 0xffffffULL;
  std::uint64_t gen = h.generation & 0xffffULL;
  return (cls << 40) | (idx << 16) | gen;
}

runtime::InstanceHandle handle_from_bits(std::uint64_t bits) {
  std::uint64_t cls = (bits >> 40) & 0xff;
  if (cls == 0xff) return runtime::InstanceHandle::null();
  runtime::InstanceHandle h;
  h.cls = ClassId(static_cast<ClassId::underlying_type>(cls));
  h.index = static_cast<std::uint32_t>((bits >> 16) & 0xffffff);
  h.generation = static_cast<std::uint32_t>(bits & 0xffff);
  return h;
}

std::uint64_t value_to_bits(const FieldLayout& f, const runtime::Value& v) {
  switch (f.type) {
    case xtuml::DataType::kBool:
      return runtime::as_bool(v) ? 1 : 0;
    case xtuml::DataType::kInt: {
      std::uint64_t raw = static_cast<std::uint64_t>(runtime::as_int(v));
      if (f.width_bits < 64) raw &= (1ULL << f.width_bits) - 1;  // truncate
      return raw;
    }
    case xtuml::DataType::kReal:
      return std::bit_cast<std::uint64_t>(runtime::as_real(v));
    case xtuml::DataType::kInstRef:
      return handle_to_bits(runtime::as_handle(v));
    default:
      throw std::runtime_error("unencodable field type");
  }
}

runtime::Value bits_to_value(const FieldLayout& f, std::uint64_t bits) {
  switch (f.type) {
    case xtuml::DataType::kBool:
      return bits != 0;
    case xtuml::DataType::kInt: {
      // Sign-extend from the field width.
      if (f.width_bits < 64 && (bits & (1ULL << (f.width_bits - 1)))) {
        bits |= ~((1ULL << f.width_bits) - 1);
      }
      return static_cast<std::int64_t>(bits);
    }
    case xtuml::DataType::kReal:
      return std::bit_cast<double>(bits);
    case xtuml::DataType::kInstRef:
      return handle_from_bits(bits);
    default:
      throw std::runtime_error("undecodable field type");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_payload(
    const MessageLayout& layout, const runtime::InstanceHandle& target,
    const std::vector<runtime::Value>& args) {
  if (args.size() + 1 != layout.fields.size()) {
    throw std::runtime_error("encode_payload: arg count mismatch for " +
                             layout.name);
  }
  BitWriter w(layout.payload_bits);
  w.put(layout.fields[0].offset_bits, layout.fields[0].width_bits,
        handle_to_bits(target));
  for (std::size_t i = 1; i < layout.fields.size(); ++i) {
    const FieldLayout& f = layout.fields[i];
    w.put(f.offset_bits, f.width_bits, value_to_bits(f, args[i - 1]));
  }
  return w.take();
}

DecodedPayload decode_payload(const MessageLayout& layout,
                              const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != static_cast<std::size_t>(layout.payload_bytes())) {
    throw std::runtime_error("decode_payload: size mismatch for " +
                             layout.name);
  }
  BitReader r(bytes);
  DecodedPayload out;
  out.target = handle_from_bits(
      r.get(layout.fields[0].offset_bits, layout.fields[0].width_bits));
  for (std::size_t i = 1; i < layout.fields.size(); ++i) {
    const FieldLayout& f = layout.fields[i];
    out.args.push_back(bits_to_value(f, r.get(f.offset_bits, f.width_bits)));
  }
  return out;
}

}  // namespace xtsoc::mapping
