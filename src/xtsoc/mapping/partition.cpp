#include "xtsoc/mapping/partition.hpp"

#include <algorithm>
#include <sstream>
#include <variant>

#include "xtsoc/mapping/classrefs.hpp"
#include "xtsoc/noc/topology.hpp"

namespace xtsoc::mapping {

Partition Partition::from_marks(const xtuml::Domain& domain,
                                const marks::MarkSet& marks) {
  Partition p;
  p.by_class_.resize(domain.class_count(), marks::Target::kSoftware);
  for (const auto& c : domain.classes()) {
    marks::Target t = marks.target_of(c.name);
    p.by_class_[c.id.value()] = t;
    if (t == marks::Target::kHardware) {
      p.hardware_.push_back(c.id);
    } else {
      p.software_.push_back(c.id);
    }
  }

  // Mesh placement: enabled by the presence of any tileX/tileY mark.
  // Dimensions default to the bounding box of the placement (plus the
  // software tile); marks::validate has already rejected inconsistent or
  // out-of-range placements.
  std::int64_t max_x = 0, max_y = 0;
  bool any_tiles = false;
  for (const auto& c : domain.classes()) {
    auto tx = marks.class_mark(c.name, marks::kTileX);
    auto ty = marks.class_mark(c.name, marks::kTileY);
    if (!tx && !ty) continue;
    any_tiles = true;
    max_x = std::max(max_x, marks.class_mark_int(c.name, marks::kTileX, 0));
    max_y = std::max(max_y, marks.class_mark_int(c.name, marks::kTileY, 0));
  }
  p.tile_by_class_.resize(domain.class_count(), 0);
  if (!any_tiles) return p;

  MeshSpec& m = p.mesh_;
  m.enabled = true;
  m.sw_x = static_cast<int>(marks.domain_mark_int(marks::kSwTileX, 0));
  m.sw_y = static_cast<int>(marks.domain_mark_int(marks::kSwTileY, 0));
  m.width = static_cast<int>(marks.domain_mark_int(
      marks::kMeshWidth, std::max(max_x, std::int64_t{m.sw_x}) + 1));
  m.height = static_cast<int>(marks.domain_mark_int(
      marks::kMeshHeight, std::max(max_y, std::int64_t{m.sw_y}) + 1));
  m.link_latency =
      static_cast<int>(marks.domain_mark_int(marks::kLinkLatency, 1));
  m.flit_bytes = static_cast<int>(marks.domain_mark_int(marks::kFlitBytes, 4));
  m.fifo_depth = static_cast<int>(marks.domain_mark_int(marks::kFifoDepth, 4));
  if (auto v = marks.domain_mark(marks::kTopology);
      v && std::holds_alternative<std::string>(*v)) {
    if (auto k = noc::topology_from_string(std::get<std::string>(*v))) {
      m.topology = *k;
    }
  }
  if (auto v = marks.domain_mark(marks::kRouting);
      v && std::holds_alternative<std::string>(*v)) {
    if (auto r = noc::routing_from_string(std::get<std::string>(*v))) {
      m.routing = *r;
    }
  }
  for (const auto& c : domain.classes()) {
    if (p.by_class_[c.id.value()] == marks::Target::kHardware) {
      p.tile_by_class_[c.id.value()] = m.index(
          static_cast<int>(marks.class_mark_int(c.name, marks::kTileX, 0)),
          static_cast<int>(marks.class_mark_int(c.name, marks::kTileY, 0)));
    } else {
      p.tile_by_class_[c.id.value()] = m.sw_tile();
    }
  }

  // Memory hierarchy: enabled by the presence of `dram.tile`. A mesh-only
  // feature (coherence rides the fabric); marks::validate has already
  // rejected a dram.tile off the mesh or on an occupied tile, and non-
  // power-of-two cache geometry.
  if (marks.domain_mark(marks::kDramTile)) {
    MemSpec& mem = p.mem_;
    mem.enabled = true;
    mem.dram_tile = static_cast<int>(marks.domain_mark_int(marks::kDramTile, 0));
    mem.sets = static_cast<int>(marks.domain_mark_int(marks::kCacheSets, 0));
    mem.ways = static_cast<int>(marks.domain_mark_int(marks::kCacheWays, 2));
    mem.line_bytes =
        static_cast<int>(marks.domain_mark_int(marks::kCacheLineBytes, 64));
    mem.hit_latency =
        static_cast<int>(marks.domain_mark_int(marks::kCacheHitLatency, 1));
    mem.t_rcd = static_cast<int>(marks.domain_mark_int(marks::kDramTRcd, 2));
    mem.t_cas = static_cast<int>(marks.domain_mark_int(marks::kDramTCas, 2));
    mem.t_rp = static_cast<int>(marks.domain_mark_int(marks::kDramTRp, 2));
    if (auto v = marks.domain_mark(marks::kMemWriteFraction)) {
      if (std::holds_alternative<double>(*v)) {
        mem.write_fraction = std::get<double>(*v);
      } else if (std::holds_alternative<std::int64_t>(*v)) {
        mem.write_fraction = static_cast<double>(std::get<std::int64_t>(*v));
      }
    }
  }
  return p;
}

int Partition::tile_of(ClassId cls) const {
  if (!mesh_.enabled || cls.value() >= tile_by_class_.size()) return 0;
  return tile_by_class_[cls.value()];
}

std::vector<int> Partition::hardware_tiles() const {
  std::vector<int> tiles;
  for (ClassId c : hardware_) {
    int t = tile_of(c);
    if (std::find(tiles.begin(), tiles.end(), t) == tiles.end()) {
      tiles.push_back(t);
    }
  }
  std::sort(tiles.begin(), tiles.end());
  return tiles;
}

marks::Target Partition::target_of(ClassId cls) const {
  if (cls.value() >= by_class_.size()) return marks::Target::kSoftware;
  return by_class_[cls.value()];
}

std::string Partition::to_string(const xtuml::Domain& domain) const {
  std::ostringstream os;
  os << "software: ";
  for (ClassId c : software_) os << domain.cls(c).name << ' ';
  os << "| hardware: ";
  for (ClassId c : hardware_) {
    os << domain.cls(c).name;
    if (mesh_.enabled) {
      int t = tile_of(c);
      os << "@(" << t % mesh_.width << ',' << t / mesh_.width << ')';
    }
    os << ' ';
  }
  if (mesh_.enabled) {
    os << "| " << noc::to_string(mesh_.topology) << ": " << mesh_.width << 'x'
       << mesh_.height << " sw@(" << mesh_.sw_x << ',' << mesh_.sw_y << ") ";
    if (mesh_.routing != noc::RoutePolicy::kXY) {
      os << "routing=" << noc::to_string(mesh_.routing) << ' ';
    }
  }
  return os.str();
}

namespace {

bool class_uses_strings(const xtuml::ClassDef& cls) {
  for (const auto& a : cls.attributes) {
    if (a.type == xtuml::DataType::kString) return true;
  }
  for (const auto& e : cls.events) {
    for (const auto& p : e.params) {
      if (p.type == xtuml::DataType::kString) return true;
    }
  }
  return false;
}

}  // namespace

bool validate_partition(const oal::CompiledDomain& compiled,
                        const Partition& partition, DiagnosticSink& sink) {
  const xtuml::Domain& domain = compiled.domain();
  const std::size_t before = sink.error_count();

  // Rule 1: no cross-boundary data access from any action.
  for (const auto& c : domain.classes()) {
    ClassRefs refs = collect_class_refs(compiled, c.id);
    for (ClassId touched : refs.touched) {
      if (partition.crosses_boundary(c.id, touched)) {
        sink.error("mapping.partition.data_cross",
                   "actions of '" + c.name + "' (" +
                       marks::to_string(partition.target_of(c.id)) +
                       ") access data of '" + domain.cls(touched).name +
                       "' (" +
                       marks::to_string(partition.target_of(touched)) +
                       "); only signals may cross the partition boundary");
      }
    }
  }

  // Rule 2: associations must not span the boundary.
  for (const auto& a : domain.associations()) {
    if (partition.crosses_boundary(a.a.cls, a.b.cls)) {
      sink.error("mapping.partition.assoc_cross",
                 "association " + a.name + " spans the partition boundary (" +
                     domain.cls(a.a.cls).name + " / " +
                     domain.cls(a.b.cls).name + ")");
    }
  }

  // Rules 1b/2b (mesh only): tiles are separate executors that share no
  // memory either, so data access and associations must stay on one tile.
  if (partition.mesh().enabled) {
    for (const auto& c : domain.classes()) {
      ClassRefs refs = collect_class_refs(compiled, c.id);
      for (ClassId touched : refs.touched) {
        if (!partition.crosses_boundary(c.id, touched) &&
            partition.tile_of(c.id) != partition.tile_of(touched)) {
          sink.error("mapping.partition.tile_data_cross",
                     "actions of '" + c.name + "' (tile " +
                         std::to_string(partition.tile_of(c.id)) +
                         ") access data of '" + domain.cls(touched).name +
                         "' (tile " +
                         std::to_string(partition.tile_of(touched)) +
                         "); only signals may cross tiles");
        }
      }
    }
    for (const auto& a : domain.associations()) {
      if (!partition.crosses_boundary(a.a.cls, a.b.cls) &&
          partition.tile_of(a.a.cls) != partition.tile_of(a.b.cls)) {
        sink.error("mapping.partition.tile_assoc_cross",
                   "association " + a.name + " spans mesh tiles (" +
                       domain.cls(a.a.cls).name + " / " +
                       domain.cls(a.b.cls).name + ")");
      }
    }
  }

  // Rule 3: hardware classes are string-free.
  for (ClassId hw : partition.hardware()) {
    const xtuml::ClassDef& c = domain.cls(hw);
    if (class_uses_strings(c)) {
      sink.error("mapping.partition.hw_string",
                 "hardware class '" + c.name +
                     "' uses string-typed attributes or event parameters, "
                     "which have no wire representation");
    }
    // Actions of hardware classes must not use string values at all.
    for (const auto& action : compiled.cls(hw).state_actions) {
      for (const auto& local : action.locals) {
        if (local.type.base == xtuml::DataType::kString) {
          sink.error("mapping.partition.hw_string",
                     "hardware class '" + c.name +
                         "' action uses string-typed local '" + local.name +
                         "'");
        }
      }
    }
  }

  return sink.error_count() == before;
}

}  // namespace xtsoc::mapping
