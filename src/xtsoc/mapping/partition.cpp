#include "xtsoc/mapping/partition.hpp"

#include <sstream>

#include "xtsoc/mapping/classrefs.hpp"

namespace xtsoc::mapping {

Partition Partition::from_marks(const xtuml::Domain& domain,
                                const marks::MarkSet& marks) {
  Partition p;
  p.by_class_.resize(domain.class_count(), marks::Target::kSoftware);
  for (const auto& c : domain.classes()) {
    marks::Target t = marks.target_of(c.name);
    p.by_class_[c.id.value()] = t;
    if (t == marks::Target::kHardware) {
      p.hardware_.push_back(c.id);
    } else {
      p.software_.push_back(c.id);
    }
  }
  return p;
}

marks::Target Partition::target_of(ClassId cls) const {
  if (cls.value() >= by_class_.size()) return marks::Target::kSoftware;
  return by_class_[cls.value()];
}

std::string Partition::to_string(const xtuml::Domain& domain) const {
  std::ostringstream os;
  os << "software: ";
  for (ClassId c : software_) os << domain.cls(c).name << ' ';
  os << "| hardware: ";
  for (ClassId c : hardware_) os << domain.cls(c).name << ' ';
  return os.str();
}

namespace {

bool class_uses_strings(const xtuml::ClassDef& cls) {
  for (const auto& a : cls.attributes) {
    if (a.type == xtuml::DataType::kString) return true;
  }
  for (const auto& e : cls.events) {
    for (const auto& p : e.params) {
      if (p.type == xtuml::DataType::kString) return true;
    }
  }
  return false;
}

}  // namespace

bool validate_partition(const oal::CompiledDomain& compiled,
                        const Partition& partition, DiagnosticSink& sink) {
  const xtuml::Domain& domain = compiled.domain();
  const std::size_t before = sink.error_count();

  // Rule 1: no cross-boundary data access from any action.
  for (const auto& c : domain.classes()) {
    ClassRefs refs = collect_class_refs(compiled, c.id);
    for (ClassId touched : refs.touched) {
      if (partition.crosses_boundary(c.id, touched)) {
        sink.error("mapping.partition.data_cross",
                   "actions of '" + c.name + "' (" +
                       marks::to_string(partition.target_of(c.id)) +
                       ") access data of '" + domain.cls(touched).name +
                       "' (" +
                       marks::to_string(partition.target_of(touched)) +
                       "); only signals may cross the partition boundary");
      }
    }
  }

  // Rule 2: associations must not span the boundary.
  for (const auto& a : domain.associations()) {
    if (partition.crosses_boundary(a.a.cls, a.b.cls)) {
      sink.error("mapping.partition.assoc_cross",
                 "association " + a.name + " spans the partition boundary (" +
                     domain.cls(a.a.cls).name + " / " +
                     domain.cls(a.b.cls).name + ")");
    }
  }

  // Rule 3: hardware classes are string-free.
  for (ClassId hw : partition.hardware()) {
    const xtuml::ClassDef& c = domain.cls(hw);
    if (class_uses_strings(c)) {
      sink.error("mapping.partition.hw_string",
                 "hardware class '" + c.name +
                     "' uses string-typed attributes or event parameters, "
                     "which have no wire representation");
    }
    // Actions of hardware classes must not use string values at all.
    for (const auto& action : compiled.cls(hw).state_actions) {
      for (const auto& local : action.locals) {
        if (local.type.base == xtuml::DataType::kString) {
          sink.error("mapping.partition.hw_string",
                     "hardware class '" + c.name +
                         "' action uses string-typed local '" + local.name +
                         "'");
        }
      }
    }
  }

  return sink.error_count() == before;
}

}  // namespace xtsoc::mapping
