#include "xtsoc/mapping/classrefs.hpp"

namespace xtsoc::mapping {

namespace {

using namespace oal;

class Collector {
public:
  explicit Collector(ClassRefs& out) : out_(out) {}

  void walk(const Block& b) {
    for (const auto& s : b.stmts) walk(*s);
  }

private:
  void walk(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kAttrAccess: {
        const auto& a = static_cast<const AttrAccessExpr&>(e);
        if (a.cls.is_valid()) out_.touched.insert(a.cls);
        walk(*a.object);
        break;
      }
      case ExprKind::kUnary:
        walk(*static_cast<const UnaryExpr&>(e).operand);
        break;
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        walk(*b.lhs);
        walk(*b.rhs);
        break;
      }
      case ExprKind::kCardinality:
        walk(*static_cast<const CardinalityExpr&>(e).operand);
        break;
      case ExprKind::kEmpty:
      case ExprKind::kNotEmpty:
        walk(*static_cast<const EmptyExpr&>(e).operand);
        break;
      case ExprKind::kMemRead:
        walk(*static_cast<const MemReadExpr&>(e).addr);
        break;
      default:
        break;  // literals and name references carry no class refs
    }
  }

  void walk(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        walk(*a.lvalue);
        walk(*a.rvalue);
        break;
      }
      case StmtKind::kCreate:
        out_.touched.insert(static_cast<const CreateStmt&>(s).cls);
        break;
      case StmtKind::kDelete: {
        const auto& d = static_cast<const DeleteStmt&>(s);
        // The deleted object's class is the expression's static type.
        if (d.object->type.cls.is_valid()) {
          out_.touched.insert(d.object->type.cls);
        }
        walk(*d.object);
        break;
      }
      case StmtKind::kGenerate: {
        const auto& g = static_cast<const GenerateStmt&>(s);
        if (g.target_class.is_valid()) {
          out_.signaled.insert(g.target_class);
          out_.generates.insert({g.target_class, g.event});
        }
        walk(*g.target);
        for (const auto& arg : g.args) walk(*arg.value);
        if (g.delay) walk(*g.delay);
        break;
      }
      case StmtKind::kSelectFrom: {
        const auto& sel = static_cast<const SelectFromStmt&>(s);
        if (sel.cls.is_valid()) out_.touched.insert(sel.cls);
        if (sel.where) walk(*sel.where);
        break;
      }
      case StmtKind::kSelectRelated: {
        const auto& sel = static_cast<const SelectRelatedStmt&>(s);
        if (sel.cls.is_valid()) out_.touched.insert(sel.cls);
        if (sel.assoc.is_valid()) out_.associations.insert(sel.assoc);
        walk(*sel.start);
        if (sel.where) walk(*sel.where);
        break;
      }
      case StmtKind::kRelate:
      case StmtKind::kUnrelate: {
        const auto& r = static_cast<const RelateStmt&>(s);
        if (r.assoc.is_valid()) out_.associations.insert(r.assoc);
        if (r.a->type.cls.is_valid()) out_.touched.insert(r.a->type.cls);
        if (r.b->type.cls.is_valid()) out_.touched.insert(r.b->type.cls);
        walk(*r.a);
        walk(*r.b);
        break;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        for (const auto& br : i.branches) {
          walk(*br.cond);
          walk(br.body);
        }
        if (i.else_body) walk(*i.else_body);
        break;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        walk(*w.cond);
        walk(w.body);
        break;
      }
      case StmtKind::kForEach: {
        const auto& f = static_cast<const ForEachStmt&>(s);
        walk(*f.set);
        walk(f.body);
        break;
      }
      case StmtKind::kLog: {
        const auto& l = static_cast<const LogStmt&>(s);
        for (const auto& a : l.args) walk(*a);
        break;
      }
      case StmtKind::kMemWrite: {
        const auto& m = static_cast<const MemWriteStmt&>(s);
        walk(*m.addr);
        walk(*m.value);
        break;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
      case StmtKind::kReturn:
        break;
    }
  }

  ClassRefs& out_;
};

}  // namespace

ClassRefs collect_class_refs(const oal::AnalyzedAction& action) {
  ClassRefs refs;
  Collector(refs).walk(action.ast);
  return refs;
}

ClassRefs collect_class_refs(const oal::CompiledDomain& compiled, ClassId cls) {
  ClassRefs refs;
  for (const auto& action : compiled.cls(cls).state_actions) {
    Collector(refs).walk(action.ast);
  }
  return refs;
}

}  // namespace xtsoc::mapping
