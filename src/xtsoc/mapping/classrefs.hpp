// Static analysis over analyzed action bodies: which classes does an action
// *touch* (data access: create/delete/select/relate/attribute access) and
// which does it merely *signal* (generate)?
//
// The distinction is the foundation of partition validity: data touches must
// stay inside one partition; signals may cross the boundary — the only
// inter-partition communication, matching the paper's "state machines
// communicate only by sending signals".
#pragma once

#include <set>
#include <utility>

#include "xtsoc/oal/compiled.hpp"
#include "xtsoc/oal/sema.hpp"

namespace xtsoc::mapping {

struct ClassRefs {
  /// Classes whose instances/attributes/links the action reads or writes.
  std::set<ClassId> touched;
  /// Classes the action sends signals to (generate targets).
  std::set<ClassId> signaled;
  /// Exact (target class, event) pairs of every generate statement.
  std::set<std::pair<ClassId, EventId>> generates;
  /// Associations the action navigates or mutates.
  std::set<AssociationId> associations;
};

/// Collect references from one analyzed action body.
ClassRefs collect_class_refs(const oal::AnalyzedAction& action);

/// Union of collect_class_refs over every state action of `cls`.
ClassRefs collect_class_refs(const oal::CompiledDomain& compiled, ClassId cls);

}  // namespace xtsoc::mapping
