// Partition: the hardware/software split induced by the marks, plus the
// validity rules a split must satisfy before the model compiler accepts it.
#pragma once

#include <vector>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/marks/marks.hpp"
#include "xtsoc/oal/compiled.hpp"

namespace xtsoc::mapping {

class Partition {
public:
  Partition() = default;

  /// Derive the split of `domain` from `marks` (unmarked = software).
  static Partition from_marks(const xtuml::Domain& domain,
                              const marks::MarkSet& marks);

  marks::Target target_of(ClassId cls) const;
  bool is_hardware(ClassId cls) const {
    return target_of(cls) == marks::Target::kHardware;
  }

  const std::vector<ClassId>& software() const { return software_; }
  const std::vector<ClassId>& hardware() const { return hardware_; }
  bool is_pure_software() const { return hardware_.empty(); }
  bool is_pure_hardware() const { return software_.empty(); }

  /// True when `a` and `b` are mapped to different technologies.
  bool crosses_boundary(ClassId a, ClassId b) const {
    return target_of(a) != target_of(b);
  }

  std::string to_string(const xtuml::Domain& domain) const;

private:
  std::vector<ClassId> software_;
  std::vector<ClassId> hardware_;
  std::vector<marks::Target> by_class_;  // indexed by ClassId
};

/// Enforce the rules that make a partition realizable:
///   1. Data access (create/delete/select/relate/attr) must not cross the
///      boundary — partitions share no memory; only signals cross.
///   2. Associations must not span the boundary (links are data).
///   3. Hardware classes may not use string-typed attributes or event
///      parameters (no wire representation).
///   4. Hardware classes receiving signals from software must be signaled
///      by value-safe payloads (checked via rule 3 on their events).
/// Returns false and reports via `sink` if any rule is violated.
bool validate_partition(const oal::CompiledDomain& compiled,
                        const Partition& partition, DiagnosticSink& sink);

}  // namespace xtsoc::mapping
