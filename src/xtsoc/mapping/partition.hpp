// Partition: the hardware/software split induced by the marks, plus the
// validity rules a split must satisfy before the model compiler accepts it.
#pragma once

#include <vector>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/marks/marks.hpp"
#include "xtsoc/noc/flit.hpp"
#include "xtsoc/oal/compiled.hpp"

namespace xtsoc::mapping {

/// Mesh interconnect geometry, derived from the domain-scope NoC marks.
/// Disabled (the legacy point-to-point bus) unless at least one class
/// carries tileX/tileY placement marks.
struct MeshSpec {
  bool enabled = false;
  int width = 1;
  int height = 1;
  /// Network shape and routing policy (`topology`/`routing` marks; the
  /// strings are parsed leniently here — marks::validate rejects unknown
  /// values, this derivation just falls back to the defaults).
  noc::TopologyKind topology = noc::TopologyKind::kMesh;
  noc::RoutePolicy routing = noc::RoutePolicy::kXY;
  int sw_x = 0, sw_y = 0;  ///< tile the software partition's CPU sits on
  int link_latency = 1;    ///< cycles per router-to-router hop
  int flit_bytes = 4;      ///< link width: payload bytes per flit
  int fifo_depth = 4;      ///< router input-buffer depth (= credits)

  int tiles() const { return width * height; }
  int index(int x, int y) const { return y * width + x; }
  int sw_tile() const { return index(sw_x, sw_y); }
};

/// Memory-hierarchy shape, derived from the `dram.*`/`cache.*` domain marks.
/// Disabled unless `dram.tile` is present (and only meaningful on a mesh:
/// coherence messages are fabric frames). `sets == 0` means no `cache.sets`
/// mark was given: the hierarchy runs uncached against the DRAM edge.
struct MemSpec {
  bool enabled = false;
  int dram_tile = 0;
  int sets = 0;
  int ways = 2;
  int line_bytes = 64;
  int hit_latency = 1;
  int t_rcd = 2;
  int t_cas = 2;
  int t_rp = 2;
  double write_fraction = 0.2;  ///< `memory` traffic pattern store mix
};

class Partition {
public:
  Partition() = default;

  /// Derive the split of `domain` from `marks` (unmarked = software),
  /// including the mesh placement when tile marks are present.
  static Partition from_marks(const xtuml::Domain& domain,
                              const marks::MarkSet& marks);

  marks::Target target_of(ClassId cls) const;
  bool is_hardware(ClassId cls) const {
    return target_of(cls) == marks::Target::kHardware;
  }

  const std::vector<ClassId>& software() const { return software_; }
  const std::vector<ClassId>& hardware() const { return hardware_; }
  bool is_pure_software() const { return hardware_.empty(); }
  bool is_pure_hardware() const { return software_.empty(); }

  /// True when `a` and `b` are mapped to different technologies.
  bool crosses_boundary(ClassId a, ClassId b) const {
    return target_of(a) != target_of(b);
  }

  // --- NoC placement ----------------------------------------------------------
  const MeshSpec& mesh() const { return mesh_; }
  const MemSpec& mem() const { return mem_; }
  /// Tile hosting `cls` (software classes live on the software tile).
  /// Always 0 when the mesh is disabled.
  int tile_of(ClassId cls) const;
  /// Tiles hosting at least one hardware class, ascending. One executable
  /// HwDomain is built per entry — the multi-domain growth of the mapping.
  std::vector<int> hardware_tiles() const;
  /// True when a signal between `a` and `b` must travel the interconnect:
  /// the classes live in different executors (different technology, or
  /// different tiles of the mesh).
  bool crosses_interconnect(ClassId a, ClassId b) const {
    return crosses_boundary(a, b) ||
           (mesh_.enabled && tile_of(a) != tile_of(b));
  }

  std::string to_string(const xtuml::Domain& domain) const;

private:
  std::vector<ClassId> software_;
  std::vector<ClassId> hardware_;
  std::vector<marks::Target> by_class_;  // indexed by ClassId
  MeshSpec mesh_;
  MemSpec mem_;
  std::vector<int> tile_by_class_;  // indexed by ClassId
};

/// Enforce the rules that make a partition realizable:
///   1. Data access (create/delete/select/relate/attr) must not cross the
///      boundary — partitions share no memory; only signals cross.
///   2. Associations must not span the boundary (links are data).
///   3. Hardware classes may not use string-typed attributes or event
///      parameters (no wire representation).
///   4. Hardware classes receiving signals from software must be signaled
///      by value-safe payloads (checked via rule 3 on their events).
/// Returns false and reports via `sink` if any rule is violated.
bool validate_partition(const oal::CompiledDomain& compiled,
                        const Partition& partition, DiagnosticSink& sink);

}  // namespace xtsoc::mapping
