#include "xtsoc/mapping/archetype.hpp"

#include <sstream>

namespace xtsoc::mapping {

Bindings& Bindings::set(std::string name, std::string value) {
  scalars_[std::move(name)] = std::move(value);
  return *this;
}

Bindings& Bindings::set_list(std::string name, std::vector<ListItem> items) {
  lists_[std::move(name)] = std::move(items);
  return *this;
}

const std::string* Bindings::scalar(const std::string& name) const {
  auto it = scalars_.find(name);
  return it == scalars_.end() ? nullptr : &it->second;
}

const std::vector<ListItem>* Bindings::list(const std::string& name) const {
  auto it = lists_.find(name);
  return it == lists_.end() ? nullptr : &it->second;
}

namespace {

/// Parsed template node.
struct Node {
  enum Kind { kText, kVar, kFor, kIf } kind = kText;
  std::string text;      // kText: literal; kVar: name; kFor: list name; kIf: cond
  std::string loop_var;  // kFor only
  std::vector<Node> body;
};

class TemplateParser {
public:
  TemplateParser(std::string_view src, DiagnosticSink& sink)
      : src_(src), sink_(sink) {}

  std::vector<Node> parse() { return parse_body(/*top_level=*/true); }

private:
  /// Parse until %end% (or EOF at top level). Consumes the closing %end%.
  std::vector<Node> parse_body(bool top_level) {
    std::vector<Node> out;
    std::string literal;
    auto flush = [&] {
      if (!literal.empty()) {
        Node n;
        n.kind = Node::kText;
        n.text = std::move(literal);
        literal.clear();
        out.push_back(std::move(n));
      }
    };

    while (pos_ < src_.size()) {
      if (src_[pos_] == '$' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '{') {
        std::size_t close = src_.find('}', pos_ + 2);
        if (close == std::string_view::npos) {
          literal += src_[pos_++];
          continue;
        }
        flush();
        Node n;
        n.kind = Node::kVar;
        n.text = std::string(src_.substr(pos_ + 2, close - pos_ - 2));
        out.push_back(std::move(n));
        pos_ = close + 1;
        continue;
      }
      if (src_[pos_] == '%') {
        std::size_t close = src_.find('%', pos_ + 1);
        if (close == std::string_view::npos) {
          literal += src_[pos_++];
          continue;
        }
        std::string directive(src_.substr(pos_ + 1, close - pos_ - 1));
        std::istringstream iss(directive);
        std::string word;
        iss >> word;
        if (word == "end") {
          flush();
          pos_ = close + 1;
          if (top_level) {
            sink_.error("archetype.end", "%end% without open %for%/%if%");
            continue;
          }
          closed_ = true;
          return out;
        }
        if (word == "for") {
          std::string var, in, list;
          iss >> var >> in >> list;
          if (in != "in" || var.empty() || list.empty()) {
            sink_.error("archetype.for", "malformed %for%: " + directive);
            pos_ = close + 1;
            continue;
          }
          flush();
          pos_ = close + 1;
          Node n;
          n.kind = Node::kFor;
          n.loop_var = var;
          n.text = list;
          closed_ = false;
          n.body = parse_body(/*top_level=*/false);
          if (!closed_) sink_.error("archetype.unclosed", "unclosed %for%");
          out.push_back(std::move(n));
          continue;
        }
        if (word == "if") {
          std::string cond;
          iss >> cond;
          flush();
          pos_ = close + 1;
          Node n;
          n.kind = Node::kIf;
          n.text = cond;
          closed_ = false;
          n.body = parse_body(/*top_level=*/false);
          if (!closed_) sink_.error("archetype.unclosed", "unclosed %if%");
          out.push_back(std::move(n));
          continue;
        }
        // Not a directive: emit literally (e.g. "100%" in generated text).
        literal += src_.substr(pos_, close - pos_ + 1);
        pos_ = close + 1;
        continue;
      }
      literal += src_[pos_++];
    }
    flush();
    if (!top_level) closed_ = false;
    return out;
  }

  std::string_view src_;
  DiagnosticSink& sink_;
  std::size_t pos_ = 0;
  bool closed_ = false;
};

class Renderer {
public:
  Renderer(const Bindings& bindings, DiagnosticSink& sink)
      : bindings_(bindings), sink_(sink) {}

  void render(const std::vector<Node>& nodes, std::ostream& os) {
    for (const Node& n : nodes) render_node(n, os);
  }

private:
  /// Resolve ${name}: loop-local bindings first, then globals.
  const std::string* lookup(const std::string& name) const {
    for (auto it = loop_scope_.rbegin(); it != loop_scope_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return bindings_.scalar(name);
  }

  void render_node(const Node& n, std::ostream& os) {
    switch (n.kind) {
      case Node::kText:
        os << n.text;
        break;
      case Node::kVar: {
        const std::string* v = lookup(n.text);
        if (v != nullptr) {
          os << *v;
        } else {
          os << "${" << n.text << "}";  // unknown: leave visible
        }
        break;
      }
      case Node::kFor: {
        const auto* items = bindings_.list(n.text);
        if (items == nullptr) {
          sink_.error("archetype.list", "unknown list '" + n.text + "'");
          return;
        }
        for (const ListItem& item : *items) {
          std::map<std::string, std::string> scope;
          if (const auto* s = std::get_if<std::string>(&item)) {
            scope[n.loop_var] = *s;
          } else {
            for (const auto& [k, v] : std::get<Record>(item)) {
              scope[n.loop_var + "." + k] = v;
            }
          }
          loop_scope_.push_back(std::move(scope));
          render(n.body, os);
          loop_scope_.pop_back();
        }
        break;
      }
      case Node::kIf: {
        const std::string* v = lookup(n.text);
        if (v != nullptr && !v->empty()) render(n.body, os);
        break;
      }
    }
  }

  const Bindings& bindings_;
  DiagnosticSink& sink_;
  std::vector<std::map<std::string, std::string>> loop_scope_;
};

}  // namespace

std::string render_archetype(std::string_view archetype,
                             const Bindings& bindings, DiagnosticSink& sink) {
  TemplateParser parser(archetype, sink);
  std::vector<Node> nodes = parser.parse();
  std::ostringstream os;
  Renderer(bindings, sink).render(nodes, os);
  return os.str();
}

}  // namespace xtsoc::mapping
