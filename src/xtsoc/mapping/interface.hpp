// Interface synthesis: the one place where the hardware/software boundary
// is defined (paper §4: "Mappings enable interface definition in one place,
// so that consistency is guaranteed").
//
// The model compiler scans every action for `generate` statements whose
// sender and target classes sit in different partitions. Each such
// (target class, event) pair becomes a boundary *message* with a fixed wire
// layout: an opcode, a target-instance field, and one bit-packed field per
// event parameter. Both code generators and both runtimes consume the SAME
// InterfaceSpec object, so the two halves fit together by construction —
// there is no hand-written interface to drift.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/mapping/partition.hpp"
#include "xtsoc/runtime/value.hpp"

namespace xtsoc::mapping {

/// Which side of the boundary a message is delivered to.
enum class Direction { kToHardware, kToSoftware };

const char* to_string(Direction d);

/// One bit-field of a boundary message payload.
struct FieldLayout {
  std::string name;
  xtuml::DataType type = xtuml::DataType::kInt;
  int offset_bits = 0;
  int width_bits = 0;
};

/// Wire layout of one boundary (class, event) message.
struct MessageLayout {
  std::uint32_t opcode = 0;  ///< unique across the whole interface
  ClassId target_class;
  EventId event;
  Direction direction = Direction::kToHardware;
  std::string name;  ///< "Class.event", for humans and codegen
  /// Target-instance addressing field, then one field per event parameter.
  std::vector<FieldLayout> fields;
  int payload_bits = 0;

  int payload_bytes() const { return (payload_bits + 7) / 8; }
};

/// Field widths used for the wire encoding of an instance handle:
/// class(8) | index(24) | generation(16) = 48 bits.
inline constexpr int kHandleBits = 48;

class InterfaceSpec {
public:
  const std::vector<MessageLayout>& messages() const { return messages_; }

  const MessageLayout* find(ClassId target_class, EventId event) const;
  const MessageLayout* find_opcode(std::uint32_t opcode) const;

  std::size_t message_count() const { return messages_.size(); }
  std::size_t count(Direction d) const;

  /// Canonical human-readable definition of the interface: one line per
  /// message with opcodes, field offsets and widths. Equality of canonical
  /// text == interface compatibility.
  std::string canonical_text(const xtuml::Domain& domain) const;

  /// Stable FNV-1a digest of the canonical text. Both sides of the cosim
  /// bus exchange digests at connect time; a mismatch is the "hand-coded
  /// interface drift" failure the paper's approach eliminates.
  std::string digest(const xtuml::Domain& domain) const;

  friend InterfaceSpec synthesize_interface(const oal::CompiledDomain&,
                                            const Partition&,
                                            const marks::MarkSet&,
                                            DiagnosticSink&);

private:
  std::vector<MessageLayout> messages_;
};

/// Compute the boundary interface of a partitioned model. Errors (e.g. a
/// string-typed parameter crossing the boundary) go to `sink`.
InterfaceSpec synthesize_interface(const oal::CompiledDomain& compiled,
                                   const Partition& partition,
                                   const marks::MarkSet& marks,
                                   DiagnosticSink& sink);

// --- payload serialization ---------------------------------------------------
// Used by the cosim bus: the sending side encodes with the SAME layout the
// receiving side decodes with, because both hold the same MessageLayout.

/// Bit-pack `args` (one Value per event parameter, in order) per `layout`.
std::vector<std::uint8_t> encode_payload(
    const MessageLayout& layout, const runtime::InstanceHandle& target,
    const std::vector<runtime::Value>& args);

struct DecodedPayload {
  runtime::InstanceHandle target;
  std::vector<runtime::Value> args;
};

/// Inverse of encode_payload. Throws std::runtime_error on size mismatch.
DecodedPayload decode_payload(const MessageLayout& layout,
                              const std::vector<std::uint8_t>& bytes);

}  // namespace xtsoc::mapping
