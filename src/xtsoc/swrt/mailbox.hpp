// Bounded mailbox: the software-side message queue primitive.
//
// The generated C for the software partition communicates through queues of
// exactly this shape; here it is also the landing zone for signals arriving
// from the cosim bus. An optional on_push hook lets a scheduler wake the
// owning task.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

namespace xtsoc::swrt {

template <typename T>
class Mailbox {
public:
  explicit Mailbox(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Returns false (and drops nothing) when the mailbox is full.
  bool push(T item) {
    if (buf_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    buf_.push_back(std::move(item));
    ++pushed_;
    if (on_push_) on_push_();
    return true;
  }

  std::optional<T> pop() {
    if (buf_.empty()) return std::nullopt;
    T item = std::move(buf_.front());
    buf_.pop_front();
    return item;
  }

  void set_on_push(std::function<void()> hook) { on_push_ = std::move(hook); }

  bool empty() const { return buf_.empty(); }
  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t pushed() const { return pushed_; }
  std::uint64_t dropped() const { return dropped_; }

private:
  std::size_t capacity_;
  std::deque<T> buf_;
  std::function<void()> on_push_;
  std::uint64_t pushed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace xtsoc::swrt
