// Cooperative priority scheduler: the single-tasking software environment
// the paper's software mapping targets ("fully synchronous, single tasking
// environments", §2).
//
// Tasks are step functions. A step does a bounded unit of work and returns
// true if it made progress; a task that reports no progress goes idle until
// notify()d (e.g. by a mailbox push). run_one() always picks the
// highest-priority ready task; ties break by task id (creation order), so
// scheduling is deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xtsoc/common/ids.hpp"

namespace xtsoc::snap {
class Writer;
class Reader;
}  // namespace xtsoc::snap

namespace xtsoc::swrt {

class Scheduler {
public:
  /// A step function: do one bounded unit of work, return whether any work
  /// was done. Returning false parks the task until notify().
  using StepFn = std::function<bool()>;

  TaskId spawn(std::string name, int priority, StepFn step);

  /// Mark a task ready (idempotent).
  void notify(TaskId task);

  /// Run one step of the highest-priority ready task.
  /// Returns false when no task is ready.
  bool run_one();

  /// Run until every task is idle. Returns steps executed.
  std::size_t run_until_idle(std::size_t max_steps = kNoLimit);

  bool idle() const;
  std::size_t task_count() const { return tasks_.size(); }
  const std::string& name_of(TaskId t) const;
  std::uint64_t steps_of(TaskId t) const;
  std::uint64_t total_steps() const { return total_steps_; }

  static constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

  // --- checkpointing ---------------------------------------------------------
  /// Serialize per-task ready flags and step counters (names, priorities
  /// and step functions are elaboration-owned). load_state requires the
  /// same task roster, spawned in the same order.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  struct Task {
    std::string name;
    int priority = 0;
    StepFn step;
    bool ready = true;
    std::uint64_t steps = 0;
  };

  Task& task(TaskId t);
  const Task& task(TaskId t) const;

  std::vector<Task> tasks_;
  std::uint64_t total_steps_ = 0;
};

}  // namespace xtsoc::swrt
