#include "xtsoc/swrt/scheduler.hpp"

#include <stdexcept>

#include "xtsoc/snap/io.hpp"

namespace xtsoc::swrt {

TaskId Scheduler::spawn(std::string name, int priority, StepFn step) {
  Task t;
  t.name = std::move(name);
  t.priority = priority;
  t.step = std::move(step);
  tasks_.push_back(std::move(t));
  return TaskId(static_cast<TaskId::underlying_type>(tasks_.size() - 1));
}

Scheduler::Task& Scheduler::task(TaskId t) {
  if (!t.is_valid() || t.value() >= tasks_.size()) {
    throw std::out_of_range("Scheduler: invalid TaskId");
  }
  return tasks_[t.value()];
}

const Scheduler::Task& Scheduler::task(TaskId t) const {
  return const_cast<Scheduler*>(this)->task(t);
}

void Scheduler::notify(TaskId t) { task(t).ready = true; }

bool Scheduler::run_one() {
  int best = -1;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!tasks_[i].ready) continue;
    if (best < 0 ||
        tasks_[i].priority > tasks_[static_cast<std::size_t>(best)].priority) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;
  Task& t = tasks_[static_cast<std::size_t>(best)];
  ++t.steps;
  ++total_steps_;
  if (!t.step()) t.ready = false;
  return true;
}

std::size_t Scheduler::run_until_idle(std::size_t max_steps) {
  std::size_t n = 0;
  while (n < max_steps && run_one()) ++n;
  return n;
}

bool Scheduler::idle() const {
  for (const Task& t : tasks_) {
    if (t.ready) return false;
  }
  return true;
}

const std::string& Scheduler::name_of(TaskId t) const { return task(t).name; }

std::uint64_t Scheduler::steps_of(TaskId t) const { return task(t).steps; }

void Scheduler::save_state(snap::Writer& w) const {
  w.u64(tasks_.size());
  for (const Task& t : tasks_) {
    w.boolean(t.ready);
    w.u64(t.steps);
  }
  w.u64(total_steps_);
}

void Scheduler::load_state(snap::Reader& r) {
  if (r.u64() != tasks_.size()) {
    throw snap::SnapError("scheduler snapshot task count mismatch");
  }
  for (Task& t : tasks_) {
    t.ready = r.boolean();
    t.steps = r.u64();
  }
  total_steps_ = r.u64();
}

}  // namespace xtsoc::swrt
