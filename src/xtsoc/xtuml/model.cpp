#include "xtsoc/xtuml/model.hpp"

#include <cassert>
#include <stdexcept>

namespace xtsoc::xtuml {

const AttributeDef* ClassDef::find_attribute(std::string_view n) const {
  for (const auto& a : attributes) {
    if (a.name == n) return &a;
  }
  return nullptr;
}

const EventDef* ClassDef::find_event(std::string_view n) const {
  for (const auto& e : events) {
    if (e.name == n) return &e;
  }
  return nullptr;
}

const StateDef* ClassDef::find_state(std::string_view n) const {
  for (const auto& s : states) {
    if (s.name == n) return &s;
  }
  return nullptr;
}

const AttributeDef& ClassDef::attribute(AttributeId aid) const {
  assert(aid.value() < attributes.size());
  return attributes[aid.value()];
}

const EventDef& ClassDef::event(EventId eid) const {
  assert(eid.value() < events.size());
  return events[eid.value()];
}

const StateDef& ClassDef::state(StateId sid) const {
  assert(sid.value() < states.size());
  return states[sid.value()];
}

const TransitionDef* ClassDef::transition_on(StateId from, EventId event) const {
  for (const auto& t : transitions) {
    if (t.from == from && t.event == event) return &t;
  }
  return nullptr;
}

const AssociationEnd& AssociationDef::end_for(ClassId cls) const {
  // For reflexive associations `a` is the canonical end.
  if (a.cls == cls) return a;
  assert(b.cls == cls);
  return b;
}

const AssociationEnd& AssociationDef::other_end(ClassId cls) const {
  if (a.cls == cls) return b;
  assert(b.cls == cls);
  return a;
}

ClassId Domain::add_class(std::string name, std::string key_letters) {
  ClassId id(static_cast<ClassId::underlying_type>(classes_.size()));
  ClassDef c;
  c.id = id;
  // Key letters default to the class name itself: names are unique, so the
  // default can never collide.
  if (key_letters.empty()) key_letters = name;
  c.name = std::move(name);
  c.key_letters = std::move(key_letters);
  classes_.push_back(std::move(c));
  return id;
}

AttributeId Domain::add_attribute(ClassId cid, std::string name, DataType type,
                                  std::optional<ScalarValue> default_value,
                                  ClassId ref_class) {
  ClassDef& c = cls(cid);
  AttributeId id(static_cast<AttributeId::underlying_type>(c.attributes.size()));
  c.attributes.push_back(
      {id, std::move(name), type, std::move(default_value), ref_class});
  return id;
}

EventId Domain::add_event(ClassId cid, std::string name,
                          std::vector<Parameter> params) {
  ClassDef& c = cls(cid);
  EventId id(static_cast<EventId::underlying_type>(c.events.size()));
  c.events.push_back({id, std::move(name), std::move(params), false});
  return id;
}

StateId Domain::add_state(ClassId cid, std::string name,
                          std::string action_source, bool is_final) {
  ClassDef& c = cls(cid);
  StateId id(static_cast<StateId::underlying_type>(c.states.size()));
  c.states.push_back({id, std::move(name), std::move(action_source), is_final});
  if (!c.initial_state.is_valid()) c.initial_state = id;
  return id;
}

TransitionId Domain::add_transition(ClassId cid, StateId from, EventId event,
                                    StateId to) {
  ClassDef& c = cls(cid);
  TransitionId id(
      static_cast<TransitionId::underlying_type>(c.transitions.size()));
  c.transitions.push_back({id, from, event, to});
  return id;
}

void Domain::set_initial_state(ClassId cid, StateId state) {
  cls(cid).initial_state = state;
}

AssociationId Domain::add_association(std::string name, AssociationEnd a,
                                      AssociationEnd b) {
  AssociationId id(static_cast<AssociationId::underlying_type>(assocs_.size()));
  assocs_.push_back({id, std::move(name), std::move(a), std::move(b)});
  return id;
}

const ClassDef& Domain::cls(ClassId id) const {
  if (!id.is_valid() || id.value() >= classes_.size()) {
    throw std::out_of_range("Domain::cls: invalid ClassId");
  }
  return classes_[id.value()];
}

ClassDef& Domain::cls(ClassId id) {
  if (!id.is_valid() || id.value() >= classes_.size()) {
    throw std::out_of_range("Domain::cls: invalid ClassId");
  }
  return classes_[id.value()];
}

const AssociationDef& Domain::association(AssociationId id) const {
  if (!id.is_valid() || id.value() >= assocs_.size()) {
    throw std::out_of_range("Domain::association: invalid AssociationId");
  }
  return assocs_[id.value()];
}

const ClassDef* Domain::find_class(std::string_view name) const {
  for (const auto& c : classes_) {
    if (c.name == name || c.key_letters == name) return &c;
  }
  return nullptr;
}

ClassId Domain::find_class_id(std::string_view name) const {
  const ClassDef* c = find_class(name);
  return c ? c->id : ClassId::invalid();
}

const AssociationDef* Domain::find_association(std::string_view name) const {
  for (const auto& a : assocs_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

std::vector<AssociationId> Domain::associations_of(ClassId cls) const {
  std::vector<AssociationId> out;
  for (const auto& a : assocs_) {
    if (a.touches(cls)) out.push_back(a.id);
  }
  return out;
}

std::size_t Domain::state_count() const {
  std::size_t n = 0;
  for (const auto& c : classes_) n += c.states.size();
  return n;
}

std::size_t Domain::transition_count() const {
  std::size_t n = 0;
  for (const auto& c : classes_) n += c.transitions.size();
  return n;
}

std::size_t Domain::event_count() const {
  std::size_t n = 0;
  for (const auto& c : classes_) n += c.events.size();
  return n;
}

}  // namespace xtsoc::xtuml
