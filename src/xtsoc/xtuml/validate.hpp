// Well-formedness rules for a Domain.
//
// Validation runs before compilation or execution; the model compiler
// refuses ill-formed models. Rules cover naming, referential integrity of
// states/events/transitions, association ends, and reachability.
#pragma once

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/xtuml/model.hpp"

namespace xtsoc::xtuml {

/// Check every well-formedness rule; append findings to `sink`.
/// Returns true iff no *errors* were found (warnings allowed).
bool validate(const Domain& domain, DiagnosticSink& sink);

}  // namespace xtsoc::xtuml
