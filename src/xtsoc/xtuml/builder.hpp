// Fluent builder over the Domain, used by examples and tests.
//
//   DomainBuilder b("Microwave");
//   auto oven = b.cls("Oven", "OVN")
//                   .attr("power_w", DataType::kInt, std::int64_t{600})
//                   .event("open_door")
//                   .event("start", {{"seconds", DataType::kInt}})
//                   .state("Idle", "...oal...")
//                   .state("Cooking", "...oal...")
//                   .transition("Idle", "start", "Cooking");
//
// The builder resolves names late, so states/events may be referenced in
// transitions before all of them exist only if already declared; it reports
// unknown names by throwing std::invalid_argument (builder misuse is a
// programming error, not user input).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "xtsoc/xtuml/model.hpp"

namespace xtsoc::xtuml {

class DomainBuilder;

/// Builder scoped to one class; created by DomainBuilder::cls().
class ClassBuilder {
public:
  ClassBuilder(Domain& domain, ClassId id) : domain_(domain), id_(id) {}

  ClassBuilder& attr(std::string name, DataType type,
                     std::optional<ScalarValue> default_value = {});
  /// inst_ref attribute pointing at class `ref_class_name`.
  ClassBuilder& ref_attr(std::string name, std::string ref_class_name);
  ClassBuilder& event(std::string name, std::vector<Parameter> params = {});
  ClassBuilder& state(std::string name, std::string action_source = {});
  ClassBuilder& final_state(std::string name, std::string action_source = {});
  ClassBuilder& transition(std::string from, std::string event, std::string to);
  ClassBuilder& initial(std::string state_name);
  ClassBuilder& on_unexpected(EventFallback fallback);

  ClassId id() const { return id_; }

private:
  StateId state_id(const std::string& name) const;
  EventId event_id(const std::string& name) const;

  Domain& domain_;
  ClassId id_;
};

/// Builder for a whole Domain.
class DomainBuilder {
public:
  explicit DomainBuilder(std::string name)
      : domain_(std::make_unique<Domain>(std::move(name))) {}

  ClassBuilder cls(std::string name, std::string key_letters = {});

  /// Re-open an already declared class — lets mutually-referential classes
  /// be declared first and fleshed out after. Throws on unknown name.
  ClassBuilder edit(std::string_view name);

  /// Build an inst_ref event parameter referring to class `class_name`
  /// (which must already be declared).
  Parameter ref_param(std::string name, std::string_view class_name) const;

  DomainBuilder& assoc(std::string name, std::string class_a, std::string role_a,
                       Multiplicity mult_a, std::string class_b,
                       std::string role_b, Multiplicity mult_b);

  Domain& domain() { return *domain_; }
  /// Relinquish ownership of the built domain.
  std::unique_ptr<Domain> take() { return std::move(domain_); }

private:
  std::unique_ptr<Domain> domain_;
};

}  // namespace xtsoc::xtuml
