#include "xtsoc/xtuml/types.hpp"

#include <sstream>

namespace xtsoc::xtuml {

const char* to_string(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt:
      return "int";
    case DataType::kReal:
      return "real";
    case DataType::kString:
      return "string";
    case DataType::kInstRef:
      return "inst_ref";
    case DataType::kVoid:
      return "void";
  }
  return "?";
}

DataType scalar_type(const ScalarValue& v) {
  switch (v.index()) {
    case 0:
      return DataType::kBool;
    case 1:
      return DataType::kInt;
    case 2:
      return DataType::kReal;
    default:
      return DataType::kString;
  }
}

std::string scalar_to_string(const ScalarValue& v) {
  std::ostringstream os;
  switch (v.index()) {
    case 0:
      os << (std::get<bool>(v) ? "true" : "false");
      break;
    case 1:
      os << std::get<std::int64_t>(v);
      break;
    case 2: {
      os << std::get<double>(v);
      std::string s = os.str();
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        os << ".0";
      }
      break;
    }
    default:
      os << '"' << std::get<std::string>(v) << '"';
      break;
  }
  return os.str();
}

const char* to_string(Multiplicity m) {
  switch (m) {
    case Multiplicity::kOne:
      return "1";
    case Multiplicity::kZeroOne:
      return "0..1";
    case Multiplicity::kMany:
      return "1..*";
    case Multiplicity::kZeroMany:
      return "*";
  }
  return "?";
}

bool is_many(Multiplicity m) {
  return m == Multiplicity::kMany || m == Multiplicity::kZeroMany;
}

bool is_conditional(Multiplicity m) {
  return m == Multiplicity::kZeroOne || m == Multiplicity::kZeroMany;
}

}  // namespace xtsoc::xtuml
