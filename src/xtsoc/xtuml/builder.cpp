#include "xtsoc/xtuml/builder.hpp"

namespace xtsoc::xtuml {

ClassBuilder& ClassBuilder::attr(std::string name, DataType type,
                                 std::optional<ScalarValue> default_value) {
  domain_.add_attribute(id_, std::move(name), type, std::move(default_value));
  return *this;
}

ClassBuilder& ClassBuilder::ref_attr(std::string name,
                                     std::string ref_class_name) {
  ClassId ref = domain_.find_class_id(ref_class_name);
  if (!ref.is_valid()) {
    throw std::invalid_argument("ref_attr: unknown class '" + ref_class_name +
                                "'");
  }
  domain_.add_attribute(id_, std::move(name), DataType::kInstRef, {}, ref);
  return *this;
}

ClassBuilder& ClassBuilder::event(std::string name,
                                  std::vector<Parameter> params) {
  domain_.add_event(id_, std::move(name), std::move(params));
  return *this;
}

ClassBuilder& ClassBuilder::state(std::string name, std::string action_source) {
  domain_.add_state(id_, std::move(name), std::move(action_source));
  return *this;
}

ClassBuilder& ClassBuilder::final_state(std::string name,
                                        std::string action_source) {
  domain_.add_state(id_, std::move(name), std::move(action_source),
                    /*is_final=*/true);
  return *this;
}

StateId ClassBuilder::state_id(const std::string& name) const {
  const StateDef* s = domain_.cls(id_).find_state(name);
  if (s == nullptr) {
    throw std::invalid_argument("unknown state '" + name + "' in class '" +
                                domain_.cls(id_).name + "'");
  }
  return s->id;
}

EventId ClassBuilder::event_id(const std::string& name) const {
  const EventDef* e = domain_.cls(id_).find_event(name);
  if (e == nullptr) {
    throw std::invalid_argument("unknown event '" + name + "' in class '" +
                                domain_.cls(id_).name + "'");
  }
  return e->id;
}

ClassBuilder& ClassBuilder::transition(std::string from, std::string event,
                                       std::string to) {
  domain_.add_transition(id_, state_id(from), event_id(event), state_id(to));
  return *this;
}

ClassBuilder& ClassBuilder::initial(std::string state_name) {
  domain_.set_initial_state(id_, state_id(state_name));
  return *this;
}

ClassBuilder& ClassBuilder::on_unexpected(EventFallback fallback) {
  domain_.cls(id_).fallback = fallback;
  return *this;
}

ClassBuilder DomainBuilder::cls(std::string name, std::string key_letters) {
  ClassId id = domain_->add_class(std::move(name), std::move(key_letters));
  return ClassBuilder(*domain_, id);
}

ClassBuilder DomainBuilder::edit(std::string_view name) {
  ClassId id = domain_->find_class_id(name);
  if (!id.is_valid()) {
    throw std::invalid_argument("edit: unknown class '" + std::string(name) +
                                "'");
  }
  return ClassBuilder(*domain_, id);
}

Parameter DomainBuilder::ref_param(std::string name,
                                   std::string_view class_name) const {
  ClassId id = domain_->find_class_id(class_name);
  if (!id.is_valid()) {
    throw std::invalid_argument("ref_param: unknown class '" +
                                std::string(class_name) + "'");
  }
  return Parameter{std::move(name), DataType::kInstRef, id};
}

DomainBuilder& DomainBuilder::assoc(std::string name, std::string class_a,
                                    std::string role_a, Multiplicity mult_a,
                                    std::string class_b, std::string role_b,
                                    Multiplicity mult_b) {
  ClassId a = domain_->find_class_id(class_a);
  ClassId b = domain_->find_class_id(class_b);
  if (!a.is_valid() || !b.is_valid()) {
    throw std::invalid_argument("assoc " + name + ": unknown class");
  }
  domain_->add_association(std::move(name),
                           {a, std::move(role_a), mult_a},
                           {b, std::move(role_b), mult_b});
  return *this;
}

}  // namespace xtsoc::xtuml
