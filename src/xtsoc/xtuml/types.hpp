// Core data types of the Executable UML subset.
//
// The paper's xtUML profile restricts attribute and event-parameter types to
// a small set that maps cleanly onto both C and VHDL. `DataType` is that set;
// `ScalarValue` holds a compile-time default for an attribute.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "xtsoc/common/ids.hpp"

namespace xtsoc::xtuml {

/// Types an attribute, event parameter, or action-language expression can have.
enum class DataType {
  kBool,
  kInt,     ///< signed 64-bit in the abstract semantics; width-mapped later
  kReal,    ///< IEEE double in the abstract semantics
  kString,  ///< software-only; a hardware-marked class may not use it
  kInstRef, ///< reference to an instance of some class
  kVoid,    ///< statement / no value (type-checker internal)
};

const char* to_string(DataType t);

/// A literal value usable as an attribute default. InstRef defaults are
/// always "empty", so they need no representation here.
using ScalarValue = std::variant<bool, std::int64_t, double, std::string>;

/// The DataType a ScalarValue carries.
DataType scalar_type(const ScalarValue& v);

/// Render a ScalarValue as action-language literal text.
std::string scalar_to_string(const ScalarValue& v);

/// A named, typed formal parameter of an event (signal). Parameters of
/// type kInstRef must declare the class they refer to in `ref_class`
/// (enforced by model validation) so actions can dereference and signal
/// through them with full static checking.
struct Parameter {
  std::string name;
  DataType type = DataType::kInt;
  ClassId ref_class = ClassId::invalid();  ///< required when kInstRef

  friend bool operator==(const Parameter&, const Parameter&) = default;
};

/// Multiplicity of one association end.
enum class Multiplicity { kOne, kZeroOne, kMany, kZeroMany };

const char* to_string(Multiplicity m);

/// True if the end may be related to more than one instance.
bool is_many(Multiplicity m);

/// True if the end may be unrelated (conditional in xtUML terms).
bool is_conditional(Multiplicity m);

}  // namespace xtsoc::xtuml
