#include "xtsoc/xtuml/validate.hpp"

#include <set>
#include <string>
#include <vector>

#include "xtsoc/common/strings.hpp"

namespace xtsoc::xtuml {

namespace {

void check_class_names(const Domain& d, DiagnosticSink& sink) {
  std::set<std::string> names;
  std::set<std::string> keys;
  for (const auto& c : d.classes()) {
    if (!is_identifier(c.name)) {
      sink.error("xtuml.class.name",
                 "class name '" + c.name + "' is not a valid identifier");
    }
    if (!names.insert(c.name).second) {
      sink.error("xtuml.class.duplicate", "duplicate class name '" + c.name + "'");
    }
    if (!c.key_letters.empty() && !keys.insert(c.key_letters).second) {
      sink.error("xtuml.class.keyletters",
                 "duplicate key letters '" + c.key_letters + "'");
    }
  }
}

void check_attributes(const ClassDef& c, const Domain& d, DiagnosticSink& sink) {
  std::set<std::string> names;
  for (const auto& a : c.attributes) {
    if (!is_identifier(a.name)) {
      sink.error("xtuml.attr.name", c.name + "." + a.name +
                                        ": attribute name is not an identifier");
    }
    if (!names.insert(a.name).second) {
      sink.error("xtuml.attr.duplicate",
                 c.name + ": duplicate attribute '" + a.name + "'");
    }
    if (a.type == DataType::kVoid) {
      sink.error("xtuml.attr.void",
                 c.name + "." + a.name + ": attribute may not be void");
    }
    if (a.type == DataType::kInstRef) {
      if (!a.ref_class.is_valid() || a.ref_class.value() >= d.class_count()) {
        sink.error("xtuml.attr.refclass",
                   c.name + "." + a.name +
                       ": inst_ref attribute must name an existing class");
      }
    }
    if (a.default_value && a.type != DataType::kInstRef &&
        scalar_type(*a.default_value) != a.type) {
      sink.error("xtuml.attr.default",
                 c.name + "." + a.name + ": default value has type " +
                     std::string(to_string(scalar_type(*a.default_value))) +
                     " but attribute is " + to_string(a.type));
    }
  }
}

void check_events(const ClassDef& c, const Domain& d, DiagnosticSink& sink) {
  std::set<std::string> names;
  for (const auto& e : c.events) {
    if (!is_identifier(e.name)) {
      sink.error("xtuml.event.name",
                 c.name + ": event name '" + e.name + "' is not an identifier");
    }
    if (!names.insert(e.name).second) {
      sink.error("xtuml.event.duplicate",
                 c.name + ": duplicate event '" + e.name + "'");
    }
    std::set<std::string> pnames;
    for (const auto& p : e.params) {
      if (!is_identifier(p.name)) {
        sink.error("xtuml.event.param", c.name + "." + e.name + ": parameter '" +
                                            p.name + "' is not an identifier");
      }
      if (!pnames.insert(p.name).second) {
        sink.error("xtuml.event.param.duplicate",
                   c.name + "." + e.name + ": duplicate parameter '" + p.name +
                       "'");
      }
      if (p.type == DataType::kVoid) {
        sink.error("xtuml.event.param.void",
                   c.name + "." + e.name + "." + p.name +
                       ": parameter may not be void");
      }
      if (p.type == DataType::kInstRef &&
          (!p.ref_class.is_valid() || p.ref_class.value() >= d.class_count())) {
        sink.error("xtuml.event.param.refclass",
                   c.name + "." + e.name + "." + p.name +
                       ": inst_ref parameter must name an existing class");
      }
    }
  }
}

void check_state_machine(const ClassDef& c, DiagnosticSink& sink) {
  if (!c.has_state_machine()) {
    if (!c.transitions.empty()) {
      sink.error("xtuml.sm.transitions_without_states",
                 c.name + ": transitions present but no states");
    }
    return;
  }

  std::set<std::string> names;
  for (const auto& s : c.states) {
    if (!names.insert(s.name).second) {
      sink.error("xtuml.state.duplicate",
                 c.name + ": duplicate state '" + s.name + "'");
    }
  }

  if (!c.initial_state.is_valid() ||
      c.initial_state.value() >= c.states.size()) {
    sink.error("xtuml.sm.initial", c.name + ": missing or invalid initial state");
    return;
  }

  std::set<std::pair<StateId::underlying_type, EventId::underlying_type>> seen;
  for (const auto& t : c.transitions) {
    if (t.from.value() >= c.states.size() || t.to.value() >= c.states.size()) {
      sink.error("xtuml.trans.state",
                 c.name + ": transition refers to a nonexistent state");
      continue;
    }
    if (t.event.value() >= c.events.size()) {
      sink.error("xtuml.trans.event",
                 c.name + ": transition refers to a nonexistent event");
      continue;
    }
    if (c.states[t.from.value()].is_final) {
      sink.error("xtuml.trans.from_final",
                 c.name + ": transition out of final state '" +
                     c.states[t.from.value()].name + "'");
    }
    if (!seen.insert({t.from.value(), t.event.value()}).second) {
      sink.error("xtuml.trans.nondeterministic",
                 c.name + ": two transitions from state '" +
                     c.states[t.from.value()].name + "' on event '" +
                     c.events[t.event.value()].name + "'");
    }
  }

  // Reachability from the initial state (warning only: creation in an
  // arbitrary state is possible via the builder API).
  std::vector<bool> reached(c.states.size(), false);
  std::vector<StateId> work{c.initial_state};
  reached[c.initial_state.value()] = true;
  while (!work.empty()) {
    StateId s = work.back();
    work.pop_back();
    for (const auto& t : c.transitions) {
      if (t.from == s && t.to.value() < c.states.size() &&
          !reached[t.to.value()]) {
        reached[t.to.value()] = true;
        work.push_back(t.to);
      }
    }
  }
  for (std::size_t i = 0; i < c.states.size(); ++i) {
    if (!reached[i]) {
      sink.warning("xtuml.state.unreachable",
                   c.name + ": state '" + c.states[i].name +
                       "' is unreachable from the initial state");
    }
  }
}

void check_associations(const Domain& d, DiagnosticSink& sink) {
  std::set<std::string> names;
  for (const auto& a : d.associations()) {
    if (!names.insert(a.name).second) {
      sink.error("xtuml.assoc.duplicate",
                 "duplicate association name '" + a.name + "'");
    }
    for (const AssociationEnd* end : {&a.a, &a.b}) {
      if (!end->cls.is_valid() || end->cls.value() >= d.class_count()) {
        sink.error("xtuml.assoc.end",
                   a.name + ": association end refers to a nonexistent class");
      }
    }
    if (a.a.cls == a.b.cls && a.a.role == a.b.role) {
      sink.error("xtuml.assoc.reflexive_roles",
                 a.name + ": reflexive association needs distinct role names");
    }
  }
}

}  // namespace

bool validate(const Domain& d, DiagnosticSink& sink) {
  const std::size_t before = sink.error_count();
  if (d.name().empty() || !is_identifier(d.name())) {
    sink.error("xtuml.domain.name",
               "domain name '" + d.name() + "' is not a valid identifier");
  }
  check_class_names(d, sink);
  for (const auto& c : d.classes()) {
    check_attributes(c, d, sink);
    check_events(c, d, sink);
    check_state_machine(c, sink);
  }
  check_associations(d, sink);
  return sink.error_count() == before;
}

}  // namespace xtsoc::xtuml
