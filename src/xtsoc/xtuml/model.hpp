// The xtUML metamodel: a Domain of classes with concurrently executing state
// machines that communicate only by signals (paper §2).
//
// The metamodel is deliberately *implementation-free*: nothing here says
// whether a class will become C or VHDL. That decision lives entirely in the
// marks (src/xtsoc/marks) and the mappings (src/xtsoc/mapping), exactly as
// the paper prescribes.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xtsoc/common/ids.hpp"
#include "xtsoc/xtuml/types.hpp"

namespace xtsoc::xtuml {

/// A typed attribute of a class.
struct AttributeDef {
  AttributeId id;
  std::string name;
  DataType type = DataType::kInt;
  std::optional<ScalarValue> default_value;  ///< zero-of-type when absent
  /// Class the reference points at when type == kInstRef.
  ClassId ref_class = ClassId::invalid();
};

/// A signal (event) a class's state machine can receive. Signals carry
/// typed parameters; they are the *only* inter-object communication.
struct EventDef {
  EventId id;
  std::string name;
  std::vector<Parameter> params;
  /// True for events the instance may send to itself; self-directed events
  /// outrank external events in the xtUML queueing discipline.
  bool self_directed_hint = false;
};

/// One state of a class state machine. `action_source` is the OAL text that
/// runs to completion on entry (paper §2: "a set of actions that runs to
/// completion before the next signal is processed").
struct StateDef {
  StateId id;
  std::string name;
  std::string action_source;
  bool is_final = false;  ///< entering a final state deletes the instance
};

/// Transition: in `from`, on receipt of `event`, move to `to` (then run
/// `to`'s actions). The (from,event) pair must be unique within a class.
struct TransitionDef {
  TransitionId id;
  StateId from;
  EventId event;
  StateId to;
};

/// What a state machine does with an event that has no transition from the
/// current state. xtUML distinguishes "ignore" from "can't happen".
enum class EventFallback {
  kIgnore,      ///< drop silently (event ignored)
  kCantHappen,  ///< runtime error: the model is wrong
};

/// A class: attributes plus (optionally) a state machine.
struct ClassDef {
  ClassId id;
  std::string name;
  std::string key_letters;  ///< short unique abbreviation, e.g. "OVN"

  std::vector<AttributeDef> attributes;
  std::vector<EventDef> events;
  std::vector<StateDef> states;
  std::vector<TransitionDef> transitions;
  StateId initial_state = StateId::invalid();
  EventFallback fallback = EventFallback::kIgnore;

  bool has_state_machine() const { return !states.empty(); }

  const AttributeDef* find_attribute(std::string_view name) const;
  const EventDef* find_event(std::string_view name) const;
  const StateDef* find_state(std::string_view name) const;
  const AttributeDef& attribute(AttributeId id) const;
  const EventDef& event(EventId id) const;
  const StateDef& state(StateId id) const;
  /// Transition out of `from` on `event`, or nullptr if none.
  const TransitionDef* transition_on(StateId from, EventId event) const;
};

/// One end of a binary association.
struct AssociationEnd {
  ClassId cls = ClassId::invalid();
  std::string role;  ///< phrase naming the other end's perspective
  Multiplicity mult = Multiplicity::kZeroMany;
};

/// A binary association, named R<number> in Shlaer-Mellor style.
struct AssociationDef {
  AssociationId id;
  std::string name;  ///< e.g. "R1"
  AssociationEnd a;
  AssociationEnd b;

  /// End attached to `cls`; `other_end` gives the opposite end.
  const AssociationEnd& end_for(ClassId cls) const;
  const AssociationEnd& other_end(ClassId cls) const;
  bool touches(ClassId cls) const { return a.cls == cls || b.cls == cls; }
};

/// A Domain: the unit of modelling, compilation and marking.
class Domain {
public:
  explicit Domain(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- construction -------------------------------------------------------
  ClassId add_class(std::string name, std::string key_letters = {});
  AttributeId add_attribute(ClassId cls, std::string name, DataType type,
                            std::optional<ScalarValue> default_value = {},
                            ClassId ref_class = ClassId::invalid());
  EventId add_event(ClassId cls, std::string name,
                    std::vector<Parameter> params = {});
  StateId add_state(ClassId cls, std::string name, std::string action_source,
                    bool is_final = false);
  TransitionId add_transition(ClassId cls, StateId from, EventId event,
                              StateId to);
  void set_initial_state(ClassId cls, StateId state);
  AssociationId add_association(std::string name, AssociationEnd a,
                                AssociationEnd b);

  // --- access -------------------------------------------------------------
  const std::vector<ClassDef>& classes() const { return classes_; }
  const std::vector<AssociationDef>& associations() const { return assocs_; }
  const ClassDef& cls(ClassId id) const;
  ClassDef& cls(ClassId id);
  const AssociationDef& association(AssociationId id) const;
  const ClassDef* find_class(std::string_view name) const;
  ClassId find_class_id(std::string_view name) const;
  const AssociationDef* find_association(std::string_view name) const;
  /// Associations having `cls` at either end.
  std::vector<AssociationId> associations_of(ClassId cls) const;

  // --- size metrics (used by benchmarks & EXPERIMENTS.md) ------------------
  std::size_t class_count() const { return classes_.size(); }
  std::size_t state_count() const;
  std::size_t transition_count() const;
  std::size_t event_count() const;

private:
  std::string name_;
  std::vector<ClassDef> classes_;
  std::vector<AssociationDef> assocs_;
};

}  // namespace xtsoc::xtuml
