#include "xtsoc/verify/explore.hpp"

#include <set>
#include <sstream>
#include <unordered_set>

namespace xtsoc::verify {

using runtime::EventMessage;
using runtime::Executor;
using runtime::InstanceHandle;

namespace {

using Path = std::vector<std::size_t>;

std::string path_text(const Path& path) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) os << ',';
    os << path[i];
  }
  os << ']';
  return os.str();
}

/// Canonical serialization of the full system state: database + queues.
std::string state_key(const Executor& exec) {
  std::ostringstream os;
  const xtuml::Domain& domain = exec.domain();
  const runtime::Database& db = exec.database();
  for (const auto& cls : domain.classes()) {
    os << 'C' << cls.id.value() << ':';
    for (const InstanceHandle& h : db.all_of(cls.id)) {
      os << h.index << '.' << h.generation << '(';
      if (cls.has_state_machine()) os << db.current_state(h).value();
      for (const auto& attr : cls.attributes) {
        os << ',' << runtime::to_string(db.get_attr(h, attr.id));
      }
      os << ')';
    }
    os << ';';
  }
  for (const auto& assoc : domain.associations()) {
    os << 'R' << assoc.id.value() << ':';
    std::set<std::pair<std::string, std::string>> links;
    for (const auto& cls : domain.classes()) {
      if (!assoc.touches(cls.id)) continue;
      for (const InstanceHandle& h : db.all_of(cls.id)) {
        for (const InstanceHandle& other : db.related(h, assoc.id)) {
          std::string a = h.to_string();
          std::string b = other.to_string();
          links.insert(a < b ? std::pair(a, b) : std::pair(b, a));
        }
      }
    }
    for (const auto& [a, b] : links) os << a << '-' << b << ' ';
    os << ';';
  }
  os << "Q:";
  for (const EventMessage& m : exec.ready_snapshot()) {
    os << m.sender.to_string() << '>' << m.target.to_string() << '#'
       << m.event.value() << '(';
    for (const auto& v : m.args) os << runtime::to_string(v) << ',';
    os << ')';
  }
  return os.str();
}

/// Scheduler choices legal from this state: a ready message is a candidate
/// iff it is the oldest pending message of its (sender, target) channel,
/// and — when it is not self-directed — its target has no pending
/// self-directed message (the xtUML priority rule).
std::vector<std::size_t> candidates(const Executor& exec) {
  std::vector<EventMessage> snap = exec.ready_snapshot();
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    bool ok = true;
    for (std::size_t j = 0; j < i && ok; ++j) {
      if (snap[j].sender == snap[i].sender &&
          snap[j].target == snap[i].target) {
        ok = false;  // an older message on the same channel goes first
      }
    }
    if (ok && !snap[i].self_directed()) {
      for (const EventMessage& m : snap) {
        if (m.self_directed() && m.target == snap[i].target) {
          ok = false;
          break;
        }
      }
    }
    if (ok) out.push_back(i);
  }
  return out;
}

}  // namespace

std::string ExploreResult::to_string() const {
  std::ostringstream os;
  os << (complete ? "complete" : "TRUNCATED") << ": " << states_visited
     << " states, " << transitions << " transitions, deepest schedule "
     << deepest_schedule;
  for (const auto& e : errors) os << "\n  error: " << e;
  for (const auto& [cls, st] : dead_states) {
    os << "\n  dead state: " << cls << "." << st;
  }
  return os.str();
}

ExploreResult explore(const oal::CompiledDomain& compiled,
                      const std::function<void(Executor&)>& setup,
                      ExploreConfig config) {
  ExploreResult result;
  result.complete = true;

  config.executor.trace_enabled = true;  // needed for entered-state tracking

  // (class, state) pairs entered by any execution.
  std::set<std::pair<ClassId::underlying_type, StateId::underlying_type>>
      entered;
  std::set<ClassId::underlying_type> instantiated;

  /// Replay a schedule from scratch. Returns nullptr and records an error
  /// if the final dispatch faults.
  auto replay = [&](const Path& path) -> std::unique_ptr<Executor> {
    auto exec = std::make_unique<Executor>(compiled, config.executor);
    setup(*exec);
    try {
      for (std::size_t idx : path) {
        if (!exec->dispatch_ready(idx)) {
          throw runtime::ModelError("schedule replay desynchronized");
        }
      }
    } catch (const runtime::ModelError& e) {
      result.errors.push_back(std::string(e.what()) + " via schedule " +
                              path_text(path));
      return nullptr;
    }
    if (exec->next_deadline().has_value()) {
      result.errors.push_back(
          "model uses `delay`, which the explorer does not cover (schedule " +
          path_text(path) + ")");
      return nullptr;
    }
    return exec;
  };

  std::unordered_set<std::string> visited;
  std::vector<Path> stack;
  stack.push_back({});

  while (!stack.empty()) {
    if (visited.size() >= config.max_states) {
      result.complete = false;
      break;
    }
    Path path = std::move(stack.back());
    stack.pop_back();

    std::unique_ptr<Executor> exec = replay(path);
    if (exec == nullptr) continue;  // faulting schedule recorded

    std::string key = state_key(*exec);
    if (!visited.insert(std::move(key)).second) continue;
    result.deepest_schedule = std::max(result.deepest_schedule, path.size());

    // Track entered states and instantiated classes from the trace.
    for (const auto& te : exec->trace().events()) {
      if (te.kind == runtime::TraceKind::kCreate) {
        instantiated.insert(te.subject.cls.value());
        const xtuml::ClassDef& cls = exec->domain().cls(te.subject.cls);
        if (cls.has_state_machine()) {
          entered.insert({te.subject.cls.value(), cls.initial_state.value()});
        }
      } else if (te.kind == runtime::TraceKind::kDispatch &&
                 te.to_state.is_valid()) {
        entered.insert({te.subject.cls.value(), te.to_state.value()});
      }
    }

    if (path.size() >= config.max_depth) {
      if (!exec->ready_snapshot().empty()) result.complete = false;
      continue;
    }
    for (std::size_t idx : candidates(*exec)) {
      ++result.transitions;
      Path next = path;
      next.push_back(idx);
      stack.push_back(std::move(next));
    }
  }

  result.states_visited = visited.size();

  // Dead states: never entered in any reachable execution, for classes that
  // were actually instantiated.
  for (const auto& cls : compiled.domain().classes()) {
    if (!cls.has_state_machine()) continue;
    if (!instantiated.contains(cls.id.value())) continue;
    for (const auto& st : cls.states) {
      if (!entered.contains({cls.id.value(), st.id.value()})) {
        result.dead_states.push_back({cls.name, st.name});
      }
    }
  }
  return result;
}

}  // namespace xtsoc::verify
