// Bounded exhaustive exploration of a closed model: a lite model checker.
//
// xtUML's execution semantics deliberately leave the interleaving of
// signals to *different* instances open — any order consistent with
// pairwise (sender, receiver) FIFO and the self-directed priority is legal,
// and the model must be correct under all of them (that freedom is what
// lets the model compiler retarget concurrent, distributed and sequential
// platforms, paper §2). A single executor run checks ONE interleaving; the
// explorer checks ALL of them, up to configurable bounds.
//
// What it finds:
//   * runtime model errors (can't-happen events, null dereferences,
//     division by zero, multiplicity violations) on ANY schedule, with the
//     schedule that triggers them;
//   * state-machine states that no reachable execution ever enters
//     (dead states — usually modelling bugs);
//   * the reachable state count (a size-of-behaviour metric).
//
// Restrictions: the model under exploration must not use `delay` (time
// would multiply the schedule space); delays are reported as an error.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "xtsoc/runtime/executor.hpp"

namespace xtsoc::verify {

struct ExploreConfig {
  std::size_t max_states = 20'000;   ///< distinct system states to visit
  std::size_t max_depth = 200;       ///< dispatches along one schedule
  runtime::ExecutorConfig executor;  ///< engine/limits for each replay
};

struct ExploreResult {
  bool complete = false;  ///< the whole bounded space was covered
  std::size_t states_visited = 0;
  std::size_t transitions = 0;
  std::size_t deepest_schedule = 0;
  /// Model errors found, with the schedule (dispatch choice list) attached.
  std::vector<std::string> errors;
  /// (class, state) pairs never entered by any reachable execution.
  std::vector<std::pair<std::string, std::string>> dead_states;

  std::string to_string() const;
};

/// Explore every legal schedule of the closed system produced by `setup`
/// (which creates the population and injects the initial signals into the
/// given executor). The same `setup` is replayed many times; it must be
/// deterministic.
ExploreResult explore(const oal::CompiledDomain& compiled,
                      const std::function<void(runtime::Executor&)>& setup,
                      ExploreConfig config = {});

}  // namespace xtsoc::verify
