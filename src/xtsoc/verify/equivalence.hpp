// Trace equivalence between executions of the same model under different
// mappings.
//
// Total event order across concurrently executing state machines is
// implementation-defined (any interleaving consistent with the queueing
// rules is legal), so raw traces are NOT comparable. What every legal
// mapping must preserve is each instance's own history: the sequence of
// (event, from-state, to-state) dispatches, attribute writes, log outputs,
// and lifecycle events it experiences. That per-instance *projection* —
// with timestamps erased, since hardware and software run at different
// speeds — is the equivalence relation used throughout this repository to
// check that the model compiler "preserves the defined behavior" (paper §4).
#pragma once

#include <string>
#include <vector>

#include "xtsoc/runtime/database.hpp"
#include "xtsoc/runtime/trace.hpp"

namespace xtsoc::verify {

/// Canonical, time-erased rendering of one instance's projection. Two
/// executions agree on an instance iff their signatures are equal strings.
std::string projection_signature(const runtime::Trace& trace,
                                 const runtime::InstanceHandle& inst);

struct EquivalenceReport {
  bool equivalent = true;
  std::size_t instances_checked = 0;
  std::vector<std::string> mismatches;

  std::string to_string() const;
};

/// Compare the abstract execution against a partitioned execution whose
/// events are split across several traces (one per partition). Every
/// instance appearing in any trace is checked. An instance's partitioned
/// projection is the concatenation of its projections in the given traces
/// (it lives in exactly one partition, so at most one contributes).
EquivalenceReport compare_executions(
    const runtime::Trace& reference,
    const std::vector<const runtime::Trace*>& partitioned);

/// Causality check on a single trace: every dispatch of a signal must be
/// preceded by a matching send to the same instance with the same event
/// (cause precedes effect, paper §2). External injects count as sends.
bool check_causality(const runtime::Trace& trace, std::string* error);

/// Final-state equivalence: the weaker relation that holds for EVERY legal
/// mapping, including models where one instance receives from several
/// senders (where xtUML guarantees only pairwise order, so intermediate
/// projections may differ while the quiescent state may not). Compares the
/// live population, current states, and every attribute value.
EquivalenceReport compare_final_states(
    const runtime::Database& reference,
    const std::vector<const runtime::Database*>& partitioned);

}  // namespace xtsoc::verify
