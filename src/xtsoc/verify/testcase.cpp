#include "xtsoc/verify/testcase.hpp"

#include <sstream>

namespace xtsoc::verify {

using runtime::InstanceHandle;
using runtime::Value;

namespace {

/// Population instantiation shared by both runners. `create` makes an
/// instance of a class; `set_attr` writes one attribute on a handle.
class Populator {
public:
  template <typename CreateFn, typename SetFn>
  static std::map<std::string, InstanceHandle> build(
      const xtuml::Domain& domain, const std::vector<InstanceSpec>& specs,
      std::vector<std::string>& failures, CreateFn create, SetFn set_attr) {
    std::map<std::string, InstanceHandle> byname;
    // Pass 1: create everything so forward references resolve.
    for (const InstanceSpec& spec : specs) {
      if (byname.contains(spec.name)) {
        failures.push_back("duplicate population name '" + spec.name + "'");
        continue;
      }
      byname[spec.name] = create(spec.cls);
    }
    // Pass 2: attributes (values and refs).
    for (const InstanceSpec& spec : specs) {
      auto it = byname.find(spec.name);
      if (it == byname.end()) continue;
      const xtuml::ClassDef* cls = domain.find_class(spec.cls);
      for (const auto& [attr_name, init] : spec.attrs) {
        const xtuml::AttributeDef* attr =
            cls == nullptr ? nullptr : cls->find_attribute(attr_name);
        if (attr == nullptr) {
          failures.push_back(spec.cls + " has no attribute '" + attr_name + "'");
          continue;
        }
        Value v;
        if (const auto* ref = std::get_if<RefByName>(&init)) {
          auto target = byname.find(ref->name);
          if (target == byname.end()) {
            failures.push_back("unknown population reference '" + ref->name +
                               "'");
            continue;
          }
          v = target->second;
        } else {
          v = std::get<Value>(init);
        }
        set_attr(it->second, attr->id, std::move(v));
      }
    }
    return byname;
  }
};

void check_expectations(
    const xtuml::Domain& domain,
    const std::map<std::string, InstanceHandle>& byname, const TestCase& test,
    const std::function<runtime::Database&(const InstanceHandle&)>& db_of,
    RunReport& report) {
  auto resolve = [&](const std::string& name) -> const InstanceHandle* {
    auto it = byname.find(name);
    if (it == byname.end()) {
      report.failures.push_back("unknown instance '" + name + "'");
      return nullptr;
    }
    return &it->second;
  };

  for (const AttrExpect& e : test.expect_attrs) {
    const InstanceHandle* h = resolve(e.inst);
    if (h == nullptr) continue;
    const xtuml::ClassDef& cls = domain.cls(h->cls);
    const xtuml::AttributeDef* attr = cls.find_attribute(e.attr);
    if (attr == nullptr) {
      report.failures.push_back(cls.name + " has no attribute '" + e.attr + "'");
      continue;
    }
    Value got = db_of(*h).get_attr(*h, attr->id);
    if (!runtime::value_equals(got, e.value)) {
      report.failures.push_back(e.inst + "." + e.attr + ": expected " +
                                runtime::to_string(e.value) + ", got " +
                                runtime::to_string(got));
    }
  }

  for (const StateExpect& e : test.expect_states) {
    const InstanceHandle* h = resolve(e.inst);
    if (h == nullptr) continue;
    const xtuml::ClassDef& cls = domain.cls(h->cls);
    const xtuml::StateDef* want = cls.find_state(e.state);
    if (want == nullptr) {
      report.failures.push_back(cls.name + " has no state '" + e.state + "'");
      continue;
    }
    runtime::Database& db = db_of(*h);
    if (!db.is_alive(*h)) {
      report.failures.push_back(e.inst + ": deleted, expected state '" +
                                e.state + "'");
      continue;
    }
    StateId got = db.current_state(*h);
    if (got != want->id) {
      report.failures.push_back(e.inst + ": expected state '" + e.state +
                                "', got '" + cls.state(got).name + "'");
    }
  }
}

}  // namespace

std::string RunReport::to_string() const {
  std::ostringstream os;
  os << (passed ? "PASS" : "FAIL") << " (" << dispatches << " dispatches, "
     << duration << " ticks)";
  for (const auto& f : failures) os << "\n  " << f;
  return os.str();
}

AbstractRunner::AbstractRunner(const oal::CompiledDomain& compiled,
                               runtime::ExecutorConfig config)
    : compiled_(&compiled), config_(config) {}

RunReport AbstractRunner::run(const TestCase& test) {
  RunReport report;
  exec_ = std::make_unique<runtime::Executor>(*compiled_, config_);
  const xtuml::Domain& domain = compiled_->domain();

  auto byname = Populator::build(
      domain, test.population, report.failures,
      [this](const std::string& cls) { return exec_->create(cls); },
      [this](const InstanceHandle& h, AttributeId a, Value v) {
        exec_->database().set_attr(h, a, std::move(v));
      });

  for (const Stimulus& s : test.stimuli) {
    auto it = byname.find(s.target);
    if (it == byname.end()) {
      report.failures.push_back("stimulus to unknown instance '" + s.target +
                                "'");
      continue;
    }
    exec_->inject(it->second, s.event, s.args, s.delay);
  }
  exec_->run_all();

  check_expectations(
      domain, byname, test,
      [this](const InstanceHandle&) -> runtime::Database& {
        return exec_->database();
      },
      report);

  if (!test.expect_logs.empty()) {
    std::vector<std::string> logs;
    for (const auto& e : exec_->trace().events()) {
      if (e.kind == runtime::TraceKind::kLog) logs.push_back(e.text);
    }
    if (logs != test.expect_logs) {
      std::ostringstream os;
      os << "log mismatch: expected [";
      for (const auto& l : test.expect_logs) os << '"' << l << "\" ";
      os << "], got [";
      for (const auto& l : logs) os << '"' << l << "\" ";
      os << ']';
      report.failures.push_back(os.str());
    }
  }

  report.dispatches = exec_->dispatch_count();
  report.duration = exec_->now();
  report.passed = report.failures.empty();
  return report;
}

CosimRunner::CosimRunner(const mapping::MappedSystem& system,
                         cosim::CoSimConfig config)
    : system_(&system), config_(config) {}

RunReport CosimRunner::run(const TestCase& test) {
  RunReport report;
  cosim_ = std::make_unique<cosim::CoSimulation>(*system_, config_);
  const xtuml::Domain& domain = system_->domain();

  auto byname = Populator::build(
      domain, test.population, report.failures,
      [this](const std::string& cls) { return cosim_->create(cls); },
      [this](const InstanceHandle& h, AttributeId a, Value v) {
        cosim_->executor_of(h.cls).database().set_attr(h, a, std::move(v));
      });

  for (const Stimulus& s : test.stimuli) {
    auto it = byname.find(s.target);
    if (it == byname.end()) {
      report.failures.push_back("stimulus to unknown instance '" + s.target +
                                "'");
      continue;
    }
    cosim_->inject(it->second, s.event, s.args, s.delay);
  }
  cosim_->run();

  check_expectations(
      domain, byname, test,
      [this](const InstanceHandle& h) -> runtime::Database& {
        return cosim_->executor_of(h.cls).database();
      },
      report);

  report.dispatches = cosim_->sw_executor().dispatch_count();
  for (const auto& hw : cosim_->hw_domains()) {
    report.dispatches += hw->dispatches();
  }
  report.duration = cosim_->cycles();
  report.passed = report.failures.empty();
  return report;
}

ConformanceReport run_conformance(const oal::CompiledDomain& compiled,
                                  const mapping::MappedSystem& system,
                                  const TestCase& test,
                                  runtime::ExecutorConfig abstract_config,
                                  cosim::CoSimConfig cosim_config) {
  ConformanceReport out;
  AbstractRunner abstract(compiled, abstract_config);
  out.abstract_run = abstract.run(test);
  CosimRunner partitioned(system, cosim_config);
  out.cosim_run = partitioned.run(test);
  // One partial trace per executor: every hardware clock domain (one per
  // mesh tile when tile marks are present) plus the software partition.
  std::vector<const runtime::Trace*> traces;
  for (const auto& hw : partitioned.cosim().hw_domains()) {
    traces.push_back(&hw->executor().trace());
  }
  traces.push_back(&partitioned.cosim().sw_executor().trace());
  out.equivalence =
      compare_executions(abstract.executor().trace(), traces);
  return out;
}

}  // namespace xtsoc::verify
