// Formal model-level test cases (paper §2: "formal test cases can be
// executed against the model to verify that requirements have been properly
// met" — before any implementation exists).
//
// A TestCase is pure data: a population, a stimulus script, and expected
// observations. The SAME test case runs against
//   * the abstract model executor (AbstractRunner), and
//   * any partitioned co-simulation (CosimRunner),
// which is precisely how the paper proposes requirements be verified once,
// independent of the eventual hardware/software split.
#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/runtime/executor.hpp"
#include "xtsoc/verify/equivalence.hpp"

namespace xtsoc::verify {

/// Attribute initializer: a concrete value, or a symbolic reference to a
/// previously declared population instance (for inst_ref attributes).
struct RefByName {
  std::string name;
};
using AttrInit = std::variant<runtime::Value, RefByName>;

struct InstanceSpec {
  std::string name;  ///< symbolic handle used by stimuli and expectations
  std::string cls;
  std::vector<std::pair<std::string, AttrInit>> attrs;
};

struct Stimulus {
  std::string target;  ///< population instance name
  std::string event;
  std::vector<runtime::Value> args;
  std::uint64_t delay = 0;
};

struct AttrExpect {
  std::string inst;
  std::string attr;
  runtime::Value value;
};

struct StateExpect {
  std::string inst;
  std::string state;
};

struct TestCase {
  std::string name;
  std::vector<InstanceSpec> population;
  std::vector<Stimulus> stimuli;
  std::vector<AttrExpect> expect_attrs;
  std::vector<StateExpect> expect_states;
  /// Expected `log` outputs in global order (checked by AbstractRunner
  /// only: a partitioned run has no global log order).
  std::vector<std::string> expect_logs;
};

struct RunReport {
  bool passed = true;
  std::vector<std::string> failures;
  std::uint64_t dispatches = 0;
  std::uint64_t duration = 0;  ///< ticks (abstract) or cycles (cosim)

  std::string to_string() const;
};

/// Executes test cases against the abstract model.
class AbstractRunner {
public:
  explicit AbstractRunner(const oal::CompiledDomain& compiled,
                          runtime::ExecutorConfig config = {});

  RunReport run(const TestCase& test);

  /// Executor of the last run (for trace inspection / equivalence).
  runtime::Executor& executor() { return *exec_; }

private:
  const oal::CompiledDomain* compiled_;
  runtime::ExecutorConfig config_;
  std::unique_ptr<runtime::Executor> exec_;
};

/// Executes test cases against a partitioned co-simulation.
class CosimRunner {
public:
  explicit CosimRunner(const mapping::MappedSystem& system,
                       cosim::CoSimConfig config = {});

  RunReport run(const TestCase& test);

  cosim::CoSimulation& cosim() { return *cosim_; }

private:
  const mapping::MappedSystem* system_;
  cosim::CoSimConfig config_;
  std::unique_ptr<cosim::CoSimulation> cosim_;
};

/// Run `test` against the abstract model AND the partitioned system, check
/// expectations in both, then check per-instance projection equivalence.
struct ConformanceReport {
  RunReport abstract_run;
  RunReport cosim_run;
  EquivalenceReport equivalence;
  bool passed() const {
    return abstract_run.passed && cosim_run.passed && equivalence.equivalent;
  }
};

ConformanceReport run_conformance(const oal::CompiledDomain& compiled,
                                  const mapping::MappedSystem& system,
                                  const TestCase& test,
                                  runtime::ExecutorConfig abstract_config = {},
                                  cosim::CoSimConfig cosim_config = {});

}  // namespace xtsoc::verify
