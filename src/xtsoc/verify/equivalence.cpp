#include "xtsoc/verify/equivalence.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "xtsoc/runtime/database.hpp"

namespace xtsoc::verify {

using runtime::InstanceHandle;
using runtime::Trace;
using runtime::TraceEvent;
using runtime::TraceKind;

namespace {

/// Kinds that form an instance's semantic history. kSend is excluded (it is
/// recorded in the *sender's* partition and duplicated by kDispatch at the
/// receiver); kIgnored is excluded because a dropped event has no effect.
bool is_semantic(TraceKind k) {
  switch (k) {
    case TraceKind::kCreate:
    case TraceKind::kDelete:
    case TraceKind::kDispatch:
    case TraceKind::kAttrWrite:
    case TraceKind::kLog:
      return true;
    default:
      return false;
  }
}

void append_signature_line(std::ostream& os, const TraceEvent& e) {
  os << to_string(e.kind);
  if (e.event.is_valid()) os << " ev" << e.event.value();
  if (e.from_state.is_valid()) os << " from" << e.from_state.value();
  if (e.to_state.is_valid()) os << " to" << e.to_state.value();
  if (e.attr.is_valid()) os << " at" << e.attr.value();
  if (e.value) os << " = " << runtime::to_string(*e.value);
  for (const auto& a : e.args) os << " arg:" << runtime::to_string(a);
  if (!e.text.empty()) os << " \"" << e.text << '"';
  os << '\n';
}

}  // namespace

std::string projection_signature(const Trace& trace,
                                 const InstanceHandle& inst) {
  std::ostringstream os;
  for (const TraceEvent& e : trace.events()) {
    if (e.subject == inst && is_semantic(e.kind)) {
      append_signature_line(os, e);
    }
  }
  return os.str();
}

std::string EquivalenceReport::to_string() const {
  std::ostringstream os;
  os << (equivalent ? "EQUIVALENT" : "DIVERGENT") << " ("
     << instances_checked << " instances checked)";
  for (const auto& m : mismatches) os << "\n  " << m;
  return os.str();
}

EquivalenceReport compare_executions(
    const Trace& reference, const std::vector<const Trace*>& partitioned) {
  EquivalenceReport report;

  // Union of subjects across all traces, in first-appearance order.
  std::vector<InstanceHandle> subjects = reference.subjects();
  for (const Trace* t : partitioned) {
    for (const InstanceHandle& h : t->subjects()) {
      if (std::find(subjects.begin(), subjects.end(), h) == subjects.end()) {
        subjects.push_back(h);
      }
    }
  }

  for (const InstanceHandle& inst : subjects) {
    std::string ref_sig = projection_signature(reference, inst);
    std::string part_sig;
    for (const Trace* t : partitioned) {
      part_sig += projection_signature(*t, inst);
    }
    ++report.instances_checked;
    if (ref_sig != part_sig) {
      report.equivalent = false;
      std::ostringstream os;
      os << "instance " << inst.to_string() << " diverges:\n--- reference:\n"
         << ref_sig << "--- partitioned:\n" << part_sig;
      report.mismatches.push_back(os.str());
    }
  }
  return report;
}

EquivalenceReport compare_final_states(
    const runtime::Database& reference,
    const std::vector<const runtime::Database*>& partitioned) {
  EquivalenceReport report;
  const xtuml::Domain& domain = reference.domain();

  for (const auto& cls : domain.classes()) {
    runtime::InstanceSet ref_live = reference.all_of(cls.id);
    runtime::InstanceSet part_live;
    for (const runtime::Database* db : partitioned) {
      for (const InstanceHandle& h : db->all_of(cls.id)) {
        part_live.push_back(h);
      }
    }
    std::sort(part_live.begin(), part_live.end());
    runtime::InstanceSet ref_sorted = ref_live;
    std::sort(ref_sorted.begin(), ref_sorted.end());
    if (ref_sorted != part_live) {
      report.equivalent = false;
      report.mismatches.push_back("class '" + cls.name +
                                  "': live populations differ");
      continue;
    }

    for (const InstanceHandle& h : ref_live) {
      ++report.instances_checked;
      // Find the partition owning this instance.
      const runtime::Database* owner = nullptr;
      for (const runtime::Database* db : partitioned) {
        if (db->is_alive(h)) owner = db;
      }
      if (owner == nullptr) continue;  // already reported above

      if (cls.has_state_machine() &&
          reference.current_state(h) != owner->current_state(h)) {
        report.equivalent = false;
        report.mismatches.push_back(
            "instance " + h.to_string() + " of '" + cls.name +
            "': final state differs (" +
            cls.state(reference.current_state(h)).name + " vs " +
            cls.state(owner->current_state(h)).name + ")");
      }
      for (const auto& attr : cls.attributes) {
        runtime::Value a = reference.get_attr(h, attr.id);
        runtime::Value b = owner->get_attr(h, attr.id);
        if (!runtime::value_equals(a, b)) {
          report.equivalent = false;
          report.mismatches.push_back(
              "instance " + h.to_string() + " attribute '" + attr.name +
              "': " + runtime::to_string(a) + " vs " + runtime::to_string(b));
        }
      }
    }
  }
  return report;
}

bool check_causality(const Trace& trace, std::string* error) {
  // For each (instance, event) pair, dispatches consume earlier sends.
  std::map<std::pair<InstanceHandle, EventId::underlying_type>, long> credit;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceKind::kSend) {
      ++credit[{e.subject, e.event.value()}];
    } else if (e.kind == TraceKind::kDispatch ||
               e.kind == TraceKind::kIgnored) {
      if (!e.event.is_valid()) continue;
      long& c = credit[{e.subject, e.event.value()}];
      if (c <= 0) {
        if (error != nullptr) {
          std::ostringstream os;
          os << "dispatch without a preceding send: instance "
             << e.subject.to_string() << " event#" << e.event.value()
             << " at tick " << e.tick;
          *error = os.str();
        }
        return false;
      }
      --c;
    }
  }
  return true;
}

}  // namespace xtsoc::verify
