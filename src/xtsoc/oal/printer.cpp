#include "xtsoc/oal/printer.hpp"

#include <sstream>

namespace xtsoc::oal {

namespace {

/// Binding strength for minimal parenthesization.
int precedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kBinary:
      switch (static_cast<const BinaryExpr&>(e).op) {
        case BinaryOp::kOr: return 1;
        case BinaryOp::kAnd: return 2;
        case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
        case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
          return 3;
        case BinaryOp::kAdd: case BinaryOp::kSub: return 4;
        case BinaryOp::kMul: case BinaryOp::kDiv: case BinaryOp::kMod:
          return 5;
      }
      return 0;
    case ExprKind::kUnary:
    case ExprKind::kEmpty:
    case ExprKind::kNotEmpty:
    case ExprKind::kCardinality:
      return 6;
    default:
      return 7;  // atoms
  }
}

void print_expr(std::ostream& os, const Expr& e);

void print_child(std::ostream& os, const Expr& parent, const Expr& child,
                 bool right_side) {
  int pp = precedence(parent);
  int cp = precedence(child);
  // Right child of a left-associative operator at equal precedence needs
  // parens to preserve evaluation order (a - (b - c)).
  bool need = cp < pp || (right_side && cp == pp);
  if (need) os << '(';
  print_expr(os, child);
  if (need) os << ')';
}

void print_expr(std::ostream& os, const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      os << xtuml::scalar_to_string(static_cast<const LiteralExpr&>(e).value);
      break;
    case ExprKind::kVarRef:
      os << static_cast<const VarRefExpr&>(e).name;
      break;
    case ExprKind::kSelfRef:
      os << "self";
      break;
    case ExprKind::kParamRef:
      os << "param." << static_cast<const ParamRefExpr&>(e).name;
      break;
    case ExprKind::kSelectedRef:
      os << "selected";
      break;
    case ExprKind::kAttrAccess: {
      const auto& a = static_cast<const AttrAccessExpr&>(e);
      print_child(os, e, *a.object, false);
      os << '.' << a.attr_name;
      break;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      os << (u.op == UnaryOp::kNeg ? "-" : "not ");
      print_child(os, e, *u.operand, true);
      break;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      print_child(os, e, *b.lhs, false);
      os << ' ' << to_string(b.op) << ' ';
      print_child(os, e, *b.rhs, true);
      break;
    }
    case ExprKind::kCardinality:
      os << "cardinality ";
      print_child(os, e, *static_cast<const CardinalityExpr&>(e).operand, true);
      break;
    case ExprKind::kEmpty:
      os << "empty ";
      print_child(os, e, *static_cast<const EmptyExpr&>(e).operand, true);
      break;
    case ExprKind::kNotEmpty:
      os << "not_empty ";
      print_child(os, e, *static_cast<const EmptyExpr&>(e).operand, true);
      break;
    case ExprKind::kMemRead:
      os << "mem.read(";
      print_expr(os, *static_cast<const MemReadExpr&>(e).addr);
      os << ')';
      break;
  }
}

void print_block(std::ostream& os, const Block& b, int indent);

void pad(std::ostream& os, int indent) {
  for (int i = 0; i < indent; ++i) os << ' ';
}

void print_stmt(std::ostream& os, const Stmt& s, int indent) {
  pad(os, indent);
  switch (s.kind) {
    case StmtKind::kAssign: {
      const auto& a = static_cast<const AssignStmt&>(s);
      print_expr(os, *a.lvalue);
      os << " = ";
      print_expr(os, *a.rvalue);
      os << ";\n";
      break;
    }
    case StmtKind::kCreate: {
      const auto& c = static_cast<const CreateStmt&>(s);
      os << "create object instance " << c.var << " of " << c.class_name
         << ";\n";
      break;
    }
    case StmtKind::kDelete: {
      const auto& d = static_cast<const DeleteStmt&>(s);
      os << "delete object instance ";
      print_expr(os, *d.object);
      os << ";\n";
      break;
    }
    case StmtKind::kGenerate: {
      const auto& g = static_cast<const GenerateStmt&>(s);
      os << "generate " << g.event_name << '(';
      for (std::size_t i = 0; i < g.args.size(); ++i) {
        if (i > 0) os << ", ";
        os << g.args[i].name << ": ";
        print_expr(os, *g.args[i].value);
      }
      os << ") to ";
      print_expr(os, *g.target);
      if (g.delay) {
        os << " delay ";
        print_expr(os, *g.delay);
      }
      os << ";\n";
      break;
    }
    case StmtKind::kSelectFrom: {
      const auto& sel = static_cast<const SelectFromStmt&>(s);
      os << "select " << (sel.many ? "many" : "any") << ' ' << sel.var
         << " from instances of " << sel.class_name;
      if (sel.where) {
        os << " where (";
        print_expr(os, *sel.where);
        os << ')';
      }
      os << ";\n";
      break;
    }
    case StmtKind::kSelectRelated: {
      const auto& sel = static_cast<const SelectRelatedStmt&>(s);
      os << "select " << (sel.many ? "many" : "one") << ' ' << sel.var
         << " related by ";
      print_expr(os, *sel.start);
      os << "->" << sel.class_name << '[' << sel.assoc_name << ']';
      if (sel.where) {
        os << " where (";
        print_expr(os, *sel.where);
        os << ')';
      }
      os << ";\n";
      break;
    }
    case StmtKind::kRelate:
    case StmtKind::kUnrelate: {
      const auto& r = static_cast<const RelateStmt&>(s);
      bool un = s.kind == StmtKind::kUnrelate;
      os << (un ? "unrelate " : "relate ");
      print_expr(os, *r.a);
      os << (un ? " from " : " to ");
      print_expr(os, *r.b);
      os << " across " << r.assoc_name << ";\n";
      break;
    }
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(s);
      for (std::size_t k = 0; k < i.branches.size(); ++k) {
        if (k > 0) pad(os, indent);
        os << (k == 0 ? "if (" : "elif (");
        print_expr(os, *i.branches[k].cond);
        os << ")\n";
        print_block(os, i.branches[k].body, indent + 2);
      }
      if (i.else_body) {
        pad(os, indent);
        os << "else\n";
        print_block(os, *i.else_body, indent + 2);
      }
      pad(os, indent);
      os << "end if;\n";
      break;
    }
    case StmtKind::kWhile: {
      const auto& w = static_cast<const WhileStmt&>(s);
      os << "while (";
      print_expr(os, *w.cond);
      os << ")\n";
      print_block(os, w.body, indent + 2);
      pad(os, indent);
      os << "end while;\n";
      break;
    }
    case StmtKind::kForEach: {
      const auto& f = static_cast<const ForEachStmt&>(s);
      os << "for each " << f.var << " in ";
      print_expr(os, *f.set);
      os << "\n";
      print_block(os, f.body, indent + 2);
      pad(os, indent);
      os << "end for;\n";
      break;
    }
    case StmtKind::kBreak:
      os << "break;\n";
      break;
    case StmtKind::kContinue:
      os << "continue;\n";
      break;
    case StmtKind::kReturn:
      os << "return;\n";
      break;
    case StmtKind::kLog: {
      const auto& l = static_cast<const LogStmt&>(s);
      os << "log ";
      for (std::size_t i = 0; i < l.args.size(); ++i) {
        if (i > 0) os << ", ";
        print_expr(os, *l.args[i]);
      }
      os << ";\n";
      break;
    }
    case StmtKind::kMemWrite: {
      const auto& m = static_cast<const MemWriteStmt&>(s);
      os << "mem.write(";
      print_expr(os, *m.addr);
      os << ", ";
      print_expr(os, *m.value);
      os << ");\n";
      break;
    }
  }
}

void print_block(std::ostream& os, const Block& b, int indent) {
  for (const auto& s : b.stmts) print_stmt(os, *s, indent);
}

}  // namespace

std::string print(const Block& block, int indent) {
  std::ostringstream os;
  print_block(os, block, indent);
  return os.str();
}

std::string print(const Expr& expr) {
  std::ostringstream os;
  print_expr(os, expr);
  return os.str();
}

std::string print(const Stmt& stmt, int indent) {
  std::ostringstream os;
  print_stmt(os, stmt, indent);
  return os.str();
}

}  // namespace xtsoc::oal
