// Tokens of the OAL-style action language.
//
// The language is the textual form of the UML Action Semantics the paper
// relies on ("The introduction of the Action Semantics enables execution of
// UML models", §2). Syntax follows BridgePoint's Object Action Language:
//   select any clock from instances of Clock where (selected.id == 3);
//   generate tick() to clock delay 10;
#pragma once

#include <cstdint>
#include <string>

#include "xtsoc/common/diagnostics.hpp"

namespace xtsoc::oal {

enum class TokKind {
  kEof,
  kIdent,
  kIntLit,
  kRealLit,
  kStringLit,
  // keywords
  kKwIf, kKwElif, kKwElse, kKwEnd, kKwWhile, kKwFor, kKwEach, kKwIn,
  kKwSelect, kKwAny, kKwMany, kKwOne, kKwFrom, kKwInstances, kKwOf,
  kKwWhere, kKwRelated, kKwBy, kKwCreate, kKwDelete, kKwObject, kKwInstance,
  kKwRelate, kKwUnrelate, kKwTo, kKwAcross, kKwGenerate, kKwDelay,
  kKwSelf, kKwSelected, kKwParam, kKwTrue, kKwFalse, kKwAnd, kKwOr, kKwNot,
  kKwEmpty, kKwNotEmpty, kKwCardinality, kKwBreak, kKwContinue, kKwReturn,
  kKwLog,
  // punctuation / operators
  kLParen, kRParen, kLBracket, kRBracket, kComma, kSemi, kColon, kDot,
  kArrow,  // ->
  kAssign, // =
  kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash, kPercent,
};

const char* to_string(TokKind k);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;        ///< identifier / literal spelling
  std::int64_t int_value = 0;
  double real_value = 0.0;
  SourceLoc loc;
};

}  // namespace xtsoc::oal
