// CompiledDomain: a Domain plus every state action parsed, bound and
// type-checked. This is the artifact all downstream consumers share — the
// abstract interpreter, the model compiler and both code generators — so a
// model is analyzed exactly once.
#pragma once

#include <memory>
#include <vector>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/oal/sema.hpp"
#include "xtsoc/xtuml/model.hpp"

namespace xtsoc::oal {

/// All analyzed state actions of one class, indexed by StateId.
struct CompiledClass {
  ClassId id;
  std::vector<AnalyzedAction> state_actions;
};

/// The analyzed form of a whole domain. Holds a reference to the Domain,
/// which must outlive it.
class CompiledDomain {
public:
  CompiledDomain(const xtuml::Domain& domain,
                 std::vector<CompiledClass> classes)
      : domain_(&domain), classes_(std::move(classes)) {}

  const xtuml::Domain& domain() const { return *domain_; }
  const CompiledClass& cls(ClassId id) const {
    return classes_.at(id.value());
  }
  const AnalyzedAction& action(ClassId cls, StateId state) const {
    return classes_.at(cls.value()).state_actions.at(state.value());
  }
  const std::vector<CompiledClass>& classes() const { return classes_; }

private:
  const xtuml::Domain* domain_;
  std::vector<CompiledClass> classes_;
};

/// Validate + analyze every state action of `domain`. Returns nullptr and
/// fills `sink` if the model or any action is ill-formed.
std::unique_ptr<CompiledDomain> compile_domain(const xtuml::Domain& domain,
                                               DiagnosticSink& sink);

}  // namespace xtsoc::oal
