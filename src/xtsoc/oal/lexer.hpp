// Hand-written lexer for the OAL action language.
#pragma once

#include <string_view>
#include <vector>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/oal/token.hpp"

namespace xtsoc::oal {

/// Tokenize `source`. Lexical errors are reported to `sink`; the returned
/// stream always ends with a kEof token. `--` starts a comment to end of line.
std::vector<Token> lex(std::string_view source, DiagnosticSink& sink);

}  // namespace xtsoc::oal
