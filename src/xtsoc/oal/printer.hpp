// Pretty-printer: renders an AST back to canonical OAL text.
// Used for round-trip testing (parse(print(ast)) == ast) and for embedding
// readable action bodies as comments in generated C/VHDL.
#pragma once

#include <string>

#include "xtsoc/oal/ast.hpp"

namespace xtsoc::oal {

std::string print(const Block& block, int indent = 0);
std::string print(const Expr& expr);
std::string print(const Stmt& stmt, int indent = 0);

}  // namespace xtsoc::oal
