// Semantic analysis for OAL action bodies: name binding and type checking
// against a Domain, plus derivation of each state's *entry signature* (the
// parameters available via `param.x`).
//
// xtUML rule enforced here: every event whose transition enters a state must
// carry the same parameter signature, because the state's action reads those
// parameters without knowing which event fired.
#pragma once

#include <string>
#include <vector>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/oal/ast.hpp"
#include "xtsoc/xtuml/model.hpp"

namespace xtsoc::oal {

/// A local variable discovered during analysis (select/create/for-each or
/// first assignment). `slot` indexes the interpreter frame.
struct LocalVar {
  std::string name;
  OalType type;
  int slot = 0;
};

/// A fully analyzed action body, ready for interpretation or codegen.
struct AnalyzedAction {
  Block ast;
  std::vector<xtuml::Parameter> params;  ///< the state's entry signature
  std::vector<LocalVar> locals;
  int frame_size = 0;
};

/// Compute the entry signature of `state` in `cls`: the common parameter
/// list of every event entering it. (Instance creation places an instance in
/// its initial state *without* running the state's action, so creation does
/// not constrain the signature.) Errors go to `sink`.
std::vector<xtuml::Parameter> entry_signature(const xtuml::ClassDef& cls,
                                              StateId state,
                                              DiagnosticSink& sink);

/// Parse + analyze one state's action body. On error, diagnostics are
/// appended to `sink` and the returned action is unusable.
AnalyzedAction analyze_state_action(const xtuml::Domain& domain,
                                    const xtuml::ClassDef& cls, StateId state,
                                    DiagnosticSink& sink);

/// Analyze an already-parsed block with an explicit signature (used for
/// test-case setup blocks and the .xtm loader).
AnalyzedAction analyze_block(const xtuml::Domain& domain, ClassId self_class,
                             Block block, std::vector<xtuml::Parameter> params,
                             DiagnosticSink& sink);

}  // namespace xtsoc::oal
