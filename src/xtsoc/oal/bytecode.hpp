// Bytecode form of analyzed OAL actions: a compact stack machine.
//
// The repository ships TWO action-execution engines over the same analyzed
// AST: the tree-walking interpreter (runtime/interp.*) and the VM over this
// bytecode (runtime/vm.*). Both implement the identical observable
// semantics — which is checked, not assumed: the test suite and
// bench_engines cross-compare their traces event by event. That is the
// paper's §4 argument ("a model compiler ... may do [it] any manner it
// chooses so long as the defined behavior is preserved") demonstrated with
// n = 2 implementations.
//
// Machine model:
//   * value stack of runtime Values;
//   * frame of slots (sema locals first, then compiler temporaries);
//   * `selected` register, set while a where-filter sub-block runs;
//   * where-clauses compile to sub-blocks invoked per candidate.
#pragma once

#include <cstdint>
#include <vector>

#include "xtsoc/oal/sema.hpp"

namespace xtsoc::oal {

enum class Op : std::uint8_t {
  // stack & frame
  kPushConst,   ///< a = constant-pool index
  kPushNull,    ///< push a null instance handle
  kLoadLocal,   ///< a = slot
  kStoreLocal,  ///< a = slot (pops)
  kLoadParam,   ///< a = param index
  kLoadSelf,
  kLoadSelected,
  kPop,
  // attributes (object on stack)
  kGetAttr,     ///< a = attr id; pops object, pushes value
  kSetAttr,     ///< a = attr id; pops value, object
  // arithmetic / comparison / logic (operands popped, result pushed)
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kNot, kNeg,
  kCard,        ///< cardinality of set/handle
  kIsEmpty,     ///< emptiness of set/handle (bool)
  kIndexSet,    ///< pops index, set; pushes set[index]
  kWiden,       ///< int -> real if the top is an int (assign to real slot)
  // control flow
  kJump,         ///< a = target pc
  kJumpIfFalse,  ///< a = target pc (pops condition)
  kReturn,
  // instances & links
  kCreate,     ///< a = class id; pushes new handle
  kDelete,     ///< pops handle
  kRelate,     ///< a = assoc id, b = 1 if operands arrive swapped; pops b, a
  kUnrelate,   ///< a = assoc id; pops b, a
  kSelectAll,  ///< a = class id; pushes the full extent as a set
  kRelated,    ///< a = assoc id; pops start handle, pushes related set
  kFilter,     ///< a = sub-block idx, b = 1 keep-first-only; pops set,
               ///< pushes filtered set (runs sub per candidate w/ selected)
  kSetToRef,   ///< pops set, pushes first element or null
  // effects
  kGenerate,   ///< a = (target class<<16)|event, b = (argc<<1)|has_delay;
               ///< pops [delay], target, argN..arg1
  kLog,        ///< a = argc; pops argc values (last on top)
  // platform memory port (xtsoc::mem via the Host)
  kMemRead,    ///< pops address, pushes loaded value
  kMemWrite,   ///< pops value, address (value on top)
};

struct Instr {
  Op op;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

struct CodeBlock {
  std::vector<Instr> code;
  /// Scalar constant pool (instance-handle constants cannot exist in
  /// source, so ScalarValue suffices and keeps oal independent of runtime).
  std::vector<xtuml::ScalarValue> constants;
  std::vector<CodeBlock> subs;   ///< where-filter predicates
  int frame_size = 0;            ///< locals + temporaries
};

/// Compile an analyzed action to bytecode. The action must have passed
/// sema (all annotations resolved); compilation cannot fail.
CodeBlock compile_bytecode(const AnalyzedAction& action);

/// Disassemble for debugging and golden tests.
std::string disassemble(const CodeBlock& block);

}  // namespace xtsoc::oal
