#include "xtsoc/oal/bytecode.hpp"

#include <sstream>

#include "xtsoc/oal/ast.hpp"

namespace xtsoc::oal {

namespace {

class Compiler {
public:
  explicit Compiler(const AnalyzedAction& action) : action_(action) {
    block_.frame_size = action.frame_size;
  }

  CodeBlock run() {
    emit_block(action_.ast);
    emit(Op::kReturn);
    return std::move(block_);
  }

private:
  std::uint32_t emit(Op op, std::uint32_t a = 0, std::uint32_t b = 0) {
    block_.code.push_back({op, a, b});
    return static_cast<std::uint32_t>(block_.code.size() - 1);
  }

  std::uint32_t here() const {
    return static_cast<std::uint32_t>(block_.code.size());
  }

  void patch(std::uint32_t at, std::uint32_t target) {
    block_.code[at].a = target;
  }

  std::uint32_t constant(xtuml::ScalarValue v) {
    for (std::size_t i = 0; i < block_.constants.size(); ++i) {
      if (block_.constants[i] == v) return static_cast<std::uint32_t>(i);
    }
    block_.constants.push_back(std::move(v));
    return static_cast<std::uint32_t>(block_.constants.size() - 1);
  }

  int temp_slot() { return block_.frame_size++; }

  // --- expressions ---------------------------------------------------------

  void emit_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        emit(Op::kPushConst,
             constant(static_cast<const LiteralExpr&>(e).value));
        break;
      case ExprKind::kVarRef:
        emit(Op::kLoadLocal,
             static_cast<std::uint32_t>(
                 static_cast<const VarRefExpr&>(e).slot));
        break;
      case ExprKind::kSelfRef:
        emit(Op::kLoadSelf);
        break;
      case ExprKind::kSelectedRef:
        emit(Op::kLoadSelected);
        break;
      case ExprKind::kParamRef:
        emit(Op::kLoadParam,
             static_cast<std::uint32_t>(
                 static_cast<const ParamRefExpr&>(e).param_index));
        break;
      case ExprKind::kAttrAccess: {
        const auto& a = static_cast<const AttrAccessExpr&>(e);
        emit_expr(*a.object);
        emit(Op::kGetAttr, a.attr.value());
        break;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        emit_expr(*u.operand);
        emit(u.op == UnaryOp::kNeg ? Op::kNeg : Op::kNot);
        break;
      }
      case ExprKind::kBinary:
        emit_binary(static_cast<const BinaryExpr&>(e));
        break;
      case ExprKind::kCardinality:
        emit_expr(*static_cast<const CardinalityExpr&>(e).operand);
        emit(Op::kCard);
        break;
      case ExprKind::kEmpty:
        emit_expr(*static_cast<const EmptyExpr&>(e).operand);
        emit(Op::kIsEmpty);
        break;
      case ExprKind::kNotEmpty:
        emit_expr(*static_cast<const EmptyExpr&>(e).operand);
        emit(Op::kIsEmpty);
        emit(Op::kNot);
        break;
      case ExprKind::kMemRead:
        emit_expr(*static_cast<const MemReadExpr&>(e).addr);
        emit(Op::kMemRead);
        break;
    }
  }

  void emit_binary(const BinaryExpr& b) {
    // Short-circuit logic via jumps (same observable behaviour as interp).
    if (b.op == BinaryOp::kAnd || b.op == BinaryOp::kOr) {
      emit_expr(*b.lhs);
      if (b.op == BinaryOp::kAnd) {
        // lhs false -> push false; else evaluate rhs
        std::uint32_t jf = emit(Op::kJumpIfFalse);
        emit_expr(*b.rhs);
        std::uint32_t jend = emit(Op::kJump);
        patch(jf, here());
        emit(Op::kPushConst, constant(xtuml::ScalarValue(false)));
        patch(jend, here());
      } else {
        emit(Op::kNot);
        std::uint32_t jf = emit(Op::kJumpIfFalse);  // lhs was true
        emit_expr(*b.rhs);
        std::uint32_t jend = emit(Op::kJump);
        patch(jf, here());
        emit(Op::kPushConst, constant(xtuml::ScalarValue(true)));
        patch(jend, here());
      }
      return;
    }
    emit_expr(*b.lhs);
    emit_expr(*b.rhs);
    switch (b.op) {
      case BinaryOp::kAdd: emit(Op::kAdd); break;
      case BinaryOp::kSub: emit(Op::kSub); break;
      case BinaryOp::kMul: emit(Op::kMul); break;
      case BinaryOp::kDiv: emit(Op::kDiv); break;
      case BinaryOp::kMod: emit(Op::kMod); break;
      case BinaryOp::kEq: emit(Op::kEq); break;
      case BinaryOp::kNe: emit(Op::kNe); break;
      case BinaryOp::kLt: emit(Op::kLt); break;
      case BinaryOp::kLe: emit(Op::kLe); break;
      case BinaryOp::kGt: emit(Op::kGt); break;
      case BinaryOp::kGe: emit(Op::kGe); break;
      default: break;
    }
  }

  // --- statements ----------------------------------------------------------

  struct LoopCtx {
    std::vector<std::uint32_t> break_jumps;
    std::uint32_t continue_target = 0;
    bool continue_known = false;
    std::vector<std::uint32_t> continue_jumps;
  };

  void emit_block(const Block& b) {
    for (const auto& s : b.stmts) emit_stmt(*s);
  }

  void emit_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        emit_expr(*a.rvalue);
        if (a.lvalue->kind == ExprKind::kVarRef) {
          const auto& v = static_cast<const VarRefExpr&>(*a.lvalue);
          if (v.type.base == xtuml::DataType::kReal) emit(Op::kWiden);
          emit(Op::kStoreLocal, static_cast<std::uint32_t>(v.slot));
        } else {
          const auto& acc = static_cast<const AttrAccessExpr&>(*a.lvalue);
          emit_expr(*acc.object);
          emit(Op::kSetAttr, acc.attr.value());
        }
        break;
      }
      case StmtKind::kCreate: {
        const auto& c = static_cast<const CreateStmt&>(s);
        emit(Op::kCreate, c.cls.value());
        emit(Op::kStoreLocal, static_cast<std::uint32_t>(c.slot));
        break;
      }
      case StmtKind::kDelete:
        emit_expr(*static_cast<const DeleteStmt&>(s).object);
        emit(Op::kDelete);
        break;
      case StmtKind::kGenerate: {
        const auto& g = static_cast<const GenerateStmt&>(s);
        // Push args in parameter order.
        std::vector<const Expr*> args(g.args.size(), nullptr);
        for (const auto& a : g.args) {
          args[static_cast<std::size_t>(a.param_index)] = a.value.get();
        }
        for (const Expr* a : args) emit_expr(*a);
        emit_expr(*g.target);
        if (g.delay) emit_expr(*g.delay);
        emit(Op::kGenerate,
             (g.target_class.value() << 16) | g.event.value(),
             (static_cast<std::uint32_t>(args.size()) << 1) |
                 (g.delay ? 1u : 0u));
        break;
      }
      case StmtKind::kSelectFrom: {
        const auto& sel = static_cast<const SelectFromStmt&>(s);
        emit(Op::kSelectAll, sel.cls.value());
        emit_filter_and_store(sel.where.get(), sel.many, sel.slot);
        break;
      }
      case StmtKind::kSelectRelated: {
        const auto& sel = static_cast<const SelectRelatedStmt&>(s);
        emit_expr(*sel.start);
        emit(Op::kRelated, sel.assoc.value());
        emit_filter_and_store(sel.where.get(), sel.many, sel.slot);
        break;
      }
      case StmtKind::kRelate:
      case StmtKind::kUnrelate: {
        const auto& r = static_cast<const RelateStmt&>(s);
        emit_expr(*r.a);
        emit_expr(*r.b);
        emit(s.kind == StmtKind::kRelate ? Op::kRelate : Op::kUnrelate,
             r.assoc.value());
        break;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        std::vector<std::uint32_t> end_jumps;
        for (const auto& br : i.branches) {
          emit_expr(*br.cond);
          std::uint32_t jf = emit(Op::kJumpIfFalse);
          emit_block(br.body);
          end_jumps.push_back(emit(Op::kJump));
          patch(jf, here());
        }
        if (i.else_body) emit_block(*i.else_body);
        for (std::uint32_t j : end_jumps) patch(j, here());
        break;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        loops_.push_back({});
        loops_.back().continue_target = here();
        loops_.back().continue_known = true;
        std::uint32_t top = here();
        emit_expr(*w.cond);
        std::uint32_t jf = emit(Op::kJumpIfFalse);
        emit_block(w.body);
        emit(Op::kJump, top);
        patch(jf, here());
        for (std::uint32_t j : loops_.back().break_jumps) patch(j, here());
        loops_.pop_back();
        break;
      }
      case StmtKind::kForEach:
        emit_foreach(static_cast<const ForEachStmt&>(s));
        break;
      case StmtKind::kBreak:
        if (!loops_.empty()) {
          loops_.back().break_jumps.push_back(emit(Op::kJump));
        }
        break;
      case StmtKind::kContinue:
        if (!loops_.empty()) {
          LoopCtx& l = loops_.back();
          if (l.continue_known) {
            emit(Op::kJump, l.continue_target);
          } else {
            l.continue_jumps.push_back(emit(Op::kJump));
          }
        }
        break;
      case StmtKind::kReturn:
        emit(Op::kReturn);
        break;
      case StmtKind::kLog: {
        const auto& l = static_cast<const LogStmt&>(s);
        for (const auto& a : l.args) emit_expr(*a);
        emit(Op::kLog, static_cast<std::uint32_t>(l.args.size()));
        break;
      }
      case StmtKind::kMemWrite: {
        const auto& m = static_cast<const MemWriteStmt&>(s);
        emit_expr(*m.addr);
        emit_expr(*m.value);
        emit(Op::kMemWrite);
        break;
      }
    }
  }

  /// Top of stack holds a candidate set; apply optional where, then store
  /// (many: the set; any/one: first element or null).
  void emit_filter_and_store(const Expr* where, bool many, int slot) {
    if (where != nullptr) {
      CodeBlock sub;
      {
        Compiler sc(action_);
        sc.block_.frame_size = 0;  // predicates use no locals of their own
        sc.emit_expr(*where);
        sc.emit(Op::kReturn);
        sub = std::move(sc.block_);
      }
      block_.subs.push_back(std::move(sub));
      emit(Op::kFilter,
           static_cast<std::uint32_t>(block_.subs.size() - 1),
           many ? 0 : 1);
    }
    if (!many) emit(Op::kSetToRef);
    emit(Op::kStoreLocal, static_cast<std::uint32_t>(slot));
  }

  void emit_foreach(const ForEachStmt& f) {
    int set_slot = temp_slot();
    int idx_slot = temp_slot();

    emit_expr(*f.set);
    emit(Op::kStoreLocal, static_cast<std::uint32_t>(set_slot));
    emit(Op::kPushConst, constant(xtuml::ScalarValue(std::int64_t{0})));
    emit(Op::kStoreLocal, static_cast<std::uint32_t>(idx_slot));

    loops_.push_back({});
    loops_.back().continue_known = false;  // continue jumps to the increment

    std::uint32_t top = here();
    emit(Op::kLoadLocal, static_cast<std::uint32_t>(idx_slot));
    emit(Op::kLoadLocal, static_cast<std::uint32_t>(set_slot));
    emit(Op::kCard);
    emit(Op::kLt);
    std::uint32_t jf = emit(Op::kJumpIfFalse);

    emit(Op::kLoadLocal, static_cast<std::uint32_t>(set_slot));
    emit(Op::kLoadLocal, static_cast<std::uint32_t>(idx_slot));
    emit(Op::kIndexSet);
    emit(Op::kStoreLocal, static_cast<std::uint32_t>(f.slot));

    emit_block(f.body);

    // increment (continue target)
    std::uint32_t inc = here();
    for (std::uint32_t j : loops_.back().continue_jumps) patch(j, inc);
    emit(Op::kLoadLocal, static_cast<std::uint32_t>(idx_slot));
    emit(Op::kPushConst, constant(xtuml::ScalarValue(std::int64_t{1})));
    emit(Op::kAdd);
    emit(Op::kStoreLocal, static_cast<std::uint32_t>(idx_slot));
    emit(Op::kJump, top);

    patch(jf, here());
    for (std::uint32_t j : loops_.back().break_jumps) patch(j, here());
    loops_.pop_back();
  }

  const AnalyzedAction& action_;
  CodeBlock block_;
  std::vector<LoopCtx> loops_;
};

const char* op_name(Op op) {
  switch (op) {
    case Op::kPushConst: return "push_const";
    case Op::kPushNull: return "push_null";
    case Op::kLoadLocal: return "load";
    case Op::kStoreLocal: return "store";
    case Op::kLoadParam: return "param";
    case Op::kLoadSelf: return "self";
    case Op::kLoadSelected: return "selected";
    case Op::kPop: return "pop";
    case Op::kGetAttr: return "get_attr";
    case Op::kSetAttr: return "set_attr";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kNot: return "not";
    case Op::kNeg: return "neg";
    case Op::kCard: return "card";
    case Op::kIsEmpty: return "is_empty";
    case Op::kIndexSet: return "index";
    case Op::kWiden: return "widen";
    case Op::kJump: return "jmp";
    case Op::kJumpIfFalse: return "jmp_false";
    case Op::kReturn: return "ret";
    case Op::kCreate: return "create";
    case Op::kDelete: return "delete";
    case Op::kRelate: return "relate";
    case Op::kUnrelate: return "unrelate";
    case Op::kSelectAll: return "select_all";
    case Op::kRelated: return "related";
    case Op::kFilter: return "filter";
    case Op::kSetToRef: return "set_to_ref";
    case Op::kGenerate: return "generate";
    case Op::kLog: return "log";
    case Op::kMemRead: return "mem_read";
    case Op::kMemWrite: return "mem_write";
  }
  return "?";
}

}  // namespace

CodeBlock compile_bytecode(const AnalyzedAction& action) {
  return Compiler(action).run();
}

std::string disassemble(const CodeBlock& block) {
  std::ostringstream os;
  for (std::size_t pc = 0; pc < block.code.size(); ++pc) {
    const Instr& i = block.code[pc];
    os << pc << ": " << op_name(i.op);
    if (i.op == Op::kPushConst && i.a < block.constants.size()) {
      os << ' ' << xtuml::scalar_to_string(block.constants[i.a]);
    } else if (i.a != 0 || i.b != 0) {
      os << ' ' << i.a;
      if (i.b != 0) os << ", " << i.b;
    }
    os << '\n';
  }
  for (std::size_t s = 0; s < block.subs.size(); ++s) {
    os << "sub " << s << ":\n" << disassemble(block.subs[s]);
  }
  return os.str();
}

}  // namespace xtsoc::oal
