// Abstract syntax tree for OAL action bodies.
//
// Nodes carry two layers of information: syntax (filled by the parser) and
// binding/type annotations (filled by sema). The interpreter and both code
// generators consume the annotated tree.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/common/ids.hpp"
#include "xtsoc/xtuml/types.hpp"

namespace xtsoc::oal {

using xtuml::DataType;

/// Type of an OAL expression: a scalar, an instance reference, or an
/// instance *set* (result of `select many`).
struct OalType {
  DataType base = DataType::kVoid;
  bool is_set = false;
  ClassId cls = ClassId::invalid();  ///< valid when base == kInstRef

  static OalType scalar(DataType t) { return {t, false, ClassId::invalid()}; }
  static OalType inst(ClassId c) { return {DataType::kInstRef, false, c}; }
  static OalType inst_set(ClassId c) { return {DataType::kInstRef, true, c}; }
  static OalType void_type() { return {DataType::kVoid, false, ClassId::invalid()}; }

  bool is_numeric() const {
    return !is_set && (base == DataType::kInt || base == DataType::kReal);
  }
  bool is_instance() const { return base == DataType::kInstRef && !is_set; }

  friend bool operator==(const OalType&, const OalType&) = default;
  std::string to_string() const;
};

// --- expressions -----------------------------------------------------------

enum class ExprKind {
  kLiteral, kVarRef, kSelfRef, kParamRef, kSelectedRef, kAttrAccess,
  kUnary, kBinary, kCardinality, kEmpty, kNotEmpty, kMemRead,
};

enum class UnaryOp { kNeg, kNot };
enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* to_string(UnaryOp op);
const char* to_string(BinaryOp op);

struct Expr {
  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  const ExprKind kind;
  SourceLoc loc;
  OalType type;  ///< set by sema
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  LiteralExpr(xtuml::ScalarValue v, SourceLoc l)
      : Expr(ExprKind::kLiteral, l), value(std::move(v)) {}
  xtuml::ScalarValue value;
};

/// Reference to a local variable (declared by first assignment, a select,
/// a create, or a for-each loop header).
struct VarRefExpr : Expr {
  VarRefExpr(std::string n, SourceLoc l)
      : Expr(ExprKind::kVarRef, l), name(std::move(n)) {}
  std::string name;
  int slot = -1;  ///< frame slot, set by sema
};

struct SelfRefExpr : Expr {
  explicit SelfRefExpr(SourceLoc l) : Expr(ExprKind::kSelfRef, l) {}
};

/// `param.<name>` — a parameter of the event that triggered this state.
struct ParamRefExpr : Expr {
  ParamRefExpr(std::string n, SourceLoc l)
      : Expr(ExprKind::kParamRef, l), name(std::move(n)) {}
  std::string name;
  int param_index = -1;  ///< set by sema
};

/// `selected` — the candidate instance inside a select..where clause.
struct SelectedRefExpr : Expr {
  explicit SelectedRefExpr(SourceLoc l) : Expr(ExprKind::kSelectedRef, l) {}
};

/// `<object>.<attribute>` where <object> is any instance-typed expression.
struct AttrAccessExpr : Expr {
  AttrAccessExpr(ExprPtr obj, std::string attr, SourceLoc l)
      : Expr(ExprKind::kAttrAccess, l), object(std::move(obj)),
        attr_name(std::move(attr)) {}
  ExprPtr object;
  std::string attr_name;
  ClassId cls = ClassId::invalid();          ///< set by sema
  AttributeId attr = AttributeId::invalid(); ///< set by sema
};

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e, SourceLoc l)
      : Expr(ExprKind::kUnary, l), op(o), operand(std::move(e)) {}
  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr a, ExprPtr b, SourceLoc l)
      : Expr(ExprKind::kBinary, l), op(o), lhs(std::move(a)), rhs(std::move(b)) {}
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// `cardinality x` — number of instances in a set (or 0/1 for a ref).
struct CardinalityExpr : Expr {
  CardinalityExpr(ExprPtr e, SourceLoc l)
      : Expr(ExprKind::kCardinality, l), operand(std::move(e)) {}
  ExprPtr operand;
};

/// `empty x` / `not_empty x` — emptiness tests on refs and sets.
struct EmptyExpr : Expr {
  EmptyExpr(bool negated, ExprPtr e, SourceLoc l)
      : Expr(negated ? ExprKind::kNotEmpty : ExprKind::kEmpty, l),
        operand(std::move(e)) {}
  ExprPtr operand;
};

/// `mem.read(addr)` — load from the platform memory port. What it costs is
/// the marks' decision (the xtsoc::mem hierarchy); what it returns is not.
struct MemReadExpr : Expr {
  MemReadExpr(ExprPtr a, SourceLoc l)
      : Expr(ExprKind::kMemRead, l), addr(std::move(a)) {}
  ExprPtr addr;
};

// --- statements --------------------------------------------------------------

enum class StmtKind {
  kAssign, kCreate, kDelete, kGenerate, kSelectFrom, kSelectRelated,
  kRelate, kUnrelate, kIf, kWhile, kForEach, kBreak, kContinue, kReturn, kLog,
  kMemWrite,
};

struct Stmt {
  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  const StmtKind kind;
  SourceLoc loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct Block {
  std::vector<StmtPtr> stmts;
};

/// `lvalue = expr;` — lvalue is a VarRef (declares on first write) or an
/// AttrAccess (writes an attribute).
struct AssignStmt : Stmt {
  AssignStmt(ExprPtr lv, ExprPtr rv, SourceLoc l)
      : Stmt(StmtKind::kAssign, l), lvalue(std::move(lv)), rvalue(std::move(rv)) {}
  ExprPtr lvalue;
  ExprPtr rvalue;
  bool declares = false;  ///< set by sema: this assignment introduces the var
};

/// `create object instance x of Class;`
struct CreateStmt : Stmt {
  CreateStmt(std::string v, std::string c, SourceLoc l)
      : Stmt(StmtKind::kCreate, l), var(std::move(v)), class_name(std::move(c)) {}
  std::string var;
  std::string class_name;
  int slot = -1;
  ClassId cls = ClassId::invalid();
};

/// `delete object instance x;`
struct DeleteStmt : Stmt {
  DeleteStmt(ExprPtr e, SourceLoc l)
      : Stmt(StmtKind::kDelete, l), object(std::move(e)) {}
  ExprPtr object;
};

/// `generate ev(name: expr, ...) to target [delay expr];`
struct GenerateStmt : Stmt {
  struct Arg {
    std::string name;
    ExprPtr value;
    int param_index = -1;  ///< set by sema
  };
  GenerateStmt(std::string ev, std::vector<Arg> a, ExprPtr tgt, ExprPtr dly,
               SourceLoc l)
      : Stmt(StmtKind::kGenerate, l), event_name(std::move(ev)),
        args(std::move(a)), target(std::move(tgt)), delay(std::move(dly)) {}
  std::string event_name;
  std::vector<Arg> args;
  ExprPtr target;
  ExprPtr delay;  ///< may be null
  ClassId target_class = ClassId::invalid();  ///< set by sema
  EventId event = EventId::invalid();         ///< set by sema
};

/// `select any|many x from instances of Class [where (expr)];`
struct SelectFromStmt : Stmt {
  SelectFromStmt(bool many_, std::string v, std::string c, ExprPtr w, SourceLoc l)
      : Stmt(StmtKind::kSelectFrom, l), many(many_), var(std::move(v)),
        class_name(std::move(c)), where(std::move(w)) {}
  bool many;
  std::string var;
  std::string class_name;
  ExprPtr where;  ///< may be null; `selected` is bound inside
  int slot = -1;
  ClassId cls = ClassId::invalid();
};

/// `select one|many x related by start->Class[Rn] [where (expr)];`
struct SelectRelatedStmt : Stmt {
  SelectRelatedStmt(bool many_, std::string v, ExprPtr s, std::string c,
                    std::string r, ExprPtr w, SourceLoc l)
      : Stmt(StmtKind::kSelectRelated, l), many(many_), var(std::move(v)),
        start(std::move(s)), class_name(std::move(c)), assoc_name(std::move(r)),
        where(std::move(w)) {}
  bool many;
  std::string var;
  ExprPtr start;
  std::string class_name;
  std::string assoc_name;
  ExprPtr where;  ///< may be null
  int slot = -1;
  ClassId cls = ClassId::invalid();
  AssociationId assoc = AssociationId::invalid();
};

/// `relate a to b across Rn;` / `unrelate a from b across Rn;`
struct RelateStmt : Stmt {
  RelateStmt(bool unrelate_, ExprPtr a_, ExprPtr b_, std::string r, SourceLoc l)
      : Stmt(unrelate_ ? StmtKind::kUnrelate : StmtKind::kRelate, l),
        a(std::move(a_)), b(std::move(b_)), assoc_name(std::move(r)) {}
  ExprPtr a;
  ExprPtr b;
  std::string assoc_name;
  AssociationId assoc = AssociationId::invalid();
};

struct IfStmt : Stmt {
  struct Branch {
    ExprPtr cond;
    Block body;
  };
  IfStmt(SourceLoc l) : Stmt(StmtKind::kIf, l) {}
  std::vector<Branch> branches;  ///< if + elif chain
  std::optional<Block> else_body;
};

struct WhileStmt : Stmt {
  WhileStmt(ExprPtr c, SourceLoc l) : Stmt(StmtKind::kWhile, l), cond(std::move(c)) {}
  ExprPtr cond;
  Block body;
};

/// `for each x in set_expr ... end for;`
struct ForEachStmt : Stmt {
  ForEachStmt(std::string v, ExprPtr s, SourceLoc l)
      : Stmt(StmtKind::kForEach, l), var(std::move(v)), set(std::move(s)) {}
  std::string var;
  ExprPtr set;
  Block body;
  int slot = -1;
};

struct BreakStmt : Stmt {
  explicit BreakStmt(SourceLoc l) : Stmt(StmtKind::kBreak, l) {}
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(SourceLoc l) : Stmt(StmtKind::kContinue, l) {}
};

struct ReturnStmt : Stmt {
  explicit ReturnStmt(SourceLoc l) : Stmt(StmtKind::kReturn, l) {}
};

/// `log expr, expr, ...;` — diagnostic output to the execution trace.
struct LogStmt : Stmt {
  LogStmt(std::vector<ExprPtr> a, SourceLoc l)
      : Stmt(StmtKind::kLog, l), args(std::move(a)) {}
  std::vector<ExprPtr> args;
};

/// `mem.write(addr, value);` — store to the platform memory port.
struct MemWriteStmt : Stmt {
  MemWriteStmt(ExprPtr a, ExprPtr v, SourceLoc l)
      : Stmt(StmtKind::kMemWrite, l), addr(std::move(a)), value(std::move(v)) {}
  ExprPtr addr;
  ExprPtr value;
};

}  // namespace xtsoc::oal
