#include "xtsoc/oal/compiled.hpp"

#include "xtsoc/xtuml/validate.hpp"

namespace xtsoc::oal {

std::unique_ptr<CompiledDomain> compile_domain(const xtuml::Domain& domain,
                                               DiagnosticSink& sink) {
  if (!xtuml::validate(domain, sink)) return nullptr;

  std::vector<CompiledClass> classes;
  classes.reserve(domain.class_count());
  bool ok = true;
  for (const auto& c : domain.classes()) {
    CompiledClass cc;
    cc.id = c.id;
    cc.state_actions.reserve(c.states.size());
    for (const auto& st : c.states) {
      const std::size_t before = sink.error_count();
      AnalyzedAction action = analyze_state_action(domain, c, st.id, sink);
      if (sink.error_count() != before) {
        sink.note("oal.compile.where",
                  "while compiling " + c.name + "." + st.name);
        ok = false;
      }
      cc.state_actions.push_back(std::move(action));
    }
    classes.push_back(std::move(cc));
  }
  if (!ok) return nullptr;
  return std::make_unique<CompiledDomain>(domain, std::move(classes));
}

}  // namespace xtsoc::oal
