#include "xtsoc/oal/lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace xtsoc::oal {

const char* to_string(TokKind k) {
  switch (k) {
    case TokKind::kEof: return "<eof>";
    case TokKind::kIdent: return "identifier";
    case TokKind::kIntLit: return "integer literal";
    case TokKind::kRealLit: return "real literal";
    case TokKind::kStringLit: return "string literal";
    case TokKind::kKwIf: return "'if'";
    case TokKind::kKwElif: return "'elif'";
    case TokKind::kKwElse: return "'else'";
    case TokKind::kKwEnd: return "'end'";
    case TokKind::kKwWhile: return "'while'";
    case TokKind::kKwFor: return "'for'";
    case TokKind::kKwEach: return "'each'";
    case TokKind::kKwIn: return "'in'";
    case TokKind::kKwSelect: return "'select'";
    case TokKind::kKwAny: return "'any'";
    case TokKind::kKwMany: return "'many'";
    case TokKind::kKwOne: return "'one'";
    case TokKind::kKwFrom: return "'from'";
    case TokKind::kKwInstances: return "'instances'";
    case TokKind::kKwOf: return "'of'";
    case TokKind::kKwWhere: return "'where'";
    case TokKind::kKwRelated: return "'related'";
    case TokKind::kKwBy: return "'by'";
    case TokKind::kKwCreate: return "'create'";
    case TokKind::kKwDelete: return "'delete'";
    case TokKind::kKwObject: return "'object'";
    case TokKind::kKwInstance: return "'instance'";
    case TokKind::kKwRelate: return "'relate'";
    case TokKind::kKwUnrelate: return "'unrelate'";
    case TokKind::kKwTo: return "'to'";
    case TokKind::kKwAcross: return "'across'";
    case TokKind::kKwGenerate: return "'generate'";
    case TokKind::kKwDelay: return "'delay'";
    case TokKind::kKwSelf: return "'self'";
    case TokKind::kKwSelected: return "'selected'";
    case TokKind::kKwParam: return "'param'";
    case TokKind::kKwTrue: return "'true'";
    case TokKind::kKwFalse: return "'false'";
    case TokKind::kKwAnd: return "'and'";
    case TokKind::kKwOr: return "'or'";
    case TokKind::kKwNot: return "'not'";
    case TokKind::kKwEmpty: return "'empty'";
    case TokKind::kKwNotEmpty: return "'not_empty'";
    case TokKind::kKwCardinality: return "'cardinality'";
    case TokKind::kKwBreak: return "'break'";
    case TokKind::kKwContinue: return "'continue'";
    case TokKind::kKwReturn: return "'return'";
    case TokKind::kKwLog: return "'log'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kComma: return "','";
    case TokKind::kSemi: return "';'";
    case TokKind::kColon: return "':'";
    case TokKind::kDot: return "'.'";
    case TokKind::kArrow: return "'->'";
    case TokKind::kAssign: return "'='";
    case TokKind::kEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokKind>& keywords() {
  static const std::unordered_map<std::string_view, TokKind> kMap = {
      {"if", TokKind::kKwIf},
      {"elif", TokKind::kKwElif},
      {"else", TokKind::kKwElse},
      {"end", TokKind::kKwEnd},
      {"while", TokKind::kKwWhile},
      {"for", TokKind::kKwFor},
      {"each", TokKind::kKwEach},
      {"in", TokKind::kKwIn},
      {"select", TokKind::kKwSelect},
      {"any", TokKind::kKwAny},
      {"many", TokKind::kKwMany},
      {"one", TokKind::kKwOne},
      {"from", TokKind::kKwFrom},
      {"instances", TokKind::kKwInstances},
      {"of", TokKind::kKwOf},
      {"where", TokKind::kKwWhere},
      {"related", TokKind::kKwRelated},
      {"by", TokKind::kKwBy},
      {"create", TokKind::kKwCreate},
      {"delete", TokKind::kKwDelete},
      {"object", TokKind::kKwObject},
      {"instance", TokKind::kKwInstance},
      {"relate", TokKind::kKwRelate},
      {"unrelate", TokKind::kKwUnrelate},
      {"to", TokKind::kKwTo},
      {"across", TokKind::kKwAcross},
      {"generate", TokKind::kKwGenerate},
      {"delay", TokKind::kKwDelay},
      {"self", TokKind::kKwSelf},
      {"selected", TokKind::kKwSelected},
      {"param", TokKind::kKwParam},
      {"true", TokKind::kKwTrue},
      {"false", TokKind::kKwFalse},
      {"and", TokKind::kKwAnd},
      {"or", TokKind::kKwOr},
      {"not", TokKind::kKwNot},
      {"empty", TokKind::kKwEmpty},
      {"not_empty", TokKind::kKwNotEmpty},
      {"cardinality", TokKind::kKwCardinality},
      {"break", TokKind::kKwBreak},
      {"continue", TokKind::kKwContinue},
      {"return", TokKind::kKwReturn},
      {"log", TokKind::kKwLog},
  };
  return kMap;
}

class Lexer {
public:
  Lexer(std::string_view src, DiagnosticSink& sink) : src_(src), sink_(sink) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_ws_and_comments();
      Token t = next();
      bool eof = t.kind == TokKind::kEof;
      out.push_back(std::move(t));
      if (eof) break;
    }
    return out;
  }

private:
  char peek(std::size_t k = 0) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  SourceLoc here() const { return {line_, col_}; }

  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '-' && peek(1) == '-') {
        while (pos_ < src_.size() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  Token make(TokKind k, SourceLoc loc, std::string text = {}) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.loc = loc;
    return t;
  }

  Token next() {
    SourceLoc loc = here();
    if (pos_ >= src_.size()) return make(TokKind::kEof, loc);

    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return identifier(loc);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return number(loc);
    }
    if (c == '"') return string_lit(loc);

    advance();
    switch (c) {
      case '(': return make(TokKind::kLParen, loc);
      case ')': return make(TokKind::kRParen, loc);
      case '[': return make(TokKind::kLBracket, loc);
      case ']': return make(TokKind::kRBracket, loc);
      case ',': return make(TokKind::kComma, loc);
      case ';': return make(TokKind::kSemi, loc);
      case ':': return make(TokKind::kColon, loc);
      case '.': return make(TokKind::kDot, loc);
      case '+': return make(TokKind::kPlus, loc);
      case '*': return make(TokKind::kStar, loc);
      case '/': return make(TokKind::kSlash, loc);
      case '%': return make(TokKind::kPercent, loc);
      case '-':
        if (peek() == '>') {
          advance();
          return make(TokKind::kArrow, loc);
        }
        return make(TokKind::kMinus, loc);
      case '=':
        if (peek() == '=') {
          advance();
          return make(TokKind::kEq, loc);
        }
        return make(TokKind::kAssign, loc);
      case '!':
        if (peek() == '=') {
          advance();
          return make(TokKind::kNe, loc);
        }
        break;
      case '<':
        if (peek() == '=') {
          advance();
          return make(TokKind::kLe, loc);
        }
        return make(TokKind::kLt, loc);
      case '>':
        if (peek() == '=') {
          advance();
          return make(TokKind::kGe, loc);
        }
        return make(TokKind::kGt, loc);
      default:
        break;
    }
    sink_.error("oal.lex.char",
                std::string("unexpected character '") + c + "'", loc);
    return next_or_eof(loc);
  }

  Token next_or_eof(SourceLoc loc) {
    skip_ws_and_comments();
    if (pos_ >= src_.size()) return make(TokKind::kEof, loc);
    return next();
  }

  Token identifier(SourceLoc loc) {
    std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
      advance();
    }
    std::string_view text = src_.substr(start, pos_ - start);
    auto it = keywords().find(text);
    if (it != keywords().end()) return make(it->second, loc, std::string(text));
    return make(TokKind::kIdent, loc, std::string(text));
  }

  Token number(SourceLoc loc) {
    std::size_t start = pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    bool is_real = false;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_real = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    std::string_view text = src_.substr(start, pos_ - start);
    Token t = make(is_real ? TokKind::kRealLit : TokKind::kIntLit, loc,
                   std::string(text));
    if (is_real) {
      t.real_value = std::stod(t.text);
    } else {
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), t.int_value);
      if (ec != std::errc{}) {
        sink_.error("oal.lex.int", "integer literal out of range", loc);
      }
    }
    return t;
  }

  Token string_lit(SourceLoc loc) {
    advance();  // opening quote
    std::string value;
    while (pos_ < src_.size() && peek() != '"') {
      char c = advance();
      if (c == '\\' && pos_ < src_.size()) {
        char e = advance();
        switch (e) {
          case 'n': value.push_back('\n'); break;
          case 't': value.push_back('\t'); break;
          case '"': value.push_back('"'); break;
          case '\\': value.push_back('\\'); break;
          default:
            sink_.error("oal.lex.escape",
                        std::string("unknown escape '\\") + e + "'", here());
        }
      } else {
        value.push_back(c);
      }
    }
    if (pos_ >= src_.size()) {
      sink_.error("oal.lex.string", "unterminated string literal", loc);
    } else {
      advance();  // closing quote
    }
    Token t = make(TokKind::kStringLit, loc, std::move(value));
    return t;
  }

  std::string_view src_;
  DiagnosticSink& sink_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source, DiagnosticSink& sink) {
  return Lexer(source, sink).run();
}

}  // namespace xtsoc::oal
