#include "xtsoc/oal/parser.hpp"

#include "xtsoc/oal/lexer.hpp"

namespace xtsoc::oal {

namespace {

// Grammar (statement terminators are ';'; blocks are closed by keywords):
//
//   block        := stmt*
//   stmt         := assign | create | delete | generate | select | relate
//                 | unrelate | if | while | foreach | break | continue
//                 | return | log | memwrite
//   memwrite     := 'mem' '.' 'write' '(' expr ',' expr ')' ';'
//   assign       := postfix '=' expr ';'
//   create       := 'create' 'object' 'instance' IDENT 'of' IDENT ';'
//   delete       := 'delete' 'object' 'instance' expr ';'
//   generate     := 'generate' IDENT '(' [IDENT ':' expr {',' ...}] ')'
//                   'to' expr ['delay' expr] ';'
//   select       := 'select' ('any'|'many'|'one') IDENT
//                   ( 'from' 'instances' 'of' IDENT
//                   | 'related' 'by' postfix '->' IDENT '[' IDENT ']' )
//                   ['where' '(' expr ')'] ';'
//   relate       := 'relate' expr 'to' expr 'across' IDENT ';'
//   unrelate     := 'unrelate' expr 'from' expr 'across' IDENT ';'
//   if           := 'if' '(' expr ')' block {'elif' '(' expr ')' block}
//                   ['else' block] 'end' 'if' ';'
//   while        := 'while' '(' expr ')' block 'end' 'while' ';'
//   foreach      := 'for' 'each' IDENT 'in' expr block 'end' 'for' ';'
//
//   expr         := or
//   or           := and {'or' and}
//   and          := cmp {'and' cmp}
//   cmp          := add {('=='|'!='|'<'|'<='|'>'|'>=') add}
//   add          := mul {('+'|'-') mul}
//   mul          := unary {('*'|'/'|'%') unary}
//   unary        := ('-'|'not'|'empty'|'not_empty'|'cardinality') unary
//                 | postfix
//   postfix      := primary {'.' IDENT}
//   primary      := literal | 'self' | 'selected' | 'param' '.' IDENT
//                 | 'mem' '.' 'read' '(' expr ')' | IDENT | '(' expr ')'
//
// `mem` is not a keyword: mem.read/mem.write are recognized by lookahead
// for the full call shape, so `mem` (and even `mem.read` without
// parentheses) keeps working as an ordinary variable/attribute chain.
class Parser {
public:
  Parser(std::vector<Token> toks, DiagnosticSink& sink)
      : toks_(std::move(toks)), sink_(sink) {}

  Block parse_block_top() {
    Block b = parse_block();
    if (!at(TokKind::kEof)) {
      error("oal.parse.trailing", "unexpected " + std::string(to_string(cur().kind)));
    }
    return b;
  }

private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t k = 1) const {
    std::size_t i = pos_ + k;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at(TokKind k) const { return cur().kind == k; }

  Token advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  bool accept(TokKind k) {
    if (at(k)) {
      advance();
      return true;
    }
    return false;
  }

  Token expect(TokKind k, const char* what) {
    if (at(k)) return advance();
    error("oal.parse.expected", std::string("expected ") + to_string(k) +
                                    " (" + what + "), found " +
                                    to_string(cur().kind));
    return cur();
  }

  void error(std::string code, std::string msg) {
    sink_.error(std::move(code), std::move(msg), cur().loc);
    recovering_ = true;
  }

  /// Skip to just past the next ';' (or a block-closing keyword) so one
  /// mistake doesn't cascade.
  void synchronize() {
    recovering_ = false;
    while (!at(TokKind::kEof)) {
      if (accept(TokKind::kSemi)) return;
      if (at(TokKind::kKwEnd) || at(TokKind::kKwElse) || at(TokKind::kKwElif)) {
        return;
      }
      advance();
    }
  }

  bool block_closed() const {
    return at(TokKind::kEof) || at(TokKind::kKwEnd) || at(TokKind::kKwElse) ||
           at(TokKind::kKwElif);
  }

  Block parse_block() {
    Block b;
    while (!block_closed()) {
      StmtPtr s = parse_stmt();
      if (recovering_) synchronize();
      if (s) b.stmts.push_back(std::move(s));
    }
    return b;
  }

  StmtPtr parse_stmt() {
    SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case TokKind::kKwCreate: return parse_create();
      case TokKind::kKwDelete: return parse_delete();
      case TokKind::kKwGenerate: return parse_generate();
      case TokKind::kKwSelect: return parse_select();
      case TokKind::kKwRelate: return parse_relate(false);
      case TokKind::kKwUnrelate: return parse_relate(true);
      case TokKind::kKwIf: return parse_if();
      case TokKind::kKwWhile: return parse_while();
      case TokKind::kKwFor: return parse_foreach();
      case TokKind::kKwBreak:
        advance();
        expect(TokKind::kSemi, "after break");
        return std::make_unique<BreakStmt>(loc);
      case TokKind::kKwContinue:
        advance();
        expect(TokKind::kSemi, "after continue");
        return std::make_unique<ContinueStmt>(loc);
      case TokKind::kKwReturn:
        advance();
        expect(TokKind::kSemi, "after return");
        return std::make_unique<ReturnStmt>(loc);
      case TokKind::kKwLog: return parse_log();
      default:
        if (at(TokKind::kIdent) && cur().text == "mem" &&
            peek(1).kind == TokKind::kDot &&
            peek(2).kind == TokKind::kIdent && peek(2).text == "write" &&
            peek(3).kind == TokKind::kLParen) {
          return parse_mem_write();
        }
        return parse_assign();
    }
  }

  StmtPtr parse_mem_write() {
    SourceLoc loc = cur().loc;
    advance();  // mem
    advance();  // .
    advance();  // write
    advance();  // (
    ExprPtr addr = parse_expr();
    expect(TokKind::kComma, "between mem.write arguments");
    ExprPtr value = parse_expr();
    expect(TokKind::kRParen, "closing mem.write");
    expect(TokKind::kSemi, "after mem.write");
    if (recovering_) return nullptr;
    return std::make_unique<MemWriteStmt>(std::move(addr), std::move(value),
                                          loc);
  }

  StmtPtr parse_assign() {
    SourceLoc loc = cur().loc;
    ExprPtr lv = parse_postfix();
    if (lv == nullptr) {
      error("oal.parse.stmt", "expected a statement");
      return nullptr;
    }
    if (lv->kind != ExprKind::kVarRef && lv->kind != ExprKind::kAttrAccess) {
      error("oal.parse.lvalue", "left side of '=' must be a variable or attribute");
    }
    expect(TokKind::kAssign, "in assignment");
    ExprPtr rv = parse_expr();
    expect(TokKind::kSemi, "after assignment");
    if (recovering_) return nullptr;
    return std::make_unique<AssignStmt>(std::move(lv), std::move(rv), loc);
  }

  StmtPtr parse_create() {
    SourceLoc loc = advance().loc;  // create
    expect(TokKind::kKwObject, "in create");
    expect(TokKind::kKwInstance, "in create");
    Token var = expect(TokKind::kIdent, "variable name");
    expect(TokKind::kKwOf, "in create");
    Token cls = expect(TokKind::kIdent, "class name");
    expect(TokKind::kSemi, "after create");
    if (recovering_) return nullptr;
    return std::make_unique<CreateStmt>(var.text, cls.text, loc);
  }

  StmtPtr parse_delete() {
    SourceLoc loc = advance().loc;  // delete
    expect(TokKind::kKwObject, "in delete");
    expect(TokKind::kKwInstance, "in delete");
    ExprPtr obj = parse_expr();
    expect(TokKind::kSemi, "after delete");
    if (recovering_) return nullptr;
    return std::make_unique<DeleteStmt>(std::move(obj), loc);
  }

  StmtPtr parse_generate() {
    SourceLoc loc = advance().loc;  // generate
    Token ev = expect(TokKind::kIdent, "event name");
    expect(TokKind::kLParen, "in generate");
    std::vector<GenerateStmt::Arg> args;
    if (!at(TokKind::kRParen)) {
      do {
        Token name = expect(TokKind::kIdent, "argument name");
        expect(TokKind::kColon, "after argument name");
        GenerateStmt::Arg a;
        a.name = name.text;
        a.value = parse_expr();
        args.push_back(std::move(a));
      } while (accept(TokKind::kComma));
    }
    expect(TokKind::kRParen, "in generate");
    expect(TokKind::kKwTo, "in generate");
    ExprPtr target = parse_expr();
    ExprPtr delay;
    if (accept(TokKind::kKwDelay)) delay = parse_expr();
    expect(TokKind::kSemi, "after generate");
    if (recovering_) return nullptr;
    return std::make_unique<GenerateStmt>(ev.text, std::move(args),
                                          std::move(target), std::move(delay),
                                          loc);
  }

  StmtPtr parse_select() {
    SourceLoc loc = advance().loc;  // select
    bool many = false;
    if (accept(TokKind::kKwMany)) {
      many = true;
    } else if (!accept(TokKind::kKwAny) && !accept(TokKind::kKwOne)) {
      error("oal.parse.select", "expected 'any', 'one' or 'many' after select");
    }
    Token var = expect(TokKind::kIdent, "select variable");

    if (accept(TokKind::kKwFrom)) {
      expect(TokKind::kKwInstances, "in select-from");
      expect(TokKind::kKwOf, "in select-from");
      Token cls = expect(TokKind::kIdent, "class name");
      ExprPtr where = parse_optional_where();
      expect(TokKind::kSemi, "after select");
      if (recovering_) return nullptr;
      return std::make_unique<SelectFromStmt>(many, var.text, cls.text,
                                              std::move(where), loc);
    }

    expect(TokKind::kKwRelated, "in select-related");
    expect(TokKind::kKwBy, "in select-related");
    ExprPtr start = parse_postfix();
    expect(TokKind::kArrow, "in select-related");
    Token cls = expect(TokKind::kIdent, "class name");
    expect(TokKind::kLBracket, "in select-related");
    Token rel = expect(TokKind::kIdent, "association name");
    expect(TokKind::kRBracket, "in select-related");
    ExprPtr where = parse_optional_where();
    expect(TokKind::kSemi, "after select");
    if (recovering_) return nullptr;
    return std::make_unique<SelectRelatedStmt>(many, var.text, std::move(start),
                                               cls.text, rel.text,
                                               std::move(where), loc);
  }

  ExprPtr parse_optional_where() {
    if (!accept(TokKind::kKwWhere)) return nullptr;
    expect(TokKind::kLParen, "after where");
    ExprPtr e = parse_expr();
    expect(TokKind::kRParen, "closing where");
    return e;
  }

  StmtPtr parse_relate(bool unrelate) {
    SourceLoc loc = advance().loc;  // relate / unrelate
    ExprPtr a = parse_postfix();
    if (unrelate) {
      expect(TokKind::kKwFrom, "in unrelate");
    } else {
      expect(TokKind::kKwTo, "in relate");
    }
    ExprPtr b = parse_postfix();
    expect(TokKind::kKwAcross, "in relate");
    Token rel = expect(TokKind::kIdent, "association name");
    expect(TokKind::kSemi, "after relate");
    if (recovering_) return nullptr;
    return std::make_unique<RelateStmt>(unrelate, std::move(a), std::move(b),
                                        rel.text, loc);
  }

  StmtPtr parse_if() {
    SourceLoc loc = advance().loc;  // if
    auto stmt = std::make_unique<IfStmt>(loc);
    expect(TokKind::kLParen, "after if");
    IfStmt::Branch first;
    first.cond = parse_expr();
    expect(TokKind::kRParen, "closing if condition");
    first.body = parse_block();
    stmt->branches.push_back(std::move(first));
    while (accept(TokKind::kKwElif)) {
      expect(TokKind::kLParen, "after elif");
      IfStmt::Branch br;
      br.cond = parse_expr();
      expect(TokKind::kRParen, "closing elif condition");
      br.body = parse_block();
      stmt->branches.push_back(std::move(br));
    }
    if (accept(TokKind::kKwElse)) {
      stmt->else_body = parse_block();
    }
    expect(TokKind::kKwEnd, "closing if");
    expect(TokKind::kKwIf, "closing if");
    expect(TokKind::kSemi, "after end if");
    if (recovering_) return nullptr;
    return stmt;
  }

  StmtPtr parse_while() {
    SourceLoc loc = advance().loc;  // while
    expect(TokKind::kLParen, "after while");
    ExprPtr cond = parse_expr();
    expect(TokKind::kRParen, "closing while condition");
    auto stmt = std::make_unique<WhileStmt>(std::move(cond), loc);
    stmt->body = parse_block();
    expect(TokKind::kKwEnd, "closing while");
    expect(TokKind::kKwWhile, "closing while");
    expect(TokKind::kSemi, "after end while");
    if (recovering_) return nullptr;
    return stmt;
  }

  StmtPtr parse_foreach() {
    SourceLoc loc = advance().loc;  // for
    expect(TokKind::kKwEach, "after for");
    Token var = expect(TokKind::kIdent, "loop variable");
    expect(TokKind::kKwIn, "in for-each");
    ExprPtr set = parse_expr();
    auto stmt = std::make_unique<ForEachStmt>(var.text, std::move(set), loc);
    stmt->body = parse_block();
    expect(TokKind::kKwEnd, "closing for");
    expect(TokKind::kKwFor, "closing for");
    expect(TokKind::kSemi, "after end for");
    if (recovering_) return nullptr;
    return stmt;
  }

  StmtPtr parse_log() {
    SourceLoc loc = advance().loc;  // log
    std::vector<ExprPtr> args;
    args.push_back(parse_expr());
    while (accept(TokKind::kComma)) args.push_back(parse_expr());
    expect(TokKind::kSemi, "after log");
    if (recovering_) return nullptr;
    return std::make_unique<LogStmt>(std::move(args), loc);
  }

  // --- expressions ---------------------------------------------------------

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(TokKind::kKwOr)) {
      SourceLoc loc = advance().loc;
      ExprPtr rhs = parse_and();
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(lhs),
                                         std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (at(TokKind::kKwAnd)) {
      SourceLoc loc = advance().loc;
      ExprPtr rhs = parse_cmp();
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(lhs),
                                         std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    while (true) {
      BinaryOp op;
      switch (cur().kind) {
        case TokKind::kEq: op = BinaryOp::kEq; break;
        case TokKind::kNe: op = BinaryOp::kNe; break;
        case TokKind::kLt: op = BinaryOp::kLt; break;
        case TokKind::kLe: op = BinaryOp::kLe; break;
        case TokKind::kGt: op = BinaryOp::kGt; break;
        case TokKind::kGe: op = BinaryOp::kGe; break;
        default: return lhs;
      }
      SourceLoc loc = advance().loc;
      ExprPtr rhs = parse_add();
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), loc);
    }
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    while (at(TokKind::kPlus) || at(TokKind::kMinus)) {
      BinaryOp op = at(TokKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      SourceLoc loc = advance().loc;
      ExprPtr rhs = parse_mul();
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    while (at(TokKind::kStar) || at(TokKind::kSlash) || at(TokKind::kPercent)) {
      BinaryOp op = at(TokKind::kStar)    ? BinaryOp::kMul
                    : at(TokKind::kSlash) ? BinaryOp::kDiv
                                          : BinaryOp::kMod;
      SourceLoc loc = advance().loc;
      ExprPtr rhs = parse_unary();
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    SourceLoc loc = cur().loc;
    if (accept(TokKind::kMinus)) {
      return std::make_unique<UnaryExpr>(UnaryOp::kNeg, parse_unary(), loc);
    }
    if (accept(TokKind::kKwNot)) {
      return std::make_unique<UnaryExpr>(UnaryOp::kNot, parse_unary(), loc);
    }
    if (accept(TokKind::kKwEmpty)) {
      return std::make_unique<EmptyExpr>(false, parse_unary(), loc);
    }
    if (accept(TokKind::kKwNotEmpty)) {
      return std::make_unique<EmptyExpr>(true, parse_unary(), loc);
    }
    if (accept(TokKind::kKwCardinality)) {
      return std::make_unique<CardinalityExpr>(parse_unary(), loc);
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (e && at(TokKind::kDot)) {
      SourceLoc loc = advance().loc;
      Token name = expect(TokKind::kIdent, "attribute name");
      e = std::make_unique<AttrAccessExpr>(std::move(e), name.text, loc);
    }
    return e;
  }

  ExprPtr parse_primary() {
    SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case TokKind::kIntLit: {
        Token t = advance();
        return std::make_unique<LiteralExpr>(xtuml::ScalarValue(t.int_value), loc);
      }
      case TokKind::kRealLit: {
        Token t = advance();
        return std::make_unique<LiteralExpr>(xtuml::ScalarValue(t.real_value), loc);
      }
      case TokKind::kStringLit: {
        Token t = advance();
        return std::make_unique<LiteralExpr>(xtuml::ScalarValue(t.text), loc);
      }
      case TokKind::kKwTrue:
        advance();
        return std::make_unique<LiteralExpr>(xtuml::ScalarValue(true), loc);
      case TokKind::kKwFalse:
        advance();
        return std::make_unique<LiteralExpr>(xtuml::ScalarValue(false), loc);
      case TokKind::kKwSelf:
        advance();
        return std::make_unique<SelfRefExpr>(loc);
      case TokKind::kKwSelected:
        advance();
        return std::make_unique<SelectedRefExpr>(loc);
      case TokKind::kKwParam: {
        advance();
        expect(TokKind::kDot, "after param");
        Token name = expect(TokKind::kIdent, "parameter name");
        return std::make_unique<ParamRefExpr>(name.text, loc);
      }
      case TokKind::kIdent: {
        if (cur().text == "mem" && peek(1).kind == TokKind::kDot &&
            peek(2).kind == TokKind::kIdent && peek(2).text == "read" &&
            peek(3).kind == TokKind::kLParen) {
          advance();  // mem
          advance();  // .
          advance();  // read
          advance();  // (
          ExprPtr addr = parse_expr();
          expect(TokKind::kRParen, "closing mem.read");
          return std::make_unique<MemReadExpr>(std::move(addr), loc);
        }
        Token t = advance();
        return std::make_unique<VarRefExpr>(t.text, loc);
      }
      case TokKind::kLParen: {
        advance();
        ExprPtr e = parse_expr();
        expect(TokKind::kRParen, "closing parenthesis");
        return e;
      }
      default:
        error("oal.parse.expr", std::string("expected an expression, found ") +
                                    to_string(cur().kind));
        if (!at(TokKind::kEof)) advance();
        return std::make_unique<LiteralExpr>(xtuml::ScalarValue(std::int64_t{0}),
                                             loc);
    }
  }

  std::vector<Token> toks_;
  DiagnosticSink& sink_;
  std::size_t pos_ = 0;
  bool recovering_ = false;
};

}  // namespace

Block parse(std::string_view source, DiagnosticSink& sink) {
  std::vector<Token> toks = lex(source, sink);
  if (sink.has_errors()) return {};
  return Parser(std::move(toks), sink).parse_block_top();
}

}  // namespace xtsoc::oal
