#include "xtsoc/oal/sema.hpp"

#include <sstream>
#include <unordered_map>

#include "xtsoc/oal/parser.hpp"

namespace xtsoc::oal {

using xtuml::ClassDef;
using xtuml::DataType;
using xtuml::Domain;
using xtuml::Parameter;

std::string OalType::to_string() const {
  std::ostringstream os;
  if (is_set) os << "set of ";
  os << xtuml::to_string(base);
  if (base == DataType::kInstRef && cls.is_valid()) {
    os << "<class#" << cls.value() << ">";
  }
  return os.str();
}

const char* to_string(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "not";
  }
  return "?";
}

const char* to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

std::vector<Parameter> entry_signature(const ClassDef& cls, StateId state,
                                       DiagnosticSink& sink) {
  std::vector<const xtuml::EventDef*> entering;
  for (const auto& t : cls.transitions) {
    if (t.to == state) entering.push_back(&cls.event(t.event));
  }
  if (entering.empty()) return {};

  const std::vector<Parameter>& sig = entering.front()->params;
  for (const auto* e : entering) {
    if (e->params != sig) {
      sink.error("oal.sema.entry_signature",
                 cls.name + "." + cls.state(state).name +
                     ": events entering this state have differing parameter "
                     "signatures ('" +
                     entering.front()->name + "' vs '" + e->name + "')");
      return {};
    }
  }
  return sig;
}

namespace {

class Analyzer {
public:
  Analyzer(const Domain& domain, ClassId self_class,
           std::vector<Parameter> params, DiagnosticSink& sink)
      : domain_(domain), self_class_(self_class), params_(std::move(params)),
        sink_(sink) {}

  AnalyzedAction run(Block block) {
    check_block(block);
    AnalyzedAction out;
    out.ast = std::move(block);
    out.params = std::move(params_);
    out.locals = std::move(locals_);
    out.frame_size = static_cast<int>(out.locals.size());
    return out;
  }

private:
  void error(std::string code, std::string msg, SourceLoc loc) {
    sink_.error(std::move(code), std::move(msg), loc);
  }

  const LocalVar* find_local(const std::string& name) const {
    for (const auto& v : locals_) {
      if (v.name == name) return &v;
    }
    return nullptr;
  }

  /// Declare or re-type-check a local. Returns slot, or -1 on error.
  int declare(const std::string& name, OalType type, SourceLoc loc,
              bool* was_new = nullptr) {
    if (const LocalVar* v = find_local(name)) {
      if (was_new) *was_new = false;
      if (!(v->type == type) &&
          !(v->type.base == DataType::kReal && type.base == DataType::kInt &&
            !type.is_set)) {
        error("oal.sema.retype",
              "variable '" + name + "' was " + v->type.to_string() +
                  ", cannot assign " + type.to_string(),
              loc);
        return -1;
      }
      return v->slot;
    }
    if (was_new) *was_new = true;
    int slot = static_cast<int>(locals_.size());
    locals_.push_back({name, type, slot});
    return slot;
  }

  // --- expression checking -------------------------------------------------

  OalType check_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral: {
        auto& lit = static_cast<LiteralExpr&>(e);
        e.type = OalType::scalar(xtuml::scalar_type(lit.value));
        break;
      }
      case ExprKind::kVarRef: {
        auto& v = static_cast<VarRefExpr&>(e);
        const LocalVar* lv = find_local(v.name);
        if (lv == nullptr) {
          error("oal.sema.unknown_var", "unknown variable '" + v.name + "'",
                e.loc);
          e.type = OalType::scalar(DataType::kInt);
        } else {
          v.slot = lv->slot;
          e.type = lv->type;
        }
        break;
      }
      case ExprKind::kSelfRef: {
        if (!self_class_.is_valid()) {
          error("oal.sema.self", "'self' used outside an instance context",
                e.loc);
          e.type = OalType::scalar(DataType::kInt);
        } else {
          e.type = OalType::inst(self_class_);
        }
        break;
      }
      case ExprKind::kParamRef: {
        auto& p = static_cast<ParamRefExpr&>(e);
        e.type = OalType::scalar(DataType::kInt);
        bool found = false;
        for (std::size_t i = 0; i < params_.size(); ++i) {
          if (params_[i].name == p.name) {
            p.param_index = static_cast<int>(i);
            e.type = params_[i].type == DataType::kInstRef
                         ? OalType::inst(params_[i].ref_class)
                         : OalType::scalar(params_[i].type);
            found = true;
            break;
          }
        }
        if (!found) {
          error("oal.sema.unknown_param",
                "no parameter '" + p.name + "' in this state's entry signature",
                e.loc);
        }
        break;
      }
      case ExprKind::kSelectedRef: {
        if (!selected_class_.is_valid()) {
          error("oal.sema.selected", "'selected' used outside a where clause",
                e.loc);
          e.type = OalType::scalar(DataType::kInt);
        } else {
          e.type = OalType::inst(selected_class_);
        }
        break;
      }
      case ExprKind::kAttrAccess: {
        auto& a = static_cast<AttrAccessExpr&>(e);
        OalType obj = check_expr(*a.object);
        e.type = OalType::scalar(DataType::kInt);
        if (!obj.is_instance()) {
          error("oal.sema.attr_base",
                "'." + a.attr_name + "' requires an instance, got " +
                    obj.to_string(),
                e.loc);
          break;
        }
        const ClassDef& cls = domain_.cls(obj.cls);
        const xtuml::AttributeDef* attr = cls.find_attribute(a.attr_name);
        if (attr == nullptr) {
          error("oal.sema.unknown_attr",
                "class '" + cls.name + "' has no attribute '" + a.attr_name + "'",
                e.loc);
          break;
        }
        a.cls = cls.id;
        a.attr = attr->id;
        e.type = attr->type == DataType::kInstRef
                     ? OalType::inst(attr->ref_class)
                     : OalType::scalar(attr->type);
        break;
      }
      case ExprKind::kUnary: {
        auto& u = static_cast<UnaryExpr&>(e);
        OalType t = check_expr(*u.operand);
        if (u.op == UnaryOp::kNeg) {
          if (!t.is_numeric()) {
            error("oal.sema.neg", "unary '-' requires a numeric operand", e.loc);
          }
          e.type = t;
        } else {  // kNot
          if (t.base != DataType::kBool || t.is_set) {
            error("oal.sema.not", "'not' requires a bool operand", e.loc);
          }
          e.type = OalType::scalar(DataType::kBool);
        }
        break;
      }
      case ExprKind::kBinary:
        e.type = check_binary(static_cast<BinaryExpr&>(e));
        break;
      case ExprKind::kCardinality: {
        auto& c = static_cast<CardinalityExpr&>(e);
        OalType t = check_expr(*c.operand);
        if (t.base != DataType::kInstRef) {
          error("oal.sema.cardinality",
                "'cardinality' requires an instance or instance set", e.loc);
        }
        e.type = OalType::scalar(DataType::kInt);
        break;
      }
      case ExprKind::kEmpty:
      case ExprKind::kNotEmpty: {
        auto& em = static_cast<EmptyExpr&>(e);
        OalType t = check_expr(*em.operand);
        if (t.base != DataType::kInstRef) {
          error("oal.sema.empty",
                "'empty'/'not_empty' requires an instance or instance set",
                e.loc);
        }
        e.type = OalType::scalar(DataType::kBool);
        break;
      }
      case ExprKind::kMemRead: {
        auto& m = static_cast<MemReadExpr&>(e);
        OalType t = check_expr(*m.addr);
        if (t.base != DataType::kInt || t.is_set) {
          error("oal.sema.mem_addr",
                "mem.read address must be an integer, got " + t.to_string(),
                m.addr->loc);
        }
        e.type = OalType::scalar(DataType::kInt);
        break;
      }
    }
    return e.type;
  }

  OalType check_binary(BinaryExpr& b) {
    OalType lt = check_expr(*b.lhs);
    OalType rt = check_expr(*b.rhs);
    switch (b.op) {
      case BinaryOp::kAdd:
        if (lt.base == DataType::kString && rt.base == DataType::kString &&
            !lt.is_set && !rt.is_set) {
          return OalType::scalar(DataType::kString);
        }
        [[fallthrough]];
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        if (!lt.is_numeric() || !rt.is_numeric()) {
          error("oal.sema.arith",
                std::string("operator '") + to_string(b.op) +
                    "' requires numeric operands (got " + lt.to_string() +
                    ", " + rt.to_string() + ")",
                b.loc);
          return OalType::scalar(DataType::kInt);
        }
        return OalType::scalar(
            (lt.base == DataType::kReal || rt.base == DataType::kReal)
                ? DataType::kReal
                : DataType::kInt);
      case BinaryOp::kMod:
        if (lt.base != DataType::kInt || rt.base != DataType::kInt ||
            lt.is_set || rt.is_set) {
          error("oal.sema.mod", "'%' requires integer operands", b.loc);
        }
        return OalType::scalar(DataType::kInt);
      case BinaryOp::kEq:
      case BinaryOp::kNe: {
        bool ok = (lt.is_numeric() && rt.is_numeric()) ||
                  (lt == rt && !lt.is_set);
        if (!ok) {
          error("oal.sema.eq",
                "'==' / '!=' operands are incomparable (" + lt.to_string() +
                    " vs " + rt.to_string() + ")",
                b.loc);
        }
        return OalType::scalar(DataType::kBool);
      }
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        bool ok = (lt.is_numeric() && rt.is_numeric()) ||
                  (lt.base == DataType::kString && rt.base == DataType::kString &&
                   !lt.is_set && !rt.is_set);
        if (!ok) {
          error("oal.sema.cmp", "ordering comparison requires numbers or strings",
                b.loc);
        }
        return OalType::scalar(DataType::kBool);
      }
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        if (lt.base != DataType::kBool || rt.base != DataType::kBool ||
            lt.is_set || rt.is_set) {
          error("oal.sema.logic",
                std::string("'") + to_string(b.op) + "' requires bool operands",
                b.loc);
        }
        return OalType::scalar(DataType::kBool);
    }
    return OalType::scalar(DataType::kInt);
  }

  /// Check that `value_type` is assignable to a target of `target`.
  bool assignable(const OalType& target, const OalType& value_type) const {
    if (target == value_type) return true;
    if (target.base == DataType::kReal && value_type.base == DataType::kInt &&
        !target.is_set && !value_type.is_set) {
      return true;  // int widens to real
    }
    // Event parameters of type inst_ref carry no class (target.cls invalid);
    // any single instance is acceptable there.
    if (target.base == DataType::kInstRef && !target.cls.is_valid() &&
        value_type.base == DataType::kInstRef && !target.is_set &&
        !value_type.is_set) {
      return true;
    }
    return false;
  }

  // --- statement checking --------------------------------------------------

  void check_block(Block& b) {
    for (auto& s : b.stmts) check_stmt(*s);
  }

  void check_stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign: check_assign(static_cast<AssignStmt&>(s)); break;
      case StmtKind::kCreate: check_create(static_cast<CreateStmt&>(s)); break;
      case StmtKind::kDelete: {
        auto& d = static_cast<DeleteStmt&>(s);
        OalType t = check_expr(*d.object);
        if (!t.is_instance()) {
          error("oal.sema.delete", "delete requires a single instance", s.loc);
        }
        break;
      }
      case StmtKind::kGenerate: check_generate(static_cast<GenerateStmt&>(s)); break;
      case StmtKind::kSelectFrom: check_select_from(static_cast<SelectFromStmt&>(s)); break;
      case StmtKind::kSelectRelated:
        check_select_related(static_cast<SelectRelatedStmt&>(s));
        break;
      case StmtKind::kRelate:
      case StmtKind::kUnrelate:
        check_relate(static_cast<RelateStmt&>(s));
        break;
      case StmtKind::kIf: {
        auto& i = static_cast<IfStmt&>(s);
        for (auto& br : i.branches) {
          OalType t = check_expr(*br.cond);
          if (t.base != DataType::kBool || t.is_set) {
            error("oal.sema.cond", "if condition must be bool", br.cond->loc);
          }
          check_block(br.body);
        }
        if (i.else_body) check_block(*i.else_body);
        break;
      }
      case StmtKind::kWhile: {
        auto& w = static_cast<WhileStmt&>(s);
        OalType t = check_expr(*w.cond);
        if (t.base != DataType::kBool || t.is_set) {
          error("oal.sema.cond", "while condition must be bool", w.cond->loc);
        }
        ++loop_depth_;
        check_block(w.body);
        --loop_depth_;
        break;
      }
      case StmtKind::kForEach: check_foreach(static_cast<ForEachStmt&>(s)); break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          error("oal.sema.loopctl", "break/continue outside a loop", s.loc);
        }
        break;
      case StmtKind::kReturn:
        break;
      case StmtKind::kLog: {
        auto& l = static_cast<LogStmt&>(s);
        for (auto& a : l.args) {
          OalType t = check_expr(*a);
          if (t.base == DataType::kVoid) {
            error("oal.sema.log", "log argument has no value", a->loc);
          }
        }
        break;
      }
      case StmtKind::kMemWrite: {
        auto& m = static_cast<MemWriteStmt&>(s);
        OalType at = check_expr(*m.addr);
        if (at.base != DataType::kInt || at.is_set) {
          error("oal.sema.mem_addr",
                "mem.write address must be an integer, got " + at.to_string(),
                m.addr->loc);
        }
        OalType vt = check_expr(*m.value);
        if (vt.base != DataType::kInt || vt.is_set) {
          error("oal.sema.mem_value",
                "mem.write value must be an integer, got " + vt.to_string(),
                m.value->loc);
        }
        break;
      }
    }
  }

  void check_assign(AssignStmt& a) {
    OalType rt = check_expr(*a.rvalue);
    if (rt.base == DataType::kVoid) {
      error("oal.sema.assign_void", "right side of '=' has no value", a.loc);
      return;
    }
    if (a.lvalue->kind == ExprKind::kVarRef) {
      auto& v = static_cast<VarRefExpr&>(*a.lvalue);
      bool was_new = false;
      int slot = declare(v.name, rt, a.loc, &was_new);
      v.slot = slot;
      a.declares = was_new;
      if (slot >= 0) a.lvalue->type = locals_[static_cast<std::size_t>(slot)].type;
      return;
    }
    // attribute write
    OalType lt = check_expr(*a.lvalue);
    auto& acc = static_cast<AttrAccessExpr&>(*a.lvalue);
    if (acc.attr.is_valid() && !assignable(lt, rt)) {
      error("oal.sema.assign_type",
            "cannot assign " + rt.to_string() + " to attribute '" +
                acc.attr_name + "' of type " + lt.to_string(),
            a.loc);
    }
  }

  void check_create(CreateStmt& c) {
    ClassId cls = domain_.find_class_id(c.class_name);
    if (!cls.is_valid()) {
      error("oal.sema.unknown_class", "unknown class '" + c.class_name + "'",
            c.loc);
      return;
    }
    c.cls = cls;
    c.slot = declare(c.var, OalType::inst(cls), c.loc);
  }

  void check_generate(GenerateStmt& g) {
    OalType tt = check_expr(*g.target);
    if (!tt.is_instance()) {
      error("oal.sema.generate_target",
            "generate target must be a single instance, got " + tt.to_string(),
            g.loc);
      return;
    }
    g.target_class = tt.cls;
    const ClassDef& cls = domain_.cls(tt.cls);
    const xtuml::EventDef* ev = cls.find_event(g.event_name);
    if (ev == nullptr) {
      error("oal.sema.unknown_event",
            "class '" + cls.name + "' has no event '" + g.event_name + "'",
            g.loc);
      return;
    }
    g.event = ev->id;

    std::vector<bool> covered(ev->params.size(), false);
    for (auto& arg : g.args) {
      int idx = -1;
      for (std::size_t i = 0; i < ev->params.size(); ++i) {
        if (ev->params[i].name == arg.name) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx < 0) {
        error("oal.sema.generate_arg",
              "event '" + g.event_name + "' has no parameter '" + arg.name + "'",
              g.loc);
        continue;
      }
      if (covered[static_cast<std::size_t>(idx)]) {
        error("oal.sema.generate_dup",
              "duplicate argument '" + arg.name + "'", g.loc);
        continue;
      }
      covered[static_cast<std::size_t>(idx)] = true;
      arg.param_index = idx;
      OalType at = check_expr(*arg.value);
      const xtuml::Parameter& pdef = ev->params[static_cast<std::size_t>(idx)];
      OalType want = pdef.type == DataType::kInstRef
                         ? OalType::inst(pdef.ref_class)
                         : OalType::scalar(pdef.type);
      if (!assignable(want, at)) {
        error("oal.sema.generate_type",
              "argument '" + arg.name + "' has type " + at.to_string() +
                  ", expected " + want.to_string(),
              g.loc);
      }
    }
    for (std::size_t i = 0; i < covered.size(); ++i) {
      if (!covered[i]) {
        error("oal.sema.generate_missing",
              "missing argument '" + ev->params[i].name + "' for event '" +
                  g.event_name + "'",
              g.loc);
      }
    }
    if (g.delay) {
      OalType dt = check_expr(*g.delay);
      if (dt.base != DataType::kInt || dt.is_set) {
        error("oal.sema.delay", "delay must be an integer (ticks)", g.loc);
      }
    }
  }

  void check_select_from(SelectFromStmt& s) {
    ClassId cls = domain_.find_class_id(s.class_name);
    if (!cls.is_valid()) {
      error("oal.sema.unknown_class", "unknown class '" + s.class_name + "'",
            s.loc);
      return;
    }
    s.cls = cls;
    if (s.where) {
      ClassId saved = selected_class_;
      selected_class_ = cls;
      OalType wt = check_expr(*s.where);
      selected_class_ = saved;
      if (wt.base != DataType::kBool || wt.is_set) {
        error("oal.sema.where", "where clause must be bool", s.where->loc);
      }
    }
    s.slot = declare(s.var,
                     s.many ? OalType::inst_set(cls) : OalType::inst(cls), s.loc);
  }

  void check_select_related(SelectRelatedStmt& s) {
    OalType st = check_expr(*s.start);
    if (!st.is_instance()) {
      error("oal.sema.select_start",
            "select-related start must be a single instance", s.loc);
      return;
    }
    const xtuml::AssociationDef* assoc = domain_.find_association(s.assoc_name);
    if (assoc == nullptr) {
      error("oal.sema.unknown_assoc",
            "unknown association '" + s.assoc_name + "'", s.loc);
      return;
    }
    if (!assoc->touches(st.cls)) {
      error("oal.sema.assoc_mismatch",
            "association " + s.assoc_name + " does not touch class '" +
                domain_.cls(st.cls).name + "'",
            s.loc);
      return;
    }
    const xtuml::AssociationEnd& other = assoc->other_end(st.cls);
    ClassId target = domain_.find_class_id(s.class_name);
    if (!target.is_valid() || target != other.cls) {
      error("oal.sema.select_class",
            "association " + s.assoc_name + " relates '" +
                domain_.cls(st.cls).name + "' to '" +
                domain_.cls(other.cls).name + "', not '" + s.class_name + "'",
            s.loc);
      return;
    }
    s.cls = target;
    s.assoc = assoc->id;
    if (s.where) {
      ClassId saved = selected_class_;
      selected_class_ = target;
      OalType wt = check_expr(*s.where);
      selected_class_ = saved;
      if (wt.base != DataType::kBool || wt.is_set) {
        error("oal.sema.where", "where clause must be bool", s.where->loc);
      }
    }
    s.slot = declare(
        s.var, s.many ? OalType::inst_set(target) : OalType::inst(target), s.loc);
  }

  void check_foreach(ForEachStmt& f) {
    OalType st = check_expr(*f.set);
    if (st.base != DataType::kInstRef || !st.is_set) {
      error("oal.sema.foreach", "for-each requires an instance set, got " +
                                    st.to_string(),
            f.loc);
      return;
    }
    f.slot = declare(f.var, OalType::inst(st.cls), f.loc);
    ++loop_depth_;
    check_block(f.body);
    --loop_depth_;
  }

  void check_relate(RelateStmt& r) {
    OalType at = check_expr(*r.a);
    OalType bt = check_expr(*r.b);
    if (!at.is_instance() || !bt.is_instance()) {
      error("oal.sema.relate", "relate/unrelate requires two single instances",
            r.loc);
      return;
    }
    const xtuml::AssociationDef* assoc = domain_.find_association(r.assoc_name);
    if (assoc == nullptr) {
      error("oal.sema.unknown_assoc",
            "unknown association '" + r.assoc_name + "'", r.loc);
      return;
    }
    bool forward = assoc->a.cls == at.cls && assoc->b.cls == bt.cls;
    bool backward = assoc->a.cls == bt.cls && assoc->b.cls == at.cls;
    if (!forward && !backward) {
      error("oal.sema.relate_classes",
            "association " + r.assoc_name + " does not relate these classes",
            r.loc);
      return;
    }
    r.assoc = assoc->id;
  }

  const Domain& domain_;
  ClassId self_class_;
  std::vector<Parameter> params_;
  DiagnosticSink& sink_;
  std::vector<LocalVar> locals_;
  ClassId selected_class_ = ClassId::invalid();
  int loop_depth_ = 0;
};

}  // namespace

AnalyzedAction analyze_block(const Domain& domain, ClassId self_class,
                             Block block, std::vector<Parameter> params,
                             DiagnosticSink& sink) {
  return Analyzer(domain, self_class, std::move(params), sink)
      .run(std::move(block));
}

AnalyzedAction analyze_state_action(const Domain& domain, const ClassDef& cls,
                                    StateId state, DiagnosticSink& sink) {
  std::vector<Parameter> params = entry_signature(cls, state, sink);
  Block block = parse(cls.state(state).action_source, sink);
  if (sink.has_errors()) return {};
  return analyze_block(domain, cls.id, std::move(block), std::move(params), sink);
}

}  // namespace xtsoc::oal
