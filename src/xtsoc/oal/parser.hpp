// Recursive-descent parser for OAL action bodies.
#pragma once

#include <string_view>

#include "xtsoc/common/diagnostics.hpp"
#include "xtsoc/oal/ast.hpp"

namespace xtsoc::oal {

/// Parse `source` into a Block. Parse errors go to `sink`; on error the
/// returned block contains whatever was recovered (callers must check
/// sink.has_errors() before using it).
Block parse(std::string_view source, DiagnosticSink& sink);

}  // namespace xtsoc::oal
