#include "xtsoc/snap/warm.hpp"

#include "xtsoc/cosim/report.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/snap/snapshot.hpp"

namespace xtsoc::snap {

WarmCampaign::WarmCampaign(const mapping::MappedSystem& sys,
                           cosim::CoSimConfig config, fault::FaultSpec base,
                           std::uint64_t warm_cycles, std::uint64_t run_cycles,
                           std::function<void(cosim::CoSimulation&)> populate)
    : sys_(&sys), config_(config), base_(base), warm_cycles_(warm_cycles),
      run_cycles_(run_cycles) {
  if (base_.any() && base_.window_start < warm_cycles_) {
    throw SnapError(
        "warm campaign requires faultWindow.start >= the checkpoint cycle "
        "(start " +
        std::to_string(base_.window_start) + ", checkpoint at " +
        std::to_string(warm_cycles_) +
        "): streams consulted before the checkpoint would diverge from the "
        "cold run");
  }
  // The warm run carries an ARMED plan of the same rates: arming switches
  // the transports to their resilient framing (CRC/ack headers, retry
  // bookkeeping), which must match what the per-seed runs will see. The
  // window keeps every stream untouched, so the seed is irrelevant here.
  fault::Plan plan(base_);
  cosim::CoSimConfig cfg = config_;
  cfg.fault = base_.any() ? &plan : nullptr;
  cosim::CoSimulation cs(*sys_, cfg);
  populate(cs);
  cs.run_cycles(warm_cycles_);
  bytes_ = save(cs, cfg.fault, nullptr);
}

fault::RunOutcome WarmCampaign::run_seed(int index, std::uint64_t seed) const {
  (void)index;
  fault::FaultSpec spec = base_;
  spec.seed = seed;
  fault::Plan plan(spec);
  cosim::CoSimConfig cfg = config_;
  cfg.fault = &plan;
  cosim::CoSimulation cs(*sys_, cfg);
  RestoreOptions opts;
  opts.load_fault_streams = false;  // keep the fresh per-seed streams
  restore(cs, bytes_.data(), bytes_.size(), &plan, nullptr, opts);
  cs.run_cycles(run_cycles_);
  fault::RunOutcome out = cosim::outcome_of(cs, plan);
  out.seed = seed;
  return out;
}

fault::CampaignResult WarmCampaign::run(int runs, int threads,
                                        hwsim::WorkerPool* pool) const {
  fault::Campaign campaign(base_, runs, threads);
  return campaign.run(
      [this](int index, std::uint64_t seed) { return run_seed(index, seed); },
      pool);
}

}  // namespace xtsoc::snap
