// snap::warm — warm-start fault campaigns.
//
// A fault campaign re-runs one workload under N derived seeds. The cold
// path pays full price N times: elaborate, populate, warm the system up to
// the interesting region, then inject. But the warm-up prefix is
// IDENTICAL across seeds whenever the fault window opens at or after the
// checkpoint cycle (faultWindow.start): no PRNG stream is consulted before
// the window opens, so the first `warm_cycles` cycles are byte-for-byte
// the same simulation regardless of seed.
//
// WarmCampaign exploits that: it runs the shared prefix ONCE — with an
// armed plan of the campaign's rates, so the transports take the same
// (resilient) framing path they will under injection — snapshots it, and
// serves every seed by restore + fresh Plan(seed_i) + run the remainder.
// The per-seed cost drops from (elaborate + warm + run) to
// (elaborate + load_state + run); exactness is structural, not sampled:
// restore is byte-identical (snap_test) and zero pre-window draws mean the
// fresh plan sees the same stream states a cold run would have at the
// checkpoint. bench_snap gates the speedup (>= 5x on the 4x4-mesh
// campaign); xtsocd serves campaigns this way from resident checkpoints.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/fault/campaign.hpp"

namespace xtsoc::snap {

class WarmCampaign {
public:
  /// Run the shared prefix and take the checkpoint: elaborate from `sys`
  /// under `config`, call `populate` (create instances, inject stimuli),
  /// run `warm_cycles`, snapshot. `base.window_start` must be >=
  /// `warm_cycles` (the exactness precondition above); throws SnapError
  /// otherwise when any rate is armed. `sys` must outlive this object.
  WarmCampaign(const mapping::MappedSystem& sys, cosim::CoSimConfig config,
               fault::FaultSpec base, std::uint64_t warm_cycles,
               std::uint64_t run_cycles,
               std::function<void(cosim::CoSimulation&)> populate);

  const std::vector<std::uint8_t>& checkpoint() const { return bytes_; }
  std::uint64_t warm_cycles() const { return warm_cycles_; }
  std::uint64_t run_cycles() const { return run_cycles_; }
  const fault::FaultSpec& base_spec() const { return base_; }

  /// One campaign run from the warm checkpoint: re-elaborate, restore
  /// (keeping the fresh plan's streams), run the remainder under
  /// Plan(base with `seed`), and summarize. Safe to call concurrently —
  /// every call builds its own simulation.
  fault::RunOutcome run_seed(int index, std::uint64_t seed) const;

  /// The whole campaign through fault::Campaign's fan-out; `pool` (may be
  /// null) is the caller-owned worker pool, e.g. the daemon's shared one.
  fault::CampaignResult run(int runs, int threads,
                            hwsim::WorkerPool* pool = nullptr) const;

private:
  const mapping::MappedSystem* sys_;
  cosim::CoSimConfig config_;
  fault::FaultSpec base_;
  std::uint64_t warm_cycles_;
  std::uint64_t run_cycles_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace xtsoc::snap
