// snap::Server — the engine of xtsocd, the long-lived campaign daemon.
//
// The cost profile of fault campaigns is dominated by work that never
// changes between requests: parsing and elaborating the model, spinning up
// worker threads, and re-simulating the warm-up prefix of every run. A
// compile-run-exit tool pays all three per invocation; xtsocd pays them
// once and keeps the results resident:
//
//   * models   — loaded once ("load" op), kept pre-elaborated (a
//     core::Project with its MappedSystem);
//   * warm checkpoints — built on first use per (model, faults, cycles)
//     key and cached, so a 16-seed campaign restores 16 times from one
//     snapshot instead of re-simulating 16 warm-ups (snap/warm.hpp);
//   * one hwsim::WorkerPool — spun up at start, shared by every session's
//     campaign fan-out (fault::Campaign's pool overload).
//
// Protocol: newline-delimited JSON over an AF_UNIX stream socket. One
// request object per line, one response object per line; "ok": true/false
// discriminates. Ops: ping, load, run, campaign, stats, shutdown — see
// docs/SERVER.md for the full field tables.
//
// Multi-tenancy discipline (this is a shared resource, so both failure
// modes are bounded):
//   * backpressure — the execution queue is BOUNDED (ServerConfig::
//     max_queue): a request that would queue deeper is rejected with
//     "server busy" immediately, never buffered without limit;
//   * quotas — every tenant (client-declared "tenant" field, "default"
//     otherwise) has a campaign-run budget; requests past it are rejected
//     with "quota exceeded".
//
// handle_request() is the socket-free core — tests drive it directly; the
// listener (start/stop) is a thin line-framing wrapper around it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "xtsoc/obs/json.hpp"

namespace xtsoc::core {
class Project;
}
namespace xtsoc::hwsim {
class WorkerPool;
}

namespace xtsoc::snap {

class WarmCampaign;

struct ServerConfig {
  /// AF_UNIX socket path the listener binds (unlinked+rebound on start).
  std::string socket_path;
  /// Shared worker-pool size for campaign fan-out.
  int threads = 1;
  /// Per-run config applied inside campaigns (pinned like xtsocc's: one
  /// worker thread per run, auto window — rows depend on seeds only).
  int max_queue = 4;  ///< requests allowed to WAIT for the executor
  /// Campaign runs each tenant may consume over the server's lifetime.
  std::uint64_t tenant_quota = 4096;
};

/// Counters behind the "server" report section (stats op / stats_json()).
struct ServerStatsSnapshot {
  std::uint64_t requests = 0;         ///< requests parsed (any op)
  std::uint64_t errors = 0;           ///< responses with ok=false
  std::uint64_t rejected_busy = 0;    ///< bounded-queue backpressure hits
  std::uint64_t rejected_quota = 0;   ///< tenant budget exhausted
  std::uint64_t models_loaded = 0;    ///< distinct models resident
  std::uint64_t checkpoints_built = 0;  ///< warm checkpoints materialized
  std::uint64_t checkpoint_hits = 0;  ///< campaigns served from a cached one
  std::uint64_t campaigns = 0;        ///< campaign requests served
  std::uint64_t campaign_runs = 0;    ///< individual runs across campaigns
  std::uint64_t runs = 0;             ///< single-run requests served
  std::uint64_t sessions = 0;         ///< connections accepted
};

class Server {
public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Load a model into the resident registry (also reachable via the
  /// "load" op). Returns false with a diagnostic in `*error`.
  bool load_model(const std::string& name, const std::string& xtm_text,
                  const std::string& marks_text, std::string* error);

  /// Execute one protocol request. Thread-safe; this is where queueing,
  /// quotas and stats live. `tenant_fallback` names the session when the
  /// request carries no "tenant" field.
  obs::JsonValue handle_request(const obs::JsonValue& request,
                                const std::string& tenant_fallback = "default");
  /// Line-level entry point: parse, dispatch, serialize (never throws —
  /// malformed input yields an ok=false response).
  std::string handle_line(const std::string& line,
                          const std::string& tenant_fallback = "default");

  /// Bind the socket and serve until stop(). Returns false (with `*error`)
  /// if the socket cannot be bound.
  bool start(std::string* error);
  void stop();
  bool running() const;
  /// True once a "shutdown" request was accepted (the daemon's exit cue).
  bool shutdown_requested() const;

  ServerStatsSnapshot stats() const;
  /// The "server" obs report section: config + the counters above.
  obs::JsonValue stats_json() const;

private:
  struct Model;
  struct Tenant;

  obs::JsonValue dispatch(const obs::JsonValue& req, const std::string& tenant);
  obs::JsonValue op_load(const obs::JsonValue& req);
  obs::JsonValue op_run(const obs::JsonValue& req, const std::string& tenant);
  obs::JsonValue op_campaign(const obs::JsonValue& req,
                             const std::string& tenant);

  /// Bounded-queue admission for the executor. Returns false (busy) when
  /// max_queue waiters already stand in line.
  bool acquire_executor();
  void release_executor();
  /// Debit `runs` from `tenant`'s budget; false when over quota.
  bool charge(const std::string& tenant, std::uint64_t runs);

  Model* find_model(const std::string& name);

  void accept_loop();
  void serve_connection(int fd);

  ServerConfig config_;

  mutable std::mutex mu_;  ///< registry + stats + tenants
  std::map<std::string, std::unique_ptr<Model>> models_;
  std::map<std::string, std::uint64_t> used_;  ///< tenant -> runs consumed
  ServerStatsSnapshot stats_;

  std::mutex exec_mu_;  ///< serializes pool use across sessions
  int exec_waiters_ = 0;
  std::unique_ptr<hwsim::WorkerPool> pool_;

  // Listener state.
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> sessions_;
  mutable std::mutex sessions_mu_;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
};

}  // namespace xtsoc::snap
