#include "xtsoc/snap/snapshot.hpp"

#include <cstdio>

#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/mapping/interface.hpp"
#include "xtsoc/obs/registry.hpp"

namespace xtsoc::snap {

namespace {

constexpr std::uint32_t kMagic = 0x504e5358;  // "XSNP" little-endian
constexpr std::uint32_t kTagHeader = 'H';
constexpr std::uint32_t kTagCosim = 'C';
constexpr std::uint32_t kTagFault = 'F';
constexpr std::uint32_t kTagObs = 'O';

std::string system_digest(const cosim::CoSimulation& cs) {
  return cs.system().interface().digest(cs.system().domain());
}

/// Verify magic, version and trailing CRC; returns a Reader positioned at
/// the first section with the CRC trailer excluded from its range.
Reader open_checked(const std::uint8_t* data, std::size_t size) {
  // magic + version + CRC is the absolute minimum plausible file.
  if (size < 12) {
    throw SnapError("snapshot too short to be valid (" +
                    std::to_string(size) + " bytes)");
  }
  const std::size_t body = size - 4;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(data[body + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (fault::crc32(data, body) != stored) {
    throw SnapError("snapshot CRC mismatch (truncated or corrupted file)");
  }
  Reader r(data, body);
  if (r.u32() != kMagic) {
    throw SnapError("not a snapshot file (bad magic)");
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapVersion) {
    throw SnapError("unsupported snapshot version " + std::to_string(version) +
                    " (this build reads version " +
                    std::to_string(kSnapVersion) + ")");
  }
  return r;
}

SnapshotInfo read_header(Reader& r) {
  SnapshotInfo info;
  info.version = kSnapVersion;
  r.begin_section(kTagHeader);
  info.digest = r.str();
  info.cycle = r.u64();
  info.has_fault_streams = r.boolean();
  info.has_obs_counters = r.boolean();
  r.end_section();
  return info;
}

}  // namespace

std::vector<std::uint8_t> save(const cosim::CoSimulation& cs,
                               const fault::Plan* plan,
                               const obs::Registry* obs) {
  Writer w;
  w.u32(kMagic);
  w.u32(kSnapVersion);

  w.begin_section(kTagHeader);
  w.str(system_digest(cs));
  w.u64(cs.cycles());
  w.boolean(plan != nullptr);
  w.boolean(obs != nullptr);
  w.end_section();

  w.begin_section(kTagCosim);
  cs.save_state(w);
  w.end_section();

  if (plan != nullptr) {
    w.begin_section(kTagFault);
    plan->save_state(w);
    w.end_section();
  }
  if (obs != nullptr) {
    w.begin_section(kTagObs);
    obs->save_counters(w);
    w.end_section();
  }

  std::vector<std::uint8_t> out = w.take();
  const std::uint32_t crc = fault::crc32(out.data(), out.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return out;
}

SnapshotInfo restore(cosim::CoSimulation& cs, const std::uint8_t* data,
                     std::size_t size, fault::Plan* plan, obs::Registry* obs,
                     RestoreOptions opts) {
  Reader r = open_checked(data, size);
  const SnapshotInfo info = read_header(r);

  const std::string expected = system_digest(cs);
  if (info.digest != expected) {
    throw SnapError(
        "snapshot was saved from a different system (interface digest " +
        info.digest + ", this elaboration has " + expected + ")");
  }

  r.begin_section(kTagCosim);
  cs.load_state(r);
  r.end_section();

  if (info.has_fault_streams) {
    r.begin_section(kTagFault);
    if (plan != nullptr && opts.load_fault_streams) {
      plan->load_state(r);
      r.end_section();
    } else {
      r.skip_section();
    }
  }
  if (info.has_obs_counters) {
    r.begin_section(kTagObs);
    if (obs != nullptr) {
      obs->load_counters(r);
      r.end_section();
    } else {
      r.skip_section();
    }
  }
  if (!r.at_end()) {
    throw SnapError("snapshot has trailing bytes after the last section");
  }
  return info;
}

SnapshotInfo inspect(const std::uint8_t* data, std::size_t size) {
  Reader r = open_checked(data, size);
  return read_header(r);
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw SnapError("cannot open " + path + " for writing");
  }
  const std::size_t n =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = std::fclose(f) == 0 && n == bytes.size();
  if (!ok) throw SnapError("short write to " + path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SnapError("cannot open " + path);
  }
  std::vector<std::uint8_t> out;
  std::uint8_t chunk[65536];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    out.insert(out.end(), chunk, chunk + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) throw SnapError("read error on " + path);
  return out;
}

}  // namespace xtsoc::snap
