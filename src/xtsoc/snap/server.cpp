#include "xtsoc/snap/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "xtsoc/core/project.hpp"
#include "xtsoc/cosim/report.hpp"
#include "xtsoc/fault/campaign.hpp"
#include "xtsoc/fault/fault.hpp"
#include "xtsoc/hwsim/pool.hpp"
#include "xtsoc/marks/marks.hpp"
#include "xtsoc/snap/warm.hpp"

namespace xtsoc::snap {

namespace {

obs::JsonValue error_response(const std::string& what) {
  obs::JsonValue v = obs::JsonValue::object();
  v["ok"] = false;
  v["error"] = what;
  return v;
}

std::string field_str(const obs::JsonValue& req, std::string_view key,
                      const std::string& fallback = {}) {
  const obs::JsonValue* f = req.find(key);
  return (f != nullptr && f->is_string()) ? f->as_string() : fallback;
}

std::uint64_t field_uint(const obs::JsonValue& req, std::string_view key,
                         std::uint64_t fallback) {
  const obs::JsonValue* f = req.find(key);
  return (f != nullptr && f->is_number()) ? f->as_uint() : fallback;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

/// One resident model: the pre-elaborated project plus its cached warm
/// checkpoints, keyed by the campaign shape that built them.
struct Server::Model {
  std::string name;
  std::unique_ptr<core::Project> project;
  /// (faults text | warm_cycles | run_cycles) -> resident checkpoint.
  std::map<std::string, std::unique_ptr<WarmCampaign>> warm;
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.threads < 1) config_.threads = 1;
  if (config_.max_queue < 0) config_.max_queue = 0;
  pool_ = std::make_unique<hwsim::WorkerPool>(config_.threads);
}

Server::~Server() { stop(); }

bool Server::load_model(const std::string& name, const std::string& xtm_text,
                        const std::string& marks_text, std::string* error) {
  if (name.empty()) {
    if (error != nullptr) *error = "model name must not be empty";
    return false;
  }
  DiagnosticSink sink;
  auto project = core::Project::from_xtm(xtm_text, marks_text, sink);
  if (!project) {
    if (error != nullptr) *error = "model rejected: " + sink.to_string();
    return false;
  }
  auto model = std::make_unique<Model>();
  model->name = name;
  model->project = std::move(project);
  std::lock_guard<std::mutex> lk(mu_);
  const bool fresh = models_.find(name) == models_.end();
  models_[name] = std::move(model);  // reload replaces (and drops checkpoints)
  if (fresh) ++stats_.models_loaded;
  return true;
}

Server::Model* Server::find_model(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.get();
}

bool Server::acquire_executor() {
  std::unique_lock<std::mutex> lk(exec_mu_, std::try_to_lock);
  if (lk.owns_lock()) {
    lk.release();  // handed to release_executor()
    return true;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    if (exec_waiters_ >= config_.max_queue) return false;
    ++exec_waiters_;
  }
  exec_mu_.lock();
  {
    std::lock_guard<std::mutex> g(mu_);
    --exec_waiters_;
  }
  return true;
}

void Server::release_executor() { exec_mu_.unlock(); }

bool Server::charge(const std::string& tenant, std::uint64_t runs) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t used = used_[tenant];
  if (used + runs > config_.tenant_quota) return false;
  used_[tenant] = used + runs;
  return true;
}

obs::JsonValue Server::op_load(const obs::JsonValue& req) {
  const std::string name = field_str(req, "name");
  const std::string model_text = field_str(req, "model");
  if (model_text.empty()) {
    return error_response("load: missing 'model' (xtm text)");
  }
  std::string err;
  if (!load_model(name, model_text, field_str(req, "marks"), &err)) {
    return error_response("load: " + err);
  }
  obs::JsonValue v = obs::JsonValue::object();
  v["ok"] = true;
  v["name"] = name;
  return v;
}

obs::JsonValue Server::op_run(const obs::JsonValue& req,
                              const std::string& tenant) {
  Model* model = find_model(field_str(req, "model"));
  if (model == nullptr) {
    return error_response("run: unknown model '" + field_str(req, "model") +
                          "' (load it first)");
  }
  const std::uint64_t cycles = field_uint(req, "cycles", 64);
  if (!acquire_executor()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.rejected_busy;
    return error_response("server busy (bounded queue full, retry later)");
  }
  if (!charge(tenant, 1)) {
    release_executor();
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.rejected_quota;
    return error_response("quota exceeded for tenant '" + tenant + "'");
  }
  obs::JsonValue v = obs::JsonValue::object();
  try {
    auto cs = model->project->make_cosim({});
    cs->run_cycles(cycles);
    v["ok"] = true;
    v["report"] = cs->report().root();
  } catch (const std::exception& e) {
    release_executor();
    return error_response(std::string("run failed: ") + e.what());
  }
  release_executor();
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.runs;
  }
  return v;
}

obs::JsonValue Server::op_campaign(const obs::JsonValue& req,
                                   const std::string& tenant) {
  Model* model = find_model(field_str(req, "model"));
  if (model == nullptr) {
    return error_response("campaign: unknown model '" +
                          field_str(req, "model") + "' (load it first)");
  }
  const std::string faults_text = field_str(req, "faults");
  if (faults_text.empty()) {
    return error_response(
        "campaign: missing 'faults' (marks text with fault keys)");
  }
  const int runs = static_cast<int>(field_uint(req, "runs", 8));
  if (runs < 1 || runs > 100000) {
    return error_response("campaign: 'runs' out of range");
  }
  const std::uint64_t warm_cycles = field_uint(req, "warm_cycles", 0);
  const std::uint64_t run_cycles = field_uint(req, "run_cycles", 512);

  DiagnosticSink fsink;
  marks::MarkSet fmarks = marks::MarkSet::from_text(faults_text, fsink);
  fmarks.validate(model->project->domain(), fsink);
  if (fsink.has_errors()) {
    return error_response("campaign: faults rejected: " + fsink.to_string());
  }
  fault::FaultSpec spec = fault::FaultSpec::from_marks(fmarks);
  // The warm-exactness precondition (see snap/warm.hpp): no stream may be
  // consulted before the checkpoint. Choosing warm_cycles IS choosing the
  // earliest injection cycle, so the window start is raised to match.
  if (spec.window_start < warm_cycles) spec.window_start = warm_cycles;

  if (!acquire_executor()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.rejected_busy;
    return error_response("server busy (bounded queue full, retry later)");
  }
  if (!charge(tenant, static_cast<std::uint64_t>(runs))) {
    release_executor();
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.rejected_quota;
    return error_response("quota exceeded for tenant '" + tenant + "'");
  }

  obs::JsonValue v = obs::JsonValue::object();
  try {
    const auto t0 = std::chrono::steady_clock::now();
    fault::CampaignResult result;
    bool checkpoint_hit = false;
    if (warm_cycles > 0) {
      const std::string key = faults_text + "|" +
                              std::to_string(warm_cycles) + "|" +
                              std::to_string(run_cycles);
      WarmCampaign* warm = nullptr;
      {
        // The checkpoint cache is per-model state; building a missing
        // entry happens under the executor lock (we hold it), so two
        // sessions never build the same checkpoint twice.
        auto it = model->warm.find(key);
        if (it != model->warm.end()) {
          warm = it->second.get();
          checkpoint_hit = true;
        } else {
          auto built = std::make_unique<WarmCampaign>(
              model->project->system(), cosim::CoSimConfig{}, spec,
              warm_cycles, run_cycles, [](cosim::CoSimulation&) {});
          warm = built.get();
          model->warm.emplace(key, std::move(built));
          std::lock_guard<std::mutex> lk(mu_);
          ++stats_.checkpoints_built;
        }
      }
      result = warm->run(runs, config_.threads, pool_.get());
    } else {
      // Cold mode: every run re-simulates the whole prefix. Kept as the
      // baseline xtsocc semantics (and the denominator of bench_snap's
      // warm-speedup metric).
      fault::Campaign campaign(spec, runs, config_.threads);
      const auto& sys = model->project->system();
      result = campaign.run(
          [&](int index, std::uint64_t) {
            fault::Plan plan(campaign.spec_for(index));
            cosim::CoSimConfig rcfg;
            rcfg.fault = &plan;
            cosim::CoSimulation cs(sys, rcfg);
            cs.run_cycles(warm_cycles + run_cycles);
            return cosim::outcome_of(cs, plan);
          },
          pool_.get());
    }
    const double secs = seconds_since(t0);
    v["ok"] = true;
    v["campaign"] = result.to_snapshot().root();
    v["warm"] = warm_cycles > 0;
    v["checkpoint_hit"] = checkpoint_hit;
    v["seconds"] = secs;
    v["runs_per_sec"] = secs > 0.0 ? static_cast<double>(runs) / secs : 0.0;
    release_executor();
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.campaigns;
    if (checkpoint_hit) ++stats_.checkpoint_hits;
    stats_.campaign_runs += static_cast<std::uint64_t>(runs);
  } catch (const std::exception& e) {
    release_executor();
    return error_response(std::string("campaign failed: ") + e.what());
  }
  return v;
}

obs::JsonValue Server::dispatch(const obs::JsonValue& req,
                                const std::string& tenant) {
  const std::string op = field_str(req, "op");
  if (op == "ping") {
    obs::JsonValue v = obs::JsonValue::object();
    v["ok"] = true;
    v["pong"] = true;
    return v;
  }
  if (op == "load") return op_load(req);
  if (op == "run") return op_run(req, tenant);
  if (op == "campaign") return op_campaign(req, tenant);
  if (op == "stats") {
    obs::JsonValue v = obs::JsonValue::object();
    v["ok"] = true;
    v["server"] = stats_json();
    return v;
  }
  if (op == "shutdown") {
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      shutdown_requested_ = true;
    }
    obs::JsonValue v = obs::JsonValue::object();
    v["ok"] = true;
    v["stopping"] = true;
    return v;
  }
  return error_response("unknown op '" + op + "'");
}

obs::JsonValue Server::handle_request(const obs::JsonValue& request,
                                      const std::string& tenant_fallback) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.requests;
  }
  const std::string tenant = field_str(request, "tenant", tenant_fallback);
  obs::JsonValue v = dispatch(request, tenant);
  const obs::JsonValue* ok = v.find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.errors;
  }
  return v;
}

std::string Server::handle_line(const std::string& line,
                                const std::string& tenant_fallback) {
  std::string err;
  std::optional<obs::JsonValue> req = obs::json_parse(line, &err);
  obs::JsonValue resp;
  if (!req.has_value()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.requests;
      ++stats_.errors;
    }
    resp = error_response("bad request: " + err);
  } else {
    resp = handle_request(*req, tenant_fallback);
  }
  return resp.dump();
}

ServerStatsSnapshot Server::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

obs::JsonValue Server::stats_json() const {
  const ServerStatsSnapshot s = stats();
  obs::JsonValue v = obs::JsonValue::object();
  v["threads"] = config_.threads;
  v["max_queue"] = config_.max_queue;
  v["tenant_quota"] = config_.tenant_quota;
  v["requests"] = s.requests;
  v["errors"] = s.errors;
  v["rejected_busy"] = s.rejected_busy;
  v["rejected_quota"] = s.rejected_quota;
  v["models_loaded"] = s.models_loaded;
  v["checkpoints_built"] = s.checkpoints_built;
  v["checkpoint_hits"] = s.checkpoint_hits;
  v["campaigns"] = s.campaigns;
  v["campaign_runs"] = s.campaign_runs;
  v["runs"] = s.runs;
  v["sessions"] = s.sessions;
  return v;
}

bool Server::start(std::string* error) {
  if (config_.socket_path.empty()) {
    if (error != nullptr) *error = "no socket path configured";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long";
    return false;
  }
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) {
      *error = "cannot bind " + config_.socket_path + ": " +
               std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  stopping_ = false;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::accept_loop() {
  for (;;) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      if (stopping_) return;
    }
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lk(sessions_mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    {
      std::lock_guard<std::mutex> g(mu_);
      ++stats_.sessions;
    }
    sessions_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  const std::string tenant = "session-" + std::to_string(fd);
  std::string buf;
  char chunk[4096];
  for (;;) {
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, 200);
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      if (stopping_) break;
    }
    if (pr <= 0) continue;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      const std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line.empty()) continue;
      std::string resp = handle_line(line, tenant);
      resp += '\n';
      std::size_t off = 0;
      while (off < resp.size()) {
        const ssize_t w = ::write(fd, resp.data() + off, resp.size() - off);
        if (w <= 0) {
          ::close(fd);
          return;
        }
        off += static_cast<std::size_t>(w);
      }
    }
  }
  ::close(fd);
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
    stopping_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(config_.socket_path.c_str());
    listen_fd_ = -1;
  }
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (std::thread& t : sessions) {
    if (t.joinable()) t.join();
  }
}

bool Server::running() const { return listen_fd_ >= 0; }

bool Server::shutdown_requested() const {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  return shutdown_requested_;
}

}  // namespace xtsoc::snap
