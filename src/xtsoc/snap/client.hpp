// snap::Client — the xtsocd wire client (xtsocc --connect).
//
// Blocking, line-framed: one JSON request out, one JSON response back, on
// an AF_UNIX stream socket (the same dialect Server::handle_line speaks).
// Deliberately synchronous — the CLI sends a handful of requests per
// invocation; concurrency lives on the server side.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "xtsoc/obs/json.hpp"

namespace xtsoc::snap {

class Client {
public:
  /// Connect to the daemon's socket. Returns null with a diagnostic in
  /// `*error` when the daemon is not there.
  static std::unique_ptr<Client> connect(const std::string& socket_path,
                                         std::string* error);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One round trip: serialize `request` as a line, read the response
  /// line. nullopt (with `*error`) on transport or parse failure.
  std::optional<obs::JsonValue> request(const obs::JsonValue& request,
                                        std::string* error);

private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_;
  std::string buf_;  ///< bytes past the last consumed line
};

}  // namespace xtsoc::snap
