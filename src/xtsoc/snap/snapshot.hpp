// snap::snapshot — the versioned checkpoint file format.
//
// A snapshot is the COMPLETE dynamic state of one co-simulation at a quiet
// point (between run calls), framed for safe storage:
//
//   magic "XSNP" | u32 version | sections | u32 CRC-32 (whole preceding file)
//
// Sections (tagged, length-prefixed — see snap/io.hpp):
//
//   'H' header : interface digest, cycle count, content flags. Always
//                first; readable without touching the state payload
//                (inspect()).
//   'C' cosim  : CoSimulation::save_state — kernel, interconnect,
//                channels, domain executors, scheduler, cycle counter.
//   'F' fault  : fault::Plan RNG stream positions (present only when a
//                plan was attached at save time).
//   'O' obs    : obs::Registry counters (present only when a registry was
//                attached at save time).
//
// The structure of the simulation (netlist, partition, topology) is NOT in
// the file: restore() re-elaborates a CoSimulation from the same
// MappedSystem — with ANY threads/window configuration — and loads state
// into it. The interface digest pins "the same MappedSystem"; the CRC is
// verified before any parsing, so a truncated or bit-rotted file is
// rejected with a diagnostic instead of deserializing garbage.
//
// Contract (tested by snap_test's determinism grid): a restored run
// produces byte-identical traces, VCD, stats and report() output to the
// uninterrupted run, at every thread count and window size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xtsoc/snap/io.hpp"

namespace xtsoc::cosim {
class CoSimulation;
}
namespace xtsoc::fault {
class Plan;
}
namespace xtsoc::obs {
class Registry;
}

namespace xtsoc::snap {

/// File format version. Bump on any layout change; restore() rejects every
/// version it was not built for (no silent cross-version reads).
/// v2: the fabric F-section leads with a typed (topology kind, routing
/// policy) shape guard, and the flit route-mode byte is the RouteMode enum
/// (primary/fallback) rather than a raw 0/1.
/// v3: the C section appends the executor flat-memory maps, per-channel
/// coherence egress queues, and the xtsoc::mem hierarchy state (store
/// buffers, version log, cache arrays, MSHRs, directory, DRAM timers).
inline constexpr std::uint32_t kSnapVersion = 3;

/// Parsed 'H' section.
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::string digest;            ///< interface digest of the saved system
  std::uint64_t cycle = 0;       ///< co-simulation cycle at save time
  bool has_fault_streams = false;
  bool has_obs_counters = false;
};

struct RestoreOptions {
  /// Load the saved fault-plan RNG positions into the attached plan
  /// (byte-identical resume of a faulty run). false = keep the attached
  /// plan's own fresh streams — the warm-campaign mode: one checkpoint,
  /// many seeds (see snap/warm.hpp).
  bool load_fault_streams = true;
};

/// Serialize `cs` into a snapshot byte buffer. `plan` / `obs` add the 'F' /
/// 'O' sections when non-null; pass whatever the run had attached. Throws
/// SnapError if the kernel is mid-settle (not a quiet point).
std::vector<std::uint8_t> save(const cosim::CoSimulation& cs,
                               const fault::Plan* plan = nullptr,
                               const obs::Registry* obs = nullptr);

/// Validate magic, version, CRC and interface digest, then load the state
/// into `cs` (freshly elaborated from the same MappedSystem). `plan` and
/// `obs` receive the 'F' / 'O' sections when present and non-null; a null
/// argument skips the section. Throws SnapError on any mismatch.
SnapshotInfo restore(cosim::CoSimulation& cs, const std::uint8_t* data,
                     std::size_t size, fault::Plan* plan = nullptr,
                     obs::Registry* obs = nullptr, RestoreOptions opts = {});

/// Validate magic, version and CRC, and parse the header only.
SnapshotInfo inspect(const std::uint8_t* data, std::size_t size);

// --- file helpers -------------------------------------------------------------

/// Write `bytes` to `path` (truncating). Throws SnapError on I/O failure.
void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes);
/// Read the whole file. Throws SnapError on I/O failure.
std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace xtsoc::snap
