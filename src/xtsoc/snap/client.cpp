#include "xtsoc/snap/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xtsoc::snap {

std::unique_ptr<Client> Client::connect(const std::string& socket_path,
                                        std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long";
    return nullptr;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket() failed";
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) {
      *error = "cannot connect to " + socket_path + ": " +
               std::strerror(errno) + " (is xtsocd running?)";
    }
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<obs::JsonValue> Client::request(const obs::JsonValue& request,
                                              std::string* error) {
  std::string line = request.dump();
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t w = ::write(fd_, line.data() + off, line.size() - off);
    if (w <= 0) {
      if (error != nullptr) *error = "connection lost while sending";
      return std::nullopt;
    }
    off += static_cast<std::size_t>(w);
  }
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      const std::string resp = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      std::string perr;
      std::optional<obs::JsonValue> v = obs::json_parse(resp, &perr);
      if (!v.has_value() && error != nullptr) {
        *error = "malformed response: " + perr;
      }
      return v;
    }
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n <= 0) {
      if (error != nullptr) *error = "connection closed before response";
      return std::nullopt;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace xtsoc::snap
