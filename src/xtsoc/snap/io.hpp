// xtsoc::snap — byte-level checkpoint I/O.
//
// Writer/Reader are the primitive layer of the checkpoint subsystem: a
// little-endian, bounds-checked byte stream with nestable length-prefixed
// sections. They are deliberately header-only so that every library in the
// dependency chain (hwsim, runtime, cosim, noc, fault, obs, bridge) can
// implement its own save_state/load_state against them without linking the
// snap library — snap (snapshot orchestration, warm campaigns, the server)
// sits ABOVE those libraries and stitches their sections together
// (snapshot.hpp).
//
// Every read is bounds-checked and every section close is length-checked;
// a truncated or over-long snapshot surfaces as SnapError, never as a
// silent misparse. Encoding is explicit little-endian, so snapshots are
// portable across hosts of the same format version.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace xtsoc::snap {

/// Any malformed-snapshot condition: truncation, bad magic, version or
/// digest mismatch, section over/under-run, CRC failure.
class SnapError : public std::runtime_error {
public:
  explicit SnapError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u64(s.size());
    bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  void bytes(const std::uint8_t* p, std::size_t n) {
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Open a tagged, length-prefixed section. Sections nest; the length is
  /// back-patched by end_section(), so writers never precompute sizes.
  void begin_section(std::uint32_t tag) {
    u32(tag);
    patch_.push_back(buf_.size());
    u64(0);  // placeholder, patched by end_section
  }

  void end_section() {
    if (patch_.empty()) throw SnapError("end_section without begin_section");
    const std::size_t at = patch_.back();
    patch_.pop_back();
    const std::uint64_t len = buf_.size() - (at + 8);
    for (int i = 0; i < 8; ++i) {
      buf_[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::size_t> patch_;
};

class Reader {
public:
  Reader(const std::uint8_t* data, std::size_t n) : p_(data), n_(n) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    need(1);
    return p_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string s(reinterpret_cast<const char*>(p_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  /// Open the next section and return its tag.
  std::uint32_t begin_section() {
    const std::uint32_t tag = u32();
    const std::uint64_t len = u64();
    need(len);
    ends_.push_back(pos_ + static_cast<std::size_t>(len));
    return tag;
  }

  /// Open the next section, requiring tag `expect`.
  void begin_section(std::uint32_t expect) {
    const std::uint32_t tag = begin_section();
    if (tag != expect) {
      throw SnapError("snapshot section mismatch: expected tag " +
                      std::to_string(expect) + ", found " +
                      std::to_string(tag));
    }
  }

  /// Close the innermost section; the cursor must sit exactly at its end.
  void end_section() {
    if (ends_.empty()) throw SnapError("end_section without begin_section");
    const std::size_t end = ends_.back();
    ends_.pop_back();
    if (pos_ != end) {
      throw SnapError("snapshot section length mismatch: read " +
                      std::to_string(pos_) + ", section ends at " +
                      std::to_string(end));
    }
  }

  /// Close the innermost section by jumping to its end, discarding any
  /// unread payload (for sections the reader chooses not to consume).
  void skip_section() {
    if (ends_.empty()) throw SnapError("skip_section without begin_section");
    pos_ = ends_.back();
    ends_.pop_back();
  }

  std::size_t remaining() const { return n_ - pos_; }
  bool at_end() const { return pos_ == n_; }
  std::size_t position() const { return pos_; }

private:
  void need(std::uint64_t n) const {
    if (n > n_ - pos_) {
      throw SnapError("truncated snapshot: need " + std::to_string(n) +
                      " bytes at offset " + std::to_string(pos_) +
                      ", have " + std::to_string(n_ - pos_));
    }
  }

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> ends_;
};

}  // namespace xtsoc::snap
