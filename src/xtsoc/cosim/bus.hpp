// The cosim bus: the generated hardware/software interconnect.
//
// Frames are (opcode, bit-packed payload) pairs produced by
// mapping::encode_payload and consumed by mapping::decode_payload — both
// sides hold the SAME InterfaceSpec, which is the paper's §4 consistency
// guarantee made executable. At connect() time the two endpoints exchange
// interface digests; a mismatch (the classic symptom of hand-maintained
// interfaces drifting apart) aborts the co-simulation immediately instead of
// corrupting data silently.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace xtsoc::fault {
class Plan;
}

namespace xtsoc::snap {
class Writer;
class Reader;
}  // namespace xtsoc::snap

namespace xtsoc::cosim {

/// Thrown when the two sides of the boundary disagree about the interface.
class InterfaceMismatch : public std::runtime_error {
public:
  explicit InterfaceMismatch(const std::string& what)
      : std::runtime_error(what) {}
};

/// One message on the wire.
struct Frame {
  std::uint32_t opcode = 0;
  std::vector<std::uint8_t> payload;
  std::uint64_t due_cycle = 0;  ///< earliest delivery cycle
};

/// Frame byte encoding, shared by every checkpointed structure that queues
/// frames (Bus, domain outboxes/inboxes, the NIC egress buffer).
void save_frame(snap::Writer& w, const Frame& f);
Frame load_frame(snap::Reader& r);

struct BusStats {
  std::uint64_t frames_to_hw = 0;
  std::uint64_t frames_to_sw = 0;
  std::uint64_t bytes_to_hw = 0;
  std::uint64_t bytes_to_sw = 0;
};

/// Injected transfer errors and the bus's answer to them. A failed attempt
/// is retried with linear backoff (each retry re-arbitrates the bus, so it
/// costs another latency plus a widening penalty); a frame that exhausts
/// the retry budget is dropped and counted — never silently wedged.
struct BusFaultStats {
  std::uint64_t errors = 0;          ///< injected transfer failures
  std::uint64_t retries = 0;         ///< re-arbitrated attempts
  std::uint64_t frames_dropped = 0;  ///< budget exhausted
};

class Bus {
public:
  /// `latency_cycles`: clock cycles a frame spends in flight.
  explicit Bus(int latency_cycles) : latency_(latency_cycles) {}

  /// Digest handshake. Call once before traffic; throws InterfaceMismatch
  /// when the endpoints were generated from different interfaces.
  void connect(const std::string& hw_digest, const std::string& sw_digest);
  bool connected() const { return connected_; }

  /// Queue a frame; it becomes deliverable `latency + extra_delay` cycles
  /// after `current_cycle`.
  void push_to_hw(Frame f, std::uint64_t current_cycle,
                  std::uint64_t extra_delay = 0);
  void push_to_sw(Frame f, std::uint64_t current_cycle,
                  std::uint64_t extra_delay = 0);

  /// Remove and return every frame due at or before `cycle`, in order.
  std::vector<Frame> pop_due_to_hw(std::uint64_t cycle);
  std::vector<Frame> pop_due_to_sw(std::uint64_t cycle);

  bool empty() const { return to_hw_.empty() && to_sw_.empty(); }
  int latency() const { return latency_; }
  const BusStats& stats() const { return stats_; }

  /// Attach a fault plan (src/xtsoc/fault). Null, or a plan with
  /// busError = 0, leaves every push byte-identical to the plain bus.
  void set_fault(fault::Plan* plan) { fault_ = plan; }
  const BusFaultStats& fault_stats() const { return fstats_; }

  // --- checkpointing ---------------------------------------------------------
  /// Serialize in-flight frames, the handshake flag and both stats blocks.
  /// The latency and attached fault plan are construction-owned.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  static std::vector<Frame> pop_due(std::deque<Frame>& q, std::uint64_t cycle);
  void check_connected() const;
  /// Run the injected-error retry loop for one push toward `endpoint`
  /// (0 = hw, 1 = sw). Returns the extra delay the retries cost, or
  /// nullopt when the retry budget ran out and the frame must drop.
  std::optional<std::uint64_t> transfer_penalty(std::uint32_t endpoint,
                                                std::uint64_t cycle);

  int latency_;
  bool connected_ = false;
  std::deque<Frame> to_hw_;
  std::deque<Frame> to_sw_;
  BusStats stats_;
  fault::Plan* fault_ = nullptr;
  BusFaultStats fstats_;
};

}  // namespace xtsoc::cosim
