#include "xtsoc/cosim/swdomain.hpp"

#include "xtsoc/cosim/codec.hpp"

namespace xtsoc::cosim {

SwDomain::SwDomain(const mapping::MappedSystem& sys, Channel& channel,
                   swrt::Scheduler& scheduler, runtime::ExecutorConfig config)
    : sys_(&sys), channel_(&channel), scheduler_(&scheduler),
      exec_(
          sys.compiled(), config,
          [&sys](ClassId cls) { return !sys.partition().is_hardware(cls); },
          [this](runtime::EventMessage m) {
            std::uint64_t extra = m.deliver_at - exec_.now();
            ClassId dst = m.target.cls;
            if (windowed_) {
              // The channel is shared across domains; inside a window it
              // must not be touched. Stage cycle-stamped; the master sends
              // at the boundary, in the serial order.
              outbox_.push_back(
                  {dst, encode_message(sys_->interface(), m), cycle_, extra});
            } else {
              channel_->send(dst, encode_message(sys_->interface(), m), cycle_,
                             extra);
            }
            OBS_COUNT(c_frames_out_);
            exec_.recycle_args(std::move(m.args));
          }) {
  if (config.obs != nullptr) {
    obs_ = config.obs;
    obs_track_ = config.obs_track.is_valid() ? config.obs_track
                                             : obs_->track("executor");
    const std::string& tn = obs_->track_name(obs_track_);
    c_frames_in_ = obs_->counter(tn + ".frames_in");
    c_frames_out_ = obs_->counter(tn + ".frames_out");
  }
  task_ = scheduler_->spawn(sys.domain().name() + ".sw", /*priority=*/0,
                            [this] { return exec_.step(); });
}

void SwDomain::latch_cycle(std::uint64_t cycle) {
  cycle_ = cycle;
  exec_.advance_time(1);
  bool delivered = false;
  if (windowed_) {
    // Dues are not monotone in inbox order (heterogeneous delays): scan
    // everything, deliver what is due, keep the rest in order.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < inbox_.size(); ++i) {
      if (inbox_[i].due_cycle <= cycle) {
        runtime::EventMessage m = decode_frame(sys_->interface(), inbox_[i]);
        m.deliver_at = exec_.now();
        exec_.deliver_remote(std::move(m));
        OBS_COUNT(c_frames_in_);
        delivered = true;
      } else {
        if (kept != i) inbox_[kept] = std::move(inbox_[i]);
        ++kept;
      }
    }
    inbox_.resize(kept);
  } else {
    for (Frame& f : channel_->receive(cycle)) {
      runtime::EventMessage m = decode_frame(sys_->interface(), f);
      m.deliver_at = exec_.now();
      exec_.deliver_remote(std::move(m));
      OBS_COUNT(c_frames_in_);
      delivered = true;
    }
  }
  if (delivered || !exec_.idle()) scheduler_->notify(task_);
}

void SwDomain::begin_cycle(std::uint64_t cycle) { latch_cycle(cycle); }

void SwDomain::run_cycle(std::uint64_t cycle, int steps, std::uint64_t ops) {
  latch_cycle(cycle);
  // The master's per-cycle budget loop, verbatim: at most `steps`
  // dispatches AND at most `ops` action ops; a dispatch whose action
  // overruns the op budget still completes, it just exhausts the cycle.
  const std::uint64_t ops_start = exec_.ops_executed();
  for (int i = 0; i < steps; ++i) {
    if (exec_.ops_executed() - ops_start >= ops) break;
    if (!scheduler_->run_one()) break;
  }
}

void SwDomain::fill_inbox(std::uint64_t through_cycle) {
  for (Frame& f : channel_->receive(through_cycle)) {
    inbox_.push_back(std::move(f));
  }
}

void SwDomain::flush_outbox_through(std::uint64_t cycle) {
  while (outbox_sent_ < outbox_.size() && outbox_[outbox_sent_].cycle <= cycle) {
    Outbound& o = outbox_[outbox_sent_];
    channel_->send(o.dst, std::move(o.frame), o.cycle, o.extra);
    ++outbox_sent_;
  }
  if (outbox_sent_ == outbox_.size()) {
    outbox_.clear();
    outbox_sent_ = 0;
  }
}

void SwDomain::pending_send_cycles(
    std::uint32_t tag,
    std::vector<std::pair<std::uint64_t, std::uint32_t>>& out) const {
  for (std::size_t i = outbox_sent_; i < outbox_.size(); ++i) {
    if (out.empty() || out.back().first != outbox_[i].cycle ||
        out.back().second != tag) {
      out.push_back({outbox_[i].cycle, tag});
    }
  }
}

void SwDomain::save_state(snap::Writer& w) const {
  exec_.save_state(w);
  w.u64(cycle_);
  w.u64(outbox_.size());
  for (const Outbound& o : outbox_) {
    w.u32(o.dst.value());
    save_frame(w, o.frame);
    w.u64(o.cycle);
    w.u64(o.extra);
  }
  w.u64(outbox_sent_);
  w.u64(inbox_.size());
  for (const Frame& f : inbox_) save_frame(w, f);
}

void SwDomain::load_state(snap::Reader& r) {
  exec_.load_state(r);
  cycle_ = r.u64();
  outbox_.clear();
  std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    Outbound o;
    o.dst = ClassId(r.u32());
    o.frame = load_frame(r);
    o.cycle = r.u64();
    o.extra = r.u64();
    outbox_.push_back(std::move(o));
  }
  outbox_sent_ = static_cast<std::size_t>(r.u64());
  inbox_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) inbox_.push_back(load_frame(r));
}

}  // namespace xtsoc::cosim
