#include "xtsoc/cosim/swdomain.hpp"

#include "xtsoc/cosim/codec.hpp"

namespace xtsoc::cosim {

SwDomain::SwDomain(const mapping::MappedSystem& sys, Channel& channel,
                   swrt::Scheduler& scheduler, runtime::ExecutorConfig config)
    : sys_(&sys), channel_(&channel), scheduler_(&scheduler),
      exec_(
          sys.compiled(), config,
          [&sys](ClassId cls) { return !sys.partition().is_hardware(cls); },
          [this](runtime::EventMessage m) {
            std::uint64_t extra = m.deliver_at - exec_.now();
            ClassId dst = m.target.cls;
            channel_->send(dst, encode_message(sys_->interface(), m), cycle_,
                           extra);
            exec_.recycle_args(std::move(m.args));
          }) {
  task_ = scheduler_->spawn(sys.domain().name() + ".sw", /*priority=*/0,
                            [this] { return exec_.step(); });
}

void SwDomain::begin_cycle(std::uint64_t cycle) {
  cycle_ = cycle;
  exec_.advance_time(1);
  bool delivered = false;
  for (Frame& f : channel_->receive(cycle)) {
    runtime::EventMessage m = decode_frame(sys_->interface(), f);
    m.deliver_at = exec_.now();
    exec_.deliver_remote(std::move(m));
    delivered = true;
  }
  if (delivered || !exec_.idle()) scheduler_->notify(task_);
}

}  // namespace xtsoc::cosim
