// SwDomain: the executable software mapping.
//
// The software partition runs as one task of the cooperative swrt
// scheduler. Each task step dispatches one signal (the generated C's main
// loop does exactly this: pop mailbox, dispatch, repeat). The co-simulation
// master grants the software side a budget of steps per hardware clock
// cycle — the speed ratio between the processor and the fabric — which is
// the knob behind the partitioning experiments. Frames travel whatever
// Channel the master picked: the legacy bus, or the software tile's NIC on
// the mesh.
#pragma once

#include "xtsoc/cosim/channel.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"
#include "xtsoc/runtime/executor.hpp"
#include "xtsoc/swrt/scheduler.hpp"

namespace xtsoc::cosim {

class SwDomain {
public:
  SwDomain(const mapping::MappedSystem& sys, Channel& channel,
           swrt::Scheduler& scheduler, runtime::ExecutorConfig config);

  runtime::Executor& executor() { return exec_; }
  const runtime::Executor& executor() const { return exec_; }

  /// Called once per hardware clock cycle by the co-simulation master:
  /// advances software time, latches due frames, wakes the task.
  void begin_cycle(std::uint64_t cycle);

  TaskId task() const { return task_; }
  std::uint64_t dispatches() const { return exec_.dispatch_count(); }
  bool drained() const { return exec_.drained(); }

private:
  const mapping::MappedSystem* sys_;
  Channel* channel_;
  swrt::Scheduler* scheduler_;
  runtime::Executor exec_;
  TaskId task_;
  std::uint64_t cycle_ = 0;
};

}  // namespace xtsoc::cosim
