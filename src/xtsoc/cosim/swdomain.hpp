// SwDomain: the executable software mapping.
//
// The software partition runs as one task of the cooperative swrt
// scheduler. Each task step dispatches one signal (the generated C's main
// loop does exactly this: pop mailbox, dispatch, repeat). The co-simulation
// master grants the software side a budget of steps per hardware clock
// cycle — the speed ratio between the processor and the fabric — which is
// the knob behind the partitioning experiments. Frames travel whatever
// Channel the master picked: the legacy bus, or the software tile's NIC on
// the mesh.
//
// Like HwDomain, this domain has a lockstep mode (begin_cycle per master
// cycle, frames sent to the shared channel inline) and a windowed mode
// (run_cycle driven from a worker thread against a pre-filled inbox, with
// outbound frames staged cycle-stamped in an outbox for the serial
// boundary flush). See cosim.hpp for the window scheme.
#pragma once

#include <utility>
#include <vector>

#include "xtsoc/cosim/channel.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"
#include "xtsoc/runtime/executor.hpp"
#include "xtsoc/swrt/scheduler.hpp"

namespace xtsoc::cosim {

class SwDomain {
public:
  SwDomain(const mapping::MappedSystem& sys, Channel& channel,
           swrt::Scheduler& scheduler, runtime::ExecutorConfig config);

  runtime::Executor& executor() { return exec_; }
  const runtime::Executor& executor() const { return exec_; }

  /// Called once per hardware clock cycle by the co-simulation master
  /// (lockstep mode): advances software time, latches due frames, wakes
  /// the task. The master then runs the scheduler against its budget.
  void begin_cycle(std::uint64_t cycle);

  TaskId task() const { return task_; }
  std::uint64_t dispatches() const { return exec_.dispatch_count(); }
  bool drained() const {
    return exec_.drained() && outbox_.empty() && inbox_.empty();
  }

  // --- windowed execution (CoSimulation only) --------------------------------

  /// Route outbound frames into the outbox instead of the shared channel.
  void set_windowed(bool on) { windowed_ = on; }

  /// Window boundary, serial: pull every channel frame deliverable at or
  /// before `through_cycle` into the inbox (complete for the window by the
  /// lookahead argument — see cosim.hpp).
  void fill_inbox(std::uint64_t through_cycle);

  /// One software cycle off the inbox (worker thread): advance time, latch
  /// due frames, then run the scheduler against the per-cycle budget — at
  /// most `steps` dispatches and `ops` action ops, run-to-completion never
  /// violated. Identical to begin_cycle + the master's budget loop.
  void run_cycle(std::uint64_t cycle, int steps, std::uint64_t ops);

  /// Send the outbox prefix staged at cycles <= `cycle` (monotone, after
  /// the hardware domains' flushes).
  void flush_outbox_through(std::uint64_t cycle);

  /// Append one (cycle, `tag`) entry per distinct cycle with staged,
  /// unsent outbox frames (see HwDomain::pending_send_cycles).
  void pending_send_cycles(
      std::uint32_t tag,
      std::vector<std::pair<std::uint64_t, std::uint32_t>>& out) const;

  // --- checkpointing ---------------------------------------------------------
  /// Serialize the executor, cycle counter and staged frames (see
  /// HwDomain::save_state for the quiet-point contract).
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  struct Outbound {
    ClassId dst;
    Frame frame;
    std::uint64_t cycle;
    std::uint64_t extra;
  };

  /// Shared per-cycle prologue: advance time, deliver due frames, wake the
  /// task. Windowed mode reads the inbox; lockstep asks the channel.
  void latch_cycle(std::uint64_t cycle);

  const mapping::MappedSystem* sys_;
  Channel* channel_;
  swrt::Scheduler* scheduler_;
  runtime::Executor exec_;
  TaskId task_;
  std::uint64_t cycle_ = 0;

  bool windowed_ = false;
  std::vector<Frame> inbox_;
  std::vector<Outbound> outbox_;
  std::size_t outbox_sent_ = 0;

  // Observability (null members when no registry is attached; the track is
  // shared with this domain's executor, "executor/sw").
  obs::Registry* obs_ = nullptr;
  obs::TrackId obs_track_;
  obs::Counter* c_frames_in_ = nullptr;
  obs::Counter* c_frames_out_ = nullptr;
};

}  // namespace xtsoc::cosim
