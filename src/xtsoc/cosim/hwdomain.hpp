// HwDomain: the executable hardware mapping of ONE clock domain.
//
// Every hardware-marked class becomes, conceptually, a bank of FSMs; here
// the bank is realized as a domain-scoped Executor driven by a clocked
// process of the hwsim kernel. With the legacy bus there is exactly one
// HwDomain owning every hardware class; with the mesh fabric there is one
// per occupied tile, each behind its own NIC. The timing contract of the
// mapping:
//
//   * one signal consumed per instance per clock cycle (FSMs are parallel
//     in space, serial in their own time),
//   * the `clockDomain` mark is a clock divider: a class in domain d (d>=2)
//     consumes signals only every d-th master-clock cycle (0/1 = full
//     rate) — slow peripherals cost cycles, exactly as on a real SoC,
//   * `delay N` = N master-clock cycles,
//   * signals to classes owned by any other executor leave through this
//     domain's Channel with the synthesized wire format.
//
// Outbound frames are STAGED, not sent: each cycle encodes them into a
// local outbox and CoSimulation flushes every domain's outbox — serially,
// in domain order — after the clock edge settles. The interconnect is
// shared state, so this is what lets domains evaluate concurrently and
// still inject frames in the exact order the serial master would have.
//
// Two execution modes, selected by CoSimulation (see cosim.hpp):
//
//   * lockstep (window = 1): on_clock runs the whole per-cycle body inside
//     the kernel's clocked process — receive from the channel, dispatch,
//     write the observability wires. The exact legacy path.
//   * windowed (window = L > 1): the per-cycle body runs OUTSIDE the
//     kernel, on a worker thread, for L consecutive cycles (run_window).
//     Frames come from a pre-filled inbox instead of the shared channel,
//     and kernel wire writes are staged per edge. The kernel's clocked
//     process then merely REPLAYS the staged writes edge by edge
//     (serially, at the window boundary), so SimStats, VCD and wire
//     history stay byte-identical to lockstep.
//
// This is the executable twin of the VHDL text emitted by
// codegen::generate_vhdl — same partition, same interface, same queueing.
#pragma once

#include <utility>
#include <vector>

#include "xtsoc/cosim/channel.hpp"
#include "xtsoc/hwsim/kernel.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"
#include "xtsoc/runtime/executor.hpp"

namespace xtsoc::cosim {

class HwDomain {
public:
  /// Registers a clocked process on `clk`. `sim` and `channel` must
  /// outlive this object. `owned` lists the hardware classes this domain
  /// executes: the full hardware partition in bus mode, one tile's worth
  /// in fabric mode.
  HwDomain(const mapping::MappedSystem& sys, hwsim::Simulator& sim,
           HwSignalId clk, Channel& channel, std::vector<ClassId> owned,
           runtime::ExecutorConfig config);

  runtime::Executor& executor() { return exec_; }
  const runtime::Executor& executor() const { return exec_; }

  const std::vector<ClassId>& owned() const { return owned_; }
  bool owns(ClassId cls) const {
    return cls.value() < owned_mask_.size() && owned_mask_[cls.value()] != 0;
  }

  /// Rising edges seen so far (= hardware cycles executed).
  std::uint64_t cycles() const { return cycle_; }
  /// Signals dispatched in hardware.
  std::uint64_t dispatches() const { return exec_.dispatch_count(); }

  /// Hand the frames staged during the last clock edge to the channel.
  /// Called by CoSimulation once per lockstep cycle, after the edge
  /// settles, in domain order; must not run while the kernel is mid-settle.
  void flush_outbox();

  bool drained() const {
    return exec_.drained() && outbox_.empty() && inbox_.empty();
  }

  // --- windowed execution (CoSimulation only) --------------------------------

  /// Switch the clocked process to replay mode: per-cycle work happens in
  /// run_window(); on_clock only replays staged kernel writes.
  void set_windowed(bool on) { windowed_ = on; }

  /// Window boundary, serial: move every channel frame deliverable at or
  /// before `through_cycle` (the window's last cycle) into the inbox.
  /// Lookahead guarantees nothing sent inside the window can become due
  /// inside it, so the inbox is complete for the whole window.
  void fill_inbox(std::uint64_t through_cycle);

  /// Run `n` consecutive cycles of this domain's per-cycle body against the
  /// inbox (worker thread; touches only domain-local state). Kernel wire
  /// writes are staged per edge for the boundary replay; outbound frames
  /// are staged cycle-stamped in the outbox.
  void run_window(std::uint64_t n);

  /// Arm the boundary replay: the next `n` on_clock firings replay the
  /// staged writes of edges 0..n-1 in order.
  void begin_replay() { replay_edge_ = 0; }

  /// Send the outbox prefix staged at cycles <= `cycle` (monotone calls,
  /// in domain order). Clears the outbox when the last staged frame has
  /// been sent.
  void flush_outbox_through(std::uint64_t cycle);

  /// Append one (cycle, `tag`) entry per distinct cycle that still has
  /// staged, unsent outbox frames. CoSimulation merges these into the
  /// window's flush schedule so phase B only asks a domain to flush at
  /// cycles where it actually has something to send.
  void pending_send_cycles(
      std::uint32_t tag,
      std::vector<std::pair<std::uint64_t, std::uint32_t>>& out) const;

  /// The kernel process driving this domain — exactly one clocked process
  /// per domain, which is what makes the domain a replay shard.
  ProcessId process_id() const { return process_; }

  /// Every kernel wire this domain writes (the alive/busy pair per owned
  /// hardware class): the wire-ownership set of this domain's replay shard.
  std::vector<HwSignalId> kernel_wires() const;

  /// Observability wires created in the hwsim netlist, one pair per owned
  /// hardware class: `hw.<class>.alive` (live instance count, 16 bits) and
  /// `hw.<class>.busy` (1 while the class dispatched this cycle). They make
  /// fabric activity visible to the VCD writer like any RTL signal.
  HwSignalId alive_wire(ClassId cls) const;
  HwSignalId busy_wire(ClassId cls) const;

  // --- checkpointing ---------------------------------------------------------
  /// Serialize the executor, cycle counter and staged frames. Checkpoints
  /// are taken between CoSimulation::run calls, where the windowed scratch
  /// state (inbox, edge writes, replay cursors) is empty by construction;
  /// load_state resets it.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  struct Outbound {
    ClassId dst;
    Frame frame;
    std::uint64_t cycle;  ///< cycle the signal left the executor
    std::uint64_t extra;  ///< generate-statement delay riding along
  };

  /// One staged kernel write of a windowed cycle, replayed at the boundary.
  struct KernelWrite {
    HwSignalId w;
    std::uint64_t value;
  };

  void on_clock();
  /// The per-cycle body shared by both modes: advance, latch due frames,
  /// dispatch one signal per instance, update observability wires.
  void step_cycle();

  const mapping::MappedSystem* sys_;
  hwsim::Simulator* sim_;
  Channel* channel_;
  std::vector<ClassId> owned_;
  std::vector<char> owned_mask_;  // indexed by ClassId
  ProcessId process_;             // this domain's clocked kernel process
  runtime::Executor exec_;
  std::uint64_t cycle_ = 0;
  /// Per-class clock divider from the clockDomain mark (index: ClassId).
  std::vector<std::uint64_t> divider_;
  std::vector<HwSignalId> alive_wires_;  // index: ClassId; invalid if foreign
  std::vector<HwSignalId> busy_wires_;
  std::vector<Outbound> outbox_;  ///< frames staged during the current edge
  std::size_t outbox_sent_ = 0;   ///< flushed prefix (windowed mode)
  /// Instances already served this cycle (reused; cleared each edge).
  std::vector<runtime::InstanceHandle> served_;

  // Observability (null members when no registry is attached; the track is
  // shared with this domain's executor, e.g. "executor/hw0").
  obs::Registry* obs_ = nullptr;
  obs::TrackId obs_track_;
  obs::Counter* c_frames_in_ = nullptr;
  obs::Counter* c_frames_out_ = nullptr;

  // Windowed mode state.
  bool windowed_ = false;
  std::vector<Frame> inbox_;  ///< due frames for the current window, in order
  /// Kernel writes staged per window edge; [k] holds edge k's writes.
  std::vector<std::vector<KernelWrite>> edge_writes_;
  std::size_t window_edge_ = 0;  ///< edge being executed by run_window
  std::size_t replay_edge_ = 0;  ///< edge being replayed by on_clock
};

}  // namespace xtsoc::cosim
