// HwDomain: the executable hardware mapping of ONE clock domain.
//
// Every hardware-marked class becomes, conceptually, a bank of FSMs; here
// the bank is realized as a domain-scoped Executor driven by a clocked
// process of the hwsim kernel. With the legacy bus there is exactly one
// HwDomain owning every hardware class; with the mesh fabric there is one
// per occupied tile, each behind its own NIC. The timing contract of the
// mapping:
//
//   * one signal consumed per instance per clock cycle (FSMs are parallel
//     in space, serial in their own time),
//   * the `clockDomain` mark is a clock divider: a class in domain d (d>=2)
//     consumes signals only every d-th master-clock cycle (0/1 = full
//     rate) — slow peripherals cost cycles, exactly as on a real SoC,
//   * `delay N` = N master-clock cycles,
//   * signals to classes owned by any other executor leave through this
//     domain's Channel with the synthesized wire format.
//
// This is the executable twin of the VHDL text emitted by
// codegen::generate_vhdl — same partition, same interface, same queueing.
#pragma once

#include <set>
#include <vector>

#include "xtsoc/cosim/channel.hpp"
#include "xtsoc/hwsim/kernel.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"
#include "xtsoc/runtime/executor.hpp"

namespace xtsoc::cosim {

class HwDomain {
public:
  /// Registers a clocked process on `clk`. `sim` and `channel` must
  /// outlive this object. `owned` lists the hardware classes this domain
  /// executes: the full hardware partition in bus mode, one tile's worth
  /// in fabric mode.
  HwDomain(const mapping::MappedSystem& sys, hwsim::Simulator& sim,
           HwSignalId clk, Channel& channel, std::vector<ClassId> owned,
           runtime::ExecutorConfig config);

  runtime::Executor& executor() { return exec_; }
  const runtime::Executor& executor() const { return exec_; }

  const std::vector<ClassId>& owned() const { return owned_; }
  bool owns(ClassId cls) const {
    return cls.value() < owned_mask_.size() && owned_mask_[cls.value()] != 0;
  }

  /// Rising edges seen so far (= hardware cycles executed).
  std::uint64_t cycles() const { return cycle_; }
  /// Signals dispatched in hardware.
  std::uint64_t dispatches() const { return exec_.dispatch_count(); }

  bool drained() const { return exec_.drained(); }

  /// Observability wires created in the hwsim netlist, one pair per owned
  /// hardware class: `hw.<class>.alive` (live instance count, 16 bits) and
  /// `hw.<class>.busy` (1 while the class dispatched this cycle). They make
  /// fabric activity visible to the VCD writer like any RTL signal.
  HwSignalId alive_wire(ClassId cls) const;
  HwSignalId busy_wire(ClassId cls) const;

private:
  void on_clock();

  const mapping::MappedSystem* sys_;
  hwsim::Simulator* sim_;
  Channel* channel_;
  std::vector<ClassId> owned_;
  std::vector<char> owned_mask_;  // indexed by ClassId
  runtime::Executor exec_;
  std::uint64_t cycle_ = 0;
  /// Per-class clock divider from the clockDomain mark (index: ClassId).
  std::vector<std::uint64_t> divider_;
  std::vector<HwSignalId> alive_wires_;  // index: ClassId; invalid if foreign
  std::vector<HwSignalId> busy_wires_;
};

}  // namespace xtsoc::cosim
