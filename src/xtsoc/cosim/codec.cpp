#include "xtsoc/cosim/codec.hpp"

namespace xtsoc::cosim {

Frame encode_message(const mapping::InterfaceSpec& spec,
                     const runtime::EventMessage& m) {
  const mapping::MessageLayout* layout = spec.find(m.target.cls, m.event);
  if (layout == nullptr) {
    throw InterfaceMismatch(
        "signal has no synthesized boundary message (class#" +
        std::to_string(m.target.cls.value()) + ", event#" +
        std::to_string(m.event.value()) +
        ") — the interface is stale relative to the model");
  }
  Frame f;
  f.opcode = layout->opcode;
  f.payload = mapping::encode_payload(*layout, m.target, m.args);
  return f;
}

runtime::EventMessage decode_frame(const mapping::InterfaceSpec& spec,
                                   const Frame& f) {
  const mapping::MessageLayout* layout = spec.find_opcode(f.opcode);
  if (layout == nullptr) {
    throw InterfaceMismatch("received frame with unknown opcode " +
                            std::to_string(f.opcode));
  }
  mapping::DecodedPayload p = mapping::decode_payload(*layout, f.payload);
  runtime::EventMessage m;
  m.target = p.target;
  m.event = layout->event;
  m.args = std::move(p.args);
  m.sender = runtime::InstanceHandle::null();
  return m;
}

}  // namespace xtsoc::cosim
