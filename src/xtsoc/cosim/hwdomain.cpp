#include "xtsoc/cosim/hwdomain.hpp"

#include "xtsoc/cosim/codec.hpp"

namespace xtsoc::cosim {

HwDomain::HwDomain(const mapping::MappedSystem& sys, hwsim::Simulator& sim,
                   HwSignalId clk, Channel& channel,
                   std::vector<ClassId> owned, runtime::ExecutorConfig config)
    : sys_(&sys), sim_(&sim), channel_(&channel), owned_(std::move(owned)),
      owned_mask_(sys.domain().class_count(), 0),
      exec_(
          sys.compiled(), config,
          [this](ClassId cls) { return owns(cls); },
          [this](runtime::EventMessage m) {
            // Signal leaving this domain for a foreign executor: serialize
            // per the synthesized interface and stage it in the outbox (the
            // channel is shared; sends happen at flush_outbox). Any
            // generate-statement delay rides along as extra transit delay.
            std::uint64_t extra = m.deliver_at - exec_.now();
            ClassId dst = m.target.cls;
            outbox_.push_back(
                {dst, encode_message(sys_->interface(), m), cycle_, extra});
            OBS_COUNT(c_frames_out_);
            exec_.recycle_args(std::move(m.args));
          }) {
  if (config.obs != nullptr) {
    obs_ = config.obs;
    obs_track_ = config.obs_track.is_valid() ? config.obs_track
                                             : obs_->track("executor");
    const std::string& tn = obs_->track_name(obs_track_);
    c_frames_in_ = obs_->counter(tn + ".frames_in");
    c_frames_out_ = obs_->counter(tn + ".frames_out");
  }
  for (ClassId cls : owned_) owned_mask_[cls.value()] = 1;
  divider_.resize(sys.domain().class_count(), 1);
  alive_wires_.resize(sys.domain().class_count(), HwSignalId::invalid());
  busy_wires_.resize(sys.domain().class_count(), HwSignalId::invalid());
  for (const auto& cm : sys.class_mappings()) {
    divider_[cm.cls.value()] =
        cm.clock_domain >= 2 ? static_cast<std::uint64_t>(cm.clock_domain) : 1;
    if (cm.target == marks::Target::kHardware && owns(cm.cls)) {
      const std::string& name = sys.domain().cls(cm.cls).name;
      alive_wires_[cm.cls.value()] = sim.wire(16, 0, "hw." + name + ".alive");
      busy_wires_[cm.cls.value()] = sim.wire(1, 0, "hw." + name + ".busy");
    }
  }
  process_ = sim.on_posedge(clk, [this](hwsim::Simulator&) { on_clock(); });
}

std::vector<HwSignalId> HwDomain::kernel_wires() const {
  std::vector<HwSignalId> out;
  out.reserve(owned_.size() * 2);
  for (ClassId cls : owned_) {
    if (alive_wires_[cls.value()].is_valid()) {
      out.push_back(alive_wires_[cls.value()]);
      out.push_back(busy_wires_[cls.value()]);
    }
  }
  return out;
}

void HwDomain::pending_send_cycles(
    std::uint32_t tag,
    std::vector<std::pair<std::uint64_t, std::uint32_t>>& out) const {
  // Outbox entries are staged in cycle order, so distinct cycles appear as
  // runs — comparing against the entry just appended dedups them.
  for (std::size_t i = outbox_sent_; i < outbox_.size(); ++i) {
    if (out.empty() || out.back().first != outbox_[i].cycle ||
        out.back().second != tag) {
      out.push_back({outbox_[i].cycle, tag});
    }
  }
}

HwSignalId HwDomain::alive_wire(ClassId cls) const {
  return alive_wires_.at(cls.value());
}

HwSignalId HwDomain::busy_wire(ClassId cls) const {
  return busy_wires_.at(cls.value());
}

void HwDomain::on_clock() {
  if (windowed_) {
    // Boundary replay: the per-cycle work already ran in run_window(); this
    // edge's kernel writes were staged then. Re-issuing them through the
    // real nba_write path, in staging order, makes the kernel see exactly
    // the writes — and therefore produce exactly the deltas, commits and
    // waveform bytes — that lockstep execution would have.
    const std::vector<KernelWrite>& writes = edge_writes_[replay_edge_++];
    for (const KernelWrite& kw : writes) sim_->nba_write(kw.w, kw.value);
    return;
  }
  step_cycle();
}

void HwDomain::step_cycle() {
  ++cycle_;
  exec_.advance_time(1);

  // Latch frames that completed their interconnect flight this cycle. In
  // lockstep the shared channel is asked directly; in a window the due
  // frames sit pre-sorted in the inbox (fill_inbox pulled everything due
  // through the window's end — lookahead guarantees completeness).
  if (windowed_) {
    // Frames carry heterogeneous delays, so dues are not monotone in inbox
    // order: scan everything, deliver what is due, keep the rest in order —
    // the same contract the channels implement, so each frame is delivered
    // at exactly the cycle (and in exactly the order) lockstep would have.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < inbox_.size(); ++i) {
      if (inbox_[i].due_cycle <= cycle_) {
        runtime::EventMessage m = decode_frame(sys_->interface(), inbox_[i]);
        m.deliver_at = exec_.now();
        exec_.deliver_remote(std::move(m));
        OBS_COUNT(c_frames_in_);
      } else {
        if (kept != i) inbox_[kept] = std::move(inbox_[i]);
        ++kept;
      }
    }
    inbox_.resize(kept);
  } else {
    for (Frame& f : channel_->receive(cycle_)) {
      runtime::EventMessage m = decode_frame(sys_->interface(), f);
      m.deliver_at = exec_.now();
      exec_.deliver_remote(std::move(m));
      OBS_COUNT(c_frames_in_);
    }
  }

  // One signal per instance per clock: parallel FSMs, each consuming at
  // most one event — and only on its clock domain's active edges (the
  // clockDomain mark is a divider of the master clock). Queue order still
  // decides which event an instance sees. step_if dispatches the first
  // message the predicate accepts, so the predicate can record the instance
  // it is about to serve. served_ is a reused vector (few instances per
  // cycle) — no per-cycle set allocation on the hot path.
  served_.clear();
  while (true) {
    runtime::InstanceHandle chosen;
    bool dispatched = exec_.step_if(
        [this, &chosen](const runtime::EventMessage& m) {
          if (cycle_ % divider_[m.target.cls.value()] != 0) return false;
          for (const runtime::InstanceHandle& h : served_) {
            if (h == m.target) return false;
          }
          chosen = m.target;
          return true;
        });
    if (!dispatched) break;
    served_.push_back(chosen);
  }

  // Update the observability wires (visible to VCD like any RTL signal).
  // In a window the writes are staged for the boundary replay instead of
  // hitting the kernel now — the kernel is busy replaying an earlier window
  // (or idle), not this cycle.
  for (ClassId cls : owned_) {
    std::uint64_t alive = exec_.database().live_count(cls);
    bool busy = false;
    for (const runtime::InstanceHandle& h : served_) {
      if (h.cls == cls) busy = true;
    }
    if (windowed_) {
      std::vector<KernelWrite>& writes = edge_writes_[window_edge_];
      writes.push_back({alive_wires_[cls.value()], alive});
      writes.push_back({busy_wires_[cls.value()], busy ? 1u : 0u});
    } else {
      sim_->nba_write(alive_wires_[cls.value()], alive);
      sim_->nba_write(busy_wires_[cls.value()], busy ? 1 : 0);
    }
  }
}

void HwDomain::fill_inbox(std::uint64_t through_cycle) {
  for (Frame& f : channel_->receive(through_cycle)) {
    inbox_.push_back(std::move(f));
  }
}

void HwDomain::run_window(std::uint64_t n) {
  // One span per window on this domain's track: phase A's parallelism is
  // visible as overlapping run_window spans across the executor lanes.
  OBS_SPAN_AT(obs_, obs_track_, "run_window", cycle_ + 1);
  if (edge_writes_.size() < n) edge_writes_.resize(n);
  for (std::uint64_t k = 0; k < n; ++k) {
    window_edge_ = k;
    edge_writes_[k].clear();
    step_cycle();
  }
}

void HwDomain::flush_outbox() {
  for (Outbound& o : outbox_) {
    channel_->send(o.dst, std::move(o.frame), o.cycle, o.extra);
  }
  outbox_.clear();
  outbox_sent_ = 0;
}

void HwDomain::flush_outbox_through(std::uint64_t cycle) {
  while (outbox_sent_ < outbox_.size() && outbox_[outbox_sent_].cycle <= cycle) {
    Outbound& o = outbox_[outbox_sent_];
    channel_->send(o.dst, std::move(o.frame), o.cycle, o.extra);
    ++outbox_sent_;
  }
  if (outbox_sent_ == outbox_.size()) {
    outbox_.clear();
    outbox_sent_ = 0;
  }
}

void HwDomain::save_state(snap::Writer& w) const {
  exec_.save_state(w);
  w.u64(cycle_);
  w.u64(outbox_.size());
  for (const Outbound& o : outbox_) {
    w.u32(o.dst.value());
    save_frame(w, o.frame);
    w.u64(o.cycle);
    w.u64(o.extra);
  }
  w.u64(outbox_sent_);
  w.u64(inbox_.size());
  for (const Frame& f : inbox_) save_frame(w, f);
}

void HwDomain::load_state(snap::Reader& r) {
  exec_.load_state(r);
  cycle_ = r.u64();
  outbox_.clear();
  std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    Outbound o;
    o.dst = ClassId(r.u32());
    o.frame = load_frame(r);
    o.cycle = r.u64();
    o.extra = r.u64();
    outbox_.push_back(std::move(o));
  }
  outbox_sent_ = static_cast<std::size_t>(r.u64());
  inbox_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) inbox_.push_back(load_frame(r));
  // Per-edge scratch: rebuilt by the next run call.
  served_.clear();
  edge_writes_.clear();
  window_edge_ = 0;
  replay_edge_ = 0;
}

}  // namespace xtsoc::cosim
