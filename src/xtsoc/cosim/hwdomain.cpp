#include "xtsoc/cosim/hwdomain.hpp"

#include "xtsoc/cosim/codec.hpp"

namespace xtsoc::cosim {

HwDomain::HwDomain(const mapping::MappedSystem& sys, hwsim::Simulator& sim,
                   HwSignalId clk, Channel& channel,
                   std::vector<ClassId> owned, runtime::ExecutorConfig config)
    : sys_(&sys), sim_(&sim), channel_(&channel), owned_(std::move(owned)),
      owned_mask_(sys.domain().class_count(), 0),
      exec_(
          sys.compiled(), config,
          [this](ClassId cls) { return owns(cls); },
          [this](runtime::EventMessage m) {
            // Signal leaving this domain for a foreign executor: serialize
            // per the synthesized interface and stage it in the outbox (the
            // channel is shared; sends happen at flush_outbox). Any
            // generate-statement delay rides along as extra transit delay.
            std::uint64_t extra = m.deliver_at - exec_.now();
            ClassId dst = m.target.cls;
            outbox_.push_back(
                {dst, encode_message(sys_->interface(), m), cycle_, extra});
            exec_.recycle_args(std::move(m.args));
          }) {
  for (ClassId cls : owned_) owned_mask_[cls.value()] = 1;
  divider_.resize(sys.domain().class_count(), 1);
  alive_wires_.resize(sys.domain().class_count(), HwSignalId::invalid());
  busy_wires_.resize(sys.domain().class_count(), HwSignalId::invalid());
  for (const auto& cm : sys.class_mappings()) {
    divider_[cm.cls.value()] =
        cm.clock_domain >= 2 ? static_cast<std::uint64_t>(cm.clock_domain) : 1;
    if (cm.target == marks::Target::kHardware && owns(cm.cls)) {
      const std::string& name = sys.domain().cls(cm.cls).name;
      alive_wires_[cm.cls.value()] = sim.wire(16, 0, "hw." + name + ".alive");
      busy_wires_[cm.cls.value()] = sim.wire(1, 0, "hw." + name + ".busy");
    }
  }
  sim.on_posedge(clk, [this](hwsim::Simulator&) { on_clock(); });
}

HwSignalId HwDomain::alive_wire(ClassId cls) const {
  return alive_wires_.at(cls.value());
}

HwSignalId HwDomain::busy_wire(ClassId cls) const {
  return busy_wires_.at(cls.value());
}

void HwDomain::on_clock() {
  ++cycle_;
  exec_.advance_time(1);

  // Latch frames that completed their interconnect flight this cycle.
  for (Frame& f : channel_->receive(cycle_)) {
    runtime::EventMessage m = decode_frame(sys_->interface(), f);
    m.deliver_at = exec_.now();
    exec_.deliver_remote(std::move(m));
  }

  // One signal per instance per clock: parallel FSMs, each consuming at
  // most one event — and only on its clock domain's active edges (the
  // clockDomain mark is a divider of the master clock). Queue order still
  // decides which event an instance sees. step_if dispatches the first
  // message the predicate accepts, so the predicate can record the instance
  // it is about to serve. served_ is a reused vector (few instances per
  // cycle) — no per-cycle set allocation on the hot path.
  served_.clear();
  while (true) {
    runtime::InstanceHandle chosen;
    bool dispatched = exec_.step_if(
        [this, &chosen](const runtime::EventMessage& m) {
          if (cycle_ % divider_[m.target.cls.value()] != 0) return false;
          for (const runtime::InstanceHandle& h : served_) {
            if (h == m.target) return false;
          }
          chosen = m.target;
          return true;
        });
    if (!dispatched) break;
    served_.push_back(chosen);
  }

  // Update the observability wires (visible to VCD like any RTL signal).
  for (ClassId cls : owned_) {
    sim_->nba_write(alive_wires_[cls.value()],
                    exec_.database().live_count(cls));
    bool busy = false;
    for (const runtime::InstanceHandle& h : served_) {
      if (h.cls == cls) busy = true;
    }
    sim_->nba_write(busy_wires_[cls.value()], busy ? 1 : 0);
  }
}

void HwDomain::flush_outbox() {
  for (Outbound& o : outbox_) {
    channel_->send(o.dst, std::move(o.frame), o.cycle, o.extra);
  }
  outbox_.clear();
}

}  // namespace xtsoc::cosim
