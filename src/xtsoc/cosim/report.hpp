// The one stats-reporting path of the co-simulation stack.
//
// Three stats structs grew up separately — hwsim::SimStats, cosim::BusStats,
// noc::FabricStats — each with its own printing/JSON habits. The adapters
// below render each of them as an obs::JsonValue, and
// CoSimulation::report() assembles the adapters into one obs::Snapshot:
//
//   {
//     "run":          { cycles, lookahead, window, threads, interconnect },
//     "sim":          to_json(SimStats),
//     "interconnect": to_json(BusStats) | to_json(FabricStats),
//     "domains":      [ { name, dispatches, ops, queue_high_water }, ... ],
//     "counters":     { ... }           // only when a Registry is attached
//   }
//
// Every consumer (xtsocc --obs=snapshot, perf::export_noc_stats_json, the
// tests) reads this document; nothing serializes a stats struct by hand
// anymore.
#pragma once

#include "xtsoc/cosim/bus.hpp"
#include "xtsoc/fault/campaign.hpp"
#include "xtsoc/hwsim/kernel.hpp"
#include "xtsoc/noc/fabric.hpp"
#include "xtsoc/obs/json.hpp"
#include "xtsoc/obs/snapshot.hpp"

namespace xtsoc::cosim {

class CoSimulation;

/// { "delta_cycles": n, "process_activations": n, "wire_commits": n }
obs::JsonValue to_json(const hwsim::SimStats& s);

/// { "kind": "bus", "latency": n, "frames_to_hw": n, ... }
obs::JsonValue to_json(const BusStats& s, int latency_cycles);

/// { "kind": "noc", "mesh": {...}, "routers": [...], "links": [...],
///   "latency": {...} } — the document export_noc_stats_json() ships.
obs::JsonValue to_json(const noc::FabricStats& s);

/// { "flits_dropped": n, "crc_rejects": n, ... } — the NoC half of the
/// snapshot's "faults" section (emitted only when a plan is attached).
obs::JsonValue to_json(const noc::FabricFaultStats& s);

/// { "errors": n, "retries": n, "frames_dropped": n } — the bus half.
obs::JsonValue to_json(const BusFaultStats& s);

/// Summarize one co-simulation run under `plan` as a campaign row:
/// delivered/dropped/retried/injected counts from whichever interconnect
/// the mapping chose, survival = nothing was lost anywhere.
fault::RunOutcome outcome_of(const CoSimulation& cs, const fault::Plan& plan);

}  // namespace xtsoc::cosim
