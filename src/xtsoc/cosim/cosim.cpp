#include "xtsoc/cosim/cosim.hpp"

namespace xtsoc::cosim {

CoSimulation::CoSimulation(const mapping::MappedSystem& sys, CoSimConfig config)
    : sys_(&sys), config_(config) {
  sim_ = std::make_unique<hwsim::Simulator>();
  clk_ = sim_->wire(1, 0, "clk");
  sim_->add_clock(clk_, /*half_period=*/1);

  bus_ = std::make_unique<Bus>(sys.bus_latency());

  runtime::ExecutorConfig ecfg;
  ecfg.policy = config_.policy;
  ecfg.engine = config_.engine;
  ecfg.trace_enabled = config_.trace_enabled;
  ecfg.max_ops_per_action = config_.max_ops_per_action;

  hw_ = std::make_unique<HwDomain>(sys, *sim_, clk_, *bus_, ecfg);
  sw_ = std::make_unique<SwDomain>(sys, *bus_, scheduler_, ecfg);

  // Connect-time interface handshake. Each endpoint presents the digest of
  // the interface it was generated against.
  std::string hw_digest = sys.interface().digest(sys.domain());
  std::string sw_digest = config_.forged_sw_digest.empty()
                              ? hw_digest
                              : config_.forged_sw_digest;
  bus_->connect(hw_digest, sw_digest);
}

runtime::Executor& CoSimulation::executor_of(ClassId cls) {
  return sys_->partition().is_hardware(cls) ? hw_->executor() : sw_->executor();
}

runtime::InstanceHandle CoSimulation::create(std::string_view class_name) {
  ClassId cls = sys_->domain().find_class_id(class_name);
  if (!cls.is_valid()) {
    throw runtime::ModelError("unknown class '" + std::string(class_name) + "'");
  }
  runtime::Executor& owner = executor_of(cls);
  // Hardware instance pools are finite: the maxInstances mark is the FSM
  // bank capacity the VHDL is generated with, so the executable mapping
  // enforces it too.
  if (sys_->partition().is_hardware(cls)) {
    const int cap = sys_->mapping_of(cls).max_instances;
    if (owner.database().live_count(cls) >= static_cast<std::size_t>(cap)) {
      throw runtime::ModelError(
          "hardware pool of '" + std::string(class_name) + "' is full (" +
          std::to_string(cap) + " instances; raise the maxInstances mark)");
    }
  }
  return owner.create(cls);
}

runtime::InstanceHandle CoSimulation::create_with(
    std::string_view class_name,
    const std::vector<std::pair<std::string, runtime::Value>>& attrs) {
  // Route through create() so the hardware pool-capacity check applies.
  runtime::InstanceHandle h = create(class_name);
  runtime::Database& db = executor_of(h.cls).database();
  const xtuml::ClassDef& def = sys_->domain().cls(h.cls);
  for (const auto& [name, value] : attrs) {
    const xtuml::AttributeDef* a = def.find_attribute(name);
    if (a == nullptr) {
      throw runtime::ModelError("create_with: class '" + def.name +
                                "' has no attribute '" + name + "'");
    }
    db.set_attr(h, a->id, value);
  }
  return h;
}

void CoSimulation::inject(const runtime::InstanceHandle& target,
                          std::string_view event_name,
                          std::vector<runtime::Value> args,
                          std::uint64_t delay) {
  executor_of(target.cls).inject(target, event_name, std::move(args), delay);
}

void CoSimulation::one_cycle() {
  ++cycle_;
  // Hardware first: the clocked HwDomain process fires on the rising edge.
  sim_->run_cycles(clk_, 1);
  // Then software gets its per-cycle budget: at most `sw_steps_per_cycle`
  // dispatches AND at most `sw_ops_per_cycle` action ops. A dispatch whose
  // action overruns the op budget still completes (run-to-completion is
  // never violated); it just exhausts the cycle.
  sw_->begin_cycle(cycle_);
  const std::uint64_t ops_start = sw_->executor().ops_executed();
  for (int i = 0; i < config_.sw_steps_per_cycle; ++i) {
    if (sw_->executor().ops_executed() - ops_start >= config_.sw_ops_per_cycle) {
      break;
    }
    if (!scheduler_.run_one()) break;
  }
  if (cycle_hook_) cycle_hook_(cycle_);
}

bool CoSimulation::quiescent() const {
  return hw_->drained() && sw_->drained() && bus_->empty();
}

std::uint64_t CoSimulation::run(std::uint64_t max_cycles) {
  std::uint64_t n = 0;
  while (n < max_cycles && !quiescent()) {
    one_cycle();
    ++n;
  }
  return n;
}

void CoSimulation::run_cycles(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) one_cycle();
}

}  // namespace xtsoc::cosim
