#include "xtsoc/cosim/cosim.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "xtsoc/hwsim/pool.hpp"
#include "xtsoc/mem/mem.hpp"

namespace xtsoc::cosim {

CoSimulation::CoSimulation(const mapping::MappedSystem& sys, CoSimConfig config)
    : sys_(&sys), config_(config) {
  // Derive the execution window from the static interconnect lookahead.
  // W > 1 moves the parallelism up a level: domains run whole windows
  // concurrently, so the kernel itself stays serial and replays at the
  // boundary. W == 1 is the per-cycle lockstep master with the kernel's
  // own delta-level parallelism (the only level that exists at L == 1).
  lookahead_ = sys.lookahead();
  window_ = config_.window == 0 ? lookahead_
                                : std::min(config_.window, lookahead_);
  if (window_ < 1) window_ = 1;
  const bool windowed = window_ > 1;

  // Claim the master's timeline lane first so the exported trace reads
  // top-to-bottom: cosim, kernel, then the domains and the mesh.
  obs_ = config_.obs;
  if (obs_ != nullptr) obs_track_ = obs_->track("cosim");

  sim_ = std::make_unique<hwsim::Simulator>(
      hwsim::SimConfig{windowed ? 1 : config_.threads, config_.obs});
  clk_ = sim_->wire(1, 0, "clk");
  sim_->add_clock(clk_, /*half_period=*/1);

  runtime::ExecutorConfig ecfg;
  ecfg.policy = config_.policy;
  ecfg.engine = config_.engine;
  ecfg.compiled = config_.compiled;
  ecfg.trace_enabled = config_.trace_enabled;
  ecfg.max_ops_per_action = config_.max_ops_per_action;
  ecfg.obs = config_.obs;

  const mapping::Partition& part = sys.partition();
  hw_domain_of_.resize(sys.domain().class_count(), nullptr);

  // Connect-time interface handshake. Each endpoint presents the digest of
  // the interface it was generated against; a mismatch aborts before any
  // traffic can be mis-decoded.
  std::string hw_digest = sys.interface().digest(sys.domain());
  std::string sw_digest = config_.forged_sw_digest.empty()
                              ? hw_digest
                              : config_.forged_sw_digest;

  if (part.mesh().enabled) {
    // Mesh mode: mark-driven tile placement, one hardware clock domain per
    // occupied tile, software on its own tile, all behind NICs.
    const mapping::MeshSpec& mesh = part.mesh();
    noc::FabricConfig fcfg;
    fcfg.width = mesh.width;
    fcfg.height = mesh.height;
    fcfg.topology = mesh.topology;
    fcfg.routing = mesh.routing;
    fcfg.link_latency = mesh.link_latency;
    fcfg.flit_payload_bytes = mesh.flit_bytes;
    fcfg.fifo_depth = mesh.fifo_depth;
    fcfg.obs = config_.obs;
    fcfg.fault = config_.fault;
    fabric_ = std::make_unique<noc::Fabric>(fcfg);

    if (hw_digest != sw_digest) {
      throw InterfaceMismatch(
          "interface digest mismatch at fabric connect: hardware side " +
          hw_digest + " vs software side " + sw_digest);
    }

    for (int tile : part.hardware_tiles()) {
      auto chan = std::make_unique<FabricChannel>(*fabric_, sys, tile);
      std::vector<ClassId> owned;
      for (ClassId cls : part.hardware()) {
        if (part.tile_of(cls) == tile) owned.push_back(cls);
      }
      if (obs_ != nullptr) {
        ecfg.obs_track = obs_->track(
            "executor/hw" + std::to_string(hw_domains_.size()));
      }
      hw_domains_.push_back(std::make_unique<HwDomain>(
          sys, *sim_, clk_, *chan, std::move(owned), ecfg));
      for (ClassId cls : hw_domains_.back()->owned()) {
        hw_domain_of_[cls.value()] = hw_domains_.back().get();
      }
      channels_.push_back(std::move(chan));
    }
    auto sw_chan =
        std::make_unique<FabricChannel>(*fabric_, sys, mesh.sw_tile());
    if (obs_ != nullptr) ecfg.obs_track = obs_->track("executor/sw");
    sw_ = std::make_unique<SwDomain>(sys, *sw_chan, scheduler_, ecfg);
    channels_.push_back(std::move(sw_chan));

    if (part.mem().enabled) {
      // The `dram.tile` mark switches the memory hierarchy on. Domain tags
      // mirror the serial flush order (hardware tiles ascending, software
      // last) so the timing replay consumes accesses in the exact order the
      // serial master issues them.
      const mapping::MemSpec& ms = part.mem();
      mem::MemConfig mcfg;
      mcfg.dram_tile = ms.dram_tile;
      mcfg.sets = ms.sets;
      mcfg.ways = ms.ways;
      mcfg.line_bytes = ms.line_bytes;
      mcfg.hit_latency = ms.hit_latency;
      mcfg.t_rcd = ms.t_rcd;
      mcfg.t_cas = ms.t_cas;
      mcfg.t_rp = ms.t_rp;
      mcfg.flit_bytes = mesh.flit_bytes;
      mcfg.lookahead = static_cast<std::uint64_t>(lookahead_);
      mem_ = std::make_unique<mem::System>(mcfg, fabric_.get());
      const std::vector<int> hw_tiles = part.hardware_tiles();
      for (std::size_t d = 0; d < hw_domains_.size(); ++d) {
        runtime::Executor& exec = hw_domains_[d]->executor();
        const int tag = mem_->add_domain(hw_tiles[d], &exec);
        exec.set_memory_port(mem_->port(tag));
      }
      runtime::Executor& sw_exec = sw_->executor();
      const int sw_mem_tag = mem_->add_domain(mesh.sw_tile(), &sw_exec);
      sw_exec.set_memory_port(mem_->port(sw_mem_tag));
    }
  } else {
    // Bus mode: the 1x2 degenerate topology, byte-identical to the
    // pre-mesh behavior.
    bus_ = std::make_unique<Bus>(sys.bus_latency());
    bus_->set_fault(config_.fault);
    auto hw_chan =
        std::make_unique<BusEndpoint>(*bus_, BusEndpoint::Side::kHardware);
    auto sw_chan =
        std::make_unique<BusEndpoint>(*bus_, BusEndpoint::Side::kSoftware);

    std::vector<ClassId> owned(part.hardware().begin(), part.hardware().end());
    if (obs_ != nullptr) ecfg.obs_track = obs_->track("executor/hw0");
    hw_domains_.push_back(std::make_unique<HwDomain>(
        sys, *sim_, clk_, *hw_chan, std::move(owned), ecfg));
    for (ClassId cls : hw_domains_.back()->owned()) {
      hw_domain_of_[cls.value()] = hw_domains_.back().get();
    }
    if (obs_ != nullptr) ecfg.obs_track = obs_->track("executor/sw");
    sw_ = std::make_unique<SwDomain>(sys, *sw_chan, scheduler_, ecfg);
    channels_.push_back(std::move(hw_chan));
    channels_.push_back(std::move(sw_chan));

    bus_->connect(hw_digest, sw_digest);
  }

  if (windowed) {
    for (auto& hw : hw_domains_) hw->set_windowed(true);
    sw_->set_windowed(true);
    // Useful parallelism is bounded by the wider fan-out of the two
    // phases: phase A runs domains + software, phase B runs one replay
    // shard per hardware domain. Spawning more workers than that only
    // buys handshake overhead (a 2x2 mesh at threads=4 measured SLOWER
    // than serial before this cap).
    const int useful = static_cast<int>(hw_domains_.size()) + 1;
    const int workers = std::min(config_.threads, useful);
    if (workers > 1) {
      pool_ = std::make_unique<hwsim::WorkerPool>(workers);
      // Shard the phase-B replay by tile. With a single hardware domain
      // there is nothing to shard — the serial replay is the same work
      // without the pool dispatch.
      if (hw_domains_.size() > 1) {
        std::vector<hwsim::ShardPlan> plans;
        plans.reserve(hw_domains_.size());
        for (auto& hw : hw_domains_) {
          hwsim::ShardPlan plan;
          plan.processes.push_back(hw->process_id());
          plan.wires = hw->kernel_wires();
          plans.push_back(std::move(plan));
        }
        sim_->set_replay_shards(clk_, std::move(plans));
      }
    }
  }
}

CoSimulation::~CoSimulation() = default;

runtime::Executor& CoSimulation::executor_of(ClassId cls) {
  HwDomain* d =
      cls.value() < hw_domain_of_.size() ? hw_domain_of_[cls.value()] : nullptr;
  return d != nullptr ? d->executor() : sw_->executor();
}

const runtime::Executor& CoSimulation::executor_of(ClassId cls) const {
  HwDomain* d =
      cls.value() < hw_domain_of_.size() ? hw_domain_of_[cls.value()] : nullptr;
  return d != nullptr ? d->executor() : sw_->executor();
}

runtime::InstanceHandle CoSimulation::create(std::string_view class_name) {
  ClassId cls = sys_->domain().find_class_id(class_name);
  if (!cls.is_valid()) {
    throw runtime::ModelError("unknown class '" + std::string(class_name) + "'");
  }
  runtime::Executor& owner = executor_of(cls);
  // Hardware instance pools are finite: the maxInstances mark is the FSM
  // bank capacity the VHDL is generated with, so the executable mapping
  // enforces it too.
  if (sys_->partition().is_hardware(cls)) {
    const int cap = sys_->mapping_of(cls).max_instances;
    if (owner.database().live_count(cls) >= static_cast<std::size_t>(cap)) {
      throw runtime::ModelError(
          "hardware pool of '" + std::string(class_name) + "' is full (" +
          std::to_string(cap) + " instances; raise the maxInstances mark)");
    }
  }
  return owner.create(cls);
}

runtime::InstanceHandle CoSimulation::create_with(
    std::string_view class_name,
    const std::vector<std::pair<std::string, runtime::Value>>& attrs) {
  // Route through create() so the hardware pool-capacity check applies.
  runtime::InstanceHandle h = create(class_name);
  runtime::Database& db = executor_of(h.cls).database();
  const xtuml::ClassDef& def = sys_->domain().cls(h.cls);
  for (const auto& [name, value] : attrs) {
    const xtuml::AttributeDef* a = def.find_attribute(name);
    if (a == nullptr) {
      throw runtime::ModelError("create_with: class '" + def.name +
                                "' has no attribute '" + name + "'");
    }
    db.set_attr(h, a->id, value);
  }
  return h;
}

void CoSimulation::inject(const runtime::InstanceHandle& target,
                          std::string_view event_name,
                          std::vector<runtime::Value> args,
                          std::uint64_t delay) {
  executor_of(target.cls).inject(target, event_name, std::move(args), delay);
}

void CoSimulation::mem_tick(std::uint64_t cycle) {
  // All channels are FabricChannels here: mem_ only exists in fabric mode.
  std::vector<mem::System::Incoming> delivered;
  for (auto& ch : channels_) {
    auto* fc = static_cast<FabricChannel*>(ch.get());
    for (Frame& f : fc->take_coherence(cycle)) {
      delivered.push_back({fc->tile(), f.opcode, std::move(f.payload)});
    }
  }
  mem_->tick(cycle, delivered);
}

void CoSimulation::one_cycle() {
  ++cycle_;
  OBS_SPAN_AT(obs_, obs_track_, "cycle", cycle_);
  // Serial point: publish buffered stores whose visibility horizon reaches
  // into the cycle about to run. Stores issued during this cycle become
  // visible at cycle_ + L > cycle_, so nothing published here can be
  // affected by what the cycle does.
  if (mem_) mem_->append_visible(cycle_);
  // Fabric first: flits advance one hop, frames completing reassembly this
  // cycle become visible to the NICs the domains poll below.
  if (fabric_) fabric_->tick(cycle_);
  // Hardware next: each clocked HwDomain process fires on the rising edge.
  // Domains defer their outbound frames while the edge evaluates (they may
  // run concurrently; the interconnect is shared), then the frames enter
  // the interconnect here, serially, in domain order — the same total order
  // the serial kernel produced when domains sent inline.
  sim_->run_cycles(clk_, 1);
  for (auto& hw : hw_domains_) hw->flush_outbox();
  // Then software gets its per-cycle budget: at most `sw_steps_per_cycle`
  // dispatches AND at most `sw_ops_per_cycle` action ops. A dispatch whose
  // action overruns the op budget still completes (run-to-completion is
  // never violated); it just exhausts the cycle.
  sw_->begin_cycle(cycle_);
  const std::uint64_t ops_start = sw_->executor().ops_executed();
  for (int i = 0; i < config_.sw_steps_per_cycle; ++i) {
    if (sw_->executor().ops_executed() - ops_start >= config_.sw_ops_per_cycle) {
      break;
    }
    if (!scheduler_.run_one()) break;
  }
  // Memory last: the timing layer consumes every access the domains
  // recorded this cycle and the coherence frames the NICs reassembled.
  if (mem_) mem_tick(cycle_);
  if (cycle_hook_) cycle_hook_(cycle_);
}

void CoSimulation::run_window(std::uint64_t w) {
  const std::uint64_t base = cycle_;
  const std::uint64_t end = base + w;
  OBS_SPAN_AT(obs_, obs_track_, "window", base + 1);
  auto stamp = std::chrono::steady_clock::now();
  auto lap = [&stamp] {
    const auto prev = stamp;
    stamp = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stamp - prev).count();
  };

  // Window boundary, serial: every domain pulls the frames due inside the
  // coming window into its private inbox. Complete, because a frame due at
  // some cycle d <= end was sent at d - L <= base at the latest (lookahead)
  // — i.e. before this boundary — so it is already in the interconnect and
  // receive(end) sees it. Frames due beyond `end` stay queued for a later
  // boundary.
  {
    OBS_SPAN(obs_, obs_track_, "fill_inbox");
    for (auto& hw : hw_domains_) hw->fill_inbox(end);
    sw_->fill_inbox(end);
  }
  // Same completeness argument for the store log: a store issued inside
  // this window (cycle > base) becomes visible at cycle + L >= base + L >=
  // end, so publishing up to `end` here covers every read phase A can make
  // — and phase A then only reads the log, never grows it.
  if (mem_) mem_->append_visible(end);
  phase_seconds_.boundary += lap();

  // Phase A: run each domain w cycles ahead, concurrently. A job touches
  // only domain-local state — executor, inbox, outbox, staged kernel
  // writes — never the kernel, the interconnect, or another domain. The
  // pool's run() provides the happens-before edges on both sides.
  obs::ScopedSpan phase_a_span(obs_, obs_track_, "phaseA", base + 1);
  const std::size_t jobs = hw_domains_.size() + 1;
  auto run_domain = [&](std::size_t i) {
    if (i < hw_domains_.size()) {
      hw_domains_[i]->run_window(w);
    } else {
      for (std::uint64_t k = 0; k < w; ++k) {
        sw_->run_cycle(base + 1 + k, config_.sw_steps_per_cycle,
                       config_.sw_ops_per_cycle);
      }
    }
  };
  if (pool_) {
    std::vector<std::exception_ptr> errors(jobs);
    std::atomic<std::size_t> cursor{0};
    pool_->run([&] {
      for (;;) {
        std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs) break;
        try {
          run_domain(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
    // Deterministic fault report: the lowest-index domain's error, like the
    // serial master would have hit first.
    for (std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  } else {
    for (std::size_t i = 0; i < jobs; ++i) run_domain(i);
  }
  phase_a_span.finish();
  phase_seconds_.phase_a += lap();
  OBS_SPAN_AT(obs_, obs_track_, "phaseB", base + 1);

  // Phase B: the kernel replays the w edges — sharded by tile on the pool
  // when the partition allows it, serially otherwise; byte-identical
  // either way. Around each edge the master performs the lockstep
  // interleaving: fabric tick before, outbox flushes (domain order, then
  // software) and the cycle hook after.
  for (auto& hw : hw_domains_) hw->begin_replay();

  // Batch the boundary exchanges: instead of asking every domain at every
  // edge whether it has frames to send (O(domains) scans per cycle, and
  // almost all come back empty), merge the cycles that actually have
  // staged sends into one schedule. Sorting the (cycle, tag) pairs keeps
  // ties in ascending tag order = hardware domains in order, software
  // last — exactly the serial flush order, so the interconnect sees the
  // identical injection sequence.
  flush_sched_.clear();
  for (std::size_t d = 0; d < hw_domains_.size(); ++d) {
    hw_domains_[d]->pending_send_cycles(static_cast<std::uint32_t>(d),
                                        flush_sched_);
  }
  const std::uint32_t sw_tag = static_cast<std::uint32_t>(hw_domains_.size());
  sw_->pending_send_cycles(sw_tag, flush_sched_);
  std::sort(flush_sched_.begin(), flush_sched_.end());
  std::size_t flush_pos = 0;

  auto before_edge = [this](std::uint64_t) {
    ++cycle_;
    if (fabric_) fabric_->tick(cycle_);
  };
  auto after_edge = [this, sw_tag, &flush_pos](std::uint64_t) {
    while (flush_pos < flush_sched_.size() &&
           flush_sched_[flush_pos].first <= cycle_) {
      const std::uint32_t tag = flush_sched_[flush_pos].second;
      ++flush_pos;
      if (tag < sw_tag) {
        hw_domains_[tag]->flush_outbox_through(cycle_);
      } else {
        sw_->flush_outbox_through(cycle_);
      }
    }
    if (mem_) mem_tick(cycle_);
    if (cycle_hook_) cycle_hook_(cycle_);
  };
  if (pool_ && sim_->has_replay_shards()) {
    sim_->run_cycles_sharded(clk_, w, *pool_, before_edge, after_edge);
  } else {
    sim_->run_cycles(clk_, w, before_edge, after_edge);
  }
  phase_seconds_.phase_b += lap();
}

bool CoSimulation::quiescent() const {
  for (const auto& hw : hw_domains_) {
    if (!hw->drained()) return false;
  }
  if (!sw_->drained()) return false;
  for (const auto& ch : channels_) {
    if (!ch->idle()) return false;
  }
  return bus_ ? bus_->empty() : fabric_->idle();
}

std::uint64_t CoSimulation::run(std::uint64_t max_cycles) {
  std::uint64_t n = 0;
  if (window_ > 1) {
    while (n < max_cycles && !quiescent()) {
      const std::uint64_t w =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(window_),
                                  max_cycles - n);
      run_window(w);
      n += w;
    }
    return n;
  }
  while (n < max_cycles && !quiescent()) {
    one_cycle();
    ++n;
  }
  return n;
}

void CoSimulation::run_cycles(std::uint64_t cycles) {
  if (window_ > 1) {
    std::uint64_t done = 0;
    while (done < cycles) {
      const std::uint64_t w = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(window_), cycles - done);
      run_window(w);
      done += w;
    }
    return;
  }
  for (std::uint64_t i = 0; i < cycles; ++i) one_cycle();
}

void CoSimulation::save_state(snap::Writer& w) const {
  // The interconnect mode is structural, but one byte buys an immediate
  // diagnostic when a bus snapshot meets a fabric elaboration.
  w.u8(bus_ ? 0 : 1);
  sim_->save_state(w);
  if (bus_) {
    bus_->save_state(w);
  } else {
    fabric_->save_state(w);
  }
  w.u64(channels_.size());
  for (const auto& ch : channels_) ch->save_state(w);
  w.u64(hw_domains_.size());
  for (const auto& hw : hw_domains_) hw->save_state(w);
  sw_->save_state(w);
  scheduler_.save_state(w);
  w.u64(cycle_);
  // Memory hierarchy presence is structural (it follows from the marks),
  // so a bare flag suffices to catch mark drift between save and restore.
  w.u8(mem_ ? 1 : 0);
  if (mem_) mem_->save_state(w);
}

void CoSimulation::load_state(snap::Reader& r) {
  const std::uint8_t mode = r.u8();
  if (mode != (bus_ ? 0 : 1)) {
    throw snap::SnapError(
        "co-simulation snapshot interconnect mismatch (bus vs fabric)");
  }
  sim_->load_state(r);
  if (bus_) {
    bus_->load_state(r);
  } else {
    fabric_->load_state(r);
  }
  if (r.u64() != channels_.size()) {
    throw snap::SnapError("co-simulation snapshot channel count mismatch");
  }
  for (auto& ch : channels_) ch->load_state(r);
  if (r.u64() != hw_domains_.size()) {
    throw snap::SnapError(
        "co-simulation snapshot domain count mismatch (same partition "
        "required)");
  }
  for (auto& hw : hw_domains_) hw->load_state(r);
  sw_->load_state(r);
  scheduler_.load_state(r);
  cycle_ = r.u64();
  const std::uint8_t has_mem = r.u8();
  if (has_mem != (mem_ ? 1 : 0)) {
    throw snap::SnapError(
        "co-simulation snapshot memory-hierarchy mismatch (same marks "
        "required)");
  }
  if (mem_) mem_->load_state(r);
}

}  // namespace xtsoc::cosim
