#include "xtsoc/cosim/report.hpp"

#include "xtsoc/cosim/cosim.hpp"
#include "xtsoc/mem/mem.hpp"

namespace xtsoc::cosim {

using obs::JsonValue;

JsonValue to_json(const hwsim::SimStats& s) {
  JsonValue v = JsonValue::object();
  v["delta_cycles"] = s.delta_cycles;
  v["process_activations"] = s.process_activations;
  v["wire_commits"] = s.wire_commits;
  return v;
}

JsonValue to_json(const BusStats& s, int latency_cycles) {
  JsonValue v = JsonValue::object();
  v["kind"] = "bus";
  v["latency"] = latency_cycles;
  v["frames_to_hw"] = s.frames_to_hw;
  v["frames_to_sw"] = s.frames_to_sw;
  v["bytes_to_hw"] = s.bytes_to_hw;
  v["bytes_to_sw"] = s.bytes_to_sw;
  return v;
}

JsonValue to_json(const noc::FabricStats& s) {
  JsonValue v = JsonValue::object();
  v["kind"] = "noc";
  JsonValue& mesh = v["mesh"];
  mesh = JsonValue::object();
  mesh["width"] = s.width;
  mesh["height"] = s.height;
  // Named only off the default, so mesh+XY reports stay byte-identical to
  // the pre-topology format (the same conditional-section pattern the
  // "faults" and "engines" blocks use).
  if (s.topology != noc::TopologyKind::kMesh ||
      s.routing != noc::RoutePolicy::kXY) {
    v["topology"] = to_string(s.topology);
    v["routing"] = to_string(s.routing);
  }
  v["cycles"] = s.cycles;
  v["frames_sent"] = s.frames_sent;
  v["frames_delivered"] = s.frames_delivered;
  v["flits_injected"] = s.flits_injected;
  v["payload_bytes"] = s.payload_bytes;

  JsonValue& routers = v["routers"];
  routers = JsonValue::array();
  for (std::size_t i = 0; i < s.routers.size(); ++i) {
    const noc::RouterStats& r = s.routers[i];
    JsonValue e = JsonValue::object();
    e["tile"] = static_cast<std::uint64_t>(i);
    e["x"] = s.width == 0 ? 0 : static_cast<int>(i) % s.width;
    e["y"] = s.width == 0 ? 0 : static_cast<int>(i) / s.width;
    e["flits_routed"] = r.flits_routed;
    e["flits_ejected"] = r.flits_ejected;
    e["credit_stalls"] = r.credit_stalls;
    e["buffer_high_water"] = static_cast<std::uint64_t>(r.buffer_high_water);
    routers.push_back(std::move(e));
  }

  JsonValue& links = v["links"];
  links = JsonValue::array();
  for (const noc::LinkStats& l : s.links) {
    JsonValue e = JsonValue::object();
    e["from_tile"] = l.from_tile;
    e["dir"] = noc::to_string(l.dir);
    e["flits"] = l.flits;
    e["utilization"] = s.link_utilization(l);
    links.push_back(std::move(e));
  }

  JsonValue& lat = v["latency"];
  lat = JsonValue::object();
  lat["count"] = s.latency.count;
  lat["mean"] = s.latency.mean();
  lat["min"] = s.latency.min;
  lat["max"] = s.latency.max;
  JsonValue& buckets = lat["buckets"];
  buckets = JsonValue::array();
  for (int b = 0; b < noc::LatencyHistogram::kBuckets; ++b) {
    if (s.latency.buckets[static_cast<std::size_t>(b)] == 0) continue;
    JsonValue e = JsonValue::object();
    e["lo"] = std::uint64_t{1} << b;
    e["count"] = s.latency.buckets[static_cast<std::size_t>(b)];
    buckets.push_back(std::move(e));
  }
  return v;
}

obs::Snapshot CoSimulation::report() const {
  obs::Snapshot snap;

  JsonValue& run = snap["run"];
  run = JsonValue::object();
  run["cycles"] = cycle_;
  run["lookahead"] = lookahead_;
  run["window"] = window_;
  run["threads"] = config_.threads;
  run["interconnect"] = has_fabric() ? "noc" : "bus";

  snap["sim"] = to_json(sim_->stats());
  snap["interconnect"] = has_fabric()
                             ? to_json(fabric_->stats())
                             : to_json(bus_->stats(), bus_->latency());

  JsonValue& domains = snap["domains"];
  domains = JsonValue::array();
  for (std::size_t i = 0; i < hw_domains_.size(); ++i) {
    const runtime::Executor& e = hw_domains_[i]->executor();
    JsonValue d = JsonValue::object();
    d["name"] = "hw" + std::to_string(i);
    d["dispatches"] = e.dispatch_count();
    d["ops"] = e.ops_executed();
    d["queue_high_water"] = static_cast<std::uint64_t>(e.queue_high_water());
    domains.push_back(std::move(d));
  }
  {
    const runtime::Executor& e = sw_executor();
    JsonValue d = JsonValue::object();
    d["name"] = "sw";
    d["dispatches"] = e.dispatch_count();
    d["ops"] = e.ops_executed();
    d["queue_high_water"] = static_cast<std::uint64_t>(e.queue_high_water());
    domains.push_back(std::move(d));
  }

  // Registry counters ride along when an observability registry is attached
  // — the same name-sorted object Registry::snapshot() would emit.
  if (obs_ != nullptr) {
    JsonValue& cs = snap["counters"];
    cs = JsonValue::object();
    for (const auto& [name, value] : obs_->counters()) cs[name] = value;
  }

  // Like faults below, the engines section exists only when the caller
  // recorded an engine request, so default runs keep byte-identical
  // reports — which is what lets the jit-vs-vm parity grid compare whole
  // snapshots.
  if (!config_.engine_status.requested.empty()) {
    const EngineStatus& es = config_.engine_status;
    JsonValue& eng = snap["engines"];
    eng = JsonValue::object();
    eng["requested"] = es.requested;
    eng["active"] = es.active;
    if (!es.fallback_reason.empty()) {
      eng["fallback_reason"] = es.fallback_reason;
    }
    if (!es.digest.empty()) {
      eng["digest"] = es.digest;
      eng["cache_hit"] = es.cache_hit;
    }
  }

  // The memory section exists only when the marks placed a DRAM tile, so
  // runs without memory marks keep byte-identical reports.
  if (mem_ != nullptr) {
    const mem::MemStats& ms = mem_->stats();
    const mem::MemConfig& mc = mem_->config();
    JsonValue& m = snap["memory"];
    m = JsonValue::object();
    JsonValue& geo = m["config"];
    geo = JsonValue::object();
    geo["dram_tile"] = mc.dram_tile;
    geo["sets"] = mc.sets;
    geo["ways"] = mc.ways;
    geo["line_bytes"] = mc.line_bytes;
    m["loads"] = ms.loads;
    m["stores"] = ms.stores;
    m["hits"] = ms.hits;
    m["misses"] = ms.misses;
    m["evictions"] = ms.evictions;
    m["writebacks"] = ms.writebacks;
    m["invalidations"] = ms.invalidations;
    m["dram_reads"] = ms.dram_reads;
    m["dram_writes"] = ms.dram_writes;
    m["dram_row_hits"] = ms.dram_row_hits;
    m["dram_row_conflicts"] = ms.dram_row_conflicts;
    m["coh_frames"] = ms.coh_frames;
    m["coh_flits"] = ms.coh_flits;
    m["coh_payload_bytes"] = ms.coh_payload_bytes;
    m["mean_load_use"] = ms.mean_load_use();
  }

  // The faults section exists only when a plan is attached, so a fault-free
  // run's snapshot is byte-identical to one from a build without faults.
  if (config_.fault != nullptr) {
    JsonValue& f = snap["faults"];
    f = JsonValue::object();
    f["seed"] = config_.fault->spec().seed;
    if (has_fabric()) {
      f["noc"] = to_json(fabric_->fault_stats());
    } else {
      f["bus"] = to_json(bus_->fault_stats());
    }
  }
  return snap;
}

JsonValue to_json(const noc::FabricFaultStats& s) {
  JsonValue v = JsonValue::object();
  v["flits_dropped"] = s.flits_dropped;
  v["flits_corrupted"] = s.flits_corrupted;
  v["link_down_events"] = s.link_down_events;
  v["link_down_drops"] = s.link_down_drops;
  v["crc_rejects"] = s.crc_rejects;
  v["orphan_flits"] = s.orphan_flits;
  v["retransmissions"] = s.retransmissions;
  v["duplicates_dropped"] = s.duplicates_dropped;
  v["acks_delivered"] = s.acks_delivered;
  v["frames_lost"] = s.frames_lost;
  v["tainted_delivered"] = s.tainted_delivered;
  return v;
}

JsonValue to_json(const BusFaultStats& s) {
  JsonValue v = JsonValue::object();
  v["errors"] = s.errors;
  v["retries"] = s.retries;
  v["frames_dropped"] = s.frames_dropped;
  return v;
}

fault::RunOutcome outcome_of(const CoSimulation& cs, const fault::Plan& plan) {
  fault::RunOutcome o;
  o.seed = plan.spec().seed;
  o.cycles = cs.cycles();
  if (cs.has_fabric()) {
    const noc::FabricFaultStats& f = cs.fabric().fault_stats();
    const noc::FabricStats s = cs.fabric().stats();
    o.delivered = s.frames_delivered;
    o.dropped = f.frames_lost;
    o.retried = f.retransmissions;
    o.injected = f.flits_dropped + f.flits_corrupted + f.link_down_events;
  } else {
    const BusFaultStats& f = cs.bus().fault_stats();
    const BusStats& s = cs.bus().stats();
    o.delivered = s.frames_to_hw + s.frames_to_sw;
    o.dropped = f.frames_dropped;
    o.retried = f.retries;
    o.injected = f.errors;
  }
  o.survived = o.dropped == 0;
  return o;
}

}  // namespace xtsoc::cosim
