// Channel: one partition executor's window onto the interconnect.
//
// A domain (HwDomain, SwDomain) neither knows nor cares whether its frames
// travel the legacy point-to-point Bus or the 2D-mesh NoC — it sends
// toward a destination *class* and receives whatever is due. The concrete
// channel picked by CoSimulation encodes the topology:
//
//   * BusEndpoint — the degenerate 1x2 case: exactly one hardware and one
//     software endpoint, frames spend a fixed busLatency in flight;
//   * FabricChannel — a tile's NIC on the noc::Fabric: frames are
//     segmented into flits and routed hop by hop, so latency depends on
//     placement and congestion (which is the whole point).
#pragma once

#include <cstdint>
#include <vector>

#include "xtsoc/cosim/bus.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"
#include "xtsoc/mem/wire.hpp"
#include "xtsoc/noc/fabric.hpp"
#include "xtsoc/snap/io.hpp"

namespace xtsoc::cosim {

class Channel {
public:
  virtual ~Channel() = default;

  /// Queue `f` toward the executor owning class `dst`. The frame becomes
  /// deliverable after the interconnect's transit time, but never before
  /// `current_cycle + extra_delay` (generate-statement delays ride along).
  virtual void send(ClassId dst, Frame f, std::uint64_t current_cycle,
                    std::uint64_t extra_delay) = 0;

  /// Remove and return every frame due at or before `cycle`, in order.
  virtual std::vector<Frame> receive(std::uint64_t cycle) = 0;

  /// True when the channel buffers no undelivered frames of its own — the
  /// interconnect behind it may still hold traffic (the master checks Bus /
  /// Fabric separately).
  virtual bool idle() const = 0;

  // --- checkpointing ---------------------------------------------------------
  /// Serialize / restore channel-local buffering. The default no-op is the
  /// correct implementation for stateless endpoints (BusEndpoint: all its
  /// state lives in the Bus, serialized by the master).
  virtual void save_state(snap::Writer&) const {}
  virtual void load_state(snap::Reader&) {}
};

/// Legacy bus endpoint. The destination class is ignored: the bus has
/// exactly one far side.
class BusEndpoint final : public Channel {
public:
  enum class Side { kHardware, kSoftware };

  BusEndpoint(Bus& bus, Side side) : bus_(&bus), side_(side) {}

  void send(ClassId, Frame f, std::uint64_t current_cycle,
            std::uint64_t extra_delay) override {
    if (side_ == Side::kHardware) {
      bus_->push_to_sw(std::move(f), current_cycle, extra_delay);
    } else {
      bus_->push_to_hw(std::move(f), current_cycle, extra_delay);
    }
  }

  std::vector<Frame> receive(std::uint64_t cycle) override {
    return side_ == Side::kHardware ? bus_->pop_due_to_hw(cycle)
                                    : bus_->pop_due_to_sw(cycle);
  }

  bool idle() const override { return true; }  // all state lives in the Bus

private:
  Bus* bus_;
  Side side_;
};

/// A tile's NIC on the mesh fabric. Destination classes resolve to tiles
/// through the partition's mark-driven placement.
///
/// Delivery timing: a reassembled frame leaves the NIC no earlier than
/// `arrive_cycle + link_latency` — one NIC-egress link traversal after the
/// tail flit lands. Besides modeling the egress port, this padding is what
/// gives the mesh a nonzero lookahead floor: a frame can never become
/// deliverable in the same sub-link_latency interval it arrived in, so a
/// conservative window of up to link_latency cycles sees a complete inbox
/// (see cosim.hpp). The rule is applied here uniformly — lockstep and
/// windowed execution, every window size, every thread count — so all
/// configurations agree byte for byte.
class FabricChannel final : public Channel {
public:
  FabricChannel(noc::Fabric& fabric, const mapping::MappedSystem& sys,
                int tile)
      : fabric_(&fabric), sys_(&sys), tile_(tile),
        egress_latency_(
            static_cast<std::uint64_t>(sys.partition().mesh().link_latency)) {}

  int tile() const { return tile_; }

  void send(ClassId dst, Frame f, std::uint64_t current_cycle,
            std::uint64_t extra_delay) override {
    fabric_->send_frame(tile_, sys_->partition().tile_of(dst), f.opcode,
                        std::move(f.payload), current_cycle, extra_delay);
  }

  std::vector<Frame> receive(std::uint64_t cycle) override {
    drain_nic();
    // Dues are heterogeneous (generate delays), so scan everything but keep
    // the survivors' relative order — the same contract as Bus::pop_due.
    return take_due(pending_, cycle);
  }

  /// Remove and return every coherence (xtsoc::mem wire-format) frame due
  /// at or before `cycle`. Coherence traffic shares the NIC but must not
  /// enter the signal inbox — the mem::System consumes it on the serial
  /// spine instead.
  std::vector<Frame> take_coherence(std::uint64_t cycle) {
    drain_nic();
    return take_due(coh_pending_, cycle);
  }

  bool idle() const override {
    return pending_.empty() && coh_pending_.empty();
  }

  void save_state(snap::Writer& w) const override {
    w.u64(pending_.size());
    for (const Frame& f : pending_) save_frame(w, f);
    w.u64(coh_pending_.size());
    for (const Frame& f : coh_pending_) save_frame(w, f);
  }

  void load_state(snap::Reader& r) override {
    pending_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) pending_.push_back(load_frame(r));
    coh_pending_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) coh_pending_.push_back(load_frame(r));
  }

private:
  static constexpr std::uint64_t kDrainAll = ~std::uint64_t{0};

  /// Drain everything the NIC has reassembled (stats were recorded at
  /// arrival; popping is timing-neutral), stamp each frame's effective due
  /// cycle, and demux by opcode: coherence frames go to coh_pending_,
  /// everything else (signals) to pending_.
  void drain_nic() {
    for (noc::Delivery& d : fabric_->pop_due(tile_, kDrainAll)) {
      std::uint64_t due = d.due_cycle;
      if (d.arrive_cycle + egress_latency_ > due) {
        due = d.arrive_cycle + egress_latency_;
      }
      auto& q = mem::wire::is_coherence(d.opcode) ? coh_pending_ : pending_;
      q.push_back(Frame{d.opcode, std::move(d.payload), due});
    }
  }

  static std::vector<Frame> take_due(std::vector<Frame>& q,
                                     std::uint64_t cycle) {
    std::vector<Frame> due_now;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].due_cycle <= cycle) {
        due_now.push_back(std::move(q[i]));
      } else {
        if (kept != i) q[kept] = std::move(q[i]);
        ++kept;
      }
    }
    q.resize(kept);
    return due_now;
  }

  noc::Fabric* fabric_;
  const mapping::MappedSystem* sys_;
  int tile_;
  std::uint64_t egress_latency_;
  std::vector<Frame> pending_;      ///< reassembled signals, still in egress
  std::vector<Frame> coh_pending_;  ///< reassembled coherence frames
};

}  // namespace xtsoc::cosim
