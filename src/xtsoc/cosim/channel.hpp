// Channel: one partition executor's window onto the interconnect.
//
// A domain (HwDomain, SwDomain) neither knows nor cares whether its frames
// travel the legacy point-to-point Bus or the 2D-mesh NoC — it sends
// toward a destination *class* and receives whatever is due. The concrete
// channel picked by CoSimulation encodes the topology:
//
//   * BusEndpoint — the degenerate 1x2 case: exactly one hardware and one
//     software endpoint, frames spend a fixed busLatency in flight;
//   * FabricChannel — a tile's NIC on the noc::Fabric: frames are
//     segmented into flits and routed hop by hop, so latency depends on
//     placement and congestion (which is the whole point).
#pragma once

#include <vector>

#include "xtsoc/cosim/bus.hpp"
#include "xtsoc/mapping/modelcompiler.hpp"
#include "xtsoc/noc/fabric.hpp"

namespace xtsoc::cosim {

class Channel {
public:
  virtual ~Channel() = default;

  /// Queue `f` toward the executor owning class `dst`. The frame becomes
  /// deliverable after the interconnect's transit time, but never before
  /// `current_cycle + extra_delay` (generate-statement delays ride along).
  virtual void send(ClassId dst, Frame f, std::uint64_t current_cycle,
                    std::uint64_t extra_delay) = 0;

  /// Remove and return every frame due at or before `cycle`, in order.
  virtual std::vector<Frame> receive(std::uint64_t cycle) = 0;
};

/// Legacy bus endpoint. The destination class is ignored: the bus has
/// exactly one far side.
class BusEndpoint final : public Channel {
public:
  enum class Side { kHardware, kSoftware };

  BusEndpoint(Bus& bus, Side side) : bus_(&bus), side_(side) {}

  void send(ClassId, Frame f, std::uint64_t current_cycle,
            std::uint64_t extra_delay) override {
    if (side_ == Side::kHardware) {
      bus_->push_to_sw(std::move(f), current_cycle, extra_delay);
    } else {
      bus_->push_to_hw(std::move(f), current_cycle, extra_delay);
    }
  }

  std::vector<Frame> receive(std::uint64_t cycle) override {
    return side_ == Side::kHardware ? bus_->pop_due_to_hw(cycle)
                                    : bus_->pop_due_to_sw(cycle);
  }

private:
  Bus* bus_;
  Side side_;
};

/// A tile's NIC on the mesh fabric. Destination classes resolve to tiles
/// through the partition's mark-driven placement.
class FabricChannel final : public Channel {
public:
  FabricChannel(noc::Fabric& fabric, const mapping::MappedSystem& sys,
                int tile)
      : fabric_(&fabric), sys_(&sys), tile_(tile) {}

  int tile() const { return tile_; }

  void send(ClassId dst, Frame f, std::uint64_t current_cycle,
            std::uint64_t extra_delay) override {
    fabric_->send_frame(tile_, sys_->partition().tile_of(dst), f.opcode,
                        std::move(f.payload), current_cycle, extra_delay);
  }

  std::vector<Frame> receive(std::uint64_t cycle) override {
    std::vector<Frame> frames;
    for (noc::Delivery& d : fabric_->pop_due(tile_, cycle)) {
      frames.push_back(Frame{d.opcode, std::move(d.payload), d.due_cycle});
    }
    return frames;
  }

private:
  noc::Fabric* fabric_;
  const mapping::MappedSystem* sys_;
  int tile_;
};

}  // namespace xtsoc::cosim
