#include "xtsoc/cosim/bus.hpp"

#include "xtsoc/fault/fault.hpp"
#include "xtsoc/snap/io.hpp"

namespace xtsoc::cosim {

void Bus::connect(const std::string& hw_digest, const std::string& sw_digest) {
  if (hw_digest != sw_digest) {
    throw InterfaceMismatch(
        "interface digest mismatch: hardware side built against " + hw_digest +
        ", software side against " + sw_digest +
        " — the two halves were not generated from the same mapping");
  }
  connected_ = true;
}

void Bus::check_connected() const {
  if (!connected_) {
    throw InterfaceMismatch("bus used before connect() handshake");
  }
}

std::optional<std::uint64_t> Bus::transfer_penalty(std::uint32_t endpoint,
                                                   std::uint64_t cycle) {
  if (fault_ == nullptr) return 0;
  // Each failed attempt re-arbitrates the bus: one more latency, plus a
  // widening backoff. The retry budget bounds the loop — a hostile plan
  // (busError = 1.0) produces counted drops, never an infinite push.
  std::uint64_t penalty = 0;
  const int budget = fault_->spec().retry_budget;
  for (int attempt = 0; fault_->bus_error(endpoint, cycle); ++attempt) {
    ++fstats_.errors;
    if (attempt >= budget) return std::nullopt;
    ++fstats_.retries;
    penalty += static_cast<std::uint64_t>(latency_) + (1ULL << attempt);
  }
  return penalty;
}

void Bus::push_to_hw(Frame f, std::uint64_t current_cycle,
                     std::uint64_t extra_delay) {
  check_connected();
  const auto penalty = transfer_penalty(0, current_cycle);
  if (!penalty) {
    ++fstats_.frames_dropped;
    return;
  }
  f.due_cycle = current_cycle + static_cast<std::uint64_t>(latency_) +
                extra_delay + *penalty;
  stats_.frames_to_hw++;
  stats_.bytes_to_hw += f.payload.size();
  to_hw_.push_back(std::move(f));
}

void Bus::push_to_sw(Frame f, std::uint64_t current_cycle,
                     std::uint64_t extra_delay) {
  check_connected();
  const auto penalty = transfer_penalty(1, current_cycle);
  if (!penalty) {
    ++fstats_.frames_dropped;
    return;
  }
  f.due_cycle = current_cycle + static_cast<std::uint64_t>(latency_) +
                extra_delay + *penalty;
  stats_.frames_to_sw++;
  stats_.bytes_to_sw += f.payload.size();
  to_sw_.push_back(std::move(f));
}

std::vector<Frame> Bus::pop_due(std::deque<Frame>& q, std::uint64_t cycle) {
  // Frames may have heterogeneous extra delays, so scan the whole queue but
  // preserve relative order of the survivors.
  std::vector<Frame> due;
  std::deque<Frame> keep;
  for (Frame& f : q) {
    if (f.due_cycle <= cycle) {
      due.push_back(std::move(f));
    } else {
      keep.push_back(std::move(f));
    }
  }
  q.swap(keep);
  return due;
}

std::vector<Frame> Bus::pop_due_to_hw(std::uint64_t cycle) {
  return pop_due(to_hw_, cycle);
}

std::vector<Frame> Bus::pop_due_to_sw(std::uint64_t cycle) {
  return pop_due(to_sw_, cycle);
}

void save_frame(snap::Writer& w, const Frame& f) {
  w.u32(f.opcode);
  w.u64(f.payload.size());
  w.bytes(f.payload.data(), f.payload.size());
  w.u64(f.due_cycle);
}

Frame load_frame(snap::Reader& r) {
  Frame f;
  f.opcode = r.u32();
  f.payload.resize(r.u64());
  for (std::uint8_t& b : f.payload) b = r.u8();
  f.due_cycle = r.u64();
  return f;
}

void Bus::save_state(snap::Writer& w) const {
  w.boolean(connected_);
  w.u64(to_hw_.size());
  for (const Frame& f : to_hw_) save_frame(w, f);
  w.u64(to_sw_.size());
  for (const Frame& f : to_sw_) save_frame(w, f);
  w.u64(stats_.frames_to_hw);
  w.u64(stats_.frames_to_sw);
  w.u64(stats_.bytes_to_hw);
  w.u64(stats_.bytes_to_sw);
  w.u64(fstats_.errors);
  w.u64(fstats_.retries);
  w.u64(fstats_.frames_dropped);
}

void Bus::load_state(snap::Reader& r) {
  connected_ = r.boolean();
  to_hw_.clear();
  std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) to_hw_.push_back(load_frame(r));
  to_sw_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) to_sw_.push_back(load_frame(r));
  stats_.frames_to_hw = r.u64();
  stats_.frames_to_sw = r.u64();
  stats_.bytes_to_hw = r.u64();
  stats_.bytes_to_sw = r.u64();
  fstats_.errors = r.u64();
  fstats_.retries = r.u64();
  fstats_.frames_dropped = r.u64();
}

}  // namespace xtsoc::cosim
