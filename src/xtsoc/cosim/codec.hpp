// Frame <-> EventMessage translation against an InterfaceSpec. Both
// partition runtimes use these two functions, so the wire format has a
// single definition point — the synthesized interface.
#pragma once

#include "xtsoc/cosim/bus.hpp"
#include "xtsoc/mapping/interface.hpp"
#include "xtsoc/runtime/executor.hpp"

namespace xtsoc::cosim {

/// Encode an outgoing cross-boundary signal. Throws InterfaceMismatch when
/// the (class, event) pair has no synthesized message — the signature of a
/// stale interface.
Frame encode_message(const mapping::InterfaceSpec& spec,
                     const runtime::EventMessage& m);

/// Decode an incoming frame. The sender identity does not cross the wire
/// (cross-boundary signals are never self-directed, so it is not needed for
/// queueing); the decoded message has a null sender.
runtime::EventMessage decode_frame(const mapping::InterfaceSpec& spec,
                                   const Frame& f);

}  // namespace xtsoc::cosim
