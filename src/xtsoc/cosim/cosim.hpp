// CoSimulation: the partitioned executable system.
//
// Owns the hwsim kernel (with one clock), the hardware domains, the
// SwDomain, the swrt scheduler, and the interconnect between them. The
// interconnect is picked from the marks:
//
//   * no tile marks — the legacy point-to-point Bus with one HwDomain
//     owning every hardware class (the 1x2 degenerate topology);
//   * tile marks present — a cycle-accurate noc::Fabric 2D mesh, one
//     HwDomain per occupied hardware tile plus the SwDomain on its own
//     tile, each behind a NIC (FabricChannel).
//
// Per hardware clock cycle:
//
//   1. the fabric (if any) moves flits one hop and retires due frames;
//   2. each HwDomain's clocked process latches due frames and lets each
//      hardware FSM instance consume one signal;
//   3. the SwDomain latches its due frames and the software task receives a
//      budget of `sw_steps_per_cycle` dispatches.
//
// Windowed execution (the conservative-lookahead scheduler). Every frame
// that crosses a domain boundary spends at least L cycles in flight: L is
// the busLatency mark on the bus, and the NIC-egress link traversal
// (link_latency) on the mesh (mapping::MappedSystem::lookahead()). That
// static bound means a frame sent at cycle c cannot influence any other
// domain before cycle c + L — so the master may run every domain L cycles
// ahead without hearing from the others (Chandy–Misra–Bryant conservative
// lookahead, derived from the marks instead of negotiated at runtime).
// When L > 1 the master executes in windows of W = min(window, L) cycles:
//
//   boundary (serial)  every domain pulls the frames due inside the coming
//                      window from the shared interconnect into a private
//                      inbox — complete by the lookahead argument;
//   phase A (parallel) each domain runs W cycles of its per-cycle body on
//                      a persistent worker pool, touching only its own
//                      state: frames come from the inbox, outbound frames
//                      are staged cycle-stamped in an outbox, and kernel
//                      wire writes are staged per edge;
//   phase B (sharded)  the hwsim kernel replays the W edges. With more
//                      than one hardware domain the replay itself shards
//                      by tile (Simulator::run_cycles_sharded): each
//                      domain's clocked process and alive/busy wires form
//                      one shard, all shards replay their W edges
//                      concurrently on the same pool, and a serial spine
//                      merges the commits in (cycle, tile index,
//                      intra-tile order) — the total order the serial
//                      kernel produces — while ticking the fabric before
//                      each edge and flushing due outboxes (domain order,
//                      then software) after it.
//
// One pool handshake per window — per phase — instead of one per delta
// cycle is the entire performance story; the deterministic merge is the
// entire determinism story: traces, VCD, SimStats, Bus/FabricStats are
// byte-identical to the serial master at every window size and thread
// count. When L == 1 (zero-latency bus, or `window = 1`) the master is the
// exact per-cycle lockstep loop, with kernel-level delta parallelism
// (SimConfig::threads) instead.
//
// The whole thing is deterministic, so a CoSimulation trace is comparable
// against the abstract Executor trace (see src/xtsoc/verify) — the paper's
// "the model compiler ... preserves the defined behavior" claim, tested.
// Placement changes latency, never functional behavior.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "xtsoc/cosim/bus.hpp"
#include "xtsoc/cosim/channel.hpp"
#include "xtsoc/cosim/hwdomain.hpp"
#include "xtsoc/cosim/swdomain.hpp"
#include "xtsoc/noc/fabric.hpp"

namespace xtsoc::hwsim {
class WorkerPool;
}

namespace xtsoc::mem {
class System;
}

namespace xtsoc::cosim {

/// Caller-reported action-engine provenance for the report's "engines"
/// section. Whoever selected the engine (xtsocc, a bench, a test) fills
/// this in alongside `CoSimConfig::engine`/`compiled`; an empty
/// `requested` omits the section entirely, so runs that never mention
/// engines keep byte-identical reports.
struct EngineStatus {
  std::string requested;        ///< engine the user asked for ("vm", "jit")
  std::string active;           ///< engine actually executing actions
  std::string fallback_reason;  ///< why active != requested, when it does
  std::string digest;           ///< jit module content digest, if any
  bool cache_hit = false;       ///< jit module came from the on-disk cache
};

struct CoSimConfig {
  /// Worker threads. With windowed execution in effect (see `window`) the
  /// threads run whole domains concurrently within each window; in
  /// lockstep they run the hwsim kernel's delta-cycle batches instead.
  /// Either way 1 is fully serial and every thread count is byte-identical
  /// to it. See docs/PERF.md.
  int threads = 1;
  /// Execution window in cycles. 0 (default) = auto: use the full static
  /// lookahead L of the mapped interconnect. Values are clamped to [1, L]
  /// — running further ahead than L could miss cross-domain frames, so the
  /// cap is correctness, not tuning. 1 forces per-cycle lockstep.
  int window = 0;
  /// Software dispatches allowed per hardware clock cycle (CPU/fabric
  /// speed ratio).
  int sw_steps_per_cycle = 4;
  /// Software action work (interpreter ops) allowed per hardware clock
  /// cycle. Heavy actions therefore take many cycles in software but one in
  /// hardware — the cost asymmetry that makes repartitioning worthwhile.
  std::uint64_t sw_ops_per_cycle = 256;
  bool trace_enabled = true;
  runtime::QueuePolicy policy = runtime::QueuePolicy::kXtuml;
  runtime::ActionEngine engine = runtime::ActionEngine::kAstWalk;
  /// AOT-compiled actions (xtsoc::jit) dispatched when `engine` is kJit;
  /// non-owning — the module must outlive the co-simulation. Executors
  /// fall back to the bytecode VM per action when null or incomplete, so
  /// observable behaviour never depends on this being set.
  const runtime::CompiledActions* compiled = nullptr;
  /// Provenance for the report's "engines" section (see EngineStatus).
  EngineStatus engine_status;
  std::uint64_t max_ops_per_action = 10'000'000;
  /// Test hook: present this digest for the software endpoint instead of
  /// the real one, to demonstrate the connect-time mismatch detection.
  std::string forged_sw_digest;
  /// Optional observability sink, threaded through every layer: the master
  /// gets the "cosim" track (cycle/window/phase spans), the kernel
  /// "kernel", each hardware domain "executor/hwN", software "executor/sw",
  /// and the mesh "noc". Null (default) leaves every probe a dead test —
  /// simulation output is byte-identical either way.
  obs::Registry* obs = nullptr;
  /// Optional fault plan (src/xtsoc/fault), threaded into the interconnect
  /// (mesh fabric or point-to-point bus). The plan is stateful and serves
  /// exactly one CoSimulation run; campaign runs each build their own.
  /// Null (default) — or a plan whose rates are all zero — keeps the run
  /// byte-identical to a fault-free one.
  fault::Plan* fault = nullptr;
};

class CoSimulation {
public:
  explicit CoSimulation(const mapping::MappedSystem& sys,
                        CoSimConfig config = {});
  ~CoSimulation();

  // --- population (routed to the owning partition) ---------------------------
  runtime::InstanceHandle create(std::string_view class_name);
  runtime::InstanceHandle create_with(
      std::string_view class_name,
      const std::vector<std::pair<std::string, runtime::Value>>& attrs);

  /// External stimulus to any instance, regardless of partition.
  void inject(const runtime::InstanceHandle& target,
              std::string_view event_name,
              std::vector<runtime::Value> args = {}, std::uint64_t delay = 0);

  // --- execution ---------------------------------------------------------------

  /// Run until the system is quiescent or `max_cycles` elapse.
  /// Returns the number of hardware cycles executed. Windowed execution
  /// checks quiescence at window boundaries, so it may run up to
  /// window() - 1 idle cycles past the quiescence point (never past
  /// `max_cycles`); use run_cycles() for an exact cycle count.
  std::uint64_t run(std::uint64_t max_cycles = 1'000'000);

  /// Run exactly `cycles` cycles.
  void run_cycles(std::uint64_t cycles);

  bool quiescent() const;

  // --- observability ------------------------------------------------------------
  std::uint64_t cycles() const { return cycle_; }
  /// Static interconnect lookahead L the window was derived from.
  int lookahead() const { return lookahead_; }
  /// Effective execution window W in cycles (1 = per-cycle lockstep).
  int window() const { return window_; }
  /// The first (in bus mode: the only) hardware domain.
  const HwDomain& hw_domain() const { return *hw_domains_.front(); }
  /// All hardware clock domains, one per occupied mesh tile (a single
  /// entry in bus mode).
  const std::vector<std::unique_ptr<HwDomain>>& hw_domains() const {
    return hw_domains_;
  }
  /// Called at the end of every cycle — attach waveform sampling here
  /// (e.g. hwsim::VcdWriter::sample).
  void set_cycle_hook(std::function<void(std::uint64_t)> hook) {
    cycle_hook_ = std::move(hook);
  }
  runtime::Executor& hw_executor() { return hw_domains_.front()->executor(); }
  runtime::Executor& sw_executor() { return sw_->executor(); }
  const runtime::Executor& hw_executor() const {
    return hw_domains_.front()->executor();
  }
  const runtime::Executor& sw_executor() const { return sw_->executor(); }
  runtime::Executor& executor_of(ClassId cls);
  const runtime::Executor& executor_of(ClassId cls) const;
  const mapping::MappedSystem& system() const { return *sys_; }
  /// Valid only in bus mode (`!has_fabric()`).
  const Bus& bus() const { return *bus_; }
  bool has_fabric() const { return fabric_ != nullptr; }
  /// Valid only in fabric mode (`has_fabric()`).
  const noc::Fabric& fabric() const { return *fabric_; }
  const hwsim::Simulator& hw_sim() const { return *sim_; }
  const swrt::Scheduler& scheduler() const { return scheduler_; }
  /// The memory hierarchy, or null when no `dram.tile` mark is present.
  const mem::System* mem_system() const { return mem_.get(); }

  /// Wall-clock seconds accumulated per windowed phase (zeroes in lockstep
  /// mode). The boundary/phase A/phase B split is what tells a perf
  /// investigation where the Amdahl wall currently is; bench_cosim exports
  /// it as phaseA_pct/phaseB_pct.
  struct PhaseSeconds {
    double boundary = 0;
    double phase_a = 0;
    double phase_b = 0;
  };
  PhaseSeconds phase_seconds() const { return phase_seconds_; }

  /// One structured stats report covering the whole co-simulation: run
  /// shape, kernel SimStats, interconnect (Bus or Fabric) stats, per-domain
  /// executor stats, plus obs counters when a registry is attached. This is
  /// THE serialization path for cosim stats — see cosim/report.hpp.
  obs::Snapshot report() const;

  // --- checkpointing ---------------------------------------------------------
  /// Serialize the complete dynamic state of the co-simulation: kernel,
  /// interconnect (bus or fabric), every channel, every domain executor,
  /// the software scheduler and the master's cycle counter. Call only
  /// between run calls (a quiet point — the kernel refuses mid-settle
  /// snapshots). Structure (netlist, partition, topology) is NOT saved:
  /// restore re-elaborates a CoSimulation from the same MappedSystem —
  /// with ANY threads/window configuration — and calls load_state, after
  /// which traces, VCD, stats and report() are byte-identical to the
  /// uninterrupted run. The attached fault plan and obs registry are
  /// external and serialized by the snap snapshot layer.
  void save_state(snap::Writer& w) const;
  void load_state(snap::Reader& r);

private:
  void one_cycle();
  /// One window of `w` cycles (windowed mode): boundary inbox fill, phase A
  /// on the pool, phase B kernel replay. `w` may be smaller than window()
  /// for the tail of a run — any W' <= L is safe.
  void run_window(std::uint64_t w);
  /// Serial-spine memory step for `cycle`: collect the coherence frames the
  /// NICs reassembled (channel/tag order) and advance the hierarchy.
  void mem_tick(std::uint64_t cycle);

  const mapping::MappedSystem* sys_;
  CoSimConfig config_;
  std::unique_ptr<hwsim::Simulator> sim_;
  HwSignalId clk_;
  std::unique_ptr<Bus> bus_;           // bus mode only
  std::unique_ptr<noc::Fabric> fabric_;  // fabric mode only
  std::vector<std::unique_ptr<Channel>> channels_;  // owned by the master
  swrt::Scheduler scheduler_;
  std::vector<std::unique_ptr<HwDomain>> hw_domains_;
  std::unique_ptr<SwDomain> sw_;
  /// Mark-driven memory hierarchy (fabric mode + `dram.tile` mark only).
  std::unique_ptr<mem::System> mem_;
  /// ClassId -> owning hardware domain, nullptr for software classes.
  std::vector<HwDomain*> hw_domain_of_;
  std::function<void(std::uint64_t)> cycle_hook_;
  std::uint64_t cycle_ = 0;
  int lookahead_ = 1;
  int window_ = 1;
  /// Window-level worker pool (windowed mode, threads > 1), shared by
  /// phase A (domains) and phase B (replay shards). Capped at the useful
  /// parallelism — domains + 1 — so extra threads never buy handshake
  /// overhead. In lockstep the kernel owns the pool instead; the two are
  /// never both active.
  std::unique_ptr<hwsim::WorkerPool> pool_;
  /// Per-window flush schedule: (cycle, domain tag) entries, one per
  /// distinct cycle a domain staged sends at, sorted by (cycle, tag). Tags
  /// 0..hw_domains-1 are the hardware domains, hw_domains is software —
  /// ascending tag order IS the serial flush order. Reused scratch.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> flush_sched_;
  PhaseSeconds phase_seconds_;

  // Observability (null members when no registry is attached).
  obs::Registry* obs_ = nullptr;
  obs::TrackId obs_track_;
};

}  // namespace xtsoc::cosim
