#include "xtsoc/common/strings.hpp"

#include <cctype>
#include <sstream>

namespace xtsoc {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool is_identifier(std::string_view name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name.substr(1)) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::string to_snake_case(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 4);
  for (std::size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    if (std::isupper(static_cast<unsigned char>(c))) {
      if (i > 0 && name[i - 1] != '_' &&
          !std::isupper(static_cast<unsigned char>(name[i - 1]))) {
        out.push_back('_');
      }
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string to_upper_snake(std::string_view name) {
  std::string snake = to_snake_case(name);
  for (char& c : snake) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return snake;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string indent(std::string_view text, int spaces) {
  std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t pos = text.find('\n', start);
    std::string_view line = (pos == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, pos - start);
    if (!line.empty()) out += pad;
    out += line;
    if (pos == std::string_view::npos) break;
    out += '\n';
    start = pos + 1;
  }
  return out;
}

std::string dedent(std::string_view text) {
  std::vector<std::string> lines = split(text, '\n');
  std::size_t common = std::string::npos;
  for (const std::string& line : lines) {
    if (trim(line).empty()) continue;
    std::size_t lead = 0;
    while (lead < line.size() && (line[lead] == ' ' || line[lead] == '\t')) {
      ++lead;
    }
    common = std::min(common, lead);
  }
  if (common == std::string::npos || common == 0) return std::string(text);
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out += '\n';
    if (trim(lines[i]).empty()) continue;
    out += lines[i].substr(common);
  }
  return out;
}

std::size_t count_lines(std::string_view text) {
  if (text.empty()) return 0;
  std::size_t n = 0;
  for (char c : text) {
    if (c == '\n') ++n;
  }
  if (text.back() != '\n') ++n;
  return n;
}

}  // namespace xtsoc
