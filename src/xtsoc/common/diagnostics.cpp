#include "xtsoc/common/diagnostics.hpp"

#include <sstream>

namespace xtsoc {

namespace {
const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  if (loc.is_valid()) {
    os << loc.line << ':' << loc.column << ": ";
  }
  os << severity_name(severity) << " [" << code << "] " << message;
  return os.str();
}

void DiagnosticSink::error(std::string code, std::string message, SourceLoc loc) {
  diags_.push_back({Severity::kError, loc, std::move(code), std::move(message)});
}

void DiagnosticSink::warning(std::string code, std::string message, SourceLoc loc) {
  diags_.push_back({Severity::kWarning, loc, std::move(code), std::move(message)});
}

void DiagnosticSink::note(std::string code, std::string message, SourceLoc loc) {
  diags_.push_back({Severity::kNote, loc, std::move(code), std::move(message)});
}

bool DiagnosticSink::has_errors() const { return error_count() > 0; }

std::size_t DiagnosticSink::error_count() const {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::string DiagnosticSink::to_string() const {
  std::ostringstream os;
  for (const auto& d : diags_) {
    os << d.to_string() << '\n';
  }
  return os.str();
}

}  // namespace xtsoc
