// Small string helpers shared across the toolchain.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace xtsoc {

/// Split `text` on `sep`, keeping empty pieces.
std::vector<std::string> split(std::string_view text, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `name` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool is_identifier(std::string_view name);

/// lower_snake_case -> lower_snake_case (already), CamelCase -> camel_case.
std::string to_snake_case(std::string_view name);

/// any_case -> UPPER_SNAKE_CASE.
std::string to_upper_snake(std::string_view name);

/// Join pieces with `sep`.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Indent every line of `text` by `spaces` spaces.
std::string indent(std::string_view text, int spaces);

/// Strip the longest common leading run of spaces/tabs from every
/// non-blank line of `text` (blank lines become empty).
std::string dedent(std::string_view text);

/// Number of newline-terminated lines in `text` (a trailing partial line counts).
std::size_t count_lines(std::string_view text);

}  // namespace xtsoc
